package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGaussianMoments(t *testing.T) {
	r := NewRand(42)
	const n = 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Gaussian(r, 9, 2)
	}
	if m := Mean(xs); math.Abs(m-9) > 0.05 {
		t.Errorf("mean = %v, want ≈9", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.05 {
		t.Errorf("stddev = %v, want ≈2", s)
	}
}

func TestGaussianNegativeSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Gaussian(NewRand(1), 0, -1)
}

func TestTruncGaussianInRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		x := TruncGaussian(r, 10, 5, 0, 20)
		if x < 0 || x > 20 {
			t.Fatalf("TruncGaussian out of range: %v", x)
		}
	}
	// Extreme truncation still terminates and clamps.
	x := TruncGaussian(r, 1000, 0.001, 0, 20)
	if x < 0 || x > 20 {
		t.Fatalf("clamped TruncGaussian out of range: %v", x)
	}
}

func TestTruncGaussianEmptyIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TruncGaussian(NewRand(1), 0, 1, 5, 4)
}

func TestParetoSupport(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		x := Pareto(r, 4, 1)
		if x < 4 {
			t.Fatalf("Pareto(4,1) below scale: %v", x)
		}
	}
}

func TestParetoMedian(t *testing.T) {
	// Median of Pareto(c, alpha) is c * 2^(1/alpha).
	r := NewRand(11)
	const n = 40000
	below := 0
	want := 4 * math.Pow(2, 1.0/1.5)
	for i := 0; i < n; i++ {
		if Pareto(r, 4, 1.5) < want {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("P(X < median) = %v, want ≈0.5", frac)
	}
}

func TestBoundedPareto(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		x := BoundedPareto(r, 4, 1, 20)
		if x < 4 || x > 20 {
			t.Fatalf("BoundedPareto out of [4,20]: %v", x)
		}
	}
}

func TestParetoInvalidParamsPanics(t *testing.T) {
	for _, c := range []struct{ c, a float64 }{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pareto(%v,%v): no panic", c.c, c.a)
				}
			}()
			Pareto(NewRand(1), c.c, c.a)
		}()
	}
}

func TestZipfProbsSumToOne(t *testing.T) {
	z := NewZipf(50, 1.0)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probs sum to %v", sum)
	}
}

func TestZipfMonotone(t *testing.T) {
	z := NewZipf(20, 0.8)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Errorf("Zipf prob not monotone at %d: %v > %v", i, z.Prob(i), z.Prob(i-1))
		}
	}
}

func TestZipfEmpirical(t *testing.T) {
	z := NewZipf(10, 1.0)
	r := NewRand(99)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for i := range counts {
		got := float64(counts[i]) / n
		if math.Abs(got-z.Prob(i)) > 0.01 {
			t.Errorf("rank %d: empirical %v vs analytic %v", i, got, z.Prob(i))
		}
	}
}

func TestZipfInvalid(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(5, 0) },
		func() { NewZipf(5, 1).Prob(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestCategoricalEmpirical(t *testing.T) {
	c := NewCategorical([]float64{0.4, 0.4, 0.2})
	r := NewRand(17)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	wants := []float64{0.4, 0.4, 0.2}
	for i, w := range wants {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("category %d: %v, want ≈%v", i, got, w)
		}
	}
}

func TestCategoricalZeroWeightNeverDrawn(t *testing.T) {
	c := NewCategorical([]float64{1, 0, 1})
	r := NewRand(23)
	for i := 0; i < 10000; i++ {
		if c.Sample(r) == 1 {
			t.Fatal("zero-weight category drawn")
		}
	}
}

func TestCategoricalInvalid(t *testing.T) {
	for _, ws := range [][]float64{nil, {}, {0, 0}, {-1, 2}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weights %v: no panic", ws)
				}
			}()
			NewCategorical(ws)
		}()
	}
}

func TestMixture1D(t *testing.T) {
	m := NewMixture1D([]GaussianComponent{
		{Weight: 0.5, Mu: 4, Sigma: 0.5},
		{Weight: 0.5, Mu: 16, Sigma: 0.5},
	})
	if m.Modes() != 2 {
		t.Fatalf("Modes = %d", m.Modes())
	}
	r := NewRand(31)
	lo, hi := 0, 0
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		x := m.Sample(r)
		sum += x
		if x < 10 {
			lo++
		} else {
			hi++
		}
	}
	if math.Abs(float64(lo)/n-0.5) > 0.02 {
		t.Errorf("mode balance off: %d vs %d", lo, hi)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.1 {
		t.Errorf("mixture mean %v, want ≈10", mean)
	}
}

func TestUniformInt(t *testing.T) {
	r := NewRand(1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		x := UniformInt(r, 3, 7)
		if x < 3 || x > 7 {
			t.Fatalf("UniformInt out of range: %d", x)
		}
		seen[x] = true
	}
	if len(seen) != 5 {
		t.Errorf("not all values seen: %v", seen)
	}
	if UniformInt(r, 4, 4) != 4 {
		t.Error("degenerate range wrong")
	}
}

func TestBernoulli(t *testing.T) {
	r := NewRand(2)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate %v", got)
	}
	if Bernoulli(r, 0) {
		t.Error("Bernoulli(0) true")
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5}, {-1, 0, 10, 0}, {11, 0, 10, 10}, {0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev single != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
}

func TestQuickZipfSampleInRange(t *testing.T) {
	law := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		z := NewZipf(n, 1.1)
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			if s := z.Sample(r); s < 0 || s >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCategoricalSampleInRange(t *testing.T) {
	law := func(seed int64, k uint8) bool {
		n := int(k%10) + 1
		ws := make([]float64, n)
		r := NewRand(seed)
		for i := range ws {
			ws[i] = r.Float64() + 0.01
		}
		c := NewCategorical(ws)
		for i := 0; i < 50; i++ {
			if s := c.Sample(r); s < 0 || s >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReproducibility(t *testing.T) {
	a, b := NewRand(1234), NewRand(1234)
	z := NewZipf(100, 1)
	for i := 0; i < 100; i++ {
		if z.Sample(a) != z.Sample(b) {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(0, 0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Φ(0) = %v", got)
	}
	if got := NormalCDF(1.96, 0, 1); math.Abs(got-0.975) > 0.001 {
		t.Errorf("Φ(1.96) = %v", got)
	}
	if NormalCDF(-1e9, 5, 2) > 1e-12 || NormalCDF(1e9, 5, 2) < 1-1e-12 {
		t.Error("CDF tails wrong")
	}
	// Degenerate sigma: step function at mu.
	if NormalCDF(4.9, 5, 0) != 0 || NormalCDF(5, 5, 0) != 1 {
		t.Error("degenerate CDF wrong")
	}
}

func TestMixtureCDFMatchesEmpirical(t *testing.T) {
	m := NewMixture1D([]GaussianComponent{
		{Weight: 0.3, Mu: 4, Sigma: 2},
		{Weight: 0.7, Mu: 16, Sigma: 1},
	})
	r := NewRand(77)
	const n = 60000
	for _, x := range []float64{2, 4, 8, 15, 16, 18} {
		below := 0
		r2 := NewRand(77)
		_ = r
		for i := 0; i < n; i++ {
			if m.Sample(r2) <= x {
				below++
			}
		}
		got := float64(below) / n
		want := m.CDF(x)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("CDF(%v): empirical %v analytic %v", x, got, want)
		}
	}
}

func TestProbInterval(t *testing.T) {
	m := NewMixture1D([]GaussianComponent{{Weight: 1, Mu: 0, Sigma: 1}})
	if got := m.ProbInterval(-1, 1); math.Abs(got-0.6827) > 0.001 {
		t.Errorf("P(-1,1] = %v", got)
	}
	if m.ProbInterval(3, 3) != 0 || m.ProbInterval(5, 2) != 0 {
		t.Error("empty interval probability non-zero")
	}
	total := m.ProbInterval(math.Inf(-1), math.Inf(1))
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("P(full) = %v", total)
	}
}
