// Package stats provides the random variates used by the ICDCS 2002 workload
// models: Zipf-like popularity laws, Pareto interval lengths, (truncated)
// Gaussians and Gaussian mixtures, and weighted categorical draws. Everything
// is driven by an explicit *rand.Rand so experiments are reproducible from a
// single seed.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a seeded random source. Experiments derive all their
// stochastic choices from one of these so a (seed, config) pair fully
// identifies a run.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Gaussian samples a normal variate with the given mean and standard
// deviation. Sigma must be non-negative.
func Gaussian(r *rand.Rand, mu, sigma float64) float64 {
	if sigma < 0 {
		panic(fmt.Sprintf("stats: negative sigma %v", sigma))
	}
	return mu + sigma*r.NormFloat64()
}

// TruncGaussian samples a normal variate conditioned on lying inside
// [lo, hi] by rejection, falling back to clamping after a bounded number of
// attempts (the workload tails are mild, so the fallback is rare).
func TruncGaussian(r *rand.Rand, mu, sigma, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("stats: empty truncation interval [%v, %v]", lo, hi))
	}
	for i := 0; i < 64; i++ {
		x := Gaussian(r, mu, sigma)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(hi, math.Max(lo, Gaussian(r, mu, sigma)))
}

// Pareto samples a Pareto variate with scale c > 0 and shape alpha > 0:
// P(X > x) = (c/x)^alpha for x >= c. The paper draws subscription interval
// lengths from a "Pareto-like distribution with a given mean"; Pareto with
// (c, alpha) = (4, 1) is its §5.1 parameterisation.
func Pareto(r *rand.Rand, c, alpha float64) float64 {
	if c <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("stats: invalid Pareto parameters c=%v alpha=%v", c, alpha))
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return c / math.Pow(u, 1/alpha)
}

// BoundedPareto samples Pareto(c, alpha) clamped to at most hi. Shape-1
// Pareto has infinite mean, so the workload clamps lengths at the domain
// width exactly as an interval wider than the domain would behave.
func BoundedPareto(r *rand.Rand, c, alpha, hi float64) float64 {
	return math.Min(hi, Pareto(r, c, alpha))
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the CDF once, so repeated draws are a binary
// search. The paper uses "Zipf-like" laws for subscription placement across
// stubs and nodes and for interest-interval lengths.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf distribution over n ranks with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("stats: Zipf needs n > 0, got %d", n))
	}
	if s <= 0 {
		panic(fmt.Sprintf("stats: Zipf needs s > 0, got %v", s))
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, N()).
func (z *Zipf) Sample(r *rand.Rand) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		panic(fmt.Sprintf("stats: Zipf rank %d out of range", i))
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Categorical draws indices with fixed non-negative weights.
type Categorical struct {
	cdf []float64
}

// NewCategorical builds a categorical distribution from weights. At least
// one weight must be positive.
func NewCategorical(weights []float64) *Categorical {
	if len(weights) == 0 {
		panic("stats: empty categorical")
	}
	cdf := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("stats: invalid weight %v at %d", w, i))
		}
		total += w
		cdf[i] = total
	}
	if total == 0 {
		panic("stats: all categorical weights zero")
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[len(cdf)-1] = 1
	return &Categorical{cdf: cdf}
}

// Sample draws an index.
func (c *Categorical) Sample(r *rand.Rand) int {
	return sort.SearchFloat64s(c.cdf, r.Float64())
}

// N returns the number of categories.
func (c *Categorical) N() int { return len(c.cdf) }

// GaussianComponent is one mode of a one-dimensional mixture.
type GaussianComponent struct {
	Weight float64
	Mu     float64
	Sigma  float64
}

// Mixture1D is a weighted mixture of one-dimensional Gaussians; the §5.1
// publication models compose one of these per dimension.
type Mixture1D struct {
	comps []GaussianComponent
	pick  *Categorical
}

// NewMixture1D builds a mixture from components with positive weights.
func NewMixture1D(comps []GaussianComponent) *Mixture1D {
	if len(comps) == 0 {
		panic("stats: empty mixture")
	}
	ws := make([]float64, len(comps))
	for i, c := range comps {
		ws[i] = c.Weight
	}
	cs := make([]GaussianComponent, len(comps))
	copy(cs, comps)
	return &Mixture1D{comps: cs, pick: NewCategorical(ws)}
}

// Sample draws a variate from the mixture.
func (m *Mixture1D) Sample(r *rand.Rand) float64 {
	c := m.comps[m.pick.Sample(r)]
	return Gaussian(r, c.Mu, c.Sigma)
}

// Modes returns the number of components.
func (m *Mixture1D) Modes() int { return len(m.comps) }

// NormalCDF is the cumulative distribution function of N(mu, sigma) at x.
// A zero sigma degenerates to a step at mu.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma == 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-mu)/(sigma*math.Sqrt2)))
}

// CDF evaluates the mixture's cumulative distribution function at x
// (weights are renormalised by construction).
func (m *Mixture1D) CDF(x float64) float64 {
	total, wsum := 0.0, 0.0
	for _, c := range m.comps {
		total += c.Weight * NormalCDF(x, c.Mu, c.Sigma)
		wsum += c.Weight
	}
	return total / wsum
}

// ProbInterval returns P(lo < X ≤ hi) under the mixture.
func (m *Mixture1D) ProbInterval(lo, hi float64) float64 {
	if !(lo < hi) {
		return 0
	}
	p := m.CDF(hi) - m.CDF(lo)
	if p < 0 {
		return 0
	}
	return p
}

// UniformInt returns an integer uniform on [lo, hi] inclusive.
func UniformInt(r *rand.Rand, lo, hi int) int {
	if lo > hi {
		panic(fmt.Sprintf("stats: UniformInt empty range [%d, %d]", lo, hi))
	}
	return lo + r.Intn(hi-lo+1)
}

// Bernoulli returns true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	return r.Float64() < p
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, x))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
