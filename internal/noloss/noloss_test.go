package noloss

import (
	"math"
	"testing"

	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

func stockWorld(t *testing.T, subs int, seed int64) (*workload.World, []workload.Event) {
	t.Helper()
	cfg := topology.Eval600
	cfg.Seed = seed
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: subs, PubModes: 1, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, w.Events(1500, seed+2)
}

func TestConfigValidation(t *testing.T) {
	w, train := stockWorld(t, 50, 100)
	bad := []Config{
		{PoolSize: -1},
		{Iterations: -1},
		{Seeds: -2},
	}
	for i, cfg := range bad {
		if _, err := Build(w, train, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := Build(nil, train, Config{}); err == nil {
		t.Error("nil world accepted")
	}
	if _, err := Build(w, nil, Config{}); err == nil {
		t.Error("empty training accepted")
	}
}

func TestBuildBasic(t *testing.T) {
	w, train := stockWorld(t, 200, 200)
	res, err := Build(w, train, Config{PoolSize: 500, Iterations: 4, Seeds: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no groups")
	}
	if len(res.Groups) > 500 {
		t.Fatalf("pool overflow: %d groups", len(res.Groups))
	}
	// Sorted by weight, non-increasing.
	for i := 1; i < len(res.Groups); i++ {
		if res.Groups[i].Weight > res.Groups[i-1].Weight+1e-12 {
			t.Fatalf("groups not weight-sorted at %d", i)
		}
	}
	for gi, g := range res.Groups {
		if g.Rect.Empty() {
			t.Fatalf("group %d has empty rect", gi)
		}
		if g.Members.Count() == 0 {
			t.Fatalf("group %d has no members", gi)
		}
		if w := g.Prob * float64(g.Members.Count()); math.Abs(w-g.Weight) > 1e-9 {
			t.Fatalf("group %d weight %v != p·|u| = %v", gi, g.Weight, w)
		}
	}
}

// TestNoLossInvariant is the defining property: every member of a group
// must have a subscription rectangle containing the whole group region —
// equivalently, every member is interested in every event in the region.
func TestNoLossInvariant(t *testing.T) {
	w, train := stockWorld(t, 300, 300)
	res, err := Build(w, train, Config{PoolSize: 800, Iterations: 6, Seeds: 48})
	if err != nil {
		t.Fatal(err)
	}
	// Precompute each subscriber's rectangles.
	rectsOf := map[int][]space.Rect{}
	for _, s := range w.Subs {
		idx, _ := w.SubscriberIndex(s.Owner)
		rectsOf[idx] = append(rectsOf[idx], s.Rect)
	}
	checked := 0
	for _, g := range res.Groups {
		ok := true
		g.Members.ForEach(func(i int) bool {
			contains := false
			for _, r := range rectsOf[i] {
				if r.ContainsRect(g.Rect) {
					contains = true
					break
				}
			}
			if !contains {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			t.Fatalf("no-loss invariant violated for group rect %v", g.Rect)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestIterationsGrowMembership(t *testing.T) {
	// With intersections enabled, the top group should accumulate more
	// members than any single raw subscription owner set.
	w, train := stockWorld(t, 400, 400)
	zero, err := Build(w, train, Config{PoolSize: 1000, Iterations: 1, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Build(w, train, Config{PoolSize: 1000, Iterations: 8, Seeds: 64})
	if err != nil {
		t.Fatal(err)
	}
	maxZero, maxEight := 0, 0
	for _, g := range zero.Groups {
		if c := g.Members.Count(); c > maxZero {
			maxZero = c
		}
	}
	for _, g := range eight.Groups {
		if c := g.Members.Count(); c > maxEight {
			maxEight = c
		}
	}
	if maxEight < maxZero {
		t.Errorf("more refinement shrank max membership: %d vs %d", maxEight, maxZero)
	}
	if maxEight < 2 {
		t.Errorf("refinement never combined subscribers (max membership %d)", maxEight)
	}
}

func TestDeterministic(t *testing.T) {
	w, train := stockWorld(t, 150, 500)
	cfg := Config{PoolSize: 400, Iterations: 4, Seeds: 32}
	a, err := Build(w, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(w, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != len(b.Groups) {
		t.Fatalf("group counts differ: %d vs %d", len(a.Groups), len(b.Groups))
	}
	for i := range a.Groups {
		if !a.Groups[i].Rect.Equal(b.Groups[i].Rect) || !a.Groups[i].Members.Equal(b.Groups[i].Members) {
			t.Fatalf("group %d differs between runs", i)
		}
	}
}

func TestDuplicateSubscriptionsMerge(t *testing.T) {
	// Hand-build a tiny world where three subscribers share one rectangle:
	// the seed pool must merge them into a single region with |u| = 3.
	cfg := topology.Net100
	cfg.Seed = 7
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{NumSubscriptions: 3, PubModes: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	shared := space.Rect{space.Span(0, 1), space.Span(0, 10), space.Span(0, 10), space.Span(0, 10)}
	hostA, hostB := w.SubscriberNodes[0], w.SubscriberNodes[len(w.SubscriberNodes)-1]
	w.Subs = []workload.Subscription{
		{Owner: hostA, Rect: shared},
		{Owner: hostB, Rect: shared},
		{Owner: hostA, Rect: shared},
	}
	train := []workload.Event{{Pub: hostA, Point: space.Point{0.5, 5, 5, 5}}}
	res, err := Build(w, train, Config{PoolSize: 10, Iterations: 2, Seeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(res.Groups))
	}
	if got := res.Groups[0].Members.Count(); got != 2 {
		t.Fatalf("members = %d, want 2 distinct subscriber nodes", got)
	}
	if res.Groups[0].Prob != 1 {
		t.Fatalf("prob = %v, want 1", res.Groups[0].Prob)
	}
}

func TestNodesOf(t *testing.T) {
	w, train := stockWorld(t, 100, 600)
	res, err := Build(w, train, Config{PoolSize: 100, Iterations: 2, Seeds: 16})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Groups[0]
	nodes := g.NodesOf(w)
	if len(nodes) != g.Members.Count() {
		t.Fatalf("NodesOf len %d vs %d members", len(nodes), g.Members.Count())
	}
}

func TestPoolSizeRespected(t *testing.T) {
	w, train := stockWorld(t, 500, 700)
	for _, n := range []int{10, 50, 200} {
		res, err := Build(w, train, Config{PoolSize: n, Iterations: 3, Seeds: 16})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) > n {
			t.Errorf("PoolSize %d produced %d groups", n, len(res.Groups))
		}
	}
}
