// Package noloss implements the paper's No-Loss subscription clustering
// algorithm (§4.5). Instead of rasterising onto a grid, it works directly
// with subscription rectangles: multicast-group regions are *intersections*
// of interest rectangles, so every subscriber attached to a region is
// provably interested in every event inside it — no message is ever wasted.
//
// The printed pseudo-code (Fig 4) is corrupted in the source scan; this is
// the reconstruction from the prose: start from the raw subscription
// rectangles with u(s) = {owner}; each iteration intersects the
// highest-weight regions against the pool, forming s∩t with
// u(s∩t) = u(s) ∪ u(t) (every member's rectangle contains the
// intersection, preserving the no-loss invariant); regions are ranked by
// density w(s) = p(s)·|u(s)| and the pool is pruned to PoolSize entries.
// The final pool, in decreasing weight order, is the paper's list A; the
// matcher uses its first K entries as multicast groups.
//
// p(s) is estimated from a training event sample. Each region carries a
// bitset of the training events it contains, so p(s∩t) is an O(words)
// intersection count: an event lies in s∩t exactly when it lies in both s
// and t.
package noloss

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Config parameterises the algorithm. The paper's experiment uses
// PoolSize 5000 and 8 iterations (Fig 8 sweeps both).
type Config struct {
	// PoolSize is the number of rectangles kept after each iteration
	// (the paper's "rectangles kept after intersection"). Default 5000.
	PoolSize int
	// Iterations is the number of intersection-refinement passes.
	// Default 8.
	Iterations int
	// Seeds bounds how many of the highest-weight regions are crossed
	// against the whole pool in one iteration. Default 64.
	Seeds int
}

func (c *Config) setDefaults() {
	if c.PoolSize == 0 {
		c.PoolSize = 5000
	}
	if c.Iterations == 0 {
		c.Iterations = 8
	}
	if c.Seeds == 0 {
		c.Seeds = 64
	}
}

func (c Config) validate() error {
	if c.PoolSize < 1 {
		return fmt.Errorf("noloss: PoolSize = %d, need ≥ 1", c.PoolSize)
	}
	if c.Iterations < 0 {
		return fmt.Errorf("noloss: Iterations = %d, need ≥ 0", c.Iterations)
	}
	if c.Seeds < 1 {
		return fmt.Errorf("noloss: Seeds = %d, need ≥ 1", c.Seeds)
	}
	return nil
}

// Group is one no-loss multicast group: a region of the event space and
// the subscribers guaranteed interested in all of it.
type Group struct {
	Rect space.Rect
	// Members is the subscriber set u(s), indexed like
	// workload.World.SubscriberNodes.
	Members *bitset.Set
	// Prob is the empirical publication probability of the region.
	Prob float64
	// Weight is the paper's density w(s) = Prob·|Members|.
	Weight float64
}

// NodesOf translates the member set to network node ids.
func (g *Group) NodesOf(w *workload.World) []topology.NodeID {
	out := make([]topology.NodeID, 0, g.Members.Count())
	g.Members.ForEach(func(i int) bool {
		out = append(out, w.SubscriberNodes[i])
		return true
	})
	return out
}

// Result is the final pool in decreasing weight order (the paper's list A).
type Result struct {
	Groups []Group
}

// region is the working representation during refinement.
type region struct {
	rect    space.Rect
	members *bitset.Set // u(s)
	events  *bitset.Set // training events inside rect
	weight  float64
}

// Build runs the no-loss clustering over the world's subscriptions using
// the training events for probability estimation.
func Build(w *workload.World, train []workload.Event, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if w == nil {
		return nil, fmt.Errorf("noloss: nil world")
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("noloss: no training events")
	}
	ns := w.NumSubscribers()
	if ns == 0 {
		return nil, fmt.Errorf("noloss: world has no subscribers")
	}
	ne := len(train)
	norm := 1 / float64(ne)

	// Seed pool: one region per subscription, deduplicating exact-equal
	// rectangles by merging owners.
	pool := make([]*region, 0, len(w.Subs))
	index := map[string]*region{}
	for _, sub := range w.Subs {
		si, ok := w.SubscriberIndex(sub.Owner)
		if !ok {
			return nil, fmt.Errorf("noloss: owner %d not indexed", sub.Owner)
		}
		key := rectKey(sub.Rect)
		if rg := index[key]; rg != nil {
			rg.members.Set(si)
			continue
		}
		rg := &region{
			rect:    sub.Rect.Clone(),
			members: bitset.New(ns),
			events:  bitset.New(ne),
		}
		rg.members.Set(si)
		for ei, e := range train {
			if sub.Rect.Contains(e.Point) {
				rg.events.Set(ei)
			}
		}
		index[key] = rg
		pool = append(pool, rg)
	}
	reweigh(pool, norm)
	sortPool(pool)
	if len(pool) > cfg.PoolSize {
		pool = pool[:cfg.PoolSize]
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		if !refine(&pool, index, cfg, norm) {
			break // fixpoint: no new region entered the pool
		}
	}

	res := &Result{Groups: make([]Group, len(pool))}
	for i, rg := range pool {
		res.Groups[i] = Group{
			Rect:    rg.rect,
			Members: rg.members.Clone(),
			Prob:    float64(rg.events.Count()) * norm,
			Weight:  rg.weight,
		}
	}
	return res, nil
}

// refine performs one intersection pass; it reports whether the pool
// changed.
func refine(pool *[]*region, index map[string]*region, cfg Config, norm float64) bool {
	ps := *pool
	seeds := cfg.Seeds
	if seeds > len(ps) {
		seeds = len(ps)
	}
	// Weight floor a candidate must beat to be worth keeping once the pool
	// is full.
	floor := 0.0
	if len(ps) >= cfg.PoolSize {
		floor = ps[len(ps)-1].weight
	}

	changed := false
	var fresh []*region
	for i := 0; i < seeds; i++ {
		s := ps[i]
		for j := 0; j < len(ps); j++ {
			if i == j {
				continue
			}
			t := ps[j]
			// Upper bounds: members can only union, events only intersect.
			ubProb := float64(min(s.events.Count(), t.events.Count())) * norm
			ubMembers := float64(s.members.Count() + t.members.Count())
			if ubProb*ubMembers <= floor {
				continue
			}
			rect, ok := s.rect.Intersect(t.rect)
			if !ok {
				continue
			}
			evs := s.events.Intersect(t.events)
			mem := s.members.Union(t.members)
			wgt := float64(evs.Count()) * norm * float64(mem.Count())
			if wgt <= floor {
				continue
			}
			key := rectKey(rect)
			if rg := index[key]; rg != nil {
				// Same region discovered again: grow its member set.
				before := rg.members.Count()
				rg.members.UnionWith(mem)
				if rg.members.Count() != before {
					rg.weight = float64(rg.events.Count()) * norm * float64(rg.members.Count())
					changed = true
				}
				continue
			}
			rg := &region{rect: rect, members: mem, events: evs, weight: wgt}
			index[key] = rg
			fresh = append(fresh, rg)
			changed = true
		}
	}
	if !changed {
		return false
	}
	ps = append(ps, fresh...)
	sortPool(ps)
	if len(ps) > cfg.PoolSize {
		for _, rg := range ps[cfg.PoolSize:] {
			delete(index, rectKey(rg.rect))
		}
		ps = ps[:cfg.PoolSize]
	}
	*pool = ps
	return true
}

func reweigh(pool []*region, norm float64) {
	for _, rg := range pool {
		rg.weight = float64(rg.events.Count()) * norm * float64(rg.members.Count())
	}
}

// sortPool orders by decreasing weight with a deterministic tie-break.
func sortPool(pool []*region) {
	sort.SliceStable(pool, func(i, j int) bool {
		if pool[i].weight != pool[j].weight {
			return pool[i].weight > pool[j].weight
		}
		return rectLess(pool[i].rect, pool[j].rect)
	})
}

func rectLess(a, b space.Rect) bool {
	for d := range a {
		if a[d].Lo != b[d].Lo {
			return a[d].Lo < b[d].Lo
		}
		if a[d].Hi != b[d].Hi {
			return a[d].Hi < b[d].Hi
		}
	}
	return false
}

// rectKey encodes a rectangle into a comparable map key. NaNs never occur
// (space.Interval construction and Intersect preserve orderedness).
func rectKey(r space.Rect) string {
	buf := make([]byte, 0, 16*len(r))
	var tmp [8]byte
	for _, iv := range r {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(iv.Lo))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(iv.Hi))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
