// Package workload generates the paper's two simulation workloads:
//
//   - the §3 "regionalism" model behind Tables 1 and 2: four attributes,
//     the first tied to the publisher's stub network, the rest drawn from
//     either uniform or gaussian preference tables;
//   - the §5.1 stock-ticker model behind Figures 7–11: {bst, name, quote,
//     volume} subscriptions placed over transit blocks and stubs by
//     Zipf-like laws, and publications from 1-, 4- or 9-mode multivariate
//     normal mixtures.
//
// A World couples a network with its subscription population and an event
// source, and is the single input every experiment consumes.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Subscription is one interest rectangle owned by a network node.
type Subscription struct {
	Owner topology.NodeID
	Rect  space.Rect
}

// Event is one publication: a point in the event space originating at a
// publisher node.
type Event struct {
	Pub   topology.NodeID
	Point space.Point
}

// World is a complete experimental universe: the network, the subscription
// population, the suggested clustering grid, and the publication process.
type World struct {
	Graph *topology.Graph
	Dim   int
	Subs  []Subscription

	// SubscriberNodes lists, in increasing id order, the distinct nodes
	// holding at least one subscription. Membership vectors are indexed by
	// position in this slice.
	SubscriberNodes []topology.NodeID

	// Axes is the grid specification suited to this workload's event
	// distribution (used by the grid-based clustering framework).
	Axes []space.Axis

	subIndex map[topology.NodeID]int
	genEvent func(r *rand.Rand) Event
	// cellProb, when non-nil, evaluates the publication probability of a
	// rectangle in closed form (set by generators whose publication model
	// is product-form).
	cellProb func(space.Rect) float64
}

// AnalyticCellProb evaluates the publication probability of a rectangle in
// closed form when the workload's publication model supports it (the §3
// and §5.1 generators do; custom worlds may not).
func (w *World) AnalyticCellProb(r space.Rect) (float64, bool) {
	if w.cellProb == nil {
		return 0, false
	}
	return w.cellProb(r), true
}

// NumSubscribers returns the number of distinct subscriber nodes.
func (w *World) NumSubscribers() int { return len(w.SubscriberNodes) }

// SubscriberIndex maps a node to its membership-vector position.
func (w *World) SubscriberIndex(n topology.NodeID) (int, bool) {
	i, ok := w.subIndex[n]
	return i, ok
}

// Events draws n publications using a stream seeded independently of the
// subscription population.
func (w *World) Events(n int, seed int64) []Event {
	r := stats.NewRand(seed)
	out := make([]Event, n)
	for i := range out {
		out[i] = w.genEvent(r)
	}
	return out
}

// finish derives the subscriber index structures from Subs.
func (w *World) finish() {
	seen := map[topology.NodeID]bool{}
	for _, s := range w.Subs {
		seen[s.Owner] = true
	}
	w.SubscriberNodes = make([]topology.NodeID, 0, len(seen))
	for n := range seen {
		w.SubscriberNodes = append(w.SubscriberNodes, n)
	}
	sort.Slice(w.SubscriberNodes, func(i, j int) bool { return w.SubscriberNodes[i] < w.SubscriberNodes[j] })
	w.subIndex = make(map[topology.NodeID]int, len(w.SubscriberNodes))
	for i, n := range w.SubscriberNodes {
		w.subIndex[n] = i
	}
}

// stubNodes returns all stub (leaf) nodes of the graph; subscribers and
// publishers live here, transit nodes only route.
func stubNodes(g *topology.Graph) []topology.NodeID {
	var out []topology.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		if g.Node(topology.NodeID(i)).Kind == topology.StubNode {
			out = append(out, topology.NodeID(i))
		}
	}
	return out
}

func validateCommon(g *topology.Graph, numSubs int) error {
	if g == nil {
		return fmt.Errorf("workload: nil graph")
	}
	if numSubs <= 0 {
		return fmt.Errorf("workload: NumSubscriptions = %d, need > 0", numSubs)
	}
	if len(stubNodes(g)) == 0 {
		return fmt.Errorf("workload: graph has no stub nodes to host subscribers")
	}
	return nil
}
