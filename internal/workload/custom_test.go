package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/topology"
)

func customAxes() []space.Axis {
	return []space.Axis{
		{Lo: 0, Hi: 10, Cells: 10},
		{Lo: 0, Hi: 10, Cells: 10},
	}
}

func TestNewCustomWorldValidation(t *testing.T) {
	g := testGraph(t, topology.Net100, 30)
	subs := []Subscription{{Owner: 4, Rect: space.FullRect(2)}}
	if _, err := NewCustomWorld(nil, customAxes(), subs); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewCustomWorld(g, nil, subs); err == nil {
		t.Error("nil axes accepted")
	}
	if _, err := NewCustomWorld(g, customAxes(), nil); err == nil {
		t.Error("empty subs accepted")
	}
	if _, err := NewCustomWorld(g, []space.Axis{{Lo: 0, Hi: 0, Cells: 1}}, subs); err == nil {
		t.Error("invalid axes accepted")
	}
	bad := []Subscription{{Owner: 4, Rect: space.FullRect(3)}}
	if _, err := NewCustomWorld(g, customAxes(), bad); err == nil {
		t.Error("dim-mismatched subscription accepted")
	}
	empty := []Subscription{{Owner: 4, Rect: space.Rect{space.Span(1, 1), space.Full()}}}
	if _, err := NewCustomWorld(g, customAxes(), empty); err == nil {
		t.Error("empty-rect subscription accepted")
	}
	oob := []Subscription{{Owner: -1, Rect: space.FullRect(2)}}
	if _, err := NewCustomWorld(g, customAxes(), oob); err == nil {
		t.Error("out-of-range owner accepted")
	}
}

func TestNewCustomWorldBasics(t *testing.T) {
	g := testGraph(t, topology.Net100, 31)
	subs := []Subscription{
		{Owner: 10, Rect: space.Rect{space.Span(0, 5), space.Full()}},
		{Owner: 20, Rect: space.Rect{space.Span(5, 10), space.LeftOf(3)}},
		{Owner: 10, Rect: space.FullRect(2)},
	}
	w, err := NewCustomWorld(g, customAxes(), subs)
	if err != nil {
		t.Fatal(err)
	}
	if w.Dim != 2 || len(w.Subs) != 3 {
		t.Fatalf("dim=%d subs=%d", w.Dim, len(w.Subs))
	}
	if w.NumSubscribers() != 2 {
		t.Fatalf("NumSubscribers = %d", w.NumSubscribers())
	}
	// Caller slices are copied.
	subs[0].Owner = 99
	if w.Subs[0].Owner != 10 {
		t.Error("world aliases caller subscriptions")
	}
	// Custom worlds have no closed-form publication model.
	if _, ok := w.AnalyticCellProb(space.FullRect(2)); ok {
		t.Error("custom world claims analytic probabilities")
	}
	// Default event source: uniform over axes bounds, stub publishers.
	evs := w.Events(500, 32)
	for _, e := range evs {
		if g.Node(e.Pub).Kind != topology.StubNode {
			t.Fatal("default publisher not a stub node")
		}
		for d, a := range customAxes() {
			if e.Point[d] < a.Lo || e.Point[d] > a.Hi {
				t.Fatalf("default event outside axes: %v", e.Point)
			}
		}
	}
}

func TestSetEventSource(t *testing.T) {
	g := testGraph(t, topology.Net100, 33)
	w, err := NewCustomWorld(g, customAxes(), []Subscription{{Owner: 9, Rect: space.FullRect(2)}})
	if err != nil {
		t.Fatal(err)
	}
	w.SetEventSource(func(r *rand.Rand) Event {
		return Event{Pub: 9, Point: space.Point{1, 2}}
	})
	for _, e := range w.Events(5, 34) {
		if e.Pub != 9 || e.Point[0] != 1 || e.Point[1] != 2 {
			t.Fatalf("custom source ignored: %+v", e)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil source did not panic")
		}
	}()
	w.SetEventSource(nil)
}

func TestRegionalAnalyticCellProb(t *testing.T) {
	g := testGraph(t, topology.Net100, 35)
	for _, dist := range []PrefDist{Uniform, Gaussian} {
		w, err := NewRegionalWorld(g, RegionalConfig{
			NumSubscriptions: 50, Regionalism: 0.4, Dist: dist, Seed: 36,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Probability of everything is 1.
		full := space.FullRect(4)
		p, ok := w.AnalyticCellProb(full)
		if !ok {
			t.Fatal("regional world lacks analytic probabilities")
		}
		if math.Abs(p-1) > 1e-9 {
			t.Fatalf("%s: P(Ω) = %v", dist, p)
		}
		// Empirical check against a large sample on a coarse box.
		box := space.Rect{space.Span(-0.5, 2.5), space.Span(5, 15), space.Full(), space.Full()}
		want, _ := w.AnalyticCellProb(box)
		evs := w.Events(40000, 37)
		in := 0
		for _, e := range evs {
			if box.Contains(e.Point) {
				in++
			}
		}
		got := float64(in) / float64(len(evs))
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s: empirical %v vs analytic %v", dist, got, want)
		}
	}
}

func TestStockAnalyticCellProb(t *testing.T) {
	g := testGraph(t, topology.Eval600, 38)
	w, err := NewStockWorld(g, StockConfig{NumSubscriptions: 50, PubModes: 4, Seed: 39})
	if err != nil {
		t.Fatal(err)
	}
	box := space.Rect{space.LeftOf(1.5), space.Span(6, 14), space.Full(), space.RightOf(9)}
	want, ok := w.AnalyticCellProb(box)
	if !ok {
		t.Fatal("stock world lacks analytic probabilities")
	}
	evs := w.Events(40000, 40)
	in := 0
	for _, e := range evs {
		if box.Contains(e.Point) {
			in++
		}
	}
	got := float64(in) / float64(len(evs))
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical %v vs analytic %v", got, want)
	}
	// Grid-cell probabilities over the world grid sum to ≈ grid coverage.
	grid, err := space.NewGrid(w.Axes)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for id := space.CellID(0); int(id) < grid.NumCells(); id++ {
		p, _ := w.AnalyticCellProb(grid.CellRect(id))
		sum += p
	}
	cover, _ := w.AnalyticCellProb(grid.Bounds())
	if math.Abs(sum-cover) > 1e-6 {
		t.Errorf("cell sum %v != bounds mass %v", sum, cover)
	}
	_ = stats.NormalCDF // keep import for clarity of intent
}
