package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/topology"
)

// PrefDist selects the §3 preference/publication distribution family.
type PrefDist uint8

// Preference distribution families (the Dist'n column of Tables 1–2).
const (
	Uniform PrefDist = iota
	Gaussian
)

func (d PrefDist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	default:
		return fmt.Sprintf("PrefDist(%d)", uint8(d))
	}
}

// RegionalConfig parameterises the §3 model behind Tables 1 and 2. Events
// live in 4 dimensions: dimension 0 is the regional attribute (the stub id
// of the publishing node) and dimensions 1–3 take values in [0, 20].
type RegionalConfig struct {
	NumSubscriptions int
	// Regionalism is the probability that a subscription pins the regional
	// attribute to the subscriber's own stub (0.4 in Table 1, 0 in Table 2);
	// otherwise the attribute is a wildcard.
	Regionalism float64
	Dist        PrefDist
	Seed        int64
}

// attrDomain is the value range of the non-regional attributes.
const (
	attrLo = 0.0
	attrHi = 20.0
)

// Per-attribute gaussian preference parameters from the §3 table rows
// (attributes 2, 3 and 4 of the event tuple).
type gaussPref struct {
	q1, q2, q3       float64 // wildcard, left-ended, right-ended
	mu1, s1, mu2, s2 float64 // one-ended endpoint laws
	mu3, s3          float64 // two-ended center law
	// paretoC is the scale of the Pareto(c, 1) interval-length law. The §3
	// table labels this column "mean"; §5.1 gives the same attributes
	// (c, α) = (4, 1) explicitly, so the value is read as the Pareto scale
	// — the only reading that reproduces the paper's gaussian ≥ uniform
	// cost ordering in Tables 1–2.
	paretoC float64
}

var gaussPrefs = [3]gaussPref{
	{q1: 0.10, q2: 0, q3: 0, mu1: 8, s1: 2, mu2: 10, s2: 2, mu3: 9, s3: 6, paretoC: 1},
	{q1: 0.15, q2: 0.1, q3: 0.1, mu1: 8, s1: 1, mu2: 10, s2: 1, mu3: 9, s3: 2, paretoC: 4},
	{q1: 0.35, q2: 0.1, q3: 0.1, mu1: 8, s1: 1, mu2: 10, s2: 1, mu3: 9, s3: 2, paretoC: 4},
}

// Probability that attribute 2 is specified in the uniform model; later
// attributes decay by uniformSpecDecay (0.98 · 0.78^i in the paper).
const (
	uniformSpecBase  = 0.98
	uniformSpecDecay = 0.78
)

// NewRegionalWorld builds a §3-model world on the given network.
func NewRegionalWorld(g *topology.Graph, cfg RegionalConfig) (*World, error) {
	if err := validateCommon(g, cfg.NumSubscriptions); err != nil {
		return nil, err
	}
	if cfg.Regionalism < 0 || cfg.Regionalism > 1 {
		return nil, fmt.Errorf("workload: Regionalism = %v, need [0,1]", cfg.Regionalism)
	}
	if cfg.Dist != Uniform && cfg.Dist != Gaussian {
		return nil, fmt.Errorf("workload: unknown PrefDist %d", cfg.Dist)
	}
	if g.NumStubs() == 0 {
		return nil, fmt.Errorf("workload: regional model needs stub networks")
	}

	r := stats.NewRand(cfg.Seed)
	hosts := stubNodes(g)

	w := &World{
		Graph: g,
		Dim:   4,
		Axes: []space.Axis{
			{Lo: -0.5, Hi: float64(g.NumStubs()) - 0.5, Cells: g.NumStubs()},
			{Lo: attrLo, Hi: attrHi, Cells: 10},
			{Lo: attrLo, Hi: attrHi, Cells: 10},
			{Lo: attrLo, Hi: attrHi, Cells: 10},
		},
	}

	w.Subs = make([]Subscription, cfg.NumSubscriptions)
	for i := range w.Subs {
		owner := hosts[r.Intn(len(hosts))]
		rect := make(space.Rect, 4)
		// Regional attribute: pin to the owner's stub or wildcard.
		if stats.Bernoulli(r, cfg.Regionalism) {
			stub := float64(g.Node(owner).Stub)
			rect[0] = space.Span(stub-0.5, stub+0.5)
		} else {
			rect[0] = space.Full()
		}
		for d := 0; d < 3; d++ {
			switch cfg.Dist {
			case Uniform:
				rect[d+1] = uniformPref(r, d)
			case Gaussian:
				rect[d+1] = gaussianPref(r, gaussPrefs[d])
			}
		}
		w.Subs[i] = Subscription{Owner: owner, Rect: rect}
	}
	w.finish()

	dist := cfg.Dist
	w.genEvent = func(r *rand.Rand) Event {
		pub := hosts[r.Intn(len(hosts))]
		p := make(space.Point, 4)
		p[0] = float64(g.Node(pub).Stub)
		for d := 0; d < 3; d++ {
			switch dist {
			case Uniform:
				p[d+1] = attrLo + r.Float64()*(attrHi-attrLo)
			case Gaussian:
				// Publications peak where two-ended subscription interest
				// peaks (the paper's "peaks follow peaks" assumption).
				gp := gaussPrefs[d]
				p[d+1] = stats.TruncGaussian(r, gp.mu3, gp.s3, attrLo, attrHi)
			}
		}
		return Event{Pub: pub, Point: p}
	}

	// Analytic publication probability: dimension 0 is the publisher's
	// stub id (publishers uniform over stub nodes, so each stub weighs by
	// its node count); dimensions 1–3 are independent uniform or truncated
	// gaussian marginals — a product form.
	stubWeight := make([]float64, g.NumStubs())
	for _, s := range g.Stubs() {
		stubWeight[s.Index] = float64(len(s.Nodes)) / float64(len(hosts))
	}
	w.cellProb = func(rect space.Rect) float64 {
		p := 0.0
		for id, wt := range stubWeight {
			if rect[0].Contains(float64(id)) {
				p += wt
			}
		}
		if p == 0 {
			return 0
		}
		for d := 0; d < 3; d++ {
			iv, ok := rect[d+1].Intersect(space.Span(attrLo, attrHi))
			if !ok {
				return 0
			}
			switch dist {
			case Uniform:
				p *= iv.Width() / (attrHi - attrLo)
			case Gaussian:
				gp := gaussPrefs[d]
				norm := stats.NormalCDF(attrHi, gp.mu3, gp.s3) - stats.NormalCDF(attrLo, gp.mu3, gp.s3)
				p *= (stats.NormalCDF(iv.Hi, gp.mu3, gp.s3) - stats.NormalCDF(iv.Lo, gp.mu3, gp.s3)) / norm
			}
		}
		return p
	}
	return w, nil
}

// uniformPref draws attribute d's preference in the uniform model: a
// wildcard with the complement of the specification probability, otherwise
// the sorted span of two uniform draws.
func uniformPref(r *rand.Rand, d int) space.Interval {
	spec := uniformSpecBase
	for i := 0; i < d; i++ {
		spec *= uniformSpecDecay
	}
	if !stats.Bernoulli(r, spec) {
		return space.Full()
	}
	a := attrLo + r.Float64()*(attrHi-attrLo)
	b := attrLo + r.Float64()*(attrHi-attrLo)
	if a > b {
		a, b = b, a
	}
	return space.Span(a, b)
}

// gaussianPref draws attribute preferences in the gaussian model: wildcard
// with q1, left-ended with q2, right-ended with q3, else a bounded interval
// with gaussian center and Pareto(c, 1) length clamped to the domain width
// (a wider interval behaves identically within the domain).
func gaussianPref(r *rand.Rand, gp gaussPref) space.Interval {
	u := r.Float64()
	switch {
	case u < gp.q1:
		return space.Full()
	case u < gp.q1+gp.q2:
		return space.LeftOf(stats.Gaussian(r, gp.mu1, gp.s1))
	case u < gp.q1+gp.q2+gp.q3:
		return space.RightOf(stats.Gaussian(r, gp.mu2, gp.s2))
	default:
		center := stats.Gaussian(r, gp.mu3, gp.s3)
		length := stats.BoundedPareto(r, gp.paretoC, 1, attrHi-attrLo)
		return space.Span(center-length/2, center+length/2)
	}
}
