package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/space"
	"repro/internal/topology"
)

// NewCustomWorld builds a World from explicit subscriptions instead of a
// generator — the entry point for library users bringing their own
// workload. All subscription rectangles must match the axes' dimensionality
// and owners must be nodes of the graph.
//
// The event source defaults to uniform points over the axes' bounds
// published from uniformly chosen stub nodes (or any node when the graph
// has no stub annotations); use SetEventSource to replace it.
func NewCustomWorld(g *topology.Graph, axes []space.Axis, subs []Subscription) (*World, error) {
	if g == nil {
		return nil, fmt.Errorf("workload: nil graph")
	}
	if len(axes) == 0 {
		return nil, fmt.Errorf("workload: no axes")
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("workload: no subscriptions")
	}
	if _, err := space.NewGrid(axes); err != nil {
		return nil, fmt.Errorf("workload: invalid axes: %w", err)
	}
	w := &World{
		Graph: g,
		Dim:   len(axes),
		Axes:  append([]space.Axis(nil), axes...),
		Subs:  append([]Subscription(nil), subs...),
	}
	for i, s := range w.Subs {
		if s.Rect.Dim() != w.Dim {
			return nil, fmt.Errorf("workload: subscription %d has dim %d, want %d", i, s.Rect.Dim(), w.Dim)
		}
		if s.Rect.Empty() {
			return nil, fmt.Errorf("workload: subscription %d has an empty rectangle", i)
		}
		if s.Owner < 0 || int(s.Owner) >= g.NumNodes() {
			return nil, fmt.Errorf("workload: subscription %d owner %d out of range", i, s.Owner)
		}
	}
	w.finish()

	hosts := stubNodes(g)
	if len(hosts) == 0 {
		hosts = make([]topology.NodeID, g.NumNodes())
		for i := range hosts {
			hosts[i] = topology.NodeID(i)
		}
	}
	axesCopy := w.Axes
	w.genEvent = func(r *rand.Rand) Event {
		p := make(space.Point, len(axesCopy))
		for d, a := range axesCopy {
			p[d] = a.Lo + r.Float64()*(a.Hi-a.Lo)
		}
		return Event{Pub: hosts[r.Intn(len(hosts))], Point: p}
	}
	return w, nil
}

// SetEventSource replaces the world's publication process. The function is
// called once per generated event with the stream's random source.
func (w *World) SetEventSource(fn func(r *rand.Rand) Event) {
	if fn == nil {
		panic("workload: nil event source")
	}
	w.genEvent = fn
}
