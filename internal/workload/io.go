package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/space"
	"repro/internal/topology"
)

// This file implements trace persistence: subscriptions and event streams
// round-trip through a line-oriented text format, so externally collected
// workloads (the paper's §6 extension 3: "evaluation of the algorithms
// with real-world data would be helpful") can be fed to the library, and
// generated workloads can be archived for exact reproduction.
//
// Format (one record per line, # comments ignored):
//
//	sub <owner> <lo:hi> <lo:hi> ...     one interval per dimension
//	event <publisher> <x> <x> ...       one coordinate per dimension
//
// Interval ends may be "-inf"/"+inf" for unbounded sides.

// WriteSubscriptions serialises subscriptions.
func WriteSubscriptions(w io.Writer, subs []Subscription) error {
	bw := bufio.NewWriter(w)
	for _, s := range subs {
		fmt.Fprintf(bw, "sub %d", s.Owner)
		for _, iv := range s.Rect {
			fmt.Fprintf(bw, " %s:%s", fmtEnd(iv.Lo), fmtEnd(iv.Hi))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadSubscriptions parses subscriptions written by WriteSubscriptions.
// All records must share one dimensionality.
func ReadSubscriptions(r io.Reader) ([]Subscription, error) {
	var out []Subscription
	dim := -1
	if err := scanLines(r, "sub", func(lineNo int, fields []string) error {
		if len(fields) < 2 {
			return fmt.Errorf("workload: line %d: sub needs owner and intervals", lineNo)
		}
		owner, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("workload: line %d: owner: %v", lineNo, err)
		}
		rect := make(space.Rect, 0, len(fields)-1)
		for _, f := range fields[1:] {
			parts := strings.SplitN(f, ":", 2)
			if len(parts) != 2 {
				return fmt.Errorf("workload: line %d: bad interval %q", lineNo, f)
			}
			lo, err := parseEnd(parts[0], -1)
			if err != nil {
				return fmt.Errorf("workload: line %d: %v", lineNo, err)
			}
			hi, err := parseEnd(parts[1], +1)
			if err != nil {
				return fmt.Errorf("workload: line %d: %v", lineNo, err)
			}
			rect = append(rect, space.Interval{Lo: lo, Hi: hi})
		}
		if rect.Empty() {
			return fmt.Errorf("workload: line %d: empty rectangle", lineNo)
		}
		if dim == -1 {
			dim = rect.Dim()
		} else if rect.Dim() != dim {
			return fmt.Errorf("workload: line %d: dim %d, want %d", lineNo, rect.Dim(), dim)
		}
		out = append(out, Subscription{Owner: topology.NodeID(owner), Rect: rect})
		return nil
	}); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: no subscriptions in trace")
	}
	return out, nil
}

// WriteEvents serialises an event stream.
func WriteEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		fmt.Fprintf(bw, "event %d", e.Pub)
		for _, x := range e.Point {
			fmt.Fprintf(bw, " %s", strconv.FormatFloat(x, 'g', -1, 64))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadEvents parses an event stream written by WriteEvents.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dim := -1
	if err := scanLines(r, "event", func(lineNo int, fields []string) error {
		if len(fields) < 2 {
			return fmt.Errorf("workload: line %d: event needs publisher and coordinates", lineNo)
		}
		pub, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("workload: line %d: publisher: %v", lineNo, err)
		}
		p := make(space.Point, 0, len(fields)-1)
		for _, f := range fields[1:] {
			x, err := strconv.ParseFloat(f, 64)
			if err != nil || math.IsNaN(x) {
				return fmt.Errorf("workload: line %d: coordinate %q", lineNo, f)
			}
			p = append(p, x)
		}
		if dim == -1 {
			dim = len(p)
		} else if len(p) != dim {
			return fmt.Errorf("workload: line %d: dim %d, want %d", lineNo, len(p), dim)
		}
		out = append(out, Event{Pub: topology.NodeID(pub), Point: p})
		return nil
	}); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: no events in trace")
	}
	return out, nil
}

// scanLines drives a record parser over the trace format.
func scanLines(r io.Reader, record string, fn func(lineNo int, fields []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != record {
			return fmt.Errorf("workload: line %d: expected %q record, got %q", lineNo, record, fields[0])
		}
		if err := fn(lineNo, fields[1:]); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	return nil
}

func fmtEnd(x float64) string {
	switch {
	case math.IsInf(x, -1):
		return "-inf"
	case math.IsInf(x, +1):
		return "+inf"
	default:
		return strconv.FormatFloat(x, 'g', -1, 64)
	}
}

func parseEnd(s string, side int) (float64, error) {
	switch s {
	case "-inf":
		return math.Inf(-1), nil
	case "+inf", "inf":
		return math.Inf(+1), nil
	}
	x, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(x) {
		return 0, fmt.Errorf("bad interval end %q", s)
	}
	_ = side
	return x, nil
}
