package workload

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestSubscriptionTraceRoundTrip(t *testing.T) {
	g := testGraph(t, topology.Eval600, 50)
	w, err := NewStockWorld(g, StockConfig{NumSubscriptions: 200, PubModes: 1, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSubscriptions(&sb, w.Subs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSubscriptions(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(w.Subs) {
		t.Fatalf("count %d, want %d", len(got), len(w.Subs))
	}
	for i := range got {
		if got[i].Owner != w.Subs[i].Owner || !got[i].Rect.Equal(w.Subs[i].Rect) {
			t.Fatalf("subscription %d differs:\n%v\n%v", i, got[i], w.Subs[i])
		}
	}
	// Round-tripped subscriptions build a working custom world.
	w2, err := NewCustomWorld(g, w.Axes, got)
	if err != nil {
		t.Fatal(err)
	}
	if w2.NumSubscribers() != w.NumSubscribers() {
		t.Fatal("subscriber set changed through trace")
	}
}

func TestEventTraceRoundTrip(t *testing.T) {
	g := testGraph(t, topology.Eval600, 52)
	w, err := NewStockWorld(g, StockConfig{NumSubscriptions: 50, PubModes: 4, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	evs := w.Events(300, 54)
	var sb strings.Builder
	if err := WriteEvents(&sb, evs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("count %d, want %d", len(got), len(evs))
	}
	for i := range got {
		if got[i].Pub != evs[i].Pub || !pointEq(got[i].Point, evs[i].Point) {
			t.Fatalf("event %d differs: %+v vs %+v", i, got[i], evs[i])
		}
	}
}

func TestTraceUnboundedIntervals(t *testing.T) {
	in := "sub 7 -inf:+inf 3:+inf -inf:5 1:2\n"
	subs, err := ReadSubscriptions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r := subs[0].Rect
	if r[0].Bounded() || r[1].Bounded() || r[2].Bounded() || !r[3].Bounded() {
		t.Fatalf("boundedness wrong: %v", r)
	}
	var sb strings.Builder
	if err := WriteSubscriptions(&sb, subs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-inf:+inf") {
		t.Fatalf("unbounded ends not preserved: %q", sb.String())
	}
}

func TestTraceErrors(t *testing.T) {
	badSubs := []string{
		"",                         // no records
		"event 0 1 2",              // wrong record type
		"sub 7",                    // no intervals
		"sub x 0:1",                // bad owner
		"sub 1 0-1",                // bad interval syntax
		"sub 1 nan:1",              // bad number
		"sub 1 5:5",                // empty rect
		"sub 1 0:1\nsub 2 0:1 0:1", // dim mismatch
	}
	for i, in := range badSubs {
		if _, err := ReadSubscriptions(strings.NewReader(in)); err == nil {
			t.Errorf("sub case %d accepted: %q", i, in)
		}
	}
	badEvents := []string{
		"",
		"sub 1 0:1",
		"event 1",
		"event x 1",
		"event 1 nan",
		"event 1 1\nevent 2 1 2",
	}
	for i, in := range badEvents {
		if _, err := ReadEvents(strings.NewReader(in)); err == nil {
			t.Errorf("event case %d accepted: %q", i, in)
		}
	}
}

func TestTraceCommentsIgnored(t *testing.T) {
	in := "# header\n\nsub 3 0:1 2:3\n# trailing\n"
	subs, err := ReadSubscriptions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Owner != 3 {
		t.Fatalf("parsed %v", subs)
	}
}
