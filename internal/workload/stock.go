package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/topology"
)

// StockConfig parameterises the §5.1 stock-ticker evaluation model.
// Subscriptions are {bst, name, quote, volume} tuples; publications are
// points from a mixture of multivariate normals with PubModes peaks.
type StockConfig struct {
	NumSubscriptions int

	// BlockSplit is the share of subscriptions per transit block; the
	// paper's breakdown is {0.4, 0.3, 0.3}. Defaults to an even split when
	// nil. Length must equal the graph's block count when set.
	BlockSplit []float64

	// StubZipf and NodeZipf are the exponents of the Zipf-like placement
	// laws across a block's stubs and a stub's nodes. Both default to 1.
	StubZipf, NodeZipf float64

	// NameMeans gives each transit block's stock-name interest center; the
	// paper uses {3, 10, 17}. Defaults to evenly spaced means when nil.
	NameMeans []float64

	// PubModes selects the publication mixture: 1, 4 or 9 peaks.
	PubModes int

	Seed int64
}

// The bst attribute codes buy/sell/transaction as 0/1/2 with the paper's
// probabilities.
var bstWeights = []float64{0.4, 0.4, 0.2}

// Parametric interval laws for quote and volume (§5.1 table).
type stockPref struct {
	q0, q1, q2       float64 // wildcard, right-unbounded, left-unbounded
	mu1, s1, mu2, s2 float64
	mu3, s3          float64
	paretoC, paretoA float64
}

var (
	quotePref  = stockPref{q0: 0.15, q1: 0.1, q2: 0.1, mu1: 9, s1: 1, mu2: 9, s2: 1, mu3: 9, s3: 2, paretoC: 4, paretoA: 1}
	volumePref = stockPref{q0: 0.35, q1: 0.1, q2: 0.1, mu1: 9, s1: 1, mu2: 9, s2: 1, mu3: 9, s3: 2, paretoC: 4, paretoA: 1}
)

const (
	nameSigma     = 4.0 // σ of the name interval center around the block mean
	nameLenRanks  = 8   // name interval length ~ Zipf over {1..8}
	nameLenZipf   = 1.0
	stockLenClamp = 24.0 // bounded-Pareto clamp ≈ grid width
)

// NewStockWorld builds a §5.1-model world on the given network (normally
// topology.Eval600).
func NewStockWorld(g *topology.Graph, cfg StockConfig) (*World, error) {
	if err := validateCommon(g, cfg.NumSubscriptions); err != nil {
		return nil, err
	}
	if g.NumBlocks() == 0 || g.NumStubs() == 0 {
		return nil, fmt.Errorf("workload: stock model needs transit blocks and stubs")
	}
	switch cfg.PubModes {
	case 1, 4, 9:
	default:
		return nil, fmt.Errorf("workload: PubModes = %d, need 1, 4 or 9", cfg.PubModes)
	}
	nb := g.NumBlocks()
	if cfg.BlockSplit == nil {
		cfg.BlockSplit = make([]float64, nb)
		for i := range cfg.BlockSplit {
			cfg.BlockSplit[i] = 1 / float64(nb)
		}
	}
	if len(cfg.BlockSplit) != nb {
		return nil, fmt.Errorf("workload: BlockSplit has %d entries for %d blocks", len(cfg.BlockSplit), nb)
	}
	if cfg.StubZipf == 0 {
		cfg.StubZipf = 1
	}
	if cfg.NodeZipf == 0 {
		cfg.NodeZipf = 1
	}
	if cfg.NameMeans == nil {
		cfg.NameMeans = make([]float64, nb)
		for i := range cfg.NameMeans {
			// Evenly spaced over (0, 20); for 3 blocks: 3.33, 10, 16.67 —
			// essentially the paper's {3, 10, 17}.
			cfg.NameMeans[i] = 20 * (float64(i) + 0.5) / float64(nb)
		}
	}
	if len(cfg.NameMeans) != nb {
		return nil, fmt.Errorf("workload: NameMeans has %d entries for %d blocks", len(cfg.NameMeans), nb)
	}

	r := stats.NewRand(cfg.Seed)

	// Placement machinery: block → (Zipf over its stubs) → (Zipf over the
	// stub's nodes). Stub popularity order is randomised once per block so
	// the "popular stub" is not always the structurally first one.
	blockPick := stats.NewCategorical(cfg.BlockSplit)
	stubsOf := make([][]topology.Stub, nb)
	for _, s := range g.Stubs() {
		stubsOf[s.Block] = append(stubsOf[s.Block], s)
	}
	for b := range stubsOf {
		if len(stubsOf[b]) == 0 {
			return nil, fmt.Errorf("workload: block %d has no stubs", b)
		}
		r.Shuffle(len(stubsOf[b]), func(i, j int) {
			stubsOf[b][i], stubsOf[b][j] = stubsOf[b][j], stubsOf[b][i]
		})
	}
	stubZipf := make([]*stats.Zipf, nb)
	for b := range stubZipf {
		stubZipf[b] = stats.NewZipf(len(stubsOf[b]), cfg.StubZipf)
	}

	w := &World{
		Graph: g,
		Dim:   4,
		// Axes cover ≳99% of each publication marginal (bst ~ N(1,1), the
		// rest within roughly N(9..10, ≤6)); cells align with the bst
		// categories and unit-ish attribute granularity.
		Axes: []space.Axis{
			{Lo: -2.5, Hi: 4.5, Cells: 7}, // bst
			{Lo: -6, Hi: 26, Cells: 32},   // name
			{Lo: -6, Hi: 26, Cells: 16},   // quote
			{Lo: -6, Hi: 26, Cells: 16},   // volume
		},
	}

	nameLen := stats.NewZipf(nameLenRanks, nameLenZipf)
	bstPick := stats.NewCategorical(bstWeights)

	w.Subs = make([]Subscription, cfg.NumSubscriptions)
	for i := range w.Subs {
		b := blockPick.Sample(r)
		stub := stubsOf[b][stubZipf[b].Sample(r)]
		nodeZipf := stats.NewZipf(len(stub.Nodes), cfg.NodeZipf)
		owner := stub.Nodes[nodeZipf.Sample(r)]

		rect := make(space.Rect, 4)
		bst := float64(bstPick.Sample(r))
		rect[0] = space.Span(bst-0.5, bst+0.5)

		center := stats.Gaussian(r, cfg.NameMeans[b], nameSigma)
		length := float64(nameLen.Sample(r) + 1)
		rect[1] = space.Span(center-length/2, center+length/2)

		rect[2] = stockInterval(r, quotePref)
		rect[3] = stockInterval(r, volumePref)
		w.Subs[i] = Subscription{Owner: owner, Rect: rect}
	}
	w.finish()

	hosts := stubNodes(g)
	mix := newPubMixture(cfg.PubModes)
	w.genEvent = func(r *rand.Rand) Event {
		pub := hosts[r.Intn(len(hosts))]
		p := make(space.Point, 4)
		for d := range p {
			p[d] = mix[d].Sample(r)
		}
		return Event{Pub: pub, Point: p}
	}
	// The publication model is a product of per-dimension mixtures, so the
	// probability of any rectangle factors exactly.
	w.cellProb = func(r space.Rect) float64 {
		p := 1.0
		for d := range r {
			p *= mix[d].ProbInterval(r[d].Lo, r[d].Hi)
			if p == 0 {
				return 0
			}
		}
		return p
	}
	return w, nil
}

// stockInterval draws one quote/volume preference from the §5.1 parametric
// law: wildcard with q0, right-unbounded (n, +inf) with q1, left-unbounded
// (-inf, n] with q2, otherwise a bounded interval with gaussian center and
// Pareto(c, α) length.
func stockInterval(r *rand.Rand, p stockPref) space.Interval {
	u := r.Float64()
	switch {
	case u < p.q0:
		return space.Full()
	case u < p.q0+p.q1:
		return space.RightOf(stats.Gaussian(r, p.mu1, p.s1))
	case u < p.q0+p.q1+p.q2:
		return space.LeftOf(stats.Gaussian(r, p.mu2, p.s2))
	default:
		center := stats.Gaussian(r, p.mu3, p.s3)
		length := stats.BoundedPareto(r, p.paretoC, p.paretoA, stockLenClamp)
		return space.Span(center-length/2, center+length/2)
	}
}

// newPubMixture builds the per-dimension publication mixtures of §5.1.
//
// The paper's 9-mode table contains a typo (it specifies "third" and
// "fourth" dimensions twice while stating dims 1 and 4 are unchanged); we
// read the two 3-way mixtures as dimensions 2 and 3, the only
// interpretation that yields 3×3 = 9 modes.
func newPubMixture(modes int) [4]*stats.Mixture1D {
	one := func(mu, sigma float64) *stats.Mixture1D {
		return stats.NewMixture1D([]stats.GaussianComponent{{Weight: 1, Mu: mu, Sigma: sigma}})
	}
	var m [4]*stats.Mixture1D
	m[0] = one(1, 1)
	m[3] = one(9, 6)
	switch modes {
	case 1:
		m[1] = one(10, 6)
		m[2] = one(9, 2)
	case 4:
		m[1] = stats.NewMixture1D([]stats.GaussianComponent{
			{Weight: 0.5, Mu: 12, Sigma: 3},
			{Weight: 0.5, Mu: 6, Sigma: 2},
		})
		m[2] = stats.NewMixture1D([]stats.GaussianComponent{
			{Weight: 0.5, Mu: 4, Sigma: 2},
			{Weight: 0.5, Mu: 16, Sigma: 2},
		})
	case 9:
		m[1] = stats.NewMixture1D([]stats.GaussianComponent{
			{Weight: 0.3, Mu: 4, Sigma: 3},
			{Weight: 0.4, Mu: 11, Sigma: 3},
			{Weight: 0.3, Mu: 18, Sigma: 3},
		})
		m[2] = stats.NewMixture1D([]stats.GaussianComponent{
			{Weight: 0.3, Mu: 4, Sigma: 3},
			{Weight: 0.4, Mu: 9, Sigma: 3},
			{Weight: 0.3, Mu: 16, Sigma: 3},
		})
	default:
		panic(fmt.Sprintf("workload: bad mode count %d", modes))
	}
	return m
}
