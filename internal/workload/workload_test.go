package workload

import (
	"math"
	"testing"

	"repro/internal/space"
	"repro/internal/topology"
)

func testGraph(t *testing.T, cfg topology.Config, seed int64) *topology.Graph {
	t.Helper()
	cfg.Seed = seed
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPrefDistString(t *testing.T) {
	if Uniform.String() != "uniform" || Gaussian.String() != "gaussian" {
		t.Error("PrefDist strings wrong")
	}
	if PrefDist(9).String() != "PrefDist(9)" {
		t.Error("unknown PrefDist string wrong")
	}
}

func TestRegionalWorldValidation(t *testing.T) {
	g := testGraph(t, topology.Net100, 1)
	bad := []RegionalConfig{
		{NumSubscriptions: 0},
		{NumSubscriptions: 10, Regionalism: -0.1},
		{NumSubscriptions: 10, Regionalism: 1.1},
		{NumSubscriptions: 10, Dist: PrefDist(7)},
	}
	for i, cfg := range bad {
		if _, err := NewRegionalWorld(g, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewRegionalWorld(nil, RegionalConfig{NumSubscriptions: 1}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestRegionalWorldStructure(t *testing.T) {
	g := testGraph(t, topology.Net100, 2)
	w, err := NewRegionalWorld(g, RegionalConfig{
		NumSubscriptions: 500, Regionalism: 0.4, Dist: Uniform, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Subs) != 500 || w.Dim != 4 {
		t.Fatalf("subs=%d dim=%d", len(w.Subs), w.Dim)
	}
	regional := 0
	for _, s := range w.Subs {
		if s.Rect.Dim() != 4 {
			t.Fatalf("rect dim %d", s.Rect.Dim())
		}
		if g.Node(s.Owner).Kind != topology.StubNode {
			t.Fatalf("subscription owner %d is a transit node", s.Owner)
		}
		if s.Rect.Empty() {
			t.Fatalf("empty subscription rect %v", s.Rect)
		}
		if s.Rect[0].Bounded() {
			regional++
			stub := float64(g.Node(s.Owner).Stub)
			if !s.Rect[0].Contains(stub) {
				t.Fatalf("regional interval %v does not contain own stub %v", s.Rect[0], stub)
			}
		}
		// Non-regional attributes stay within or around the domain.
		for d := 1; d < 4; d++ {
			iv := s.Rect[d]
			if iv.Bounded() && (iv.Hi < attrLo-25 || iv.Lo > attrHi+25) {
				t.Fatalf("attribute %d interval far outside domain: %v", d, iv)
			}
		}
	}
	// ≈40% of subscriptions should be regional.
	frac := float64(regional) / 500
	if frac < 0.3 || frac > 0.5 {
		t.Errorf("regional fraction = %v, want ≈0.4", frac)
	}
	if w.NumSubscribers() == 0 || w.NumSubscribers() > 500 {
		t.Errorf("NumSubscribers = %d", w.NumSubscribers())
	}
	for i, n := range w.SubscriberNodes {
		if j, ok := w.SubscriberIndex(n); !ok || j != i {
			t.Fatalf("SubscriberIndex(%d) = %d,%v", n, j, ok)
		}
	}
	if _, ok := w.SubscriberIndex(topology.NodeID(-1)); ok {
		t.Error("SubscriberIndex of non-subscriber ok")
	}
}

func TestRegionalZeroDegreeHasNoRegionalSubs(t *testing.T) {
	g := testGraph(t, topology.Net100, 4)
	w, err := NewRegionalWorld(g, RegionalConfig{
		NumSubscriptions: 300, Regionalism: 0, Dist: Gaussian, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range w.Subs {
		if s.Rect[0].Bounded() {
			t.Fatalf("regionalism 0 produced regional subscription %v", s.Rect[0])
		}
	}
}

func TestRegionalEvents(t *testing.T) {
	g := testGraph(t, topology.Net100, 6)
	w, err := NewRegionalWorld(g, RegionalConfig{
		NumSubscriptions: 100, Regionalism: 0.4, Dist: Gaussian, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := w.Events(200, 11)
	if len(evs) != 200 {
		t.Fatalf("events = %d", len(evs))
	}
	for _, e := range evs {
		n := g.Node(e.Pub)
		if n.Kind != topology.StubNode {
			t.Fatal("publisher is a transit node")
		}
		if e.Point[0] != float64(n.Stub) {
			t.Fatalf("event regional attr %v != publisher stub %d", e.Point[0], n.Stub)
		}
		for d := 1; d < 4; d++ {
			if e.Point[d] < attrLo || e.Point[d] > attrHi {
				t.Fatalf("gaussian event attribute %d out of domain: %v", d, e.Point[d])
			}
		}
	}
	// Deterministic event stream.
	evs2 := w.Events(200, 11)
	for i := range evs {
		if evs[i].Pub != evs2[i].Pub || !pointEq(evs[i].Point, evs2[i].Point) {
			t.Fatal("event stream not reproducible")
		}
	}
	// Different seed should differ.
	evs3 := w.Events(200, 12)
	same := true
	for i := range evs {
		if evs[i].Pub != evs3[i].Pub || !pointEq(evs[i].Point, evs3[i].Point) {
			same = false
			break
		}
	}
	if same {
		t.Error("different event seeds gave identical streams")
	}
}

func pointEq(a, b space.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestUniformSpecificationDecay(t *testing.T) {
	g := testGraph(t, topology.Net100, 8)
	w, err := NewRegionalWorld(g, RegionalConfig{
		NumSubscriptions: 4000, Regionalism: 0, Dist: Uniform, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := [3]int{}
	for _, s := range w.Subs {
		for d := 0; d < 3; d++ {
			if s.Rect[d+1].Bounded() {
				spec[d]++
			}
		}
	}
	wants := [3]float64{0.98, 0.98 * 0.78, 0.98 * 0.78 * 0.78}
	for d, want := range wants {
		got := float64(spec[d]) / 4000
		if math.Abs(got-want) > 0.03 {
			t.Errorf("attr %d specified fraction %v, want ≈%v", d+2, got, want)
		}
	}
}

func TestStockWorldValidation(t *testing.T) {
	g := testGraph(t, topology.Eval600, 10)
	bad := []StockConfig{
		{NumSubscriptions: 0, PubModes: 1},
		{NumSubscriptions: 10, PubModes: 2},
		{NumSubscriptions: 10, PubModes: 1, BlockSplit: []float64{1}},
		{NumSubscriptions: 10, PubModes: 1, NameMeans: []float64{1, 2}},
	}
	for i, cfg := range bad {
		if _, err := NewStockWorld(g, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestStockWorldStructure(t *testing.T) {
	g := testGraph(t, topology.Eval600, 12)
	w, err := NewStockWorld(g, StockConfig{
		NumSubscriptions: 1000,
		BlockSplit:       []float64{0.4, 0.3, 0.3},
		NameMeans:        []float64{3, 10, 17},
		PubModes:         1,
		Seed:             13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Subs) != 1000 {
		t.Fatalf("subs = %d", len(w.Subs))
	}
	blockCount := make([]int, 3)
	for _, s := range w.Subs {
		n := g.Node(s.Owner)
		if n.Kind != topology.StubNode {
			t.Fatal("owner is transit")
		}
		blockCount[n.Block]++
		// bst is a unit interval around 0, 1 or 2.
		bst := s.Rect[0]
		if !bst.Bounded() || math.Abs(bst.Width()-1) > 1e-9 {
			t.Fatalf("bst interval %v", bst)
		}
		mid := (bst.Lo + bst.Hi) / 2
		if mid != 0 && mid != 1 && mid != 2 {
			t.Fatalf("bst center %v", mid)
		}
		// name is always bounded.
		if !s.Rect[1].Bounded() {
			t.Fatalf("name interval unbounded: %v", s.Rect[1])
		}
	}
	// Block split ≈ 40/30/30.
	if f := float64(blockCount[0]) / 1000; math.Abs(f-0.4) > 0.05 {
		t.Errorf("block 0 share %v, want ≈0.4", f)
	}
	// Zipf placement concentrates subscriptions: the busiest node should
	// hold far more than the mean.
	perNode := map[topology.NodeID]int{}
	for _, s := range w.Subs {
		perNode[s.Owner]++
	}
	max := 0
	for _, c := range perNode {
		if c > max {
			max = c
		}
	}
	mean := 1000.0 / float64(len(perNode))
	if float64(max) < 2*mean {
		t.Errorf("max per-node %d not ≫ mean %v; Zipf placement suspect", max, mean)
	}
}

func TestStockNameCentersFollowBlocks(t *testing.T) {
	g := testGraph(t, topology.Eval600, 14)
	w, err := NewStockWorld(g, StockConfig{
		NumSubscriptions: 2000,
		NameMeans:        []float64{3, 10, 17},
		PubModes:         1,
		Seed:             15,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]float64, 3)
	cnt := make([]int, 3)
	for _, s := range w.Subs {
		b := g.Node(s.Owner).Block
		sum[b] += (s.Rect[1].Lo + s.Rect[1].Hi) / 2
		cnt[b]++
	}
	for b, want := range []float64{3, 10, 17} {
		if cnt[b] == 0 {
			t.Fatalf("block %d empty", b)
		}
		got := sum[b] / float64(cnt[b])
		if math.Abs(got-want) > 1 {
			t.Errorf("block %d mean name center %v, want ≈%v", b, got, want)
		}
	}
}

func TestStockPubModes(t *testing.T) {
	g := testGraph(t, topology.Eval600, 16)
	for _, modes := range []int{1, 4, 9} {
		w, err := NewStockWorld(g, StockConfig{NumSubscriptions: 50, PubModes: modes, Seed: 17})
		if err != nil {
			t.Fatalf("modes %d: %v", modes, err)
		}
		evs := w.Events(3000, 18)
		var d1 []float64
		for _, e := range evs {
			if len(e.Point) != 4 {
				t.Fatal("bad event dim")
			}
			d1 = append(d1, e.Point[1])
		}
		// 4-mode: dim 1 is a 50/50 mixture of N(12,3) and N(6,2) → mean 9;
		// 1-mode: N(10,6) → mean 10.
		m := mean(d1)
		switch modes {
		case 1:
			if math.Abs(m-10) > 0.5 {
				t.Errorf("1-mode dim1 mean %v, want ≈10", m)
			}
		case 4:
			if math.Abs(m-9) > 0.5 {
				t.Errorf("4-mode dim1 mean %v, want ≈9", m)
			}
		case 9:
			want := 0.3*4 + 0.4*11 + 0.3*18
			if math.Abs(m-want) > 0.5 {
				t.Errorf("9-mode dim1 mean %v, want ≈%v", m, want)
			}
		}
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestStockGridCoversMostEvents(t *testing.T) {
	g := testGraph(t, topology.Eval600, 19)
	w, err := NewStockWorld(g, StockConfig{NumSubscriptions: 100, PubModes: 1, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := space.NewGrid(w.Axes)
	if err != nil {
		t.Fatal(err)
	}
	in := 0
	evs := w.Events(2000, 21)
	for _, e := range evs {
		if _, ok := grid.Locate(e.Point); ok {
			in++
		}
	}
	if frac := float64(in) / float64(len(evs)); frac < 0.9 {
		t.Errorf("only %v of events inside the suggested grid", frac)
	}
}

func TestStockDefaultsApplied(t *testing.T) {
	g := testGraph(t, topology.Eval600, 22)
	w, err := NewStockWorld(g, StockConfig{NumSubscriptions: 100, PubModes: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Subs) != 100 {
		t.Fatal("defaults failed")
	}
}

func TestWorldReproducibleSubscriptions(t *testing.T) {
	g := testGraph(t, topology.Eval600, 24)
	mk := func() *World {
		w, err := NewStockWorld(g, StockConfig{NumSubscriptions: 200, PubModes: 4, Seed: 25})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := mk(), mk()
	for i := range a.Subs {
		if a.Subs[i].Owner != b.Subs[i].Owner || !a.Subs[i].Rect.Equal(b.Subs[i].Rect) {
			t.Fatal("subscriptions not reproducible")
		}
	}
}
