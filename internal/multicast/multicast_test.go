package multicast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func lineGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(topology.NodeID(i), topology.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestMethodString(t *testing.T) {
	cases := map[Method]string{
		Unicast:           "unicast",
		Broadcast:         "broadcast",
		Ideal:             "ideal",
		NetworkMulticast:  "network-multicast",
		AppLevelMulticast: "app-level-multicast",
		Method(99):        "Method(99)",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestUnicastCost(t *testing.T) {
	m := NewModel(lineGraph(t, 5))
	// From node 0 to {1, 3, 3}: 1 + 3 + 3 (repeats charged).
	got := m.UnicastCost(0, []topology.NodeID{1, 3, 3})
	if got != 7 {
		t.Errorf("UnicastCost = %v, want 7", got)
	}
	if m.UnicastCost(0, nil) != 0 {
		t.Error("empty unicast not free")
	}
	if m.UnicastCost(2, []topology.NodeID{2}) != 0 {
		t.Error("self delivery not free")
	}
}

func TestBroadcastCost(t *testing.T) {
	m := NewModel(lineGraph(t, 5))
	if got := m.BroadcastCost(0); got != 4 {
		t.Errorf("BroadcastCost = %v, want 4", got)
	}
	// Broadcast from the middle uses the same tree edges.
	if got := m.BroadcastCost(2); got != 4 {
		t.Errorf("BroadcastCost(2) = %v, want 4", got)
	}
}

func TestSPTCoverCost(t *testing.T) {
	m := NewModel(lineGraph(t, 6))
	// Cover {2, 4} from 0: edges 0-1,1-2,2-3,3-4 = 4 (shared prefix once).
	if got := m.SPTCoverCost(0, []topology.NodeID{2, 4}); got != 4 {
		t.Errorf("cover = %v, want 4", got)
	}
	// Ideal ≤ unicast always.
	if m.SPTCoverCost(0, []topology.NodeID{2, 4}) > m.UnicastCost(0, []topology.NodeID{2, 4}) {
		t.Error("cover exceeds unicast")
	}
}

func TestDistMatchesSPT(t *testing.T) {
	cfg := topology.Net100
	cfg.Seed = 8
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(g)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		u := topology.NodeID(r.Intn(g.NumNodes()))
		v := topology.NodeID(r.Intn(g.NumNodes()))
		if math.Abs(m.Dist(u, v)-m.Dist(v, u)) > 1e-9 {
			t.Fatalf("Dist asymmetric for %d,%d", u, v)
		}
	}
}

func TestBuildOverlayLine(t *testing.T) {
	m := NewModel(lineGraph(t, 5))
	o := m.BuildOverlay([]topology.NodeID{0, 2, 4})
	if o.TreeCost != 4 {
		t.Errorf("overlay TreeCost = %v, want 4", o.TreeCost)
	}
	if len(o.Edges) != 2 {
		t.Errorf("overlay edges = %v", o.Edges)
	}
	// Member list must be a copy.
	in := []topology.NodeID{1, 3}
	o2 := m.BuildOverlay(in)
	in[0] = 99
	if o2.Members[0] != 1 {
		t.Error("overlay aliases caller slice")
	}
}

func TestALMCost(t *testing.T) {
	m := NewModel(lineGraph(t, 5))
	o := m.BuildOverlay([]topology.NodeID{2, 4})
	// Overlay tree cost 2; publisher 0 enters via node 2 (dist 2) → 4.
	if got := m.ALMCost(0, o); got != 4 {
		t.Errorf("ALMCost = %v, want 4", got)
	}
	// Publisher inside the group pays only the tree.
	if got := m.ALMCost(2, o); got != 2 {
		t.Errorf("ALMCost member = %v, want 2", got)
	}
	if got := m.ALMCost(0, Overlay{}); got != 0 {
		t.Errorf("empty overlay cost = %v", got)
	}
	single := m.BuildOverlay([]topology.NodeID{3})
	if got := m.ALMCost(0, single); got != 3 {
		t.Errorf("singleton overlay cost = %v, want 3", got)
	}
}

func TestALMCostlierThanNetworkMulticastOnAverage(t *testing.T) {
	// App-level multicast pays unicast path costs between overlay members,
	// so on average it is more expensive than dense-mode network multicast
	// for the same group — the paper's plots show exactly this gap. (A
	// single event can go either way: the overlay MST is unconstrained
	// while the SPT cover must follow publisher-rooted shortest paths.)
	cfg := topology.Eval600
	cfg.Seed = 2
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(g)
	r := rand.New(rand.NewSource(7))
	var netTotal, almTotal float64
	for trial := 0; trial < 60; trial++ {
		k := 2 + r.Intn(20)
		members := make([]topology.NodeID, 0, k)
		seen := map[topology.NodeID]bool{}
		for len(members) < k {
			v := topology.NodeID(r.Intn(g.NumNodes()))
			if !seen[v] {
				seen[v] = true
				members = append(members, v)
			}
		}
		pub := topology.NodeID(r.Intn(g.NumNodes()))
		netTotal += m.SPTCoverCost(pub, members)
		almTotal += m.ALMCost(pub, m.BuildOverlay(members))
	}
	if almTotal < netTotal {
		t.Fatalf("average ALM %v < average network multicast %v", almTotal, netTotal)
	}
}

func TestCostOrderingInvariants(t *testing.T) {
	// ideal ≤ network multicast to any superset; ideal ≤ broadcast.
	cfg := topology.Net100
	cfg.Seed = 11
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(g)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		pub := topology.NodeID(r.Intn(g.NumNodes()))
		var interested, superset []topology.NodeID
		for i := 0; i < g.NumNodes(); i++ {
			if r.Float64() < 0.1 {
				interested = append(interested, topology.NodeID(i))
				superset = append(superset, topology.NodeID(i))
			} else if r.Float64() < 0.1 {
				superset = append(superset, topology.NodeID(i))
			}
		}
		ideal := m.SPTCoverCost(pub, interested)
		super := m.SPTCoverCost(pub, superset)
		if ideal > super+1e-9 {
			t.Fatalf("ideal %v > superset cover %v", ideal, super)
		}
		if ideal > m.BroadcastCost(pub)+1e-9 {
			t.Fatalf("ideal %v > broadcast %v", ideal, m.BroadcastCost(pub))
		}
		if ideal > m.UnicastCost(pub, interested)+1e-9 {
			t.Fatalf("ideal %v > unicast %v", ideal, m.UnicastCost(pub, interested))
		}
	}
}

func TestQuickCoverMonotone(t *testing.T) {
	cfg := topology.Net100
	cfg.Seed = 13
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(g)
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pub := topology.NodeID(r.Intn(g.NumNodes()))
		var small, big []topology.NodeID
		for i := 0; i < g.NumNodes(); i++ {
			p := r.Float64()
			if p < 0.05 {
				small = append(small, topology.NodeID(i))
			}
			if p < 0.15 {
				big = append(big, topology.NodeID(i))
			}
		}
		return m.SPTCoverCost(pub, small) <= m.SPTCoverCost(pub, big)+1e-9
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
