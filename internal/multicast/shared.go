package multicast

import (
	"math"
	"sync/atomic"

	"repro/internal/routing"
	"repro/internal/topology"
)

// SharedSPTs is a concurrency-safe shortest-path-tree cache: one SPT per
// publisher root, filled lazily with a compare-and-swap. Dijkstra is
// deterministic on an immutable graph, so two goroutines racing to fill
// the same root compute identical trees and whichever CAS wins is
// indistinguishable from the other. Readers take lock-free atomic loads.
type SharedSPTs struct {
	g    *topology.Graph
	spts []atomic.Pointer[routing.SPT]
}

// NewSharedSPTs creates a shared cache over g. The graph must not be
// mutated afterwards.
func NewSharedSPTs(g *topology.Graph) *SharedSPTs {
	return &SharedSPTs{g: g, spts: make([]atomic.Pointer[routing.SPT], g.NumNodes())}
}

// Graph returns the underlying network.
func (s *SharedSPTs) Graph() *topology.Graph { return s.g }

// SPT returns the shortest-path tree rooted at root, computing and caching
// it on first use. Safe for concurrent use.
func (s *SharedSPTs) SPT(root topology.NodeID) *routing.SPT {
	if t := s.spts[root].Load(); t != nil {
		return t
	}
	t := routing.Dijkstra(s.g, root)
	if !s.spts[root].CompareAndSwap(nil, t) {
		return s.spts[root].Load() // lost the race; identical tree
	}
	return t
}

// NewView creates a per-goroutine view over the shared cache. Views are
// cheap; create one per decision worker.
func (s *SharedSPTs) NewView() *SPTView {
	return &SPTView{shared: s, covs: make([]*routing.Coverer, s.g.NumNodes())}
}

// SPTView is one goroutine's window onto a SharedSPTs cache. SPTs are
// shared (they are immutable after construction) but each view owns its
// Coverers, whose epoch-stamped scratch state is not concurrency-safe.
// A view is NOT safe for concurrent use; a SharedSPTs and its SPTs are.
//
// SPTView implements the same cost queries as Model (Dist, BroadcastCost,
// SPTCoverCost, ALMCost) and, being backed by the same Dijkstra trees,
// returns bit-identical results.
type SPTView struct {
	shared *SharedSPTs
	covs   []*routing.Coverer
}

// SPT returns the (shared, immutable) tree rooted at root.
func (v *SPTView) SPT(root topology.NodeID) *routing.SPT {
	return v.shared.SPT(root)
}

func (v *SPTView) coverer(root topology.NodeID) *routing.Coverer {
	if v.covs[root] == nil {
		v.covs[root] = routing.NewCoverer(v.SPT(root))
	}
	return v.covs[root]
}

// Dist returns the shortest-path distance between two nodes.
func (v *SPTView) Dist(u, w topology.NodeID) float64 {
	return v.SPT(u).Dist[w]
}

// BroadcastCost is the cost of flooding the network from pub.
func (v *SPTView) BroadcastCost(pub topology.NodeID) float64 {
	return v.SPT(pub).TreeCost()
}

// SPTCoverCost is the cost of pub's SPT pruned to the target set.
func (v *SPTView) SPTCoverCost(pub topology.NodeID, targets []topology.NodeID) float64 {
	return v.coverer(pub).Cost(targets)
}

// ALMCost is the application-level multicast delivery cost to the overlay.
func (v *SPTView) ALMCost(pub topology.NodeID, o Overlay) float64 {
	return almCost(v.SPT(pub), o)
}

// almCost prices one ALM delivery against the publisher's SPT: the
// cheapest unicast hop into the overlay plus the full overlay tree. Shared
// by Model and SPTView so both return identical numbers.
func almCost(spt *routing.SPT, o Overlay) float64 {
	if len(o.Members) == 0 {
		return 0
	}
	entry := math.Inf(1)
	for _, v := range o.Members {
		if v == spt.Root {
			entry = 0
			break
		}
		if d := spt.Dist[v]; d < entry {
			entry = d
		}
	}
	if math.IsInf(entry, 1) {
		return 0 // group unreachable; nothing deliverable
	}
	return entry + o.TreeCost
}
