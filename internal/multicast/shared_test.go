package multicast

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/topology"
)

func testGraph(t *testing.T, seed int64) *topology.Graph {
	t.Helper()
	cfg := topology.Net100
	cfg.Seed = seed
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSPTViewMatchesModel: every cost query on an SPTView must be
// bit-identical to the single-threaded Model over the same graph — the
// property the snapshot decision plane's determinism rests on.
func TestSPTViewMatchesModel(t *testing.T) {
	g := testGraph(t, 500)
	m := NewModel(g)
	v := NewSharedSPTs(g).NewView()
	rng := rand.New(rand.NewSource(501))
	n := g.NumNodes()

	randNodes := func(k int) []topology.NodeID {
		out := make([]topology.NodeID, k)
		for i := range out {
			out[i] = topology.NodeID(rng.Intn(n))
		}
		return out
	}

	for trial := 0; trial < 200; trial++ {
		u := topology.NodeID(rng.Intn(n))
		w := topology.NodeID(rng.Intn(n))
		if m.Dist(u, w) != v.Dist(u, w) {
			t.Fatalf("Dist(%d,%d): model %v, view %v", u, w, m.Dist(u, w), v.Dist(u, w))
		}
		if m.BroadcastCost(u) != v.BroadcastCost(u) {
			t.Fatalf("BroadcastCost(%d) diverged", u)
		}
		targets := randNodes(1 + rng.Intn(12))
		if mc, vc := m.SPTCoverCost(u, targets), v.SPTCoverCost(u, targets); mc != vc {
			t.Fatalf("SPTCoverCost(%d, %v): model %v, view %v", u, targets, mc, vc)
		}
		o := m.BuildOverlay(randNodes(2 + rng.Intn(8)))
		if mc, vc := m.ALMCost(u, o), v.ALMCost(u, o); mc != vc {
			t.Fatalf("ALMCost(%d): model %v, view %v", u, mc, vc)
		}
	}

	// Degenerate overlays.
	if v.ALMCost(0, Overlay{}) != 0 {
		t.Error("empty overlay not free")
	}
	root := Overlay{Members: []topology.NodeID{3}, TreeCost: 0}
	if m.ALMCost(3, root) != v.ALMCost(3, root) {
		t.Error("self-membership overlay diverged")
	}
}

// TestSharedSPTsConcurrentFill: many goroutines racing to fill the same
// roots must agree on the resulting trees (run under -race this also
// proves the CAS publication is clean).
func TestSharedSPTsConcurrentFill(t *testing.T) {
	g := testGraph(t, 502)
	s := NewSharedSPTs(g)
	n := g.NumNodes()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			view := s.NewView()
			for i := 0; i < 200; i++ {
				root := topology.NodeID(rng.Intn(n))
				spt := view.SPT(root)
				if spt.Root != root {
					t.Errorf("SPT root %d, want %d", spt.Root, root)
					return
				}
				view.SPTCoverCost(root, []topology.NodeID{topology.NodeID(rng.Intn(n))})
			}
		}(int64(503 + w))
	}
	wg.Wait()

	// After the dust settles every root resolves to one stable tree.
	for i := 0; i < n; i++ {
		root := topology.NodeID(i)
		if s.SPT(root) != s.SPT(root) {
			t.Fatalf("root %d not cached stably", root)
		}
	}
}
