// Package multicast implements the paper's communication-cost model. Costs
// are sums of edge costs over the links a message traverses (§5.2):
//
//   - unicast: one shortest path per delivery (per matching subscription);
//   - broadcast: the full shortest-path tree rooted at the publisher;
//   - ideal multicast: the SPT pruned to exactly the interested nodes —
//     the per-event lower bound the paper normalises against;
//   - dense-mode network multicast to a precomputed group: the SPT pruned
//     to the group members;
//   - application-level multicast: group members form an overlay MST in the
//     unicast metric closure and forward member-to-member; the publisher
//     enters the overlay via its cheapest unicast hop.
//
// A Model lazily caches one shortest-path tree per publisher so replaying a
// long event stream costs one Dijkstra per distinct publisher.
package multicast

import (
	"fmt"
	"math"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Method enumerates distribution methods.
type Method uint8

// Distribution methods.
const (
	Unicast Method = iota
	Broadcast
	Ideal
	NetworkMulticast
	AppLevelMulticast
)

func (m Method) String() string {
	switch m {
	case Unicast:
		return "unicast"
	case Broadcast:
		return "broadcast"
	case Ideal:
		return "ideal"
	case NetworkMulticast:
		return "network-multicast"
	case AppLevelMulticast:
		return "app-level-multicast"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Model evaluates delivery costs on one network. It is not safe for
// concurrent use; create one Model per goroutine.
type Model struct {
	g    *topology.Graph
	spts []*routing.SPT
	covs []*routing.Coverer
}

// NewModel creates a cost model over g.
func NewModel(g *topology.Graph) *Model {
	return &Model{
		g:    g,
		spts: make([]*routing.SPT, g.NumNodes()),
		covs: make([]*routing.Coverer, g.NumNodes()),
	}
}

// Graph returns the underlying network.
func (m *Model) Graph() *topology.Graph { return m.g }

// SPT returns the (cached) shortest-path tree rooted at root.
func (m *Model) SPT(root topology.NodeID) *routing.SPT {
	if m.spts[root] == nil {
		m.spts[root] = routing.Dijkstra(m.g, root)
		m.covs[root] = routing.NewCoverer(m.spts[root])
	}
	return m.spts[root]
}

func (m *Model) coverer(root topology.NodeID) *routing.Coverer {
	m.SPT(root)
	return m.covs[root]
}

// Dist returns the shortest-path distance between two nodes.
func (m *Model) Dist(u, v topology.NodeID) float64 {
	return m.SPT(u).Dist[v]
}

// UnicastCost is the cost of separately unicasting to every target. Targets
// may repeat (one delivery per matching subscription, the paper's unicast
// accounting) and each repeat is charged.
func (m *Model) UnicastCost(pub topology.NodeID, targets []topology.NodeID) float64 {
	spt := m.SPT(pub)
	c := 0.0
	for _, v := range targets {
		d := spt.Dist[v]
		if math.IsInf(d, 1) {
			continue
		}
		c += d
	}
	return c
}

// BroadcastCost is the cost of flooding the whole network along the
// publisher's shortest-path tree.
func (m *Model) BroadcastCost(pub topology.NodeID) float64 {
	return m.SPT(pub).TreeCost()
}

// SPTCoverCost is the cost of the publisher's SPT pruned to the given
// node set (each shared edge charged once). With targets = interested
// nodes this is the paper's ideal multicast; with targets = group members
// it is dense-mode network-supported group multicast.
func (m *Model) SPTCoverCost(pub topology.NodeID, targets []topology.NodeID) float64 {
	return m.coverer(pub).Cost(targets)
}

// Overlay is a precomputed application-level multicast overlay for one
// multicast group: the MST of the group members in the unicast metric
// closure.
type Overlay struct {
	Members  []topology.NodeID
	TreeCost float64
	// Edges are pairs of indices into Members.
	Edges [][2]int
}

// BuildOverlay computes a group's application-level overlay. The member
// list is copied.
func (m *Model) BuildOverlay(members []topology.NodeID) Overlay {
	ms := make([]topology.NodeID, len(members))
	copy(ms, members)
	cost, edges := overlayMST(m.SPT, ms)
	return Overlay{Members: ms, TreeCost: cost, Edges: edges}
}

// BuildOverlayShared computes a group's application-level overlay against a
// shared SPT cache. Safe for concurrent use (SharedSPTs fills roots with
// CAS), and — being Prim over the same deterministic Dijkstra trees —
// returns an overlay bit-identical to Model.BuildOverlay over the same
// graph. The decide plane uses this to build overlays lazily, on the worker
// that first prices a group, instead of eagerly on the engine's writer.
func BuildOverlayShared(s *SharedSPTs, members []topology.NodeID) Overlay {
	ms := make([]topology.NodeID, len(members))
	copy(ms, members)
	cost, edges := overlayMST(s.SPT, ms)
	return Overlay{Members: ms, TreeCost: cost, Edges: edges}
}

// overlayMST is Prim's algorithm over the metric closure; sptOf supplies
// the (cached) shortest-path tree per member root.
func overlayMST(sptOf func(topology.NodeID) *routing.SPT, members []topology.NodeID) (float64, [][2]int) {
	k := len(members)
	if k <= 1 {
		return 0, nil
	}
	inTree := make([]bool, k)
	best := make([]float64, k)
	bestFrom := make([]int, k)
	d0 := sptOf(members[0]).Dist
	for j := 1; j < k; j++ {
		best[j] = d0[members[j]]
		bestFrom[j] = 0
	}
	inTree[0] = true
	total := 0.0
	edges := make([][2]int, 0, k-1)
	for added := 1; added < k; added++ {
		pick := -1
		for j := 0; j < k; j++ {
			if !inTree[j] && (pick == -1 || best[j] < best[pick]) {
				pick = j
			}
		}
		if math.IsInf(best[pick], 1) {
			panic("multicast: overlay over disconnected members")
		}
		inTree[pick] = true
		total += best[pick]
		edges = append(edges, [2]int{bestFrom[pick], pick})
		dp := sptOf(members[pick]).Dist
		for j := 0; j < k; j++ {
			if !inTree[j] && dp[members[j]] < best[j] {
				best[j] = dp[members[j]]
				bestFrom[j] = pick
			}
		}
	}
	return total, edges
}

// ALMCost is the cost of delivering one event to the overlay group: the
// publisher's cheapest unicast hop into the overlay plus the full overlay
// tree. A publisher that is itself a member enters for free.
func (m *Model) ALMCost(pub topology.NodeID, o Overlay) float64 {
	return almCost(m.SPT(pub), o)
}
