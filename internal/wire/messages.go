package wire

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Type is a frame's message type, the first payload byte.
type Type byte

// Frame types.
const (
	TypeHello        Type = 1  // client → server: version + session handshake
	TypeHelloAck     Type = 2  // server → client: handshake accepted
	TypeSubscribe    Type = 3  // client → server: register an interest rectangle
	TypeSubscribed   Type = 4  // server → client: subscribe reply (slot or error)
	TypeUnsubscribe  Type = 5  // client → server: drop a subscription by slot
	TypeUnsubscribed Type = 6  // server → client: unsubscribe reply
	TypePublish      Type = 7  // client → server: one client-sequenced event
	TypePubAck       Type = 8  // server → client: publish reply (exactly-once ack)
	TypeDeliver      Type = 9  // server → client: a batch of deliveries
	TypeAck          Type = 10 // client → server: cumulative delivery ack + credits
	TypeCredit       Type = 11 // client → server: credit grant alone
	TypePing         Type = 12 // either direction: liveness probe
	TypePong         Type = 13 // reply to ping
	TypeDrain        Type = 14 // server → client: draining, publishes now refused
	TypeGoodbye      Type = 15 // either direction: orderly session end
	TypeError        Type = 16 // terminal protocol error, then close
)

// Error codes carried by TypeError frames.
const (
	CodeVersion  byte = 1 // hello version not spoken by the server
	CodeBadFrame byte = 2 // malformed or out-of-protocol frame
	CodeDraining byte = 3 // server is draining; reconnect elsewhere/later
	CodeSession  byte = 4 // resume token unknown or expired
	CodeInternal byte = 5 // unexpected server-side failure
)

// ErrBadMessage reports a structurally invalid payload for its type.
var ErrBadMessage = errors.New("wire: malformed message")

// MsgType returns a payload's frame type (0 for an empty payload).
func MsgType(payload []byte) Type {
	if len(payload) == 0 {
		return 0
	}
	return Type(payload[0])
}

// Hello opens a connection. Session 0 asks for a fresh session; a
// non-zero Session resumes one, with LastDid the highest delivery id the
// client has received (the server re-sends everything after it). Credits
// is the client's initial delivery window: the server never has more than
// Credits unacknowledged deliveries outstanding.
type Hello struct {
	Version uint16
	Session uint64
	LastDid int64
	Credits uint32
}

// HelloAck accepts a hello. Resumed reports whether the server restored
// an existing session (false ⇒ Session names a fresh one).
type HelloAck struct {
	Version uint16
	Session uint64
	Resumed bool
}

// Subscribed is the subscribe reply: the broker slot granted, or an
// error.
type Subscribed struct {
	ReqID int64
	Slot  int64
	Err   string
}

// Subscribe registers one interest rectangle owned by a node.
type Subscribe struct {
	ReqID int64
	Owner topology.NodeID
	Rect  space.Rect
}

// Unsubscribe drops a subscription by its broker slot.
type Unsubscribe struct {
	ReqID int64
	Slot  int64
}

// Unsubscribed is the unsubscribe reply.
type Unsubscribed struct {
	ReqID int64
	Err   string
}

// Publish carries one event under the client's publish sequence number.
// The server dedups PSeq per session (bounded window), so a publish
// retransmitted after a reconnect enters the broker exactly once.
type Publish struct {
	PSeq int64
	Ev   workload.Event
}

// PubAck acknowledges a publish; a non-empty Err reports rejection
// (overload, draining, closed). Seq is the broker publication sequence
// the event consumed, -1 when it never entered the broker's history —
// deliveries of the event carry the same seq, which is how a federation
// router correlates a remote shard's deliveries with its own fan-out.
type PubAck struct {
	PSeq int64
	Seq  int64
	Err  string
}

// Deliver is one delivery inside a TypeDeliver batch. Did is the
// per-session delivery id (contiguous, assigned at enqueue — the resume
// watermark); Seq is the broker's publication sequence number; Node is
// the subscriber node the delivery is addressed to (a session subscribed
// for several owners needs the attribution).
type Deliver struct {
	Did        int64
	Node       topology.NodeID
	Seq        int64
	Ev         workload.Event
	Method     byte
	Group      int32
	Interested bool
}

// Ack cumulatively acknowledges deliveries through Did and returns Credit
// delivery credits to the server.
type Ack struct {
	Did    int64
	Credit uint32
}

// ErrorMsg is a terminal protocol error.
type ErrorMsg struct {
	Code byte
	Msg  string
}

// ---- encoding ----------------------------------------------------------

func appendString(b []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	b = le16(b, uint16(len(s)))
	return append(b, s...)
}

func le16(b []byte, v uint16) []byte   { return append(b, byte(v), byte(v>>8)) }
func le32(b []byte, v uint32) []byte   { return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func le64(b []byte, v uint64) []byte   { return le32(le32(b, uint32(v)), uint32(v>>32)) }
func lei64(b []byte, v int64) []byte   { return le64(b, uint64(v)) }
func lef64(b []byte, v float64) []byte { return le64(b, math.Float64bits(v)) }

func appendEvent(b []byte, ev workload.Event) []byte {
	b = lei64(b, int64(ev.Pub))
	b = le16(b, uint16(len(ev.Point)))
	for _, x := range ev.Point {
		b = lef64(b, x)
	}
	return b
}

// AppendHello encodes a hello frame payload.
func AppendHello(b []byte, h Hello) []byte {
	b = append(b, byte(TypeHello))
	b = le16(b, h.Version)
	b = le64(b, h.Session)
	b = lei64(b, h.LastDid)
	return le32(b, h.Credits)
}

// AppendHelloAck encodes a helloAck frame payload.
func AppendHelloAck(b []byte, h HelloAck) []byte {
	b = append(b, byte(TypeHelloAck))
	b = le16(b, h.Version)
	b = le64(b, h.Session)
	if h.Resumed {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendSubscribe encodes a subscribe frame payload.
func AppendSubscribe(b []byte, s Subscribe) []byte {
	b = append(b, byte(TypeSubscribe))
	b = lei64(b, s.ReqID)
	b = lei64(b, int64(s.Owner))
	b = le16(b, uint16(len(s.Rect)))
	for _, iv := range s.Rect {
		b = lef64(b, iv.Lo)
		b = lef64(b, iv.Hi)
	}
	return b
}

// AppendSubscribed encodes a subscribe reply payload.
func AppendSubscribed(b []byte, s Subscribed) []byte {
	b = append(b, byte(TypeSubscribed))
	b = lei64(b, s.ReqID)
	b = lei64(b, s.Slot)
	return appendString(b, s.Err)
}

// AppendUnsubscribe encodes an unsubscribe frame payload.
func AppendUnsubscribe(b []byte, u Unsubscribe) []byte {
	b = append(b, byte(TypeUnsubscribe))
	b = lei64(b, u.ReqID)
	return lei64(b, u.Slot)
}

// AppendUnsubscribed encodes an unsubscribe reply payload.
func AppendUnsubscribed(b []byte, u Unsubscribed) []byte {
	b = append(b, byte(TypeUnsubscribed))
	b = lei64(b, u.ReqID)
	return appendString(b, u.Err)
}

// AppendPublish encodes a publish frame payload.
func AppendPublish(b []byte, p Publish) []byte {
	b = append(b, byte(TypePublish))
	b = lei64(b, p.PSeq)
	return appendEvent(b, p.Ev)
}

// AppendPubAck encodes a publish reply payload.
func AppendPubAck(b []byte, p PubAck) []byte {
	b = append(b, byte(TypePubAck))
	b = lei64(b, p.PSeq)
	b = lei64(b, p.Seq)
	return appendString(b, p.Err)
}

// AppendDeliverBatch encodes a batch of deliveries that shared a flush
// window into one frame payload.
func AppendDeliverBatch(b []byte, ds []Deliver) []byte {
	b = append(b, byte(TypeDeliver))
	b = le16(b, uint16(len(ds)))
	for _, d := range ds {
		b = lei64(b, d.Did)
		b = lei64(b, int64(d.Node))
		b = lei64(b, d.Seq)
		b = appendEvent(b, d.Ev)
		b = append(b, d.Method)
		b = le32(b, uint32(d.Group))
		if d.Interested {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// AppendAck encodes a cumulative ack + credit grant payload.
func AppendAck(b []byte, a Ack) []byte {
	b = append(b, byte(TypeAck))
	b = lei64(b, a.Did)
	return le32(b, a.Credit)
}

// AppendCredit encodes a bare credit grant payload.
func AppendCredit(b []byte, n uint32) []byte {
	b = append(b, byte(TypeCredit))
	return le32(b, n)
}

// AppendPing encodes a ping payload.
func AppendPing(b []byte, nonce uint64) []byte {
	return le64(append(b, byte(TypePing)), nonce)
}

// AppendPong encodes a pong payload.
func AppendPong(b []byte, nonce uint64) []byte {
	return le64(append(b, byte(TypePong)), nonce)
}

// AppendDrain encodes a drain notification payload.
func AppendDrain(b []byte) []byte { return append(b, byte(TypeDrain)) }

// AppendGoodbye encodes an orderly-close payload.
func AppendGoodbye(b []byte) []byte { return append(b, byte(TypeGoodbye)) }

// AppendError encodes a terminal error payload.
func AppendError(b []byte, e ErrorMsg) []byte {
	b = append(b, byte(TypeError), e.Code)
	return appendString(b, e.Msg)
}

// ---- decoding ----------------------------------------------------------

// cursor is a bounds-checked little-endian reader (the durable journal's
// decoding discipline).
type cursor struct {
	b   []byte
	off int
	bad bool
}

func (c *cursor) u8() byte {
	if c.bad || c.off+1 > len(c.b) {
		c.bad = true
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u16() uint16 {
	if c.bad || c.off+2 > len(c.b) {
		c.bad = true
		return 0
	}
	v := uint16(c.b[c.off]) | uint16(c.b[c.off+1])<<8
	c.off += 2
	return v
}

func (c *cursor) u32() uint32 {
	if c.bad || c.off+4 > len(c.b) {
		c.bad = true
		return 0
	}
	v := uint32(c.b[c.off]) | uint32(c.b[c.off+1])<<8 |
		uint32(c.b[c.off+2])<<16 | uint32(c.b[c.off+3])<<24
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	lo := uint64(c.u32())
	return lo | uint64(c.u32())<<32
}

func (c *cursor) i64() int64   { return int64(c.u64()) }
func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) str() string {
	n := int(c.u16())
	if c.bad || c.off+n > len(c.b) {
		c.bad = true
		return ""
	}
	v := string(c.b[c.off : c.off+n])
	c.off += n
	return v
}

func (c *cursor) event() workload.Event {
	var ev workload.Event
	ev.Pub = topology.NodeID(c.i64())
	dim := int(c.u16())
	if c.bad || dim > 1024 || c.off+8*dim > len(c.b) {
		c.bad = true
		return ev
	}
	ev.Point = make(space.Point, dim)
	for i := range ev.Point {
		ev.Point[i] = c.f64()
	}
	return ev
}

// done reports a decoding error if the cursor overran or bytes remain.
func (c *cursor) done() error {
	if c.bad {
		return fmt.Errorf("%w: truncated payload", ErrBadMessage)
	}
	if c.off != len(c.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(c.b)-c.off)
	}
	return nil
}

// open validates the frame type and positions a cursor after the type
// byte. It returns the cursor by value — callers keep it on the stack, so
// decoding allocates only for the message's own variable-length fields
// (strings, points), never for the decoding machinery itself.
func open(payload []byte, want Type) (cursor, error) {
	if MsgType(payload) != want {
		return cursor{}, fmt.Errorf("%w: type %d, want %d", ErrBadMessage, MsgType(payload), want)
	}
	return cursor{b: payload, off: 1}, nil
}

// DecodeHello decodes a hello payload.
func DecodeHello(payload []byte) (Hello, error) {
	var h Hello
	c, err := open(payload, TypeHello)
	if err != nil {
		return h, err
	}
	h.Version = c.u16()
	h.Session = c.u64()
	h.LastDid = c.i64()
	h.Credits = c.u32()
	return h, c.done()
}

// DecodeHelloAck decodes a helloAck payload.
func DecodeHelloAck(payload []byte) (HelloAck, error) {
	var h HelloAck
	c, err := open(payload, TypeHelloAck)
	if err != nil {
		return h, err
	}
	h.Version = c.u16()
	h.Session = c.u64()
	h.Resumed = c.u8() != 0
	return h, c.done()
}

// DecodeSubscribe decodes a subscribe payload.
func DecodeSubscribe(payload []byte) (Subscribe, error) {
	var s Subscribe
	c, err := open(payload, TypeSubscribe)
	if err != nil {
		return s, err
	}
	s.ReqID = c.i64()
	s.Owner = topology.NodeID(c.i64())
	dim := int(c.u16())
	if dim > 1024 {
		return s, fmt.Errorf("%w: rect dim %d", ErrBadMessage, dim)
	}
	s.Rect = make(space.Rect, dim)
	for i := range s.Rect {
		s.Rect[i] = space.Interval{Lo: c.f64(), Hi: c.f64()}
	}
	return s, c.done()
}

// DecodeSubscribed decodes a subscribe reply payload.
func DecodeSubscribed(payload []byte) (Subscribed, error) {
	var s Subscribed
	c, err := open(payload, TypeSubscribed)
	if err != nil {
		return s, err
	}
	s.ReqID = c.i64()
	s.Slot = c.i64()
	s.Err = c.str()
	return s, c.done()
}

// DecodeUnsubscribe decodes an unsubscribe payload.
func DecodeUnsubscribe(payload []byte) (Unsubscribe, error) {
	var u Unsubscribe
	c, err := open(payload, TypeUnsubscribe)
	if err != nil {
		return u, err
	}
	u.ReqID = c.i64()
	u.Slot = c.i64()
	return u, c.done()
}

// DecodeUnsubscribed decodes an unsubscribe reply payload.
func DecodeUnsubscribed(payload []byte) (Unsubscribed, error) {
	var u Unsubscribed
	c, err := open(payload, TypeUnsubscribed)
	if err != nil {
		return u, err
	}
	u.ReqID = c.i64()
	u.Err = c.str()
	return u, c.done()
}

// DecodePublish decodes a publish payload.
func DecodePublish(payload []byte) (Publish, error) {
	var p Publish
	c, err := open(payload, TypePublish)
	if err != nil {
		return p, err
	}
	p.PSeq = c.i64()
	p.Ev = c.event()
	return p, c.done()
}

// DecodePubAck decodes a publish reply payload.
func DecodePubAck(payload []byte) (PubAck, error) {
	var p PubAck
	c, err := open(payload, TypePubAck)
	if err != nil {
		return p, err
	}
	p.PSeq = c.i64()
	p.Seq = c.i64()
	p.Err = c.str()
	return p, c.done()
}

// DecodeDeliverBatch decodes a deliver batch payload into a fresh slice.
func DecodeDeliverBatch(payload []byte) ([]Deliver, error) {
	return DecodeDeliverBatchInto(payload, nil)
}

// DecodeDeliverBatchInto decodes a deliver batch payload, appending to ds
// (usually a batch scratch sliced to [:0]) so a read loop reuses one
// backing array across frames. The decoded deliveries share nothing with
// the payload: every variable-length field is copied out, so the payload
// may be invalidated (the frame reader reuses its buffer) as soon as this
// returns. Each Deliver's Ev.Point is freshly allocated and safe for the
// consumer to retain even after ds is reused.
func DecodeDeliverBatchInto(payload []byte, ds []Deliver) ([]Deliver, error) {
	c, err := open(payload, TypeDeliver)
	if err != nil {
		return nil, err
	}
	n := int(c.u16())
	if ds == nil {
		ds = make([]Deliver, 0, n)
	}
	for i := 0; i < n; i++ {
		var d Deliver
		d.Did = c.i64()
		d.Node = topology.NodeID(c.i64())
		d.Seq = c.i64()
		d.Ev = c.event()
		d.Method = c.u8()
		d.Group = int32(c.u32())
		d.Interested = c.u8() != 0
		if c.bad {
			break
		}
		ds = append(ds, d)
	}
	return ds, c.done()
}

// DecodeAck decodes a cumulative ack payload.
func DecodeAck(payload []byte) (Ack, error) {
	var a Ack
	c, err := open(payload, TypeAck)
	if err != nil {
		return a, err
	}
	a.Did = c.i64()
	a.Credit = c.u32()
	return a, c.done()
}

// DecodeCredit decodes a bare credit grant payload.
func DecodeCredit(payload []byte) (uint32, error) {
	c, err := open(payload, TypeCredit)
	if err != nil {
		return 0, err
	}
	n := c.u32()
	return n, c.done()
}

// DecodePing decodes a ping payload, returning its nonce.
func DecodePing(payload []byte) (uint64, error) {
	c, err := open(payload, TypePing)
	if err != nil {
		return 0, err
	}
	n := c.u64()
	return n, c.done()
}

// DecodePong decodes a pong payload, returning its nonce.
func DecodePong(payload []byte) (uint64, error) {
	c, err := open(payload, TypePong)
	if err != nil {
		return 0, err
	}
	n := c.u64()
	return n, c.done()
}

// DecodeError decodes a terminal error payload.
func DecodeError(payload []byte) (ErrorMsg, error) {
	var e ErrorMsg
	c, err := open(payload, TypeError)
	if err != nil {
		return e, err
	}
	e.Code = c.u8()
	e.Msg = c.str()
	return e, c.done()
}
