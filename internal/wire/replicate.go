package wire

// Replication frame types (leader–follower journal shipping; see the
// Replication section of DESIGN.md). A follower opens its connection with
// a ReplHello instead of a client Hello; the transport server hands such
// sessions to the replication layer and the ordinary client state machine
// never sees them.
const (
	TypeReplHello  Type = 17 // follower → leader: replication handshake
	TypeCatchup    Type = 18 // leader → follower: full resync preamble
	TypeReplicate  Type = 19 // leader → follower: batch of raw journal records
	TypeReplAck    Type = 20 // follower → leader: applied + fsynced through Idx
	TypeReplRotate Type = 21 // leader → follower: journal rotation / checkpoint install
	TypeEpoch      Type = 22 // either direction: fencing — my epoch is Term, yours is stale
)

// ReplHello opens a replication session. The follower announces the
// highest fencing epoch it has persisted; a leader whose own epoch is
// lower has been superseded and must fence itself instead of serving.
type ReplHello struct {
	Version uint16
	Term    int64
}

// Catchup is the leader's reply to a ReplHello: the follower wipes its
// local state, installs Ckpt (the leader's current checkpoint file; empty
// when none exists), opens a journal at JournalEpoch, and applies the
// record stream that follows. LastIdx is the ship index of the final
// record in the catch-up portion — acking it tells the leader the
// follower is caught up through the snapshot point. Term is the leader's
// fencing epoch, which the follower adopts (and persists) when higher
// than its own.
type Catchup struct {
	Term         int64
	JournalEpoch int64
	LastIdx      int64
	Ckpt         []byte
}

// Replicate carries a batch of raw journal record payloads, exactly as
// framed into the leader's journal, with contiguous ship indices starting
// at FirstIdx. The wire layer does not interpret the payloads.
type Replicate struct {
	Term     int64
	FirstIdx int64
	Recs     [][]byte
}

// ReplAck acknowledges that every shipped record with index ≤ Idx is
// applied and fsynced on the follower — the leader's replication barrier
// releases on it.
type ReplAck struct {
	Term int64
	Idx  int64
}

// ReplRotate mirrors a leader checkpoint at the follower: with an empty
// Ckpt it rotates the follower's journal to JournalEpoch (the leader's
// BeginCheckpoint); with Ckpt set it installs the encoded checkpoint for
// JournalEpoch and prunes older journals (the leader's CommitCheckpoint).
type ReplRotate struct {
	Term         int64
	JournalEpoch int64
	Ckpt         []byte
}

// AppendReplHello encodes a replication handshake payload.
func AppendReplHello(b []byte, h ReplHello) []byte {
	b = append(b, byte(TypeReplHello))
	b = le16(b, h.Version)
	return lei64(b, h.Term)
}

// DecodeReplHello decodes a replication handshake payload.
func DecodeReplHello(payload []byte) (ReplHello, error) {
	var h ReplHello
	c, err := open(payload, TypeReplHello)
	if err != nil {
		return h, err
	}
	h.Version = c.u16()
	h.Term = c.i64()
	return h, c.done()
}

func appendBytes(b, v []byte) []byte {
	b = le32(b, uint32(len(v)))
	return append(b, v...)
}

func (c *cursor) bytes() []byte {
	n := int(c.u32())
	if c.bad || n > len(c.b)-c.off {
		c.bad = true
		return nil
	}
	v := c.b[c.off : c.off+n : c.off+n]
	c.off += n
	return v
}

// AppendCatchup encodes a catch-up preamble payload.
func AppendCatchup(b []byte, m Catchup) []byte {
	b = append(b, byte(TypeCatchup))
	b = lei64(b, m.Term)
	b = lei64(b, m.JournalEpoch)
	b = lei64(b, m.LastIdx)
	return appendBytes(b, m.Ckpt)
}

// DecodeCatchup decodes a catch-up preamble payload.
func DecodeCatchup(payload []byte) (Catchup, error) {
	var m Catchup
	c, err := open(payload, TypeCatchup)
	if err != nil {
		return m, err
	}
	m.Term = c.i64()
	m.JournalEpoch = c.i64()
	m.LastIdx = c.i64()
	m.Ckpt = c.bytes()
	return m, c.done()
}

// AppendReplicate encodes a record-batch payload.
func AppendReplicate(b []byte, m Replicate) []byte {
	b = append(b, byte(TypeReplicate))
	b = lei64(b, m.Term)
	b = lei64(b, m.FirstIdx)
	b = le32(b, uint32(len(m.Recs)))
	for _, rec := range m.Recs {
		b = appendBytes(b, rec)
	}
	return b
}

// DecodeReplicate decodes a record-batch payload. The record slices alias
// the frame buffer — copy them to retain past the next read.
func DecodeReplicate(payload []byte) (Replicate, error) {
	var m Replicate
	c, err := open(payload, TypeReplicate)
	if err != nil {
		return m, err
	}
	m.Term = c.i64()
	m.FirstIdx = c.i64()
	n := int(c.u32())
	if c.bad || n > len(c.b) {
		return m, ErrBadMessage
	}
	m.Recs = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		m.Recs = append(m.Recs, c.bytes())
		if c.bad {
			break
		}
	}
	return m, c.done()
}

// AppendReplAck encodes a replication ack payload.
func AppendReplAck(b []byte, m ReplAck) []byte {
	b = append(b, byte(TypeReplAck))
	b = lei64(b, m.Term)
	return lei64(b, m.Idx)
}

// DecodeReplAck decodes a replication ack payload.
func DecodeReplAck(payload []byte) (ReplAck, error) {
	var m ReplAck
	c, err := open(payload, TypeReplAck)
	if err != nil {
		return m, err
	}
	m.Term = c.i64()
	m.Idx = c.i64()
	return m, c.done()
}

// AppendReplRotate encodes a rotation / checkpoint-install payload.
func AppendReplRotate(b []byte, m ReplRotate) []byte {
	b = append(b, byte(TypeReplRotate))
	b = lei64(b, m.Term)
	b = lei64(b, m.JournalEpoch)
	return appendBytes(b, m.Ckpt)
}

// DecodeReplRotate decodes a rotation / checkpoint-install payload.
func DecodeReplRotate(payload []byte) (ReplRotate, error) {
	var m ReplRotate
	c, err := open(payload, TypeReplRotate)
	if err != nil {
		return m, err
	}
	m.Term = c.i64()
	m.JournalEpoch = c.i64()
	m.Ckpt = c.bytes()
	return m, c.done()
}

// AppendEpoch encodes a fencing notification payload.
func AppendEpoch(b []byte, term int64) []byte {
	return lei64(append(b, byte(TypeEpoch)), term)
}

// DecodeEpoch decodes a fencing notification payload, returning the
// sender's epoch.
func DecodeEpoch(payload []byte) (int64, error) {
	c, err := open(payload, TypeEpoch)
	if err != nil {
		return 0, err
	}
	term := c.i64()
	return term, c.done()
}
