//go:build race

package wire

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
