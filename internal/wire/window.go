package wire

// Window is a fixed-footprint sliding-window duplicate detector over
// sequence numbers — the same residue-slot construction the broker's
// consumers use for delivery dedup, exported here so both ends of a
// connection can run the reliability protocol: the server dedups client
// publish sequence numbers (a publish retransmitted after a reconnect
// enters the broker exactly once), and the client dedups delivery ids
// re-sent after a resume.
//
// The window covers the last size sequence numbers ending at the highest
// value admitted so far. Within any size consecutive sequence numbers the
// residues seq % size are unique, so one slot per residue suffices; a
// number at or below max-size has fallen out of the window and is
// conservatively treated as already seen. Duplicates only arise from
// immediate retransmission, so a correctly sized window never
// misclassifies a first arrival.
//
// Not safe for concurrent use.
type Window struct {
	slots []int64
	max   int64
}

// NewWindow returns a window remembering the last size sequence numbers
// (minimum 1).
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	w := &Window{slots: make([]int64, size), max: -1}
	for i := range w.slots {
		w.slots[i] = -1
	}
	return w
}

// Admit reports whether seq is new (true) or a duplicate / fallen out of
// the window (false), and records it. Allocation-free.
func (w *Window) Admit(seq int64) bool {
	if seq < 0 {
		return false
	}
	if w.max >= int64(len(w.slots)) && seq <= w.max-int64(len(w.slots)) {
		return false // below the window: assume seen
	}
	i := seq % int64(len(w.slots))
	if w.slots[i] == seq {
		return false
	}
	w.slots[i] = seq
	if seq > w.max {
		w.max = seq
	}
	return true
}

// Seen reports whether seq would be rejected as a duplicate, without
// recording it. Pairs with Admit in check-then-act protocols where the
// act can fail: the server checks Seen before handing a publish to the
// broker and only Admits once the broker accepted it, so a failed
// publish stays retryable.
func (w *Window) Seen(seq int64) bool {
	if seq < 0 {
		return true
	}
	if w.max >= int64(len(w.slots)) && seq <= w.max-int64(len(w.slots)) {
		return true
	}
	return w.slots[seq%int64(len(w.slots))] == seq
}

// Max returns the highest sequence number admitted so far (-1 before the
// first).
func (w *Window) Max() int64 { return w.max }
