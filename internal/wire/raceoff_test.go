//go:build !race

package wire

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions only hold in uninstrumented builds.
const raceEnabled = false
