package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/space"
	"repro/internal/workload"
)

func roundtrip(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WriteFrame(payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := NewReader(&buf, 0).ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return got
}

func TestFrameRoundtrip(t *testing.T) {
	payload := AppendPing(nil, 0xdeadbeef)
	got := roundtrip(t, payload)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %x != %x", got, payload)
	}
	if n, err := DecodePing(got); err != nil || n != 0xdeadbeef {
		t.Fatalf("DecodePing = %x, %v", n, err)
	}
}

func TestFrameCoalescing(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	for i := 0; i < 5; i++ {
		if err := w.WriteFrame(AppendPing(nil, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("frames flushed before Flush: %d bytes", buf.Len())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf, 0)
	for i := 0; i < 5; i++ {
		p, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if n, _ := DecodePing(p); n != uint64(i) {
			t.Fatalf("frame %d: nonce %d", i, n)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	// Writer side: refuses to emit.
	w := NewWriter(io.Discard, 64)
	if err := w.WriteFrame(make([]byte, 65)); !errors.Is(err, ErrOversize) {
		t.Fatalf("writer accepted oversized frame: %v", err)
	}
	// Reader side: rejects from the length prefix alone, before reading
	// (or allocating) the payload.
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
	r := NewReader(bytes.NewReader(hdr[:]), 64)
	if _, err := r.ReadFrame(); !errors.Is(err, ErrOversize) {
		t.Fatalf("reader accepted oversized length: %v", err)
	}
}

func TestTruncatedHeaderAndPayload(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WriteFrame(AppendPing(nil, 7)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Cut at every possible point inside the frame: a mid-header or
	// mid-payload EOF must surface as ErrTruncated, never io.EOF (which
	// means a clean frame boundary).
	for cut := 1; cut < len(whole); cut++ {
		r := NewReader(bytes.NewReader(whole[:cut]), 0)
		if _, err := r.ReadFrame(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
	// Zero bytes is a clean boundary.
	if _, err := NewReader(bytes.NewReader(nil), 0).ReadFrame(); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestChecksumMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WriteFrame(AppendPing(nil, 7)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff // flip a payload byte
	if _, err := NewReader(bytes.NewReader(raw), 0).ReadFrame(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted frame accepted: %v", err)
	}
}

func TestMessageRoundtrips(t *testing.T) {
	hello := Hello{Version: Version, Session: 42, LastDid: 17, Credits: 256}
	if got, err := DecodeHello(AppendHello(nil, hello)); err != nil || got != hello {
		t.Fatalf("hello: %+v, %v", got, err)
	}
	hack := HelloAck{Version: Version, Session: 9, Resumed: true}
	if got, err := DecodeHelloAck(AppendHelloAck(nil, hack)); err != nil || got != hack {
		t.Fatalf("helloAck: %+v, %v", got, err)
	}
	sub := Subscribe{ReqID: 3, Owner: 12, Rect: space.Rect{space.Span(1, 2), space.Full()}}
	gotSub, err := DecodeSubscribe(AppendSubscribe(nil, sub))
	if err != nil || gotSub.ReqID != sub.ReqID || gotSub.Owner != sub.Owner ||
		len(gotSub.Rect) != 2 || gotSub.Rect[0] != sub.Rect[0] || gotSub.Rect[1] != sub.Rect[1] {
		t.Fatalf("subscribe: %+v, %v", gotSub, err)
	}
	sd := Subscribed{ReqID: 3, Slot: 11, Err: "nope"}
	if got, err := DecodeSubscribed(AppendSubscribed(nil, sd)); err != nil || got != sd {
		t.Fatalf("subscribed: %+v, %v", got, err)
	}
	un := Unsubscribe{ReqID: 4, Slot: 11}
	if got, err := DecodeUnsubscribe(AppendUnsubscribe(nil, un)); err != nil || got != un {
		t.Fatalf("unsubscribe: %+v, %v", got, err)
	}
	ud := Unsubscribed{ReqID: 4, Err: ""}
	if got, err := DecodeUnsubscribed(AppendUnsubscribed(nil, ud)); err != nil || got != ud {
		t.Fatalf("unsubscribed: %+v, %v", got, err)
	}
	pub := Publish{PSeq: 99, Ev: workload.Event{Pub: 7, Point: space.Point{1.5, -2.5}}}
	gotPub, err := DecodePublish(AppendPublish(nil, pub))
	if err != nil || gotPub.PSeq != 99 || gotPub.Ev.Pub != 7 ||
		len(gotPub.Ev.Point) != 2 || gotPub.Ev.Point[0] != 1.5 || gotPub.Ev.Point[1] != -2.5 {
		t.Fatalf("publish: %+v, %v", gotPub, err)
	}
	pa := PubAck{PSeq: 99, Err: "overloaded"}
	if got, err := DecodePubAck(AppendPubAck(nil, pa)); err != nil || got != pa {
		t.Fatalf("pubAck: %+v, %v", got, err)
	}
	ack := Ack{Did: 1234, Credit: 32}
	if got, err := DecodeAck(AppendAck(nil, ack)); err != nil || got != ack {
		t.Fatalf("ack: %+v, %v", got, err)
	}
	if got, err := DecodeCredit(AppendCredit(nil, 64)); err != nil || got != 64 {
		t.Fatalf("credit: %d, %v", got, err)
	}
	if got, err := DecodePong(AppendPong(nil, 5)); err != nil || got != 5 {
		t.Fatalf("pong: %d, %v", got, err)
	}
	em := ErrorMsg{Code: CodeDraining, Msg: "draining"}
	if got, err := DecodeError(AppendError(nil, em)); err != nil || got != em {
		t.Fatalf("error: %+v, %v", got, err)
	}
	if MsgType(AppendDrain(nil)) != TypeDrain || MsgType(AppendGoodbye(nil)) != TypeGoodbye {
		t.Fatal("drain/goodbye types")
	}
}

func TestDeliverBatchRoundtrip(t *testing.T) {
	batch := []Deliver{
		{Did: 1, Seq: 10, Ev: workload.Event{Pub: 2, Point: space.Point{0.25}}, Method: 2, Group: 7, Interested: true},
		{Did: 2, Seq: 11, Ev: workload.Event{Pub: 3, Point: space.Point{0.5}}, Method: 0, Group: -1, Interested: false},
	}
	got, err := DecodeDeliverBatch(AppendDeliverBatch(nil, batch))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i].Did != batch[i].Did || got[i].Seq != batch[i].Seq ||
			got[i].Method != batch[i].Method || got[i].Group != batch[i].Group ||
			got[i].Interested != batch[i].Interested || got[i].Ev.Pub != batch[i].Ev.Pub {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], batch[i])
		}
	}
}

func TestDecodeRejectsWrongTypeAndTruncation(t *testing.T) {
	if _, err := DecodeHello(AppendPing(nil, 1)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("wrong type accepted: %v", err)
	}
	full := AppendSubscribe(nil, Subscribe{ReqID: 1, Owner: 2, Rect: space.FullRect(3)})
	for cut := 1; cut < len(full); cut++ {
		if _, err := DecodeSubscribe(full[:cut]); err == nil {
			t.Fatalf("truncated subscribe at %d accepted", cut)
		}
	}
	// Trailing garbage is rejected too.
	if _, err := DecodeAck(append(AppendAck(nil, Ack{Did: 1}), 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
	// An absurd rect dimension is rejected before allocation.
	huge := AppendSubscribe(nil, Subscribe{ReqID: 1, Owner: 2, Rect: space.FullRect(1)})
	// Patch the dim field (offset: 1 type + 8 reqID + 8 owner).
	huge[17] = 0xff
	huge[18] = 0xff
	if _, err := DecodeSubscribe(huge); err == nil {
		t.Fatal("oversized rect dim accepted")
	}
}

func TestWindowDedup(t *testing.T) {
	w := NewWindow(4)
	for i := int64(0); i < 10; i++ {
		if !w.Admit(i) {
			t.Fatalf("first arrival %d rejected", i)
		}
		if w.Admit(i) {
			t.Fatalf("duplicate %d admitted", i)
		}
	}
	if w.Admit(5) {
		t.Fatal("below-window seq admitted")
	}
	if w.Max() != 9 {
		t.Fatalf("max = %d", w.Max())
	}
	if w.Admit(-1) {
		t.Fatal("negative seq admitted")
	}
}
