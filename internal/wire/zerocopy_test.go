package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/space"
	"repro/internal/workload"
)

// TestReadFrameZeroCopySmall: frames that fit the read buffer come back
// without a copy or an allocation — the payload aliases the bufio window.
func TestReadFrameZeroCopySmall(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-detector shadow allocations")
	}
	var stream bytes.Buffer
	w := NewWriter(&stream, 0)
	const frames = 64
	for i := 0; i < frames; i++ {
		if err := w.WriteFrame(AppendPing(nil, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	loop := bytes.NewReader(bytes.Repeat(stream.Bytes(), 100))
	r := NewReader(loop, 0)
	if _, err := r.ReadFrame(); err != nil { // warm the bufio fill
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(frames*20, func() {
		p, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		n, err := DecodePing(p)
		if err != nil {
			t.Fatal(err)
		}
		i++
		if want := uint64(i % frames); n != want {
			t.Fatalf("frame %d: nonce %d, want %d", i, n, want)
		}
	})
	if allocs != 0 {
		t.Fatalf("small-frame read loop allocates %.1f times per frame, want 0", allocs)
	}
}

// TestReadFrameSpillPath: frames larger than the read buffer still decode
// correctly through the spill buffer, and the buffer is reused.
func TestReadFrameSpillPath(t *testing.T) {
	big := make([]byte, 48<<10) // exceeds the 32 KiB bufio window
	big[0] = byte(TypePing)
	for i := range big[1:] {
		big[1+i] = byte(i * 7)
	}
	var stream bytes.Buffer
	w := NewWriter(&stream, len(big))
	for i := 0; i < 3; i++ {
		if err := w.WriteFrame(big); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&stream, len(big))
	for i := 0; i < 3; i++ {
		p, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, big) {
			t.Fatalf("spill frame %d corrupted", i)
		}
	}
	if _, err := r.ReadFrame(); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestDecodeDoesNotAliasFrame is the bytes-escape regression test: the
// zero-copy ReadFrame hands decoders a slice of the connection's read
// buffer, which the next ReadFrame overwrites. Decoded messages must
// therefore copy every variable-length field out of the payload. Scribble
// over the payload after decoding and verify nothing in the messages
// moved.
func TestDecodeDoesNotAliasFrame(t *testing.T) {
	ev := workload.Event{Pub: 7, Point: space.Point{0.25, -1.5, 3.75}}
	batch := []Deliver{
		{Did: 1, Seq: 10, Ev: ev, Method: 2, Group: 5, Interested: true},
		{Did: 2, Seq: 11, Ev: ev, Method: 1, Group: -1},
	}
	payloads := [][]byte{
		AppendSubscribed(nil, Subscribed{ReqID: 1, Slot: 2, Err: "kaboom"}),
		AppendPublish(nil, Publish{PSeq: 3, Ev: ev}),
		AppendDeliverBatch(nil, batch),
		AppendError(nil, ErrorMsg{Code: CodeDraining, Msg: "drain"}),
	}

	sub, err := DecodeSubscribed(payloads[0])
	if err != nil {
		t.Fatal(err)
	}
	pub, err := DecodePublish(payloads[1])
	if err != nil {
		t.Fatal(err)
	}
	ds, err := DecodeDeliverBatchInto(payloads[2], make([]Deliver, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	em, err := DecodeError(payloads[3])
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the frame reader reusing its buffer underneath the messages.
	for _, p := range payloads {
		for i := range p {
			p[i] = 0xAA
		}
	}

	if sub.Err != "kaboom" {
		t.Errorf("Subscribed.Err aliased the frame: %q", sub.Err)
	}
	if em.Msg != "drain" {
		t.Errorf("ErrorMsg.Msg aliased the frame: %q", em.Msg)
	}
	wantPt := space.Point{0.25, -1.5, 3.75}
	for i, x := range pub.Ev.Point {
		if x != wantPt[i] {
			t.Fatalf("Publish.Ev.Point aliased the frame: %v", pub.Ev.Point)
		}
	}
	if len(ds) != 2 {
		t.Fatalf("decoded %d deliveries, want 2", len(ds))
	}
	for di, d := range ds {
		for i, x := range d.Ev.Point {
			if x != wantPt[i] {
				t.Fatalf("Deliver[%d].Ev.Point aliased the frame: %v", di, d.Ev.Point)
			}
		}
	}
}

// TestDecodeDeliverBatchIntoReuse: a reused scratch keeps its backing
// array across calls and yields the same deliveries as a fresh decode.
func TestDecodeDeliverBatchIntoReuse(t *testing.T) {
	ev := workload.Event{Pub: 3, Point: space.Point{1, 2}}
	mk := func(did int64) []byte {
		return AppendDeliverBatch(nil, []Deliver{{Did: did, Seq: did * 10, Ev: ev}})
	}
	scratch := make([]Deliver, 0, 4)
	first, err := DecodeDeliverBatchInto(mk(1), scratch[:0])
	if err != nil {
		t.Fatal(err)
	}
	second, err := DecodeDeliverBatchInto(mk(2), first[:0])
	if err != nil {
		t.Fatal(err)
	}
	if &first[:1][0] != &second[:1][0] {
		t.Error("scratch backing array not reused")
	}
	if second[0].Did != 2 || second[0].Seq != 20 {
		t.Fatalf("reused decode wrong: %+v", second[0])
	}
	fresh, err := DecodeDeliverBatch(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	if fresh[0].Did != second[0].Did || fresh[0].Seq != second[0].Seq {
		t.Fatalf("fresh/reused decode mismatch: %+v vs %+v", fresh[0], second[0])
	}
}
