// Package wire defines the broker's network protocol: a compact,
// length-prefixed, CRC-checked binary framing plus the message types the
// transport layer exchanges over it. The framing discipline is the same
// one internal/durable uses for its journal — [4B length][4B
// crc32c(payload)][payload], little-endian, Castagnoli polynomial — so a
// frame torn by a dying peer is detected exactly like a torn journal
// tail: by the length/CRC checks, never by parsing garbage.
//
// Protocol shape (client ⇄ server):
//
//	hello / helloAck      version + session handshake, resume watermark,
//	                      initial delivery credits
//	subscribe(d) / unsub  control plane: register interest rectangles
//	publish / pubAck      data plane in: client-sequenced (pseq),
//	                      server-deduped — exactly-once into the broker
//	                      across reconnects
//	deliver               data plane out: batches of deliveries sharing a
//	                      flush window, each tagged with a per-session
//	                      delivery id (did) and the broker seq
//	ack / credit          cumulative delivery acknowledgement + credit
//	                      replenishment (credit-based flow control)
//	ping / pong           liveness, usable while deliveries are stalled
//	drain / goodbye       graceful shutdown handshake
//	error                 terminal protocol error, then close
//
// Every multi-byte integer is little-endian. Frames are bounded
// (DefaultMaxFrame unless the transport overrides it); an oversized
// length prefix is rejected before any allocation, so a corrupt or
// malicious peer cannot balloon memory.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the protocol version carried in every hello frame. A server
// refuses a hello whose version it does not speak.
//
// v2 widened two frames for broker federation: PubAck carries the broker
// publication seq the event consumed, and Deliver carries the destination
// node (a session subscribed for several owners — a federation router —
// needs the attribution to dedup across shards).
const Version uint16 = 2

// DefaultMaxFrame bounds a frame's payload length (1 MiB). Both sides
// reject longer frames before allocating for them.
const DefaultMaxFrame = 1 << 20

// frameHeaderLen is the fixed prefix: u32 payload length + u32
// crc32c(payload).
const frameHeaderLen = 8

// castagnoli matches internal/durable's journal framing CRC.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Framing errors. ErrOversize and ErrChecksum are terminal for a
// connection: the stream can no longer be trusted to be frame-aligned.
var (
	ErrOversize  = errors.New("wire: frame exceeds size bound")
	ErrChecksum  = errors.New("wire: frame checksum mismatch")
	ErrTruncated = errors.New("wire: truncated frame")
)

// Reader decodes frames from a byte stream. Not safe for concurrent use;
// each connection owns one reader goroutine.
type Reader struct {
	r   *bufio.Reader
	max int
	buf []byte
}

// NewReader wraps a stream with a frame decoder. maxFrame ≤ 0 means
// DefaultMaxFrame.
func NewReader(r io.Reader, maxFrame int) *Reader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &Reader{r: bufio.NewReaderSize(r, 32<<10), max: maxFrame}
}

// ReadFrame reads one frame and returns its payload. The returned slice
// is valid until the next ReadFrame call (it aliases an internal buffer).
// A clean EOF at a frame boundary returns io.EOF; EOF inside a frame
// returns ErrTruncated.
//
// Frames that fit the read buffer take a zero-copy path: the payload is
// returned directly out of the bufio window (Peek + Discard), so the
// steady-state read loop performs no per-frame allocation or copy. Larger
// frames fall back to a reused spill buffer. Decoders never let message
// fields alias the payload (strings and points are copied out), so the
// aliasing window ends at the next decode — see TestDecodeDoesNotAliasFrame.
func (r *Reader) ReadFrame() ([]byte, error) {
	hdr, err := r.r.Peek(frameHeaderLen)
	if len(hdr) < frameHeaderLen {
		if len(hdr) == 0 && errors.Is(err, io.EOF) {
			return nil, io.EOF // clean boundary: propagate io.EOF as-is
		}
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, truncated(err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n > r.max {
		return nil, fmt.Errorf("%w: %d > %d", ErrOversize, n, r.max)
	}

	var payload []byte
	if frameHeaderLen+n <= r.r.Size() {
		// Fast path: header and payload visible in the buffer window.
		full, err := r.r.Peek(frameHeaderLen + n)
		if err != nil {
			return nil, truncated(err)
		}
		payload = full[frameHeaderLen:]
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return nil, fmt.Errorf("%w: got %08x want %08x", ErrChecksum, got, want)
		}
		// Discard never fails after a successful Peek of the same length.
		r.r.Discard(frameHeaderLen + n)
		return payload, nil
	}

	// Spill path: the frame exceeds the window; copy into a reused buffer.
	if _, err := r.r.Discard(frameHeaderLen); err != nil {
		return nil, truncated(err)
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	payload = r.buf[:n]
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, truncated(err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: got %08x want %08x", ErrChecksum, got, want)
	}
	return payload, nil
}

func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}

// Writer encodes frames onto a byte stream through a buffer, so several
// frames written back to back coalesce into one flush (and one TCP
// segment when they fit). Not safe for concurrent use; each connection
// owns one writer goroutine.
type Writer struct {
	w   *bufio.Writer
	max int
	hdr [frameHeaderLen]byte
}

// NewWriter wraps a stream with a frame encoder. maxFrame ≤ 0 means
// DefaultMaxFrame.
func NewWriter(w io.Writer, maxFrame int) *Writer {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &Writer{w: bufio.NewWriterSize(w, 64<<10), max: maxFrame}
}

// WriteFrame buffers one frame. Call Flush to push buffered frames to the
// stream.
func (w *Writer) WriteFrame(payload []byte) error {
	if len(payload) > w.max {
		return fmt.Errorf("%w: %d > %d", ErrOversize, len(payload), w.max)
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// Flush pushes all buffered frames to the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

// Buffered reports the bytes currently awaiting Flush.
func (w *Writer) Buffered() int { return w.w.Buffered() }
