package stree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/space"
)

type oracle struct {
	rects []space.Rect
	ids   []int
}

func (o *oracle) insert(r space.Rect, id int) {
	o.rects = append(o.rects, r.Clone())
	o.ids = append(o.ids, id)
}

func (o *oracle) remove(r space.Rect, id int) bool {
	for i := range o.ids {
		if o.ids[i] == id && o.rects[i].Equal(r) {
			o.rects = append(o.rects[:i], o.rects[i+1:]...)
			o.ids = append(o.ids[:i], o.ids[i+1:]...)
			return true
		}
	}
	return false
}

func (o *oracle) searchPoint(p space.Point) []int {
	var out []int
	for i, r := range o.rects {
		if r.Contains(p) {
			out = append(out, o.ids[i])
		}
	}
	return out
}

func (o *oracle) searchRect(q space.Rect) []int {
	var out []int
	for i, r := range o.rects {
		if r.Intersects(q) {
			out = append(out, o.ids[i])
		}
	}
	return out
}

func randRect(r *rand.Rand, dim int) space.Rect {
	rect := make(space.Rect, dim)
	for d := range rect {
		switch r.Intn(10) {
		case 0:
			rect[d] = space.Full()
		case 1:
			rect[d] = space.LeftOf(r.Float64() * 20)
		case 2:
			rect[d] = space.RightOf(r.Float64() * 20)
		default:
			lo := r.Float64() * 20
			rect[d] = space.Span(lo, lo+r.Float64()*6+0.01)
		}
	}
	return rect
}

func randPoint(r *rand.Rand, dim int) space.Point {
	p := make(space.Point, dim)
	for d := range p {
		p[d] = r.Float64()*24 - 2
	}
	return p
}

func sameIDs(t *testing.T, got, want []int, ctx string) {
	t.Helper()
	g := append([]int(nil), got...)
	w := append([]int(nil), want...)
	sort.Ints(g)
	sort.Ints(w)
	if len(g) != len(w) {
		t.Fatalf("%s: got %v want %v", ctx, g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: got %v want %v", ctx, g, w)
		}
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0)
}

func TestInsertErrors(t *testing.T) {
	tr := New(2)
	if err := tr.Insert(space.Rect{space.Full()}, 1); err == nil {
		t.Error("dim mismatch accepted")
	}
	if err := tr.Insert(space.Rect{space.Span(1, 1), space.Full()}, 1); err == nil {
		t.Error("empty rect accepted")
	}
}

func TestHalfOpenSemantics(t *testing.T) {
	tr := New(1)
	tr.Insert(space.Rect{space.Span(0, 5)}, 1)
	if len(tr.SearchPoint(space.Point{0})) != 0 {
		t.Error("lower boundary included")
	}
	if len(tr.SearchPoint(space.Point{5})) != 1 {
		t.Error("upper boundary excluded")
	}
}

func TestBoundaryRoutingAgainstCuts(t *testing.T) {
	// Force splits, then query exactly on a cut value: the half-open
	// convention (x ≤ value goes left) must agree with Contains.
	tr := New(1)
	var o oracle
	for i := 0; i < 100; i++ {
		r := space.Rect{space.Span(float64(i%10), float64(i%10)+1)}
		tr.Insert(r, i)
		o.insert(r, i)
	}
	for v := 0.0; v <= 11; v++ {
		p := space.Point{v}
		sameIDs(t, tr.SearchPoint(p), o.searchPoint(p), "integer boundary")
	}
}

func TestMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := New(3)
	var o oracle
	for i := 0; i < 1000; i++ {
		rect := randRect(r, 3)
		if err := tr.Insert(rect, i); err != nil {
			t.Fatal(err)
		}
		o.insert(rect, i)
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Depth() < 3 {
		t.Errorf("tree unexpectedly flat: depth %d", tr.Depth())
	}
	for q := 0; q < 400; q++ {
		p := randPoint(r, 3)
		sameIDs(t, tr.SearchPoint(p), o.searchPoint(p), "point")
	}
	for q := 0; q < 150; q++ {
		rect := randRect(r, 3)
		sameIDs(t, tr.SearchRect(rect), o.searchRect(rect), "rect")
	}
}

func TestDelete(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr := New(2)
	var o oracle
	rects := make([]space.Rect, 300)
	for i := range rects {
		rects[i] = randRect(r, 2)
		tr.Insert(rects[i], i)
		o.insert(rects[i], i)
	}
	for _, i := range r.Perm(300)[:150] {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("Delete(%d) failed", i)
		}
		o.remove(rects[i], i)
		if tr.Delete(rects[i], i) {
			t.Fatalf("double delete(%d) succeeded", i)
		}
	}
	if tr.Len() != 150 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for q := 0; q < 200; q++ {
		p := randPoint(r, 2)
		sameIDs(t, tr.SearchPoint(p), o.searchPoint(p), "point after delete")
	}
}

func TestDeleteWrongTarget(t *testing.T) {
	tr := New(1)
	tr.Insert(space.Rect{space.Span(0, 5)}, 1)
	if tr.Delete(space.Rect{space.Span(0, 6)}, 1) {
		t.Error("wrong rect deleted")
	}
	if tr.Delete(space.Rect{space.Span(0, 5)}, 2) {
		t.Error("wrong id deleted")
	}
}

func TestWildcardHeavyWorkload(t *testing.T) {
	// All-wildcard rectangles pin to the root; the index must stay correct
	// (if degenerate).
	tr := New(2)
	var o oracle
	for i := 0; i < 100; i++ {
		r := space.FullRect(2)
		tr.Insert(r, i)
		o.insert(r, i)
	}
	p := space.Point{3, 4}
	sameIDs(t, tr.SearchPoint(p), o.searchPoint(p), "wildcards")
}

func TestQuickAgainstOracle(t *testing.T) {
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(2)
		var o oracle
		live := map[int]space.Rect{}
		next := 0
		for op := 0; op < 250; op++ {
			if len(live) == 0 || r.Intn(3) > 0 {
				rect := randRect(r, 2)
				tr.Insert(rect, next)
				o.insert(rect, next)
				live[next] = rect
				next++
			} else {
				var victim int
				for id := range live {
					victim = id
					break
				}
				if !tr.Delete(live[victim], victim) {
					return false
				}
				o.remove(live[victim], victim)
				delete(live, victim)
			}
		}
		for q := 0; q < 30; q++ {
			p := randPoint(r, 2)
			got := tr.SearchPoint(p)
			want := o.searchPoint(p)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return tr.Len() == len(live)
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSearchPoint(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New(4)
	for i := 0; i < 5000; i++ {
		tr.Insert(randRect(r, 4), i)
	}
	pts := make([]space.Point, 256)
	for i := range pts {
		pts[i] = randPoint(r, 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.SearchPoint(pts[i%len(pts)])
	}
}
