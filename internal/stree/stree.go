// Package stree implements an unbalanced spatial index for axis-aligned
// rectangles in the spirit of the paper's alternative matching substrate
// (ref [1]: Aggarwal, Wolf, Yu, Epelman, "Using Unbalanced Trees for
// Indexing Multidimensional Objects", KAIS 1999): a binary tree whose
// internal nodes split the space with a single-dimension cut and which
// deliberately tolerates imbalance when the data is skewed — pub-sub
// subscription populations are heavily skewed by design.
//
// Each internal node carries a cut (dimension, value). A rectangle routes
// left when it lies entirely in the half-space x_dim ≤ value, right when
// entirely in x_dim > value, and is pinned to the node's straddle list when
// the cut passes through it. A point-stabbing query therefore descends a
// single root-to-leaf path, testing only the straddle lists along the way
// plus one leaf bucket.
//
// Compared to the R*-tree (package rtree) this index is cheaper to build
// and has no re-balancing machinery; queries degrade gracefully with
// wildcard-heavy workloads because fully unbounded rectangles straddle the
// root. The matching package exposes both behind one interface so they can
// be compared like-for-like (see BenchmarkRTreeMatch/BenchmarkSTreeMatch).
package stree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/space"
)

// leafCapacity is the bucket size above which a leaf is split.
const leafCapacity = 16

// item is one stored rectangle.
type item struct {
	rect space.Rect
	id   int
}

type node struct {
	// Internal nodes: cut plane and children.
	dim   int
	value float64
	left  *node
	right *node
	// Straddlers (internal) or bucket contents (leaf).
	items []item
	leaf  bool
}

// Tree is the unbalanced rectangle index. Create with New.
type Tree struct {
	dim  int
	root *node
	size int
}

// New creates an empty index over dim-dimensional rectangles.
func New(dim int) *Tree {
	if dim <= 0 {
		panic(fmt.Sprintf("stree: dimension %d", dim))
	}
	return &Tree{dim: dim, root: &node{leaf: true}}
}

// Len returns the number of stored rectangles.
func (t *Tree) Len() int { return t.size }

// Dim returns the index dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Insert adds a rectangle under the given id.
func (t *Tree) Insert(r space.Rect, id int) error {
	if r.Dim() != t.dim {
		return fmt.Errorf("stree: rect dim %d, tree dim %d", r.Dim(), t.dim)
	}
	if r.Empty() {
		return fmt.Errorf("stree: empty rectangle %v", r)
	}
	t.insert(t.root, item{rect: r.Clone(), id: id})
	t.size++
	return nil
}

func (t *Tree) insert(n *node, it item) {
	for !n.leaf {
		switch side(it.rect, n.dim, n.value) {
		case -1:
			n = n.left
		case +1:
			n = n.right
		default:
			n.items = append(n.items, it)
			return
		}
	}
	n.items = append(n.items, it)
	if len(n.items) > leafCapacity {
		t.split(n)
	}
}

// side reports where a rectangle lies relative to the cut x_dim = value:
// -1 entirely in (−inf, value], +1 entirely in (value, +inf], 0 straddling.
func side(r space.Rect, dim int, value float64) int {
	if r[dim].Hi <= value {
		return -1
	}
	if r[dim].Lo >= value {
		return +1
	}
	return 0
}

// split converts a leaf into an internal node, choosing the cut that
// minimises straddlers while keeping both sides non-empty; if no such cut
// exists (all rectangles overlap a common slab in every dimension) the
// leaf simply grows.
func (t *Tree) split(n *node) {
	bestDim, bestVal, bestScore := -1, 0.0, math.Inf(1)
	for d := 0; d < t.dim; d++ {
		// Candidate cuts: the finite endpoints of stored rectangles.
		var cands []float64
		for _, it := range n.items {
			if !math.IsInf(it.rect[d].Lo, 0) {
				cands = append(cands, it.rect[d].Lo)
			}
			if !math.IsInf(it.rect[d].Hi, 0) {
				cands = append(cands, it.rect[d].Hi)
			}
		}
		sort.Float64s(cands)
		cands = dedupe(cands)
		for _, v := range cands {
			left, right, straddle := 0, 0, 0
			for _, it := range n.items {
				switch side(it.rect, d, v) {
				case -1:
					left++
				case +1:
					right++
				default:
					straddle++
				}
			}
			if left == 0 || right == 0 {
				continue
			}
			// Prefer few straddlers, then balance.
			score := float64(straddle)*float64(len(n.items)) + math.Abs(float64(left-right))
			if score < bestScore {
				bestDim, bestVal, bestScore = d, v, score
			}
		}
	}
	if bestDim < 0 {
		return // unsplittable bucket; stays an oversized leaf
	}
	items := n.items
	n.leaf = false
	n.dim = bestDim
	n.value = bestVal
	n.left = &node{leaf: true}
	n.right = &node{leaf: true}
	n.items = nil
	for _, it := range items {
		switch side(it.rect, bestDim, bestVal) {
		case -1:
			n.left.items = append(n.left.items, it)
		case +1:
			n.right.items = append(n.right.items, it)
		default:
			n.items = append(n.items, it)
		}
	}
	// Children may still exceed capacity; recurse.
	if len(n.left.items) > leafCapacity {
		t.split(n.left)
	}
	if len(n.right.items) > leafCapacity {
		t.split(n.right)
	}
}

func dedupe(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// SearchPoint returns the ids of all rectangles containing p.
func (t *Tree) SearchPoint(p space.Point) []int {
	if len(p) != t.dim {
		panic(fmt.Sprintf("stree: point dim %d, tree dim %d", len(p), t.dim))
	}
	var out []int
	n := t.root
	for n != nil {
		for _, it := range n.items {
			if it.rect.Contains(p) {
				out = append(out, it.id)
			}
		}
		if n.leaf {
			break
		}
		// The point x_dim ≤ value ⟺ it can only hit left-side rectangles.
		if p[n.dim] <= n.value {
			n = n.left
		} else {
			n = n.right
		}
	}
	return out
}

// SearchRect returns the ids of all rectangles intersecting q.
func (t *Tree) SearchRect(q space.Rect) []int {
	if q.Dim() != t.dim {
		panic(fmt.Sprintf("stree: rect dim %d, tree dim %d", q.Dim(), t.dim))
	}
	var out []int
	var walk func(n *node)
	walk = func(n *node) {
		for _, it := range n.items {
			if it.rect.Intersects(q) {
				out = append(out, it.id)
			}
		}
		if n.leaf {
			return
		}
		if q[n.dim].Lo < n.value {
			walk(n.left)
		}
		if q[n.dim].Hi > n.value {
			walk(n.right)
		}
	}
	walk(t.root)
	return out
}

// Delete removes one rectangle previously inserted as (r, id); it reports
// whether an entry was removed. Deletion never restructures the tree
// (unbalanced by design); buckets shrink in place.
func (t *Tree) Delete(r space.Rect, id int) bool {
	if r.Dim() != t.dim {
		return false
	}
	n := t.root
	for n != nil {
		for i, it := range n.items {
			if it.id == id && it.rect.Equal(r) {
				n.items = append(n.items[:i], n.items[i+1:]...)
				t.size--
				return true
			}
		}
		if n.leaf {
			return false
		}
		switch side(r, n.dim, n.value) {
		case -1:
			n = n.left
		case +1:
			n = n.right
		default:
			return false // would have been in this straddle list
		}
	}
	return false
}

// Depth returns the height of the tree (diagnostics).
func (t *Tree) Depth() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil || n.leaf {
			return 1
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}
