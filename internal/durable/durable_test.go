package durable

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/space"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

func testRect(lo, hi float64) space.Rect {
	return space.Rect{{Lo: lo, Hi: hi}, {Lo: lo, Hi: hi}}
}

func testSub(owner topology.NodeID, lo, hi float64) workload.Subscription {
	return workload.Subscription{Owner: owner, Rect: testRect(lo, hi)}
}

func testEvent(pub topology.NodeID, x float64) workload.Event {
	return workload.Event{Pub: pub, Point: space.Point{x, x}}
}

// quick disables the automatic checkpoint triggers so tests control
// rotation explicitly.
func quick() Options {
	return Options{CheckpointRecords: -1, CheckpointInterval: -1}
}

func mustOpen(t *testing.T, dir string, base BaseInfo, opts Options) (*Store, *State) {
	t.Helper()
	s, st, err := Open(dir, base, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

func TestDurableFreshOpen(t *testing.T) {
	dir := t.TempDir()
	base := BaseInfo{Hash: 42, Count: 3}
	s, st := mustOpen(t, dir, base, quick())
	if st != nil {
		t.Fatalf("fresh directory returned state %+v", st)
	}
	if s.Epoch() != 1 {
		t.Fatalf("fresh epoch = %d, want 1", s.Epoch())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName(1))); err != nil {
		t.Fatalf("journal 1 missing: %v", err)
	}
}

func TestDurableJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := BaseInfo{Hash: 7, Count: 2}
	s, _ := mustOpen(t, dir, base, quick())

	subA := SubRecord{ID: 2, Owner: 5, Rect: testRect(0.1, 0.4)}
	subB := SubRecord{ID: 3, Owner: 9, Rect: testRect(0.5, 0.9)}
	for _, r := range []SubRecord{subA, subB} {
		if err := s.AppendSubscribe(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendUnsubscribe(3); err != nil { // churned: disappears
		t.Fatal(err)
	}
	if err := s.AppendUnsubscribe(1); err != nil { // base: recorded as removed
		t.Fatal(err)
	}
	if err := s.AppendPublish(0, testEvent(1, 0.25)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPublish(1, testEvent(2, 0.75)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAck(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, st := mustOpen(t, dir, base, quick())
	if st == nil {
		t.Fatal("no state recovered")
	}
	if st.Stats.CheckpointLoaded {
		t.Error("checkpoint loaded from a checkpoint-free directory")
	}
	if st.Stats.RecordsReplayed != 7 {
		t.Errorf("RecordsReplayed = %d, want 7", st.Stats.RecordsReplayed)
	}
	if len(st.Subs) != 1 || st.Subs[0].ID != 2 || st.Subs[0].Owner != 5 {
		t.Errorf("Subs = %+v, want just id 2 owner 5", st.Subs)
	}
	if !st.Subs[0].Rect.ContainsRect(subA.Rect) || !subA.Rect.ContainsRect(st.Subs[0].Rect) {
		t.Errorf("sub rect %v round-tripped to %v", subA.Rect, st.Subs[0].Rect)
	}
	if len(st.RemovedBase) != 1 || st.RemovedBase[0] != 1 {
		t.Errorf("RemovedBase = %v, want [1]", st.RemovedBase)
	}
	if st.NextID != 4 {
		t.Errorf("NextID = %d, want 4", st.NextID)
	}
	if st.NextSeq != 2 {
		t.Errorf("NextSeq = %d, want 2", st.NextSeq)
	}
	if len(st.Outstanding) != 2 || st.Outstanding[0].Seq != 0 || st.Outstanding[1].Seq != 1 {
		t.Errorf("Outstanding = %+v, want seqs [0 1]", st.Outstanding)
	}
	if got := st.Outstanding[1].Ev; got.Pub != 2 || got.Point[0] != 0.75 {
		t.Errorf("publish record round-tripped to %+v", got)
	}
	if len(st.Acks) != 1 || st.Acks[0] != (AckRecord{Node: 5, Seq: 0}) {
		t.Errorf("Acks = %+v", st.Acks)
	}
}

func TestDurableCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	base := BaseInfo{Hash: 11, Count: 4}
	s, _ := mustOpen(t, dir, base, quick())

	if err := s.AppendSubscribe(SubRecord{ID: 4, Owner: 3, Rect: testRect(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPublish(0, testEvent(1, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch after rotation = %d, want 2", s.Epoch())
	}
	// Carry the still-inflight publish into the new epoch, then commit.
	if err := s.AppendPublishes([]PublishRecord{{Seq: 0, Ev: testEvent(1, 0.5)}}); err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{
		NextSeq: 1,
		NextID:  5,
		Subs:    []SubRecord{{ID: 4, Owner: 3, Rect: testRect(0, 1)}},
		Windows: []WindowState{{Node: 3, Size: 8, Max: 0, Seqs: []int64{0}}},
		Counters: map[string]int64{
			"published": 1, "deliveries": 1,
		},
	}
	if err := s.CommitCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName(1))); !os.IsNotExist(err) {
		t.Errorf("journal 1 not deleted after checkpoint (err=%v)", err)
	}
	// Post-checkpoint traffic lands in epoch 2.
	if err := s.AppendPublish(1, testEvent(2, 0.9)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, st := mustOpen(t, dir, base, quick())
	if st == nil || !st.Stats.CheckpointLoaded {
		t.Fatal("checkpoint not loaded")
	}
	if st.Epoch != 2 || st.Stats.JournalsReplayed != 1 {
		t.Errorf("epoch %d journals %d, want 2/1", st.Epoch, st.Stats.JournalsReplayed)
	}
	if st.NextSeq != 2 || st.NextID != 5 {
		t.Errorf("NextSeq=%d NextID=%d, want 2/5", st.NextSeq, st.NextID)
	}
	if len(st.Subs) != 1 || st.Subs[0].ID != 4 {
		t.Errorf("Subs = %+v", st.Subs)
	}
	if len(st.Windows) != 1 || st.Windows[0].Node != 3 || st.Windows[0].Max != 0 {
		t.Errorf("Windows = %+v", st.Windows)
	}
	if st.Counters["published"] != 1 || st.Counters["deliveries"] != 1 {
		t.Errorf("Counters = %v", st.Counters)
	}
	if len(st.Outstanding) != 2 {
		t.Errorf("Outstanding = %+v, want carried seq 0 and fresh seq 1", st.Outstanding)
	}
}

func TestDurableTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	base := BaseInfo{Hash: 1, Count: 1}
	inj := faults.NewCrashInjector(faults.CrashPlan{AtAppend: 3, Point: faults.CrashTornAppend})
	opts := quick()
	opts.Crash = inj
	s, _ := mustOpen(t, dir, base, opts)

	if err := s.AppendPublish(0, testEvent(1, 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPublish(1, testEvent(1, 0.2)); err != nil {
		t.Fatal(err)
	}
	// Third append is torn mid-frame: header plus half the payload hit disk.
	if err := s.AppendPublish(2, testEvent(1, 0.3)); err != faults.ErrCrashed {
		t.Fatalf("torn append returned %v, want ErrCrashed", err)
	}
	if !s.Crashed() {
		t.Fatal("store not dead after crash point")
	}
	if err := s.AppendPublish(3, testEvent(1, 0.4)); err != faults.ErrCrashed {
		t.Fatalf("append after death returned %v", err)
	}
	s.Close()

	s2, st := mustOpen(t, dir, base, quick())
	if st == nil {
		t.Fatal("no state recovered")
	}
	if st.Stats.TornTruncations != 1 || st.Stats.TornTailBytes == 0 {
		t.Errorf("torn stats = %+v, want one truncation with bytes > 0", st.Stats)
	}
	if len(st.Outstanding) != 2 {
		t.Errorf("Outstanding = %+v, want the two durable publishes", st.Outstanding)
	}
	// The telemetry counter carries the truncation.
	reg := telemetry.NewRegistry()
	s2.Instrument(reg)
	snap := reg.Snapshot()
	if got := snap["durable"].Counters["torn_truncations"]; got != 1 {
		t.Errorf("torn_truncations counter = %d, want 1", got)
	}
	// The truncated journal accepts appends again.
	if err := s2.AppendPublish(2, testEvent(1, 0.3)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st3 := mustOpen(t, dir, base, quick())
	if len(st3.Outstanding) != 3 || st3.Stats.TornTruncations != 0 {
		t.Errorf("after repair: %+v", st3.Stats)
	}
}

func TestDurableCrashBeforeAndAfterAppend(t *testing.T) {
	for _, tc := range []struct {
		point faults.CrashPoint
		want  int // outstanding publishes after recovery
	}{
		{faults.CrashBeforeAppend, 1}, // dying record never written
		{faults.CrashAfterAppend, 2},  // dying record fully written
	} {
		t.Run(tc.point.String(), func(t *testing.T) {
			dir := t.TempDir()
			base := BaseInfo{Hash: 2, Count: 1}
			opts := quick()
			opts.Crash = faults.NewCrashInjector(faults.CrashPlan{AtAppend: 2, Point: tc.point})
			s, _ := mustOpen(t, dir, base, opts)
			if err := s.AppendPublish(0, testEvent(1, 0.1)); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendPublish(1, testEvent(1, 0.2)); err != faults.ErrCrashed {
				t.Fatalf("crash append returned %v", err)
			}
			s.Close()

			_, st := mustOpen(t, dir, base, quick())
			if st == nil || len(st.Outstanding) != tc.want {
				t.Fatalf("Outstanding = %+v, want %d records", st, tc.want)
			}
			if st.Stats.TornTruncations != 0 {
				t.Errorf("unexpected truncation: %+v", st.Stats)
			}
		})
	}
}

func TestDurableCrashMidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	base := BaseInfo{Hash: 3, Count: 1}
	opts := quick()
	opts.Crash = faults.NewCrashInjector(faults.CrashPlan{Point: faults.CrashMidCheckpoint})
	s, _ := mustOpen(t, dir, base, opts)
	if err := s.AppendPublish(0, testEvent(1, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPublishes([]PublishRecord{{Seq: 0, Ev: testEvent(1, 0.5)}}); err != nil {
		t.Fatal(err)
	}
	err := s.CommitCheckpoint(&Checkpoint{NextSeq: 1, NextID: 1})
	if err != faults.ErrCrashed {
		t.Fatalf("mid-checkpoint commit returned %v, want ErrCrashed", err)
	}
	s.Close()

	// The temp file is stranded; no checkpoint was installed; both journal
	// epochs survive and replay contiguously from epoch 1.
	if _, err := os.Stat(filepath.Join(dir, ckptTmpName)); err != nil {
		t.Fatalf("expected stranded checkpoint temp file: %v", err)
	}
	_, st := mustOpen(t, dir, base, quick())
	if st == nil {
		t.Fatal("no state recovered")
	}
	if st.Stats.CheckpointLoaded {
		t.Error("half-written checkpoint was loaded")
	}
	if st.Stats.JournalsReplayed != 2 {
		t.Errorf("JournalsReplayed = %d, want 2", st.Stats.JournalsReplayed)
	}
	// Seq 0 appears in both epochs (original + carry): replay dedups by seq.
	if len(st.Outstanding) != 1 || st.Outstanding[0].Seq != 0 {
		t.Errorf("Outstanding = %+v, want one record for seq 0", st.Outstanding)
	}
	if _, err := os.Stat(filepath.Join(dir, ckptTmpName)); !os.IsNotExist(err) {
		t.Errorf("stranded temp file not cleaned up at Open (err=%v)", err)
	}
}

func TestDurableBaseMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, BaseInfo{Hash: 10, Count: 5}, quick())
	if err := s.AppendPublish(0, testEvent(1, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, BaseInfo{Hash: 11, Count: 5}, quick()); err == nil {
		t.Fatal("open with mismatched base hash succeeded")
	}
	if _, _, err := Open(dir, BaseInfo{Hash: 10, Count: 6}, quick()); err == nil {
		t.Fatal("open with mismatched base count succeeded")
	}
}

func TestDurableCorruptNonLastJournalIsFatal(t *testing.T) {
	dir := t.TempDir()
	base := BaseInfo{Hash: 4, Count: 1}
	s, _ := mustOpen(t, dir, base, quick())
	for i := int64(0); i < 3; i++ {
		if err := s.AppendPublish(i, testEvent(1, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	// Rotate without committing a checkpoint: epochs 1 and 2 both replay.
	if err := s.BeginCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPublish(3, testEvent(1, 0.6)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in epoch 1. Only the journal being appended to at
	// the moment of a crash can be torn, so CRC damage in an earlier epoch
	// is refused rather than silently truncated.
	path := filepath.Join(dir, journalName(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[journalHeaderLen+frameHeaderLen+4] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, base, quick()); err == nil {
		t.Fatal("open with corruption in a non-last journal succeeded")
	}
}

func TestDurableHashBaseSensitivity(t *testing.T) {
	subs := []workload.Subscription{testSub(1, 0.1, 0.9), testSub(2, 0.2, 0.8)}
	h := HashBase(subs)
	if h != HashBase(subs) {
		t.Fatal("HashBase not deterministic")
	}
	diffOwner := []workload.Subscription{testSub(1, 0.1, 0.9), testSub(3, 0.2, 0.8)}
	if HashBase(diffOwner) == h {
		t.Error("owner change not reflected in base hash")
	}
	diffRect := []workload.Subscription{testSub(1, 0.1, 0.9), testSub(2, 0.2, 0.81)}
	if HashBase(diffRect) == h {
		t.Error("rect change not reflected in base hash")
	}
}

func TestDurableGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, BaseInfo{Hash: 5, Count: 1}, quick())
	reg := telemetry.NewRegistry()
	s.Instrument(reg)

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(seq int64) {
			done <- s.AppendPublish(seq, testEvent(1, 0.5))
		}(int64(i))
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < 8; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("group commit deadlocked")
		}
	}
	snap := reg.Snapshot()
	appends := snap["durable"].Counters["journal_appends"]
	fsyncs := snap["durable"].Counters["journal_fsyncs"]
	if appends != 8 {
		t.Errorf("journal_appends = %d, want 8", appends)
	}
	if fsyncs < 1 || fsyncs > 8 {
		t.Errorf("journal_fsyncs = %d, want within [1,8]", fsyncs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, st := mustOpen(t, dir, BaseInfo{Hash: 5, Count: 1}, quick())
	if len(st.Outstanding) != 8 {
		t.Errorf("recovered %d publishes, want 8", len(st.Outstanding))
	}
}

// TestDurableTornTailVsCheckpointRotation crashes with a torn append in
// the window between a checkpoint's journal rotation and its rename —
// while other appenders race the dying store. Recovery must see the
// rotation but not the checkpoint: both epochs replay contiguously, the
// torn frame truncates off the newest journal's tail, and every append
// that was acknowledged before the crash survives. Run under -race (the
// chaos targets do): the point is the locking between append, rotation
// and the crash injector, not just the disk layout.
func TestDurableTornTailVsCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	base := BaseInfo{Hash: 7, Count: 1}
	opts := quick()
	// Appends 1-3 land in epoch 1; the rotation happens; appends 4-7 land
	// in epoch 2; the 8th is torn mid-frame, killing the store before
	// CommitCheckpoint can rename the checkpoint into place.
	opts.Crash = faults.NewCrashInjector(faults.CrashPlan{AtAppend: 8, Point: faults.CrashTornAppend})
	s, _ := mustOpen(t, dir, base, opts)
	for seq := int64(0); seq < 3; seq++ {
		if err := s.AppendPublish(seq, testEvent(1, 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.BeginCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// Two appenders race each other and the pending checkpoint commit.
	// Appends serialize under the store lock, so exactly four more succeed
	// before the torn one kills the store; which seqs survive is the race.
	var wg sync.WaitGroup
	var okCount atomic.Int64
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seqBase int64) {
			defer wg.Done()
			for i := int64(0); i < 6; i++ {
				if err := s.AppendPublish(seqBase+i, testEvent(1, 0.2)); err == nil {
					okCount.Add(1)
				} else if err != faults.ErrCrashed {
					t.Errorf("append: %v", err)
				}
			}
		}(100 * int64(g+1))
	}
	wg.Wait()
	if !s.Crashed() {
		t.Fatal("store not dead after torn append")
	}
	if got := okCount.Load(); got != 4 {
		t.Fatalf("%d concurrent appends acknowledged, want 4", got)
	}
	// The crash fired between the rotation and the rename: the commit must
	// refuse rather than install a checkpoint the journals contradict.
	if err := s.CommitCheckpoint(&Checkpoint{NextSeq: 3, NextID: 1}); err != faults.ErrCrashed {
		t.Fatalf("post-crash commit returned %v, want ErrCrashed", err)
	}
	s.Close()

	s2, st := mustOpen(t, dir, base, quick())
	defer s2.Close()
	if st == nil {
		t.Fatal("no state recovered")
	}
	if st.Stats.CheckpointLoaded {
		t.Error("uncommitted checkpoint was loaded")
	}
	if st.Stats.JournalsReplayed != 2 {
		t.Errorf("JournalsReplayed = %d, want 2 (rotation survived the crash)", st.Stats.JournalsReplayed)
	}
	if st.Stats.TornTruncations != 1 || st.Stats.TornTailBytes == 0 {
		t.Errorf("torn stats = %+v, want one truncation with bytes > 0", st.Stats)
	}
	// 3 acknowledged in epoch 1 + 4 in epoch 2; the torn record is gone.
	if len(st.Outstanding) != 7 {
		t.Errorf("recovered %d publishes, want 7: %+v", len(st.Outstanding), st.Outstanding)
	}
}
