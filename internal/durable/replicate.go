// Replication support: the record-stream tap a leader store feeds, the
// raw-apply Replica store a follower mirrors the stream into, a streamable
// record iterator for catch-up, and the persisted fencing epoch.
//
// The division of labour with internal/replicate: this file knows the
// on-disk format (frames, journal headers, checkpoint files, the epoch
// file) and nothing about the network; the replicate package owns the
// protocol, buffering and failure detection and treats record payloads as
// opaque bytes.

package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faults"
)

// Tap observes a Store's record stream for replication. All hooks except
// Barrier are called with the store's internal locks held and must only
// enqueue — never block, and never call back into the store.
//
//   - AppendRecord fires once per successfully appended record, in ticket
//     order, with the raw journal payload (ownership transfers to the tap).
//   - Rotate fires when a checkpoint rotates the journal to a new epoch,
//     ordered against AppendRecord calls.
//   - Checkpoint fires after a checkpoint file is atomically installed,
//     with the full encoded file.
//   - Barrier blocks until every record with ticket ≤ idx is acknowledged
//     by the replica, the tap decides to proceed without one (replica
//     declared dead), or the leader is fenced (error). It is called
//     outside the store locks, after the local fsync, by both publish
//     barriers and delivery-ack appends.
type Tap interface {
	AppendRecord(idx int64, payload []byte)
	Rotate(journalEpoch int64)
	Checkpoint(journalEpoch int64, raw []byte)
	Barrier(idx int64) error
}

// CatchupSnapshot captures a consistent view of the store's on-disk state
// for a follower resync: the installed checkpoint file (nil when none has
// been committed) and the ticket of the last record guaranteed flushed to
// the journals at capture time. Records appended after the capture overlap
// the live stream; replay idempotence makes the duplicated suffix
// harmless.
func (s *Store) CatchupSnapshot() (ckptRaw []byte, lastIdx int64, err error) {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0, ErrClosed
	}
	if s.crash.Dead() {
		s.mu.Unlock()
		return nil, 0, faults.ErrCrashed
	}
	lastIdx = s.writeSeq
	ferr := s.bw.Flush()
	f := s.f
	s.mu.Unlock()
	if ferr != nil {
		return nil, 0, fmt.Errorf("durable: flush: %w", ferr)
	}
	if err := f.Sync(); err != nil {
		return nil, 0, fmt.Errorf("durable: fsync: %w", err)
	}
	s.synced = lastIdx
	ckptRaw, err = os.ReadFile(filepath.Join(s.dir, ckptName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, lastIdx, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("durable: %w", err)
	}
	return ckptRaw, lastIdx, nil
}

// DecodeCheckpointMeta returns the journal epoch and base fingerprint
// stamped into an encoded checkpoint file, validating magic and CRC.
func DecodeCheckpointMeta(raw []byte) (epoch int64, base BaseInfo, err error) {
	_, epoch, base, err = decodeCheckpoint(raw)
	return epoch, base, err
}

// IterateRecords streams the raw payload of every journal record under
// dir, oldest epoch first, in append order — the catch-up source for a
// follower resync. fromEpoch skips journals below it (pass the checkpoint
// epoch; 0 streams everything present). A torn tail in the newest journal
// ends the stream cleanly (the live stream re-ships anything past it);
// corruption elsewhere is an error. The payload passed to fn is reused
// between calls — copy it to retain it.
func IterateRecords(dir string, fromEpoch int64, base BaseInfo, fn func(journalEpoch int64, payload []byte) error) error {
	epochs, err := listJournals(dir)
	if err != nil {
		return err
	}
	epochs = epochsFrom(epochs, fromEpoch)
	var scratch []byte
	for i, epoch := range epochs {
		last := i == len(epochs)-1
		if err := iterateJournal(dir, epoch, base, last, &scratch, fn); err != nil {
			return err
		}
	}
	return nil
}

func iterateJournal(dir string, epoch int64, base BaseInfo, last bool, scratch *[]byte, fn func(int64, []byte) error) error {
	f, err := os.Open(filepath.Join(dir, journalName(epoch)))
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, journalHeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return fmt.Errorf("durable: journal %d header: %w", epoch, err)
	}
	gotEpoch, gotBase, err := decodeJournalHeader(hdr)
	if err != nil {
		return fmt.Errorf("durable: journal %d: %w", epoch, err)
	}
	if gotEpoch != epoch || gotBase != base {
		return fmt.Errorf("durable: journal %d header mismatch (epoch %d, base %x/%d)",
			epoch, gotEpoch, gotBase.Hash, gotBase.Count)
	}
	br := bufio.NewReaderSize(f, 64<<10)
	for {
		payload, _, err := readFrame(br, scratch)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if last {
				return nil // torn tail: the live stream covers the rest
			}
			return fmt.Errorf("durable: journal %d corrupt mid-stream: %w", epoch, err)
		}
		if err := fn(epoch, payload); err != nil {
			return err
		}
	}
}

// ---- fencing epoch ------------------------------------------------------

const (
	epochMagic   = "PSEPO1\x00\x00"
	epochName    = "epoch.bin"
	epochTmpName = "epoch.tmp"
)

// LoadEpoch reads the persisted replication fencing epoch from dir (0 when
// none was ever stored).
func LoadEpoch(dir string) (int64, error) {
	b, err := os.ReadFile(filepath.Join(dir, epochName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("durable: %w", err)
	}
	if len(b) != len(epochMagic)+12 || string(b[:8]) != epochMagic {
		return 0, errors.New("durable: bad epoch file")
	}
	term := int64(binary.LittleEndian.Uint64(b[8:]))
	if crc32.Checksum(b[8:16], castagnoli) != binary.LittleEndian.Uint32(b[16:]) {
		return 0, errors.New("durable: epoch file CRC mismatch")
	}
	return term, nil
}

// StoreEpoch durably persists the replication fencing epoch in dir
// (temp write, fsync, atomic rename, directory fsync). A follower must
// persist its new epoch before acting as leader: fencing only works if a
// restart cannot forget a promotion.
func StoreEpoch(dir string, term int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	b := make([]byte, 0, len(epochMagic)+12)
	b = append(b, epochMagic...)
	b = binary.LittleEndian.AppendUint64(b, uint64(term))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b[8:16], castagnoli))
	tmp := filepath.Join(dir, epochTmpName)
	if err := writeFileSync(tmp, b); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, epochName)); err != nil {
		return fmt.Errorf("durable: installing epoch: %w", err)
	}
	return syncDir(dir)
}

// ---- follower replica ---------------------------------------------------

// ErrNoJournal is returned by Replica appends before a Reset established
// the journal position — the protocol always opens with a catch-up.
var ErrNoJournal = errors.New("durable: replica has no journal (catch-up pending)")

// Replica is the follower half of a replicated pair: a raw-apply store
// that mirrors a leader's record stream into an identical on-disk layout
// (journals, rotations, checkpoint installs) without interpreting the
// records. Promotion closes the Replica and runs ordinary recovery —
// broker.Open — over the directory, so failover reuses the exact
// crash-restart machinery the chaos suite already proves out.
//
// The same simulated-crash contract as Store applies: injected crash
// points flush previously-applied records to the OS before dying, so a
// record the follower acknowledged is always visible to the promoted
// incarnation.
type Replica struct {
	dir   string
	base  BaseInfo
	crash *faults.CrashInjector

	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	epoch   int64
	applied int64
	closed  bool
}

// OpenReplica prepares dir to receive a replicated stream. Any previous
// contents stay untouched until the leader's catch-up decides the sync
// point (Reset wipes and re-seeds the directory).
func OpenReplica(dir string, base BaseInfo, opts Options) (*Replica, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	os.Remove(filepath.Join(dir, ckptTmpName))
	os.Remove(filepath.Join(dir, epochTmpName))
	return &Replica{dir: dir, base: base, crash: opts.Crash}, nil
}

// Reset wipes the replica's journals and checkpoint and re-seeds them for
// a full resync: ckptRaw (leader's current checkpoint file, may be nil)
// is installed verbatim and a fresh journal is opened at journalEpoch.
func (r *Replica) Reset(journalEpoch int64, ckptRaw []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.crash.Dead() {
		return faults.ErrCrashed
	}
	if r.f != nil {
		r.f.Close()
		r.f, r.bw = nil, nil
	}
	epochs, err := listJournals(r.dir)
	if err != nil {
		return err
	}
	for _, e := range epochs {
		os.Remove(filepath.Join(r.dir, journalName(e)))
	}
	os.Remove(filepath.Join(r.dir, ckptName))
	if len(ckptRaw) > 0 {
		epoch, base, err := DecodeCheckpointMeta(ckptRaw)
		if err != nil {
			return err
		}
		if base != r.base {
			return fmt.Errorf("durable: replica checkpoint base mismatch (%x/%d, want %x/%d)",
				base.Hash, base.Count, r.base.Hash, r.base.Count)
		}
		if epoch > journalEpoch {
			return fmt.Errorf("durable: replica checkpoint epoch %d past journal epoch %d", epoch, journalEpoch)
		}
		tmp := filepath.Join(r.dir, ckptTmpName)
		if err := writeFileSync(tmp, ckptRaw); err != nil {
			return err
		}
		if err := os.Rename(tmp, filepath.Join(r.dir, ckptName)); err != nil {
			return fmt.Errorf("durable: installing checkpoint: %w", err)
		}
	}
	if err := syncDir(r.dir); err != nil {
		return err
	}
	r.applied = 0
	return r.openJournal(journalEpoch)
}

// openJournal creates the journal for epoch and installs it as the apply
// target. Caller holds r.mu.
func (r *Replica) openJournal(epoch int64) error {
	f, err := os.OpenFile(filepath.Join(r.dir, journalName(epoch)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(encodeJournalHeader(epoch, r.base)); err != nil {
		f.Close()
		return fmt.Errorf("durable: journal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: journal header: %w", err)
	}
	if err := syncDir(r.dir); err != nil {
		f.Close()
		return err
	}
	r.f = f
	r.bw = bufio.NewWriterSize(f, 64<<10)
	r.epoch = epoch
	return nil
}

// AppendRaw applies one shipped record payload (buffered; Sync is the
// durability barrier before acknowledging the leader). Crash points fire
// here with the same semantics as leader appends, so the chaos suite can
// kill the follower mid-catch-up and mid-stream.
func (r *Replica) AppendRaw(payload []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.f == nil {
		return ErrNoJournal
	}
	switch r.crash.OnAppend() {
	case faults.CrashBeforeAppend:
		r.bw.Flush()
		return faults.ErrCrashed
	case faults.CrashTornAppend:
		frame := appendFrame(nil, payload)
		r.bw.Write(frame[:frameHeaderLen+len(payload)/2])
		r.bw.Flush()
		r.f.Sync()
		return faults.ErrCrashed
	case faults.CrashAfterAppend:
		r.bw.Write(appendFrame(nil, payload))
		r.bw.Flush()
		r.f.Sync()
		return faults.ErrCrashed
	}
	if _, err := r.bw.Write(appendFrame(nil, payload)); err != nil {
		return fmt.Errorf("durable: replica append: %w", err)
	}
	r.applied++
	return nil
}

// Rotate mirrors a leader checkpoint rotation: sync the current journal,
// open a fresh one for epoch. Rotations at or below the current epoch are
// duplicates from a catch-up overlap and are ignored.
func (r *Replica) Rotate(epoch int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.crash.Dead() {
		return faults.ErrCrashed
	}
	if r.f == nil {
		return ErrNoJournal
	}
	if epoch <= r.epoch {
		return nil
	}
	if err := r.bw.Flush(); err != nil {
		return fmt.Errorf("durable: flush: %w", err)
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	old := r.f
	if err := r.openJournal(epoch); err != nil {
		return err
	}
	old.Close()
	return nil
}

// InstallCheckpoint mirrors a leader checkpoint commit: the encoded file
// is validated, written and atomically renamed into place, and journals
// below its epoch are deleted — after the current journal is synced, so
// nothing the dropped journals held is lost.
func (r *Replica) InstallCheckpoint(epoch int64, raw []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.crash.Dead() {
		return faults.ErrCrashed
	}
	gotEpoch, base, err := DecodeCheckpointMeta(raw)
	if err != nil {
		return err
	}
	if base != r.base {
		return fmt.Errorf("durable: replica checkpoint base mismatch (%x/%d, want %x/%d)",
			base.Hash, base.Count, r.base.Hash, r.base.Count)
	}
	if gotEpoch != epoch {
		return fmt.Errorf("durable: shipped checkpoint claims epoch %d, expected %d", gotEpoch, epoch)
	}
	if r.f != nil {
		if err := r.bw.Flush(); err != nil {
			return fmt.Errorf("durable: flush: %w", err)
		}
		if err := r.f.Sync(); err != nil {
			return fmt.Errorf("durable: fsync: %w", err)
		}
	}
	tmp := filepath.Join(r.dir, ckptTmpName)
	if err := writeFileSync(tmp, raw); err != nil {
		return err
	}
	if r.crash.OnCheckpoint() {
		return faults.ErrCrashed
	}
	if err := os.Rename(tmp, filepath.Join(r.dir, ckptName)); err != nil {
		return fmt.Errorf("durable: installing checkpoint: %w", err)
	}
	if err := syncDir(r.dir); err != nil {
		return err
	}
	for e := epoch - 1; e >= 1; e-- {
		if err := os.Remove(filepath.Join(r.dir, journalName(e))); err != nil {
			break
		}
	}
	return nil
}

// Sync flushes and fsyncs the current journal — the follower's durability
// barrier before acknowledging applied records to the leader.
func (r *Replica) Sync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.crash.Dead() {
		return faults.ErrCrashed
	}
	if r.f == nil {
		return nil
	}
	if err := r.bw.Flush(); err != nil {
		return fmt.Errorf("durable: flush: %w", err)
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	return nil
}

// Epoch returns the journal epoch currently being applied (0 before the
// first Reset).
func (r *Replica) Epoch() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Applied returns the records applied since the last Reset.
func (r *Replica) Applied() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Crashed reports whether an injected crash point has fired.
func (r *Replica) Crashed() bool { return r.crash.Dead() }

// Close flushes and closes the replica. The directory is left exactly as
// the stream last synced it — ready for broker.Open to promote.
func (r *Replica) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.f == nil {
		return nil
	}
	if r.crash.Dead() {
		r.f.Close()
		return nil
	}
	err := r.bw.Flush()
	if serr := r.f.Sync(); err == nil {
		err = serr
	}
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("durable: replica close: %w", err)
	}
	return nil
}
