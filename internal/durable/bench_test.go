package durable

import (
	"fmt"
	"testing"

	"repro/internal/topology"
)

// BenchmarkJournalAppend measures buffered append throughput (churn and
// ack records ride this path; durability comes from the next group-commit
// barrier, issued once per batch).
func BenchmarkJournalAppend(b *testing.B) {
	s, _, err := Open(b.TempDir(), BaseInfo{Hash: 1, Count: 1}, quick())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AppendAck(topology.NodeID(i%64), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkJournalAppendSync measures the acknowledged-publish path: one
// framed record plus a group-commit fsync barrier per operation. This is
// the per-publish durability cost a single uncontended publisher pays;
// concurrent publishers coalesce barriers and pay less.
func BenchmarkJournalAppendSync(b *testing.B) {
	s, _, err := Open(b.TempDir(), BaseInfo{Hash: 1, Count: 1}, quick())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ev := testEvent(1, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AppendPublish(int64(i), ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdRecovery measures a full crash-recovery Open against the
// acceptance-criteria corpus: a checkpoint holding 10 000 churned
// subscriptions plus a 1 000-record journal tail of outstanding publishes.
func BenchmarkColdRecovery(b *testing.B) {
	const nSubs, nTail = 10_000, 1_000
	dir := b.TempDir()
	base := BaseInfo{Hash: 99, Count: 0}
	s, _, err := Open(dir, base, quick())
	if err != nil {
		b.Fatal(err)
	}
	if err := s.BeginCheckpoint(); err != nil {
		b.Fatal(err)
	}
	cp := &Checkpoint{NextSeq: 0, NextID: nSubs, Counters: map[string]int64{}}
	for i := 0; i < nSubs; i++ {
		lo := float64(i%100) / 100
		cp.Subs = append(cp.Subs, SubRecord{
			ID:    int64(i),
			Owner: topology.NodeID(i % 500),
			Rect:  testRect(lo, lo+0.01),
		})
	}
	if err := s.CommitCheckpoint(cp); err != nil {
		b.Fatal(err)
	}
	tail := make([]PublishRecord, nTail)
	for i := range tail {
		tail[i] = PublishRecord{Seq: int64(i), Ev: testEvent(topology.NodeID(i%500), 0.5)}
	}
	if err := s.AppendPublishes(tail); err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, st, err := Open(dir, base, quick())
		if err != nil {
			b.Fatal(err)
		}
		if st == nil || len(st.Subs) != nSubs || len(st.Outstanding) != nTail {
			b.Fatal(fmt.Errorf("recovered %d subs / %d outstanding", len(st.Subs), len(st.Outstanding)))
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
