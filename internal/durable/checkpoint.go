package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

const (
	ckptName    = "checkpoint.ckpt"
	ckptTmpName = "checkpoint.tmp"
)

// Checkpoint is the serialized broker state at one point in time. It
// covers everything a restart cannot rebuild from the base subscriptions
// alone: the live churned subscriptions (and which base subscriptions were
// removed), the per-consumer dedup windows, the next seq / durable-id
// allocators, and the counter values the broker preserves across a durable
// restart. The journal epoch the checkpoint belongs to is stamped by the
// Store at commit time; recovery replays that epoch's journal (and any
// later ones) on top.
type Checkpoint struct {
	NextSeq     int64
	NextID      int64
	RemovedBase []int64
	Subs        []SubRecord
	Windows     []WindowState
	Counters    map[string]int64
}

// encodeCheckpoint renders the full checkpoint file: magic, u64 body
// length, u32 crc32c(body), body. Map iteration is sorted so the bytes are
// deterministic for a given state.
func encodeCheckpoint(cp *Checkpoint, epoch int64, base BaseInfo) []byte {
	var body []byte
	body = binary.LittleEndian.AppendUint64(body, uint64(epoch))
	body = binary.LittleEndian.AppendUint64(body, base.Hash)
	body = binary.LittleEndian.AppendUint64(body, uint64(base.Count))
	body = binary.LittleEndian.AppendUint64(body, uint64(cp.NextSeq))
	body = binary.LittleEndian.AppendUint64(body, uint64(cp.NextID))

	body = binary.LittleEndian.AppendUint32(body, uint32(len(cp.RemovedBase)))
	for _, id := range cp.RemovedBase {
		body = binary.LittleEndian.AppendUint64(body, uint64(id))
	}

	body = binary.LittleEndian.AppendUint32(body, uint32(len(cp.Subs)))
	for _, r := range cp.Subs {
		sub := encodeSubRecord(nil, r)
		body = binary.LittleEndian.AppendUint32(body, uint32(len(sub)))
		body = append(body, sub...)
	}

	body = binary.LittleEndian.AppendUint32(body, uint32(len(cp.Windows)))
	for _, w := range cp.Windows {
		body = binary.LittleEndian.AppendUint64(body, uint64(int64(w.Node)))
		body = binary.LittleEndian.AppendUint32(body, uint32(w.Size))
		body = binary.LittleEndian.AppendUint64(body, uint64(w.Max))
		body = binary.LittleEndian.AppendUint32(body, uint32(len(w.Seqs)))
		for _, s := range w.Seqs {
			body = binary.LittleEndian.AppendUint64(body, uint64(s))
		}
	}

	names := make([]string, 0, len(cp.Counters))
	for name := range cp.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(names)))
	for _, name := range names {
		body = binary.LittleEndian.AppendUint16(body, uint16(len(name)))
		body = append(body, name...)
		body = binary.LittleEndian.AppendUint64(body, uint64(cp.Counters[name]))
	}

	out := make([]byte, 0, len(ckptMagic)+12+len(body))
	out = append(out, ckptMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, castagnoli))
	return append(out, body...)
}

func decodeCheckpoint(b []byte) (*Checkpoint, int64, BaseInfo, error) {
	if len(b) < len(ckptMagic)+12 || string(b[:8]) != ckptMagic {
		return nil, 0, BaseInfo{}, errors.New("durable: bad checkpoint header")
	}
	bodyLen := binary.LittleEndian.Uint64(b[8:])
	sum := binary.LittleEndian.Uint32(b[16:])
	body := b[20:]
	if uint64(len(body)) != bodyLen {
		return nil, 0, BaseInfo{}, fmt.Errorf("durable: checkpoint body %d bytes, header says %d", len(body), bodyLen)
	}
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, 0, BaseInfo{}, errors.New("durable: checkpoint CRC mismatch")
	}

	c := &cursor{b: body}
	epoch := c.i64()
	base := BaseInfo{Hash: c.u64(), Count: c.i64()}
	cp := &Checkpoint{
		NextSeq:  c.i64(),
		NextID:   c.i64(),
		Counters: map[string]int64{},
	}

	nRemoved := int(c.u32())
	if c.bad || nRemoved > maxPayloadLen {
		return nil, 0, BaseInfo{}, errors.New("durable: corrupt checkpoint (removed-base)")
	}
	cp.RemovedBase = make([]int64, nRemoved)
	for i := range cp.RemovedBase {
		cp.RemovedBase[i] = c.i64()
	}

	nSubs := int(c.u32())
	if c.bad || nSubs > maxPayloadLen {
		return nil, 0, BaseInfo{}, errors.New("durable: corrupt checkpoint (subs)")
	}
	cp.Subs = make([]SubRecord, 0, nSubs)
	for i := 0; i < nSubs; i++ {
		n := int(c.u32())
		if c.bad || n > maxPayloadLen {
			return nil, 0, BaseInfo{}, errors.New("durable: corrupt checkpoint (sub record)")
		}
		if c.off+n > len(c.b) {
			return nil, 0, BaseInfo{}, errors.New("durable: corrupt checkpoint (sub record)")
		}
		rec, err := decodeRecord(c.b[c.off : c.off+n])
		if err != nil || rec.kind != kindSubscribe {
			return nil, 0, BaseInfo{}, errors.New("durable: corrupt checkpoint (sub record)")
		}
		c.off += n
		cp.Subs = append(cp.Subs, rec.sub)
	}

	nWin := int(c.u32())
	if c.bad || nWin > maxPayloadLen {
		return nil, 0, BaseInfo{}, errors.New("durable: corrupt checkpoint (windows)")
	}
	cp.Windows = make([]WindowState, 0, nWin)
	for i := 0; i < nWin; i++ {
		w := WindowState{Node: c.node(), Size: int(c.u32()), Max: c.i64()}
		nSeqs := int(c.u32())
		if c.bad || nSeqs > maxPayloadLen {
			return nil, 0, BaseInfo{}, errors.New("durable: corrupt checkpoint (window seqs)")
		}
		w.Seqs = make([]int64, nSeqs)
		for j := range w.Seqs {
			w.Seqs[j] = c.i64()
		}
		cp.Windows = append(cp.Windows, w)
	}

	nCtr := int(c.u32())
	if c.bad || nCtr > maxPayloadLen {
		return nil, 0, BaseInfo{}, errors.New("durable: corrupt checkpoint (counters)")
	}
	for i := 0; i < nCtr; i++ {
		n := int(c.u16())
		if c.bad || c.off+n > len(c.b) {
			return nil, 0, BaseInfo{}, errors.New("durable: corrupt checkpoint (counter name)")
		}
		name := string(c.b[c.off : c.off+n])
		c.off += n
		cp.Counters[name] = c.i64()
	}

	if err := c.done(); err != nil {
		return nil, 0, BaseInfo{}, fmt.Errorf("durable: corrupt checkpoint: %w", err)
	}
	return cp, epoch, base, nil
}

func (c *cursor) u32() uint32 {
	if c.bad || c.off+4 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}
