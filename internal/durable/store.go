package durable

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("durable: store closed")

// Options tunes a Store. The zero value takes the defaults.
type Options struct {
	// CheckpointRecords triggers an automatic checkpoint once this many
	// records have been appended to the current journal epoch. 0 means the
	// default (4096); negative disables record-count checkpoints.
	CheckpointRecords int64
	// CheckpointInterval is the broker's checkpoint ticker period. 0 means
	// the default (1s); negative disables timed checkpoints.
	CheckpointInterval time.Duration
	// Crash arms deterministic crash-point injection for chaos tests.
	Crash *faults.CrashInjector
	// Tap, when set, observes the store's record stream for replication
	// and gates durability barriers on the replica's acknowledgement. See
	// the Tap interface for the exact hook points and locking contract.
	Tap Tap
}

func (o Options) withDefaults() Options {
	if o.CheckpointRecords == 0 {
		o.CheckpointRecords = 4096
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = time.Second
	}
	return o
}

// RecoveryStats describes what one Open had to do to rebuild state.
type RecoveryStats struct {
	CheckpointLoaded bool
	JournalsReplayed int
	RecordsReplayed  int
	TornTruncations  int
	TornTailBytes    int64
	Outstanding      int
	Duration         time.Duration
}

// State is the recovered broker state handed back by Open when the
// directory held a previous incarnation. Nil on a fresh directory.
type State struct {
	Epoch       int64
	NextSeq     int64
	NextID      int64
	RemovedBase []int64 // base subscription ids removed before the crash
	Subs        []SubRecord
	Windows     []WindowState // checkpointed dedup windows
	Acks        []AckRecord   // journal-tail acks, in append order
	Counters    map[string]int64
	Outstanding []PublishRecord // journal-tail publishes, ascending seq
	Stats       RecoveryStats
}

// Store is the durable backend of one broker. Appends are buffered and
// group-committed: any goroutine may append concurrently; a publish append
// blocks on a sync barrier that one flush+fsync satisfies for every record
// written before it. Churn and ack records are buffered and ride the next
// barrier (the broker issues one per churn batch, before it swaps the
// decision snapshot, so replay order equals swap order).
//
// Simulated-crash contract: the injected crash points flush everything
// appended before the dying operation to the OS, so a record whose append
// returned nil is always visible to the next incarnation. This makes the
// chaos-test oracle exact; a real power loss would additionally need the
// ack records fsynced, which group commit amortises the same way.
type Store struct {
	dir   string
	base  BaseInfo
	opts  Options
	crash *faults.CrashInjector
	tap   Tap
	rec   RecoveryStats

	mu       sync.Mutex // guards the journal file, writer and counts
	f        *os.File
	bw       *bufio.Writer
	epoch    int64
	writeSeq int64 // records appended (ever); sync barrier tickets
	appended int64 // records appended since the last checkpoint
	closed   bool

	syncMu sync.Mutex // serialises fsync; guards synced
	synced int64      // highest ticket known flushed+fsynced

	ctr struct {
		appends     *telemetry.Counter
		appendBytes *telemetry.Counter
		fsyncs      *telemetry.Counter
		checkpoints *telemetry.Counter
		torn        *telemetry.Counter
		tornBytes   *telemetry.Counter
		replayed    *telemetry.Counter
		outstanding *telemetry.Counter
		epochGauge  *telemetry.Gauge
	}
}

// Open creates or recovers the store in dir. base must describe the
// engine's initial subscription population; a directory written against a
// different base is refused. The returned State is nil when the directory
// is fresh, and otherwise holds everything needed to rebuild the broker.
func Open(dir string, base BaseInfo, opts Options) (*Store, *State, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	// A stranded temp file is a checkpoint that was never installed: the
	// previous checkpoint (if any) is still authoritative.
	os.Remove(filepath.Join(dir, ckptTmpName))

	cp, cpEpoch, err := loadCheckpoint(dir)
	if err != nil {
		return nil, nil, err
	}
	epochs, err := listJournals(dir)
	if err != nil {
		return nil, nil, err
	}

	s := &Store{dir: dir, base: base, opts: opts, crash: opts.Crash, tap: opts.Tap}

	if cp == nil && len(epochs) == 0 {
		if err := s.openJournal(1, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, true); err != nil {
			return nil, nil, err
		}
		return s, nil, nil
	}

	st := &State{NextID: base.Count, Counters: map[string]int64{}}
	startEpoch := int64(1)
	churned := map[int64]SubRecord{}
	removed := map[int64]bool{}
	if cp != nil {
		st.Stats.CheckpointLoaded = true
		startEpoch = cpEpoch
		st.NextSeq = cp.NextSeq
		st.NextID = cp.NextID
		st.Windows = cp.Windows
		st.Counters = cp.Counters
		for _, id := range cp.RemovedBase {
			removed[id] = true
		}
		for _, r := range cp.Subs {
			churned[r.ID] = r
		}
	}

	// The journals covering [startEpoch, last] must exist contiguously.
	tail := epochsFrom(epochs, startEpoch)
	if len(tail) == 0 || tail[0] != startEpoch {
		return nil, nil, fmt.Errorf("durable: journal epoch %d missing (have %v)", startEpoch, epochs)
	}
	for i := 1; i < len(tail); i++ {
		if tail[i] != tail[i-1]+1 {
			return nil, nil, fmt.Errorf("durable: journal gap between epochs %d and %d", tail[i-1], tail[i])
		}
	}

	outstanding := map[int64]PublishRecord{}
	for i, epoch := range tail {
		last := i == len(tail)-1
		n, torn, err := s.replayJournal(epoch, last, func(r record) {
			switch r.kind {
			case kindSubscribe:
				if r.sub.ID >= base.Count { // base ids are never re-subscribed
					churned[r.sub.ID] = r.sub
				}
				if r.sub.ID >= st.NextID {
					st.NextID = r.sub.ID + 1
				}
			case kindUnsubscribe:
				if r.unsub < base.Count {
					removed[r.unsub] = true
				} else {
					delete(churned, r.unsub)
				}
			case kindPublish:
				outstanding[r.pub.Seq] = r.pub
				if r.pub.Seq >= st.NextSeq {
					st.NextSeq = r.pub.Seq + 1
				}
			case kindAck:
				st.Acks = append(st.Acks, r.ack)
			}
		})
		if err != nil {
			return nil, nil, err
		}
		st.Stats.JournalsReplayed++
		st.Stats.RecordsReplayed += n
		if torn > 0 {
			st.Stats.TornTruncations++
			st.Stats.TornTailBytes += torn
		}
	}

	// Stale journals below the checkpoint epoch (a crash can land between
	// checkpoint install and old-journal deletion).
	for _, epoch := range epochs {
		if epoch < startEpoch {
			os.Remove(filepath.Join(dir, journalName(epoch)))
		}
	}

	for id := range removed {
		st.RemovedBase = append(st.RemovedBase, id)
	}
	sort.Slice(st.RemovedBase, func(i, j int) bool { return st.RemovedBase[i] < st.RemovedBase[j] })
	for _, r := range churned {
		st.Subs = append(st.Subs, r)
	}
	sort.Slice(st.Subs, func(i, j int) bool { return st.Subs[i].ID < st.Subs[j].ID })
	for _, p := range outstanding {
		st.Outstanding = append(st.Outstanding, p)
	}
	sort.Slice(st.Outstanding, func(i, j int) bool { return st.Outstanding[i].Seq < st.Outstanding[j].Seq })
	st.Stats.Outstanding = len(st.Outstanding)

	// Resume appending to the last journal (already truncated past any torn
	// tail by replayJournal).
	lastEpoch := tail[len(tail)-1]
	if err := s.openJournal(lastEpoch, os.O_WRONLY|os.O_APPEND, false); err != nil {
		return nil, nil, err
	}
	st.Epoch = lastEpoch
	st.Stats.Duration = time.Since(start)
	s.rec = st.Stats
	return s, st, nil
}

// openJournal opens (and with writeHeader, initialises) the journal for
// epoch and installs it as the append target.
func (s *Store) openJournal(epoch int64, flags int, writeHeader bool) error {
	f, err := os.OpenFile(filepath.Join(s.dir, journalName(epoch)), flags, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if writeHeader {
		if _, err := f.Write(encodeJournalHeader(epoch, s.base)); err != nil {
			f.Close()
			return fmt.Errorf("durable: journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("durable: journal header: %w", err)
		}
		if err := syncDir(s.dir); err != nil {
			f.Close()
			return err
		}
	}
	s.f = f
	s.bw = bufio.NewWriterSize(f, 64<<10)
	s.epoch = epoch
	s.ctr.epochGauge.Set(epoch)
	return nil
}

// replayJournal reads one journal, applying every intact record. A torn or
// corrupt final frame in the last journal is truncated away and its byte
// count returned; the same damage in an earlier journal is a hard error,
// since only the file being appended to at the moment of a crash can be
// torn.
func (s *Store) replayJournal(epoch int64, last bool, apply func(record)) (int, int64, error) {
	path := filepath.Join(s.dir, journalName(epoch))
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("durable: %w", err)
	}
	defer f.Close()

	hdr := make([]byte, journalHeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, 0, fmt.Errorf("durable: journal %d header: %w", epoch, err)
	}
	gotEpoch, gotBase, err := decodeJournalHeader(hdr)
	if err != nil {
		return 0, 0, fmt.Errorf("durable: journal %d: %w", epoch, err)
	}
	if gotEpoch != epoch {
		return 0, 0, fmt.Errorf("durable: journal file %d claims epoch %d", epoch, gotEpoch)
	}
	if gotBase != s.base {
		return 0, 0, fmt.Errorf("durable: journal %d written against a different subscription base (hash %x/count %d, want %x/%d)",
			epoch, gotBase.Hash, gotBase.Count, s.base.Hash, s.base.Count)
	}

	br := bufio.NewReaderSize(f, 64<<10)
	off := int64(journalHeaderLen)
	records := 0
	var scratch []byte
	for {
		payload, frameLen, err := readFrame(br, &scratch)
		if err == io.EOF {
			return records, 0, nil
		}
		if err != nil {
			if !last {
				return 0, 0, fmt.Errorf("durable: journal %d corrupt mid-file at offset %d: %w", epoch, off, err)
			}
			info, serr := f.Stat()
			if serr != nil {
				return 0, 0, fmt.Errorf("durable: %w", serr)
			}
			torn := info.Size() - off
			if terr := os.Truncate(path, off); terr != nil {
				return 0, 0, fmt.Errorf("durable: truncating torn tail: %w", terr)
			}
			return records, torn, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return 0, 0, fmt.Errorf("durable: journal %d record at offset %d: %w", epoch, off, err)
		}
		apply(rec)
		records++
		off += int64(frameLen)
	}
}

// readFrame reads one frame from br. io.EOF means a clean end; any other
// error means a torn or corrupt frame.
func readFrame(br *bufio.Reader, scratch *[]byte) ([]byte, int, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("torn frame header: %w", err)
	}
	n := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	sum := uint32(hdr[4]) | uint32(hdr[5])<<8 | uint32(hdr[6])<<16 | uint32(hdr[7])<<24
	if n <= 0 || n > maxPayloadLen {
		return nil, 0, fmt.Errorf("frame length %d out of range", n)
	}
	if cap(*scratch) < n {
		*scratch = make([]byte, n)
	}
	payload := (*scratch)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, 0, fmt.Errorf("torn frame payload: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, errors.New("frame CRC mismatch")
	}
	return payload, frameHeaderLen + n, nil
}

func loadCheckpoint(dir string) (*Checkpoint, int64, error) {
	b, err := os.ReadFile(filepath.Join(dir, ckptName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("durable: %w", err)
	}
	cp, epoch, _, err := decodeCheckpoint(b)
	if err != nil {
		return nil, 0, err
	}
	return cp, epoch, nil
}

func listJournals(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	var out []int64
	for _, e := range ents {
		var epoch int64
		if _, err := fmt.Sscanf(e.Name(), "journal.%d.log", &epoch); err == nil && e.Name() == journalName(epoch) {
			out = append(out, epoch)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func epochsFrom(epochs []int64, from int64) []int64 {
	i := sort.Search(len(epochs), func(i int) bool { return epochs[i] >= from })
	return epochs[i:]
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// Instrument registers the store's metrics under scope "durable" and seeds
// the recovery results of the Open that produced this store, so one
// registry tells the whole story.
func (s *Store) Instrument(reg *telemetry.Registry) {
	if s == nil || reg == nil {
		return
	}
	sc := reg.Scope("durable")
	s.ctr.appends = sc.Counter("journal_appends")
	s.ctr.appendBytes = sc.Counter("journal_append_bytes")
	s.ctr.fsyncs = sc.Counter("journal_fsyncs")
	s.ctr.checkpoints = sc.Counter("checkpoints")
	s.ctr.torn = sc.Counter("torn_truncations")
	s.ctr.tornBytes = sc.Counter("torn_tail_bytes")
	s.ctr.replayed = sc.Counter("replayed_records")
	s.ctr.outstanding = sc.Counter("outstanding_replayed")
	s.ctr.epochGauge = sc.Gauge("journal_epoch")

	s.ctr.torn.Add(int64(s.rec.TornTruncations))
	s.ctr.tornBytes.Add(s.rec.TornTailBytes)
	s.ctr.replayed.Add(int64(s.rec.RecordsReplayed))
	s.ctr.outstanding.Add(int64(s.rec.Outstanding))
	s.mu.Lock()
	s.ctr.epochGauge.Set(s.epoch)
	s.mu.Unlock()
}

// Recovery returns what the Open that produced this store had to replay.
func (s *Store) Recovery() RecoveryStats { return s.rec }

// Options returns the effective (defaulted) options.
func (s *Store) Options() Options { return s.opts }

// Epoch returns the current journal epoch.
func (s *Store) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// AppendedSinceCheckpoint returns the records appended to the current
// journal epoch — the broker's trigger for record-count checkpoints.
func (s *Store) AppendedSinceCheckpoint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// Crashed reports whether an injected crash point has fired.
func (s *Store) Crashed() bool { return s.crash.Dead() }

// Dir returns the directory the store persists into.
func (s *Store) Dir() string { return s.dir }

// Base returns the subscription-base fingerprint the store was opened
// against — a replica must be seeded with the same base.
func (s *Store) Base() BaseInfo { return s.base }

// append frames and buffers one record, returning the barrier ticket that
// a Sync/syncTo must reach to make it durable. Crash points fire here.
func (s *Store) append(payload []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	switch s.crash.OnAppend() {
	case faults.CrashBeforeAppend:
		// The dying write never happens; earlier buffered records reach
		// the OS (see the simulated-crash contract).
		s.bw.Flush()
		return 0, faults.ErrCrashed
	case faults.CrashTornAppend:
		frame := appendFrame(nil, payload)
		s.bw.Write(frame[:frameHeaderLen+len(payload)/2])
		s.bw.Flush()
		s.f.Sync()
		return 0, faults.ErrCrashed
	case faults.CrashAfterAppend:
		s.bw.Write(appendFrame(nil, payload))
		s.bw.Flush()
		s.f.Sync()
		return 0, faults.ErrCrashed
	}
	frame := appendFrame(nil, payload)
	if _, err := s.bw.Write(frame); err != nil {
		return 0, fmt.Errorf("durable: append: %w", err)
	}
	s.writeSeq++
	s.appended++
	s.ctr.appends.Inc()
	s.ctr.appendBytes.Add(int64(len(frame)))
	if s.tap != nil {
		// Enqueue-only (the tap must not block): crashed appends never get
		// here, so a record that ships always returned its ticket locally.
		s.tap.AppendRecord(s.writeSeq, payload)
	}
	return s.writeSeq, nil
}

// syncTo is the group-commit barrier: it returns once every record with a
// ticket ≤ the argument is flushed and fsynced — and, when a replication
// tap is installed, acknowledged by the replica (or the tap decided to
// proceed without one). Concurrent callers coalesce — one fsync satisfies
// all barriers issued before it.
func (s *Store) syncTo(ticket int64) error {
	if err := s.localSyncTo(ticket); err != nil {
		return err
	}
	// Outside syncMu: the remote round-trip must not serialise local group
	// commit, and the tap coalesces concurrent waiters itself. Always
	// consulted (even when an earlier barrier already covered the local
	// fsync) so a ticket is never acknowledged before the replica has it.
	if s.tap != nil {
		return s.tap.Barrier(ticket)
	}
	return nil
}

// localSyncTo is the local half of the barrier: flush + fsync.
func (s *Store) localSyncTo(ticket int64) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.synced >= ticket {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.crash.Dead() {
		s.mu.Unlock()
		return faults.ErrCrashed
	}
	n := s.writeSeq
	err := s.bw.Flush()
	f := s.f
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("durable: flush: %w", err)
	}
	// f cannot rotate out from under us: rotation takes syncMu first.
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	s.synced = n
	s.ctr.fsyncs.Inc()
	return nil
}

// Sync is a barrier to the latest append.
func (s *Store) Sync() error {
	s.mu.Lock()
	t := s.writeSeq
	s.mu.Unlock()
	return s.syncTo(t)
}

// AppendSubscribe journals a churn subscription. Buffered: the broker
// issues one Sync per churn batch before swapping the decision snapshot.
func (s *Store) AppendSubscribe(r SubRecord) error {
	_, err := s.append(encodeSubRecord(nil, r))
	return err
}

// AppendUnsubscribe journals a churn removal (buffered, like subscribes).
func (s *Store) AppendUnsubscribe(id int64) error {
	_, err := s.append(encodeUnsubRecord(nil, id))
	return err
}

// AppendPublish journals one publication and blocks until it is durable
// (group commit). The broker acknowledges the publish only after this
// returns nil.
func (s *Store) AppendPublish(seq int64, ev workload.Event) error {
	t, err := s.append(encodePublishRecord(nil, PublishRecord{Seq: seq, Ev: ev}))
	if err != nil {
		return err
	}
	return s.syncTo(t)
}

// AppendPublishes buffers a batch of publish records without a barrier —
// used by checkpoints to carry in-flight publishes into the new epoch;
// CommitCheckpoint's own Sync makes them durable before old journals die.
func (s *Store) AppendPublishes(recs []PublishRecord) error {
	for _, r := range recs {
		if _, err := s.append(encodePublishRecord(nil, r)); err != nil {
			return err
		}
	}
	return nil
}

// AppendAck journals a delivery admission (buffered; rides the next
// fsync barrier locally). With a replication tap installed it does wait
// for the replica's acknowledgement: a delivery may only be observed once
// the ack record that suppresses its replay exists on both sides —
// otherwise a promoted follower would deliver the copy again.
func (s *Store) AppendAck(node topology.NodeID, seq int64) error {
	t, err := s.append(encodeAckRecord(nil, AckRecord{Node: node, Seq: seq}))
	if err != nil {
		return err
	}
	if s.tap != nil {
		return s.tap.Barrier(t)
	}
	return nil
}

// BeginCheckpoint rotates to a fresh journal epoch. The caller then
// re-appends any in-flight publish records and captures the checkpoint
// state, so that everything the new epoch's checkpoint does not cover is
// in the new epoch's journal.
func (s *Store) BeginCheckpoint() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.crash.Dead() {
		return faults.ErrCrashed
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("durable: flush: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	s.synced = s.writeSeq
	old := s.f
	if err := s.openJournal(s.epoch+1, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, true); err != nil {
		return err // openJournal leaves the old epoch installed on failure
	}
	old.Close()
	s.appended = 0
	if s.tap != nil {
		// Under s.mu, so the rotation marker sits between the records of
		// the old and new epochs in the shipped stream.
		s.tap.Rotate(s.epoch)
	}
	return nil
}

// CommitCheckpoint installs cp for the current epoch (temp write, fsync,
// atomic rename, directory fsync) and deletes the journals of previous
// epochs. The mid-checkpoint crash point fires between the temp write and
// the rename, stranding the temp file.
func (s *Store) CommitCheckpoint(cp *Checkpoint) error {
	if s.crash.Dead() {
		return faults.ErrCrashed
	}
	// Everything the checkpoint epoch's journal holds (carried-forward
	// publishes, churn since rotation) must be durable before the previous
	// epochs are deleted.
	if err := s.Sync(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	epoch := s.epoch
	s.mu.Unlock()

	tmp := filepath.Join(s.dir, ckptTmpName)
	encoded := encodeCheckpoint(cp, epoch, s.base)
	if err := writeFileSync(tmp, encoded); err != nil {
		return err
	}
	if s.crash.OnCheckpoint() {
		return faults.ErrCrashed
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, ckptName)); err != nil {
		return fmt.Errorf("durable: installing checkpoint: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	for e := epoch - 1; e >= 1; e-- {
		if err := os.Remove(filepath.Join(s.dir, journalName(e))); err != nil {
			break // already gone: previous checkpoint cleaned further back
		}
	}
	s.ctr.checkpoints.Inc()
	if s.tap != nil {
		// After install so a shipped checkpoint is always one the leader
		// actually has; any records appended meanwhile belong to the
		// current epoch and ride ahead or behind harmlessly.
		s.tap.Checkpoint(epoch, encoded)
	}
	return nil
}

func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// Close flushes and closes the journal. After a simulated crash the
// buffered state is already on disk exactly as the dying process left it,
// so Close only releases the file handle.
func (s *Store) Close() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.crash.Dead() {
		s.f.Close()
		return nil
	}
	err := s.bw.Flush()
	if serr := s.f.Sync(); err == nil {
		err = serr
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("durable: close: %w", err)
	}
	return nil
}
