// Package durable persists broker state: an append-only, CRC-framed,
// fsync-batched write-ahead journal of subscription churn, publish and
// delivery-ack records, plus periodic checkpoints that serialize the
// engine's decision inputs and per-consumer dedup windows. A broker
// restarted over the same directory rebuilds its state from the newest
// checkpoint and the journal tail, redelivering the outstanding publishes
// so that events acknowledged before a crash are delivered exactly once
// (the restored dedup windows suppress the copies that already arrived).
//
// On-disk layout (all integers little-endian):
//
//	journal.NNNNNN.log   one per checkpoint epoch; 32-byte header
//	                     (magic, epoch, base-subscription hash, base count)
//	                     followed by frames [4B len][4B crc32c(payload)][payload]
//	checkpoint.ckpt      newest checkpoint: magic, 8B body length,
//	                     4B crc32c(body), body — installed by atomic rename
//	checkpoint.tmp       in-progress checkpoint; ignored and removed at Open
//
// A checkpoint names the first journal epoch it does NOT cover; recovery
// loads the checkpoint and replays every journal with epoch ≥ that number
// in order. Replay is idempotent, so records that straddle a checkpoint
// (or are re-appended when a checkpoint carries forward in-flight
// publishes) apply once. A torn final frame — the classic mid-append
// crash — is detected by the length/CRC checks, truncated, and counted.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

// castagnoli is the CRC-32C polynomial used for every frame and for the
// checkpoint body.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	journalMagic = "PSWAL1\x00\x00" // 8 bytes, starts every journal file
	ckptMagic    = "PSCKP1\x00\x00" // 8 bytes, starts the checkpoint file

	frameHeaderLen   = 8 // u32 payload length + u32 crc32c(payload)
	journalHeaderLen = 8 + 8 + 8 + 8
	maxPayloadLen    = 1 << 24 // sanity bound; a frame longer than this is corruption
)

// Record kinds (first payload byte).
const (
	kindSubscribe   byte = 1
	kindUnsubscribe byte = 2
	kindPublish     byte = 3
	kindAck         byte = 4
)

// SubRecord is a durably-identified subscription. IDs are assigned once
// and never reused: the engine's base subscriptions own ids 0..BaseCount-1
// and churned subscriptions count up from there, decoupling durable
// identity from the engine's compacting slot numbers.
type SubRecord struct {
	ID    int64
	Owner topology.NodeID
	Rect  space.Rect
}

// PublishRecord is one journaled publication with its broker sequence
// number; recovery redelivers outstanding publishes under their original
// seq so restored dedup windows recognise them.
type PublishRecord struct {
	Seq int64
	Ev  workload.Event
}

// AckRecord marks one (consumer node, seq) delivery as admitted into the
// consumer's dedup window.
type AckRecord struct {
	Node topology.NodeID
	Seq  int64
}

// WindowState is a checkpointed per-consumer dedup window: the seqs still
// inside the sliding window at capture time.
type WindowState struct {
	Node topology.NodeID
	Size int
	Max  int64
	Seqs []int64
}

// BaseInfo fingerprints the engine's initial subscription population. It
// is stamped into every journal header and checkpoint; Open refuses to
// recover state written against a different base.
type BaseInfo struct {
	Hash  uint64
	Count int64
}

// HashBase fingerprints a base subscription slice (FNV-1a over owners and
// rectangle endpoint bit patterns).
func HashBase(subs []workload.Subscription) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, s := range subs {
		mix(uint64(int64(s.Owner)))
		for _, iv := range s.Rect {
			mix(math.Float64bits(iv.Lo))
			mix(math.Float64bits(iv.Hi))
		}
	}
	return h
}

// record is the decoded form of one journal frame.
type record struct {
	kind  byte
	sub   SubRecord     // kindSubscribe
	unsub int64         // kindUnsubscribe
	pub   PublishRecord // kindPublish
	ack   AckRecord     // kindAck
}

func encodeSubRecord(b []byte, r SubRecord) []byte {
	b = append(b, kindSubscribe)
	b = binary.LittleEndian.AppendUint64(b, uint64(r.ID))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(r.Owner)))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Rect)))
	for _, iv := range r.Rect {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(iv.Lo))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(iv.Hi))
	}
	return b
}

func encodeUnsubRecord(b []byte, id int64) []byte {
	b = append(b, kindUnsubscribe)
	return binary.LittleEndian.AppendUint64(b, uint64(id))
}

func encodePublishRecord(b []byte, p PublishRecord) []byte {
	b = append(b, kindPublish)
	b = binary.LittleEndian.AppendUint64(b, uint64(p.Seq))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(p.Ev.Pub)))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Ev.Point)))
	for _, x := range p.Ev.Point {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

func encodeAckRecord(b []byte, a AckRecord) []byte {
	b = append(b, kindAck)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(a.Node)))
	return binary.LittleEndian.AppendUint64(b, uint64(a.Seq))
}

// cursor is a bounds-checked little-endian reader over a payload.
type cursor struct {
	b   []byte
	off int
	bad bool
}

func (c *cursor) u8() byte {
	if c.bad || c.off+1 > len(c.b) {
		c.bad = true
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u16() uint16 {
	if c.bad || c.off+2 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u64() uint64 {
	if c.bad || c.off+8 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) i64() int64   { return int64(c.u64()) }
func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }
func (c *cursor) node() topology.NodeID {
	return topology.NodeID(c.i64())
}

// done reports a decoding error if the cursor overran or bytes remain.
func (c *cursor) done() error {
	if c.bad {
		return errors.New("durable: truncated payload")
	}
	if c.off != len(c.b) {
		return fmt.Errorf("durable: %d trailing payload bytes", len(c.b)-c.off)
	}
	return nil
}

func decodeRecord(payload []byte) (record, error) {
	var r record
	if len(payload) == 0 {
		return r, errors.New("durable: empty payload")
	}
	c := &cursor{b: payload}
	r.kind = c.u8()
	switch r.kind {
	case kindSubscribe:
		r.sub.ID = c.i64()
		r.sub.Owner = c.node()
		dim := int(c.u16())
		if dim > 1024 {
			return r, fmt.Errorf("durable: subscription dim %d out of range", dim)
		}
		r.sub.Rect = make(space.Rect, dim)
		for i := range r.sub.Rect {
			r.sub.Rect[i] = space.Interval{Lo: c.f64(), Hi: c.f64()}
		}
	case kindUnsubscribe:
		r.unsub = c.i64()
	case kindPublish:
		r.pub.Seq = c.i64()
		r.pub.Ev.Pub = c.node()
		dim := int(c.u16())
		if dim > 1024 {
			return r, fmt.Errorf("durable: event dim %d out of range", dim)
		}
		r.pub.Ev.Point = make(space.Point, dim)
		for i := range r.pub.Ev.Point {
			r.pub.Ev.Point[i] = c.f64()
		}
	case kindAck:
		r.ack.Node = c.node()
		r.ack.Seq = c.i64()
	default:
		return r, fmt.Errorf("durable: unknown record kind %d", r.kind)
	}
	if err := c.done(); err != nil {
		return r, err
	}
	return r, nil
}

// appendFrame frames a payload: [4B len][4B crc32c(payload)][payload].
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

func journalName(epoch int64) string { return fmt.Sprintf("journal.%06d.log", epoch) }

func encodeJournalHeader(epoch int64, base BaseInfo) []byte {
	b := make([]byte, 0, journalHeaderLen)
	b = append(b, journalMagic...)
	b = binary.LittleEndian.AppendUint64(b, uint64(epoch))
	b = binary.LittleEndian.AppendUint64(b, base.Hash)
	b = binary.LittleEndian.AppendUint64(b, uint64(base.Count))
	return b
}

func decodeJournalHeader(b []byte) (epoch int64, base BaseInfo, err error) {
	if len(b) != journalHeaderLen || string(b[:8]) != journalMagic {
		return 0, BaseInfo{}, errors.New("durable: bad journal header")
	}
	epoch = int64(binary.LittleEndian.Uint64(b[8:]))
	base.Hash = binary.LittleEndian.Uint64(b[16:])
	base.Count = int64(binary.LittleEndian.Uint64(b[24:]))
	return epoch, base, nil
}
