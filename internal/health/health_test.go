package health

import (
	"errors"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/topology"
)

// fakeClock is a manually advanced time source shared by the deterministic
// breaker/controller tests.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time           { return c.now }
func (c *fakeClock) Advance(d time.Duration)  { c.now = c.now.Add(d) }
func (c *fakeClock) Config(cfg Config) Config { cfg.Clock = c.Now; return cfg }

func newTestHealth(t *testing.T, cfg Config) *Health {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Instrument(telemetry.NewRegistry())
	return h
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MaxInflight: -1},
		{Policy: Policy(9)},
		{RatePerSec: -0.5},
		{Burst: -2},
		{FailureThreshold: -1},
		{SuspicionThreshold: -1},
		{EWMAAlpha: 1.5},
		{OpenTimeout: -time.Second},
		{ProbeInterval: -time.Second},
		{ProbeSuccesses: -1},
		{CheckInterval: -time.Second},
		{MinRefreshInterval: -time.Second},
		{StableTicks: -1},
		{ForceRefreshFraction: -0.1},
		{WarmIters: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	h, err := New(Config{})
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	got := h.Config()
	if got.MaxInflight != 256 || got.FailureThreshold != 3 || got.ProbeSuccesses != 2 {
		t.Errorf("defaults not applied: %+v", got)
	}
	if got.ProbeInterval != got.OpenTimeout/2 {
		t.Errorf("ProbeInterval default = %v, want %v", got.ProbeInterval, got.OpenTimeout/2)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"block":           Block,
		"reject":          RejectNewest,
		"reject-newest":   RejectNewest,
		"shed":            ShedLowFanout,
		"shed-low-fanout": ShedLowFanout,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
		if _, err := ParsePolicy(got.String()); err != nil {
			t.Errorf("String %q does not round-trip", got)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestAdmissionRejectNewest(t *testing.T) {
	h := newTestHealth(t, Config{MaxInflight: 3, Policy: RejectNewest})
	a := h.Admission
	toks := make([]*Token, 0, 3)
	for i := 0; i < 3; i++ {
		tok, err := a.Admit()
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		toks = append(toks, tok)
	}
	if _, err := a.Admit(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("4th admit err = %v, want ErrOverloaded", err)
	}
	if a.Inflight() != 3 {
		t.Fatalf("inflight = %d", a.Inflight())
	}
	toks[0].Release()
	tok, err := a.Admit()
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if got := h.CounterSnapshot().Rejected; got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	// Release is strict: repeats on an already-released token are counted
	// and ignored, never freeing another publisher's slot.
	toks[1].Release()
	toks[2].Release()
	tok.Release()
	for i := 0; i < 10; i++ {
		toks[0].Release()
	}
	if a.Inflight() != 0 {
		t.Errorf("inflight after drain = %d", a.Inflight())
	}
	if got := h.CounterSnapshot().ReleaseSpurious; got != 10 {
		t.Errorf("release_spurious = %d, want 10", got)
	}
	// A nil token is a no-op from any call site.
	var nilTok *Token
	nilTok.Release()
}

func TestAdmissionRateLimit(t *testing.T) {
	clk := newFakeClock()
	h := newTestHealth(t, clk.Config(Config{
		MaxInflight: 100, Policy: RejectNewest, RatePerSec: 10, Burst: 2,
	}))
	a := h.Admission
	// Burst of 2 passes, third is rate-limited.
	for i := 0; i < 2; i++ {
		if _, err := a.Admit(); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	if _, err := a.Admit(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-rate admit err = %v", err)
	}
	if got := h.CounterSnapshot().RateLimited; got != 1 {
		t.Errorf("rate_limited = %d, want 1", got)
	}
	// 100ms accrues exactly one token at 10/s.
	clk.Advance(100 * time.Millisecond)
	if _, err := a.Admit(); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	if _, err := a.Admit(); !errors.Is(err, ErrOverloaded) {
		t.Fatal("second admit within the same refill window passed")
	}
}

func TestShedLowFanout(t *testing.T) {
	h := newTestHealth(t, Config{Policy: ShedLowFanout, EWMAAlpha: 0.5})
	a := h.Admission
	if a.ShouldShed(0) {
		t.Error("shed before any fanout observation")
	}
	a.NoteFanout(10)
	a.NoteFanout(10)
	if !a.ShouldShed(3) {
		t.Error("low-fanout event not shed")
	}
	if a.ShouldShed(10) {
		t.Error("at-mean fanout shed")
	}
	if a.ShouldShed(25) {
		t.Error("high-fanout event shed")
	}
	// Block policy never sheds.
	hb := newTestHealth(t, Config{Policy: Block})
	hb.Admission.NoteFanout(10)
	if hb.Admission.ShouldShed(1) {
		t.Error("Block policy shed an event")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	h := newTestHealth(t, clk.Config(Config{
		FailureThreshold: 3,
		OpenTimeout:      100 * time.Millisecond,
		ProbeInterval:    40 * time.Millisecond,
		ProbeSuccesses:   2,
	}))
	tr := h.Tracker
	const n = 7

	// Two failures: still closed (threshold is 3).
	tr.ReportFailure(n)
	tr.ReportFailure(n)
	if st := tr.DestState(n); st != StateClosed {
		t.Fatalf("state after 2 failures = %v", st)
	}
	// A success resets the streak.
	tr.ReportSuccess(n, time.Millisecond)
	tr.ReportFailure(n)
	tr.ReportFailure(n)
	if st := tr.DestState(n); st != StateClosed {
		t.Fatalf("state after reset + 2 failures = %v", st)
	}
	tr.ReportFailure(n)
	if st := tr.DestState(n); st != StateOpen {
		t.Fatalf("state after 3 consecutive failures = %v", st)
	}
	if !tr.AllowDest(99) {
		t.Error("unrelated destination blocked")
	}
	if tr.AllowDest(n) {
		t.Error("open breaker allowed a delivery")
	}

	// Half-open after OpenTimeout: exactly one probe per interval.
	clk.Advance(110 * time.Millisecond)
	if !tr.AllowDest(n) {
		t.Fatal("no probe admitted after OpenTimeout")
	}
	if st := tr.DestState(n); st != StateHalfOpen {
		t.Fatalf("state after timeout = %v", st)
	}
	if tr.AllowDest(n) {
		t.Error("second probe admitted within the probe interval")
	}

	// Probe failure re-opens immediately.
	tr.ReportFailure(n)
	if st := tr.DestState(n); st != StateOpen {
		t.Fatalf("state after failed probe = %v", st)
	}

	// Recover: probe successes close it.
	clk.Advance(110 * time.Millisecond)
	if !tr.AllowDest(n) {
		t.Fatal("no probe after second timeout")
	}
	tr.ReportSuccess(n, time.Millisecond)
	clk.Advance(80 * time.Millisecond) // past the jittered probe interval (≤ 1.5×40ms)
	if !tr.AllowDest(n) {
		t.Fatal("second probe not admitted")
	}
	tr.ReportSuccess(n, time.Millisecond)
	if st := tr.DestState(n); st != StateClosed {
		t.Fatalf("state after %d probe successes = %v", 2, st)
	}
	if tr.Suspicion(n) != 0 {
		t.Errorf("suspicion after recovery = %v", tr.Suspicion(n))
	}

	snap := tr.Snapshot()
	if snap.Open != 0 || snap.HalfOpen != 0 || snap.Opens != 2 {
		t.Errorf("snapshot = %+v, want 0 open, 2 cumulative opens", snap)
	}
	c := h.CounterSnapshot()
	if c.BreakerOpen != 2 {
		t.Errorf("breaker_open counter = %d, want 2", c.BreakerOpen)
	}
}

func TestSuspicionGrowsWithSilence(t *testing.T) {
	clk := newFakeClock()
	h := newTestHealth(t, clk.Config(Config{SuspicionThreshold: 4, FailureThreshold: 100}))
	tr := h.Tracker
	const n = 3
	tr.ReportSuccess(n, time.Millisecond)
	tr.ReportFailure(n)
	early := tr.Suspicion(n)
	clk.Advance(10 * time.Second)
	tr.ReportFailure(n)
	late := tr.Suspicion(n)
	if late <= early {
		t.Fatalf("suspicion did not grow with silence: %v then %v", early, late)
	}
	// Long silence pushes phi past the threshold before 100 consecutive
	// failures ever accumulate.
	clk.Advance(time.Hour)
	tr.ReportFailure(n)
	if st := tr.DestState(n); st != StateOpen {
		t.Fatalf("suspicion %v did not open the breaker (state %v)", tr.Suspicion(n), st)
	}
}

func TestLinkSuspicion(t *testing.T) {
	h := newTestHealth(t, Config{EWMAAlpha: 0.5})
	tr := h.Tracker
	path := []int{1, 2, 3}
	nodes := make([]topology.NodeID, len(path))
	for i, v := range path {
		nodes[i] = topology.NodeID(v)
	}
	tr.ReportPath(nodes, false)
	if got := tr.LinkSuspicion(1, 2); got != 0.5 {
		t.Fatalf("link suspicion after one failure = %v, want 0.5", got)
	}
	if got := tr.LinkSuspicion(3, 2); got != 0.5 {
		t.Fatalf("edge key not canonicalised: %v", got)
	}
	tr.ReportPath(nodes, true)
	if got := tr.LinkSuspicion(1, 2); got != 0.25 {
		t.Fatalf("link suspicion after exoneration = %v, want 0.25", got)
	}
	if got := tr.LinkSuspicion(5, 6); got != 0 {
		t.Fatalf("unreported link suspicion = %v", got)
	}
}

func TestControllerHysteresis(t *testing.T) {
	clk := newFakeClock()
	h := newTestHealth(t, clk.Config(Config{
		AutoRefresh:        true,
		StableTicks:        2,
		MinRefreshInterval: time.Second,
	}))
	c := h.Controller
	if !c.Enabled() {
		t.Fatal("controller disabled")
	}

	healthy := Signals{TotalGroups: 20}
	if c.Decide(healthy) {
		t.Fatal("refresh with nothing quarantined")
	}

	// Quarantined but breakers still open: never refresh.
	deg := Signals{QuarantinedGroups: 2, TotalGroups: 20, OpenBreakers: 1}
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		if c.Decide(deg) {
			t.Fatal("refreshed while a breaker was open")
		}
	}

	// Breakers closed: needs StableTicks consecutive clean ticks.
	clean := Signals{QuarantinedGroups: 2, TotalGroups: 20}
	if c.Decide(clean) {
		t.Fatal("refreshed on the first stable tick")
	}
	clk.Advance(time.Second)
	if !c.Decide(clean) {
		t.Fatal("no refresh after StableTicks stable ticks")
	}

	// Fresh losses reset the stability run.
	lossy := clean
	lossy.Lost = 5
	clk.Advance(time.Second)
	if c.Decide(lossy) {
		t.Fatal("refreshed on a tick with fresh losses")
	}
	clk.Advance(time.Second)
	if c.Decide(clean) {
		t.Fatal("refreshed with only one stable tick after losses")
	}
	clk.Advance(time.Second)
	if !c.Decide(clean) {
		t.Fatal("no refresh after re-stabilising")
	}

	// Min-interval hysteresis: immediate re-trigger is suppressed even
	// when stable.
	if c.Decide(clean) || c.Decide(clean) {
		t.Fatal("refreshed again inside MinRefreshInterval")
	}
	clk.Advance(2 * time.Second)
	if !c.Decide(clean) {
		t.Fatal("no refresh after MinRefreshInterval elapsed")
	}
	if got := c.Decisions(); got != 3 {
		t.Errorf("decisions = %d, want 3", got)
	}
}

func TestControllerForceRefresh(t *testing.T) {
	clk := newFakeClock()
	h := newTestHealth(t, clk.Config(Config{
		AutoRefresh:          true,
		StableTicks:          3,
		MinRefreshInterval:   time.Second,
		ForceRefreshFraction: 0.5,
	}))
	c := h.Controller
	// Most groups quarantined and a breaker still open: force path fires
	// anyway, but respects the min interval.
	worst := Signals{QuarantinedGroups: 15, TotalGroups: 20, OpenBreakers: 3}
	clk.Advance(time.Second)
	if !c.Decide(worst) {
		t.Fatal("force refresh did not fire at 75% quarantined")
	}
	if c.Decide(worst) {
		t.Fatal("force refresh ignored MinRefreshInterval")
	}
	clk.Advance(2 * time.Second)
	if !c.Decide(worst) {
		t.Fatal("force refresh did not re-fire after the interval")
	}
}
