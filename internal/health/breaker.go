package health

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/topology"
)

// State is a circuit breaker's position.
type State int

const (
	// StateClosed is the healthy state: deliveries flow normally.
	StateClosed State = iota
	// StateOpen rejects all deliveries to the destination; the broker
	// skips it instead of burning retries on a known-dead path.
	StateOpen
	// StateHalfOpen admits jittered probe deliveries; enough successes
	// re-close the breaker, any failure re-opens it.
	StateHalfOpen
)

// String renders the state.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is one destination's health record. All fields are guarded by
// the Tracker's mutex.
type breaker struct {
	state       State
	consecFails int
	ackEWMA     float64 // smoothed ack latency, ns
	lastSuccess time.Time
	lastFailure time.Time
	suspicion   float64
	openedAt    time.Time
	nextProbe   time.Time
	probeOK     int
	opens       int64
}

// linkHealth is one link's failure EWMA, fed by whole-path outcomes
// (suspicion shared across every edge of a failing path, network-tomography
// style). Observability only: breakers key on destinations.
type linkHealth struct {
	failEWMA float64
	reports  int64
}

// Tracker detects failing destinations and runs their circuit breakers.
// It is fed by the broker: ReportSuccess from consumers (ack + latency),
// ReportFailure from the fan-out workers (abandons, offline skips), and
// ReportPath for per-link accounting. Safe for concurrent use.
type Tracker struct {
	cfg   Config
	clock func() time.Time
	met   *metrics

	mu    sync.Mutex
	dests map[topology.NodeID]*breaker
	links map[topology.EdgeKey]*linkHealth
	// jitterCtr salts successive probe-jitter draws so they are
	// deterministic from Config.Seed yet mutually independent.
	jitterCtr uint64
}

func newTracker(cfg Config, met *metrics) *Tracker {
	return &Tracker{
		cfg:   cfg,
		clock: cfg.Clock,
		met:   met,
		dests: make(map[topology.NodeID]*breaker),
		links: make(map[topology.EdgeKey]*linkHealth),
	}
}

func (t *Tracker) get(n topology.NodeID) *breaker {
	b, ok := t.dests[n]
	if !ok {
		b = &breaker{}
		t.dests[n] = b
	}
	return b
}

// jitter returns a deterministic uniform [0.5, 1.5) factor.
func (t *Tracker) jitter(n topology.NodeID) float64 {
	t.jitterCtr++
	h := splitmix64(uint64(t.cfg.Seed) ^ 0xA24BAED4963EE407)
	h = splitmix64(h ^ uint64(n))
	h = splitmix64(h ^ t.jitterCtr)
	return 0.5 + float64(h>>11)/(1<<53)
}

// AllowDest reports whether a delivery to n may proceed. Closed breakers
// always allow; open breakers reject until OpenTimeout elapses, then
// half-open and admit one probe per jittered ProbeInterval.
func (t *Tracker) AllowDest(n topology.NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.dests[n]
	if !ok || b.state == StateClosed {
		return true
	}
	now := t.clock()
	if b.state == StateOpen {
		if now.Sub(b.openedAt) < t.cfg.OpenTimeout {
			return false
		}
		t.setState(b, StateHalfOpen)
		b.probeOK = 0
		b.nextProbe = now
	}
	// Half-open: admit at most one probe per jittered interval.
	if now.Before(b.nextProbe) {
		return false
	}
	b.nextProbe = now.Add(time.Duration(float64(t.cfg.ProbeInterval) * t.jitter(n)))
	t.met.probes.Inc()
	return true
}

// ReportSuccess feeds one acked delivery and its publish→ack latency.
// Successes reset the consecutive-failure count and suspicion, and drive
// half-open breakers toward closed.
func (t *Tracker) ReportSuccess(n topology.NodeID, ackLatency time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.get(n)
	b.consecFails = 0
	b.suspicion = 0
	b.lastSuccess = t.clock()
	lat := float64(ackLatency)
	if b.ackEWMA == 0 {
		b.ackEWMA = lat
	} else {
		b.ackEWMA += t.cfg.EWMAAlpha * (lat - b.ackEWMA)
	}
	if b.state == StateHalfOpen {
		b.probeOK++
		if b.probeOK >= t.cfg.ProbeSuccesses {
			t.setState(b, StateClosed)
			t.met.breakerClos.Inc()
		}
	}
}

// ReportFailure feeds one hard delivery failure (abandon or offline skip).
// It recomputes the suspicion score and opens the breaker past either
// threshold; a failure during half-open re-opens immediately.
func (t *Tracker) ReportFailure(n topology.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.get(n)
	now := t.clock()
	b.consecFails++
	b.lastFailure = now
	b.suspicion = t.phi(b, now)
	t.met.suspicion.Observe(b.suspicion)
	switch b.state {
	case StateHalfOpen:
		// Probe failed: straight back to open, timer restarted.
		t.setState(b, StateOpen)
		b.openedAt = now
		b.opens++
		t.met.breakerOpen.Inc()
	case StateClosed:
		if b.consecFails >= t.cfg.FailureThreshold || b.suspicion >= t.cfg.SuspicionThreshold {
			t.setState(b, StateOpen)
			b.openedAt = now
			b.opens++
			t.met.breakerOpen.Inc()
		}
	}
}

// phi is the simplified phi-accrual-style suspicion score: the consecutive
// hard-failure count plus a term that grows with silence since the last
// success, measured in units of the expected ack cadence (4× the smoothed
// ack latency, floored at 1ms). A destination that acked recently and
// failed once scores ~1; one that has been silent for many expected-ack
// windows keeps climbing even between failures.
func (t *Tracker) phi(b *breaker, now time.Time) float64 {
	s := float64(b.consecFails)
	if !b.lastSuccess.IsZero() {
		window := 4 * b.ackEWMA
		if window < float64(time.Millisecond) {
			window = float64(time.Millisecond)
		}
		s += math.Log1p(float64(now.Sub(b.lastSuccess)) / window)
	}
	return s
}

// setState moves a breaker between states, keeping the open/half-open
// gauges in sync.
func (t *Tracker) setState(b *breaker, next State) {
	if b.state == next {
		return
	}
	switch b.state {
	case StateOpen:
		t.met.openBreakers.Add(-1)
	case StateHalfOpen:
		t.met.halfOpenBreakers.Add(-1)
	}
	switch next {
	case StateOpen:
		t.met.openBreakers.Add(1)
	case StateHalfOpen:
		t.met.halfOpenBreakers.Add(1)
	}
	b.state = next
}

// ReportPath folds one primary-path outcome into the per-link failure
// EWMAs: every edge of a failing path shares the suspicion (the broker
// cannot tell which hop dropped the attempt), and every edge of a
// succeeding path is exonerated.
func (t *Tracker) ReportPath(path []topology.NodeID, ok bool) {
	if len(path) < 2 {
		return
	}
	fail := 1.0
	if ok {
		fail = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 1; i < len(path); i++ {
		k := topology.MakeEdgeKey(path[i-1], path[i])
		lh, exists := t.links[k]
		if !exists {
			lh = &linkHealth{}
			t.links[k] = lh
		}
		lh.reports++
		lh.failEWMA += t.cfg.EWMAAlpha * (fail - lh.failEWMA)
	}
}

// LinkSuspicion returns the link's smoothed failure rate in [0, 1]
// (0 for links never reported on).
func (t *Tracker) LinkSuspicion(u, v topology.NodeID) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if lh, ok := t.links[topology.MakeEdgeKey(u, v)]; ok {
		return lh.failEWMA
	}
	return 0
}

// Suspicion returns the destination's current suspicion score.
func (t *Tracker) Suspicion(n topology.NodeID) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.dests[n]; ok {
		return b.suspicion
	}
	return 0
}

// DestState returns the destination's breaker state (closed for
// never-seen destinations).
func (t *Tracker) DestState(n topology.NodeID) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.dests[n]; ok {
		return b.state
	}
	return StateClosed
}

// TrackerSnapshot is a point-in-time view of breaker state.
type TrackerSnapshot struct {
	Tracked  int
	Open     int
	HalfOpen int
	// OpenDests lists destinations whose breaker is open or half-open,
	// ascending.
	OpenDests []topology.NodeID
	// Opens is the cumulative count of breaker-open transitions.
	Opens int64
}

// Snapshot summarises the tracker.
func (t *Tracker) Snapshot() TrackerSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TrackerSnapshot{Tracked: len(t.dests)}
	for n, b := range t.dests {
		s.Opens += b.opens
		switch b.state {
		case StateOpen:
			s.Open++
			s.OpenDests = append(s.OpenDests, n)
		case StateHalfOpen:
			s.HalfOpen++
			s.OpenDests = append(s.OpenDests, n)
		}
	}
	sort.Slice(s.OpenDests, func(i, j int) bool { return s.OpenDests[i] < s.OpenDests[j] })
	return s
}
