// Package health is the overload-protection and self-healing layer of the
// delivery fabric. The broker's reliability protocol (internal/broker)
// reacts to faults per delivery — retry, alternate path, quarantine — but
// on its own the system degrades monotonically: quarantines accumulate
// until a manual Engine.Refresh, known-dead paths burn their full retry
// budget on every event, and Publish accepts unbounded work. This package
// adds the three missing feedback loops:
//
//   - Admission: bounded ingress. A token-bucket publish rate limiter and a
//     MaxInflight semaphore over the broker pipeline, with three overload
//     policies — Block (lossless backpressure), RejectNewest (fail fast
//     with ErrOverloaded) and ShedLowFanout (under congestion, drop the
//     events with the fewest interested subscribers: the cheapest to
//     recover, since the fewest parties miss them).
//
//   - Tracker: failure detection and circuit breakers. A per-destination
//     health record fed by delivery outcomes and ack latencies combines an
//     EWMA of ack latency, a consecutive-failure count and a simplified
//     phi-accrual-style suspicion score; past the threshold the
//     destination's breaker opens and the broker skips it outright instead
//     of burning retries on a known-dead path. After OpenTimeout the
//     breaker half-opens and admits jittered probes; enough probe
//     successes re-close it. Per-link failure EWMAs (suspicion shared
//     along the primary path) are kept for observability.
//
//   - Controller: the self-healing control loop policy. Fed a periodic
//     Signals snapshot (quarantined-group fraction, breaker states, shed
//     and loss counts), it decides when the broker should trigger an
//     automatic Engine.Refresh — with hysteresis: a minimum interval
//     between refreshes, a required run of stable ticks with every breaker
//     closed (refreshing while paths are still dead would just re-poison
//     the new groups), and a force path when most groups are quarantined.
//
// All knobs live in Config with validated defaults; everything observable
// lands in the "health" telemetry scope (shed_events, rejected_events,
// breaker_open, breaker_close, breaker_skips, probes, auto_refresh,
// rate_limited counters, open/half-open breaker and inflight gauges, a
// suspicion histogram and a queue_depth histogram). Probe jitter is
// deterministic from Config.Seed, so chaos tests replay identically.
package health

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// ErrOverloaded is returned by admission under the RejectNewest and
// ShedLowFanout policies when the pipeline is saturated or the publish
// rate limiter is out of tokens.
var ErrOverloaded = errors.New("health: overloaded")

// ErrClosed is returned by Admission.Admit after Admission.Close: the
// owning broker is shutting down and no further publications are admitted.
var ErrClosed = errors.New("health: closed")

// Policy selects what admission does when the pipeline is saturated.
type Policy int

const (
	// Block applies lossless backpressure: Publish waits for capacity.
	Block Policy = iota
	// RejectNewest fails fast: a saturated pipeline returns ErrOverloaded
	// to the newest publisher, bounding queue depth.
	RejectNewest
	// ShedLowFanout rejects at ingress like RejectNewest and additionally
	// sheds decided events whose fanout is below the running average when
	// the fan-out stage is congested — dropping the cheapest-to-recover
	// events first.
	ShedLowFanout
)

// String renders the policy as its CLI spelling.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case RejectNewest:
		return "reject"
	case ShedLowFanout:
		return "shed-low-fanout"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a CLI policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "reject", "reject-newest":
		return RejectNewest, nil
	case "shed", "shed-low-fanout":
		return ShedLowFanout, nil
	default:
		return 0, fmt.Errorf("health: unknown policy %q (want block, reject or shed-low-fanout)", s)
	}
}

// Config tunes every part of the subsystem. The zero value is valid: it
// means Block admission with the default inflight bound, no rate limit,
// default breaker thresholds and the control loop disabled.
type Config struct {
	// --- Admission ---

	// MaxInflight bounds events admitted into the broker pipeline but not
	// yet fully fanned out (default 256).
	MaxInflight int
	// Policy is the overload policy (default Block).
	Policy Policy
	// RatePerSec is the token-bucket publish rate limit; 0 disables it.
	RatePerSec float64
	// Burst is the token-bucket capacity (default max(1, RatePerSec)).
	Burst int

	// --- Failure detection / circuit breakers ---

	// FailureThreshold is the consecutive hard-failure count (abandons,
	// offline skips) that opens a destination's breaker (default 3).
	FailureThreshold int
	// SuspicionThreshold opens the breaker when the phi-style suspicion
	// score exceeds it even before FailureThreshold consecutive failures
	// (default 8).
	SuspicionThreshold float64
	// EWMAAlpha is the smoothing factor for ack-latency and link-failure
	// EWMAs, in (0, 1] (default 0.2).
	EWMAAlpha float64
	// OpenTimeout is how long an open breaker rejects before it half-opens
	// and admits probes (default 100ms).
	OpenTimeout time.Duration
	// ProbeInterval spaces half-open probes; each interval is scaled by a
	// deterministic jitter in [0.5, 1.5) (default OpenTimeout/2).
	ProbeInterval time.Duration
	// ProbeSuccesses is how many consecutive probe successes re-close a
	// half-open breaker (default 2).
	ProbeSuccesses int

	// --- Self-healing control loop ---

	// AutoRefresh enables the control loop: the broker periodically asks
	// the Controller whether to trigger an automatic Engine.Refresh.
	AutoRefresh bool
	// CheckInterval is the control-loop tick (default 20ms).
	CheckInterval time.Duration
	// MinRefreshInterval is the hysteresis floor between automatic
	// refreshes (default 250ms).
	MinRefreshInterval time.Duration
	// StableTicks is how many consecutive ticks with all breakers closed
	// and no new failures must pass before a refresh is allowed — the
	// cool-down that stops the loop from refreshing into a still-broken
	// network (default 2).
	StableTicks int
	// ForceRefreshFraction triggers a refresh regardless of breaker state
	// when at least this fraction of groups is quarantined (default 0.5;
	// set > 1 to disable).
	ForceRefreshFraction float64
	// WarmIters is passed to Engine.Refresh on automatic refreshes
	// (0 = full rebuild).
	WarmIters int

	// Seed drives the deterministic probe jitter (default 1).
	Seed int64
	// Clock overrides the time source, for deterministic tests
	// (default time.Now).
	Clock func() time.Time
}

// setDefaults fills zero fields in place.
func (c *Config) setDefaults() {
	if c.MaxInflight == 0 {
		c.MaxInflight = 256
	}
	if c.Burst == 0 {
		c.Burst = int(c.RatePerSec)
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 3
	}
	if c.SuspicionThreshold == 0 {
		c.SuspicionThreshold = 8
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.2
	}
	if c.OpenTimeout == 0 {
		c.OpenTimeout = 100 * time.Millisecond
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = c.OpenTimeout / 2
	}
	if c.ProbeSuccesses == 0 {
		c.ProbeSuccesses = 2
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = 20 * time.Millisecond
	}
	if c.MinRefreshInterval == 0 {
		c.MinRefreshInterval = 250 * time.Millisecond
	}
	if c.StableTicks == 0 {
		c.StableTicks = 2
	}
	if c.ForceRefreshFraction == 0 {
		c.ForceRefreshFraction = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// Validate rejects nonsensical configurations. Zero fields are legal (they
// take defaults); explicitly negative or out-of-range values are not.
func (c Config) Validate() error {
	if c.MaxInflight < 0 {
		return fmt.Errorf("health: MaxInflight = %d, need ≥ 0", c.MaxInflight)
	}
	if c.Policy < Block || c.Policy > ShedLowFanout {
		return fmt.Errorf("health: unknown policy %d", int(c.Policy))
	}
	if c.RatePerSec < 0 {
		return fmt.Errorf("health: RatePerSec = %v, need ≥ 0", c.RatePerSec)
	}
	if c.Burst < 0 {
		return fmt.Errorf("health: Burst = %d, need ≥ 0", c.Burst)
	}
	if c.FailureThreshold < 0 {
		return fmt.Errorf("health: FailureThreshold = %d, need ≥ 0", c.FailureThreshold)
	}
	if c.SuspicionThreshold < 0 {
		return fmt.Errorf("health: SuspicionThreshold = %v, need ≥ 0", c.SuspicionThreshold)
	}
	if c.EWMAAlpha < 0 || c.EWMAAlpha > 1 {
		return fmt.Errorf("health: EWMAAlpha = %v, need [0, 1]", c.EWMAAlpha)
	}
	for name, d := range map[string]time.Duration{
		"OpenTimeout":        c.OpenTimeout,
		"ProbeInterval":      c.ProbeInterval,
		"CheckInterval":      c.CheckInterval,
		"MinRefreshInterval": c.MinRefreshInterval,
	} {
		if d < 0 {
			return fmt.Errorf("health: %s = %v, need ≥ 0", name, d)
		}
	}
	if c.ProbeSuccesses < 0 {
		return fmt.Errorf("health: ProbeSuccesses = %d, need ≥ 0", c.ProbeSuccesses)
	}
	if c.StableTicks < 0 {
		return fmt.Errorf("health: StableTicks = %d, need ≥ 0", c.StableTicks)
	}
	if c.ForceRefreshFraction < 0 {
		return fmt.Errorf("health: ForceRefreshFraction = %v, need ≥ 0", c.ForceRefreshFraction)
	}
	if c.WarmIters < 0 {
		return fmt.Errorf("health: WarmIters = %d, need ≥ 0", c.WarmIters)
	}
	return nil
}

// metrics caches the subsystem's telemetry handles. All fields are nil
// until Instrument runs; every instrument is nil-safe, so an
// un-instrumented Health records nothing at no cost.
type metrics struct {
	shed            *telemetry.Counter // events dropped by ShedLowFanout
	rejected        *telemetry.Counter // publishes refused with ErrOverloaded
	rateLimited     *telemetry.Counter // rejections specifically from the token bucket
	releaseSpurious *telemetry.Counter // repeated Token.Release calls (bug tripwire)
	breakerOpen     *telemetry.Counter // closed/half-open → open transitions
	breakerClos     *telemetry.Counter // half-open → closed transitions
	skips           *telemetry.Counter // deliveries skipped on an open breaker
	probes          *telemetry.Counter // half-open probe deliveries admitted
	autoRefresh     *telemetry.Counter // refreshes triggered by the controller

	openBreakers     *telemetry.Gauge
	halfOpenBreakers *telemetry.Gauge
	inflight         *telemetry.Gauge

	suspicion  *telemetry.Histogram // suspicion score at each hard failure
	queueDepth *telemetry.Histogram // inflight depth sampled at each admit
}

// Health bundles the three cooperating parts. Construct with New, wire
// into a broker with broker.WithHealth; the broker instruments it into its
// registry and drives the Controller from its control loop.
type Health struct {
	cfg Config
	met metrics

	Admission  *Admission
	Tracker    *Tracker
	Controller *Controller
}

// New validates the config, applies defaults and builds the subsystem.
func New(cfg Config) (*Health, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	h := &Health{cfg: cfg}
	h.Admission = newAdmission(cfg, &h.met)
	h.Tracker = newTracker(cfg, &h.met)
	h.Controller = newController(cfg)
	return h, nil
}

// Config returns the effective (defaulted) configuration.
func (h *Health) Config() Config { return h.cfg }

// Instrument publishes the subsystem's metrics into the registry under
// scope "health". The broker calls this with its own registry at New; a
// nil registry is a no-op (instruments stay nil and record nothing).
func (h *Health) Instrument(reg *telemetry.Registry) {
	s := reg.Scope("health")
	if s == nil {
		return
	}
	h.met = metrics{
		shed:             s.Counter("shed_events"),
		rejected:         s.Counter("rejected_events"),
		rateLimited:      s.Counter("rate_limited"),
		releaseSpurious:  s.Counter("release_spurious"),
		breakerOpen:      s.Counter("breaker_open"),
		breakerClos:      s.Counter("breaker_close"),
		skips:            s.Counter("breaker_skips"),
		probes:           s.Counter("probes"),
		autoRefresh:      s.Counter("auto_refresh"),
		openBreakers:     s.Gauge("open_breakers"),
		halfOpenBreakers: s.Gauge("half_open_breakers"),
		inflight:         s.Gauge("inflight"),
		suspicion:        s.Histogram("suspicion", telemetry.LinearBuckets(0, 1, 16)),
		queueDepth:       s.Histogram("queue_depth", telemetry.LinearBuckets(0, 16, 32)),
	}
}

// NoteAutoRefresh records one controller-triggered refresh (called by the
// broker's decision stage after the refresh completes).
func (h *Health) NoteAutoRefresh() { h.met.autoRefresh.Inc() }

// NoteSkip records one delivery skipped because the destination's breaker
// was open.
func (h *Health) NoteSkip() { h.met.skips.Inc() }

// Counters returns the cumulative overload/self-healing counts — the
// broker folds these into its Stats snapshot.
type Counters struct {
	Shed            int64
	Rejected        int64
	RateLimited     int64
	ReleaseSpurious int64
	BreakerOpen     int64
	Skipped         int64
	Probes          int64
	Refreshes       int64
}

// CounterSnapshot reads the cumulative counters.
func (h *Health) CounterSnapshot() Counters {
	return Counters{
		Shed:            h.met.shed.Value(),
		Rejected:        h.met.rejected.Value(),
		RateLimited:     h.met.rateLimited.Value(),
		ReleaseSpurious: h.met.releaseSpurious.Value(),
		BreakerOpen:     h.met.breakerOpen.Value(),
		Skipped:         h.met.skips.Value(),
		Probes:          h.met.probes.Value(),
		Refreshes:       h.met.autoRefresh.Value(),
	}
}

// splitmix64 is the SplitMix64 finalizer, the same mixer the fault
// injector uses; health draws its probe jitter from it so a (seed, key)
// pair fully determines every probabilistic choice.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
