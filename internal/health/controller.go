package health

import (
	"sync"
	"time"
)

// Signals is the periodic health snapshot the broker's control loop feeds
// the Controller: quarantine state from the engine (via the broker's
// atomic mirror), breaker state from the Tracker, and cumulative
// overload/loss counts.
type Signals struct {
	QuarantinedGroups int
	TotalGroups       int
	OpenBreakers      int
	HalfOpenBreakers  int
	// Cumulative counters; the controller differentiates successive
	// snapshots to detect fresh failures.
	Shed     int64
	Rejected int64
	Lost     int64
	Skipped  int64
}

// quarantineFraction is the fraction of groups currently quarantined.
func (s Signals) quarantineFraction() float64 {
	if s.TotalGroups <= 0 {
		return 0
	}
	return float64(s.QuarantinedGroups) / float64(s.TotalGroups)
}

// Controller is the self-healing policy: given periodic Signals it decides
// when an automatic Engine.Refresh is warranted. The decision rule, in
// order:
//
//   - nothing is quarantined → healthy, no refresh;
//   - at least ForceRefreshFraction of groups quarantined → refresh even
//     with open breakers (the system is mostly degraded to unicast;
//     rebuilding at worst re-probes), subject to MinRefreshInterval;
//   - otherwise wait for StableTicks consecutive ticks with every breaker
//     closed and no new shed/lost/skipped deliveries — refreshing while
//     paths are still dead would immediately re-quarantine the rebuilt
//     groups — then refresh, subject to MinRefreshInterval.
//
// The broker owns the engine, so the Controller never refreshes anything
// itself: Decide returning true makes the broker route a refresh request
// to its decision goroutine.
type Controller struct {
	cfg   Config
	clock func() time.Time

	mu          sync.Mutex
	lastRefresh time.Time
	stableTicks int
	prev        Signals
	havePrev    bool
	decided     int64
}

func newController(cfg Config) *Controller {
	return &Controller{cfg: cfg, clock: cfg.Clock}
}

// Enabled reports whether the control loop should run at all.
func (c *Controller) Enabled() bool { return c.cfg.AutoRefresh }

// Interval returns the control-loop tick period.
func (c *Controller) Interval() time.Duration { return c.cfg.CheckInterval }

// WarmIters returns the Refresh warm-start iteration count for automatic
// refreshes.
func (c *Controller) WarmIters() int { return c.cfg.WarmIters }

// Decide consumes one Signals snapshot and reports whether the broker
// should trigger an automatic refresh now. Not safe to call concurrently
// with itself, but guarded so tests and status dumps can race it safely.
func (c *Controller) Decide(s Signals) bool {
	c.mu.Lock()
	defer c.mu.Unlock()

	newFailures := c.havePrev &&
		(s.Shed > c.prev.Shed || s.Lost > c.prev.Lost || s.Skipped > c.prev.Skipped)
	c.prev, c.havePrev = s, true

	if s.QuarantinedGroups == 0 {
		c.stableTicks = 0
		return false
	}

	pathsHealthy := s.OpenBreakers == 0 && s.HalfOpenBreakers == 0
	if pathsHealthy && !newFailures {
		c.stableTicks++
	} else {
		c.stableTicks = 0
	}

	force := s.quarantineFraction() >= c.cfg.ForceRefreshFraction
	if !force && c.stableTicks < c.cfg.StableTicks {
		return false
	}

	now := c.clock()
	if !c.lastRefresh.IsZero() && now.Sub(c.lastRefresh) < c.cfg.MinRefreshInterval {
		return false
	}
	c.lastRefresh = now
	c.stableTicks = 0
	c.decided++
	return true
}

// Decisions returns how many refreshes the controller has triggered.
func (c *Controller) Decisions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decided
}

// LastRefresh returns when the controller last triggered a refresh (zero
// before the first).
func (c *Controller) LastRefresh() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastRefresh
}
