package health

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/topology"
)

// TestCrashRestartHalfOpenProbe drives the breaker against a scheduled
// crash that strikes twice: the destination is down for seqs [0,40) and
// again for [45,60). The second window lands exactly on a half-open probe,
// so the breaker must re-open from half-open and only close once probes
// land after the second recovery. The fault schedule comes from
// faults.Injector so the interleaving is the same one the broker's chaos
// suite replays.
func TestCrashRestartHalfOpenProbe(t *testing.T) {
	inj, err := faults.New(faults.Config{Seed: 13, Crashes: []faults.Crash{
		{Node: 7, DownAt: 0, UpAt: 40},
		{Node: 7, DownAt: 45, UpAt: 60},
	}})
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	h := newTestHealth(t, clk.Config(Config{
		FailureThreshold: 3,
		OpenTimeout:      100 * time.Millisecond,
		ProbeInterval:    40 * time.Millisecond,
		ProbeSuccesses:   2,
	}))
	tr := h.Tracker
	const n = topology.NodeID(7)

	// report simulates one delivery attempt at the given event sequence:
	// the scheduled crash decides whether the destination answers.
	report := func(seq int64) {
		if inj.NodeDown(n, seq) {
			tr.ReportFailure(n)
		} else {
			tr.ReportSuccess(n, time.Millisecond)
		}
	}

	// Seqs 0–2 fall in the first crash window: three consecutive failures
	// trip the breaker.
	for seq := int64(0); seq < 3; seq++ {
		if !inj.NodeDown(n, seq) {
			t.Fatalf("seq %d: node up inside first crash window", seq)
		}
		report(seq)
	}
	if st := tr.DestState(n); st != StateOpen {
		t.Fatalf("state after first crash window = %v, want %v", st, StateOpen)
	}

	// After OpenTimeout a probe is admitted; it lands at seq 44, in the gap
	// between the two crash windows, and succeeds — half-open holds.
	clk.Advance(110 * time.Millisecond)
	if !tr.AllowDest(n) {
		t.Fatal("no probe admitted after OpenTimeout")
	}
	report(44)
	if st := tr.DestState(n); st != StateHalfOpen {
		t.Fatalf("state after one successful probe = %v, want %v", st, StateHalfOpen)
	}

	// The next probe lands at seq 45 — the first seq of the second crash
	// window. A half-open probe failure re-opens immediately.
	clk.Advance(80 * time.Millisecond) // past the jittered probe interval (≤ 1.5×40ms)
	if !tr.AllowDest(n) {
		t.Fatal("second probe not admitted")
	}
	if !inj.NodeDown(n, 45) {
		t.Fatal("seq 45: node up inside second crash window")
	}
	report(45)
	if st := tr.DestState(n); st != StateOpen {
		t.Fatalf("state after probe into second crash = %v, want %v", st, StateOpen)
	}

	// While open, everything to the destination is short-circuited.
	if tr.AllowDest(n) {
		t.Error("open breaker admitted a delivery")
	}

	// Second recovery: probes at seqs ≥ 60 succeed and close the breaker
	// after ProbeSuccesses consecutive wins.
	clk.Advance(110 * time.Millisecond)
	if !tr.AllowDest(n) {
		t.Fatal("no probe after second OpenTimeout")
	}
	report(60)
	clk.Advance(80 * time.Millisecond)
	if !tr.AllowDest(n) {
		t.Fatal("final probe not admitted")
	}
	report(61)
	if st := tr.DestState(n); st != StateClosed {
		t.Fatalf("state after recovery probes = %v, want %v", st, StateClosed)
	}
}
