package health

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Admission is the ingress gate: a token-bucket rate limiter plus a
// MaxInflight semaphore over the broker pipeline. The broker acquires a
// slot per accepted publication and releases it when the event has been
// fully fanned out (or shed), so the semaphore bounds total in-pipeline
// work, not just the publish queue. Safe for concurrent use.
type Admission struct {
	policy Policy
	clock  func() time.Time
	met    *metrics

	// slots is the inflight semaphore; len(slots) is the current depth.
	slots chan struct{}

	// Token bucket, mu-guarded: refilled lazily on each acquire.
	mu     sync.Mutex
	rate   float64 // tokens per second; 0 = unlimited
	burst  float64
	tokens float64
	last   time.Time

	// fanoutEWMA tracks the running mean fanout (interested-node count)
	// of decided events, as float64 bits; ShedLowFanout sheds congested
	// events whose fanout falls below it.
	fanoutEWMA atomic.Uint64
	alpha      float64
}

func newAdmission(cfg Config, met *metrics) *Admission {
	return &Admission{
		policy: cfg.Policy,
		clock:  cfg.Clock,
		met:    met,
		slots:  make(chan struct{}, cfg.MaxInflight),
		rate:   cfg.RatePerSec,
		burst:  float64(cfg.Burst),
		tokens: float64(cfg.Burst),
		alpha:  cfg.EWMAAlpha,
	}
}

// Policy returns the configured overload policy.
func (a *Admission) Policy() Policy { return a.policy }

// Capacity returns the inflight bound.
func (a *Admission) Capacity() int { return cap(a.slots) }

// Inflight returns the current number of admitted, not-yet-fanned-out
// events.
func (a *Admission) Inflight() int { return len(a.slots) }

// Admit gates one publication. Under Block it waits for a rate-limit
// token and an inflight slot; under RejectNewest and ShedLowFanout it
// returns ErrOverloaded instead of waiting. On success the caller owns
// one inflight slot and must Release it exactly once.
func (a *Admission) Admit() error {
	if a.rate > 0 {
		if !a.takeToken(a.policy == Block) {
			a.met.rateLimited.Inc()
			a.met.rejected.Inc()
			return ErrOverloaded
		}
	}
	if a.policy == Block {
		a.slots <- struct{}{}
	} else {
		select {
		case a.slots <- struct{}{}:
		default:
			a.met.rejected.Inc()
			return ErrOverloaded
		}
	}
	depth := len(a.slots)
	a.met.inflight.Set(int64(depth))
	a.met.queueDepth.Observe(float64(depth))
	return nil
}

// Release returns one inflight slot. Safe to call spuriously (an empty
// semaphore is left empty).
func (a *Admission) Release() {
	select {
	case <-a.slots:
	default:
	}
	a.met.inflight.Set(int64(len(a.slots)))
}

// takeToken takes one rate-limit token, refilling the bucket from wall
// time first. With block set it sleeps until a token accrues; otherwise
// it reports false when the bucket is empty.
func (a *Admission) takeToken(block bool) bool {
	for {
		a.mu.Lock()
		now := a.clock()
		if !a.last.IsZero() {
			a.tokens += now.Sub(a.last).Seconds() * a.rate
			if a.tokens > a.burst {
				a.tokens = a.burst
			}
		}
		a.last = now
		if a.tokens >= 1 {
			a.tokens--
			a.mu.Unlock()
			return true
		}
		deficit := 1 - a.tokens
		a.mu.Unlock()
		if !block {
			return false
		}
		time.Sleep(time.Duration(deficit / a.rate * float64(time.Second)))
	}
}

// NoteFanout folds one decided event's fanout into the running EWMA.
// Called from the broker's decision stage.
func (a *Admission) NoteFanout(n int) {
	for {
		old := a.fanoutEWMA.Load()
		prev := math.Float64frombits(old)
		next := prev + a.alpha*(float64(n)-prev)
		if prev == 0 {
			next = float64(n)
		}
		if a.fanoutEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// FanoutEWMA returns the running mean fanout (0 until the first event).
func (a *Admission) FanoutEWMA() float64 {
	return math.Float64frombits(a.fanoutEWMA.Load())
}

// ShouldShed reports whether a decided event with the given fanout should
// be dropped under congestion: only the ShedLowFanout policy sheds, and
// only events strictly below the running mean fanout (the cheap ones).
// The caller records the shed via NoteShed when it actually drops.
func (a *Admission) ShouldShed(fanout int) bool {
	if a.policy != ShedLowFanout {
		return false
	}
	return float64(fanout) < a.FanoutEWMA()
}

// NoteShed records one shed event.
func (a *Admission) NoteShed() { a.met.shed.Inc() }
