package health

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Admission is the ingress gate: a token-bucket rate limiter plus a
// MaxInflight semaphore over the broker pipeline. The broker acquires a
// slot per accepted publication and releases it when the event has been
// fully fanned out (or shed), so the semaphore bounds total in-pipeline
// work, not just the publish queue. Safe for concurrent use.
type Admission struct {
	policy Policy
	clock  func() time.Time
	met    *metrics

	// slots is the inflight semaphore; len(slots) is the current depth.
	slots chan struct{}

	// closeCh interrupts Block-policy waits (token-bucket sleeps and slot
	// acquisition); after Close every Admit returns ErrClosed.
	closeCh   chan struct{}
	closeOnce sync.Once

	// Token bucket, mu-guarded: refilled lazily on each acquire.
	mu     sync.Mutex
	rate   float64 // tokens per second; 0 = unlimited
	burst  float64
	tokens float64
	last   time.Time

	// fanoutEWMA tracks the running mean fanout (interested-node count)
	// of decided events, as float64 bits; ShedLowFanout sheds congested
	// events whose fanout falls below it.
	fanoutEWMA atomic.Uint64
	alpha      float64
}

func newAdmission(cfg Config, met *metrics) *Admission {
	return &Admission{
		policy:  cfg.Policy,
		clock:   cfg.Clock,
		met:     met,
		slots:   make(chan struct{}, cfg.MaxInflight),
		closeCh: make(chan struct{}),
		rate:    cfg.RatePerSec,
		burst:   float64(cfg.Burst),
		tokens:  float64(cfg.Burst),
		alpha:   cfg.EWMAAlpha,
	}
}

// Policy returns the configured overload policy.
func (a *Admission) Policy() Policy { return a.policy }

// Capacity returns the inflight bound.
func (a *Admission) Capacity() int { return cap(a.slots) }

// Inflight returns the current number of admitted, not-yet-fanned-out
// events.
func (a *Admission) Inflight() int { return len(a.slots) }

// Token is one admitted publication's claim on an inflight slot. Release
// it exactly once when the event leaves the pipeline; release is strict —
// a second Release on the same token is counted (release_spurious) and
// ignored rather than freeing another publisher's slot.
type Token struct {
	a        *Admission
	released atomic.Bool
}

// Release returns the token's inflight slot. Exactly-once is enforced per
// token: spurious repeats only bump the release_spurious counter and never
// break the MaxInflight bound. Safe on a nil token (no-op), so callers
// without admission attached can release unconditionally.
func (t *Token) Release() {
	if t == nil {
		return
	}
	if !t.released.CompareAndSwap(false, true) {
		t.a.met.releaseSpurious.Inc()
		return
	}
	<-t.a.slots
	t.a.met.inflight.Set(int64(len(t.a.slots)))
}

// Admit gates one publication. Under Block it waits for a rate-limit
// token and an inflight slot; under RejectNewest and ShedLowFanout it
// returns ErrOverloaded instead of waiting. On success the caller owns
// one inflight slot through the returned Token and must Release it
// exactly once. After Close, Admit returns ErrClosed (and any Block
// waiter unblocks with the same error).
func (a *Admission) Admit() (*Token, error) {
	select {
	case <-a.closeCh:
		return nil, ErrClosed
	default:
	}
	if a.rate > 0 {
		if err := a.takeToken(a.policy == Block); err != nil {
			if err == ErrOverloaded {
				a.met.rateLimited.Inc()
				a.met.rejected.Inc()
			}
			return nil, err
		}
	}
	if a.policy == Block {
		select {
		case a.slots <- struct{}{}:
		case <-a.closeCh:
			return nil, ErrClosed
		}
	} else {
		select {
		case a.slots <- struct{}{}:
		default:
			a.met.rejected.Inc()
			return nil, ErrOverloaded
		}
	}
	depth := len(a.slots)
	a.met.inflight.Set(int64(depth))
	a.met.queueDepth.Observe(float64(depth))
	return &Token{a: a}, nil
}

// Close interrupts all Block-policy waiters (token-bucket sleeps and slot
// waits), which return ErrClosed, and makes every later Admit fail fast
// with ErrClosed. Idempotent and safe for concurrent use; the broker calls
// it at the start of its shutdown so no Publish can stall past Close.
func (a *Admission) Close() {
	a.closeOnce.Do(func() { close(a.closeCh) })
}

// takeToken takes one rate-limit token, refilling the bucket from the
// configured clock first. With block set it waits on a timer — racing the
// close channel, so Close interrupts the wait — and recomputes the deficit
// on every wake (the injected clock may have advanced differently from the
// timer). Without block it returns ErrOverloaded when the bucket is empty.
func (a *Admission) takeToken(block bool) error {
	for {
		a.mu.Lock()
		now := a.clock()
		if !a.last.IsZero() {
			a.tokens += now.Sub(a.last).Seconds() * a.rate
			if a.tokens > a.burst {
				a.tokens = a.burst
			}
		}
		a.last = now
		if a.tokens >= 1 {
			a.tokens--
			a.mu.Unlock()
			return nil
		}
		deficit := 1 - a.tokens
		a.mu.Unlock()
		if !block {
			return ErrOverloaded
		}
		timer := time.NewTimer(time.Duration(deficit / a.rate * float64(time.Second)))
		select {
		case <-timer.C:
		case <-a.closeCh:
			timer.Stop()
			return ErrClosed
		}
	}
}

// NoteFanout folds one decided event's fanout into the running EWMA.
// Called from the broker's decision stage.
func (a *Admission) NoteFanout(n int) {
	for {
		old := a.fanoutEWMA.Load()
		prev := math.Float64frombits(old)
		next := prev + a.alpha*(float64(n)-prev)
		if prev == 0 {
			next = float64(n)
		}
		if a.fanoutEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// FanoutEWMA returns the running mean fanout (0 until the first event).
func (a *Admission) FanoutEWMA() float64 {
	return math.Float64frombits(a.fanoutEWMA.Load())
}

// ShouldShed reports whether a decided event with the given fanout should
// be dropped under congestion: only the ShedLowFanout policy sheds, and
// only events strictly below the running mean fanout (the cheap ones).
// The caller records the shed via NoteShed when it actually drops.
func (a *Admission) ShouldShed(fanout int) bool {
	if a.policy != ShedLowFanout {
		return false
	}
	return float64(fanout) < a.FanoutEWMA()
}

// NoteShed records one shed event.
func (a *Admission) NoteShed() { a.met.shed.Inc() }
