package health

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAdmissionCloseUnblocksSlotWait: a Block-policy Admit waiting for an
// inflight slot must return ErrClosed promptly when Close is called —
// previously shutdown could deadlock behind such a waiter.
func TestAdmissionCloseUnblocksSlotWait(t *testing.T) {
	h := newTestHealth(t, Config{MaxInflight: 1, Policy: Block})
	a := h.Admission
	tok, err := a.Admit()
	if err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 1)
	go func() {
		_, err := a.Admit() // blocks: the only slot is taken
		errCh <- err
	}()
	// Give the waiter time to park on the slot channel.
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-errCh:
		t.Fatalf("second Admit returned early: %v", err)
	default:
	}

	a.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("unblocked Admit err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the waiting Admit")
	}

	// Later admits fail fast, release still works, Close is idempotent.
	if _, err := a.Admit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Admit err = %v, want ErrClosed", err)
	}
	tok.Release()
	a.Close()
}

// TestAdmissionCloseUnblocksRateWait: a Block-policy Admit sleeping for a
// rate-limit token must also be interrupted by Close. The old
// implementation slept in a bare time.Sleep that nothing could interrupt.
func TestAdmissionCloseUnblocksRateWait(t *testing.T) {
	// 1 token burst, then 0.02 tokens/sec ⇒ the second Admit would sleep
	// ~50s waiting for the bucket. Close must cut that short.
	h := newTestHealth(t, Config{MaxInflight: 8, Policy: Block, RatePerSec: 0.02, Burst: 1})
	a := h.Admission
	if _, err := a.Admit(); err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 1)
	go func() {
		_, err := a.Admit()
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	a.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("unblocked Admit err = %v, want ErrClosed", err)
		}
		if waited := time.Since(start); waited > 2*time.Second {
			t.Fatalf("Close took %v to interrupt the rate wait", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not interrupt the token-bucket sleep")
	}
}

// TestTokenReleaseConcurrent: racing releases of the same token free the
// slot exactly once; the extras are counted as spurious.
func TestTokenReleaseConcurrent(t *testing.T) {
	h := newTestHealth(t, Config{MaxInflight: 4, Policy: RejectNewest})
	a := h.Admission
	for round := 0; round < 50; round++ {
		tok, err := a.Admit()
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tok.Release()
			}()
		}
		wg.Wait()
		if got := a.Inflight(); got != 0 {
			t.Fatalf("round %d: inflight = %d after concurrent release", round, got)
		}
	}
	if got := h.CounterSnapshot().ReleaseSpurious; got != 50*3 {
		t.Errorf("release_spurious = %d, want %d", got, 50*3)
	}
}
