package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/matching"
	"repro/internal/multicast"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// This file probes the two frontiers the paper names but leaves open:
// grid granularity ("cell-based clustering works well when … the
// granularity of subscription interest is not too high") and event-space
// dimensionality ("we leave the high-dimensional case for future study").

// ResolutionPoint measures clustering quality as the grid resolution
// scales: Factor multiplies every axis's cell count.
type ResolutionPoint struct {
	Factor     float64
	GridCells  int
	HyperCells int
	Network    float64 // improvement %
}

// RunGridResolution sweeps the grid granularity on the standard stock
// environment, re-deriving the clustering input at each resolution.
func RunGridResolution(env *StockEnv, k int, factors []float64) ([]ResolutionPoint, error) {
	if len(factors) == 0 {
		factors = []float64{0.25, 0.5, 1, 2, 3}
	}
	if k == 0 {
		k = 100
	}
	alg := &cluster.KMeans{Variant: cluster.Forgy}
	var out []ResolutionPoint
	for _, f := range factors {
		axes := make([]space.Axis, len(env.World.Axes))
		for d, a := range env.World.Axes {
			cells := int(float64(a.Cells)*f + 0.5)
			if cells < 1 {
				cells = 1
			}
			axes[d] = space.Axis{Lo: a.Lo, Hi: a.Hi, Cells: cells}
		}
		grid, err := space.NewGrid(axes)
		if err != nil {
			return nil, fmt.Errorf("experiments: resolution %v: %w", f, err)
		}
		in, err := cluster.BuildInput(env.World, grid, env.Train, 6000)
		if err != nil {
			return nil, fmt.Errorf("experiments: resolution %v: %w", f, err)
		}
		assign, err := alg.Cluster(in, k)
		if err != nil {
			return nil, err
		}
		res, err := cluster.BuildResult(in, assign)
		if err != nil {
			return nil, err
		}
		costs, err := sim.EvaluateGrid(env.Model, env.World, grid, res, env.Matcher, env.Eval, sim.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, ResolutionPoint{
			Factor:     f,
			GridCells:  grid.NumCells(),
			HyperCells: in.TotalHyperCells,
			Network:    sim.Improvement(env.Baselines, costs.Network),
		})
	}
	return out, nil
}

// RenderResolution writes the resolution sweep.
func RenderResolution(w io.Writer, title string, pts []ResolutionPoint) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "resolution ×\tgrid cells\thyper-cells\timprovement %")
	for _, p := range pts {
		fmt.Fprintf(tw, "%g\t%d\t%d\t%.1f\n", p.Factor, p.GridCells, p.HyperCells, p.Network)
	}
	return tw.Flush()
}

// DimPoint measures the grid framework as event-space dimensionality
// grows on a synthetic workload with fixed per-dimension structure.
type DimPoint struct {
	Dim        int
	GridCells  int
	HyperCells int
	Network    float64 // improvement %
	Ideal      float64 // per-event ideal cost (context)
}

// RunDimensionality builds, for each dimensionality d, a synthetic world:
// subscriptions pick an interval of mean width 4 in every dimension
// centred N(10, 4) over the (0, 20] domain (wildcarding each dimension
// with probability 0.3), events are N(10, 4) per dimension, and the grid
// carries 8 cells per axis. Clustering runs at K groups with a 6000-cell
// budget — the same regime as Figure 7 — so the sweep isolates the effect
// of dimensionality on the grid framework.
func RunDimensionality(netCfg topology.Config, k int, dims []int, seed int64) ([]DimPoint, error) {
	if len(dims) == 0 {
		dims = []int{2, 3, 4, 5, 6}
	}
	if k == 0 {
		k = 100
	}
	topo := netCfg
	topo.Seed = seed
	g, err := topology.Generate(topo)
	if err != nil {
		return nil, err
	}
	hosts := make([]topology.NodeID, 0, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		if g.Node(topology.NodeID(i)).Kind == topology.StubNode {
			hosts = append(hosts, topology.NodeID(i))
		}
	}
	alg := &cluster.KMeans{Variant: cluster.Forgy}
	var out []DimPoint
	for _, dim := range dims {
		r := stats.NewRand(seed + int64(dim))
		subs := make([]workload.Subscription, 1000)
		for i := range subs {
			rect := make(space.Rect, dim)
			for d := range rect {
				if stats.Bernoulli(r, 0.3) {
					rect[d] = space.Full()
					continue
				}
				center := stats.Gaussian(r, 10, 4)
				width := stats.BoundedPareto(r, 2, 1, 20)
				rect[d] = space.Span(center-width/2, center+width/2)
			}
			subs[i] = workload.Subscription{Owner: hosts[r.Intn(len(hosts))], Rect: rect}
		}
		axes := make([]space.Axis, dim)
		for d := range axes {
			axes[d] = space.Axis{Lo: -2, Hi: 22, Cells: 8}
		}
		w, err := workload.NewCustomWorld(g, axes, subs)
		if err != nil {
			return nil, fmt.Errorf("experiments: dim %d: %w", dim, err)
		}
		dimCopy := dim
		w.SetEventSource(func(r *rand.Rand) workload.Event {
			p := make(space.Point, dimCopy)
			for d := range p {
				p[d] = stats.Gaussian(r, 10, 4)
			}
			return workload.Event{Pub: hosts[r.Intn(len(hosts))], Point: p}
		})

		grid, err := space.NewGrid(axes)
		if err != nil {
			return nil, err
		}
		train := w.Events(2000, seed+int64(dim)+100)
		eval := w.Events(300, seed+int64(dim)+200)
		model := multicast.NewModel(g)
		m, err := matching.NewRTree(w)
		if err != nil {
			return nil, err
		}
		base, err := sim.MeasureBaselines(model, w, m, eval)
		if err != nil {
			return nil, err
		}
		in, err := cluster.BuildInput(w, grid, train, 6000)
		if err != nil {
			return nil, err
		}
		assign, err := alg.Cluster(in, k)
		if err != nil {
			return nil, err
		}
		res, err := cluster.BuildResult(in, assign)
		if err != nil {
			return nil, err
		}
		costs, err := sim.EvaluateGrid(model, w, grid, res, m, eval, sim.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, DimPoint{
			Dim:        dim,
			GridCells:  grid.NumCells(),
			HyperCells: in.TotalHyperCells,
			Network:    sim.Improvement(base, costs.Network),
			Ideal:      base.Ideal,
		})
	}
	return out, nil
}

// RenderDimensionality writes the dimensionality sweep.
func RenderDimensionality(w io.Writer, title string, pts []DimPoint) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dims\tgrid cells\thyper-cells\timprovement %")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\n", p.Dim, p.GridCells, p.HyperCells, p.Network)
	}
	return tw.Flush()
}
