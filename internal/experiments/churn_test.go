package experiments

import (
	"strings"
	"testing"
)

func TestRunChurnSmall(t *testing.T) {
	env := smallEnv(t, 84)
	pts, err := RunChurn(env, ChurnSweepConfig{
		Rates:         []float64{0.05, 0.5},
		Groups:        20,
		CellBudget:    400,
		DecideWorkers: 1,
		Seed:          85,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Stats.Published != int64(len(env.Eval)) {
			t.Errorf("rate %.2f published %d events, want %d", p.Rate, p.Stats.Published, len(env.Eval))
		}
		if p.Ops == 0 {
			t.Errorf("rate %.2f applied no churn ops", p.Rate)
		}
		if int(p.Stats.Subscribes+p.Stats.Unsubscribes) != p.Ops {
			t.Errorf("rate %.2f: broker saw %d+%d churn ops, schedule had %d",
				p.Rate, p.Stats.Subscribes, p.Stats.Unsubscribes, p.Ops)
		}
		// Every churn op forces at least one swap; the writer may coalesce a
		// batch into one, so swaps ∈ [1, ops] per op on this serial driver.
		if p.Stats.SnapshotSwaps == 0 || p.Stats.SnapshotSwaps > int64(p.Ops) {
			t.Errorf("rate %.2f: %d swaps for %d ops", p.Rate, p.Stats.SnapshotSwaps, p.Ops)
		}
		if p.OpLatencyP99 < p.OpLatencyMean {
			t.Errorf("rate %.2f: p99 %v below mean %v", p.Rate, p.OpLatencyP99, p.OpLatencyMean)
		}
	}
	// Higher rate ⇒ more ops (Poisson means scale linearly; 10× apart is
	// far outside noise for this horizon).
	if pts[1].Ops <= pts[0].Ops {
		t.Errorf("ops did not grow with rate: %d @ %.2f vs %d @ %.2f",
			pts[0].Ops, pts[0].Rate, pts[1].Ops, pts[1].Rate)
	}

	var tab, csv strings.Builder
	if err := RenderChurn(&tab, "churn sweep", pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "swaps/op") {
		t.Error("table missing header")
	}
	if err := RenderChurnCSV(&csv, pts); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 3 {
		t.Errorf("CSV has %d lines, want 3", got)
	}
}
