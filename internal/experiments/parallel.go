package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/multicast"
	"repro/internal/noloss"
	"repro/internal/sim"
)

// inputCache memoises BuildInput per cell budget so concurrent jobs on the
// same environment rasterise subscriptions once per budget.
type inputCache struct {
	env *StockEnv
	mu  sync.Mutex
	m   map[int]*cluster.Input
}

func newInputCache(env *StockEnv) *inputCache {
	return &inputCache{env: env, m: make(map[int]*cluster.Input)}
}

func (c *inputCache) get(budget int) (*cluster.Input, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if in, ok := c.m[budget]; ok {
		return in, nil
	}
	in, err := cluster.BuildInput(c.env.World, c.env.Grid, c.env.Train, budget)
	if err != nil {
		return nil, err
	}
	c.m[budget] = in
	return in, nil
}

// RunFig7Parallel computes the same points as RunFig7 using a worker pool.
// Each worker owns a private cost model (the shared one caches
// shortest-path trees lazily and is not safe for concurrent use); the
// clustering Input per budget is built once and shared read-only. workers
// ≤ 0 selects GOMAXPROCS. Results are identical to the sequential runner
// and returned in the same order.
//
// Job-level and clustering-level parallelism compose: every spec algorithm
// implementing cluster.Parallel is pinned to ≈ GOMAXPROCS/workers inner
// workers (at least 1) so the two layers together saturate the machine
// without oversubscribing it. The specs are mutated in place, once, before
// any job runs.
func RunFig7Parallel(env *StockEnv, ks []int, specs []AlgorithmSpec, nolossCfg noloss.Config, workers int) ([]Fig7Point, error) {
	if len(ks) == 0 {
		ks = DefaultKs()
	}
	if specs == nil {
		specs = DefaultAlgorithms()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	inner := runtime.GOMAXPROCS(0) / workers
	if inner < 1 {
		inner = 1
	}
	for _, spec := range specs {
		if p, ok := spec.Alg.(cluster.Parallel); ok {
			p.SetParallelism(inner)
		}
	}

	type job struct {
		idx  int
		spec AlgorithmSpec // zero Alg ⇒ no-loss job
		k    int
	}
	njobs := len(specs)*len(ks) + len(ks)
	jobs := make([]job, 0, njobs)
	for _, spec := range specs {
		for _, k := range ks {
			jobs = append(jobs, job{idx: len(jobs), spec: spec, k: k})
		}
	}
	for _, k := range ks {
		jobs = append(jobs, job{idx: len(jobs), k: k})
	}

	// No-Loss groups are shared by every no-loss job; build once up front.
	nres, err := noloss.Build(env.World, env.Train, nolossCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: parallel fig7 no-loss build: %w", err)
	}

	cache := newInputCache(env)
	out := make([]Fig7Point, njobs)
	errs := make([]error, njobs)
	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			model := multicast.NewModel(env.World.Graph)
			for j := range jobCh {
				out[j.idx], errs[j.idx] = runOne(env, cache, model, nres, j.spec, j.k)
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runOne executes a single (algorithm, k) job against a private model.
func runOne(env *StockEnv, cache *inputCache, model *multicast.Model, nres *noloss.Result, spec AlgorithmSpec, k int) (Fig7Point, error) {
	if spec.Alg == nil {
		costs, err := sim.EvaluateNoLoss(model, env.World, nres, k, env.Matcher, env.Eval)
		if err != nil {
			return Fig7Point{}, fmt.Errorf("experiments: parallel no-loss k=%d: %w", k, err)
		}
		return Fig7Point{
			Alg:      "no-loss",
			K:        k,
			Network:  sim.Improvement(env.Baselines, costs.Network),
			AppLevel: sim.Improvement(env.Baselines, costs.AppLevel),
		}, nil
	}
	in, err := cache.get(spec.Budget)
	if err != nil {
		return Fig7Point{}, err
	}
	assign, err := spec.Alg.Cluster(in, k)
	if err != nil {
		return Fig7Point{}, fmt.Errorf("experiments: parallel %s k=%d: %w", spec.Alg.Name(), k, err)
	}
	res, err := cluster.BuildResult(in, assign)
	if err != nil {
		return Fig7Point{}, err
	}
	costs, err := sim.EvaluateGrid(model, env.World, env.Grid, res, env.Matcher, env.Eval, sim.Options{})
	if err != nil {
		return Fig7Point{}, err
	}
	return Fig7Point{
		Alg:      spec.Alg.Name(),
		K:        k,
		Network:  sim.Improvement(env.Baselines, costs.Network),
		AppLevel: sim.Improvement(env.Baselines, costs.AppLevel),
	}, nil
}
