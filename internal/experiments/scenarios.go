package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// ScenarioPoint compares algorithms across the paper's three publication
// scenarios (mixtures of 1, 4 and 9 multivariate normals, §5.1).
type ScenarioPoint struct {
	Modes     int
	Alg       string
	Network   float64 // improvement %
	Unicast   float64 // per-event baseline on that scenario
	Broadcast float64
	Ideal     float64
}

// RunScenarios evaluates each algorithm at one K on all three publication
// mixtures. Every scenario gets its own environment (the publication model
// changes the empirical cell probabilities and therefore the clustering).
func RunScenarios(base StockEnvConfig, k int, specs []AlgorithmSpec) ([]ScenarioPoint, error) {
	if specs == nil {
		specs = DefaultAlgorithms()
	}
	if k == 0 {
		k = 100
	}
	var out []ScenarioPoint
	for _, modes := range []int{1, 4, 9} {
		cfg := base
		cfg.PubModes = modes
		env, err := NewStockEnv(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %d-mode: %w", modes, err)
		}
		for _, spec := range specs {
			costs, _, err := env.runGrid(spec, k, sim.Options{})
			if err != nil {
				return nil, fmt.Errorf("experiments: scenario %d-mode %s: %w", modes, spec.Alg.Name(), err)
			}
			out = append(out, ScenarioPoint{
				Modes:     modes,
				Alg:       spec.Alg.Name(),
				Network:   sim.Improvement(env.Baselines, costs.Network),
				Unicast:   env.Baselines.Unicast,
				Broadcast: env.Baselines.Broadcast,
				Ideal:     env.Baselines.Ideal,
			})
		}
	}
	return out, nil
}

// ScenarioSpecs returns a compact line-up for the scenario comparison.
func ScenarioSpecs() []AlgorithmSpec {
	return []AlgorithmSpec{
		{Alg: &cluster.KMeans{Variant: cluster.MacQueen}, Budget: 3000},
		{Alg: &cluster.KMeans{Variant: cluster.Forgy}, Budget: 3000},
		{Alg: &cluster.MST{}, Budget: 3000},
	}
}

// RenderScenarios writes the scenario comparison as an aligned table.
func RenderScenarios(w io.Writer, title string, pts []ScenarioPoint) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "modes\talgorithm\timprovement %\tunicast\tbroadcast\tideal")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%s\t%.1f\t%.0f\t%.0f\t%.0f\n",
			p.Modes, p.Alg, p.Network, p.Unicast, p.Broadcast, p.Ideal)
	}
	return tw.Flush()
}

// RenderScenariosCSV writes the scenario comparison as CSV.
func RenderScenariosCSV(w io.Writer, pts []ScenarioPoint) error {
	if _, err := fmt.Fprintln(w, "modes,algorithm,network_improvement,unicast,broadcast,ideal"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%d,%s,%.3f,%.2f,%.2f,%.2f\n",
			p.Modes, p.Alg, p.Network, p.Unicast, p.Broadcast, p.Ideal); err != nil {
			return err
		}
	}
	return nil
}
