package experiments

import (
	"fmt"

	"repro/internal/matching"
	"repro/internal/multicast"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TableRowSpec identifies one row of Table 1 or 2: a network size, a
// subscription count and a distribution family.
type TableRowSpec struct {
	Net  topology.Config
	Subs int
	Dist workload.PrefDist
}

// TableRow is one measured row: per-event average costs of the three
// reference schemes.
type TableRow struct {
	Nodes     int
	Subs      int
	Dist      workload.PrefDist
	Unicast   float64
	Broadcast float64
	Ideal     float64
}

// Table1Rows reproduces the row list of Table 1 (regionalism 0.4).
func Table1Rows() []TableRowSpec {
	return []TableRowSpec{
		{topology.Net100, 5000, workload.Uniform},
		{topology.Net100, 5000, workload.Gaussian},
		{topology.Net100, 1000, workload.Uniform},
		{topology.Net100, 1000, workload.Gaussian},
		{topology.Net100, 80, workload.Uniform},
		{topology.Net100, 80, workload.Gaussian},
		{topology.Net300, 5000, workload.Uniform},
		{topology.Net300, 1000, workload.Uniform},
		{topology.Net300, 350, workload.Uniform},
		{topology.Net600, 10000, workload.Uniform},
		{topology.Net600, 10000, workload.Gaussian},
		{topology.Net600, 5000, workload.Uniform},
		{topology.Net600, 5000, workload.Gaussian},
		{topology.Net600, 1000, workload.Uniform},
		{topology.Net600, 1000, workload.Gaussian},
	}
}

// Table2Rows reproduces the row list of Table 2 (no regionalism).
func Table2Rows() []TableRowSpec {
	return []TableRowSpec{
		{topology.Net100, 5000, workload.Uniform},
		{topology.Net100, 5000, workload.Gaussian},
		{topology.Net100, 1000, workload.Uniform},
		{topology.Net100, 1000, workload.Gaussian},
		{topology.Net100, 80, workload.Uniform},
		{topology.Net100, 80, workload.Gaussian},
		{topology.Net300, 5000, workload.Uniform},
		{topology.Net300, 5000, workload.Gaussian},
		{topology.Net300, 1000, workload.Uniform},
		{topology.Net300, 1000, workload.Gaussian},
		{topology.Net300, 80, workload.Uniform},
		{topology.Net300, 80, workload.Gaussian},
		{topology.Net600, 10000, workload.Uniform},
		{topology.Net600, 10000, workload.Gaussian},
		{topology.Net600, 5000, workload.Uniform},
		{topology.Net600, 5000, workload.Gaussian},
		{topology.Net600, 1000, workload.Uniform},
		{topology.Net600, 1000, workload.Gaussian},
	}
}

// TableConfig parameterises a Table 1/2 run.
type TableConfig struct {
	Regionalism float64
	Rows        []TableRowSpec
	Events      int // per-row replayed events; defaults to 300
	Seed        int64
}

// RunTable measures one Table 1/2 style table. Topologies are cached per
// network config so rows on the same network share a graph, as in the
// paper.
func RunTable(cfg TableConfig) ([]TableRow, error) {
	if cfg.Events == 0 {
		cfg.Events = 300
	}
	if len(cfg.Rows) == 0 {
		return nil, fmt.Errorf("experiments: no table rows")
	}
	graphs := map[topology.Config]*topology.Graph{}
	models := map[topology.Config]*multicast.Model{}
	out := make([]TableRow, 0, len(cfg.Rows))
	for i, row := range cfg.Rows {
		g, ok := graphs[row.Net]
		if !ok {
			topo := row.Net
			topo.Seed = cfg.Seed
			var err error
			g, err = topology.Generate(topo)
			if err != nil {
				return nil, fmt.Errorf("experiments: row %d topology: %w", i, err)
			}
			graphs[row.Net] = g
			models[row.Net] = multicast.NewModel(g)
		}
		w, err := workload.NewRegionalWorld(g, workload.RegionalConfig{
			NumSubscriptions: row.Subs,
			Regionalism:      cfg.Regionalism,
			Dist:             row.Dist,
			Seed:             cfg.Seed + int64(i) + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: row %d workload: %w", i, err)
		}
		m, err := matching.NewRTree(w)
		if err != nil {
			return nil, fmt.Errorf("experiments: row %d matcher: %w", i, err)
		}
		events := w.Events(cfg.Events, cfg.Seed+int64(i)+1000)
		b, err := sim.MeasureBaselines(models[row.Net], w, m, events)
		if err != nil {
			return nil, fmt.Errorf("experiments: row %d baselines: %w", i, err)
		}
		out = append(out, TableRow{
			Nodes:     g.NumNodes(),
			Subs:      row.Subs,
			Dist:      row.Dist,
			Unicast:   b.Unicast,
			Broadcast: b.Broadcast,
			Ideal:     b.Ideal,
		})
	}
	return out, nil
}

// BaselineResult reproduces the §5.2 absolute numbers for the one-mode
// gaussian stock workload (paper: unicast 7139, broadcast 8536, ideal
// 1763).
type BaselineResult struct {
	Baselines sim.Baselines
	Nodes     int
	Subs      int
}

// RunBaseline measures the §5.2 baseline on a fresh stock environment.
func RunBaseline(cfg StockEnvConfig) (BaselineResult, error) {
	env, err := NewStockEnv(cfg)
	if err != nil {
		return BaselineResult{}, err
	}
	return BaselineResult{
		Baselines: env.Baselines,
		Nodes:     env.World.Graph.NumNodes(),
		Subs:      len(env.World.Subs),
	}, nil
}
