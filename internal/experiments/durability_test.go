package experiments

import (
	"strings"
	"testing"
)

func TestRunDurableTimeline(t *testing.T) {
	env := smallEnv(t, 92)
	var registered int
	res, err := RunDurable(env, t.TempDir(), DurableConfig{
		Groups: 12, CellBudget: 300, CrashAtAppend: 80,
		RegisterCloser: func(func()) { registered++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(res.Phases))
	}
	clean, crashed, recovered := res.Phases[0], res.Phases[1], res.Phases[2]

	if clean.Recovery.CheckpointLoaded || clean.Recovery.RecordsReplayed != 0 {
		t.Errorf("clean incarnation saw recovery: %+v", clean.Recovery)
	}
	if clean.Acked != len(env.Eval)/2 {
		t.Errorf("clean incarnation acked %d of %d", clean.Acked, len(env.Eval)/2)
	}
	if !crashed.Recovery.CheckpointLoaded {
		t.Error("crashed incarnation did not load the clean checkpoint")
	}
	if !crashed.Crashed {
		t.Error("crashed phase not marked crashed")
	}
	if crashed.Acked == 0 || crashed.Acked >= len(env.Eval)-len(env.Eval)/2 {
		t.Errorf("crash fired outside the stream: acked %d of %d",
			crashed.Acked, len(env.Eval)-len(env.Eval)/2)
	}
	if recovered.Recovery.RecordsReplayed == 0 {
		t.Error("recovery incarnation replayed nothing")
	}
	if recovered.Recovery.Outstanding == 0 {
		t.Error("recovery incarnation redelivered no stranded publishes")
	}
	if recovered.Delivered <= crashed.Delivered {
		t.Errorf("redelivery did not raise the preserved delivery counter: %d ≤ %d",
			recovered.Delivered, crashed.Delivered)
	}
	// RegisterCloser fires twice per incarnation (open + close).
	if registered != 6 {
		t.Errorf("RegisterCloser fired %d times, want 6", registered)
	}

	var sb strings.Builder
	if err := RenderDurable(&sb, "t", res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"clean", "crashed", "recovered", "replayed"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q:\n%s", want, sb.String())
		}
	}
}
