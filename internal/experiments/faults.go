package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

// FaultPoint is one row of the fault sweep: delivery-fabric statistics
// under one per-attempt drop probability, alongside the cost model's
// predicted retransmission overhead (sim.ExpectedTransmissions) and the
// overhead the broker actually paid.
type FaultPoint struct {
	DropProb  float64
	Stats     broker.Stats
	Predicted float64 // expected transmissions per delivery, closed form
	Observed  float64 // 1 + Retries/Deliveries, measured
	Delivered float64 // fraction of interested deliveries completed

	// Delivery-latency distribution (publish → consumer ack), read from the
	// broker's deliver_latency_ns histogram. Retries and degradations push
	// the tail far beyond the mean — see EXPERIMENTS.md.
	LatencyMean time.Duration
	LatencyP50  time.Duration
	LatencyP99  time.Duration
}

// FaultSweepConfig parameterises the fault sweep.
type FaultSweepConfig struct {
	DropProbs  []float64 // per-attempt end-to-end drop probabilities
	Groups     int       // engine multicast groups K (default 60)
	CellBudget int       // clustering cell budget (default 2000)
	Retries    int       // broker MaxRetries and pricing bound (default 4)
	FaultSeed  int64     // injector seed (events reuse env.Eval)
}

func (c *FaultSweepConfig) setDefaults() {
	if len(c.DropProbs) == 0 {
		c.DropProbs = []float64{0, 0.05, 0.1, 0.2, 0.3}
	}
	if c.Groups == 0 {
		c.Groups = 60
	}
	if c.CellBudget == 0 {
		c.CellBudget = 2000
	}
	if c.Retries == 0 {
		c.Retries = 4
	}
}

// RunFaultSweep replays the evaluation events through a live broker with
// an increasingly lossy fault injector and reports how the reliability
// protocol holds up: retry volume, degraded deliveries, dedup hits and the
// measured retransmission overhead against the truncated-geometric
// prediction. Every point rebuilds the engine so quarantines from one
// profile cannot leak into the next.
func RunFaultSweep(env *StockEnv, cfg FaultSweepConfig) ([]FaultPoint, error) {
	cfg.setDefaults()
	pts := make([]FaultPoint, 0, len(cfg.DropProbs))
	for _, p := range cfg.DropProbs {
		engine, err := core.NewFromWorld(env.World, env.Train, core.Config{
			Groups:     cfg.Groups,
			CellBudget: cfg.CellBudget,
			Algorithm:  &cluster.KMeans{Variant: cluster.Forgy},
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fault sweep engine: %w", err)
		}
		inj, err := faults.New(faults.Config{Seed: cfg.FaultSeed, DropProb: p})
		if err != nil {
			return nil, fmt.Errorf("experiments: fault sweep injector: %w", err)
		}
		b, err := broker.New(engine,
			broker.WithFaults(inj),
			broker.WithReliability(broker.ReliabilityConfig{MaxRetries: cfg.Retries}))
		if err != nil {
			return nil, fmt.Errorf("experiments: fault sweep broker: %w", err)
		}
		for _, ev := range env.Eval {
			if err := b.Publish(ev); err != nil {
				b.Close()
				return nil, fmt.Errorf("experiments: fault sweep publish: %w", err)
			}
		}
		b.Close()
		st := b.Stats()

		pt := FaultPoint{
			DropProb:  p,
			Stats:     st,
			Predicted: sim.ExpectedTransmissions(p, cfg.Retries),
		}
		if st.Deliveries > 0 {
			pt.Observed = 1 + float64(st.Retries)/float64(st.Deliveries)
		}
		if want := st.Deliveries + st.Lost + st.Offline; want > 0 {
			pt.Delivered = float64(st.Deliveries) / float64(want)
		}
		if hs, ok := b.Telemetry().Snapshot()["broker"].Histograms["deliver_latency_ns"]; ok {
			pt.LatencyMean = time.Duration(hs.Mean)
			pt.LatencyP50 = time.Duration(hs.P50)
			pt.LatencyP99 = time.Duration(hs.P99)
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// RenderFaultSweep writes the fault sweep as an aligned text table.
func RenderFaultSweep(w io.Writer, title string, pts []FaultPoint) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "drop %\tdelivered %\tretries\tredelivered\tdegraded\tdeduped\tlost\toverhead\tpredicted\tlat p50\tlat p99")
	for _, p := range pts {
		fmt.Fprintf(tw, "%.0f\t%.1f\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.2f\t%v\t%v\n",
			p.DropProb*100, p.Delivered*100, p.Stats.Retries, p.Stats.Redelivered,
			p.Stats.Degraded, p.Stats.Deduped, p.Stats.Lost, p.Observed, p.Predicted,
			p.LatencyP50.Round(time.Microsecond), p.LatencyP99.Round(time.Microsecond))
	}
	return tw.Flush()
}

// RenderFaultSweepCSV writes the fault sweep as CSV.
func RenderFaultSweepCSV(w io.Writer, pts []FaultPoint) error {
	if _, err := fmt.Fprintln(w, "drop_prob,delivered,retries,redelivered,degraded,deduped,quarantined,lost,observed_overhead,predicted_overhead,lat_mean_ns,lat_p50_ns,lat_p99_ns"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%.3f,%.4f,%d,%d,%d,%d,%d,%d,%.4f,%.4f,%d,%d,%d\n",
			p.DropProb, p.Delivered, p.Stats.Retries, p.Stats.Redelivered,
			p.Stats.Degraded, p.Stats.Deduped, p.Stats.Quarantined, p.Stats.Lost,
			p.Observed, p.Predicted,
			p.LatencyMean.Nanoseconds(), p.LatencyP50.Nanoseconds(), p.LatencyP99.Nanoseconds()); err != nil {
			return err
		}
	}
	return nil
}
