package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faults"
)

// DurableConfig parameterises the crash–restart durability experiment.
type DurableConfig struct {
	Groups     int // multicast groups (default 25)
	CellBudget int // grid cell budget (default 500)
	// CrashAtAppend schedules the simulated crash for the middle
	// incarnation: the process dies at this journal append (default 200).
	CrashAtAppend int64
	// RegisterCloser, when non-nil, receives a close function every time a
	// live broker opens (and nil when it closes); CLI signal handlers point
	// at it so an interrupt closes the active broker cleanly.
	RegisterCloser func(close func())
}

func (c *DurableConfig) setDefaults() {
	if c.Groups == 0 {
		c.Groups = 25
	}
	if c.CellBudget == 0 {
		c.CellBudget = 500
	}
	if c.CrashAtAppend == 0 {
		c.CrashAtAppend = 200
	}
}

// DurablePhase is one broker incarnation of the durability experiment.
type DurablePhase struct {
	Name      string
	Published int64 // cumulative across incarnations (preserved counter)
	Delivered int64 // cumulative across incarnations (preserved counter)
	Acked     int   // publishes acknowledged during this incarnation
	Crashed   bool  // the incarnation ended in a simulated crash
	Recovery  durable.RecoveryStats
}

// DurableResult is the full three-incarnation timeline.
type DurableResult struct {
	Phases []DurablePhase
}

// RunDurable drives one durable broker directory through the canonical
// crash–restart story: a clean first incarnation (checkpoint on close), a
// second incarnation killed mid-stream by a scheduled crash point, and a
// third that recovers from the checkpoint plus the journal tail,
// redelivering the publishes the crash stranded. The directory must be
// empty or absent; the caller owns cleanup.
func RunDurable(env *StockEnv, dir string, cfg DurableConfig) (*DurableResult, error) {
	cfg.setDefaults()
	engineFor := func() (*core.Engine, error) {
		return core.NewFromWorld(env.World, env.Train, core.Config{
			Groups: cfg.Groups, CellBudget: cfg.CellBudget,
		})
	}
	register := func(f func()) {
		if cfg.RegisterCloser != nil {
			cfg.RegisterCloser(f)
		}
	}
	res := &DurableResult{}
	half := len(env.Eval) / 2

	// Incarnation 1: fresh directory, first half of the stream, clean close.
	eng, err := engineFor()
	if err != nil {
		return nil, err
	}
	b, err := broker.Open(dir, eng)
	if err != nil {
		return nil, err
	}
	register(func() { b.Close() })
	acked := 0
	for _, ev := range env.Eval[:half] {
		if err := b.Publish(ev); err == nil {
			acked++
		}
	}
	b.Close()
	register(nil)
	st := b.Stats()
	res.Phases = append(res.Phases, DurablePhase{
		Name: "clean", Published: st.Published, Delivered: st.Deliveries,
		Acked: acked, Recovery: b.Recovery(),
	})

	// Incarnation 2: recovers the checkpoint, then a scheduled crash kills
	// it mid-stream; publishes after the crash point are refused.
	eng, err = engineFor()
	if err != nil {
		return nil, err
	}
	inj := faults.NewCrashInjector(faults.CrashPlan{
		AtAppend: cfg.CrashAtAppend, Point: faults.CrashAfterAppend,
	})
	b, err = broker.Open(dir, eng, broker.WithDurableOptions(durable.Options{Crash: inj}))
	if err != nil {
		return nil, err
	}
	register(func() { b.Close() })
	acked = 0
	for _, ev := range env.Eval[half:] {
		switch err := b.Publish(ev); {
		case err == nil:
			acked++
		case errors.Is(err, faults.ErrCrashed):
		default:
			b.Close()
			register(nil)
			return nil, err
		}
	}
	b.Close()
	register(nil)
	st = b.Stats()
	res.Phases = append(res.Phases, DurablePhase{
		Name: "crashed", Published: st.Published, Delivered: st.Deliveries,
		Acked: acked, Crashed: true, Recovery: b.Recovery(),
	})

	// Incarnation 3: replays the journal tail and redelivers the stranded
	// publishes, then closes cleanly.
	eng, err = engineFor()
	if err != nil {
		return nil, err
	}
	b, err = broker.Open(dir, eng)
	if err != nil {
		return nil, err
	}
	register(func() { b.Close() })
	b.Close()
	register(nil)
	st = b.Stats()
	res.Phases = append(res.Phases, DurablePhase{
		Name: "recovered", Published: st.Published, Delivered: st.Deliveries,
		Recovery: b.Recovery(),
	})
	return res, nil
}

// RenderDurable prints the three-incarnation timeline.
func RenderDurable(w io.Writer, title string, res *DurableResult) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %9s %9s %7s %6s %5s %9s %6s %7s %10s\n",
		"phase", "published", "delivered", "acked", "ckpt", "jrnls", "replayed", "redeliv", "torn", "recovery")
	for _, p := range res.Phases {
		r := p.Recovery
		fmt.Fprintf(w, "%-10s %9d %9d %7d %6v %5d %9d %6d %7d %10v\n",
			p.Name, p.Published, p.Delivered, p.Acked, r.CheckpointLoaded,
			r.JournalsReplayed, r.RecordsReplayed, r.Outstanding,
			r.TornTruncations, r.Duration.Round(time.Microsecond))
	}
	return nil
}
