package experiments

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// RecoveryConfig parameterises the self-healing recovery experiment.
type RecoveryConfig struct {
	Groups      int   // engine multicast groups K (default 40)
	CellBudget  int   // clustering cell budget (default 1500)
	PhaseEvents int   // events per phase (default 200)
	Window      int64 // series window width, events (default 20)
	Seed        int64
	// Health overrides the health subsystem tuning; the zero value gets
	// fast-recovery defaults (small timeouts, AutoRefresh on).
	Health health.Config
	// HealTimeout bounds how long the recovery phase waits for the system
	// to heal itself (default 20s).
	HealTimeout time.Duration
}

func (c *RecoveryConfig) setDefaults() {
	if c.Groups == 0 {
		c.Groups = 40
	}
	if c.CellBudget == 0 {
		c.CellBudget = 1500
	}
	if c.PhaseEvents == 0 {
		c.PhaseEvents = 200
	}
	if c.Window == 0 {
		c.Window = 20
	}
	if c.HealTimeout == 0 {
		c.HealTimeout = 20 * time.Second
	}
	if c.Health.MaxInflight == 0 && c.Health.CheckInterval == 0 && !c.Health.AutoRefresh {
		c.Health = health.Config{
			MaxInflight:        512,
			FailureThreshold:   2,
			OpenTimeout:        5 * time.Millisecond,
			ProbeInterval:      2 * time.Millisecond,
			ProbeSuccesses:     1,
			AutoRefresh:        true,
			CheckInterval:      2 * time.Millisecond,
			MinRefreshInterval: 10 * time.Millisecond,
			StableTicks:        2,
			WarmIters:          2,
			Seed:               c.Seed,
		}
	}
	c.Health.AutoRefresh = true // the experiment is about self-healing
}

// Recovery phase indices, in seq order.
const (
	PhaseBaseline = iota
	PhaseOutage
	PhaseRecovery
	PhaseReplay
	numPhases
)

// phaseNames renders phase indices in tables and CSV.
var phaseNames = [numPhases]string{"baseline", "outage", "recovery", "replay"}

// RecoveryResult is the outcome of one recovery run.
type RecoveryResult struct {
	// Victim is the partitioned subscriber node.
	Victim topology.NodeID
	// Series is the delivered-cost / shed-rate time series over event
	// sequence windows of Window events each.
	Series []sim.WindowStats
	// Window is the series window width, in events.
	Window int64
	// PhaseStarts records the first sequence number of each phase.
	PhaseStarts [numPhases]int64
	// Healed reports whether the system reached the fully-quiet state
	// (breakers closed, ≥ 1 auto-refresh, zero quarantines) before
	// HealTimeout.
	Healed bool
	// BaselineCost, OutageCost and ReplayCost are the mean decided network
	// costs of the baseline slice, the outage slice, and the baseline
	// slice replayed after recovery. Self-healing succeeded when ReplayCost
	// is within a few percent of BaselineCost.
	BaselineCost float64
	OutageCost   float64
	ReplayCost   float64
	Stats        broker.Stats
	Tracker      health.TrackerSnapshot
}

// busiestSubscriber returns the node owning the most subscriptions — the
// destination every clustering is most likely to route through, so
// partitioning it guarantees the fault is actually felt.
func busiestSubscriber(w *workload.World) topology.NodeID {
	counts := map[topology.NodeID]int{}
	for _, s := range w.Subs {
		counts[s.Owner]++
	}
	best, bestN := w.SubscriberNodes[0], -1
	for _, n := range w.SubscriberNodes {
		if counts[n] > bestN {
			best, bestN = n, counts[n]
		}
	}
	return best
}

// RunRecovery drives the full self-healing story end to end: a healthy
// baseline, a partition of the busiest subscriber (every incident link
// failed), the detection cascade (abandons → breaker open → quarantines),
// link restoration, and the automatic recovery (half-open probes re-close
// the breaker, the control loop refreshes the engine), finishing with a
// replay of the exact baseline event slice to price the recovered system
// against its pre-fault self. The whole run is deterministic from the
// seed except for wall-clock phase boundaries.
func RunRecovery(env *StockEnv, cfg RecoveryConfig) (*RecoveryResult, error) {
	cfg.setDefaults()
	engine, err := core.NewFromWorld(env.World, env.Train, core.Config{
		Groups:     cfg.Groups,
		CellBudget: cfg.CellBudget,
		Algorithm:  &cluster.KMeans{Variant: cluster.Forgy},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: recovery engine: %w", err)
	}
	inj, err := faults.New(faults.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: recovery injector: %w", err)
	}
	h, err := health.New(cfg.Health)
	if err != nil {
		return nil, fmt.Errorf("experiments: recovery health: %w", err)
	}

	res := &RecoveryResult{Victim: busiestSubscriber(env.World), Window: cfg.Window}
	series := sim.NewWindowSeries(cfg.Window)

	// The decision observer feeds the series and keeps the raw per-seq
	// cost list for phase means; WithDecideWorkers(1) pins a serial
	// decision stage so the list is in sequence order under the lossless
	// Block policy.
	var mu sync.Mutex
	var costs []float64
	b, err := broker.New(engine,
		broker.WithDecideWorkers(1),
		broker.WithFaults(inj),
		broker.WithReliability(broker.ReliabilityConfig{
			MaxRetries:  3,
			LastResort:  8,
			BaseBackoff: 20 * time.Microsecond,
			MaxBackoff:  500 * time.Microsecond,
		}),
		broker.WithHealth(h),
		broker.WithDecisionObserver(func(seq int64, ev workload.Event, d core.Decision, c core.Costs) {
			series.ObserveDelivered(seq, c.Network)
			mu.Lock()
			costs = append(costs, c.Network)
			mu.Unlock()
		}))
	if err != nil {
		return nil, fmt.Errorf("experiments: recovery broker: %w", err)
	}
	defer b.Close()

	decided := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(costs)
	}
	meanRange := func(lo, n int) float64 {
		mu.Lock()
		defer mu.Unlock()
		if lo+n > len(costs) || n == 0 {
			return 0
		}
		sum := 0.0
		for _, c := range costs[lo : lo+n] {
			sum += c
		}
		return sum / float64(n)
	}
	// Overload and loss counters have no per-seq hook; publish() folds
	// their deltas into the window of the most recent sequence number.
	var prev broker.Stats
	publish := func(evs []workload.Event) error {
		for _, ev := range evs {
			if err := b.Publish(ev); err != nil {
				series.ObserveRejected(int64(decided()))
				continue // rejected events are part of the story, not an error
			}
		}
		at := int64(decided())
		st := b.Stats()
		for i := prev.Shed; i < st.Shed; i++ {
			series.ObserveShed(at)
		}
		for i := prev.Lost; i < st.Lost; i++ {
			series.ObserveLost(at)
		}
		prev = st
		return nil
	}
	waitDecided := func(n int) {
		for decided() < n {
			time.Sleep(time.Millisecond)
		}
	}

	baseline := env.World.Events(cfg.PhaseEvents, cfg.Seed+10)
	outage := env.World.Events(cfg.PhaseEvents, cfg.Seed+11)
	probes := env.World.Events(200, cfg.Seed+12)

	// Phase 1 — healthy baseline.
	res.PhaseStarts[PhaseBaseline] = 0
	if err := publish(baseline); err != nil {
		return nil, err
	}
	waitDecided(len(baseline))

	// Phase 2 — partition the victim.
	res.PhaseStarts[PhaseOutage] = int64(decided())
	for _, he := range env.World.Graph.Neighbors(res.Victim) {
		inj.FailLink(res.Victim, he.To)
	}
	if err := publish(outage); err != nil {
		return nil, err
	}
	outStart := int(res.PhaseStarts[PhaseOutage])
	waitDecided(outStart + len(outage))

	// Phase 3 — restore and let the system heal itself.
	res.PhaseStarts[PhaseRecovery] = int64(decided())
	for _, he := range env.World.Graph.Neighbors(res.Victim) {
		inj.RestoreLink(res.Victim, he.To)
	}
	deadline := time.Now().Add(cfg.HealTimeout)
	quiet := 0
	for i := 0; quiet < 2; i = (i + 10) % len(probes) {
		if err := publish(probes[i : i+10]); err != nil {
			return nil, err
		}
		time.Sleep(4 * time.Millisecond)
		// Quiet requires a fully drained pipeline (Inflight()==0): a
		// still-retrying outage delivery could otherwise fail after the
		// check and re-quarantine a group mid-replay.
		ts := h.Tracker.Snapshot()
		if ts.Open == 0 && ts.HalfOpen == 0 &&
			b.Stats().AutoRefreshes >= 1 && b.QuarantineCount() == 0 &&
			h.Admission.Inflight() == 0 {
			quiet++
		} else {
			quiet = 0
		}
		if time.Now().After(deadline) {
			break
		}
	}
	res.Healed = quiet >= 2

	// Phase 4 — replay the baseline slice against the recovered system.
	res.PhaseStarts[PhaseReplay] = int64(decided())
	if err := publish(baseline); err != nil {
		return nil, err
	}
	b.Close()

	res.BaselineCost = meanRange(int(res.PhaseStarts[PhaseBaseline]), len(baseline))
	res.OutageCost = meanRange(outStart, len(outage))
	res.ReplayCost = meanRange(int(res.PhaseStarts[PhaseReplay]), len(baseline))
	res.Series = series.Series()
	res.Stats = b.Stats()
	res.Tracker = h.Tracker.Snapshot()
	return res, nil
}

// phaseOf maps a window's first sequence number to its phase index.
func (r *RecoveryResult) phaseOf(startSeq int64) int {
	phase := PhaseBaseline
	for p := PhaseBaseline + 1; p < numPhases; p++ {
		if startSeq >= r.PhaseStarts[p] {
			phase = p
		}
	}
	return phase
}

// RenderRecovery writes the recovery run as a summary plus an aligned
// per-window table.
func RenderRecovery(w io.Writer, title string, r *RecoveryResult) error {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "victim node %d; healed: %v; breaker opens %d, probes %d, auto-refreshes %d\n",
		r.Victim, r.Healed, r.Stats.BreakerOpens, r.Stats.Probes, r.Stats.AutoRefreshes)
	fmt.Fprintf(w, "mean decided cost: baseline %.1f → outage %.1f → replay %.1f\n",
		r.BaselineCost, r.OutageCost, r.ReplayCost)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "window\tphase\tdelivered\tshed\trejected\tlost\tmean cost\tshed rate")
	for _, ws := range r.Series {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%.1f\t%.3f\n",
			ws.Window, phaseNames[r.phaseOf(ws.Window*r.Window)],
			ws.Delivered, ws.Shed, ws.Rejected, ws.Lost, ws.MeanCost(), ws.ShedRate())
	}
	return tw.Flush()
}

// RenderRecoveryCSV writes the per-window series as CSV.
func RenderRecoveryCSV(w io.Writer, r *RecoveryResult) error {
	if _, err := fmt.Fprintln(w, "window,start_seq,phase,delivered,shed,rejected,lost,mean_cost,shed_rate"); err != nil {
		return err
	}
	for _, ws := range r.Series {
		start := ws.Window * r.Window
		if _, err := fmt.Fprintf(w, "%d,%d,%s,%d,%d,%d,%d,%.4f,%.4f\n",
			ws.Window, start, phaseNames[r.phaseOf(start)],
			ws.Delivered, ws.Shed, ws.Rejected, ws.Lost, ws.MeanCost(), ws.ShedRate()); err != nil {
			return err
		}
	}
	return nil
}
