package experiments

import (
	"strings"
	"testing"
)

func TestRunRecoverySmall(t *testing.T) {
	env := smallEnv(t, 77)
	res, err := RunRecovery(env, RecoveryConfig{
		Groups:      12,
		CellBudget:  300,
		PhaseEvents: 80,
		Window:      10,
		Seed:        77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("empty window series")
	}
	for p := 1; p < numPhases; p++ {
		if res.PhaseStarts[p] < res.PhaseStarts[p-1] {
			t.Fatalf("phase starts not monotone: %v", res.PhaseStarts)
		}
	}
	if res.BaselineCost <= 0 {
		t.Fatalf("degenerate baseline cost %v", res.BaselineCost)
	}
	if !res.Healed {
		t.Fatalf("system did not heal: stats %+v tracker %+v", res.Stats, res.Tracker)
	}
	if res.Stats.BreakerOpens == 0 || res.Stats.AutoRefreshes == 0 {
		t.Errorf("recovery ran without the health machinery: %+v", res.Stats)
	}
	if diff := (res.ReplayCost - res.BaselineCost) / res.BaselineCost; diff > 0.15 || diff < -0.15 {
		t.Errorf("replay cost %.2f vs baseline %.2f (%.1f%% off)",
			res.ReplayCost, res.BaselineCost, diff*100)
	}

	var tbl, csv strings.Builder
	if err := RenderRecovery(&tbl, "recovery", res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "healed: true") || !strings.Contains(tbl.String(), "baseline") {
		t.Errorf("table output incomplete:\n%s", tbl.String())
	}
	if res.Window != 10 {
		t.Errorf("result window %d, want 10", res.Window)
	}
	if err := RenderRecoveryCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(res.Series)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(res.Series)+1)
	}
	if !strings.HasPrefix(lines[0], "window,start_seq,phase,") {
		t.Errorf("CSV header %q", lines[0])
	}
}
