package experiments

import (
	"fmt"
	"time"

	"repro/internal/noloss"
	"repro/internal/sim"
)

// Fig7Point is one point of Figure 7: the improvement percentage of one
// algorithm at one group count, under both multicast frameworks.
type Fig7Point struct {
	Alg      string
	K        int
	Network  float64 // improvement % under network-supported multicast
	AppLevel float64 // improvement % under application-level multicast
}

// DefaultKs is the Figure 7 sweep over available multicast groups.
func DefaultKs() []int { return []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} }

// RunFig7 sweeps group counts for every grid algorithm plus No-Loss on the
// environment, returning improvement percentages.
func RunFig7(env *StockEnv, ks []int, specs []AlgorithmSpec, nolossCfg noloss.Config) ([]Fig7Point, error) {
	if len(ks) == 0 {
		ks = DefaultKs()
	}
	if specs == nil {
		specs = DefaultAlgorithms()
	}
	var out []Fig7Point
	for _, spec := range specs {
		for _, k := range ks {
			costs, _, err := env.runGrid(spec, k, sim.Options{})
			if err != nil {
				return nil, fmt.Errorf("experiments: fig7 %s k=%d: %w", spec.Alg.Name(), k, err)
			}
			out = append(out, Fig7Point{
				Alg:      spec.Alg.Name(),
				K:        k,
				Network:  sim.Improvement(env.Baselines, costs.Network),
				AppLevel: sim.Improvement(env.Baselines, costs.AppLevel),
			})
		}
	}
	// No-Loss: built once, evaluated per K.
	nres, err := noloss.Build(env.World, env.Train, nolossCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig7 no-loss build: %w", err)
	}
	for _, k := range ks {
		costs, err := sim.EvaluateNoLoss(env.Model, env.World, nres, k, env.Matcher, env.Eval)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 no-loss k=%d: %w", k, err)
		}
		out = append(out, Fig7Point{
			Alg:      "no-loss",
			K:        k,
			Network:  sim.Improvement(env.Baselines, costs.Network),
			AppLevel: sim.Improvement(env.Baselines, costs.AppLevel),
		})
	}
	return out, nil
}

// Fig8Point is one point of Figure 8: No-Loss quality as a function of its
// two parameters (rectangles kept and iterations).
type Fig8Point struct {
	PoolSize   int
	Iterations int
	K          int     // groups used at evaluation
	Network    float64 // improvement %
}

// Fig8Config selects the two sweeps. K is the group count used when
// evaluating each run.
type Fig8Config struct {
	PoolSizes  []int // swept with Iterations = FixedIters
	Iterations []int // swept with PoolSize = FixedPool
	FixedPool  int
	FixedIters int
	K          int
}

// DefaultFig8 mirrors the paper's ranges around its operating point
// (5000 rectangles, 8 iterations).
func DefaultFig8() Fig8Config {
	return Fig8Config{
		PoolSizes:  []int{500, 1000, 2000, 4000, 6000, 8000},
		Iterations: []int{1, 2, 4, 6, 8, 10},
		FixedPool:  5000,
		FixedIters: 8,
		K:          100,
	}
}

// RunFig8 sweeps No-Loss parameters. The pool-size sweep is run twice:
// once evaluating the paper's default K groups, and once using the whole
// pool as the group list A (K = pool size, the literal Fig 6 reading) —
// the latter exposes pool-size sensitivity that a fixed small K masks,
// because the top-K regions stabilise at small pools.
func RunFig8(env *StockEnv, cfg Fig8Config) ([]Fig8Point, error) {
	if cfg.K == 0 {
		cfg.K = 100
	}
	var out []Fig8Point
	eval := func(pool, iters, k int) error {
		nres, err := noloss.Build(env.World, env.Train, noloss.Config{PoolSize: pool, Iterations: iters})
		if err != nil {
			return err
		}
		costs, err := sim.EvaluateNoLoss(env.Model, env.World, nres, k, env.Matcher, env.Eval)
		if err != nil {
			return err
		}
		out = append(out, Fig8Point{
			PoolSize:   pool,
			Iterations: iters,
			K:          k,
			Network:    sim.Improvement(env.Baselines, costs.Network),
		})
		return nil
	}
	for _, pool := range cfg.PoolSizes {
		if err := eval(pool, cfg.FixedIters, cfg.K); err != nil {
			return nil, fmt.Errorf("experiments: fig8 pool=%d: %w", pool, err)
		}
	}
	for _, pool := range cfg.PoolSizes {
		if err := eval(pool, cfg.FixedIters, pool); err != nil {
			return nil, fmt.Errorf("experiments: fig8 pool=%d k=pool: %w", pool, err)
		}
	}
	for _, iters := range cfg.Iterations {
		if err := eval(cfg.FixedPool, iters, cfg.K); err != nil {
			return nil, fmt.Errorf("experiments: fig8 iters=%d: %w", iters, err)
		}
	}
	return out, nil
}

// Fig9Series is Figure 9: the same algorithm comparison run on two
// networks generated with different seeds, demonstrating topology
// robustness.
type Fig9Series struct {
	Seed   int64
	Points []Fig7Point
}

// RunFig9 runs the Figure 7 sweep on two environments differing only in
// seed.
func RunFig9(base StockEnvConfig, seeds [2]int64, ks []int, specs []AlgorithmSpec, nolossCfg noloss.Config) ([2]Fig9Series, error) {
	var out [2]Fig9Series
	for i, seed := range seeds {
		cfg := base
		cfg.Seed = seed
		env, err := NewStockEnv(cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: fig9 seed %d: %w", seed, err)
		}
		pts, err := RunFig7(env, ks, specs, nolossCfg)
		if err != nil {
			return out, fmt.Errorf("experiments: fig9 seed %d: %w", seed, err)
		}
		out[i] = Fig9Series{Seed: seed, Points: pts}
	}
	return out, nil
}

// Fig10Point is one point of Figures 10/11: quality and clustering wall
// time as a function of the cell budget fed to an algorithm.
type Fig10Point struct {
	Alg         string
	Budget      int
	Improvement float64 // network multicast improvement %
	Elapsed     time.Duration
}

// Fig10Config selects the sweep.
type Fig10Config struct {
	Budgets []int
	K       int
}

// DefaultFig10 mirrors the paper's cell-count sweep.
func DefaultFig10() Fig10Config {
	return Fig10Config{
		Budgets: []int{250, 500, 1000, 2000, 4000, 6000},
		K:       100,
	}
}

// RunFig10 sweeps the cell budget for each algorithm, measuring solution
// quality and clustering time. Figure 11 (quality as a function of time)
// is a re-plot of the same points.
func RunFig10(env *StockEnv, specs []AlgorithmSpec, cfg Fig10Config) ([]Fig10Point, error) {
	if specs == nil {
		specs = DefaultAlgorithms()
	}
	if cfg.K == 0 {
		cfg.K = 100
	}
	if len(cfg.Budgets) == 0 {
		cfg.Budgets = DefaultFig10().Budgets
	}
	var out []Fig10Point
	for _, spec := range specs {
		for _, budget := range cfg.Budgets {
			if spec.MaxBudget > 0 && budget > spec.MaxBudget {
				continue
			}
			s := spec
			s.Budget = budget
			costs, elapsed, err := env.runGrid(s, cfg.K, sim.Options{})
			if err != nil {
				return nil, fmt.Errorf("experiments: fig10 %s budget=%d: %w", spec.Alg.Name(), budget, err)
			}
			out = append(out, Fig10Point{
				Alg:         spec.Alg.Name(),
				Budget:      budget,
				Improvement: sim.Improvement(env.Baselines, costs.Network),
				Elapsed:     elapsed,
			})
		}
	}
	return out, nil
}
