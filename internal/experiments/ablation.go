package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/space"
)

// AblationPoint is one measurement of a design-choice sweep.
type AblationPoint struct {
	Study   string  // which knob was swept
	Param   float64 // the knob value
	Network float64 // improvement % under network multicast
	Extra   float64 // study-specific second value (see each runner)
}

// RunThresholdAblation sweeps the Fig 5 multicast threshold: below the
// threshold fraction of interested group members, deliver by unicast
// instead. Extra carries the app-level improvement. The paper defers the
// quantitative study of this optimisation to its companion paper [16];
// this runner provides it on our testbed.
func RunThresholdAblation(env *StockEnv, k int, thresholds []float64) ([]AblationPoint, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4}
	}
	spec := AlgorithmSpec{Alg: &cluster.KMeans{Variant: cluster.Forgy}, Budget: 3000}
	var out []AblationPoint
	for _, th := range thresholds {
		costs, _, err := env.runGrid(spec, k, sim.Options{Threshold: th})
		if err != nil {
			return nil, fmt.Errorf("experiments: threshold %v: %w", th, err)
		}
		out = append(out, AblationPoint{
			Study:   "threshold",
			Param:   th,
			Network: sim.Improvement(env.Baselines, costs.Network),
			Extra:   sim.Improvement(env.Baselines, costs.AppLevel),
		})
	}
	return out, nil
}

// RunOutlierAblation sweeps the outlier-removal fraction (the paper's §4.1
// future-work suggestion) at a deliberately oversized cell budget, where
// Figures 10–11 show quality degrading. Extra carries the number of cells
// removed.
func RunOutlierAblation(env *StockEnv, k, budget int, fracs []float64) ([]AblationPoint, error) {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.02, 0.05, 0.1, 0.2}
	}
	if budget == 0 {
		budget = 6000
	}
	base, err := cluster.BuildInput(env.World, env.Grid, env.Train, budget)
	if err != nil {
		return nil, err
	}
	alg := &cluster.KMeans{Variant: cluster.Forgy}
	var out []AblationPoint
	for _, frac := range fracs {
		in, removed, err := cluster.RemoveOutliers(base, frac)
		if err != nil {
			return nil, fmt.Errorf("experiments: outlier frac %v: %w", frac, err)
		}
		assign, err := alg.Cluster(in, k)
		if err != nil {
			return nil, err
		}
		res, err := cluster.BuildResult(in, assign)
		if err != nil {
			return nil, err
		}
		costs, err := sim.EvaluateGrid(env.Model, env.World, env.Grid, res, env.Matcher, env.Eval, sim.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Study:   "outlier-removal",
			Param:   frac,
			Network: sim.Improvement(env.Baselines, costs.Network),
			Extra:   float64(removed),
		})
	}
	return out, nil
}

// RunLastMileAblation sweeps the last-mile cost factor (the paper's §6
// extension 2): the same workload on networks whose client access links
// are 1×, 2×, … more expensive. Extra carries the per-event unicast
// baseline on that network, showing how the penalty inflates unicast and
// widens the clustering opportunity.
func RunLastMileAblation(base StockEnvConfig, k int, factors []float64) ([]AblationPoint, error) {
	if len(factors) == 0 {
		factors = []float64{1, 2, 4, 8}
	}
	var out []AblationPoint
	for _, f := range factors {
		cfg := base
		cfg.setDefaults()
		cfg.Topology.LastMileFactor = f
		env, err := NewStockEnv(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: last-mile %v: %w", f, err)
		}
		spec := AlgorithmSpec{Alg: &cluster.KMeans{Variant: cluster.Forgy}, Budget: 3000}
		costs, _, err := env.runGrid(spec, k, sim.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Study:   "last-mile",
			Param:   f,
			Network: sim.Improvement(env.Baselines, costs.Network),
			Extra:   env.Baselines.Unicast,
		})
	}
	return out, nil
}

// RunProbAblation compares the two probability estimators feeding the
// clustering framework: empirical (training samples of growing size,
// Param = sample size) versus the closed-form analytic model (Param = 0,
// emitted last). Extra carries the clustering's expected waste under the
// assignment, evaluated on the analytic probabilities as ground truth.
func RunProbAblation(env *StockEnv, k, budget int, sampleSizes []int) ([]AblationPoint, error) {
	if len(sampleSizes) == 0 {
		sampleSizes = []int{125, 250, 500, 1000, 2000, 4000}
	}
	if budget == 0 {
		budget = 3000
	}
	probOf := func(r space.Rect) float64 {
		p, ok := env.World.AnalyticCellProb(r)
		if !ok {
			return 0
		}
		return p
	}
	alg := &cluster.KMeans{Variant: cluster.Forgy}
	evalOne := func(in *cluster.Input, param float64) (AblationPoint, error) {
		assign, err := alg.Cluster(in, k)
		if err != nil {
			return AblationPoint{}, err
		}
		res, err := cluster.BuildResult(in, assign)
		if err != nil {
			return AblationPoint{}, err
		}
		costs, err := sim.EvaluateGrid(env.Model, env.World, env.Grid, res, env.Matcher, env.Eval, sim.Options{})
		if err != nil {
			return AblationPoint{}, err
		}
		waste, err := cluster.ExpectedWaste(in, assign)
		if err != nil {
			return AblationPoint{}, err
		}
		return AblationPoint{
			Study:   "probability-estimator",
			Param:   param,
			Network: sim.Improvement(env.Baselines, costs.Network),
			Extra:   waste,
		}, nil
	}

	var out []AblationPoint
	for _, n := range sampleSizes {
		train := env.World.Events(n, env.Config.Seed+7000+int64(n))
		in, err := cluster.BuildInput(env.World, env.Grid, train, budget)
		if err != nil {
			return nil, fmt.Errorf("experiments: prob ablation n=%d: %w", n, err)
		}
		pt, err := evalOne(in, float64(n))
		if err != nil {
			return nil, fmt.Errorf("experiments: prob ablation n=%d: %w", n, err)
		}
		out = append(out, pt)
	}
	in, err := cluster.BuildInputAnalytic(env.World, env.Grid, probOf, budget)
	if err != nil {
		return nil, fmt.Errorf("experiments: prob ablation analytic: %w", err)
	}
	pt, err := evalOne(in, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: prob ablation analytic: %w", err)
	}
	out = append(out, pt)
	return out, nil
}

// RunDynamicMethodAblation compares the static Fig 5 routing (always
// multicast a routed group) against the §1 dynamic distribution-method
// decision (per-event cheapest of group multicast / unicast / broadcast),
// across group counts. Param is K; Network is the static improvement and
// Extra the dynamic improvement.
func RunDynamicMethodAblation(env *StockEnv, ks []int) ([]AblationPoint, error) {
	if len(ks) == 0 {
		ks = []int{10, 25, 50, 100}
	}
	var out []AblationPoint
	for _, k := range ks {
		var impr [2]float64
		for mode := 0; mode < 2; mode++ {
			eng, err := core.NewFromWorld(env.World, env.Train, core.Config{
				Groups:        k,
				Algorithm:     &cluster.KMeans{Variant: cluster.Forgy},
				CellBudget:    3000,
				DynamicMethod: mode == 1,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: dynamic-method k=%d: %w", k, err)
			}
			total := 0.0
			for _, ev := range env.Eval {
				_, c, err := eng.Publish(ev)
				if err != nil {
					return nil, err
				}
				total += c.Network
			}
			impr[mode] = sim.Improvement(env.Baselines, total/float64(len(env.Eval)))
		}
		out = append(out, AblationPoint{
			Study:   "dynamic-method",
			Param:   float64(k),
			Network: impr[0],
			Extra:   impr[1],
		})
	}
	return out, nil
}

// RenderAblation writes ablation points as an aligned table. The meaning
// of the extra column depends on the study.
func RenderAblation(w io.Writer, title, extraLabel string, pts []AblationPoint) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "param\timprovement %%\t%s\n", extraLabel)
	for _, p := range pts {
		fmt.Fprintf(tw, "%g\t%.1f\t%.1f\n", p.Param, p.Network, p.Extra)
	}
	return tw.Flush()
}

// RenderAblationCSV writes ablation points as CSV.
func RenderAblationCSV(w io.Writer, pts []AblationPoint) error {
	if _, err := fmt.Fprintln(w, "study,param,network_improvement,extra"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%s,%g,%.3f,%.3f\n", p.Study, p.Param, p.Network, p.Extra); err != nil {
			return err
		}
	}
	return nil
}
