package experiments

import (
	"strings"
	"testing"
)

func TestRunFederateSmall(t *testing.T) {
	env := smallEnv(t, 92)
	pts, err := RunFederate(env, FederateSweepConfig{
		ShardCounts: []int{1, 4},
		Groups:      20,
		CellBudget:  400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Duplicates != 0 || p.Missing != 0 {
			t.Errorf("%d shards: %d duplicates, %d missing — exactly-once violated",
				p.Shards, p.Duplicates, p.Missing)
		}
		if p.Stats.Published != int64(len(env.Eval)) {
			t.Errorf("%d shards: published %d events, want %d", p.Shards, p.Stats.Published, len(env.Eval))
		}
		if p.Stats.Fanout < p.Stats.Published {
			t.Errorf("%d shards: fanout %d below published %d", p.Shards, p.Stats.Fanout, p.Stats.Published)
		}
		if p.P99 < p.P50 {
			t.Errorf("%d shards: p99 %v below p50 %v", p.Shards, p.P99, p.P50)
		}
	}
	// A single tile covers everything; the sharded run must register the
	// boundary straddlers on several shards.
	if pts[0].Straddlers != 0 {
		t.Errorf("1-shard run reports %d straddlers", pts[0].Straddlers)
	}
	if pts[1].Straddlers == 0 {
		t.Error("4-shard run reports no straddlers; partition is suspiciously clean")
	}
	if pts[1].Stats.CrossShardSubs != 0 {
		t.Errorf("pre-seeded subs went through the router: CrossShardSubs = %d", pts[1].Stats.CrossShardSubs)
	}

	var tab, csv strings.Builder
	if err := RenderFederate(&tab, "federation sweep", pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "straddlers") {
		t.Error("table missing header")
	}
	if err := RenderFederateCSV(&csv, pts); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 3 {
		t.Errorf("csv has %d lines, want 3", got)
	}
}
