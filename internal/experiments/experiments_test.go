package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/noloss"
	"repro/internal/topology"
	"repro/internal/workload"
)

// smallEnv is a scaled-down §5.1 environment for fast tests.
func smallEnv(t *testing.T, seed int64) *StockEnv {
	t.Helper()
	env, err := NewStockEnv(StockEnvConfig{
		NumSubs:     400,
		PubModes:    1,
		TrainEvents: 800,
		EvalEvents:  200,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func smallSpecs() []AlgorithmSpec {
	return []AlgorithmSpec{
		{Alg: &cluster.KMeans{Variant: cluster.MacQueen}, Budget: 600},
		{Alg: &cluster.KMeans{Variant: cluster.Forgy}, Budget: 600},
		{Alg: cluster.MST{}, Budget: 600},
		{Alg: &cluster.Pairwise{Approx: true}, Budget: 400},
	}
}

func TestNewStockEnvDefaults(t *testing.T) {
	env := smallEnv(t, 60)
	if env.World == nil || env.Grid == nil || env.Model == nil {
		t.Fatal("env incomplete")
	}
	if env.Baselines.Unicast <= env.Baselines.Ideal {
		t.Fatalf("baselines degenerate: %+v", env.Baselines)
	}
	if len(env.Train) != 800 || len(env.Eval) != 200 {
		t.Fatal("event counts wrong")
	}
}

func TestRunTableSmall(t *testing.T) {
	rows, err := RunTable(TableConfig{
		Regionalism: 0.4,
		Rows: []TableRowSpec{
			{topology.Net100, 500, workload.Uniform},
			{topology.Net100, 500, workload.Gaussian},
			{topology.Net100, 80, workload.Uniform},
		},
		Events: 120,
		Seed:   61,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Unicast <= 0 || r.Broadcast <= 0 || r.Ideal <= 0 {
			t.Fatalf("row %d non-positive: %+v", i, r)
		}
		if r.Ideal > r.Broadcast+1e-9 {
			t.Fatalf("row %d: ideal > broadcast", i)
		}
		if r.Nodes != 100 {
			t.Fatalf("row %d nodes = %d", i, r.Nodes)
		}
	}
	// Paper shape: with many subscriptions per node, unicast ≫ broadcast;
	// with few (80), unicast < broadcast.
	if rows[0].Unicast < rows[0].Broadcast {
		t.Errorf("500 subs: unicast %v not > broadcast %v", rows[0].Unicast, rows[0].Broadcast)
	}
	if rows[2].Unicast > rows[2].Broadcast {
		t.Errorf("80 subs: unicast %v not < broadcast %v", rows[2].Unicast, rows[2].Broadcast)
	}
	// Gaussian costs ≥ uniform costs for the same size (more matching).
	if rows[1].Unicast < rows[0].Unicast {
		t.Errorf("gaussian unicast %v < uniform %v", rows[1].Unicast, rows[0].Unicast)
	}
}

func TestRunTableErrors(t *testing.T) {
	if _, err := RunTable(TableConfig{}); err == nil {
		t.Error("empty rows accepted")
	}
}

func TestRunBaseline(t *testing.T) {
	r, err := RunBaseline(StockEnvConfig{NumSubs: 300, TrainEvents: 400, EvalEvents: 150, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	if r.Subs != 300 || r.Nodes == 0 {
		t.Fatalf("baseline result: %+v", r)
	}
	// §5.2 regime: ideal well below unicast and broadcast comparable to
	// unicast.
	if !(r.Baselines.Ideal < r.Baselines.Unicast) {
		t.Errorf("ideal %v not < unicast %v", r.Baselines.Ideal, r.Baselines.Unicast)
	}
}

func TestRunFig7Small(t *testing.T) {
	env := smallEnv(t, 63)
	ks := []int{10, 40, 80}
	pts, err := RunFig7(env, ks, smallSpecs(), noloss.Config{PoolSize: 800, Iterations: 3, Seeds: 32})
	if err != nil {
		t.Fatal(err)
	}
	want := len(ks) * (len(smallSpecs()) + 1) // +1 for no-loss
	if len(pts) != want {
		t.Fatalf("points = %d, want %d", len(pts), want)
	}
	algs := map[string]bool{}
	for _, p := range pts {
		algs[p.Alg] = true
		if p.Network > 100+1e-9 {
			t.Errorf("%s K=%d improvement %v%% > 100", p.Alg, p.K, p.Network)
		}
		// App-level multicast should not beat network multicast.
		if p.AppLevel > p.Network+1e-9 {
			t.Errorf("%s K=%d app-level %v%% > network %v%%", p.Alg, p.K, p.AppLevel, p.Network)
		}
	}
	if !algs["no-loss"] || !algs["forgy"] {
		t.Fatalf("missing algorithms: %v", algs)
	}
	// Clustering should beat unicast at K=80 for the iterative algorithms.
	for _, p := range pts {
		if p.K == 80 && (p.Alg == "forgy" || p.Alg == "k-means") && p.Network <= 0 {
			t.Errorf("%s at K=80 has non-positive improvement %v", p.Alg, p.Network)
		}
	}
}

func TestRunFig8Small(t *testing.T) {
	env := smallEnv(t, 64)
	cfg := Fig8Config{
		PoolSizes:  []int{200, 800},
		Iterations: []int{1, 4},
		FixedPool:  800,
		FixedIters: 3,
		K:          60,
	}
	pts, err := RunFig8(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two pool sweeps (fixed K and K=pool) plus the iteration sweep.
	if want := 2*len(cfg.PoolSizes) + len(cfg.Iterations); len(pts) != want {
		t.Fatalf("points = %d, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.K <= 0 {
			t.Fatalf("point with K=%d", p.K)
		}
	}
}

func TestRunFig9Small(t *testing.T) {
	base := StockEnvConfig{NumSubs: 300, TrainEvents: 500, EvalEvents: 120}
	series, err := RunFig9(base, [2]int64{70, 71}, []int{20, 60},
		[]AlgorithmSpec{{Alg: &cluster.KMeans{Variant: cluster.Forgy}, Budget: 400}},
		noloss.Config{PoolSize: 400, Iterations: 2, Seeds: 16})
	if err != nil {
		t.Fatal(err)
	}
	if series[0].Seed == series[1].Seed {
		t.Fatal("seeds identical")
	}
	for i, s := range series {
		if len(s.Points) != 4 { // (1 grid alg + no-loss) × 2 Ks
			t.Fatalf("series %d has %d points", i, len(s.Points))
		}
	}
}

func TestRunFig10Small(t *testing.T) {
	env := smallEnv(t, 65)
	pts, err := RunFig10(env,
		[]AlgorithmSpec{
			{Alg: &cluster.KMeans{Variant: cluster.Forgy}},
			{Alg: cluster.MST{}},
		},
		Fig10Config{Budgets: []int{100, 400}, K: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Elapsed <= 0 {
			t.Errorf("%s budget=%d elapsed %v", p.Alg, p.Budget, p.Elapsed)
		}
	}
}

func TestThresholdAblation(t *testing.T) {
	env := smallEnv(t, 66)
	pts, err := RunThresholdAblation(env, 40, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Param != 0 || pts[1].Param != 0.2 {
		t.Fatal("params wrong")
	}
}

func TestOutlierAblation(t *testing.T) {
	env := smallEnv(t, 67)
	pts, err := RunOutlierAblation(env, 40, 600, []float64{0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Extra != 0 {
		t.Errorf("frac 0 removed %v cells", pts[0].Extra)
	}
	if pts[1].Extra <= 0 {
		t.Errorf("frac 0.1 removed %v cells", pts[1].Extra)
	}
}

func TestLastMileAblation(t *testing.T) {
	base := StockEnvConfig{NumSubs: 250, TrainEvents: 500, EvalEvents: 100, Seed: 68}
	pts, err := RunLastMileAblation(base, 30, []float64{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Pricier last miles inflate the unicast baseline.
	if pts[1].Extra <= pts[0].Extra {
		t.Errorf("last-mile factor 6 unicast %v not > factor 1 unicast %v", pts[1].Extra, pts[0].Extra)
	}
}

func TestRunFig7ParallelMatchesSequential(t *testing.T) {
	env := smallEnv(t, 72)
	ks := []int{15, 45}
	specs := smallSpecs()[:2]
	nl := noloss.Config{PoolSize: 400, Iterations: 2, Seeds: 16}
	seq, err := RunFig7(env, ks, specs, nl)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFig7Parallel(env, ks, specs, nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}

func TestRunFig7ParallelDefaultWorkers(t *testing.T) {
	env := smallEnv(t, 73)
	pts, err := RunFig7Parallel(env, []int{20},
		[]AlgorithmSpec{{Alg: &cluster.KMeans{Variant: cluster.Forgy}, Budget: 300}},
		noloss.Config{PoolSize: 200, Iterations: 1, Seeds: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
}

func TestRunScenarios(t *testing.T) {
	base := StockEnvConfig{NumSubs: 250, TrainEvents: 500, EvalEvents: 100, Seed: 69}
	specs := []AlgorithmSpec{{Alg: &cluster.KMeans{Variant: cluster.Forgy}, Budget: 500}}
	pts, err := RunScenarios(base, 40, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	modes := map[int]bool{}
	for _, p := range pts {
		modes[p.Modes] = true
		if p.Unicast <= 0 || p.Ideal <= 0 {
			t.Fatalf("bad baselines in %+v", p)
		}
	}
	if !modes[1] || !modes[4] || !modes[9] {
		t.Fatalf("missing modes: %v", modes)
	}
	var sb strings.Builder
	if err := RenderScenarios(&sb, "s", pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "forgy") {
		t.Error("render missing algorithm")
	}
	sb.Reset()
	if err := RenderScenariosCSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
}

func TestRenderAblation(t *testing.T) {
	pts := []AblationPoint{{Study: "threshold", Param: 0.1, Network: 50, Extra: 45}}
	var sb strings.Builder
	if err := RenderAblation(&sb, "t", "x", pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "50.0") {
		t.Error("render missing value")
	}
	sb.Reset()
	if err := RenderAblationCSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "study,param") {
		t.Error("CSV header missing")
	}
}

func TestRenderers(t *testing.T) {
	rows := []TableRow{{Nodes: 100, Subs: 80, Dist: workload.Uniform, Unicast: 750, Broadcast: 1430, Ideal: 310}}
	var sb strings.Builder
	if err := RenderTable(&sb, "Table 1", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "uniform") || !strings.Contains(sb.String(), "750") {
		t.Errorf("table render missing content:\n%s", sb.String())
	}
	sb.Reset()
	if err := RenderTableCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "nodes,subs,dist") {
		t.Error("CSV header missing")
	}

	pts := []Fig7Point{{Alg: "forgy", K: 10, Network: 50.5, AppLevel: 44.4}}
	sb.Reset()
	if err := RenderFig7(&sb, "Fig 7", pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "forgy") {
		t.Error("fig7 render missing algorithm")
	}
	sb.Reset()
	if err := RenderFig7CSV(&sb, pts); err != nil {
		t.Fatal(err)
	}

	f8 := []Fig8Point{{PoolSize: 500, Iterations: 8, Network: 33.3}}
	sb.Reset()
	if err := RenderFig8(&sb, "Fig 8", f8); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := RenderFig8CSV(&sb, f8); err != nil {
		t.Fatal(err)
	}

	f10 := []Fig10Point{{Alg: "mst", Budget: 1000, Improvement: 40, Elapsed: 1500000}}
	sb.Reset()
	if err := RenderFig10(&sb, "Fig 10", f10); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := RenderFig10CSV(&sb, f10); err != nil {
		t.Fatal(err)
	}

	sb.Reset()
	RenderBaseline(&sb, BaselineResult{Nodes: 615, Subs: 1000})
	if !strings.Contains(sb.String(), "615 nodes") {
		t.Error("baseline render missing")
	}
}

func TestProbAblation(t *testing.T) {
	env := smallEnv(t, 74)
	pts, err := RunProbAblation(env, 30, 400, []int{150, 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 { // two sample sizes + analytic
		t.Fatalf("points = %d", len(pts))
	}
	if pts[2].Param != 0 {
		t.Fatal("analytic point missing")
	}
	for _, p := range pts {
		if p.Extra < 0 {
			t.Fatalf("negative waste %v", p.Extra)
		}
	}
}

func TestDynamicMethodAblation(t *testing.T) {
	env := smallEnv(t, 78)
	pts, err := RunDynamicMethodAblation(env, []int{15})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	// Dynamic can only help (per event it picks the cheapest option, which
	// includes what the static engine would do).
	if pts[0].Extra < pts[0].Network-1e-9 {
		t.Errorf("dynamic %v worse than static %v", pts[0].Extra, pts[0].Network)
	}
}

func TestInterestProfile(t *testing.T) {
	specs := []InterestSpec{
		{Label: "dense", Net: topology.Net100, Subs: 3000, Dist: workload.Gaussian},
		{Label: "sparse", Net: topology.Net100, Subs: 60, Dist: workload.Gaussian},
	}
	ps, err := RunInterestProfile(specs, 150, 81)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("profiles = %d", len(ps))
	}
	for _, p := range ps {
		sum := 0.0
		for _, h := range p.Histogram {
			sum += h
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s histogram sums to %v", p.Label, sum)
		}
	}
	// §3 argument: the dense regime reaches far more of the network per
	// event than the sparse one.
	if ps[0].MeanFrac <= ps[1].MeanFrac {
		t.Errorf("dense mean %v not > sparse mean %v", ps[0].MeanFrac, ps[1].MeanFrac)
	}
	var sb strings.Builder
	if err := RenderInterestProfile(&sb, "t", ps); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dense") {
		t.Error("render missing label")
	}
}

func TestGridResolution(t *testing.T) {
	env := smallEnv(t, 82)
	pts, err := RunGridResolution(env, 40, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].GridCells >= pts[1].GridCells {
		t.Error("coarser grid not smaller")
	}
	if pts[0].HyperCells > pts[1].HyperCells {
		t.Error("coarser grid has more hyper-cells")
	}
	var sb strings.Builder
	if err := RenderResolution(&sb, "r", pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "grid cells") {
		t.Error("render missing header")
	}
}

func TestDimensionality(t *testing.T) {
	pts, err := RunDimensionality(topology.Net100, 30, []int{2, 4}, 83)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].GridCells != 64 || pts[1].GridCells != 4096 {
		t.Fatalf("grid cells %d/%d", pts[0].GridCells, pts[1].GridCells)
	}
	var sb strings.Builder
	if err := RenderDimensionality(&sb, "d", pts); err != nil {
		t.Fatal(err)
	}
}

func TestRunFaultSweepSmall(t *testing.T) {
	env := smallEnv(t, 72)
	pts, err := RunFaultSweep(env, FaultSweepConfig{
		DropProbs:  []float64{0, 0.2},
		Groups:     20,
		CellBudget: 400,
		FaultSeed:  9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	clean, lossy := pts[0], pts[1]
	if clean.Stats.Retries != 0 || clean.Observed != 1 || clean.Predicted != 1 {
		t.Errorf("loss-free point shows retry overhead: %+v", clean)
	}
	if lossy.Stats.Retries == 0 || lossy.Stats.Redelivered == 0 {
		t.Errorf("lossy point saw no retries: %+v", lossy.Stats)
	}
	for _, p := range pts {
		if p.Stats.Lost != 0 {
			t.Errorf("drop %.2f lost %d deliveries", p.DropProb, p.Stats.Lost)
		}
		if p.Delivered != 1 {
			t.Errorf("drop %.2f delivered fraction %.3f, want 1", p.DropProb, p.Delivered)
		}
	}
	// Measured retransmission overhead must track the truncated-geometric
	// prediction.
	if diff := lossy.Observed - lossy.Predicted; diff < -0.1 || diff > 0.1 {
		t.Errorf("observed overhead %.3f far from predicted %.3f", lossy.Observed, lossy.Predicted)
	}

	var tab, csv strings.Builder
	if err := RenderFaultSweep(&tab, "fault sweep", pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "retries") {
		t.Error("table missing header")
	}
	if err := RenderFaultSweepCSV(&csv, pts); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 3 {
		t.Errorf("CSV has %d lines, want 3", got)
	}
}
