package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/matching"
	"repro/internal/topology"
	"repro/internal/workload"
)

// InterestProfile summarises, for one configuration, the distribution of
// the per-event interested-node fraction — the §3 argument for why
// multicast pays off in some regimes and not in others.
//
// The paper: "The Gryphon framework has a 100 node network, with an
// average of 125 subscriptions for each of the 80 nodes … the number of
// nodes interested in this publication will either be very high or very
// low", so broadcast + unicast suffice there, while "for larger networks
// with relatively fewer subscriptions … multicast is most beneficial".
type InterestProfile struct {
	Label     string
	Nodes     int
	Subs      int
	Histogram [10]float64 // share of events whose interest fraction falls in [i/10, (i+1)/10)
	MeanFrac  float64
}

// InterestSpec identifies one configuration to profile.
type InterestSpec struct {
	Label string
	Net   topology.Config
	Subs  int
	Dist  workload.PrefDist
}

// GryphonSpecs contrasts the Gryphon-like regime (small network, ~125
// subscriptions per node) with the paper's regime (large network, few
// subscriptions per node).
func GryphonSpecs() []InterestSpec {
	return []InterestSpec{
		{Label: "gryphon-like (100 nodes, 10000 subs)", Net: topology.Net100, Subs: 10000, Dist: workload.Gaussian},
		{Label: "paper regime (600 nodes, 1000 subs)", Net: topology.Net600, Subs: 1000, Dist: workload.Gaussian},
	}
}

// RunInterestProfile measures the interested-node fraction distribution
// for each spec, using the §3 workload with regionalism 0.
func RunInterestProfile(specs []InterestSpec, events int, seed int64) ([]InterestProfile, error) {
	if len(specs) == 0 {
		specs = GryphonSpecs()
	}
	if events == 0 {
		events = 400
	}
	out := make([]InterestProfile, 0, len(specs))
	for i, spec := range specs {
		topo := spec.Net
		topo.Seed = seed
		g, err := topology.Generate(topo)
		if err != nil {
			return nil, fmt.Errorf("experiments: interest %q: %w", spec.Label, err)
		}
		w, err := workload.NewRegionalWorld(g, workload.RegionalConfig{
			NumSubscriptions: spec.Subs,
			Regionalism:      0,
			Dist:             spec.Dist,
			Seed:             seed + int64(i) + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: interest %q: %w", spec.Label, err)
		}
		m, err := matching.NewRTree(w)
		if err != nil {
			return nil, err
		}
		p := InterestProfile{Label: spec.Label, Nodes: g.NumNodes(), Subs: spec.Subs}
		evs := w.Events(events, seed+int64(i)+1000)
		for _, e := range evs {
			nodes := matching.InterestedNodes(w, m.Match(e.Point))
			frac := float64(len(nodes)) / float64(g.NumNodes())
			bucket := int(frac * 10)
			if bucket > 9 {
				bucket = 9
			}
			p.Histogram[bucket]++
			p.MeanFrac += frac
		}
		for b := range p.Histogram {
			p.Histogram[b] /= float64(len(evs))
		}
		p.MeanFrac /= float64(len(evs))
		out = append(out, p)
	}
	return out, nil
}

// RenderInterestProfile writes the profiles as decile tables.
func RenderInterestProfile(w io.Writer, title string, ps []InterestProfile) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "configuration\tmean frac\t0-10%\t10-20%\t…\t80-90%\t90-100%")
	for _, p := range ps {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t…\t%.2f\t%.2f\n",
			p.Label, p.MeanFrac, p.Histogram[0], p.Histogram[1], p.Histogram[8], p.Histogram[9])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nfull deciles:")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, p := range ps {
		fmt.Fprintf(tw, "%s\t", p.Label)
		for _, h := range p.Histogram {
			fmt.Fprintf(tw, "%.2f\t", h)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
