// Package experiments reproduces every table and figure of the paper's
// evaluation: Tables 1–2 (§3 baseline cost comparison), the §5.2 absolute
// baseline, and Figures 7–11 (clustering algorithm comparisons on the §5.1
// stock workload). Each runner returns typed rows/series and can render
// itself as an ASCII table or CSV for the pubsub-bench CLI.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/matching"
	"repro/internal/multicast"
	"repro/internal/noloss"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

// StockEnvConfig parameterises the shared §5.1 environment.
type StockEnvConfig struct {
	Topology    topology.Config // defaults to topology.Eval600
	NumSubs     int             // defaults to 1000
	PubModes    int             // defaults to 1
	TrainEvents int             // defaults to 2000
	EvalEvents  int             // defaults to 500
	Seed        int64
}

func (c *StockEnvConfig) setDefaults() {
	zero := topology.Config{}
	if c.Topology == zero {
		c.Topology = topology.Eval600
	}
	if c.NumSubs == 0 {
		c.NumSubs = 1000
	}
	if c.PubModes == 0 {
		c.PubModes = 1
	}
	if c.TrainEvents == 0 {
		c.TrainEvents = 2000
	}
	if c.EvalEvents == 0 {
		c.EvalEvents = 500
	}
}

// TopologyOrDefault resolves the configured topology (Eval600 when unset).
func (c StockEnvConfig) TopologyOrDefault() topology.Config {
	c.setDefaults()
	return c.Topology
}

// StockEnv is a fully constructed §5.1 experiment environment shared by the
// figure runners.
type StockEnv struct {
	Config    StockEnvConfig
	World     *workload.World
	Grid      *space.Grid
	Model     *multicast.Model
	Matcher   matching.SubscriptionMatcher
	Train     []workload.Event
	Eval      []workload.Event
	Baselines sim.Baselines
}

// NewStockEnv builds the environment: topology, workload, matcher, cost
// model and baseline measurements.
func NewStockEnv(cfg StockEnvConfig) (*StockEnv, error) {
	cfg.setDefaults()
	topo := cfg.Topology
	topo.Seed = cfg.Seed
	g, err := topology.Generate(topo)
	if err != nil {
		return nil, fmt.Errorf("experiments: topology: %w", err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: cfg.NumSubs,
		BlockSplit:       blockSplit(g.NumBlocks()),
		NameMeans:        nameMeans(g.NumBlocks()),
		PubModes:         cfg.PubModes,
		Seed:             cfg.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: workload: %w", err)
	}
	grid, err := space.NewGrid(w.Axes)
	if err != nil {
		return nil, fmt.Errorf("experiments: grid: %w", err)
	}
	m, err := matching.NewRTree(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: matcher: %w", err)
	}
	env := &StockEnv{
		Config:  cfg,
		World:   w,
		Grid:    grid,
		Model:   multicast.NewModel(g),
		Matcher: m,
		Train:   w.Events(cfg.TrainEvents, cfg.Seed+2),
		Eval:    w.Events(cfg.EvalEvents, cfg.Seed+3),
	}
	env.Baselines, err = sim.MeasureBaselines(env.Model, w, m, env.Eval)
	if err != nil {
		return nil, fmt.Errorf("experiments: baselines: %w", err)
	}
	return env, nil
}

// blockSplit returns the paper's {0.4, 0.3, 0.3} when there are three
// blocks, an even split otherwise.
func blockSplit(n int) []float64 {
	if n == 3 {
		return []float64{0.4, 0.3, 0.3}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 / float64(n)
	}
	return out
}

// nameMeans returns the paper's {3, 10, 17} for three blocks, evenly
// spaced otherwise.
func nameMeans(n int) []float64 {
	if n == 3 {
		return []float64{3, 10, 17}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = 20 * (float64(i) + 0.5) / float64(n)
	}
	return out
}

// AlgorithmSpec couples a grid-based clustering algorithm with its cell
// budget (the paper feeds different algorithms different cell counts:
// K-means/Forgy/MST 6000, approx-pairs 2000).
type AlgorithmSpec struct {
	Alg    cluster.Algorithm
	Budget int
	// MaxBudget caps the cell budget this algorithm is ever swept to in
	// Figure 10 (0 = unlimited). The paper never feeds the quadratic
	// pairwise algorithms more than 2000 cells.
	MaxBudget int
}

// DefaultAlgorithms returns the paper's §5.2 line-up with its budgets.
func DefaultAlgorithms() []AlgorithmSpec {
	return []AlgorithmSpec{
		{Alg: &cluster.KMeans{Variant: cluster.MacQueen}, Budget: 6000},
		{Alg: &cluster.KMeans{Variant: cluster.Forgy}, Budget: 6000},
		{Alg: &cluster.MST{}, Budget: 6000},
		{Alg: &cluster.Pairwise{}, Budget: 2000, MaxBudget: 2000},
		{Alg: &cluster.Pairwise{Approx: true}, Budget: 2000, MaxBudget: 2000},
	}
}

// DefaultNoLoss returns the paper's No-Loss parameters (5000 rectangles,
// 8 iterations).
func DefaultNoLoss() noloss.Config {
	return noloss.Config{PoolSize: 5000, Iterations: 8}
}

// runGrid clusters with one algorithm at one K and evaluates it; it
// reports costs and the clustering wall time.
func (env *StockEnv) runGrid(spec AlgorithmSpec, k int, opts sim.Options) (sim.Costs, time.Duration, error) {
	in, err := cluster.BuildInput(env.World, env.Grid, env.Train, spec.Budget)
	if err != nil {
		return sim.Costs{}, 0, err
	}
	start := time.Now()
	assign, err := spec.Alg.Cluster(in, k)
	elapsed := time.Since(start)
	if err != nil {
		return sim.Costs{}, 0, err
	}
	res, err := cluster.BuildResult(in, assign)
	if err != nil {
		return sim.Costs{}, 0, err
	}
	costs, err := sim.EvaluateGrid(env.Model, env.World, env.Grid, res, env.Matcher, env.Eval, opts)
	return costs, elapsed, err
}
