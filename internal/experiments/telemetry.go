package experiments

import (
	"fmt"

	"repro/internal/matching"
	"repro/internal/noloss"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// costBuckets builds linear cost buckets anchored to the environment's
// baselines: the range [0, ~1.3×max(unicast, broadcast)] covers every
// sensible per-event delivery cost, and anything pricier lands in the
// overflow bucket.
func costBuckets(b sim.Baselines) telemetry.Buckets {
	hi := b.Unicast
	if b.Broadcast > hi {
		hi = b.Broadcast
	}
	if hi <= 0 {
		hi = 1
	}
	return telemetry.LinearBuckets(0, hi/24, 32)
}

// fig7Scope holds the per-algorithm instruments of an observed Figure 7
// run.
type fig7Scope struct {
	net       *telemetry.Histogram
	app       *telemetry.Histogram
	clusterNs *telemetry.Histogram
	events    *telemetry.Counter
}

func newFig7Scope(reg *telemetry.Registry, alg string, b sim.Baselines) fig7Scope {
	s := reg.Scope("fig7/" + alg)
	return fig7Scope{
		net:       s.Histogram("net_cost", costBuckets(b)),
		app:       s.Histogram("app_cost", costBuckets(b)),
		clusterNs: s.Histogram("cluster_ns", telemetry.LatencyBuckets()),
		events:    s.Counter("events"),
	}
}

// observe is a sim.Options.Observe hook feeding the scope's histograms.
func (fs fig7Scope) observe(net, app float64) {
	fs.events.Inc()
	fs.net.Observe(net)
	fs.app.Observe(app)
}

// RunFig7Observed is RunFig7 with telemetry: per-algorithm scopes
// ("fig7/<alg>") collect the full per-event cost distributions (net_cost,
// app_cost linear histograms scaled to the baselines), clustering wall
// times (cluster_ns) and replayed event counts, and the environment's
// matcher is wrapped with matching.Instrument under scope "matching"
// (stabbing latency, candidates-vs-matches waste). The returned points are
// identical to RunFig7's; a nil registry reproduces RunFig7 exactly.
func RunFig7Observed(env *StockEnv, ks []int, specs []AlgorithmSpec, nolossCfg noloss.Config, reg *telemetry.Registry) ([]Fig7Point, error) {
	if reg == nil {
		return RunFig7(env, ks, specs, nolossCfg)
	}
	if len(ks) == 0 {
		ks = DefaultKs()
	}
	if specs == nil {
		specs = DefaultAlgorithms()
	}

	// Instrument the matcher on a shallow env copy so the caller's env is
	// untouched; every replay below stabs through the wrapper.
	ienv := *env
	ienv.Matcher = matching.Instrument(env.Matcher, reg.Scope("matching"))

	var out []Fig7Point
	for _, spec := range specs {
		fs := newFig7Scope(reg, spec.Alg.Name(), env.Baselines)
		for _, k := range ks {
			costs, elapsed, err := ienv.runGrid(spec, k, sim.Options{Observe: fs.observe})
			if err != nil {
				return nil, fmt.Errorf("experiments: fig7 %s k=%d: %w", spec.Alg.Name(), k, err)
			}
			fs.clusterNs.ObserveDuration(elapsed)
			out = append(out, Fig7Point{
				Alg:      spec.Alg.Name(),
				K:        k,
				Network:  sim.Improvement(env.Baselines, costs.Network),
				AppLevel: sim.Improvement(env.Baselines, costs.AppLevel),
			})
		}
	}

	nres, err := noloss.Build(env.World, env.Train, nolossCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig7 no-loss build: %w", err)
	}
	fs := newFig7Scope(reg, "no-loss", env.Baselines)
	for _, k := range ks {
		costs, err := sim.EvaluateNoLossObserved(env.Model, env.World, nres, k, ienv.Matcher, env.Eval, fs.observe)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 no-loss k=%d: %w", k, err)
		}
		out = append(out, Fig7Point{
			Alg:      "no-loss",
			K:        k,
			Network:  sim.Improvement(env.Baselines, costs.Network),
			AppLevel: sim.Improvement(env.Baselines, costs.AppLevel),
		})
	}
	return out, nil
}
