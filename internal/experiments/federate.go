package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/federate"
	"repro/internal/topology"
)

// FederatePoint is one row of the federation sweep: the same evaluation
// stream pushed through an in-process federation of N shards, checked
// exactly-once against the brute-force match and timed end to end.
type FederatePoint struct {
	// Shards is the federation width (1 = the router as pure overhead
	// over a single broker).
	Shards int
	// Straddlers counts pre-seeded subscriptions whose rectangle
	// intersects more than one tile — each is registered on every
	// overlapping shard and deduplicated at merge time.
	Straddlers int
	// Stats is the router's cross-shard accounting after the stream.
	Stats federate.Stats
	// P50/P99 are publish→first-merged-delivery latencies.
	P50, P99 time.Duration
	// Duplicates and Missing are exactly-once violations against the
	// brute-force oracle; both must be zero.
	Duplicates int
	Missing    int
}

// FederateSweepConfig parameterises the federation sweep.
type FederateSweepConfig struct {
	ShardCounts []int // federation widths (default 1, 2, 4)
	Groups      int   // per-shard multicast groups K (default 40)
	CellBudget  int   // per-shard clustering cell budget (default 1500)
}

func (c *FederateSweepConfig) setDefaults() {
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 2, 4}
	}
	if c.Groups == 0 {
		c.Groups = 40
	}
	if c.CellBudget == 0 {
		c.CellBudget = 1500
	}
}

// RunFederate replays the evaluation stream through federations of
// increasing width: the subscription space is rectangle-partitioned with
// federate.Derive, one broker per tile serves its tile world, and the
// router fans every event out to the owning shards and merges deliveries.
// Every point is verified exactly-once against the brute-force match of
// the full world.
func RunFederate(env *StockEnv, cfg FederateSweepConfig) ([]FederatePoint, error) {
	cfg.setDefaults()
	pts := make([]FederatePoint, 0, len(cfg.ShardCounts))
	for _, n := range cfg.ShardCounts {
		pt, err := runFederateOne(env, cfg, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: federate %d shards: %w", n, err)
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

func runFederateOne(env *StockEnv, cfg FederateSweepConfig, n int) (FederatePoint, error) {
	tiles, err := federate.Derive(env.World, env.Train, n)
	if err != nil {
		return FederatePoint{}, err
	}

	// Per-copy tally for the oracle, plus a first-delivery signal per
	// global seq for the latency measurement (one publish outstanding at
	// a time, so the channel never backs up).
	type key struct {
		node topology.NodeID
		ev   int
	}
	evIndex := make(map[string]int, len(env.Eval))
	for i, ev := range env.Eval {
		evIndex[fmt.Sprintf("%d|%v", ev.Pub, ev.Point)] = i
	}
	var mu sync.Mutex
	counts := make(map[key]int)
	starts := make(map[int64]time.Time)
	firstCh := make(chan time.Duration, 1)
	r, err := federate.NewRouter(federate.Config{
		Tiles: tiles,
		Observer: func(node topology.NodeID, d broker.Delivery) {
			i, ok := evIndex[fmt.Sprintf("%d|%v", d.Event.Pub, d.Event.Point)]
			if !ok {
				return
			}
			mu.Lock()
			counts[key{node, i}]++
			t0, timed := starts[d.Seq]
			if timed {
				delete(starts, d.Seq)
			}
			mu.Unlock()
			if timed {
				firstCh <- time.Since(t0)
			}
		},
	})
	if err != nil {
		return FederatePoint{}, err
	}
	defer r.Close()
	for i, tile := range tiles {
		tw, err := federate.TileWorld(env.World, tile)
		if err != nil {
			return FederatePoint{}, err
		}
		engine, err := core.NewFromWorld(tw, env.Train, core.Config{
			Groups:     cfg.Groups,
			CellBudget: cfg.CellBudget,
			Algorithm:  &cluster.KMeans{Variant: cluster.Forgy},
		})
		if err != nil {
			return FederatePoint{}, err
		}
		b, err := broker.New(engine, broker.WithObserver(r.ShardObserver(i)))
		if err != nil {
			return FederatePoint{}, err
		}
		if err := r.Attach(i, b); err != nil {
			b.Close()
			return FederatePoint{}, err
		}
	}

	interested := make([]map[topology.NodeID]bool, len(env.Eval))
	for i, ev := range env.Eval {
		interested[i] = map[topology.NodeID]bool{}
		for _, s := range env.World.Subs {
			if s.Rect.Contains(ev.Point) {
				interested[i][s.Owner] = true
			}
		}
	}

	// Router seqs are dense from 0 in publish order, so the start time can
	// be recorded under seq i before the publish (recording after
	// PublishSeq returns would race its own deliveries). Events nobody
	// matches would never signal, so they are published untimed.
	lat := make([]time.Duration, 0, len(env.Eval))
	for i, ev := range env.Eval {
		timed := len(interested[i]) > 0
		if timed {
			mu.Lock()
			starts[int64(i)] = time.Now()
			mu.Unlock()
		}
		if _, err := r.PublishSeq(ev); err != nil {
			return FederatePoint{}, err
		}
		if timed {
			lat = append(lat, <-firstCh)
		}
	}
	if err := r.Close(); err != nil {
		return FederatePoint{}, err
	}

	pt := FederatePoint{Shards: n, Stats: r.Stats()}
	for _, s := range env.World.Subs {
		var cover []int
		if len(tiles.Covering(cover, s.Rect)) > 1 {
			pt.Straddlers++
		}
	}
	mu.Lock()
	for i := range env.Eval {
		for node := range interested[i] {
			switch c := counts[key{node, i}]; {
			case c == 0:
				pt.Missing++
			case c > 1:
				pt.Duplicates += c - 1
			}
		}
	}
	mu.Unlock()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pt.P50 = lat[len(lat)/2]
		pt.P99 = lat[(len(lat)*99)/100]
	}
	return pt, nil
}

// RenderFederate writes the federation sweep as an aligned text table.
func RenderFederate(w io.Writer, title string, pts []FederatePoint) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shards\tstraddlers\tpublished\tfanout\tdelivered\tsuppressed\tdup\tmissing\tp50\tp99")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\t%v\n",
			p.Shards, p.Straddlers, p.Stats.Published, p.Stats.Fanout,
			p.Stats.Delivered, p.Stats.Suppressed, p.Duplicates, p.Missing,
			p.P50.Round(time.Microsecond), p.P99.Round(time.Microsecond))
	}
	return tw.Flush()
}

// RenderFederateCSV writes the federation sweep as CSV.
func RenderFederateCSV(w io.Writer, pts []FederatePoint) error {
	if _, err := fmt.Fprintln(w, "shards,straddlers,published,fanout,delivered,suppressed,duplicates,missing,p50_ns,p99_ns"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			p.Shards, p.Straddlers, p.Stats.Published, p.Stats.Fanout,
			p.Stats.Delivered, p.Stats.Suppressed, p.Duplicates, p.Missing,
			p.P50.Nanoseconds(), p.P99.Nanoseconds()); err != nil {
			return err
		}
	}
	return nil
}
