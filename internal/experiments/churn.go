package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// ChurnPoint is one row of the churn sweep: broker accounting and churn-op
// application latency under one Poisson churn rate.
type ChurnPoint struct {
	// Rate is the expected churn operations per published event.
	Rate float64
	// Ops is the number of churn operations actually applied.
	Ops int
	// PeakAlive is the largest simultaneous count of churned subscriptions.
	PeakAlive int
	Stats     broker.Stats

	// OpLatencyMean/P99 measure the blocking Subscribe/Unsubscribe call —
	// engine mutation plus copy-on-write snapshot publication, as seen by
	// the subscriber.
	OpLatencyMean time.Duration
	OpLatencyP99  time.Duration
	// SwapsPerOp is snapshot publications per churn op (< 1 when the
	// writer coalesces, ≈ 1 under serial churn).
	SwapsPerOp float64
}

// ChurnSweepConfig parameterises the churn sweep.
type ChurnSweepConfig struct {
	Rates         []float64 // churn ops per event (default 0.01, 0.05, 0.1, 0.5)
	Groups        int       // engine multicast groups K (default 40)
	CellBudget    int       // clustering cell budget (default 1500)
	DecideWorkers int       // broker decision workers (default 0 = GOMAXPROCS)
	Seed          int64
}

func (c *ChurnSweepConfig) setDefaults() {
	if len(c.Rates) == 0 {
		c.Rates = []float64{0.01, 0.05, 0.1, 0.5}
	}
	if c.Groups == 0 {
		c.Groups = 40
	}
	if c.CellBudget == 0 {
		c.CellBudget = 1500
	}
}

// RunChurn replays the evaluation events through a live broker while a
// Poisson schedule of Subscribe/Unsubscribe operations churns the
// subscription set — the paper's dynamic-subscription scenario executed
// against the snapshot decision plane instead of a rebuilt-offline engine.
// Every point rebuilds the engine so churned state cannot leak across
// rates.
func RunChurn(env *StockEnv, cfg ChurnSweepConfig) ([]ChurnPoint, error) {
	cfg.setDefaults()
	pts := make([]ChurnPoint, 0, len(cfg.Rates))
	for _, rate := range cfg.Rates {
		engine, err := core.NewFromWorld(env.World, env.Train, core.Config{
			Groups:     cfg.Groups,
			CellBudget: cfg.CellBudget,
			Algorithm:  &cluster.KMeans{Variant: cluster.Forgy},
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: churn engine: %w", err)
		}
		ops, err := sim.GenerateChurn(env.World, sim.ChurnConfig{
			Rate: rate, Events: len(env.Eval), Seed: cfg.Seed + 7,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: churn schedule: %w", err)
		}
		b, err := broker.New(engine, broker.WithDecideWorkers(cfg.DecideWorkers))
		if err != nil {
			return nil, fmt.Errorf("experiments: churn broker: %w", err)
		}

		var slots []int // live churned subscriptions, insertion order
		var opNs []float64
		next := 0
		for i, ev := range env.Eval {
			for next < len(ops) && ops[next].BeforeEvent <= i {
				op := ops[next]
				start := time.Now()
				if op.Subscribe {
					slot, err := b.Subscribe(op.Sub)
					if err != nil {
						b.Close()
						return nil, fmt.Errorf("experiments: churn subscribe: %w", err)
					}
					slots = append(slots, slot)
				} else {
					slot := slots[op.Target]
					slots = append(slots[:op.Target], slots[op.Target+1:]...)
					if err := b.Unsubscribe(slot); err != nil {
						b.Close()
						return nil, fmt.Errorf("experiments: churn unsubscribe: %w", err)
					}
				}
				opNs = append(opNs, float64(time.Since(start).Nanoseconds()))
				next++
			}
			if err := b.Publish(ev); err != nil {
				b.Close()
				return nil, fmt.Errorf("experiments: churn publish: %w", err)
			}
		}
		b.Close()
		st := b.Stats()

		pt := ChurnPoint{
			Rate:      rate,
			Ops:       next,
			PeakAlive: sim.SummarizeChurn(ops).PeakAlive,
			Stats:     st,
		}
		if len(opNs) > 0 {
			sort.Float64s(opNs)
			var sum float64
			for _, v := range opNs {
				sum += v
			}
			pt.OpLatencyMean = time.Duration(sum / float64(len(opNs)))
			pt.OpLatencyP99 = time.Duration(opNs[(len(opNs)*99)/100])
			pt.SwapsPerOp = float64(st.SnapshotSwaps) / float64(len(opNs))
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// RenderChurn writes the churn sweep as an aligned text table.
func RenderChurn(w io.Writer, title string, pts []ChurnPoint) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rate\tops\tpeak alive\tsubs\tunsubs\tswaps\tswaps/op\tdeliveries\twasted\top mean\top p99")
	for _, p := range pts {
		fmt.Fprintf(tw, "%.2f\t%d\t%d\t%d\t%d\t%d\t%.2f\t%d\t%d\t%v\t%v\n",
			p.Rate, p.Ops, p.PeakAlive, p.Stats.Subscribes, p.Stats.Unsubscribes,
			p.Stats.SnapshotSwaps, p.SwapsPerOp, p.Stats.Deliveries, p.Stats.Wasted,
			p.OpLatencyMean.Round(time.Microsecond), p.OpLatencyP99.Round(time.Microsecond))
	}
	return tw.Flush()
}

// RenderChurnCSV writes the churn sweep as CSV.
func RenderChurnCSV(w io.Writer, pts []ChurnPoint) error {
	if _, err := fmt.Fprintln(w, "rate,ops,peak_alive,subscribes,unsubscribes,snapshot_swaps,swaps_per_op,published,deliveries,wasted,op_mean_ns,op_p99_ns"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%.4f,%d,%d,%d,%d,%d,%.4f,%d,%d,%d,%d,%d\n",
			p.Rate, p.Ops, p.PeakAlive, p.Stats.Subscribes, p.Stats.Unsubscribes,
			p.Stats.SnapshotSwaps, p.SwapsPerOp, p.Stats.Published, p.Stats.Deliveries,
			p.Stats.Wasted, p.OpLatencyMean.Nanoseconds(), p.OpLatencyP99.Nanoseconds()); err != nil {
			return err
		}
	}
	return nil
}
