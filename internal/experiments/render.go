package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// RenderTable writes Table 1/2 style rows as an aligned text table.
func RenderTable(w io.Writer, title string, rows []TableRow) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Node\tSub'n\tDist'n\tUnicast\tBroadcast\tIdeal")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%s\t%.0f\t%.0f\t%.0f\n",
			r.Nodes, r.Subs, r.Dist, r.Unicast, r.Broadcast, r.Ideal)
	}
	return tw.Flush()
}

// RenderTableCSV writes Table rows as CSV.
func RenderTableCSV(w io.Writer, rows []TableRow) error {
	if _, err := fmt.Fprintln(w, "nodes,subs,dist,unicast,broadcast,ideal"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%s,%.2f,%.2f,%.2f\n",
			r.Nodes, r.Subs, r.Dist, r.Unicast, r.Broadcast, r.Ideal); err != nil {
			return err
		}
	}
	return nil
}

// RenderFig7 writes Figure 7 points grouped by algorithm, one series per
// block, K ascending.
func RenderFig7(w io.Writer, title string, pts []Fig7Point) error {
	fmt.Fprintf(w, "%s\n", title)
	byAlg := map[string][]Fig7Point{}
	var order []string
	for _, p := range pts {
		if _, ok := byAlg[p.Alg]; !ok {
			order = append(order, p.Alg)
		}
		byAlg[p.Alg] = append(byAlg[p.Alg], p)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tK\tnetwork %\tapp-level %")
	for _, alg := range order {
		series := byAlg[alg]
		sort.Slice(series, func(i, j int) bool { return series[i].K < series[j].K })
		for _, p := range series {
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\n", p.Alg, p.K, p.Network, p.AppLevel)
		}
	}
	return tw.Flush()
}

// RenderFig7CSV writes Figure 7 points as CSV.
func RenderFig7CSV(w io.Writer, pts []Fig7Point) error {
	if _, err := fmt.Fprintln(w, "algorithm,k,network_improvement,applevel_improvement"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%s,%d,%.3f,%.3f\n", p.Alg, p.K, p.Network, p.AppLevel); err != nil {
			return err
		}
	}
	return nil
}

// RenderFig8 writes the No-Loss parameter sweep.
func RenderFig8(w io.Writer, title string, pts []Fig8Point) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rectangles\titerations\tgroups\timprovement %")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\n", p.PoolSize, p.Iterations, p.K, p.Network)
	}
	return tw.Flush()
}

// RenderFig8CSV writes Figure 8 points as CSV.
func RenderFig8CSV(w io.Writer, pts []Fig8Point) error {
	if _, err := fmt.Fprintln(w, "pool_size,iterations,groups,network_improvement"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%.3f\n", p.PoolSize, p.Iterations, p.K, p.Network); err != nil {
			return err
		}
	}
	return nil
}

// RenderFig10 writes the quality/time sweep (Figures 10 and 11 share it).
func RenderFig10(w io.Writer, title string, pts []Fig10Point) error {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tcells\timprovement %\ttime")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%v\n", p.Alg, p.Budget, p.Improvement, p.Elapsed.Round(1e6))
	}
	return tw.Flush()
}

// RenderFig10CSV writes Figure 10/11 points as CSV.
func RenderFig10CSV(w io.Writer, pts []Fig10Point) error {
	if _, err := fmt.Fprintln(w, "algorithm,cells,network_improvement,seconds"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%s,%d,%.3f,%.6f\n", p.Alg, p.Budget, p.Improvement, p.Elapsed.Seconds()); err != nil {
			return err
		}
	}
	return nil
}

// RenderBaseline writes the §5.2 absolute baseline costs.
func RenderBaseline(w io.Writer, r BaselineResult) {
	fmt.Fprintf(w, "§5.2 baseline (%d nodes, %d subscriptions):\n", r.Nodes, r.Subs)
	fmt.Fprintf(w, "  unicast   %.0f\n", r.Baselines.Unicast)
	fmt.Fprintf(w, "  broadcast %.0f\n", r.Baselines.Broadcast)
	fmt.Fprintf(w, "  ideal     %.0f\n", r.Baselines.Ideal)
}
