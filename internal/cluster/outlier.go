package cluster

import (
	"fmt"
	"math"
	"sort"
)

// RemoveOutliers implements the outlier-removal preprocessing the paper
// motivates in §4.1 and defers to future work: hyper-cells with a "rather
// unique combination of subscribers" force waste into whatever group
// absorbs them, and feeding them to the clustering algorithm degrades the
// solution (Figures 10–11 show quality *dropping* as more cells are fed).
//
// A cell's outlier score is its expected-waste distance to its nearest
// neighbour: isolated membership vectors with non-trivial publication mass
// score high. The frac·n highest-scoring cells are removed (they fall back
// to unicast at match time, exactly like cells cut by the cell budget).
// The returned Input preserves rating order; the second result is the
// number of cells removed.
//
// The scan is O(n²) bitset distance computations; with the paper's budgets
// (≤ 6000 cells) this is comparable to one MST clustering pass.
//
// Measured caveat (see EXPERIMENTS.md, ablations): on the paper's own
// workload this policy does not pay off — the highest-scoring cells carry
// real publication mass, and exiling them to unicast costs more than the
// waste they would induce inside a group. The implementation is provided
// to complete the paper's future-work agenda and to let users evaluate it
// on their own workloads.
func RemoveOutliers(in *Input, frac float64) (*Input, int, error) {
	if in == nil || len(in.Cells) == 0 {
		return nil, 0, fmt.Errorf("cluster: empty input")
	}
	if frac < 0 || frac >= 1 {
		return nil, 0, fmt.Errorf("cluster: outlier fraction %v, need [0,1)", frac)
	}
	n := len(in.Cells)
	drop := int(float64(n) * frac)
	if drop == 0 {
		return in, 0, nil
	}
	if drop >= n {
		drop = n - 1
	}

	// Nearest-neighbour expected-waste distance per cell.
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = math.Inf(1)
	}
	for i := 0; i < n; i++ {
		ci := &in.Cells[i]
		for j := i + 1; j < n; j++ {
			cj := &in.Cells[j]
			d := Dist(ci.Prob, ci.Members, cj.Prob, cj.Members)
			if d < scores[i] {
				scores[i] = d
			}
			if d < scores[j] {
				scores[j] = d
			}
		}
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Highest score first; ties keep the lower-rated (later) cell so the
	// popular cells survive.
	sort.SliceStable(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] > order[b]
	})
	dropped := make(map[int]bool, drop)
	for _, i := range order[:drop] {
		dropped[i] = true
	}

	out := &Input{
		NumSubscribers:  in.NumSubscribers,
		TotalHyperCells: in.TotalHyperCells,
		Cells:           make([]HyperCell, 0, n-drop),
	}
	for i := range in.Cells {
		if !dropped[i] {
			out.Cells = append(out.Cells, in.Cells[i])
		}
	}
	return out, drop, nil
}
