package cluster

import (
	"fmt"

	"repro/internal/bitset"
)

// Variant selects between the two iterative K-means flavours studied in the
// paper (§4.2): MacQueen updates a cluster's membership vector after every
// single move, Forgy applies a whole pass of assignments before updating.
type Variant uint8

// K-means variants.
const (
	MacQueen Variant = iota
	Forgy
)

func (v Variant) String() string {
	switch v {
	case MacQueen:
		return "k-means"
	case Forgy:
		return "forgy"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// KMeans is the iterative cell-clustering algorithm. The zero value is a
// MacQueen K-means with the paper's default iteration cap, sharding its
// frozen-vector distance scans across GOMAXPROCS workers.
type KMeans struct {
	Variant Variant
	// MaxIters caps re-assignment passes; the paper uses 100 and observes
	// convergence in under 20. Defaults to 100 when 0.
	MaxIters int
	// Parallelism is the worker count for the frozen-vector distance scans
	// (initial seeding and the Forgy assignment pass): 0 means GOMAXPROCS,
	// 1 forces the sequential path. Assignments are byte-identical for
	// every worker count.
	Parallelism int
}

// Name implements Algorithm.
func (k *KMeans) Name() string { return k.Variant.String() }

// SetParallelism implements Parallel.
func (k *KMeans) SetParallelism(workers int) { k.Parallelism = workers }

// kstate tracks the mutable cluster vectors: per-subscriber containment
// counts (so removals are exact), the derived membership bitsets, the
// probability mass and the cell count of every cluster.
type kstate struct {
	in      *Input
	counts  [][]int32
	members []*bitset.Set
	ones    []int // ones[g] = st.members[g].Count(), maintained incrementally
	prob    []float64
	size    []int
	assign  Assignment
	workers int
	// cellOnes[ci] = in.Cells[ci].Members.Count(), precomputed once so the
	// nearest-group scan can derive both AND-NOT counts from intersection
	// counts alone (one popcount per word instead of two).
	cellOnes []int
	// xCnt is the sequential-path scratch buffer for the batched
	// intersection scan; sharded passes allocate per-worker copies.
	xCnt []int
}

func newKState(in *Input, k, workers int) *kstate {
	st := &kstate{
		in:       in,
		counts:   make([][]int32, k),
		members:  make([]*bitset.Set, k),
		ones:     make([]int, k),
		prob:     make([]float64, k),
		size:     make([]int, k),
		assign:   make(Assignment, len(in.Cells)),
		workers:  workers,
		cellOnes: make([]int, len(in.Cells)),
		xCnt:     make([]int, k),
	}
	for g := 0; g < k; g++ {
		st.counts[g] = make([]int32, in.NumSubscribers)
		st.members[g] = bitset.New(in.NumSubscribers)
	}
	for ci := range in.Cells {
		st.cellOnes[ci] = in.Cells[ci].Members.Count()
	}
	for i := range st.assign {
		st.assign[i] = -1
	}
	return st
}

func (st *kstate) add(ci, g int) {
	cell := &st.in.Cells[ci]
	cell.ForEachMember(func(i int) bool {
		st.counts[g][i]++
		if st.counts[g][i] == 1 {
			st.members[g].Set(i)
			st.ones[g]++
		}
		return true
	})
	st.prob[g] += cell.Prob
	st.size[g]++
	st.assign[ci] = g
}

func (st *kstate) remove(ci int) {
	g := st.assign[ci]
	cell := &st.in.Cells[ci]
	cell.ForEachMember(func(i int) bool {
		st.counts[g][i]--
		if st.counts[g][i] == 0 {
			st.members[g].Clear(i)
			st.ones[g]--
		}
		return true
	})
	st.prob[g] -= cell.Prob
	st.size[g]--
	st.assign[ci] = -1
}

// closest returns the group whose membership vector is nearest to cell ci
// under the expected-waste distance. Ties break to the lowest group index.
func (st *kstate) closest(ci int) int {
	return st.closestWith(ci, st.xCnt)
}

// closestWith is closest with caller-owned scratch (len ≥ #groups), so
// sharded passes can evaluate cells concurrently. The cell's words are
// streamed once against all K group vectors via the batched intersection
// kernel instead of rescanned per group; both AND-NOT counts fall out of
// the tracked cardinalities (|a ∖ g| = |a| − x, |g ∖ a| = |g| − x), so the
// scan pays one popcount per word where the naive loop pays four. The
// subtractions are exact integer arithmetic, so the distances — and the
// chosen group — are bit-identical to the two-scan formulation.
func (st *kstate) closestWith(ci int, xCnt []int) int {
	cell := &st.in.Cells[ci]
	if cell.Packed != nil {
		// Sparse cell: the compressed scan touches only its populated
		// chunks of the K group vectors instead of every word. The counts
		// are bit-identical (proven by the compressed-vs-dense property
		// tests), so the chosen group is too.
		bitset.IntersectManyPacked(cell.Packed, st.members, xCnt)
	} else {
		bitset.IntersectMany(cell.Members, st.members, xCnt)
	}
	ca := st.cellOnes[ci]
	best, bestD := -1, 0.0
	for g := range st.members {
		x := xCnt[g]
		d := cell.Prob*float64(ca-x) + st.prob[g]*float64(st.ones[g]-x)
		if best == -1 || d < bestD {
			best, bestD = g, d
		}
	}
	return best
}

// computeTargets fills target[i] with the closest group of cell id(i),
// evaluated against the frozen current cluster vectors and sharded across
// the state's workers. Shards write disjoint target slots from read-only
// state, so the result is identical for every worker count.
func (st *kstate) computeTargets(n int, id func(int) int, target []int) {
	parallelRange(st.workers, n, func(lo, hi int) {
		xCnt := st.xCnt
		var sc *bitset.Scratch
		if lo != 0 || hi != n { // sharded: pooled private scratch per worker
			sc = bitset.GetScratch()
			xCnt = sc.Ints(len(st.members))
		}
		for i := lo; i < hi; i++ {
			target[i] = st.closestWith(id(i), xCnt)
		}
		if sc != nil {
			sc.Release()
		}
	})
}

// seedWaves assigns cells id(0) … id(n-1) to their closest groups in
// geometrically growing waves: each wave's targets are computed against the
// vectors frozen at the wave boundary (sharded across workers), then
// applied in ascending order. Small early waves preserve the solution
// quality of fully incremental seeding — group vectors update often while
// the groups are still small and malleable — while the later, large waves
// carry the bulk of the O(n·K) distance scans and shard efficiently. The
// wave schedule is a pure function of (n, K), so assignments are
// byte-identical for every worker count.
func (st *kstate) seedWaves(n int, id func(int) int) {
	if n <= 0 {
		return
	}
	wave := len(st.members) // start at K, the number of groups
	if wave < 4 {
		wave = 4
	}
	target := make([]int, 0, n)
	for start := 0; start < n; start, wave = start+wave, wave*2 {
		end := start + wave
		if end > n {
			end = n
		}
		target = target[:end-start]
		st.computeTargets(end-start, func(i int) int { return id(start + i) }, target)
		for i, g := range target {
			st.add(id(start+i), g)
		}
	}
}

// Cluster implements Algorithm.
func (k *KMeans) Cluster(in *Input, groups int) (Assignment, error) {
	if err := validateK(in, groups); err != nil {
		return nil, err
	}
	if groups >= len(in.Cells) {
		return singletonAssignment(len(in.Cells)), nil
	}
	maxIters := k.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}

	st := newKState(in, groups, resolveWorkers(k.Parallelism))
	// Step 0 — initial partition: the K most popular hyper-cells seed the
	// groups (cells arrive rating-sorted from BuildInput); the remainder
	// join their closest group in geometrically growing waves, sharding the
	// distance scans across workers deterministically.
	for g := 0; g < groups; g++ {
		st.add(g, g)
	}
	st.seedWaves(len(in.Cells)-groups, func(i int) int { return groups + i })

	switch k.Variant {
	case MacQueen:
		k.runMacQueen(st, maxIters)
	case Forgy:
		k.runForgy(st, maxIters)
	default:
		return nil, fmt.Errorf("cluster: unknown k-means variant %d", k.Variant)
	}
	return st.assign, nil
}

// ClusterWarm resumes iterative clustering from a prior assignment — the
// paper's subscription-dynamics story (§6, item 5): when subscriptions
// change, a few re-balancing passes from the previous partition are far
// cheaper than clustering from scratch. initial maps each cell to a group
// in [0, groups); cells with initial[i] < 0 join their closest group after
// the seeded cells are placed.
func (k *KMeans) ClusterWarm(in *Input, groups int, initial Assignment, iters int) (Assignment, error) {
	if err := validateK(in, groups); err != nil {
		return nil, err
	}
	if len(initial) != len(in.Cells) {
		return nil, fmt.Errorf("cluster: warm start has %d entries for %d cells", len(initial), len(in.Cells))
	}
	if groups >= len(in.Cells) {
		return singletonAssignment(len(in.Cells)), nil
	}
	if iters <= 0 {
		iters = 1
	}
	st := newKState(in, groups, resolveWorkers(k.Parallelism))
	var unplaced []int
	for ci, g := range initial {
		if g >= groups {
			return nil, fmt.Errorf("cluster: warm start group %d out of range [0,%d)", g, groups)
		}
		if g < 0 {
			unplaced = append(unplaced, ci)
			continue
		}
		st.add(ci, g)
	}
	// Guarantee every group is non-empty (closest() must see live vectors
	// and the move rules assume no empty groups): seed empties with the
	// most popular unplaced or already-placed cells.
	for g := 0; g < groups; g++ {
		if st.size[g] > 0 {
			continue
		}
		if len(unplaced) > 0 {
			st.add(unplaced[0], g)
			unplaced = unplaced[1:]
			continue
		}
		for ci := range in.Cells {
			if st.size[st.assign[ci]] > 1 {
				st.remove(ci)
				st.add(ci, g)
				break
			}
		}
	}
	st.seedWaves(len(unplaced), func(i int) int { return unplaced[i] })
	switch k.Variant {
	case MacQueen:
		k.runMacQueen(st, iters)
	case Forgy:
		k.runForgy(st, iters)
	default:
		return nil, fmt.Errorf("cluster: unknown k-means variant %d", k.Variant)
	}
	return st.assign, nil
}

// cycleDetector remembers every end-of-pass assignment and reports when a
// state recurs. Both K-means variants are deterministic maps from one
// assignment to the next (the cluster vectors are a pure function of the
// assignment), so a repeated state proves the iteration has entered a limit
// cycle and will never converge — further passes are provably wasted work.
// On inputs that do converge, detection costs one hash and one snapshot of
// the int slice per pass, noise next to the O(n·K) distance scans.
type cycleDetector struct {
	hashes []uint64
	snaps  []Assignment
}

// seen reports whether a has occurred at the end of an earlier pass, and
// records it otherwise.
func (c *cycleDetector) seen(a Assignment) bool {
	var h uint64 = 14695981039346656037
	for _, g := range a {
		h = (h ^ uint64(uint(g))) * 1099511628211
	}
	for idx, ph := range c.hashes {
		if ph != h {
			continue
		}
		same := true
		for i, g := range c.snaps[idx] {
			if g != a[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	c.hashes = append(c.hashes, h)
	c.snaps = append(c.snaps, append(Assignment(nil), a...))
	return false
}

// runMacQueen re-assigns cells one at a time, updating cluster vectors
// after every move, until a full pass moves nothing or the pass-to-pass
// state starts cycling.
func (k *KMeans) runMacQueen(st *kstate, maxIters int) {
	var cd cycleDetector
	for iter := 0; iter < maxIters; iter++ {
		moved := false
		for ci := range st.in.Cells {
			cur := st.assign[ci]
			if st.size[cur] == 1 {
				continue // a cluster may not lose its last cell
			}
			best := st.closest(ci)
			if best != cur {
				st.remove(ci)
				st.add(ci, best)
				moved = true
			}
		}
		if !moved || cd.seen(st.assign) {
			return
		}
	}
}

// runForgy computes a whole pass of assignments against frozen cluster
// vectors, then applies the moves and updates. The assignment pass is
// embarrassingly parallel (the vectors are frozen), so it shards across
// the configured workers. Forgy's synchronous updates are prone to limit
// cycles (group masses shift wholesale between passes), so the loop also
// stops on the first repeated end-of-pass state.
func (k *KMeans) runForgy(st *kstate, maxIters int) {
	n := len(st.in.Cells)
	target := make([]int, n)
	ident := func(i int) int { return i }
	var cd cycleDetector
	for iter := 0; iter < maxIters; iter++ {
		st.computeTargets(n, ident, target)
		moved := false
		for ci, want := range target {
			cur := st.assign[ci]
			if want == cur || st.size[cur] == 1 {
				continue
			}
			st.remove(ci)
			st.add(ci, want)
			moved = true
		}
		if !moved || cd.seen(st.assign) {
			return
		}
	}
}
