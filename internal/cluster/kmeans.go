package cluster

import (
	"fmt"

	"repro/internal/bitset"
)

// Variant selects between the two iterative K-means flavours studied in the
// paper (§4.2): MacQueen updates a cluster's membership vector after every
// single move, Forgy applies a whole pass of assignments before updating.
type Variant uint8

// K-means variants.
const (
	MacQueen Variant = iota
	Forgy
)

func (v Variant) String() string {
	switch v {
	case MacQueen:
		return "k-means"
	case Forgy:
		return "forgy"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// KMeans is the iterative cell-clustering algorithm. The zero value is a
// MacQueen K-means with the paper's default iteration cap.
type KMeans struct {
	Variant Variant
	// MaxIters caps re-assignment passes; the paper uses 100 and observes
	// convergence in under 20. Defaults to 100 when 0.
	MaxIters int
}

// Name implements Algorithm.
func (k *KMeans) Name() string { return k.Variant.String() }

// kstate tracks the mutable cluster vectors: per-subscriber containment
// counts (so removals are exact), the derived membership bitsets, the
// probability mass and the cell count of every cluster.
type kstate struct {
	in      *Input
	counts  [][]int32
	members []*bitset.Set
	prob    []float64
	size    []int
	assign  Assignment
}

func newKState(in *Input, k int) *kstate {
	st := &kstate{
		in:      in,
		counts:  make([][]int32, k),
		members: make([]*bitset.Set, k),
		prob:    make([]float64, k),
		size:    make([]int, k),
		assign:  make(Assignment, len(in.Cells)),
	}
	for g := 0; g < k; g++ {
		st.counts[g] = make([]int32, in.NumSubscribers)
		st.members[g] = bitset.New(in.NumSubscribers)
	}
	for i := range st.assign {
		st.assign[i] = -1
	}
	return st
}

func (st *kstate) add(ci, g int) {
	cell := &st.in.Cells[ci]
	cell.Members.ForEach(func(i int) bool {
		st.counts[g][i]++
		if st.counts[g][i] == 1 {
			st.members[g].Set(i)
		}
		return true
	})
	st.prob[g] += cell.Prob
	st.size[g]++
	st.assign[ci] = g
}

func (st *kstate) remove(ci int) {
	g := st.assign[ci]
	cell := &st.in.Cells[ci]
	cell.Members.ForEach(func(i int) bool {
		st.counts[g][i]--
		if st.counts[g][i] == 0 {
			st.members[g].Clear(i)
		}
		return true
	})
	st.prob[g] -= cell.Prob
	st.size[g]--
	st.assign[ci] = -1
}

// closest returns the group whose membership vector is nearest to cell ci
// under the expected-waste distance.
func (st *kstate) closest(ci int) int {
	cell := &st.in.Cells[ci]
	best, bestD := -1, 0.0
	for g := range st.members {
		d := Dist(cell.Prob, cell.Members, st.prob[g], st.members[g])
		if best == -1 || d < bestD {
			best, bestD = g, d
		}
	}
	return best
}

// Cluster implements Algorithm.
func (k *KMeans) Cluster(in *Input, groups int) (Assignment, error) {
	if err := validateK(in, groups); err != nil {
		return nil, err
	}
	if groups >= len(in.Cells) {
		return singletonAssignment(len(in.Cells)), nil
	}
	maxIters := k.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}

	st := newKState(in, groups)
	// Step 0 — initial partition: the K most popular hyper-cells seed the
	// groups (cells arrive rating-sorted from BuildInput); the remainder
	// join their closest group.
	for g := 0; g < groups; g++ {
		st.add(g, g)
	}
	for ci := groups; ci < len(in.Cells); ci++ {
		st.add(ci, st.closest(ci))
	}

	switch k.Variant {
	case MacQueen:
		k.runMacQueen(st, maxIters)
	case Forgy:
		k.runForgy(st, maxIters)
	default:
		return nil, fmt.Errorf("cluster: unknown k-means variant %d", k.Variant)
	}
	return st.assign, nil
}

// ClusterWarm resumes iterative clustering from a prior assignment — the
// paper's subscription-dynamics story (§6, item 5): when subscriptions
// change, a few re-balancing passes from the previous partition are far
// cheaper than clustering from scratch. initial maps each cell to a group
// in [0, groups); cells with initial[i] < 0 join their closest group after
// the seeded cells are placed.
func (k *KMeans) ClusterWarm(in *Input, groups int, initial Assignment, iters int) (Assignment, error) {
	if err := validateK(in, groups); err != nil {
		return nil, err
	}
	if len(initial) != len(in.Cells) {
		return nil, fmt.Errorf("cluster: warm start has %d entries for %d cells", len(initial), len(in.Cells))
	}
	if groups >= len(in.Cells) {
		return singletonAssignment(len(in.Cells)), nil
	}
	if iters <= 0 {
		iters = 1
	}
	st := newKState(in, groups)
	var unplaced []int
	for ci, g := range initial {
		if g >= groups {
			return nil, fmt.Errorf("cluster: warm start group %d out of range [0,%d)", g, groups)
		}
		if g < 0 {
			unplaced = append(unplaced, ci)
			continue
		}
		st.add(ci, g)
	}
	// Guarantee every group is non-empty (closest() must see live vectors
	// and the move rules assume no empty groups): seed empties with the
	// most popular unplaced or already-placed cells.
	for g := 0; g < groups; g++ {
		if st.size[g] > 0 {
			continue
		}
		if len(unplaced) > 0 {
			st.add(unplaced[0], g)
			unplaced = unplaced[1:]
			continue
		}
		for ci := range in.Cells {
			if st.size[st.assign[ci]] > 1 {
				st.remove(ci)
				st.add(ci, g)
				break
			}
		}
	}
	for _, ci := range unplaced {
		st.add(ci, st.closest(ci))
	}
	switch k.Variant {
	case MacQueen:
		k.runMacQueen(st, iters)
	case Forgy:
		k.runForgy(st, iters)
	default:
		return nil, fmt.Errorf("cluster: unknown k-means variant %d", k.Variant)
	}
	return st.assign, nil
}

// runMacQueen re-assigns cells one at a time, updating cluster vectors
// after every move, until a full pass moves nothing.
func (k *KMeans) runMacQueen(st *kstate, maxIters int) {
	for iter := 0; iter < maxIters; iter++ {
		moved := false
		for ci := range st.in.Cells {
			cur := st.assign[ci]
			if st.size[cur] == 1 {
				continue // a cluster may not lose its last cell
			}
			best := st.closest(ci)
			if best != cur {
				st.remove(ci)
				st.add(ci, best)
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}

// runForgy computes a whole pass of assignments against frozen cluster
// vectors, then applies the moves and updates.
func (k *KMeans) runForgy(st *kstate, maxIters int) {
	target := make([]int, len(st.in.Cells))
	for iter := 0; iter < maxIters; iter++ {
		for ci := range st.in.Cells {
			target[ci] = st.closest(ci)
		}
		moved := false
		for ci, want := range target {
			cur := st.assign[ci]
			if want == cur || st.size[cur] == 1 {
				continue
			}
			st.remove(ci)
			st.add(ci, want)
			moved = true
		}
		if !moved {
			return
		}
	}
}
