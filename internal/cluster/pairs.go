package cluster

import (
	"fmt"
	"math"

	"repro/internal/bitset"
)

// Pairwise is the bottom-up pairwise grouping algorithm (§4.3): every
// hyper-cell starts in its own group and the two groups at minimum
// expected-waste distance merge until K groups remain.
//
// With Approx set, each merge step uses the secretary rule instead of an
// exhaustive minimum: it inspects a 1/e fraction of the candidate pairs,
// remembers the best, then takes the first later pair that beats it. This
// trades solution quality for speed, as in the paper.
type Pairwise struct {
	Approx bool
}

// Name implements Algorithm.
func (p *Pairwise) Name() string {
	if p.Approx {
		return "approx-pairs"
	}
	return "pairs"
}

// pairState tracks live groups during agglomeration.
type pairState struct {
	members []*bitset.Set
	prob    []float64
	alive   []bool
	liveIDs []int // indices of live groups, maintained compactly
}

func newPairState(in *Input) *pairState {
	n := len(in.Cells)
	st := &pairState{
		members: make([]*bitset.Set, n),
		prob:    make([]float64, n),
		alive:   make([]bool, n),
		liveIDs: make([]int, n),
	}
	for i := range in.Cells {
		st.members[i] = in.Cells[i].Members.Clone()
		st.prob[i] = in.Cells[i].Prob
		st.alive[i] = true
		st.liveIDs[i] = i
	}
	return st
}

func (st *pairState) dist(i, j int) float64 {
	return Dist(st.prob[i], st.members[i], st.prob[j], st.members[j])
}

// merge folds group j into group i and removes j from the live list.
func (st *pairState) merge(i, j int) {
	st.members[i].UnionWith(st.members[j])
	st.prob[i] += st.prob[j]
	st.alive[j] = false
	for k, id := range st.liveIDs {
		if id == j {
			st.liveIDs = append(st.liveIDs[:k], st.liveIDs[k+1:]...)
			break
		}
	}
}

// Cluster implements Algorithm.
func (p *Pairwise) Cluster(in *Input, k int) (Assignment, error) {
	if err := validateK(in, k); err != nil {
		return nil, err
	}
	n := len(in.Cells)
	if k >= n {
		return singletonAssignment(n), nil
	}

	st := newPairState(in)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}

	if p.Approx {
		p.runApprox(st, parent, k)
	} else {
		p.runExact(st, parent, k)
	}

	// Compress merge forest into an assignment.
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	assign := make(Assignment, n)
	for i := range assign {
		assign[i] = find(i)
	}
	return assign, nil
}

// runExact maintains the live×live distance matrix and each live group's
// nearest neighbour, the classic O(n²) agglomerative implementation.
func (p *Pairwise) runExact(st *pairState, parent []int, k int) {
	n := len(st.members)
	dm := make([][]float32, n)
	for i := range dm {
		dm[i] = make([]float32, n)
	}
	for a, i := range st.liveIDs {
		for _, j := range st.liveIDs[a+1:] {
			d := float32(st.dist(i, j))
			dm[i][j] = d
			dm[j][i] = d
		}
	}
	nn := make([]int, n) // nearest live neighbour of each live group
	recomputeNN := func(i int) {
		best, bestD := -1, float32(math.Inf(1))
		for _, j := range st.liveIDs {
			if j != i && dm[i][j] < bestD {
				best, bestD = j, dm[i][j]
			}
		}
		nn[i] = best
	}
	for _, i := range st.liveIDs {
		recomputeNN(i)
	}

	for len(st.liveIDs) > k {
		// Global minimum over nearest-neighbour candidates.
		bi := -1
		var bd float32
		for _, i := range st.liveIDs {
			if j := nn[i]; j >= 0 {
				if bi == -1 || dm[i][j] < bd {
					bi, bd = i, dm[i][j]
				}
			}
		}
		i, j := bi, nn[bi]
		st.merge(i, j)
		parent[j] = i
		for _, l := range st.liveIDs {
			if l != i {
				d := float32(st.dist(i, l))
				dm[i][l] = d
				dm[l][i] = d
			}
		}
		recomputeNN(i)
		for _, l := range st.liveIDs {
			if l == i {
				continue
			}
			if nn[l] == i || nn[l] == j {
				recomputeNN(l)
			} else if dm[l][i] < dm[l][nn[l]] {
				// The merged group moved closer than l's previous nearest.
				nn[l] = i
			}
		}
	}
}

// runApprox performs each merge with the secretary stopping rule over a
// deterministic-but-scrambled enumeration of live pairs: remember the best
// distance among the first 1/e of the stream, then take the first later
// pair that beats it. Distances are cached in a matrix (only the merged
// group's row changes per step), so the approximation — and the speedup —
// lies in the merge selection: unlike the exact variant it never maintains
// nearest-neighbour lists and may pick a suboptimal pair.
func (p *Pairwise) runApprox(st *pairState, parent []int, k int) {
	n := len(st.members)
	dm := make([][]float32, n)
	for i := range dm {
		dm[i] = make([]float32, n)
	}
	for a, i := range st.liveIDs {
		for _, j := range st.liveIDs[a+1:] {
			d := float32(st.dist(i, j))
			dm[i][j] = d
			dm[j][i] = d
		}
	}

	for len(st.liveIDs) > k {
		live := st.liveIDs
		m := len(live)
		totalPairs := m * (m - 1) / 2
		sample := int(math.Ceil(float64(totalPairs) / math.E))

		bi, bj := -1, -1
		bd := float32(math.Inf(1))
		seen := 0
		// Enumerate pairs with a stride coprime to m to decorrelate the
		// scan order from group age.
		stride := 1
		if m > 2 {
			stride = m/2 + 1
			for gcd(stride, m) != 1 {
				stride++
			}
		}
		done := false
		for a := 0; a < m && !done; a++ {
			ia := (a * stride) % m
			row := dm[live[ia]]
			for b := a + 1; b < m; b++ {
				ib := (b * stride) % m
				d := row[live[ib]]
				seen++
				if d < bd {
					bd = d
					bi, bj = live[ia], live[ib]
					// Past the sample: take the first improvement.
					if seen > sample {
						done = true
						break
					}
				}
			}
		}
		st.merge(bi, bj)
		parent[bj] = bi
		for _, l := range st.liveIDs {
			if l != bi {
				d := float32(st.dist(bi, l))
				dm[bi][l] = d
				dm[l][bi] = d
			}
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// sanity check that both modes satisfy Algorithm at compile time.
var (
	_ Algorithm = (*Pairwise)(nil)
	_ Algorithm = (*KMeans)(nil)
)

// String implements fmt.Stringer for diagnostics.
func (p *Pairwise) String() string {
	return fmt.Sprintf("Pairwise{Approx: %v}", p.Approx)
}
