package cluster

import (
	"fmt"
	"math"

	"repro/internal/bitset"
)

// Pairwise is the bottom-up pairwise grouping algorithm (§4.3): every
// hyper-cell starts in its own group and the two groups at minimum
// expected-waste distance merge until K groups remain.
//
// With Approx set, each merge step uses the secretary rule instead of an
// exhaustive minimum: it inspects a 1/e fraction of the candidate pairs,
// remembers the best, then takes the first later pair that beats it. This
// trades solution quality for speed, as in the paper.
type Pairwise struct {
	Approx bool
	// Parallelism is the worker count for the O(n²) distance-matrix seed
	// and the per-merge row recomputes: 0 means GOMAXPROCS, 1 forces the
	// sequential path. Assignments are byte-identical for every worker
	// count (all argmin reductions tie-break by lowest index).
	Parallelism int
}

// Name implements Algorithm.
func (p *Pairwise) Name() string {
	if p.Approx {
		return "approx-pairs"
	}
	return "pairs"
}

// SetParallelism implements Parallel.
func (p *Pairwise) SetParallelism(workers int) { p.Parallelism = workers }

// pairState tracks live groups during agglomeration.
type pairState struct {
	members []*bitset.Set
	ones    []int // ones[i] = members[i].Count(), maintained across merges
	prob    []float64
	alive   []bool
	liveIDs []int // indices of live groups, order arbitrary
	pos     []int // pos[id] = index of id in liveIDs, -1 once merged away
	workers int
}

func newPairState(in *Input, workers int) *pairState {
	n := len(in.Cells)
	st := &pairState{
		members: make([]*bitset.Set, n),
		ones:    make([]int, n),
		prob:    make([]float64, n),
		alive:   make([]bool, n),
		liveIDs: make([]int, n),
		pos:     make([]int, n),
		workers: workers,
	}
	for i := range in.Cells {
		st.members[i] = in.Cells[i].Members.Clone()
		st.ones[i] = st.members[i].Count()
		st.prob[i] = in.Cells[i].Prob
		st.alive[i] = true
		st.liveIDs[i] = i
		st.pos[i] = i
	}
	return st
}

// dist is the expected-waste distance computed from the intersection count
// and the tracked cardinalities: |a ∖ b| = |a| − |a ∩ b| is exact integer
// arithmetic, so the value is bit-identical to the two-AND-NOT-scan form of
// Dist while touching each word pair once instead of twice.
func (st *pairState) dist(i, j int) float64 {
	x := st.members[i].IntersectCount(st.members[j])
	return st.prob[i]*float64(st.ones[i]-x) + st.prob[j]*float64(st.ones[j]-x)
}

// merge folds group j into group i and removes j from the live list by
// swap-remove through the position index — O(1) where the previous linear
// scan cost O(n) bookkeeping per merge on top of the distance work. The
// live order is permuted, which is fine: every consumer either tie-breaks
// by index explicitly or only needs determinism, not a fixed order. The
// fused union kernel refreshes the merged group's cardinality in the same
// pass that writes it.
func (st *pairState) merge(i, j int) {
	st.ones[i] = st.members[i].UnionWithCount(st.members[j])
	st.prob[i] += st.prob[j]
	st.alive[j] = false
	p, last := st.pos[j], len(st.liveIDs)-1
	moved := st.liveIDs[last]
	st.liveIDs[p] = moved
	st.pos[moved] = p
	st.liveIDs = st.liveIDs[:last]
	st.pos[j] = -1
}

// matrix is the symmetric live×live distance cache backed by one flat
// allocation (row i is dm[i*n : (i+1)*n]).
type matrix struct {
	d []float32
	n int
}

func newMatrix(n int) *matrix { return &matrix{d: make([]float32, n*n), n: n} }

func (m *matrix) at(i, j int) float32 { return m.d[i*m.n+j] }

func (m *matrix) set(i, j int, v float32) {
	m.d[i*m.n+j] = v
	m.d[j*m.n+i] = v
}

// buildMatrix seeds the full pairwise distance matrix. Rows shard across
// workers in strided order so the triangle's uneven row lengths balance;
// every (i, j) pair writes its own two cells, so shards never collide.
func (st *pairState) buildMatrix(dm *matrix) {
	m := len(st.liveIDs)
	workers := st.workers
	if m < minParallelItems {
		workers = 1
	}
	runWorkers(workers, func(w int) {
		for a := w; a < m; a += workers {
			i := st.liveIDs[a]
			for _, j := range st.liveIDs[a+1:] {
				dm.set(i, j, float32(st.dist(i, j)))
			}
		}
	})
}

// refreshRow recomputes the merged group i's distances to every live group,
// sharded across workers (disjoint writes, frozen membership vectors).
func (st *pairState) refreshRow(i int, dm *matrix) {
	live := st.liveIDs
	parallelRange(st.workers, len(live), func(lo, hi int) {
		for _, l := range live[lo:hi] {
			if l != i {
				dm.set(i, l, float32(st.dist(i, l)))
			}
		}
	})
}

// Cluster implements Algorithm.
func (p *Pairwise) Cluster(in *Input, k int) (Assignment, error) {
	if err := validateK(in, k); err != nil {
		return nil, err
	}
	n := len(in.Cells)
	if k >= n {
		return singletonAssignment(n), nil
	}

	st := newPairState(in, resolveWorkers(p.Parallelism))
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}

	if p.Approx {
		p.runApprox(st, parent, k)
	} else {
		p.runExact(st, parent, k)
	}

	// Compress merge forest into an assignment.
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	assign := make(Assignment, n)
	for i := range assign {
		assign[i] = find(i)
	}
	return assign, nil
}

// runExact maintains the live×live distance matrix and each live group's
// nearest neighbour, the classic O(n²) agglomerative implementation. All
// minimum searches tie-break by lowest group index, so the result does not
// depend on the live list's order or the worker count.
func (p *Pairwise) runExact(st *pairState, parent []int, k int) {
	n := len(st.members)
	dm := newMatrix(n)
	st.buildMatrix(dm)
	nn := make([]int, n) // nearest live neighbour of each live group
	recomputeNN := func(i int) {
		best, bestD := -1, float32(math.Inf(1))
		for _, j := range st.liveIDs {
			if j == i {
				continue
			}
			if d := dm.at(i, j); d < bestD || (d == bestD && (best == -1 || j < best)) {
				best, bestD = j, d
			}
		}
		nn[i] = best
	}
	for _, i := range st.liveIDs {
		recomputeNN(i)
	}

	for len(st.liveIDs) > k {
		// Global minimum over nearest-neighbour candidates, lowest pair
		// index winning ties.
		bi := -1
		var bd float32
		for _, i := range st.liveIDs {
			j := nn[i]
			if j < 0 {
				continue
			}
			d := dm.at(i, j)
			if bi == -1 || d < bd || (d == bd && i < bi) {
				bi, bd = i, d
			}
		}
		i, j := bi, nn[bi]
		st.merge(i, j)
		parent[j] = i
		st.refreshRow(i, dm)
		recomputeNN(i)
		for _, l := range st.liveIDs {
			if l == i {
				continue
			}
			if nn[l] == i || nn[l] == j {
				recomputeNN(l)
			} else if dm.at(l, i) < dm.at(l, nn[l]) {
				// The merged group moved closer than l's previous nearest.
				nn[l] = i
			}
		}
	}
}

// runApprox performs each merge with the secretary stopping rule over a
// deterministic-but-scrambled enumeration of live pairs: remember the best
// distance among the first 1/e of the stream, then take the first later
// pair that beats it. Distances are cached in a matrix (only the merged
// group's row changes per step), so the approximation — and the speedup —
// lies in the merge selection: unlike the exact variant it never maintains
// nearest-neighbour lists and may pick a suboptimal pair. The enumeration
// order is a pure function of the live list, which evolves identically for
// every worker count, so results stay deterministic and worker-independent.
func (p *Pairwise) runApprox(st *pairState, parent []int, k int) {
	n := len(st.members)
	dm := newMatrix(n)
	st.buildMatrix(dm)

	for len(st.liveIDs) > k {
		live := st.liveIDs
		m := len(live)
		totalPairs := m * (m - 1) / 2
		sample := int(math.Ceil(float64(totalPairs) / math.E))

		bi, bj := -1, -1
		bd := float32(math.Inf(1))
		seen := 0
		// Enumerate pairs with a stride coprime to m to decorrelate the
		// scan order from group age.
		stride := 1
		if m > 2 {
			stride = m/2 + 1
			for gcd(stride, m) != 1 {
				stride++
			}
		}
		done := false
		for a := 0; a < m && !done; a++ {
			ia := (a * stride) % m
			row := dm.d[live[ia]*dm.n : (live[ia]+1)*dm.n]
			for b := a + 1; b < m; b++ {
				ib := (b * stride) % m
				d := row[live[ib]]
				seen++
				if d < bd {
					bd = d
					bi, bj = live[ia], live[ib]
					// Past the sample: take the first improvement.
					if seen > sample {
						done = true
						break
					}
				}
			}
		}
		st.merge(bi, bj)
		parent[bj] = bi
		st.refreshRow(bi, dm)
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// sanity check that both modes satisfy Algorithm (and the parallel option)
// at compile time.
var (
	_ Algorithm = (*Pairwise)(nil)
	_ Algorithm = (*KMeans)(nil)
	_ Parallel  = (*Pairwise)(nil)
	_ Parallel  = (*KMeans)(nil)
)

// String implements fmt.Stringer for diagnostics.
func (p *Pairwise) String() string {
	return fmt.Sprintf("Pairwise{Approx: %v}", p.Approx)
}
