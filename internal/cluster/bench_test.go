package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/space"
)

// benchInput builds a deterministic clustering problem with n hyper-cells
// over ns subscribers arranged in blocks: each cell samples a majority of
// its block's subscribers plus a little cross-block noise, so distances are
// non-trivial and no two cells coalesce. The same generator produced the
// pre-PR baseline recorded in BENCH_cluster.json; do not change its shape
// or the trajectory comparison breaks.
func benchInput(n, ns, blocks int) *Input {
	r := rand.New(rand.NewSource(42))
	per := ns / blocks
	in := &Input{NumSubscribers: ns, TotalHyperCells: n}
	for i := 0; i < n; i++ {
		blk := i % blocks
		m := bitset.New(ns)
		for s := 0; s < per; s++ {
			if r.Float64() < 0.6 {
				m.Set(blk*per + s)
			}
		}
		for j := 0; j < 20; j++ {
			m.Set(r.Intn(ns))
		}
		in.Cells = append(in.Cells, HyperCell{
			Cells:   []space.CellID{space.CellID(i)},
			Members: m,
			Prob:    0.0001 + 0.001*r.Float64(),
		})
	}
	sortByRating(in)
	return in
}

// benchIn caches the headline benchmark problem: n ≥ 1000 hyper-cells over
// ns ≥ 5000 subscribers (the acceptance shape for the perf trajectory).
var benchIn *Input

func getBenchInput(b *testing.B) *Input {
	b.Helper()
	if benchIn == nil {
		benchIn = benchInput(1200, 6000, 50)
	}
	return benchIn
}

// BenchmarkPairwiseExact is a perf-trajectory headline: exact agglomerative
// pairwise grouping, dominated by the O(n²) distance-matrix seed plus the
// per-merge row recomputes.
func BenchmarkPairwiseExact(b *testing.B) {
	in := getBenchInput(b)
	alg := &Pairwise{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Cluster(in, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForgy is a perf-trajectory headline: Forgy K-means, dominated by
// the frozen-vector assignment passes (n·K distance scans per iteration).
func BenchmarkForgy(b *testing.B) {
	in := getBenchInput(b)
	alg := &KMeans{Variant: Forgy}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Cluster(in, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMacQueen tracks the incremental K-means variant.
func BenchmarkMacQueen(b *testing.B) {
	in := getBenchInput(b)
	alg := &KMeans{Variant: MacQueen}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Cluster(in, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMSTCluster tracks Prim over the implicit complete graph.
func BenchmarkMSTCluster(b *testing.B) {
	in := getBenchInput(b)
	alg := MST{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Cluster(in, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairwiseApprox tracks the secretary-rule variant.
func BenchmarkPairwiseApprox(b *testing.B) {
	in := getBenchInput(b)
	alg := &Pairwise{Approx: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Cluster(in, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForgyWorkers sweeps the worker count on the Forgy assignment
// passes. On a single-core machine the sub-benchmarks mostly measure the
// sharding overhead; with more cores they show the parallel speedup.
func BenchmarkForgyWorkers(b *testing.B) {
	in := getBenchInput(b)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			alg := &KMeans{Variant: Forgy, Parallelism: w}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alg.Cluster(in, 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPairwiseExactWorkers sweeps the worker count on the O(n²)
// distance-matrix build and the row refreshes.
func BenchmarkPairwiseExactWorkers(b *testing.B) {
	in := getBenchInput(b)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			alg := &Pairwise{Parallelism: w}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alg.Cluster(in, 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
