package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/space"
)

// inputWithOutliers builds blocks of near-identical cells plus a few cells
// with unique memberships and non-trivial probability — textbook outliers.
func inputWithOutliers(nOutliers int) *Input {
	r := rand.New(rand.NewSource(3))
	in := noisyInput(r, 3, 8, 4) // 24 cells, 12 subscribers
	ns := in.NumSubscribers
	id := space.CellID(1000)
	for i := 0; i < nOutliers; i++ {
		m := bitset.New(ns)
		m.Set(i % ns)
		m.Set((i + 5) % ns)
		in.Cells = append(in.Cells, HyperCell{
			Cells:   []space.CellID{id},
			Members: m,
			Prob:    0.05, // heavy enough to hurt any group it joins
		})
		id++
	}
	in.TotalHyperCells = len(in.Cells)
	sortByRating(in)
	return in
}

func TestRemoveOutliersValidation(t *testing.T) {
	in := synthInput(2, 2, 2)
	if _, _, err := RemoveOutliers(nil, 0.1); err == nil {
		t.Error("nil input accepted")
	}
	if _, _, err := RemoveOutliers(in, -0.1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, _, err := RemoveOutliers(in, 1); err == nil {
		t.Error("fraction 1 accepted")
	}
}

func TestRemoveOutliersZeroFracIsIdentity(t *testing.T) {
	in := synthInput(2, 3, 2)
	out, removed, err := RemoveOutliers(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 || out != in {
		t.Error("zero fraction should return the input unchanged")
	}
}

func TestRemoveOutliersDropsUniqueCells(t *testing.T) {
	in := inputWithOutliers(3)
	total := len(in.Cells)
	out, removed, err := RemoveOutliers(in, 3.0/float64(total)+0.001)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("removed %d, want 3", removed)
	}
	if len(out.Cells) != total-3 {
		t.Fatalf("kept %d cells, want %d", len(out.Cells), total-3)
	}
	// The synthetic outliers (cell ids ≥ 1000) must be the ones dropped.
	for _, c := range out.Cells {
		for _, id := range c.Cells {
			if id >= 1000 {
				t.Fatalf("outlier cell %d survived", id)
			}
		}
	}
	// Preserved order and metadata.
	if out.NumSubscribers != in.NumSubscribers || out.TotalHyperCells != in.TotalHyperCells {
		t.Error("metadata not preserved")
	}
	for i := 1; i < len(out.Cells); i++ {
		if out.Cells[i].Rating() > out.Cells[i-1].Rating()+1e-12 {
			t.Fatal("rating order broken")
		}
	}
}

func TestRemoveOutliersImprovesWaste(t *testing.T) {
	in := inputWithOutliers(4)
	alg := &KMeans{Variant: Forgy}
	full, err := alg.Cluster(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	wFull, _ := ExpectedWaste(in, full)

	clean, removed, err := RemoveOutliers(in, 4.0/float64(len(in.Cells))+0.001)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("nothing removed")
	}
	a, err := alg.Cluster(clean, 3)
	if err != nil {
		t.Fatal(err)
	}
	wClean, _ := ExpectedWaste(clean, a)
	if wClean >= wFull {
		t.Errorf("outlier removal did not reduce waste: %v vs %v", wClean, wFull)
	}
}

func TestRemoveOutliersNeverEmpties(t *testing.T) {
	in := synthInput(2, 2, 2) // 4 cells
	out, removed, err := RemoveOutliers(in, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cells) == 0 {
		t.Fatal("removed everything")
	}
	if removed >= len(in.Cells) {
		t.Fatalf("removed %d of %d", removed, len(in.Cells))
	}
}
