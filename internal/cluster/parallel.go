package cluster

import (
	"runtime"
	"sync"
)

// Parallel is implemented by algorithms whose distance scans shard across
// worker goroutines. All implementations in this package guarantee
// assignments byte-identical to the sequential (1-worker) path: sharded
// passes only ever write disjoint slots computed from frozen state, and
// every argmin reduction breaks ties by lowest index.
type Parallel interface {
	// SetParallelism sets the worker count: 0 means GOMAXPROCS, 1 forces
	// the sequential path. Values below zero are clamped to 1.
	SetParallelism(workers int)
}

// resolveWorkers maps a Parallelism knob to an effective worker count.
func resolveWorkers(p int) int {
	if p == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		return 1
	}
	return p
}

// minParallelItems gates worker dispatch: below this many items a sharded
// pass runs inline, because goroutine startup would cost more than the
// scan. The results are identical either way.
const minParallelItems = 256

// runWorkers runs fn(w) for every w in [0, workers) concurrently and waits
// for all of them; workers ≤ 1 calls fn(0) inline.
func runWorkers(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(0)
	wg.Wait()
}

// parallelRange splits [0, n) into at most `workers` contiguous chunks and
// runs fn on each concurrently. Small ranges run inline.
func parallelRange(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if n < minParallelItems || workers <= 1 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	runWorkers(workers, func(w int) {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo < hi {
			fn(lo, hi)
		}
	})
}
