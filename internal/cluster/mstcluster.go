package cluster

import (
	"math"
	"sort"

	"repro/internal/routing"
)

// MST is the minimum-spanning-tree clustering algorithm (§4.4, after Zahn):
// treat hyper-cells as nodes of a complete graph weighted by the
// expected-waste distance, process edges in non-decreasing order combining
// components (Kruskal), and stop when exactly K components remain.
//
// Unlike pairwise grouping, distances are between *cells* and never
// recomputed, so the whole edge order is fixed up front. Processing edges
// in non-decreasing order until K components remain is equivalent to
// building the MST and deleting its K−1 heaviest edges; this implementation
// therefore runs Prim in O(n²) with O(n) memory instead of materialising
// all n(n−1)/2 edges.
type MST struct{}

// Name implements Algorithm.
func (MST) Name() string { return "mst" }

// Cluster implements Algorithm.
func (MST) Cluster(in *Input, k int) (Assignment, error) {
	if err := validateK(in, k); err != nil {
		return nil, err
	}
	n := len(in.Cells)
	if k >= n {
		return singletonAssignment(n), nil
	}

	// Prim over the implicit complete graph.
	type mstEdge struct {
		u, v int
		d    float64
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range best {
		best[i] = math.Inf(1)
		bestFrom[i] = -1
	}
	inTree[0] = true
	c0 := &in.Cells[0]
	for j := 1; j < n; j++ {
		cj := &in.Cells[j]
		best[j] = Dist(c0.Prob, c0.Members, cj.Prob, cj.Members)
		bestFrom[j] = 0
	}
	edges := make([]mstEdge, 0, n-1)
	for added := 1; added < n; added++ {
		pick := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && (pick == -1 || best[j] < best[pick]) {
				pick = j
			}
		}
		inTree[pick] = true
		edges = append(edges, mstEdge{u: bestFrom[pick], v: pick, d: best[pick]})
		cp := &in.Cells[pick]
		for j := 0; j < n; j++ {
			if !inTree[j] {
				cj := &in.Cells[j]
				if d := Dist(cp.Prob, cp.Members, cj.Prob, cj.Members); d < best[j] {
					best[j] = d
					bestFrom[j] = pick
				}
			}
		}
	}

	// Keep the n−k lightest MST edges; the K−1 heaviest are the cuts.
	sort.Slice(edges, func(i, j int) bool { return edges[i].d < edges[j].d })
	uf := routing.NewUnionFind(n)
	for _, e := range edges[:n-k] {
		uf.Union(e.u, e.v)
	}
	assign := make(Assignment, n)
	for i := range assign {
		assign[i] = uf.Find(i)
	}
	return assign, nil
}

var _ Algorithm = MST{}
