package cluster

import (
	"math"
	"sort"

	"repro/internal/routing"
)

// MST is the minimum-spanning-tree clustering algorithm (§4.4, after Zahn):
// treat hyper-cells as nodes of a complete graph weighted by the
// expected-waste distance, process edges in non-decreasing order combining
// components (Kruskal), and stop when exactly K components remain.
//
// Unlike pairwise grouping, distances are between *cells* and never
// recomputed, so the whole edge order is fixed up front. Processing edges
// in non-decreasing order until K components remain is equivalent to
// building the MST and deleting its K−1 heaviest edges; this implementation
// therefore runs Prim in O(n²) with O(n) memory instead of materialising
// all n(n−1)/2 edges. The O(n) distance scan per added node shards across
// workers (each frontier slot is owned by exactly one shard), so results
// are byte-identical for every worker count.
type MST struct {
	// Parallelism is the worker count for the frontier distance scans:
	// 0 means GOMAXPROCS, 1 forces the sequential path.
	Parallelism int
}

// Name implements Algorithm.
func (MST) Name() string { return "mst" }

// SetParallelism implements Parallel.
func (m *MST) SetParallelism(workers int) { m.Parallelism = workers }

// Cluster implements Algorithm.
func (m MST) Cluster(in *Input, k int) (Assignment, error) {
	if err := validateK(in, k); err != nil {
		return nil, err
	}
	n := len(in.Cells)
	if k >= n {
		return singletonAssignment(n), nil
	}
	workers := resolveWorkers(m.Parallelism)

	// Prim over the implicit complete graph.
	type mstEdge struct {
		u, v int
		d    float64
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	bestFrom := make([]int, n)
	ones := make([]int, n) // per-cell cardinalities for the fast distance
	for i := range best {
		best[i] = math.Inf(1)
		bestFrom[i] = -1
		ones[i] = in.Cells[i].Members.Count()
	}
	inTree[0] = true
	// relaxFrom folds the freshly added cell p into every frontier slot.
	// best/bestFrom writes are per-slot, so the pass shards cleanly; the
	// strict < keeps the earliest-added tree node on ties, exactly like the
	// sequential loop. Distances derive both AND-NOT counts from a single
	// intersection count and the precomputed cardinalities (exact integer
	// arithmetic, bit-identical to Dist at half the scan cost).
	relaxFrom := func(p int) {
		cp := &in.Cells[p]
		parallelRange(workers, n, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				if !inTree[j] {
					cj := &in.Cells[j]
					x := cp.Members.IntersectCount(cj.Members)
					d := cp.Prob*float64(ones[p]-x) + cj.Prob*float64(ones[j]-x)
					if d < best[j] {
						best[j] = d
						bestFrom[j] = p
					}
				}
			}
		})
	}
	relaxFrom(0)
	edges := make([]mstEdge, 0, n-1)
	for added := 1; added < n; added++ {
		pick := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && (pick == -1 || best[j] < best[pick]) {
				pick = j
			}
		}
		inTree[pick] = true
		edges = append(edges, mstEdge{u: bestFrom[pick], v: pick, d: best[pick]})
		relaxFrom(pick)
	}

	// Keep the n−k lightest MST edges; the K−1 heaviest are the cuts.
	sort.Slice(edges, func(i, j int) bool { return edges[i].d < edges[j].d })
	uf := routing.NewUnionFind(n)
	for _, e := range edges[:n-k] {
		uf.Union(e.u, e.v)
	}
	assign := make(Assignment, n)
	for i := range assign {
		assign[i] = uf.Find(i)
	}
	return assign, nil
}

var (
	_ Algorithm = MST{}
	_ Parallel  = (*MST)(nil)
)
