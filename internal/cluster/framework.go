// Package cluster implements the paper's grid-based subscription clustering
// framework (§4.1) and its four partitional algorithms: K-Means (MacQueen),
// Forgy K-Means, Pairwise Grouping with its secretary-rule approximation,
// and MST (Kruskal-stopped-at-K) clustering.
//
// The framework rasterises subscription rectangles onto a regular grid,
// attaches to every cell a subscriber membership vector s(a) and an
// empirical publication probability p(a), coalesces cells with identical
// membership into hyper-cells, ranks hyper-cells by popularity
// r(a) = p(a)·|s(a)|, and feeds the top CellBudget of them to a clustering
// algorithm that partitions them into K multicast groups minimising
// expected waste:
//
//	d(a, b) = p(a)·|s(a)∖s(b)| + p(b)·|s(b)∖s(a)|
//
// — the expected number of messages delivered to uninterested subscribers
// if a and b share one group.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

// HyperCell is a set of grid cells sharing one membership vector.
type HyperCell struct {
	// Cells lists the coalesced grid cell ids.
	Cells []space.CellID
	// Members is the subscriber membership vector s(a).
	Members *bitset.Set
	// Packed is a compressed view of Members, present only when the cell is
	// sparse enough for the chunked representation to win (see packIfSparse).
	// It is a read-only mirror: Members stays authoritative.
	Packed *bitset.Compressed
	// Prob is the empirical publication probability mass of the cells.
	Prob float64
}

// ForEachMember visits the cell's member indices in ascending order,
// iterating the compressed view when one exists (for a sparse cell that
// touches only its populated chunks, instead of every word of the universe).
func (h *HyperCell) ForEachMember(fn func(i int) bool) {
	if h.Packed != nil {
		h.Packed.ForEach(fn)
		return
	}
	h.Members.ForEach(fn)
}

// packOccupancyDen is the density cutoff for choosing the compressed
// representation: a vector is packed when |s| ≤ n/packOccupancyDen. At 1/16
// occupancy an array container (2 bytes/member) is ≥ 4x smaller than the
// dense words it replaces, and the chunk-skipping kernels touch
// proportionally less memory.
const packOccupancyDen = 16

// packIfSparse returns a compressed view of s when its occupancy is at or
// below the cutoff, nil otherwise (dense stays the representation of record).
func packIfSparse(s *bitset.Set) *bitset.Compressed {
	if s == nil {
		return nil
	}
	if cnt := s.Count(); cnt*packOccupancyDen <= s.Len() {
		return bitset.Compress(s)
	}
	return nil
}

// Rating is the paper's popularity rating r(a) = p(a)·|s(a)|.
func (h *HyperCell) Rating() float64 {
	return h.Prob * float64(h.Members.Count())
}

// Input is the prepared clustering problem: hyper-cells sorted by
// decreasing popularity rating.
type Input struct {
	Cells          []HyperCell
	NumSubscribers int
	// TotalHyperCells counts hyper-cells before the cell-budget cut.
	TotalHyperCells int
}

// Assignment maps each Input cell index to a group in [0, K).
type Assignment []int

// Algorithm is a subscription clustering algorithm.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Cluster partitions in.Cells into at most k groups.
	Cluster(in *Input, k int) (Assignment, error)
}

// Dist is the expected-waste distance between two (hyper-)cells or groups
// with probabilities pa, pb and membership vectors sa, sb. The two AND-NOT
// population counts come out of one fused word loop (bitset.WastePair).
func Dist(pa float64, sa *bitset.Set, pb float64, sb *bitset.Set) float64 {
	aNotB, bNotA := sa.WastePair(sb)
	return pa*float64(aNotB) + pb*float64(bNotA)
}

// BuildInput rasterises the world's subscriptions onto the grid, estimates
// per-cell publication probabilities from the training events, coalesces
// hyper-cells and applies the cell budget (0 = keep everything). The
// returned Input is what every Algorithm consumes.
func BuildInput(w *workload.World, grid *space.Grid, train []workload.Event, budget int) (*Input, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("cluster: no training events for probability estimation")
	}
	// Empirical p(a): fraction of training events landing in each cell.
	var counts map[space.CellID]int
	prep := func() {
		counts = make(map[space.CellID]int, len(train))
		for _, e := range train {
			if id, ok := grid.Locate(e.Point); ok {
				counts[id]++
			}
		}
	}
	norm := 1 / float64(len(train))
	return buildInput(w, grid, budget, prep, func(id space.CellID) float64 {
		return float64(counts[id]) * norm
	})
}

// BuildInputAnalytic is BuildInput with closed-form cell probabilities
// instead of an event sample: probOf must return the publication
// probability mass of a rectangle (e.g. World.AnalyticCellProb for the
// generated workloads, whose publication models are product-form).
func BuildInputAnalytic(w *workload.World, grid *space.Grid, probOf func(space.Rect) float64, budget int) (*Input, error) {
	if probOf == nil {
		return nil, fmt.Errorf("cluster: nil probability function")
	}
	return buildInput(w, grid, budget, func() {}, func(id space.CellID) float64 {
		return probOf(grid.CellRect(id))
	})
}

// buildInput is the shared core: prep runs once before cellProb is
// consulted per materialised cell.
func buildInput(w *workload.World, grid *space.Grid, budget int, prep func(), cellProb func(space.CellID) float64) (*Input, error) {
	if w == nil || grid == nil {
		return nil, fmt.Errorf("cluster: nil world or grid")
	}
	if grid.Dim() != w.Dim {
		return nil, fmt.Errorf("cluster: grid dim %d vs world dim %d", grid.Dim(), w.Dim)
	}
	if budget < 0 {
		return nil, fmt.Errorf("cluster: negative cell budget %d", budget)
	}
	ns := w.NumSubscribers()
	if ns == 0 {
		return nil, fmt.Errorf("cluster: world has no subscribers")
	}

	// Rasterise subscriptions: cell → membership vector.
	members := make(map[space.CellID]*bitset.Set)
	for _, sub := range w.Subs {
		idx, ok := w.SubscriberIndex(sub.Owner)
		if !ok {
			return nil, fmt.Errorf("cluster: subscription owner %d not indexed", sub.Owner)
		}
		grid.ForEachCellIn(sub.Rect, func(id space.CellID) {
			s := members[id]
			if s == nil {
				s = bitset.New(ns)
				members[id] = s
			}
			s.Set(idx)
		})
	}

	prep()

	// Coalesce cells with identical membership vectors into hyper-cells.
	byHash := make(map[uint64][]int)
	var cells []HyperCell
	ids := make([]space.CellID, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := members[id]
		p := cellProb(id)
		h := s.Hash()
		found := false
		for _, ci := range byHash[h] {
			if cells[ci].Members.Equal(s) {
				cells[ci].Cells = append(cells[ci].Cells, id)
				cells[ci].Prob += p
				found = true
				break
			}
		}
		if !found {
			byHash[h] = append(byHash[h], len(cells))
			cells = append(cells, HyperCell{Cells: []space.CellID{id}, Members: s, Prob: p})
		}
	}
	total := len(cells)

	// Rank by popularity and apply the budget; ties broken by first cell id
	// for determinism.
	sort.SliceStable(cells, func(i, j int) bool {
		ri, rj := cells[i].Rating(), cells[j].Rating()
		if ri != rj {
			return ri > rj
		}
		return cells[i].Cells[0] < cells[j].Cells[0]
	})
	if budget > 0 && len(cells) > budget {
		cells = cells[:budget]
	}
	// Attach compressed views to the sparse survivors: the clustering scans
	// (closestWith, add/remove) pick them up per cell by occupancy.
	for i := range cells {
		cells[i].Packed = packIfSparse(cells[i].Members)
	}
	return &Input{Cells: cells, NumSubscribers: ns, TotalHyperCells: total}, nil
}

// Group is one multicast group produced by clustering: the union membership
// vector of its cells and the grid cells it covers.
type Group struct {
	Members *bitset.Set
	// Packed is an optional compressed mirror of Members, built by
	// Result.PackMembers for sparse groups. Members stays authoritative;
	// Packed must be rebuilt (or dropped) if Members is mutated.
	Packed *bitset.Compressed
	Prob   float64
	Cells  []space.CellID
}

// Member reports whether subscriber index i belongs to the group, testing
// the compressed view when one exists.
func (g *Group) Member(i int) bool {
	if g.Packed != nil {
		return g.Packed.Test(i)
	}
	return g.Members.Test(i)
}

// Result couples the groups with the cell→group index used for matching.
type Result struct {
	Groups []Group
	// CellGroup maps every clustered grid cell to its group index. Grid
	// cells absent from the map fall back to unicast.
	CellGroup map[space.CellID]int
}

// BuildResult materialises groups from an assignment. Group indices are
// compacted: empty groups are dropped.
func BuildResult(in *Input, assign Assignment) (*Result, error) {
	if len(assign) != len(in.Cells) {
		return nil, fmt.Errorf("cluster: assignment length %d for %d cells", len(assign), len(in.Cells))
	}
	remap := map[int]int{}
	res := &Result{CellGroup: make(map[space.CellID]int)}
	for ci, gi := range assign {
		if gi < 0 {
			return nil, fmt.Errorf("cluster: cell %d unassigned", ci)
		}
		g, ok := remap[gi]
		if !ok {
			g = len(res.Groups)
			remap[gi] = g
			res.Groups = append(res.Groups, Group{Members: bitset.New(in.NumSubscribers)})
		}
		grp := &res.Groups[g]
		grp.Members.UnionWith(in.Cells[ci].Members)
		grp.Prob += in.Cells[ci].Prob
		grp.Cells = append(grp.Cells, in.Cells[ci].Cells...)
		for _, id := range in.Cells[ci].Cells {
			res.CellGroup[id] = g
		}
	}
	return res, nil
}

// PackMembers attaches compressed views to every group sparse enough to
// benefit (see packIfSparse). Callers that freeze a Result for the decide
// plane invoke this once after clustering; callers that keep mutating
// Members must not.
func (r *Result) PackMembers() {
	for i := range r.Groups {
		r.Groups[i].Packed = packIfSparse(r.Groups[i].Members)
	}
}

// NodesOf translates a group's membership vector into network node ids
// using the world's subscriber index.
func (g *Group) NodesOf(w *workload.World) []topology.NodeID {
	out := make([]topology.NodeID, 0, g.Members.Count())
	g.Members.ForEach(func(i int) bool {
		out = append(out, w.SubscriberNodes[i])
		return true
	})
	return out
}

// ExpectedWaste evaluates the clustering objective for an assignment: the
// expected number of deliveries to uninterested subscribers per event,
// Σ_cells p(a)·|s(G(a))∖s(a)|.
func ExpectedWaste(in *Input, assign Assignment) (float64, error) {
	res, err := BuildResult(in, assign)
	if err != nil {
		return 0, err
	}
	remapped := make(Assignment, len(assign))
	for ci := range assign {
		remapped[ci] = res.CellGroup[in.Cells[ci].Cells[0]]
	}
	waste := 0.0
	for ci, gi := range remapped {
		waste += in.Cells[ci].Prob * float64(res.Groups[gi].Members.AndNotCount(in.Cells[ci].Members))
	}
	return waste, nil
}

// validateK rejects unusable group counts.
func validateK(in *Input, k int) error {
	if in == nil || len(in.Cells) == 0 {
		return fmt.Errorf("cluster: empty input")
	}
	if k < 1 {
		return fmt.Errorf("cluster: k = %d, need ≥ 1", k)
	}
	return nil
}

// singletonAssignment is the degenerate solution when k ≥ #cells: one group
// per hyper-cell.
func singletonAssignment(n int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = i
	}
	return a
}
