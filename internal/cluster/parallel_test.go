package cluster

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// workerCounts is the parallelism sweep every equivalence test runs:
// forced-sequential, two workers, and the GOMAXPROCS default. On a
// single-core machine the last two still exercise the goroutine fan-out
// paths (runWorkers spawns regardless of available cores).
func workerCounts() []int {
	ws := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 {
		ws = append(ws, p)
	}
	return ws
}

func assignmentsEqual(a, b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelEquivalence verifies the determinism contract: for every
// clustering algorithm, every worker count produces assignments
// byte-identical to the forced-sequential path.
func TestParallelEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	in := noisyInput(r, 6, 60, 5) // 360 cells — large enough to shard
	algs := []struct {
		name string
		mk   func(workers int) Algorithm
	}{
		{"k-means", func(w int) Algorithm { return &KMeans{Variant: MacQueen, Parallelism: w} }},
		{"forgy", func(w int) Algorithm { return &KMeans{Variant: Forgy, Parallelism: w} }},
		{"pairwise-exact", func(w int) Algorithm { return &Pairwise{Parallelism: w} }},
		{"pairwise-approx", func(w int) Algorithm { return &Pairwise{Approx: true, Parallelism: w} }},
		{"mst", func(w int) Algorithm { return &MST{Parallelism: w} }},
	}
	for _, alg := range algs {
		for _, k := range []int{2, 7, 25} {
			t.Run(fmt.Sprintf("%s/k=%d", alg.name, k), func(t *testing.T) {
				want, err := alg.mk(1).Cluster(in, k)
				if err != nil {
					t.Fatal(err)
				}
				validAssignment(t, want, len(in.Cells), k, alg.name)
				for _, w := range workerCounts()[1:] {
					got, err := alg.mk(w).Cluster(in, k)
					if err != nil {
						t.Fatal(err)
					}
					if !assignmentsEqual(want, got) {
						t.Fatalf("workers=%d diverges from sequential", w)
					}
				}
			})
		}
	}
}

// TestParallelEquivalenceWarm covers ClusterWarm: partial warm starts
// (some cells unplaced with -1) must also be deterministic across worker
// counts, for both K-means variants.
func TestParallelEquivalenceWarm(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	in := noisyInput(r, 5, 70, 4) // 350 cells
	const k = 9
	// A warm start that is partly stale and partly unplaced.
	initial := make(Assignment, len(in.Cells))
	for i := range initial {
		switch {
		case i%7 == 0:
			initial[i] = -1
		default:
			initial[i] = r.Intn(k)
		}
	}
	for _, variant := range []Variant{MacQueen, Forgy} {
		t.Run(variant.String(), func(t *testing.T) {
			seq := &KMeans{Variant: variant, Parallelism: 1}
			want, err := seq.ClusterWarm(in, k, initial, 5)
			if err != nil {
				t.Fatal(err)
			}
			validAssignment(t, want, len(in.Cells), k, variant.String())
			for _, w := range workerCounts()[1:] {
				par := &KMeans{Variant: variant, Parallelism: w}
				got, err := par.ClusterWarm(in, k, initial, 5)
				if err != nil {
					t.Fatal(err)
				}
				if !assignmentsEqual(want, got) {
					t.Fatalf("workers=%d diverges from sequential", w)
				}
			}
		})
	}
}

// TestSetParallelism checks the Parallel interface plumbing on every
// algorithm that advertises it.
func TestSetParallelism(t *testing.T) {
	for _, p := range []Parallel{&KMeans{}, &Pairwise{}, &MST{}} {
		p.SetParallelism(3)
	}
	km := &KMeans{}
	km.SetParallelism(5)
	if km.Parallelism != 5 {
		t.Errorf("KMeans.SetParallelism: got %d, want 5", km.Parallelism)
	}
	pw := &Pairwise{}
	pw.SetParallelism(2)
	if pw.Parallelism != 2 {
		t.Errorf("Pairwise.SetParallelism: got %d, want 2", pw.Parallelism)
	}
	ms := &MST{}
	ms.SetParallelism(4)
	if ms.Parallelism != 4 {
		t.Errorf("MST.SetParallelism: got %d, want 4", ms.Parallelism)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("resolveWorkers(0) = %d, want GOMAXPROCS", got)
	}
	if got := resolveWorkers(-3); got != 1 {
		t.Errorf("resolveWorkers(-3) = %d, want 1", got)
	}
	if got := resolveWorkers(6); got != 6 {
		t.Errorf("resolveWorkers(6) = %d, want 6", got)
	}
}

// TestParallelRangeCoversAll checks the sharding helper partitions
// [0, n) exactly — every index visited once, no overlap — for awkward
// worker/size combinations.
func TestParallelRangeCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, minParallelItems - 1, minParallelItems, minParallelItems + 13, 1000} {
			seen := make([]int32, n)
			parallelRange(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}
