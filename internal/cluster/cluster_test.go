package cluster

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

// synthInput builds a hand-crafted Input with nClusters blocks of
// cellsPer identical-membership hyper-cells each; blocks are pairwise
// disjoint in membership, so a perfect clustering has zero waste.
func synthInput(nClusters, cellsPer, subsPer int) *Input {
	ns := nClusters * subsPer
	in := &Input{NumSubscribers: ns}
	id := space.CellID(0)
	for c := 0; c < nClusters; c++ {
		for j := 0; j < cellsPer; j++ {
			m := bitset.New(ns)
			for s := 0; s < subsPer; s++ {
				m.Set(c*subsPer + s)
			}
			in.Cells = append(in.Cells, HyperCell{
				Cells:   []space.CellID{id},
				Members: m,
				Prob:    0.01 * float64(1+j%3),
			})
			id++
		}
	}
	in.TotalHyperCells = len(in.Cells)
	sortByRating(in)
	return in
}

// sortByRating restores the BuildInput contract (cells arrive sorted by
// non-increasing popularity rating) for hand-built inputs.
func sortByRating(in *Input) {
	sort.SliceStable(in.Cells, func(i, j int) bool {
		return in.Cells[i].Rating() > in.Cells[j].Rating()
	})
}

// noisyInput perturbs synthInput so memberships within a block overlap
// heavily but are not identical (hyper-cell coalescing must not collapse
// them, and clustering still has a clearly best partition).
func noisyInput(r *rand.Rand, nClusters, cellsPer, subsPer int) *Input {
	in := synthInput(nClusters, cellsPer, subsPer)
	for i := range in.Cells {
		// Remove one random member (keeping at least one).
		m := in.Cells[i].Members
		if m.Count() > 1 {
			idx := m.Indices()
			m.Clear(idx[r.Intn(len(idx))])
		}
	}
	sortByRating(in)
	return in
}

func allAlgorithms() []Algorithm {
	return []Algorithm{
		&KMeans{Variant: MacQueen},
		&KMeans{Variant: Forgy},
		&Pairwise{},
		&Pairwise{Approx: true},
		MST{},
	}
}

func validAssignment(t *testing.T, a Assignment, n, k int, name string) {
	t.Helper()
	if len(a) != n {
		t.Fatalf("%s: assignment length %d, want %d", name, len(a), n)
	}
	groups := map[int]bool{}
	for i, g := range a {
		if g < 0 {
			t.Fatalf("%s: cell %d unassigned", name, i)
		}
		groups[g] = true
	}
	if len(groups) > k {
		t.Fatalf("%s: %d groups, want ≤ %d", name, len(groups), k)
	}
}

func TestVariantString(t *testing.T) {
	if MacQueen.String() != "k-means" || Forgy.String() != "forgy" {
		t.Error("variant strings wrong")
	}
	if (&Pairwise{}).Name() != "pairs" || (&Pairwise{Approx: true}).Name() != "approx-pairs" {
		t.Error("pairwise names wrong")
	}
	if (MST{}).Name() != "mst" {
		t.Error("mst name wrong")
	}
}

func TestDistProperties(t *testing.T) {
	a := bitset.FromIndices(10, 1, 2, 3)
	b := bitset.FromIndices(10, 3, 4)
	// d(a,b) = pa·|{1,2}| + pb·|{4}| = 0.5·2 + 0.25·1
	if got := Dist(0.5, a, 0.25, b); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("Dist = %v, want 1.25", got)
	}
	if got := Dist(0.5, a, 0.25, a); got != 0 {
		t.Errorf("Dist to self = %v", got)
	}
	if Dist(0.5, a, 0.25, b) != Dist(0.25, b, 0.5, a) {
		t.Error("Dist not symmetric")
	}
}

func TestValidateErrors(t *testing.T) {
	in := synthInput(2, 2, 2)
	for _, alg := range allAlgorithms() {
		if _, err := alg.Cluster(nil, 3); err == nil {
			t.Errorf("%s: nil input accepted", alg.Name())
		}
		if _, err := alg.Cluster(&Input{}, 3); err == nil {
			t.Errorf("%s: empty input accepted", alg.Name())
		}
		if _, err := alg.Cluster(in, 0); err == nil {
			t.Errorf("%s: k=0 accepted", alg.Name())
		}
	}
}

func TestKAtLeastCellsGivesSingletons(t *testing.T) {
	in := synthInput(2, 3, 2)
	for _, alg := range allAlgorithms() {
		a, err := alg.Cluster(in, len(in.Cells))
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for i, g := range a {
			if g != i {
				t.Fatalf("%s: expected singleton assignment, got %v", alg.Name(), a)
			}
		}
		w, err := ExpectedWaste(in, a)
		if err != nil {
			t.Fatal(err)
		}
		if w != 0 {
			t.Errorf("%s: singleton waste = %v", alg.Name(), w)
		}
	}
}

func TestKOneGroupsEverything(t *testing.T) {
	in := synthInput(3, 2, 2)
	for _, alg := range allAlgorithms() {
		a, err := alg.Cluster(in, 1)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		validAssignment(t, a, len(in.Cells), 1, alg.Name())
		res, err := BuildResult(in, a)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) != 1 {
			t.Fatalf("%s: %d groups for k=1", alg.Name(), len(res.Groups))
		}
		if res.Groups[0].Members.Count() != in.NumSubscribers {
			t.Errorf("%s: k=1 group missing members", alg.Name())
		}
	}
}

func TestPerfectSeparationRecovered(t *testing.T) {
	in := synthInput(4, 5, 3)
	for _, alg := range allAlgorithms() {
		a, err := alg.Cluster(in, 4)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		validAssignment(t, a, len(in.Cells), 4, alg.Name())
		w, err := ExpectedWaste(in, a)
		if err != nil {
			t.Fatal(err)
		}
		if _, approx := alg.(*Pairwise); approx && alg.(*Pairwise).Approx {
			// The secretary rule may accept a suboptimal merge; it must
			// still stay within the one-group worst case.
			a1, _ := alg.Cluster(in, 1)
			w1, _ := ExpectedWaste(in, a1)
			if w > w1 {
				t.Errorf("approx-pairs: waste %v exceeds one-group waste %v", w, w1)
			}
			continue
		}
		if w != 0 {
			t.Errorf("%s: waste %v on perfectly separable input", alg.Name(), w)
		}
		res, _ := BuildResult(in, a)
		if len(res.Groups) != 4 {
			t.Errorf("%s: %d groups, want 4", alg.Name(), len(res.Groups))
		}
	}
}

func TestNoisySeparationBeatsOneGroup(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	in := noisyInput(r, 3, 6, 4)
	for _, alg := range allAlgorithms() {
		a3, err := alg.Cluster(in, 3)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		a1, err := alg.Cluster(in, 1)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		w3, _ := ExpectedWaste(in, a3)
		w1, _ := ExpectedWaste(in, a1)
		if w3 >= w1 {
			t.Errorf("%s: waste(k=3)=%v not < waste(k=1)=%v", alg.Name(), w3, w1)
		}
	}
}

func TestDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	in := noisyInput(r, 3, 8, 4)
	for _, alg := range allAlgorithms() {
		a, err := alg.Cluster(in, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := alg.Cluster(in, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic assignment", alg.Name())
			}
		}
	}
}

// TestHierarchicalNesting verifies the monotone-subdivision property the
// paper credits to MST and Pairs: the K-group solution refines the
// (K-1)-group solution.
func TestHierarchicalNesting(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	in := noisyInput(r, 4, 6, 3)
	for _, alg := range []Algorithm{MST{}, &Pairwise{}} {
		prev := map[int]int{} // cell → group at K-1... built below
		for k := 2; k <= 8; k++ {
			a, err := alg.Cluster(in, k)
			if err != nil {
				t.Fatal(err)
			}
			if k > 2 {
				// Every group at K must be contained in one group at K-1.
				groupOf := map[int]int{}
				for ci, g := range a {
					if pg, ok := groupOf[g]; ok {
						if pg != prev[ci] {
							t.Fatalf("%s: group %d at k=%d spans two k-1 groups", alg.Name(), g, k)
						}
					} else {
						groupOf[g] = prev[ci]
					}
				}
			}
			prev = map[int]int{}
			for ci, g := range a {
				prev[ci] = g
			}
		}
	}
}

func TestBuildResultErrors(t *testing.T) {
	in := synthInput(2, 2, 2)
	if _, err := BuildResult(in, Assignment{0}); err == nil {
		t.Error("short assignment accepted")
	}
	bad := singletonAssignment(len(in.Cells))
	bad[0] = -1
	if _, err := BuildResult(in, bad); err == nil {
		t.Error("negative assignment accepted")
	}
}

func TestBuildResultGroupsConsistent(t *testing.T) {
	in := synthInput(3, 4, 2)
	a, err := (&KMeans{}).Cluster(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildResult(in, a)
	if err != nil {
		t.Fatal(err)
	}
	// Every clustered grid cell maps to a group containing its members.
	for ci, cell := range in.Cells {
		gi, ok := res.CellGroup[cell.Cells[0]]
		if !ok {
			t.Fatalf("cell %d missing from CellGroup", ci)
		}
		if !cell.Members.IsSubsetOf(res.Groups[gi].Members) {
			t.Fatalf("cell %d members not in its group", ci)
		}
	}
	// Group probability masses sum to the input total.
	sum := 0.0
	for _, g := range res.Groups {
		sum += g.Prob
	}
	want := 0.0
	for _, c := range in.Cells {
		want += c.Prob
	}
	if math.Abs(sum-want) > 1e-12 {
		t.Errorf("group prob sum %v != input sum %v", sum, want)
	}
}

func buildStockWorld(t *testing.T) (*workload.World, *space.Grid, []workload.Event) {
	t.Helper()
	cfg := topology.Eval600
	cfg.Seed = 21
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: 300, PubModes: 1, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := space.NewGrid(w.Axes)
	if err != nil {
		t.Fatal(err)
	}
	return w, grid, w.Events(2000, 23)
}

func TestBuildInputFromWorld(t *testing.T) {
	w, grid, train := buildStockWorld(t)
	in, err := BuildInput(w, grid, train, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Cells) == 0 {
		t.Fatal("no hyper-cells built")
	}
	if in.TotalHyperCells != len(in.Cells) {
		t.Errorf("budget 0 should keep all cells: %d vs %d", in.TotalHyperCells, len(in.Cells))
	}
	if in.NumSubscribers != w.NumSubscribers() {
		t.Errorf("NumSubscribers = %d, want %d", in.NumSubscribers, w.NumSubscribers())
	}

	// Rating order is non-increasing.
	for i := 1; i < len(in.Cells); i++ {
		if in.Cells[i].Rating() > in.Cells[i-1].Rating()+1e-12 {
			t.Fatalf("cells not rating-sorted at %d", i)
		}
	}

	// Hyper-cells have pairwise distinct membership vectors.
	for i := 0; i < len(in.Cells) && i < 200; i++ {
		for j := i + 1; j < len(in.Cells) && j < 200; j++ {
			if in.Cells[i].Members.Equal(in.Cells[j].Members) {
				t.Fatalf("hyper-cells %d and %d share a membership vector", i, j)
			}
		}
	}

	// Membership correctness: spot-check against brute force.
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		hc := in.Cells[r.Intn(len(in.Cells))]
		cid := hc.Cells[r.Intn(len(hc.Cells))]
		rect := grid.CellRect(cid)
		want := bitset.New(in.NumSubscribers)
		for _, s := range w.Subs {
			if s.Rect.Intersects(rect) {
				idx, _ := w.SubscriberIndex(s.Owner)
				want.Set(idx)
			}
		}
		if !want.Equal(hc.Members) {
			t.Fatalf("membership mismatch for cell %d", cid)
		}
	}

	// Probability mass ≤ 1 and positive for some cell.
	total := 0.0
	for _, c := range in.Cells {
		if c.Prob < 0 {
			t.Fatal("negative probability")
		}
		total += c.Prob
	}
	if total <= 0 || total > 1+1e-9 {
		t.Errorf("total probability mass %v", total)
	}
}

func TestBuildInputBudget(t *testing.T) {
	w, grid, train := buildStockWorld(t)
	full, err := BuildInput(w, grid, train, 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := len(full.Cells) / 2
	cut, err := BuildInput(w, grid, train, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Cells) != budget {
		t.Fatalf("budget %d kept %d cells", budget, len(cut.Cells))
	}
	if cut.TotalHyperCells != len(full.Cells) {
		t.Errorf("TotalHyperCells %d, want %d", cut.TotalHyperCells, len(full.Cells))
	}
	// The kept cells are the highest-rated ones.
	minKept := cut.Cells[len(cut.Cells)-1].Rating()
	for _, c := range full.Cells[budget:] {
		if c.Rating() > minKept+1e-12 {
			t.Fatal("budget kept a lower-rated cell over a higher-rated one")
		}
	}
}

func TestBuildInputErrors(t *testing.T) {
	w, grid, train := buildStockWorld(t)
	if _, err := BuildInput(nil, grid, train, 0); err == nil {
		t.Error("nil world accepted")
	}
	if _, err := BuildInput(w, nil, train, 0); err == nil {
		t.Error("nil grid accepted")
	}
	if _, err := BuildInput(w, grid, nil, 0); err == nil {
		t.Error("no training events accepted")
	}
	if _, err := BuildInput(w, grid, train, -1); err == nil {
		t.Error("negative budget accepted")
	}
	wrongGrid, _ := space.UniformGrid(2, 0, 1, 2)
	if _, err := BuildInput(w, wrongGrid, train, 0); err == nil {
		t.Error("dim-mismatched grid accepted")
	}
}

func TestAlgorithmsOnRealWorldInput(t *testing.T) {
	w, grid, train := buildStockWorld(t)
	in, err := BuildInput(w, grid, train, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range allAlgorithms() {
		a, err := alg.Cluster(in, 20)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		validAssignment(t, a, len(in.Cells), 20, alg.Name())
		w20, _ := ExpectedWaste(in, a)
		a1, _ := alg.Cluster(in, 1)
		w1, _ := ExpectedWaste(in, a1)
		if w20 > w1 {
			t.Errorf("%s: waste(20)=%v > waste(1)=%v", alg.Name(), w20, w1)
		}
	}
}

func TestNodesOf(t *testing.T) {
	w, grid, train := buildStockWorld(t)
	in, err := BuildInput(w, grid, train, 100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := (&KMeans{Variant: Forgy}).Cluster(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildResult(in, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		nodes := g.NodesOf(w)
		if len(nodes) != g.Members.Count() {
			t.Fatalf("NodesOf returned %d nodes for %d members", len(nodes), g.Members.Count())
		}
		for _, n := range nodes {
			if _, ok := w.SubscriberIndex(n); !ok {
				t.Fatalf("group node %d is not a subscriber", n)
			}
		}
	}
}

func TestQuickAssignmentsAlwaysValid(t *testing.T) {
	law := func(seed int64, kRaw, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nClusters := int(nRaw%3) + 2
		in := noisyInput(r, nClusters, int(nRaw%4)+2, 3)
		k := int(kRaw)%len(in.Cells) + 1
		for _, alg := range allAlgorithms() {
			a, err := alg.Cluster(in, k)
			if err != nil {
				return false
			}
			if len(a) != len(in.Cells) {
				return false
			}
			groups := map[int]bool{}
			for _, g := range a {
				if g < 0 {
					return false
				}
				groups[g] = true
			}
			if len(groups) > k {
				return false
			}
			if _, err := ExpectedWaste(in, a); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildInputAnalyticAgreesWithEmpirical(t *testing.T) {
	w, grid, train := buildStockWorld(t)
	emp, err := BuildInput(w, grid, train, 0)
	if err != nil {
		t.Fatal(err)
	}
	probOf := func(r space.Rect) float64 {
		p, ok := w.AnalyticCellProb(r)
		if !ok {
			t.Fatal("stock world lost analytic probabilities")
		}
		return p
	}
	ana, err := BuildInputAnalytic(w, grid, probOf, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership structure: the hyper-cell partition only depends on
	// subscriptions, so total counts match.
	if ana.TotalHyperCells != emp.TotalHyperCells {
		t.Fatalf("hyper-cell counts differ: %d vs %d", ana.TotalHyperCells, emp.TotalHyperCells)
	}
	// Probability masses agree within sampling noise, cell by cell (keyed
	// by first grid cell id).
	empProb := map[space.CellID]float64{}
	for _, c := range emp.Cells {
		empProb[c.Cells[0]] = c.Prob
	}
	var sumAbs, count float64
	for _, c := range ana.Cells {
		if c.Prob < 0 || c.Prob > 1 {
			t.Fatalf("analytic prob out of range: %v", c.Prob)
		}
		sumAbs += mathAbs(c.Prob - empProb[c.Cells[0]])
		count++
	}
	if mean := sumAbs / count; mean > 0.002 {
		t.Errorf("mean |analytic-empirical| = %v, too large", mean)
	}
	// End to end: clustering on analytic probabilities works.
	assign, err := (&KMeans{Variant: Forgy}).Cluster(ana, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildResult(ana, assign); err != nil {
		t.Fatal(err)
	}
}

func TestBuildInputAnalyticNilFn(t *testing.T) {
	w, grid, _ := buildStockWorld(t)
	if _, err := BuildInputAnalytic(w, grid, nil, 0); err == nil {
		t.Error("nil prob function accepted")
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
