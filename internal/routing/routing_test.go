package routing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// lineGraph builds 0-1-2-...-n-1 with unit edges.
func lineGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(topology.NodeID(i), topology.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(t, 5)
	spt := Dijkstra(g, 0)
	for i := 0; i < 5; i++ {
		if spt.Dist[i] != float64(i) {
			t.Errorf("Dist[%d] = %v", i, spt.Dist[i])
		}
	}
	if spt.Parent[0] != -1 {
		t.Error("root parent not -1")
	}
	path := spt.PathTo(3)
	want := []topology.NodeID{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v", path)
		}
	}
	if spt.TreeCost() != 4 {
		t.Errorf("TreeCost = %v", spt.TreeCost())
	}
}

func TestDijkstraPicksShortcut(t *testing.T) {
	// 0-1 cost 10, 0-2 cost 1, 2-1 cost 1 → dist(0,1) = 2 via 2.
	g := topology.NewGraph(3)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 1, 1)
	spt := Dijkstra(g, 0)
	if spt.Dist[1] != 2 {
		t.Errorf("Dist[1] = %v, want 2", spt.Dist[1])
	}
	if spt.Parent[1] != 2 {
		t.Errorf("Parent[1] = %v, want 2", spt.Parent[1])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := topology.NewGraph(3)
	g.AddEdge(0, 1, 1)
	spt := Dijkstra(g, 0)
	if !math.IsInf(spt.Dist[2], 1) {
		t.Error("unreachable node has finite distance")
	}
	if spt.PathTo(2) != nil {
		t.Error("path to unreachable node")
	}
	// Coverer ignores unreachable targets.
	c := NewCoverer(spt)
	if got := c.Cost([]topology.NodeID{2}); got != 0 {
		t.Errorf("cover cost to unreachable = %v", got)
	}
}

func TestDijkstraBadRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dijkstra(topology.NewGraph(2), 5)
}

// TestDijkstraAvoidNilMatchesDijkstra: a nil blocked predicate is the plain
// algorithm.
func TestDijkstraAvoidNilMatchesDijkstra(t *testing.T) {
	g := ringGraphForAvoid(t)
	a, b := Dijkstra(g, 0), DijkstraAvoid(g, 0, nil)
	for i := range a.Dist {
		if a.Dist[i] != b.Dist[i] || a.Parent[i] != b.Parent[i] {
			t.Fatalf("node %d: (%v,%d) vs (%v,%d)", i, a.Dist[i], a.Parent[i], b.Dist[i], b.Parent[i])
		}
	}
}

// ringGraphForAvoid builds a 4-cycle with unit edges: two routes between
// any pair.
func ringGraphForAvoid(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(4)
	for _, e := range [][2]topology.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestDijkstraAvoidReroutes: blocking the direct edge forces the long way
// around the ring.
func TestDijkstraAvoidReroutes(t *testing.T) {
	g := ringGraphForAvoid(t)
	blocked := func(u, v topology.NodeID) bool {
		return topology.MakeEdgeKey(u, v) == topology.MakeEdgeKey(0, 1)
	}
	spt := DijkstraAvoid(g, 0, blocked)
	if spt.Dist[1] != 3 {
		t.Errorf("Dist[1] = %v, want 3 (0→3→2→1)", spt.Dist[1])
	}
	path := spt.PathTo(1)
	want := []topology.NodeID{0, 3, 2, 1}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

// TestDijkstraAvoidPartition: blocking every edge of a node leaves it
// unreachable (Dist = +Inf, PathTo = nil).
func TestDijkstraAvoidPartition(t *testing.T) {
	g := ringGraphForAvoid(t)
	blocked := func(u, v topology.NodeID) bool { return u == 2 || v == 2 }
	spt := DijkstraAvoid(g, 0, blocked)
	if !math.IsInf(spt.Dist[2], 1) {
		t.Errorf("Dist[2] = %v, want +Inf", spt.Dist[2])
	}
	if spt.PathTo(2) != nil {
		t.Error("path to partitioned node not nil")
	}
	if spt.Dist[1] != 1 || spt.Dist[3] != 1 {
		t.Error("unblocked nodes affected")
	}
}

func TestCovererSharedPrefix(t *testing.T) {
	// Star of paths: 0-1-2 and 0-1-3; covering {2,3} must count edge 0-1 once.
	g := topology.NewGraph(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 2)
	spt := Dijkstra(g, 0)
	c := NewCoverer(spt)
	if got := c.Cost([]topology.NodeID{2, 3}); got != 8 {
		t.Errorf("cover cost = %v, want 8", got)
	}
	// Repeated queries must be independent (epoch reset).
	if got := c.Cost([]topology.NodeID{2}); got != 6 {
		t.Errorf("second cover cost = %v, want 6", got)
	}
	if got := c.Cost(nil); got != 0 {
		t.Errorf("empty cover cost = %v", got)
	}
	if got := c.Cost([]topology.NodeID{0}); got != 0 {
		t.Errorf("cover cost to root = %v", got)
	}
}

func TestCovererEqualsTreeCostForAllNodes(t *testing.T) {
	cfg := topology.Net100
	cfg.Seed = 3
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spt := Dijkstra(g, 0)
	all := make([]topology.NodeID, g.NumNodes())
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	c := NewCoverer(spt)
	if got, want := c.Cost(all), spt.TreeCost(); math.Abs(got-want) > 1e-9 {
		t.Errorf("cover-all %v != tree cost %v", got, want)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Components() != 5 {
		t.Fatal("initial components wrong")
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("union failed")
	}
	if uf.Union(1, 0) {
		t.Error("re-union reported merge")
	}
	if uf.Components() != 3 {
		t.Errorf("components = %d", uf.Components())
	}
	if !uf.Same(0, 1) || uf.Same(0, 2) {
		t.Error("Same wrong")
	}
	uf.Union(0, 2)
	if !uf.Same(1, 3) {
		t.Error("transitivity broken")
	}
}

func TestUnionFindNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewUnionFind(-1)
}

func TestKruskalKnown(t *testing.T) {
	// Square with diagonal: MST must use the three cheapest non-cyclic edges.
	g := topology.NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 0, 4)
	g.AddEdge(0, 2, 10)
	edges, cost := KruskalMST(g)
	if cost != 6 || len(edges) != 3 {
		t.Errorf("MST cost=%v edges=%d, want 6/3", cost, len(edges))
	}
}

func TestKruskalForest(t *testing.T) {
	g := topology.NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 2)
	edges, cost := KruskalMST(g)
	if len(edges) != 2 || cost != 3 {
		t.Errorf("forest: edges=%d cost=%v", len(edges), cost)
	}
}

// bruteMSTCost enumerates spanning trees of tiny graphs via bitmask edge
// subsets.
func bruteMSTCost(g *topology.Graph) float64 {
	edges := g.Edges()
	n := g.NumNodes()
	best := math.Inf(1)
	for mask := 0; mask < 1<<len(edges); mask++ {
		uf := NewUnionFind(n)
		cost := 0.0
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				uf.Union(int(e.U), int(e.V))
				cost += e.Cost
			}
		}
		if uf.Components() == 1 && cost < best {
			best = cost
		}
	}
	return best
}

func TestQuickKruskalMatchesBruteForce(t *testing.T) {
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		g := topology.NewGraph(n)
		// Random connected graph: spanning tree + extras, ≤10 edges total.
		for i := 1; i < n; i++ {
			g.AddEdge(topology.NodeID(i), topology.NodeID(r.Intn(i)), float64(1+r.Intn(9)))
		}
		for i := 0; i < n && g.NumEdges() < 10; i++ {
			u, v := topology.NodeID(r.Intn(n)), topology.NodeID(r.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v, float64(1+r.Intn(9)))
			}
		}
		_, got := KruskalMST(g)
		return math.Abs(got-bruteMSTCost(g)) < 1e-9
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAllPairsSymmetricAndTriangle(t *testing.T) {
	cfg := topology.Net100
	cfg.Seed = 9
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ap := NewAllPairs(g)
	n := g.NumNodes()
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		u, v, w := r.Intn(n), r.Intn(n), r.Intn(n)
		if math.Abs(ap.Dist[u][v]-ap.Dist[v][u]) > 1e-9 {
			t.Fatalf("asymmetric: d(%d,%d)=%v d(%d,%d)=%v", u, v, ap.Dist[u][v], v, u, ap.Dist[v][u])
		}
		if ap.Dist[u][w] > ap.Dist[u][v]+ap.Dist[v][w]+1e-9 {
			t.Fatalf("triangle violated: %d-%d-%d", u, v, w)
		}
	}
	for u := 0; u < n; u++ {
		if ap.Dist[u][u] != 0 {
			t.Fatalf("d(%d,%d) = %v", u, u, ap.Dist[u][u])
		}
	}
}

func TestOverlayMST(t *testing.T) {
	g := lineGraph(t, 5) // distances = index gaps
	ap := NewAllPairs(g)
	cost, edges := OverlayMST(ap, []topology.NodeID{0, 2, 4})
	// Closure distances: 0-2 = 2, 2-4 = 2, 0-4 = 4 → MST = 4.
	if cost != 4 || len(edges) != 2 {
		t.Errorf("overlay cost=%v edges=%v", cost, edges)
	}
	if c, e := OverlayMST(ap, nil); c != 0 || e != nil {
		t.Error("empty overlay not free")
	}
	if c, e := OverlayMST(ap, []topology.NodeID{3}); c != 0 || len(e) != 0 {
		t.Error("singleton overlay not free")
	}
}

func TestOverlayMSTAtLeastIdeal(t *testing.T) {
	// Overlay (unicast closure) MST can never beat the SPT cover from any
	// member, but must be ≥ the minimum Steiner cost; sanity-check ≥ cover/1
	// relationship loosely: overlay ≥ max pairwise distance.
	cfg := topology.Net100
	cfg.Seed = 4
	g, _ := topology.Generate(cfg)
	ap := NewAllPairs(g)
	r := rand.New(rand.NewSource(2))
	members := make([]topology.NodeID, 8)
	for i := range members {
		members[i] = topology.NodeID(r.Intn(g.NumNodes()))
	}
	cost, edges := OverlayMST(ap, members)
	if len(edges) != len(members)-1 {
		t.Fatalf("edges = %d", len(edges))
	}
	maxPair := 0.0
	for _, u := range members {
		for _, v := range members {
			if d := ap.Dist[u][v]; d > maxPair {
				maxPair = d
			}
		}
	}
	if cost < maxPair {
		t.Errorf("overlay cost %v < max pairwise distance %v", cost, maxPair)
	}
}

func TestOverlayMSTDisconnectedPanics(t *testing.T) {
	g := topology.NewGraph(3)
	g.AddEdge(0, 1, 1)
	ap := NewAllPairs(g)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	OverlayMST(ap, []topology.NodeID{0, 2})
}

func BenchmarkDijkstraEval600(b *testing.B) {
	cfg := topology.Eval600
	cfg.Seed = 1
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dijkstra(g, topology.NodeID(i%g.NumNodes()))
	}
}
