package routing

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/topology"
)

// UnionFind is a disjoint-set forest with union by rank and path halving.
// It backs Kruskal's algorithm here and the MST clustering algorithm in the
// cluster package (which stops Kruskal at K components, per the paper §4.4).
type UnionFind struct {
	parent []int
	rank   []uint8
	count  int
}

// NewUnionFind creates n singleton components.
func NewUnionFind(n int) *UnionFind {
	if n < 0 {
		panic(fmt.Sprintf("routing: negative union-find size %d", n))
	}
	uf := &UnionFind{parent: make([]int, n), rank: make([]uint8, n), count: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's component.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the components of x and y, reporting whether a merge
// happened (false when they were already joined).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Components returns the current number of disjoint components.
func (uf *UnionFind) Components() int { return uf.count }

// Same reports whether x and y are in one component.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// KruskalMST returns a minimum spanning forest of g as edges plus total
// cost. For a connected graph this is the MST.
func KruskalMST(g *topology.Graph) ([]topology.Edge, float64) {
	edges := make([]topology.Edge, len(g.Edges()))
	copy(edges, g.Edges())
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Cost != edges[j].Cost {
			return edges[i].Cost < edges[j].Cost
		}
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	uf := NewUnionFind(g.NumNodes())
	var out []topology.Edge
	total := 0.0
	for _, e := range edges {
		if uf.Union(int(e.U), int(e.V)) {
			out = append(out, e)
			total += e.Cost
		}
	}
	return out, total
}

// OverlayMST computes a minimum spanning tree over the metric closure of
// the given member nodes: the complete graph whose edge weights are
// shortest-path (unicast) distances. This is the application-level
// multicast overlay of the paper (§5.1): group members forward messages to
// each other along this tree via unicast.
//
// It returns the total overlay cost and the tree edges (pairs of member
// indices into the members slice). Prim's algorithm in O(k²) using the
// all-pairs matrix. Panics if any pair of members is disconnected.
func OverlayMST(ap *AllPairs, members []topology.NodeID) (float64, [][2]int) {
	k := len(members)
	if k == 0 {
		return 0, nil
	}
	inTree := make([]bool, k)
	best := make([]float64, k)
	bestFrom := make([]int, k)
	for i := range best {
		best[i] = math.Inf(1)
		bestFrom[i] = -1
	}
	inTree[0] = true
	for j := 1; j < k; j++ {
		best[j] = ap.Dist[members[0]][members[j]]
		bestFrom[j] = 0
	}
	total := 0.0
	edges := make([][2]int, 0, k-1)
	for added := 1; added < k; added++ {
		pick := -1
		for j := 0; j < k; j++ {
			if !inTree[j] && (pick == -1 || best[j] < best[pick]) {
				pick = j
			}
		}
		if math.IsInf(best[pick], 1) {
			panic("routing: OverlayMST over disconnected members")
		}
		inTree[pick] = true
		total += best[pick]
		edges = append(edges, [2]int{bestFrom[pick], pick})
		for j := 0; j < k; j++ {
			if !inTree[j] {
				if d := ap.Dist[members[pick]][members[j]]; d < best[j] {
					best[j] = d
					bestFrom[j] = pick
				}
			}
		}
	}
	return total, edges
}
