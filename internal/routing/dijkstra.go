// Package routing provides the path machinery the cost model is built on:
// Dijkstra shortest-path trees (dense-mode multicast routes messages along
// the SPT rooted at the publisher), all-pairs distances, Kruskal and Prim
// minimum spanning trees (application-level multicast overlays), and a
// union-find used both here and by the MST clustering algorithm.
package routing

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/topology"
)

// SPT is a shortest-path tree rooted at Root. Unreachable nodes have
// Dist = +Inf and Parent = -1 (the root also has Parent = -1).
type SPT struct {
	Root       topology.NodeID
	Dist       []float64
	Parent     []topology.NodeID
	ParentCost []float64 // cost of the edge to Parent, 0 at the root
	// treeCost is TreeCost computed once at construction. The decide plane
	// prices broadcast per event; rescanning O(V) parent arrays there would
	// dominate the decision at large node counts.
	treeCost float64
}

type pqItem struct {
	node topology.NodeID
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Dijkstra computes the shortest-path tree from root. Ties are broken by
// heap order, which is deterministic for a fixed graph.
func Dijkstra(g *topology.Graph, root topology.NodeID) *SPT {
	return DijkstraAvoid(g, root, nil)
}

// DijkstraAvoid computes the shortest-path tree from root over the subgraph
// that excludes every edge for which blocked(u, v) reports true. A nil
// blocked function is the plain Dijkstra. The broker's degradation ladder
// uses this to re-route deliveries around failed links: nodes cut off by
// the blocked set come back with Dist = +Inf.
func DijkstraAvoid(g *topology.Graph, root topology.NodeID, blocked func(u, v topology.NodeID) bool) *SPT {
	n := g.NumNodes()
	if root < 0 || int(root) >= n {
		panic(fmt.Sprintf("routing: root %d out of range [0,%d)", root, n))
	}
	t := &SPT{
		Root:       root,
		Dist:       make([]float64, n),
		Parent:     make([]topology.NodeID, n),
		ParentCost: make([]float64, n),
	}
	for i := range t.Dist {
		t.Dist[i] = math.Inf(1)
		t.Parent[i] = -1
	}
	t.Dist[root] = 0

	done := make([]bool, n)
	q := pq{{node: root, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, h := range g.Neighbors(u) {
			if blocked != nil && blocked(u, h.To) {
				continue
			}
			nd := it.dist + h.Cost
			if nd < t.Dist[h.To] {
				t.Dist[h.To] = nd
				t.Parent[h.To] = u
				t.ParentCost[h.To] = h.Cost
				heap.Push(&q, pqItem{node: h.To, dist: nd})
			}
		}
	}
	for v := range t.Parent {
		if t.Parent[v] != -1 {
			t.treeCost += t.ParentCost[v]
		}
	}
	return t
}

// PathTo returns the node sequence from the root to v inclusive, or nil if
// v is unreachable.
func (t *SPT) PathTo(v topology.NodeID) []topology.NodeID {
	if math.IsInf(t.Dist[v], 1) {
		return nil
	}
	var rev []topology.NodeID
	for u := v; u != -1; u = t.Parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// TreeCost returns the total cost of all tree edges reaching reachable
// nodes — the per-event broadcast cost when the tree is rooted at the
// publisher. O(1): the sum is computed once when the tree is built.
func (t *SPT) TreeCost() float64 { return t.treeCost }

// Coverer computes, against one SPT, the cost of the subtree spanning the
// root and a target set: the union of root→target shortest paths with each
// edge counted once. This is the paper's ideal-multicast cost (targets =
// interested nodes) and its dense-mode group multicast cost (targets =
// group members). It reuses an epoch-stamped visited array so per-event
// queries allocate nothing.
type Coverer struct {
	t     *SPT
	stamp []int64
	epoch int64
}

// NewCoverer creates a Coverer for the tree.
func NewCoverer(t *SPT) *Coverer {
	return &Coverer{t: t, stamp: make([]int64, len(t.Dist))}
}

// Cost returns the total edge cost of the union of shortest paths from the
// tree root to every target. Unreachable targets are ignored. Targets equal
// to the root cost nothing.
func (c *Coverer) Cost(targets []topology.NodeID) float64 {
	c.epoch++
	c.stamp[c.t.Root] = c.epoch
	total := 0.0
	for _, v := range targets {
		if math.IsInf(c.t.Dist[v], 1) {
			continue
		}
		for u := v; c.stamp[u] != c.epoch; u = c.t.Parent[u] {
			c.stamp[u] = c.epoch
			total += c.t.ParentCost[u]
		}
	}
	return total
}

// AllPairs holds a full distance matrix; Dist[u][v] is the shortest-path
// distance. Built by running Dijkstra from every node.
type AllPairs struct {
	Dist [][]float64
}

// NewAllPairs computes all-pairs shortest path distances.
func NewAllPairs(g *topology.Graph) *AllPairs {
	n := g.NumNodes()
	ap := &AllPairs{Dist: make([][]float64, n)}
	for u := 0; u < n; u++ {
		ap.Dist[u] = Dijkstra(g, topology.NodeID(u)).Dist
	}
	return ap
}
