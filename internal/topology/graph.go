// Package topology provides the network substrate of the ICDCS 2002
// experiments: an undirected weighted graph type and a GT-ITM-style
// transit–stub random topology generator (Zegura, Calvert, Bhattacharjee,
// "How to Model an Internetwork", INFOCOM 1996 — the paper's ref [20]).
package topology

import (
	"fmt"
	"math"
)

// NodeID indexes a node in a Graph; valid ids are [0, NumNodes()).
type NodeID int

// Kind distinguishes transit (backbone) nodes from stub (edge) nodes.
type Kind uint8

// Node kinds.
const (
	Transit Kind = iota
	StubNode
)

func (k Kind) String() string {
	switch k {
	case Transit:
		return "transit"
	case StubNode:
		return "stub"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node is one vertex of the topology with its hierarchical coordinates.
type Node struct {
	ID    NodeID
	Kind  Kind
	Block int     // transit block (domain) index
	Stub  int     // global stub index, -1 for transit nodes
	X, Y  float64 // planar position used to derive edge costs
}

// Halfedge is one directed half of an undirected edge.
type Halfedge struct {
	To   NodeID
	Cost float64
}

// Edge is an undirected weighted edge.
type Edge struct {
	U, V NodeID
	Cost float64
}

// Stub groups the member nodes of one stub network.
type Stub struct {
	Index   int      // global stub index
	Block   int      // owning transit block
	Gateway NodeID   // transit node this stub hangs off
	Nodes   []NodeID // member (stub) nodes
}

// Graph is an undirected weighted graph with transit–stub annotations. Use
// NewGraph and AddEdge to build one, or Generate for a random transit–stub
// topology.
type Graph struct {
	nodes []Node
	adj   [][]Halfedge
	edges []Edge
	stubs []Stub
	// blocks[b] lists the transit nodes of block b.
	blocks [][]NodeID
}

// NewGraph creates a graph with n isolated nodes of unspecified kind.
func NewGraph(n int) *Graph {
	g := &Graph{
		nodes: make([]Node, n),
		adj:   make([][]Halfedge, n),
	}
	for i := range g.nodes {
		g.nodes[i] = Node{ID: NodeID(i), Stub: -1}
	}
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node record for id.
func (g *Graph) Node(id NodeID) Node {
	return g.nodes[id]
}

// SetNode overwrites the node record (the ID field is forced to id).
func (g *Graph) SetNode(id NodeID, n Node) {
	n.ID = id
	g.nodes[id] = n
}

// AddEdge inserts an undirected edge. Self loops, duplicate edges, and
// non-positive costs are rejected.
func (g *Graph) AddEdge(u, v NodeID, cost float64) error {
	if u == v {
		return fmt.Errorf("topology: self loop at %d", u)
	}
	if u < 0 || int(u) >= len(g.nodes) || v < 0 || int(v) >= len(g.nodes) {
		return fmt.Errorf("topology: edge (%d,%d) out of range", u, v)
	}
	if cost <= 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		return fmt.Errorf("topology: invalid edge cost %v", cost)
	}
	for _, h := range g.adj[u] {
		if h.To == v {
			return fmt.Errorf("topology: duplicate edge (%d,%d)", u, v)
		}
	}
	g.adj[u] = append(g.adj[u], Halfedge{To: v, Cost: cost})
	g.adj[v] = append(g.adj[v], Halfedge{To: u, Cost: cost})
	g.edges = append(g.edges, Edge{U: u, V: v, Cost: cost})
	return nil
}

// HasEdge reports whether an undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	for _, h := range g.adj[u] {
		if h.To == v {
			return true
		}
	}
	return false
}

// EdgeKey canonically identifies an undirected edge (U ≤ V), so (u, v) and
// (v, u) map to the same key. Fault schedules and link-failure sets are
// keyed by it.
type EdgeKey struct {
	U, V NodeID
}

// MakeEdgeKey returns the canonical key for the undirected edge (u, v).
func MakeEdgeKey(u, v NodeID) EdgeKey {
	if u > v {
		u, v = v, u
	}
	return EdgeKey{U: u, V: v}
}

// EdgeBetween returns the undirected edge joining u and v, if any. The
// returned edge is oriented canonically (U ≤ V) regardless of argument
// order.
func (g *Graph) EdgeBetween(u, v NodeID) (Edge, bool) {
	if u < 0 || int(u) >= len(g.nodes) || v < 0 || int(v) >= len(g.nodes) {
		return Edge{}, false
	}
	for _, h := range g.adj[u] {
		if h.To == v {
			k := MakeEdgeKey(u, v)
			return Edge{U: k.U, V: k.V, Cost: h.Cost}, true
		}
	}
	return Edge{}, false
}

// PathEdges resolves a node path into its undirected edges. It returns
// ok = false if any consecutive pair is not joined by an edge.
func (g *Graph) PathEdges(path []NodeID) ([]Edge, bool) {
	if len(path) < 2 {
		return nil, true
	}
	out := make([]Edge, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		e, ok := g.EdgeBetween(path[i-1], path[i])
		if !ok {
			return nil, false
		}
		out = append(out, e)
	}
	return out, true
}

// Neighbors returns the adjacency list of u. The returned slice must not be
// modified.
func (g *Graph) Neighbors(u NodeID) []Halfedge { return g.adj[u] }

// Edges returns all undirected edges. The returned slice must not be
// modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Stubs returns the stub networks. Empty for hand-built graphs.
func (g *Graph) Stubs() []Stub { return g.stubs }

// NumStubs returns the number of stub networks.
func (g *Graph) NumStubs() int { return len(g.stubs) }

// Blocks returns, per transit block, the list of transit node ids.
func (g *Graph) Blocks() [][]NodeID { return g.blocks }

// NumBlocks returns the number of transit blocks.
func (g *Graph) NumBlocks() int { return len(g.blocks) }

// StubOf returns the stub record containing node id, or ok=false for
// transit nodes.
func (g *Graph) StubOf(id NodeID) (Stub, bool) {
	s := g.nodes[id].Stub
	if s < 0 || s >= len(g.stubs) {
		return Stub{}, false
	}
	return g.stubs[s], true
}

// Connected reports whether the graph is connected (true for the empty
// graph and singletons).
func (g *Graph) Connected() bool {
	n := len(g.nodes)
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[u] {
			if !seen[h.To] {
				seen[h.To] = true
				count++
				stack = append(stack, h.To)
			}
		}
	}
	return count == n
}

// TotalEdgeCost returns the sum of all edge costs.
func (g *Graph) TotalEdgeCost() float64 {
	t := 0.0
	for _, e := range g.edges {
		t += e.Cost
	}
	return t
}
