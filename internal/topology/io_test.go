package topology

import (
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	cfg := Eval600
	cfg.Seed = 44
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteText(&sb, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		a, b := g.Node(NodeID(i)), got.Node(NodeID(i))
		if a != b {
			t.Fatalf("node %d differs: %+v vs %+v", i, a, b)
		}
	}
	for i, e := range g.Edges() {
		if got.Edges()[i] != e {
			t.Fatalf("edge %d differs", i)
		}
	}
	if got.NumStubs() != g.NumStubs() || got.NumBlocks() != g.NumBlocks() {
		t.Fatalf("structure differs: stubs %d/%d blocks %d/%d",
			got.NumStubs(), g.NumStubs(), got.NumBlocks(), g.NumBlocks())
	}
	for i, s := range g.Stubs() {
		gs := got.Stubs()[i]
		if gs.Index != s.Index || gs.Block != s.Block || gs.Gateway != s.Gateway || len(gs.Nodes) != len(s.Nodes) {
			t.Fatalf("stub %d differs: %+v vs %+v", i, s, gs)
		}
	}
	if !got.Connected() {
		t.Fatal("round-tripped graph disconnected")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus 1 2 3",
		"node 0 transit 0 -1",                 // short node line
		"node 0 martian 0 -1 1 2",             // bad kind
		"node 0 transit 0 -1 1 2\nedge 0 5 1", // edge out of range
		"node 5 transit 0 -1 1 2",             // id out of range
		"node 0 transit 0 -1 1 2\nedge 0",     // short edge
		"node 0 transit 0 -1 1 2\nstub 0 0",   // short stub
	}
	for i, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestReadTextIgnoresComments(t *testing.T) {
	in := `
# a comment
node 0 transit 0 -1 0 0

node 1 stub 0 0 1 1
edge 0 1 2.5
stub 0 0 0 1
`
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 || g.NumStubs() != 1 {
		t.Fatalf("parsed %d/%d/%d", g.NumNodes(), g.NumEdges(), g.NumStubs())
	}
	if g.Edges()[0].Cost != 2.5 {
		t.Fatal("cost lost")
	}
	s, ok := g.StubOf(1)
	if !ok || s.Gateway != 0 {
		t.Fatal("stub record lost")
	}
}

func TestWriteDOT(t *testing.T) {
	cfg := Net100
	cfg.Seed = 45
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteDOT(&sb, g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "graph topology {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a DOT graph")
	}
	if strings.Count(out, "--") != g.NumEdges() {
		t.Fatalf("edge lines %d != %d", strings.Count(out, "--"), g.NumEdges())
	}
	if !strings.Contains(out, "shape=box") || !strings.Contains(out, "shape=point") {
		t.Fatal("node kinds not distinguished")
	}
}
