package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewGraphEmpty(t *testing.T) {
	g := NewGraph(3)
	if g.NumNodes() != 3 || g.NumEdges() != 0 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Connected() {
		t.Error("3 isolated nodes reported connected")
	}
	if !NewGraph(0).Connected() || !NewGraph(1).Connected() {
		t.Error("trivial graphs should be connected")
	}
}

func TestAddEdge(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if len(g.Neighbors(0)) != 1 || g.Neighbors(0)[0].To != 1 || g.Neighbors(0)[0].Cost != 2.5 {
		t.Errorf("Neighbors(0) = %v", g.Neighbors(0))
	}
	if g.TotalEdgeCost() != 2.5 {
		t.Errorf("TotalEdgeCost = %v", g.TotalEdgeCost())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := g.AddEdge(0, 1, 0); err == nil {
		t.Error("zero cost accepted")
	}
	if err := g.AddEdge(0, 1, math.NaN()); err == nil {
		t.Error("NaN cost accepted")
	}
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0, 2); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestEdgeKeyCanonical(t *testing.T) {
	if MakeEdgeKey(3, 1) != MakeEdgeKey(1, 3) {
		t.Error("EdgeKey not canonical")
	}
	if k := MakeEdgeKey(2, 2); k.U != 2 || k.V != 2 {
		t.Errorf("MakeEdgeKey(2,2) = %+v", k)
	}
}

func TestEdgeBetween(t *testing.T) {
	g := NewGraph(4)
	if err := g.AddEdge(2, 0, 1.5); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]NodeID{{0, 2}, {2, 0}} {
		e, ok := g.EdgeBetween(pair[0], pair[1])
		if !ok {
			t.Fatalf("EdgeBetween(%d,%d) missing", pair[0], pair[1])
		}
		if e.U != 0 || e.V != 2 || e.Cost != 1.5 {
			t.Errorf("EdgeBetween(%d,%d) = %+v, want canonical {0 2 1.5}", pair[0], pair[1], e)
		}
	}
	if _, ok := g.EdgeBetween(0, 1); ok {
		t.Error("phantom edge")
	}
	if _, ok := g.EdgeBetween(-1, 2); ok {
		t.Error("out-of-range accepted")
	}
}

func TestPathEdges(t *testing.T) {
	g := NewGraph(4)
	for i := NodeID(0); i < 3; i++ {
		if err := g.AddEdge(i, i+1, float64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	edges, ok := g.PathEdges([]NodeID{0, 1, 2, 3})
	if !ok || len(edges) != 3 {
		t.Fatalf("PathEdges = %v, %v", edges, ok)
	}
	for i, e := range edges {
		if e.Cost != float64(i)+1 {
			t.Errorf("edge %d cost %v", i, e.Cost)
		}
	}
	if _, ok := g.PathEdges([]NodeID{0, 2}); ok {
		t.Error("non-adjacent pair accepted")
	}
	if edges, ok := g.PathEdges([]NodeID{1}); !ok || edges != nil {
		t.Error("singleton path should yield no edges")
	}
}

func TestConnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if g.Connected() {
		t.Error("two components reported connected")
	}
	g.AddEdge(1, 2, 1)
	if !g.Connected() {
		t.Error("path graph reported disconnected")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{TransitBlocks: 0, TransitPerBlock: 1, NodesPerStub: 1},
		{TransitBlocks: 1, TransitPerBlock: 0, NodesPerStub: 1},
		{TransitBlocks: 1, TransitPerBlock: 1, StubsPerTransit: -1, NodesPerStub: 1},
		{TransitBlocks: 1, TransitPerBlock: 1, StubsPerTransit: 2, NodesPerStub: 0},
		{TransitBlocks: 1, TransitPerBlock: 1, StubsPerTransit: 1, NodesPerStub: 1, ExtraEdgeProb: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPresetNodeCounts(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want int
	}{
		{"Net100", Net100, 100},   // 4 + 4·3·8
		{"Net300", Net300, 305},   // 5 + 5·3·20
		{"Net600", Net600, 604},   // 4 + 4·3·50
		{"Eval600", Eval600, 615}, // 15 + 15·2·20
	}
	for _, c := range cases {
		if got := c.cfg.TotalNodes(); got != c.want {
			t.Errorf("%s.TotalNodes() = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := Eval600
	cfg.Seed = 7
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != cfg.TotalNodes() {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), cfg.TotalNodes())
	}
	if !g.Connected() {
		t.Fatal("generated graph disconnected")
	}
	if g.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d", g.NumBlocks())
	}
	if g.NumStubs() != 3*5*2 {
		t.Fatalf("NumStubs = %d, want 30", g.NumStubs())
	}

	transit, stub := 0, 0
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		switch n.Kind {
		case Transit:
			transit++
			if n.Stub != -1 {
				t.Errorf("transit node %d has stub %d", i, n.Stub)
			}
		case StubNode:
			stub++
			s, ok := g.StubOf(n.ID)
			if !ok {
				t.Fatalf("stub node %d has no stub record", i)
			}
			if s.Block != n.Block {
				t.Errorf("node %d block %d vs stub block %d", i, n.Block, s.Block)
			}
			found := false
			for _, m := range s.Nodes {
				if m == n.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("node %d missing from its stub member list", i)
			}
		}
	}
	if transit != 15 || stub != 600 {
		t.Fatalf("transit=%d stub=%d, want 15/600", transit, stub)
	}

	// Every stub's gateway must be a transit node in the same block and
	// adjacent to some stub member.
	for _, s := range g.Stubs() {
		gw := g.Node(s.Gateway)
		if gw.Kind != Transit || gw.Block != s.Block {
			t.Errorf("stub %d gateway invalid: %+v", s.Index, gw)
		}
		linked := false
		for _, m := range s.Nodes {
			if g.HasEdge(s.Gateway, m) {
				linked = true
			}
		}
		if !linked {
			t.Errorf("stub %d not linked to gateway", s.Index)
		}
		if len(s.Nodes) != 20 {
			t.Errorf("stub %d has %d nodes", s.Index, len(s.Nodes))
		}
	}
}

func TestStubOfTransit(t *testing.T) {
	cfg := Net100
	cfg.Seed = 1
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		if n.Kind == Transit {
			if _, ok := g.StubOf(n.ID); ok {
				t.Fatalf("transit node %d reports a stub", i)
			}
			return
		}
	}
	t.Fatal("no transit node found")
}

func TestGenerateReproducible(t *testing.T) {
	cfg := Net100
	cfg.Seed = 42
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i, e := range a.Edges() {
		if b.Edges()[i] != e {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e, b.Edges()[i])
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := Net100
	cfg.Seed = 1
	a, _ := Generate(cfg)
	cfg.Seed = 2
	b, _ := Generate(cfg)
	same := a.NumEdges() == b.NumEdges()
	if same {
		for i, e := range a.Edges() {
			if b.Edges()[i] != e {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical topologies")
	}
}

func TestEdgeCostLocality(t *testing.T) {
	cfg := Eval600
	cfg.Seed = 5
	g, _ := Generate(cfg)
	var intraStub, interBlock []float64
	for _, e := range g.Edges() {
		u, v := g.Node(e.U), g.Node(e.V)
		switch {
		case u.Kind == StubNode && v.Kind == StubNode && u.Stub == v.Stub:
			intraStub = append(intraStub, e.Cost)
		case u.Kind == Transit && v.Kind == Transit && u.Block != v.Block:
			interBlock = append(interBlock, e.Cost)
		}
	}
	if len(intraStub) == 0 || len(interBlock) == 0 {
		t.Fatal("missing edge classes")
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(interBlock) < 4*mean(intraStub) {
		t.Errorf("inter-block edges (%v) not ≫ intra-stub edges (%v)", mean(interBlock), mean(intraStub))
	}
}

func TestQuickGenerateAlwaysConnected(t *testing.T) {
	law := func(seed int64, tb, tpb, spt, nps uint8) bool {
		cfg := Config{
			TransitBlocks:   int(tb%3) + 1,
			TransitPerBlock: int(tpb%4) + 1,
			StubsPerTransit: int(spt % 3),
			NodesPerStub:    int(nps%6) + 1,
			Seed:            seed,
		}
		g, err := Generate(cfg)
		if err != nil {
			return false
		}
		return g.Connected() && g.NumNodes() == cfg.TotalNodes()
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
