package topology

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stats"
)

// Config parameterises the transit–stub generator the way the paper's
// tables do: a number of transit blocks, transit nodes per block, stubs per
// transit node, and nodes per stub. Edge costs are derived from planar node
// positions, so intra-stub links are cheap, intra-block transit links are
// moderate, and inter-block links are expensive — the locality structure
// that makes regional multicast pay off.
type Config struct {
	TransitBlocks   int // number of transit domains (≥1)
	TransitPerBlock int // transit nodes in each block (≥1)
	StubsPerTransit int // stub networks hanging off each transit node (≥0)
	NodesPerStub    int // nodes in each stub network (≥1)

	// ExtraEdgeProb adds redundant intra-group edges beyond the random
	// spanning tree that guarantees connectivity, per candidate pair.
	// Defaults to 0.15 when zero-valued via Generate.
	ExtraEdgeProb float64

	// CostScale multiplies all Euclidean edge costs. Defaults to 1.
	CostScale float64

	// LastMileFactor additionally multiplies the cost of every edge
	// touching a stub (client) node — intra-stub links and stub→transit
	// gateway links. The paper's §6 extension 2: last-mile links are the
	// slowest and most congested, so they deserve higher costs. Defaults
	// to 1 (no penalty).
	LastMileFactor float64

	Seed int64
}

func (c Config) validate() error {
	switch {
	case c.TransitBlocks < 1:
		return fmt.Errorf("topology: TransitBlocks = %d, need ≥1", c.TransitBlocks)
	case c.TransitPerBlock < 1:
		return fmt.Errorf("topology: TransitPerBlock = %d, need ≥1", c.TransitPerBlock)
	case c.StubsPerTransit < 0:
		return fmt.Errorf("topology: StubsPerTransit = %d, need ≥0", c.StubsPerTransit)
	case c.StubsPerTransit > 0 && c.NodesPerStub < 1:
		return fmt.Errorf("topology: NodesPerStub = %d, need ≥1", c.NodesPerStub)
	case c.ExtraEdgeProb < 0 || c.ExtraEdgeProb > 1:
		return fmt.Errorf("topology: ExtraEdgeProb = %v, need [0,1]", c.ExtraEdgeProb)
	case c.LastMileFactor < 0:
		return fmt.Errorf("topology: LastMileFactor = %v, need ≥ 0", c.LastMileFactor)
	}
	return nil
}

// TotalNodes returns the node count the configuration will produce.
func (c Config) TotalNodes() int {
	return c.TransitBlocks * c.TransitPerBlock * (1 + c.StubsPerTransit*c.NodesPerStub)
}

// Paper network presets. Table 1/2 networks use a single transit block; the
// §5.1 evaluation network uses three.
var (
	// Net100 reproduces the paper's "100 node" network: 1 transit block,
	// 4 transit nodes, 3 stubs per transit node, 8 nodes per stub.
	Net100 = Config{TransitBlocks: 1, TransitPerBlock: 4, StubsPerTransit: 3, NodesPerStub: 8}
	// Net300 reproduces the "300 node" network: 5 transit nodes, 3 stubs
	// each, 20 nodes per stub.
	Net300 = Config{TransitBlocks: 1, TransitPerBlock: 5, StubsPerTransit: 3, NodesPerStub: 20}
	// Net600 reproduces the "600 node" network of Tables 1–2: 4 transit
	// nodes, 3 stubs each, 50 nodes per stub.
	Net600 = Config{TransitBlocks: 1, TransitPerBlock: 4, StubsPerTransit: 3, NodesPerStub: 50}
	// Eval600 reproduces the §5.1 evaluation network: 3 transit blocks ×
	// 5 transit nodes × 2 stubs × 20 nodes.
	Eval600 = Config{TransitBlocks: 3, TransitPerBlock: 5, StubsPerTransit: 2, NodesPerStub: 20}
)

// Geometry constants for node placement. Blocks sit on a coarse ring so
// inter-block distances dominate; stubs cluster tightly around their
// gateway transit node.
const (
	blockRingRadius = 60.0
	blockSpread     = 18.0
	stubOffset      = 7.0
	stubSpread      = 2.5
	minEdgeCost     = 1.0
)

// Generate builds a random transit–stub topology. The result is always
// connected.
func Generate(cfg Config) (*Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ExtraEdgeProb == 0 {
		cfg.ExtraEdgeProb = 0.15
	}
	if cfg.CostScale == 0 {
		cfg.CostScale = 1
	}
	if cfg.LastMileFactor == 0 {
		cfg.LastMileFactor = 1
	}
	r := stats.NewRand(cfg.Seed)

	g := NewGraph(cfg.TotalNodes())
	g.blocks = make([][]NodeID, cfg.TransitBlocks)

	next := NodeID(0)
	alloc := func() NodeID {
		id := next
		next++
		return id
	}

	// Transit backbone: place each block's transit nodes around the block
	// center, connect them with a random tree plus extra edges.
	for b := 0; b < cfg.TransitBlocks; b++ {
		angle := 2 * math.Pi * float64(b) / float64(cfg.TransitBlocks)
		cx := blockRingRadius * math.Cos(angle)
		cy := blockRingRadius * math.Sin(angle)
		ids := make([]NodeID, cfg.TransitPerBlock)
		for i := range ids {
			id := alloc()
			ids[i] = id
			g.SetNode(id, Node{
				Kind:  Transit,
				Block: b,
				Stub:  -1,
				X:     cx + (r.Float64()*2-1)*blockSpread,
				Y:     cy + (r.Float64()*2-1)*blockSpread,
			})
		}
		g.blocks[b] = ids
		connectGroup(g, r, ids, cfg)
	}

	// Inter-block edges: a ring over blocks (tree + closure) through random
	// transit representatives, so the backbone is connected.
	if cfg.TransitBlocks > 1 {
		for b := 0; b < cfg.TransitBlocks; b++ {
			nb := (b + 1) % cfg.TransitBlocks
			u := g.blocks[b][r.Intn(len(g.blocks[b]))]
			v := g.blocks[nb][r.Intn(len(g.blocks[nb]))]
			if !g.HasEdge(u, v) {
				mustAddEdge(g, u, v, cfg)
			}
		}
	}

	// Stubs: each transit node sponsors StubsPerTransit stubs of
	// NodesPerStub nodes placed around it.
	stubIdx := 0
	for b := 0; b < cfg.TransitBlocks; b++ {
		for _, t := range g.blocks[b] {
			tn := g.Node(t)
			for s := 0; s < cfg.StubsPerTransit; s++ {
				angle := 2 * math.Pi * (float64(s) + r.Float64()*0.5) / float64(cfg.StubsPerTransit)
				sx := tn.X + stubOffset*math.Cos(angle)
				sy := tn.Y + stubOffset*math.Sin(angle)
				ids := make([]NodeID, cfg.NodesPerStub)
				for i := range ids {
					id := alloc()
					ids[i] = id
					g.SetNode(id, Node{
						Kind:  StubNode,
						Block: b,
						Stub:  stubIdx,
						X:     sx + (r.Float64()*2-1)*stubSpread,
						Y:     sy + (r.Float64()*2-1)*stubSpread,
					})
				}
				connectGroup(g, r, ids, cfg)
				// Gateway link from the stub into its transit node.
				gw := ids[r.Intn(len(ids))]
				mustAddEdge(g, t, gw, cfg)
				g.stubs = append(g.stubs, Stub{
					Index:   stubIdx,
					Block:   b,
					Gateway: t,
					Nodes:   ids,
				})
				stubIdx++
			}
		}
	}

	if !g.Connected() {
		// Cannot happen by construction; guard anyway.
		return nil, fmt.Errorf("topology: generated graph is disconnected")
	}
	return g, nil
}

// connectGroup wires the ids into a connected random subgraph: a random
// spanning tree (each node links to a uniformly chosen predecessor) plus
// extra edges with probability cfg.ExtraEdgeProb.
func connectGroup(g *Graph, r *rand.Rand, ids []NodeID, cfg Config) {
	for i := 1; i < len(ids); i++ {
		j := r.Intn(i)
		mustAddEdge(g, ids[i], ids[j], cfg)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if !g.HasEdge(ids[i], ids[j]) && r.Float64() < cfg.ExtraEdgeProb {
				mustAddEdge(g, ids[i], ids[j], cfg)
			}
		}
	}
}

// mustAddEdge adds an edge with Euclidean cost (last-mile edges scaled by
// the configured factor); construction call sites guarantee validity.
func mustAddEdge(g *Graph, u, v NodeID, cfg Config) {
	a, b := g.Node(u), g.Node(v)
	d := math.Hypot(a.X-b.X, a.Y-b.Y) * cfg.CostScale
	if d < minEdgeCost {
		d = minEdgeCost
	}
	if a.Kind == StubNode || b.Kind == StubNode {
		d *= cfg.LastMileFactor
	}
	if err := g.AddEdge(u, v, d); err != nil {
		panic(fmt.Sprintf("topology: internal edge error: %v", err))
	}
}
