package topology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteText serialises the graph in a line-oriented format that
// round-trips through ReadText:
//
//	# comments and blank lines are ignored
//	node <id> <transit|stub> <block> <stub> <x> <y>
//	edge <u> <v> <cost>
//	stub <index> <block> <gateway> <node> <node> ...
//
// Node lines must precede the edge and stub lines that reference them;
// WriteText emits them in that order.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# transit-stub topology: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		fmt.Fprintf(bw, "node %d %s %d %d %g %g\n", n.ID, n.Kind, n.Block, n.Stub, n.X, n.Y)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge %d %d %g\n", e.U, e.V, e.Cost)
	}
	for _, s := range g.Stubs() {
		fmt.Fprintf(bw, "stub %d %d %d", s.Index, s.Block, s.Gateway)
		for _, n := range s.Nodes {
			fmt.Fprintf(bw, " %d", n)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadText parses the WriteText format back into a Graph.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	type nodeLine struct {
		n Node
	}
	var nodes []nodeLine
	type edgeLine struct {
		u, v NodeID
		cost float64
	}
	var edges []edgeLine
	var stubs []Stub
	blocks := map[int][]NodeID{}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 7 {
				return nil, fmt.Errorf("topology: line %d: node needs 6 fields", lineNo)
			}
			var n Node
			var kind string
			if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%d %s %d %d %g %g",
				&n.ID, &kind, &n.Block, &n.Stub, &n.X, &n.Y); err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", lineNo, err)
			}
			switch kind {
			case "transit":
				n.Kind = Transit
			case "stub":
				n.Kind = StubNode
			default:
				return nil, fmt.Errorf("topology: line %d: unknown kind %q", lineNo, kind)
			}
			nodes = append(nodes, nodeLine{n: n})
			if n.Kind == Transit {
				blocks[n.Block] = append(blocks[n.Block], n.ID)
			}
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topology: line %d: edge needs 3 fields", lineNo)
			}
			var e edgeLine
			if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%d %d %g", &e.u, &e.v, &e.cost); err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", lineNo, err)
			}
			edges = append(edges, e)
		case "stub":
			if len(fields) < 4 {
				return nil, fmt.Errorf("topology: line %d: stub needs ≥3 fields", lineNo)
			}
			var s Stub
			if _, err := fmt.Sscanf(strings.Join(fields[1:4], " "), "%d %d %d", &s.Index, &s.Block, &s.Gateway); err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", lineNo, err)
			}
			for _, f := range fields[4:] {
				var id NodeID
				if _, err := fmt.Sscanf(f, "%d", &id); err != nil {
					return nil, fmt.Errorf("topology: line %d: %v", lineNo, err)
				}
				s.Nodes = append(s.Nodes, id)
			}
			stubs = append(stubs, s)
		default:
			return nil, fmt.Errorf("topology: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("topology: no nodes")
	}

	g := NewGraph(len(nodes))
	for _, nl := range nodes {
		if nl.n.ID < 0 || int(nl.n.ID) >= len(nodes) {
			return nil, fmt.Errorf("topology: node id %d out of range", nl.n.ID)
		}
		g.SetNode(nl.n.ID, nl.n)
	}
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.cost); err != nil {
			return nil, err
		}
	}
	sort.Slice(stubs, func(i, j int) bool { return stubs[i].Index < stubs[j].Index })
	g.stubs = stubs
	nb := 0
	for b := range blocks {
		if b+1 > nb {
			nb = b + 1
		}
	}
	g.blocks = make([][]NodeID, nb)
	for b, ids := range blocks {
		g.blocks[b] = ids
	}
	return g, nil
}

// WriteDOT emits the graph in Graphviz DOT format for visualisation:
// transit nodes are boxes, stub nodes are points colored by block, edge
// lengths reflect costs.
func WriteDOT(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph topology {")
	fmt.Fprintln(bw, "  layout=neato; overlap=false; splines=true;")
	colors := []string{"steelblue", "darkorange", "seagreen", "orchid", "firebrick", "goldenrod"}
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		color := colors[n.Block%len(colors)]
		if n.Kind == Transit {
			fmt.Fprintf(bw, "  n%d [shape=box, style=filled, fillcolor=%q, label=\"T%d\", pos=\"%.1f,%.1f\"];\n",
				n.ID, color, n.ID, n.X, n.Y)
		} else {
			fmt.Fprintf(bw, "  n%d [shape=point, color=%q, pos=\"%.1f,%.1f\"];\n",
				n.ID, color, n.X, n.Y)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  n%d -- n%d [len=%.2f];\n", e.U, e.V, e.Cost)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
