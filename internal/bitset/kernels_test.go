package bitset

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func randWords(rng *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = rng.Uint64()
	}
	return w
}

// TestQuickBlockedKernelsMatchNaive proves the unrolled word loops compute
// exactly what the single-word reference loops compute, for every length
// (including the 1..3 word tails the unrolling peels off).
func TestQuickBlockedKernelsMatchNaive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 67 // covers 0..66: all tail residues and a few blocks
		a := randWords(rng, n)
		b := randWords(rng, n)
		if ab, ba := wastePairWords(a, b); func() bool {
			wab, wba := wastePairWordsNaive(a, b)
			return ab != wab || ba != wba
		}() {
			return false
		}
		if andCountWords(a, b) != andCountWordsNaive(a, b) {
			return false
		}
		sum := 0
		for _, w := range a {
			sum += popcountNaive(w)
		}
		if onesCountWords(a) != sum {
			return false
		}
		or, xor, andnot := 0, 0, 0
		for i := range a {
			or += popcountNaive(a[i] | b[i])
			xor += popcountNaive(a[i] ^ b[i])
			andnot += popcountNaive(a[i] &^ b[i])
		}
		return orCountWords(a, b) == or &&
			xorCountWords(a, b) == xor &&
			andNotCountWords(a, b) == andnot
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// popcountNaive is a from-first-principles bit count, independent of
// math/bits, so the property test does not assume the thing it checks.
func popcountNaive(w uint64) int {
	c := 0
	for ; w != 0; w &= w - 1 {
		c++
	}
	return c
}

func TestScratchPoolReuse(t *testing.T) {
	s := GetScratch()
	b := s.Ints(128)
	if len(b) != 128 {
		t.Fatalf("Ints(128) len = %d", len(b))
	}
	b[0], b[127] = 1, 2
	b2 := s.Ints(64)
	if len(b2) != 64 {
		t.Fatalf("Ints(64) len = %d", len(b2))
	}
	if &b[0] != &b2[0] {
		t.Fatal("shrinking Ints reallocated")
	}
	s.Release()
}

// BenchmarkBlockedVsNaive is the guard the unrolled kernels are held to: if
// a refactor makes the blocked form slower than the naive loop, the split
// shows up here side by side.
func BenchmarkBlockedVsNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{64, 1024, 16384} {
		x := randWords(rng, n)
		y := randWords(rng, n)
		b.Run(fmt.Sprintf("wastePair/blocked/words=%d", n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				sinkA, sinkB = wastePairWords(x, y)
			}
		})
		b.Run(fmt.Sprintf("wastePair/naive/words=%d", n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				sinkA, sinkB = wastePairWordsNaive(x, y)
			}
		})
		b.Run(fmt.Sprintf("andCount/blocked/words=%d", n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				sinkA = andCountWords(x, y)
			}
		})
		b.Run(fmt.Sprintf("andCount/naive/words=%d", n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				sinkA = andCountWordsNaive(x, y)
			}
		})
	}
}

var sinkA, sinkB int
