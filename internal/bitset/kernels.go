package bitset

import (
	"math/bits"
	"sync"
)

// This file holds the word-loop kernels every set operation reduces to.
// Each is unrolled into fixed 4-word blocks: the popcounts of a block are
// accumulated into independent counters, which breaks the loop-carried
// dependency chain and gives the compiler straight-line bodies it can
// schedule across the POPCNT latency (and vectorize where available). The
// *Naive twins are the reference single-word loops; the property tests
// prove equality and the BenchmarkBlockedVsNaive guard in kernels_test.go
// keeps the blocked forms from regressing below them.

// onesCountWords returns popcount(a).
func onesCountWords(a []uint64) int {
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c0 += bits.OnesCount64(a[i])
		c1 += bits.OnesCount64(a[i+1])
		c2 += bits.OnesCount64(a[i+2])
		c3 += bits.OnesCount64(a[i+3])
	}
	for ; i < len(a); i++ {
		c0 += bits.OnesCount64(a[i])
	}
	return c0 + c1 + c2 + c3
}

// andCountWords returns popcount(a & b). len(b) must be ≥ len(a).
func andCountWords(a, b []uint64) int {
	b = b[:len(a)]
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c0 += bits.OnesCount64(a[i] & b[i])
		c1 += bits.OnesCount64(a[i+1] & b[i+1])
		c2 += bits.OnesCount64(a[i+2] & b[i+2])
		c3 += bits.OnesCount64(a[i+3] & b[i+3])
	}
	for ; i < len(a); i++ {
		c0 += bits.OnesCount64(a[i] & b[i])
	}
	return c0 + c1 + c2 + c3
}

// orCountWords returns popcount(a | b). len(b) must be ≥ len(a).
func orCountWords(a, b []uint64) int {
	b = b[:len(a)]
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c0 += bits.OnesCount64(a[i] | b[i])
		c1 += bits.OnesCount64(a[i+1] | b[i+1])
		c2 += bits.OnesCount64(a[i+2] | b[i+2])
		c3 += bits.OnesCount64(a[i+3] | b[i+3])
	}
	for ; i < len(a); i++ {
		c0 += bits.OnesCount64(a[i] | b[i])
	}
	return c0 + c1 + c2 + c3
}

// xorCountWords returns popcount(a ^ b). len(b) must be ≥ len(a).
func xorCountWords(a, b []uint64) int {
	b = b[:len(a)]
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c0 += bits.OnesCount64(a[i] ^ b[i])
		c1 += bits.OnesCount64(a[i+1] ^ b[i+1])
		c2 += bits.OnesCount64(a[i+2] ^ b[i+2])
		c3 += bits.OnesCount64(a[i+3] ^ b[i+3])
	}
	for ; i < len(a); i++ {
		c0 += bits.OnesCount64(a[i] ^ b[i])
	}
	return c0 + c1 + c2 + c3
}

// andNotCountWords returns popcount(a &^ b). len(b) must be ≥ len(a).
func andNotCountWords(a, b []uint64) int {
	b = b[:len(a)]
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c0 += bits.OnesCount64(a[i] &^ b[i])
		c1 += bits.OnesCount64(a[i+1] &^ b[i+1])
		c2 += bits.OnesCount64(a[i+2] &^ b[i+2])
		c3 += bits.OnesCount64(a[i+3] &^ b[i+3])
	}
	for ; i < len(a); i++ {
		c0 += bits.OnesCount64(a[i] &^ b[i])
	}
	return c0 + c1 + c2 + c3
}

// wastePairWords returns (popcount(a &^ b), popcount(b &^ a)) in one fused
// pass. len(b) must be ≥ len(a).
func wastePairWords(a, b []uint64) (aNotB, bNotA int) {
	b = b[:len(a)]
	var a0, a1, b0, b1 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		w0, v0 := a[i], b[i]
		w1, v1 := a[i+1], b[i+1]
		w2, v2 := a[i+2], b[i+2]
		w3, v3 := a[i+3], b[i+3]
		a0 += bits.OnesCount64(w0&^v0) + bits.OnesCount64(w1&^v1)
		a1 += bits.OnesCount64(w2&^v2) + bits.OnesCount64(w3&^v3)
		b0 += bits.OnesCount64(v0&^w0) + bits.OnesCount64(v1&^w1)
		b1 += bits.OnesCount64(v2&^w2) + bits.OnesCount64(v3&^w3)
	}
	for ; i < len(a); i++ {
		a0 += bits.OnesCount64(a[i] &^ b[i])
		b0 += bits.OnesCount64(b[i] &^ a[i])
	}
	return a0 + a1, b0 + b1
}

// wastePairWordsNaive is the pre-unrolling reference loop for the bench
// guard and the equality property tests.
func wastePairWordsNaive(a, b []uint64) (aNotB, bNotA int) {
	b = b[:len(a)]
	for i, w := range a {
		v := b[i]
		aNotB += bits.OnesCount64(w &^ v)
		bNotA += bits.OnesCount64(v &^ w)
	}
	return aNotB, bNotA
}

// andCountWordsNaive is the single-word reference for andCountWords.
func andCountWordsNaive(a, b []uint64) int {
	b = b[:len(a)]
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w & b[i])
	}
	return c
}

// Scratch is a pooled []int buffer for the batch kernels' temporaries
// (WasteMany / IntersectMany group counters). Pooling through a pointer
// type keeps Get/Put themselves allocation-free in steady state.
type Scratch struct{ ints []int }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a pooled buffer whose Ints(n) view has length n.
// Release it when done.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Ints returns the buffer resized to length n (contents undefined).
func (s *Scratch) Ints(n int) []int {
	if cap(s.ints) < n {
		s.ints = make([]int, n)
	}
	s.ints = s.ints[:n]
	return s.ints
}

// Release returns the buffer to the pool. The slices obtained from Ints
// must not be used afterwards.
func (s *Scratch) Release() { scratchPool.Put(s) }
