// Package bitset provides a dense, fixed-capacity bit set used throughout the
// clustering library as the subscriber membership vector s(a) ∈ {0,1}^Ns of
// the ICDCS 2002 paper. The hot operations of every clustering algorithm —
// expected-waste distances — reduce to AND-NOT population counts, so the
// representation is a flat []uint64 with branch-free word loops.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over the universe [0, Len()). The zero value is an
// empty set of length zero; use New to create a set with capacity.
//
// All binary operations (Union, Intersect, AndNotCount, ...) require both
// operands to have the same length; they panic otherwise, because mixing
// universes is always a programming error in this library.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set over the universe [0, n) with all bits clear.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices builds a set over [0, n) with the given bits set.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Set(i)
	}
	return s
}

// Len returns the size of the universe (not the number of set bits).
func (s *Set) Len() int { return s.n }

// check panics if i is outside the universe.
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

func (s *Set) checkSame(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: mismatched lengths %d and %d", s.n, t.n))
	}
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int { return onesCountWords(s.words) }

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether the set is empty.
func (s *Set) None() bool { return !s.Any() }

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of t (same length required).
func (s *Set) CopyFrom(t *Set) {
	s.checkSame(t)
	copy(s.words, t.words)
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith sets s = s ∪ t in place.
func (s *Set) UnionWith(t *Set) {
	s.checkSame(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith sets s = s ∩ t in place.
func (s *Set) IntersectWith(t *Set) {
	s.checkSame(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// DifferenceWith sets s = s ∖ t in place.
func (s *Set) DifferenceWith(t *Set) {
	s.checkSame(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Union returns a new set s ∪ t.
func (s *Set) Union(t *Set) *Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// Intersect returns a new set s ∩ t.
func (s *Set) Intersect(t *Set) *Set {
	c := s.Clone()
	c.IntersectWith(t)
	return c
}

// Difference returns a new set s ∖ t.
func (s *Set) Difference(t *Set) *Set {
	c := s.Clone()
	c.DifferenceWith(t)
	return c
}

// Equal reports whether s and t contain exactly the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// AndNotCount returns |s ∖ t|, the number of bits set in s but not in t.
// This is the inner loop of the paper's expected-waste distance d(a, b).
func (s *Set) AndNotCount(t *Set) int {
	s.checkSame(t)
	return andNotCountWords(s.words, t.words)
}

// WastePair returns (|s ∖ t|, |t ∖ s|) in a single fused word loop. The
// expected-waste distance needs both AND-NOT counts; computing them
// together halves the memory traffic of two AndNotCount passes.
func (s *Set) WastePair(t *Set) (sNotT, tNotS int) {
	s.checkSame(t)
	return wastePairWords(s.words, t.words)
}

// UnionWithCount sets s = s ∪ t in place and returns the resulting |s ∪ t|,
// fusing UnionWith and Count into one pass.
func (s *Set) UnionWithCount(t *Set) int {
	s.checkSame(t)
	c := 0
	for i, w := range t.words {
		u := s.words[i] | w
		s.words[i] = u
		c += bits.OnesCount64(u)
	}
	return c
}

// wasteBlockWords is the number of words of the streamed set processed per
// block in WasteMany: 4 KiB, small enough to stay resident in L1 while the
// block is replayed against every group vector.
const wasteBlockWords = 512

// WasteMany computes, for every g, the fused AND-NOT pair of a against
// bs[g]: aNotB[g] = |a ∖ bs[g]| and bNotA[g] = |bs[g] ∖ a|. The word array
// of a is streamed once per block across all group vectors (rather than
// once per group), so a K-way nearest-group scan touches a's memory K×
// less. aNotB and bNotA must have at least len(bs) entries.
func WasteMany(a *Set, bs []*Set, aNotB, bNotA []int) {
	if len(aNotB) < len(bs) || len(bNotA) < len(bs) {
		panic(fmt.Sprintf("bitset: WasteMany output length %d/%d for %d sets",
			len(aNotB), len(bNotA), len(bs)))
	}
	for _, t := range bs {
		a.checkSame(t)
	}
	for g := range bs {
		aNotB[g], bNotA[g] = 0, 0
	}
	words := a.words
	for lo := 0; lo < len(words); lo += wasteBlockWords {
		hi := lo + wasteBlockWords
		if hi > len(words) {
			hi = len(words)
		}
		blk := words[lo:hi]
		for g, t := range bs {
			ca, cb := wastePairWords(blk, t.words[lo:hi])
			aNotB[g] += ca
			bNotA[g] += cb
		}
	}
}

// IntersectMany computes x[g] = |a ∩ bs[g]| for every g, streaming a's
// word array once per block across all group vectors like WasteMany. It is
// the cheapest batch kernel for nearest-group scans: callers that track
// set cardinalities can recover both AND-NOT counts from the intersection
// alone (|a ∖ b| = |a| − |a ∩ b|), paying one popcount per word instead of
// two. x must have at least len(bs) entries.
func IntersectMany(a *Set, bs []*Set, x []int) {
	if len(x) < len(bs) {
		panic(fmt.Sprintf("bitset: IntersectMany output length %d for %d sets", len(x), len(bs)))
	}
	for _, t := range bs {
		a.checkSame(t)
	}
	for g := range bs {
		x[g] = 0
	}
	words := a.words
	for lo := 0; lo < len(words); lo += wasteBlockWords {
		hi := lo + wasteBlockWords
		if hi > len(words) {
			hi = len(words)
		}
		blk := words[lo:hi]
		for g, t := range bs {
			x[g] += andCountWords(blk, t.words[lo:hi])
		}
	}
}

// IntersectCount returns |s ∩ t| without allocating.
func (s *Set) IntersectCount(t *Set) int {
	s.checkSame(t)
	return andCountWords(s.words, t.words)
}

// UnionCount returns |s ∪ t| without allocating.
func (s *Set) UnionCount(t *Set) int {
	s.checkSame(t)
	return orCountWords(s.words, t.words)
}

// SymmetricDiffCount returns |s ⊕ t|, the squared Euclidean distance between
// the two membership vectors (paper §4.1).
func (s *Set) SymmetricDiffCount(t *Set) int {
	s.checkSame(t)
	return xorCountWords(s.words, t.words)
}

// Intersects reports whether s ∩ t is non-empty.
func (s *Set) Intersects(t *Set) bool {
	s.checkSame(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// IsSubsetOf reports whether every bit of s is also set in t.
func (s *Set) IsSubsetOf(t *Set) bool {
	s.checkSame(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in increasing order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the sorted slice of set bit positions.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Hash returns a 64-bit hash of the set's contents, suitable for
// hyper-cell coalescing buckets. Equal sets always hash equally. The loop
// folds whole words through a splitmix64-style mixer — 8× fewer multiply
// steps than the previous byte-at-a-time FNV-1a — and is deterministic
// across runs, so coalescing buckets are stable.
func (s *Set) Hash() uint64 {
	const prime = 1099511628211 // FNV-1a 64-bit prime
	h := uint64(14695981039346656037)
	for _, w := range s.words {
		h = (h ^ mix64(w)) * prime
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap invertible avalanche so that
// sparse word values still flip about half the hash bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// String renders the set as a compact list like "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
