// Package bitset provides a dense, fixed-capacity bit set used throughout the
// clustering library as the subscriber membership vector s(a) ∈ {0,1}^Ns of
// the ICDCS 2002 paper. The hot operations of every clustering algorithm —
// expected-waste distances — reduce to AND-NOT population counts, so the
// representation is a flat []uint64 with branch-free word loops.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over the universe [0, Len()). The zero value is an
// empty set of length zero; use New to create a set with capacity.
//
// All binary operations (Union, Intersect, AndNotCount, ...) require both
// operands to have the same length; they panic otherwise, because mixing
// universes is always a programming error in this library.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set over the universe [0, n) with all bits clear.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices builds a set over [0, n) with the given bits set.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Set(i)
	}
	return s
}

// Len returns the size of the universe (not the number of set bits).
func (s *Set) Len() int { return s.n }

// check panics if i is outside the universe.
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

func (s *Set) checkSame(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: mismatched lengths %d and %d", s.n, t.n))
	}
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether the set is empty.
func (s *Set) None() bool { return !s.Any() }

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of t (same length required).
func (s *Set) CopyFrom(t *Set) {
	s.checkSame(t)
	copy(s.words, t.words)
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith sets s = s ∪ t in place.
func (s *Set) UnionWith(t *Set) {
	s.checkSame(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith sets s = s ∩ t in place.
func (s *Set) IntersectWith(t *Set) {
	s.checkSame(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// DifferenceWith sets s = s ∖ t in place.
func (s *Set) DifferenceWith(t *Set) {
	s.checkSame(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Union returns a new set s ∪ t.
func (s *Set) Union(t *Set) *Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// Intersect returns a new set s ∩ t.
func (s *Set) Intersect(t *Set) *Set {
	c := s.Clone()
	c.IntersectWith(t)
	return c
}

// Difference returns a new set s ∖ t.
func (s *Set) Difference(t *Set) *Set {
	c := s.Clone()
	c.DifferenceWith(t)
	return c
}

// Equal reports whether s and t contain exactly the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// AndNotCount returns |s ∖ t|, the number of bits set in s but not in t.
// This is the inner loop of the paper's expected-waste distance d(a, b).
func (s *Set) AndNotCount(t *Set) int {
	s.checkSame(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w &^ t.words[i])
	}
	return c
}

// IntersectCount returns |s ∩ t| without allocating.
func (s *Set) IntersectCount(t *Set) int {
	s.checkSame(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & t.words[i])
	}
	return c
}

// UnionCount returns |s ∪ t| without allocating.
func (s *Set) UnionCount(t *Set) int {
	s.checkSame(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w | t.words[i])
	}
	return c
}

// SymmetricDiffCount returns |s ⊕ t|, the squared Euclidean distance between
// the two membership vectors (paper §4.1).
func (s *Set) SymmetricDiffCount(t *Set) int {
	s.checkSame(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w ^ t.words[i])
	}
	return c
}

// Intersects reports whether s ∩ t is non-empty.
func (s *Set) Intersects(t *Set) bool {
	s.checkSame(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// IsSubsetOf reports whether every bit of s is also set in t.
func (s *Set) IsSubsetOf(t *Set) bool {
	s.checkSame(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in increasing order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the sorted slice of set bit positions.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Hash returns an order-independent 64-bit FNV-1a style hash of the set's
// contents, suitable for hyper-cell coalescing buckets. Equal sets always
// hash equally.
func (s *Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s.words {
		for b := 0; b < 8; b++ {
			h ^= (w >> (8 * b)) & 0xff
			h *= prime
		}
	}
	return h
}

// String renders the set as a compact list like "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
