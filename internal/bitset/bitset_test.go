package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		s := New(n)
		if s.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, s.Len())
		}
		if s.Count() != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, s.Count())
		}
		if s.Any() {
			t.Errorf("New(%d).Any() = true", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetClearTest(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Errorf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		s.Clear(i)
		if s.Test(i) {
			t.Errorf("bit %d set after Clear", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(*Set){
		func(s *Set) { s.Set(-1) },
		func(s *Set) { s.Set(10) },
		func(s *Set) { s.Test(10) },
		func(s *Set) { s.Clear(-5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn(New(10))
		}()
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("UnionWith with mismatched lengths did not panic")
		}
	}()
	a.UnionWith(b)
}

func TestCount(t *testing.T) {
	s := FromIndices(200, 0, 63, 64, 100, 199)
	if got := s.Count(); got != 5 {
		t.Errorf("Count() = %d, want 5", got)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(100, 1, 2, 3, 70)
	b := FromIndices(100, 2, 3, 4, 99)

	if got := a.Union(b).Indices(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 70, 99}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Indices(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Difference(b).Indices(); !reflect.DeepEqual(got, []int{1, 70}) {
		t.Errorf("Difference = %v", got)
	}
	if got := a.AndNotCount(b); got != 2 {
		t.Errorf("AndNotCount = %d, want 2", got)
	}
	if got := b.AndNotCount(a); got != 2 {
		t.Errorf("AndNotCount reverse = %d, want 2", got)
	}
	if got := a.IntersectCount(b); got != 2 {
		t.Errorf("IntersectCount = %d, want 2", got)
	}
	if got := a.UnionCount(b); got != 6 {
		t.Errorf("UnionCount = %d, want 6", got)
	}
	if got := a.SymmetricDiffCount(b); got != 4 {
		t.Errorf("SymmetricDiffCount = %d, want 4", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	if a.IsSubsetOf(b) {
		t.Error("IsSubsetOf = true, want false")
	}
	if !a.Intersect(b).IsSubsetOf(a) {
		t.Error("a∩b ⊄ a")
	}
}

func TestDisjoint(t *testing.T) {
	a := FromIndices(64, 0, 1)
	b := FromIndices(64, 2, 3)
	if a.Intersects(b) {
		t.Error("disjoint sets report Intersects")
	}
	if a.IntersectCount(b) != 0 {
		t.Error("disjoint IntersectCount != 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(64, 5)
	c := a.Clone()
	c.Set(6)
	if a.Test(6) {
		t.Error("mutating clone affected original")
	}
	if !c.Test(5) {
		t.Error("clone missing original bit")
	}
}

func TestCopyFromAndReset(t *testing.T) {
	a := FromIndices(64, 1, 2)
	b := New(64)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Error("CopyFrom not equal")
	}
	b.Reset()
	if b.Any() {
		t.Error("Reset left bits set")
	}
	if !a.Test(1) {
		t.Error("Reset of copy affected source")
	}
}

func TestEqual(t *testing.T) {
	a := FromIndices(64, 1)
	b := FromIndices(64, 1)
	c := FromIndices(64, 2)
	d := FromIndices(65, 1)
	if !a.Equal(b) {
		t.Error("equal sets not Equal")
	}
	if a.Equal(c) {
		t.Error("different sets Equal")
	}
	if a.Equal(d) {
		t.Error("different-length sets Equal")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(64, 1, 2, 3)
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{1, 2}) {
		t.Errorf("early stop saw %v", seen)
	}
}

func TestHashEqualSets(t *testing.T) {
	a := FromIndices(200, 3, 77, 150)
	b := FromIndices(200, 3, 77, 150)
	if a.Hash() != b.Hash() {
		t.Error("equal sets hash differently")
	}
	b.Set(151)
	if a.Hash() == b.Hash() {
		t.Error("suspicious: different sets hash equally (possible but unlikely)")
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(64, 1, 5).String(); got != "{1, 5}" {
		t.Errorf("String() = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
}

// randomSet builds a reproducible random set for property tests.
func randomSet(r *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Set(i)
		}
	}
	return s
}

func TestQuickSetAlgebraLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, b := randomSet(r, n), randomSet(r, n)

		// |a∪b| = |a| + |b| - |a∩b|
		if a.UnionCount(b) != a.Count()+b.Count()-a.IntersectCount(b) {
			return false
		}
		// |a⊕b| = |a∖b| + |b∖a|
		if a.SymmetricDiffCount(b) != a.AndNotCount(b)+b.AndNotCount(a) {
			return false
		}
		// a∖b ⊆ a and disjoint from b
		d := a.Difference(b)
		if !d.IsSubsetOf(a) || d.Intersects(b) {
			return false
		}
		// union is commutative
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		// De Morgan-ish: (a∪b)∖b == a∖b
		if !a.Union(b).Difference(b).Equal(a.Difference(b)) {
			return false
		}
		// ForEach agrees with Test
		ok := true
		a.ForEach(func(i int) bool {
			if !a.Test(i) {
				ok = false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(law, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesIndices(t *testing.T) {
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 1+r.Intn(500))
		return len(s.Indices()) == s.Count()
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAndNotCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randomSet(r, 4096), randomSet(r, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.AndNotCount(y)
	}
}

func TestQuickFusedKernelsMatchNaive(t *testing.T) {
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(600)
		a, b := randomSet(r, n), randomSet(r, n)

		// WastePair is the fusion of two AndNotCount scans.
		aNotB, bNotA := a.WastePair(b)
		if aNotB != a.AndNotCount(b) || bNotA != b.AndNotCount(a) {
			return false
		}
		// UnionWithCount mutates like UnionWith and counts like Count.
		u := a.Union(b)
		c := a.Clone()
		if c.UnionWithCount(b) != u.Count() || !c.Equal(u) {
			return false
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWasteManyMatchesPairwise(t *testing.T) {
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(400)
		a := randomSet(r, n)
		bs := make([]*Set, 1+r.Intn(8))
		for i := range bs {
			bs[i] = randomSet(r, n)
		}
		aNotB := make([]int, len(bs))
		bNotA := make([]int, len(bs))
		WasteMany(a, bs, aNotB, bNotA)
		for i, b := range bs {
			wantA, wantB := a.WastePair(b)
			if aNotB[i] != wantA || bNotA[i] != wantB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestWasteManyCrossesBlocks exercises sets wider than one streaming block
// (wasteBlockWords words) so the blocked loop's tail handling is covered.
func TestWasteManyCrossesBlocks(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := (wasteBlockWords + 37) * 64 // > one block of words, ragged tail
	a := randomSet(r, n)
	bs := []*Set{randomSet(r, n), randomSet(r, n), randomSet(r, n)}
	aNotB := make([]int, len(bs))
	bNotA := make([]int, len(bs))
	WasteMany(a, bs, aNotB, bNotA)
	for i, b := range bs {
		wantA, wantB := a.WastePair(b)
		if aNotB[i] != wantA || bNotA[i] != wantB {
			t.Fatalf("pair %d: got (%d,%d), want (%d,%d)", i, aNotB[i], bNotA[i], wantA, wantB)
		}
	}
}

func TestWasteManyShortOutputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WasteMany with short output slices did not panic")
		}
	}()
	a := New(64)
	WasteMany(a, []*Set{New(64), New(64)}, make([]int, 1), make([]int, 2))
}

func TestHashIgnoresConstructionOrder(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomSet(r, 500)
	// Rebuild the same membership through a different mutation history.
	b := New(500)
	for _, i := range a.Indices() {
		b.Set(i)
	}
	b.Set(13)
	if !a.Test(13) {
		b.Clear(13)
	}
	if !a.Equal(b) {
		t.Fatal("test setup broken: sets differ")
	}
	if a.Hash() != b.Hash() {
		t.Error("equal sets built differently hash differently")
	}
}

func BenchmarkWastePair(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randomSet(r, 4096), randomSet(r, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = x.WastePair(y)
	}
}

// BenchmarkAndNotCountPair is the unfused equivalent of BenchmarkWastePair:
// the same two counts via two independent scans.
func BenchmarkAndNotCountPair(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randomSet(r, 4096), randomSet(r, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.AndNotCount(y)
		_ = y.AndNotCount(x)
	}
}

func BenchmarkWasteMany(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const k = 32
	x := randomSet(r, 4096)
	ys := make([]*Set, k)
	for i := range ys {
		ys[i] = randomSet(r, 4096)
	}
	aNotB := make([]int, k)
	bNotA := make([]int, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WasteMany(x, ys, aNotB, bNotA)
	}
}

func BenchmarkHash(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomSet(r, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Hash()
	}
}

func TestQuickIntersectManyMatchesPairwise(t *testing.T) {
	law := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(400)
		a := randomSet(r, n)
		bs := make([]*Set, 1+r.Intn(8))
		for i := range bs {
			bs[i] = randomSet(r, n)
		}
		x := make([]int, len(bs))
		IntersectMany(a, bs, x)
		for i, b := range bs {
			if x[i] != a.IntersectCount(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectManyShortOutputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntersectMany with a short output slice did not panic")
		}
	}()
	a := New(64)
	IntersectMany(a, []*Set{New(64), New(64)}, make([]int, 1))
}

func BenchmarkIntersectMany(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const k = 32
	x := randomSet(r, 4096)
	ys := make([]*Set, k)
	for i := range ys {
		ys[i] = randomSet(r, 4096)
	}
	cnt := make([]int, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectMany(x, ys, cnt)
	}
}
