package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// patterns the ISSUE calls out explicitly: empty, single bit, a full chunk,
// alternating bits — each sits on a promotion/demotion boundary.
func boundaryPatterns(n int) []*Set {
	empty := New(n)
	single := New(n)
	if n > 0 {
		single.Set(n / 2)
	}
	full := New(n)
	for i := 0; i < n && i < chunkBits; i++ {
		full.Set(i)
	}
	alt := New(n)
	for i := 0; i < n; i += 2 {
		alt.Set(i)
	}
	cutoff := New(n) // exactly arrayCutoff bits in chunk 0: array/bitmap edge
	for i := 0; i < n && i < arrayCutoff; i++ {
		cutoff.Set(i)
	}
	over := New(n) // one past the cutoff: must be a bitmap container
	for i := 0; i < n && i < arrayCutoff+1; i++ {
		over.Set(i)
	}
	return []*Set{empty, single, full, alt, cutoff, over}
}

func randomDensitySet(rng *rand.Rand, n int, density float64) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			s.Set(i)
		}
	}
	return s
}

func TestCompressRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, chunkBits - 1, chunkBits, chunkBits + 1, 3 * chunkBits} {
		for _, s := range boundaryPatterns(n) {
			c := Compress(s)
			if !c.ToSet().Equal(s) {
				t.Fatalf("n=%d: round trip lost bits", n)
			}
			if c.Count() != s.Count() {
				t.Fatalf("n=%d: Count %d vs %d", n, c.Count(), s.Count())
			}
			for i := 0; i < n; i += 17 {
				if c.Test(i) != s.Test(i) {
					t.Fatalf("n=%d: Test(%d) mismatch", n, i)
				}
			}
		}
	}
}

func TestCompressedSetClearMatchesDense(t *testing.T) {
	// Drive random Set/Clear sequences across the promotion/demotion
	// boundary and check the compressed set tracks the dense one exactly.
	rng := rand.New(rand.NewSource(71))
	n := 2*chunkBits + 333
	dense := New(n)
	c := NewCompressed(n)
	for step := 0; step < 30000; step++ {
		i := rng.Intn(n)
		// Bias toward chunk 0 so its container crosses arrayCutoff in both
		// directions several times during the walk.
		if rng.Intn(4) != 0 {
			i = rng.Intn(arrayCutoff + 512)
		}
		if rng.Intn(3) == 0 {
			dense.Clear(i)
			c.Clear(i)
		} else {
			dense.Set(i)
			c.Set(i)
		}
	}
	if !c.ToSet().Equal(dense) {
		t.Fatal("compressed diverged from dense after Set/Clear walk")
	}
	if got, want := c.Count(), dense.Count(); got != want {
		t.Fatalf("Count %d, want %d", got, want)
	}
	// The walk must have left chunk 0 in one kind or the other; whichever
	// it is, re-compressing the dense set must agree bit for bit.
	if !c.Equal(Compress(dense)) {
		t.Fatal("incremental build disagrees with Compress of the same bits")
	}
}

// TestQuickCompressedKernelsMatchDense is the bit-identity property test:
// every compressed kernel must return exactly what the dense formulation
// returns, for random sets of varied density.
func TestQuickCompressedKernelsMatchDense(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed int64, dA, dB uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3*chunkBits)
		a := randomDensitySet(rng, n, float64(dA%100)/99)
		b := randomDensitySet(rng, n, float64(dB%100)/99)
		ca, cb := Compress(a), Compress(b)

		wantAB, wantBA := a.WastePair(b)
		if gotAB, gotBA := ca.WastePairSet(b); gotAB != wantAB || gotBA != wantBA {
			return false
		}
		if gotAB, gotBA := ca.WastePair(cb); gotAB != wantAB || gotBA != wantBA {
			return false
		}
		if ca.IntersectCountSet(b) != a.IntersectCount(b) {
			return false
		}
		if ca.IntersectCount(cb) != a.IntersectCount(b) {
			return false
		}
		u := a.Clone()
		wantU := u.UnionWithCount(b)
		cu := ca.Clone()
		if cu.UnionWithCount(cb) != wantU {
			return false
		}
		return cu.ToSet().Equal(u)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompressedKernelsOnBoundaryPatterns(t *testing.T) {
	n := 2*chunkBits + 123
	pats := boundaryPatterns(n)
	for i, a := range pats {
		ca := Compress(a)
		for j, b := range pats {
			wantAB, wantBA := a.WastePair(b)
			if gotAB, gotBA := ca.WastePairSet(b); gotAB != wantAB || gotBA != wantBA {
				t.Fatalf("pat %d vs %d: WastePairSet (%d,%d) want (%d,%d)", i, j, gotAB, gotBA, wantAB, wantBA)
			}
			cb := Compress(b)
			if gotAB, gotBA := ca.WastePair(cb); gotAB != wantAB || gotBA != wantBA {
				t.Fatalf("pat %d vs %d: compressed WastePair (%d,%d) want (%d,%d)", i, j, gotAB, gotBA, wantAB, wantBA)
			}
			if got, want := ca.IntersectCountSet(b), a.IntersectCount(b); got != want {
				t.Fatalf("pat %d vs %d: IntersectCountSet %d want %d", i, j, got, want)
			}
		}
	}
}

func TestQuickBatchKernelsPackedMatchDense(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2*chunkBits)
		k := 1 + rng.Intn(6)
		a := randomDensitySet(rng, n, []float64{0.001, 0.02, 0.3, 0.9}[rng.Intn(4)])
		ca := Compress(a)
		bs := make([]*Set, k)
		for g := range bs {
			bs[g] = randomDensitySet(rng, n, rng.Float64())
		}
		wantX := make([]int, k)
		IntersectMany(a, bs, wantX)
		gotX := make([]int, k)
		IntersectManyPacked(ca, bs, gotX)
		for g := range bs {
			if gotX[g] != wantX[g] {
				return false
			}
		}
		wantA, wantB := make([]int, k), make([]int, k)
		WasteMany(a, bs, wantA, wantB)
		gotA, gotB := make([]int, k), make([]int, k)
		WasteManyPacked(ca, bs, gotA, gotB)
		for g := range bs {
			if gotA[g] != wantA[g] || gotB[g] != wantB[g] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// FuzzCompressedWastePair fuzzes the compressed-vs-dense bit identity with
// arbitrary byte-string universes, catching container-boundary edge cases
// the generators above might miss.
func FuzzCompressedWastePair(f *testing.F) {
	f.Add([]byte{0x01}, []byte{0xff}, uint16(64))
	f.Add([]byte{0xaa, 0x55}, []byte{}, uint16(65000))
	f.Add([]byte{0xff, 0xff, 0xff}, []byte{0x00, 0x80}, uint16(200))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, nRaw uint16) {
		n := int(nRaw)%(2*chunkBits) + 1
		a, b := New(n), New(n)
		for i, by := range rawA {
			for bit := 0; bit < 8; bit++ {
				if by&(1<<bit) != 0 {
					idx := (i*8 + bit*131) % n
					a.Set(idx)
				}
			}
		}
		for i, by := range rawB {
			for bit := 0; bit < 8; bit++ {
				if by&(1<<bit) != 0 {
					idx := (i*8 + bit*257) % n
					b.Set(idx)
				}
			}
		}
		ca, cb := Compress(a), Compress(b)
		wantAB, wantBA := a.WastePair(b)
		if gotAB, gotBA := ca.WastePairSet(b); gotAB != wantAB || gotBA != wantBA {
			t.Fatalf("WastePairSet (%d,%d), dense (%d,%d)", gotAB, gotBA, wantAB, wantBA)
		}
		if gotAB, gotBA := ca.WastePair(cb); gotAB != wantAB || gotBA != wantBA {
			t.Fatalf("compressed WastePair (%d,%d), dense (%d,%d)", gotAB, gotBA, wantAB, wantBA)
		}
		if !ca.ToSet().Equal(a) {
			t.Fatal("round trip lost bits")
		}
	})
}

func TestCompressedForEachOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomDensitySet(rng, 3*chunkBits, 0.01)
	// Force a bitmap container in chunk 1.
	for i := chunkBits; i < chunkBits+arrayCutoff+100; i++ {
		s.Set(i)
	}
	c := Compress(s)
	want := s.Indices()
	got := c.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices length %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices[%d] = %d want %d", i, got[i], want[i])
		}
	}
}

func TestCompressedMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched universes")
		}
	}()
	Compress(New(100)).WastePairSet(New(200))
}

func BenchmarkIntersectManySparse(b *testing.B) {
	// The regime compression targets: a sparse query cell (0.2% occupancy)
	// against K dense group vectors over a large universe.
	const n, k = 1 << 20, 20
	rng := rand.New(rand.NewSource(9))
	cell := randomDensitySet(rng, n, 0.002)
	packed := Compress(cell)
	bs := make([]*Set, k)
	for g := range bs {
		bs[g] = randomDensitySet(rng, n, 0.05)
	}
	x := make([]int, k)
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectMany(cell, bs, x)
		}
	})
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectManyPacked(packed, bs, x)
		}
	})
}
