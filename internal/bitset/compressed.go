// Compressed is the roaring-style companion to the dense Set: the universe
// is split into 2^16-bit chunks and only non-empty chunks are stored, each
// as either a sorted array of 16-bit offsets (sparse) or a 1024-word bitmap
// (dense), with automatic promotion and demotion at the classic 4096-element
// cutoff. At million-subscriber scale a hyper-cell or group that touches a
// few thousand subscribers costs kilobytes instead of the 125 KiB a dense
// vector pins per set, and the fused kernels (WastePairSet, IntersectCountSet,
// IntersectManyPacked, WasteManyPacked) walk only the populated chunks, so a
// nearest-group scan over sparse cells is O(occupancy·K) rather than
// O(Ns/64·K).
//
// Every kernel is exact integer arithmetic over the same bits the dense Set
// holds, so results are bit-identical to the dense formulation; the property
// tests in compressed_test.go prove it across promotion/demotion boundaries.
package bitset

import (
	"fmt"
	"math/bits"
	"sort"
)

const (
	// chunkBits is the universe span of one container (a roaring chunk).
	chunkBits = 1 << 16
	// chunkWords is a bitmap container's word count (1024 × 8 B = 8 KiB).
	chunkWords = chunkBits / wordBits
	// arrayCutoff is the maximum cardinality of an array container: above
	// it a bitmap (8 KiB) is smaller than the 2-byte-per-element array and
	// the container is promoted; a Clear dropping back to the cutoff
	// demotes it again.
	arrayCutoff = 4096
)

// container holds one non-empty chunk: exactly one of arr/bits is non-nil.
type container struct {
	key  uint32   // chunk index: bits [key·2^16, (key+1)·2^16)
	card int32    // number of set bits in the chunk
	arr  []uint16 // sorted bit offsets (array container)
	bits []uint64 // chunkWords words (bitmap container)
}

// Compressed is a chunked bit set over the universe [0, Len()). The zero
// value is unusable; construct with NewCompressed or Compress. Unlike the
// dense Set it only pays for populated chunks.
type Compressed struct {
	n  int
	cs []container // sorted by key, no empty containers
}

// NewCompressed returns an empty compressed set over the universe [0, n).
func NewCompressed(n int) *Compressed {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	return &Compressed{n: n}
}

// Compress converts a dense Set into its compressed form, choosing the
// container kind chunk by chunk.
func Compress(s *Set) *Compressed {
	c := NewCompressed(s.n)
	words := s.words
	for lo := 0; lo < len(words); lo += chunkWords {
		hi := lo + chunkWords
		if hi > len(words) {
			hi = len(words)
		}
		chunk := words[lo:hi]
		card := 0
		for _, w := range chunk {
			card += bits.OnesCount64(w)
		}
		if card == 0 {
			continue
		}
		ct := container{key: uint32(lo / chunkWords), card: int32(card)}
		if card <= arrayCutoff {
			ct.arr = make([]uint16, 0, card)
			for wi, w := range chunk {
				for w != 0 {
					tz := bits.TrailingZeros64(w)
					ct.arr = append(ct.arr, uint16(wi*wordBits+tz))
					w &= w - 1
				}
			}
		} else {
			ct.bits = make([]uint64, chunkWords)
			copy(ct.bits, chunk)
		}
		c.cs = append(c.cs, ct)
	}
	return c
}

// Len returns the size of the universe (not the number of set bits).
func (c *Compressed) Len() int { return c.n }

// Count returns the number of set bits.
func (c *Compressed) Count() int {
	n := 0
	for i := range c.cs {
		n += int(c.cs[i].card)
	}
	return n
}

// Any reports whether at least one bit is set.
func (c *Compressed) Any() bool { return len(c.cs) > 0 }

// None reports whether the set is empty.
func (c *Compressed) None() bool { return len(c.cs) == 0 }

func (c *Compressed) check(i int) {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, c.n))
	}
}

// find returns the index in cs of the container with the given key, or
// the insertion point with found=false.
func (c *Compressed) find(key uint32) (int, bool) {
	lo, hi := 0, len(c.cs)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cs[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(c.cs) && c.cs[lo].key == key
}

// Test reports whether bit i is set.
func (c *Compressed) Test(i int) bool {
	c.check(i)
	ci, ok := c.find(uint32(i / chunkBits))
	if !ok {
		return false
	}
	ct := &c.cs[ci]
	off := uint16(i % chunkBits)
	if ct.bits != nil {
		return ct.bits[off/wordBits]&(1<<(off%wordBits)) != 0
	}
	j := sort.Search(len(ct.arr), func(k int) bool { return ct.arr[k] >= off })
	return j < len(ct.arr) && ct.arr[j] == off
}

// Set sets bit i, promoting the chunk's array container to a bitmap when
// it crosses the cutoff.
func (c *Compressed) Set(i int) {
	c.check(i)
	key := uint32(i / chunkBits)
	off := uint16(i % chunkBits)
	ci, ok := c.find(key)
	if !ok {
		c.cs = append(c.cs, container{})
		copy(c.cs[ci+1:], c.cs[ci:])
		c.cs[ci] = container{key: key, card: 1, arr: []uint16{off}}
		return
	}
	ct := &c.cs[ci]
	if ct.bits != nil {
		w := &ct.bits[off/wordBits]
		m := uint64(1) << (off % wordBits)
		if *w&m == 0 {
			*w |= m
			ct.card++
		}
		return
	}
	j := sort.Search(len(ct.arr), func(k int) bool { return ct.arr[k] >= off })
	if j < len(ct.arr) && ct.arr[j] == off {
		return
	}
	ct.arr = append(ct.arr, 0)
	copy(ct.arr[j+1:], ct.arr[j:])
	ct.arr[j] = off
	ct.card++
	if int(ct.card) > arrayCutoff {
		ct.promote()
	}
}

// Clear clears bit i, demoting a bitmap container back to an array at the
// cutoff and dropping the container entirely when it empties.
func (c *Compressed) Clear(i int) {
	c.check(i)
	key := uint32(i / chunkBits)
	off := uint16(i % chunkBits)
	ci, ok := c.find(key)
	if !ok {
		return
	}
	ct := &c.cs[ci]
	if ct.bits != nil {
		w := &ct.bits[off/wordBits]
		m := uint64(1) << (off % wordBits)
		if *w&m == 0 {
			return
		}
		*w &^= m
		ct.card--
		if int(ct.card) <= arrayCutoff {
			ct.demote()
		}
	} else {
		j := sort.Search(len(ct.arr), func(k int) bool { return ct.arr[k] >= off })
		if j >= len(ct.arr) || ct.arr[j] != off {
			return
		}
		ct.arr = append(ct.arr[:j], ct.arr[j+1:]...)
		ct.card--
	}
	if ct.card == 0 {
		c.cs = append(c.cs[:ci], c.cs[ci+1:]...)
	}
}

// promote converts an array container to a bitmap in place.
func (ct *container) promote() {
	b := make([]uint64, chunkWords)
	for _, off := range ct.arr {
		b[off/wordBits] |= 1 << (off % wordBits)
	}
	ct.bits, ct.arr = b, nil
}

// demote converts a bitmap container to a sorted array in place.
func (ct *container) demote() {
	arr := make([]uint16, 0, ct.card)
	for wi, w := range ct.bits {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			arr = append(arr, uint16(wi*wordBits+tz))
			w &= w - 1
		}
	}
	ct.arr, ct.bits = arr, nil
}

// Clone returns a deep copy of c.
func (c *Compressed) Clone() *Compressed {
	out := &Compressed{n: c.n, cs: make([]container, len(c.cs))}
	for i := range c.cs {
		ct := c.cs[i]
		if ct.arr != nil {
			ct.arr = append([]uint16(nil), ct.arr...)
		}
		if ct.bits != nil {
			ct.bits = append([]uint64(nil), ct.bits...)
		}
		out.cs[i] = ct
	}
	return out
}

// ToSet expands the compressed set into a dense Set.
func (c *Compressed) ToSet() *Set {
	s := New(c.n)
	for i := range c.cs {
		ct := &c.cs[i]
		base := int(ct.key) * chunkWords
		if ct.bits != nil {
			copy(s.words[base:], ct.bits[:c.chunkLen(ct)])
			continue
		}
		for _, off := range ct.arr {
			s.words[base+int(off)/wordBits] |= 1 << (off % wordBits)
		}
	}
	return s
}

// chunkLen is the number of dense words the chunk actually spans (the last
// chunk of the universe may be shorter than chunkWords).
func (c *Compressed) chunkLen(ct *container) int {
	total := (c.n + wordBits - 1) / wordBits
	base := int(ct.key) * chunkWords
	if total-base < chunkWords {
		return total - base
	}
	return chunkWords
}

// Equal reports whether c and t contain exactly the same bits.
func (c *Compressed) Equal(t *Compressed) bool {
	if c.n != t.n || len(c.cs) != len(t.cs) {
		return false
	}
	for i := range c.cs {
		a, b := &c.cs[i], &t.cs[i]
		if a.key != b.key || a.card != b.card {
			return false
		}
		// Same cardinality forces the same container kind (both sides use
		// the identical cutoff rule), except transiently never: promote and
		// demote fire on every crossing.
		if (a.bits == nil) != (b.bits == nil) {
			return false
		}
		if a.bits != nil {
			for w := range a.bits {
				if a.bits[w] != b.bits[w] {
					return false
				}
			}
			continue
		}
		for j := range a.arr {
			if a.arr[j] != b.arr[j] {
				return false
			}
		}
	}
	return true
}

// ForEach calls fn for every set bit in increasing order. If fn returns
// false, iteration stops early.
func (c *Compressed) ForEach(fn func(i int) bool) {
	for i := range c.cs {
		ct := &c.cs[i]
		base := int(ct.key) * chunkBits
		if ct.bits != nil {
			for wi, w := range ct.bits {
				for w != 0 {
					tz := bits.TrailingZeros64(w)
					if !fn(base + wi*wordBits + tz) {
						return
					}
					w &= w - 1
				}
			}
			continue
		}
		for _, off := range ct.arr {
			if !fn(base + int(off)) {
				return
			}
		}
	}
}

// Indices returns the sorted slice of set bit positions.
func (c *Compressed) Indices() []int {
	out := make([]int, 0, c.Count())
	c.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

func (c *Compressed) checkSameSet(t *Set) {
	if c.n != t.n {
		panic(fmt.Sprintf("bitset: mismatched lengths %d and %d", c.n, t.n))
	}
}

func (c *Compressed) checkSame(t *Compressed) {
	if c.n != t.n {
		panic(fmt.Sprintf("bitset: mismatched lengths %d and %d", c.n, t.n))
	}
}

// IntersectCountSet returns |c ∩ t| against a dense set, touching only c's
// populated chunks.
func (c *Compressed) IntersectCountSet(t *Set) int {
	c.checkSameSet(t)
	x := 0
	for i := range c.cs {
		ct := &c.cs[i]
		base := int(ct.key) * chunkWords
		if ct.bits != nil {
			x += andCountWords(ct.bits[:c.chunkLen(ct)], t.words[base:base+c.chunkLen(ct)])
			continue
		}
		tw := t.words[base:]
		for _, off := range ct.arr {
			if tw[off/wordBits]&(1<<(off%wordBits)) != 0 {
				x++
			}
		}
	}
	return x
}

// WastePairSet returns (|c ∖ t|, |t ∖ c|) against a dense set in one fused
// pass: populated chunks pay an intersection, and t's bits in chunks c does
// not populate are pure popcounts. The second count requires touching every
// word of t, so the pass is O(Ns/64) like the dense kernel — callers that
// track cardinalities should prefer IntersectCountSet (|c ∖ t| = |c| − x).
func (c *Compressed) WastePairSet(t *Set) (cNotT, tNotC int) {
	c.checkSameSet(t)
	pos := 0 // next dense word not yet accounted
	tW := t.words
	for i := range c.cs {
		ct := &c.cs[i]
		base := int(ct.key) * chunkWords
		for ; pos < base; pos++ {
			tNotC += bits.OnesCount64(tW[pos])
		}
		span := c.chunkLen(ct)
		x := 0
		tOnes := 0
		if ct.bits != nil {
			for w := 0; w < span; w++ {
				v := tW[base+w]
				x += bits.OnesCount64(ct.bits[w] & v)
				tOnes += bits.OnesCount64(v)
			}
		} else {
			for w := 0; w < span; w++ {
				tOnes += bits.OnesCount64(tW[base+w])
			}
			for _, off := range ct.arr {
				if tW[base+int(off)/wordBits]&(1<<(off%wordBits)) != 0 {
					x++
				}
			}
		}
		cNotT += int(ct.card) - x
		tNotC += tOnes - x
		pos = base + span
	}
	for ; pos < len(tW); pos++ {
		tNotC += bits.OnesCount64(tW[pos])
	}
	return cNotT, tNotC
}

// WastePair returns (|c ∖ t|, |t ∖ c|) between two compressed sets by a
// merge over their populated chunks: chunks present on one side only
// contribute their full cardinality, shared chunks pay one intersection.
func (c *Compressed) WastePair(t *Compressed) (cNotT, tNotC int) {
	c.checkSame(t)
	i, j := 0, 0
	for i < len(c.cs) && j < len(t.cs) {
		a, b := &c.cs[i], &t.cs[j]
		switch {
		case a.key < b.key:
			cNotT += int(a.card)
			i++
		case a.key > b.key:
			tNotC += int(b.card)
			j++
		default:
			x := containerIntersect(a, b)
			cNotT += int(a.card) - x
			tNotC += int(b.card) - x
			i++
			j++
		}
	}
	for ; i < len(c.cs); i++ {
		cNotT += int(c.cs[i].card)
	}
	for ; j < len(t.cs); j++ {
		tNotC += int(t.cs[j].card)
	}
	return cNotT, tNotC
}

// IntersectCount returns |c ∩ t| between two compressed sets.
func (c *Compressed) IntersectCount(t *Compressed) int {
	c.checkSame(t)
	x := 0
	i, j := 0, 0
	for i < len(c.cs) && j < len(t.cs) {
		a, b := &c.cs[i], &t.cs[j]
		switch {
		case a.key < b.key:
			i++
		case a.key > b.key:
			j++
		default:
			x += containerIntersect(a, b)
			i++
			j++
		}
	}
	return x
}

// containerIntersect returns the intersection cardinality of two containers
// with the same key.
func containerIntersect(a, b *container) int {
	if a.bits != nil && b.bits != nil {
		return andCountWords(a.bits, b.bits)
	}
	if a.bits == nil && b.bits == nil {
		// Sorted-array gallop: walk the shorter, binary-search the longer
		// when wildly unbalanced, else a linear merge.
		x, y := a.arr, b.arr
		if len(x) > len(y) {
			x, y = y, x
		}
		if len(y) > 32*len(x) {
			n := 0
			for _, v := range x {
				k := sort.Search(len(y), func(i int) bool { return y[i] >= v })
				if k < len(y) && y[k] == v {
					n++
				}
			}
			return n
		}
		n, i, j := 0, 0, 0
		for i < len(x) && j < len(y) {
			switch {
			case x[i] < y[j]:
				i++
			case x[i] > y[j]:
				j++
			default:
				n++
				i++
				j++
			}
		}
		return n
	}
	arr, bm := a, b
	if arr.bits != nil {
		arr, bm = b, a
	}
	n := 0
	for _, off := range arr.arr {
		if bm.bits[off/wordBits]&(1<<(off%wordBits)) != 0 {
			n++
		}
	}
	return n
}

// UnionWithCount sets c = c ∪ t in place and returns |c ∪ t|, promoting
// containers that cross the cutoff — the compressed analogue of the dense
// Set's fused merge kernel.
func (c *Compressed) UnionWithCount(t *Compressed) int {
	c.checkSame(t)
	out := make([]container, 0, len(c.cs)+len(t.cs))
	i, j := 0, 0
	for i < len(c.cs) && j < len(t.cs) {
		a, b := &c.cs[i], &t.cs[j]
		switch {
		case a.key < b.key:
			out = append(out, *a)
			i++
		case a.key > b.key:
			out = append(out, cloneContainer(b))
			j++
		default:
			out = append(out, unionContainers(a, b))
			i++
			j++
		}
	}
	out = append(out, c.cs[i:]...)
	for ; j < len(t.cs); j++ {
		out = append(out, cloneContainer(&t.cs[j]))
	}
	c.cs = out
	return c.Count()
}

func cloneContainer(ct *container) container {
	out := *ct
	if ct.arr != nil {
		out.arr = append([]uint16(nil), ct.arr...)
	}
	if ct.bits != nil {
		out.bits = append([]uint64(nil), ct.bits...)
	}
	return out
}

// unionContainers merges two same-key containers into a fresh one with the
// canonical kind for its cardinality.
func unionContainers(a, b *container) container {
	out := container{key: a.key}
	if a.bits != nil || b.bits != nil || int(a.card)+int(b.card) > arrayCutoff {
		bm := make([]uint64, chunkWords)
		fill := func(ct *container) {
			if ct.bits != nil {
				for w := range ct.bits {
					bm[w] |= ct.bits[w]
				}
				return
			}
			for _, off := range ct.arr {
				bm[off/wordBits] |= 1 << (off % wordBits)
			}
		}
		fill(a)
		fill(b)
		card := 0
		for _, w := range bm {
			card += bits.OnesCount64(w)
		}
		out.card = int32(card)
		out.bits = bm
		if card <= arrayCutoff {
			out.demote()
		}
		return out
	}
	arr := make([]uint16, 0, int(a.card)+int(b.card))
	i, j := 0, 0
	for i < len(a.arr) && j < len(b.arr) {
		switch {
		case a.arr[i] < b.arr[j]:
			arr = append(arr, a.arr[i])
			i++
		case a.arr[i] > b.arr[j]:
			arr = append(arr, b.arr[j])
			j++
		default:
			arr = append(arr, a.arr[i])
			i++
			j++
		}
	}
	arr = append(arr, a.arr[i:]...)
	arr = append(arr, b.arr[j:]...)
	out.arr = arr
	out.card = int32(len(arr))
	return out
}

// IntersectManyPacked computes x[g] = |a ∩ bs[g]| for every dense group
// vector g, walking only a's populated chunks — the compressed counterpart
// of IntersectMany for sparse query cells against dense group vectors. Each
// chunk of a is streamed once across all groups so the group words it maps
// to stay cache-resident. x must have at least len(bs) entries.
func IntersectManyPacked(a *Compressed, bs []*Set, x []int) {
	if len(x) < len(bs) {
		panic(fmt.Sprintf("bitset: IntersectManyPacked output length %d for %d sets", len(x), len(bs)))
	}
	for _, t := range bs {
		a.checkSameSet(t)
	}
	for g := range bs {
		x[g] = 0
	}
	for i := range a.cs {
		ct := &a.cs[i]
		base := int(ct.key) * chunkWords
		if ct.bits != nil {
			span := a.chunkLen(ct)
			cw := ct.bits[:span]
			for g, t := range bs {
				x[g] += andCountWords(cw, t.words[base:base+span])
			}
			continue
		}
		for g, t := range bs {
			tw := t.words[base:]
			n := 0
			for _, off := range ct.arr {
				if tw[off/wordBits]&(1<<(off%wordBits)) != 0 {
					n++
				}
			}
			x[g] += n
		}
	}
}

// WasteManyPacked computes, for every dense group vector g, the fused
// AND-NOT pair of a against bs[g]: aNotB[g] = |a ∖ bs[g]| and bNotA[g] =
// |bs[g] ∖ a|. Computing |bs[g] ∖ a| forces a full scan of each dense
// vector, so this costs what the dense WasteMany costs; callers that track
// group cardinalities should prefer IntersectManyPacked and derive both
// counts by subtraction. Provided for kernel-surface parity.
func WasteManyPacked(a *Compressed, bs []*Set, aNotB, bNotA []int) {
	if len(aNotB) < len(bs) || len(bNotA) < len(bs) {
		panic(fmt.Sprintf("bitset: WasteManyPacked output length %d/%d for %d sets",
			len(aNotB), len(bNotA), len(bs)))
	}
	for g, t := range bs {
		aNotB[g], bNotA[g] = a.WastePairSet(t)
	}
}

// String renders the set as a compact list like "{1, 5, 9}".
func (c *Compressed) String() string {
	return c.ToSet().String()
}
