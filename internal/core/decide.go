package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/multicast"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Decision is the Engine's delivery plan for one event.
type Decision struct {
	// Method is Unicast when no group was used, otherwise NetworkMulticast
	// (the caller picks the actual framework when costing; see Costs).
	Method multicast.Method
	// Group is the multicast group index, -1 when Method is Unicast.
	Group int
	// Interested lists the distinct nodes with at least one matching
	// subscription, ascending.
	Interested []topology.NodeID
	// Remainder lists interested nodes the routed group does not cover;
	// they receive unicast top-up copies. Empty when Method is Unicast.
	Remainder []topology.NodeID
	// MatchedSubs are the matching subscription slots, ascending.
	MatchedSubs []int
}

// Decide matches the event and plans its delivery per Figures 5/6. With
// Config.DynamicMethod it additionally compares the group-multicast,
// unicast and broadcast prices and downgrades or upgrades the method to
// the cheapest (the §1 distribution-method decision).
func (e *Engine) Decide(ev workload.Event) Decision {
	// Guard the clock read so an uninstrumented engine pays nothing.
	if e.tel.decideNs != nil {
		defer e.tel.decideNs.Start()()
		e.tel.decides.Inc()
	}
	d := e.decideStatic(ev)
	if !e.cfg.DynamicMethod {
		return d
	}
	return e.pickMethod(ev, d)
}

// decideStatic is the Fig 5/6 routing without method re-selection.
func (e *Engine) decideStatic(ev workload.Event) Decision {
	d := Decision{Group: -1, Method: multicast.Unicast}
	hits := e.tree.SearchPoint(ev.Point)
	sort.Ints(hits)
	d.MatchedSubs = hits
	seen := map[topology.NodeID]bool{}
	for _, si := range hits {
		n := e.world.Subs[si].Owner
		if !seen[n] {
			seen[n] = true
			d.Interested = append(d.Interested, n)
		}
	}
	sort.Slice(d.Interested, func(i, j int) bool { return d.Interested[i] < d.Interested[j] })

	var g int
	var ok bool
	if e.nlIdx != nil {
		g, ok = e.nlIdx.GroupFor(ev.Point)
	} else {
		g, ok = e.gridIdx.GroupFor(ev.Point)
	}
	if !ok {
		return d
	}
	// Quarantined groups (persistent delivery failures reported by the
	// broker) are bypassed: affected members fall back to unicast until
	// Refresh rebuilds the groups.
	if e.quarantined[g] {
		return d
	}

	// Threshold rule (Fig 5): multicast only when enough of the group is
	// interested.
	if e.cfg.Threshold > 0 && len(e.groupNodes[g]) > 0 {
		inGroup := 0
		for _, n := range d.Interested {
			if e.memberOf(g, n) {
				inGroup++
			}
		}
		if float64(inGroup)/float64(len(e.groupNodes[g])) < e.cfg.Threshold {
			return d
		}
	}

	d.Method = multicast.NetworkMulticast
	d.Group = g
	for _, n := range d.Interested {
		if !e.memberOf(g, n) {
			d.Remainder = append(d.Remainder, n)
		}
	}
	return d
}

func (e *Engine) memberOf(g int, n topology.NodeID) bool {
	idx, ok := e.world.SubscriberIndex(n)
	if !ok {
		return false
	}
	if e.nlIdx != nil {
		return e.nlIdx.Groups()[g].Members.Test(idx)
	}
	return e.gridRes.Groups[g].Members.Test(idx)
}

// Costs prices a decision under both multicast frameworks.
type Costs struct {
	Network  float64
	AppLevel float64
}

// pickMethod downgrades or upgrades a routed decision to the cheapest of
// group multicast, per-node unicast and broadcast, priced under the
// network-supported framework.
func (e *Engine) pickMethod(ev workload.Event, d Decision) Decision {
	unicast := 0.0
	for _, n := range d.Interested {
		unicast += e.model.Dist(ev.Pub, n)
	}
	bcast := e.model.BroadcastCost(ev.Pub)

	group := math.Inf(1)
	if d.Method == multicast.NetworkMulticast && d.Group >= 0 {
		group = e.model.SPTCoverCost(ev.Pub, e.groupNodes[d.Group])
		for _, n := range d.Remainder {
			group += e.model.Dist(ev.Pub, n)
		}
	}

	switch {
	case bcast <= unicast && bcast <= group:
		d.Method = multicast.Broadcast
		d.Group = -1
		d.Remainder = nil
	case unicast <= group:
		d.Method = multicast.Unicast
		d.Group = -1
		d.Remainder = nil
	default:
		// keep the group multicast
	}
	return d
}

// CostOf prices a decision for the given event.
func (e *Engine) CostOf(ev workload.Event, d Decision) Costs {
	if d.Method == multicast.Broadcast {
		b := e.model.BroadcastCost(ev.Pub)
		return Costs{Network: b, AppLevel: b}
	}
	if d.Method == multicast.Unicast || d.Group < 0 {
		u := 0.0
		for _, n := range d.Interested {
			u += e.model.Dist(ev.Pub, n)
		}
		return Costs{Network: u, AppLevel: u}
	}
	top := 0.0
	for _, n := range d.Remainder {
		top += e.model.Dist(ev.Pub, n)
	}
	return Costs{
		Network:  e.model.SPTCoverCost(ev.Pub, e.groupNodes[d.Group]) + top,
		AppLevel: e.model.ALMCost(ev.Pub, e.overlays[d.Group]) + top,
	}
}

// Publish decides and prices one event in a single call.
func (e *Engine) Publish(ev workload.Event) (Decision, Costs, error) {
	if len(ev.Point) != e.world.Dim {
		return Decision{}, Costs{}, fmt.Errorf("core: event dim %d, world dim %d", len(ev.Point), e.world.Dim)
	}
	if ev.Pub < 0 || int(ev.Pub) >= e.graph.NumNodes() {
		return Decision{}, Costs{}, fmt.Errorf("core: publisher %d out of range", ev.Pub)
	}
	d := e.Decide(ev)
	return d, e.CostOf(ev, d), nil
}
