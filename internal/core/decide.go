package core

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/cluster"
	"repro/internal/matching"
	"repro/internal/multicast"
	"repro/internal/rtree"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Decision is the Engine's delivery plan for one event.
type Decision struct {
	// Method is Unicast when no group was used, otherwise NetworkMulticast
	// (the caller picks the actual framework when costing; see Costs).
	Method multicast.Method
	// Group is the multicast group index, -1 when Method is Unicast.
	Group int
	// Interested lists the distinct nodes with at least one matching
	// subscription, ascending.
	Interested []topology.NodeID
	// Remainder lists interested nodes the routed group does not cover;
	// they receive unicast top-up copies. Empty when Method is Unicast.
	Remainder []topology.NodeID
	// MatchedSubs are the matching subscription slots, ascending.
	MatchedSubs []int
}

// costModel is the cost-query surface a delivery decision needs. Both
// *multicast.Model (the engine's private, single-threaded model) and
// *multicast.SPTView (a decision worker's view over the shared SPT cache)
// implement it, and — being backed by the same Dijkstra trees — return
// bit-identical numbers, so decisions are identical whichever path prices
// them.
type costModel interface {
	Dist(u, v topology.NodeID) float64
	BroadcastCost(pub topology.NodeID) float64
	SPTCoverCost(pub topology.NodeID, targets []topology.NodeID) float64
	ALMCost(pub topology.NodeID, o multicast.Overlay) float64
}

// decider is the frozen state one delivery decision reads: the
// subscription index, the group tables and the quarantine set. The Engine
// builds a decider over its live state for the single-threaded path;
// DecisionSnapshot freezes one (cloned tree, frozen subscription slice,
// copied quarantine map) for lock-free concurrent reads.
//
// Invariant: decision code must never read world.Subs — a writer may be
// appending to it concurrently — only the frozen subs slice.
type decider struct {
	threshold float64
	dynamic   bool

	world *workload.World // SubscriberIndex/SubscriberNodes only
	subs  []workload.Subscription
	tree  *rtree.Tree

	gridIdx *matching.GridIndex
	gridRes *cluster.Result
	nlIdx   *matching.NoLossIndex

	groupNodes  [][]topology.NodeID
	overlays    *overlayTable
	quarantined map[int]bool
}

// DecideScratch holds the temporaries one delivery decision fills: the
// R*-tree hit list, the interested-node list and the unicast-remainder
// list. A decide worker allocates one scratch and reuses it across events
// (DecisionSnapshot.DecideInto), making the decide path allocation-free in
// steady state. The Decision returned against a scratch aliases its
// buffers: it is valid only until the scratch's next use, and callers that
// retain a Decision must copy the slices first.
type DecideScratch struct {
	hits  []int
	nodes []topology.NodeID
	rem   []topology.NodeID
}

// dec builds a decider over the engine's live state.
func (e *Engine) dec() decider {
	return decider{
		threshold:   e.cfg.Threshold,
		dynamic:     e.cfg.DynamicMethod,
		world:       e.world,
		subs:        e.world.Subs,
		tree:        e.tree,
		gridIdx:     e.gridIdx,
		gridRes:     e.gridRes,
		nlIdx:       e.nlIdx,
		groupNodes:  e.groupNodes,
		overlays:    e.overlays,
		quarantined: e.quarantined,
	}
}

// Decide matches the event and plans its delivery per Figures 5/6. With
// Config.DynamicMethod it additionally compares the group-multicast,
// unicast and broadcast prices and downgrades or upgrades the method to
// the cheapest (the §1 distribution-method decision).
func (e *Engine) Decide(ev workload.Event) Decision {
	// Guard the clock read so an uninstrumented engine pays nothing.
	if e.tel.decideNs != nil {
		defer e.tel.decideNs.Start()()
		e.tel.decides.Inc()
	}
	dc := e.dec()
	return dc.decide(ev, e.model, nil)
}

// decide runs the full decision: static routing plus (when enabled) the
// dynamic method comparison. A nil scratch allocates fresh slices, giving
// the caller a Decision it may retain.
func (dc *decider) decide(ev workload.Event, cost costModel, sc *DecideScratch) Decision {
	if sc == nil {
		sc = &DecideScratch{}
	}
	d := dc.decideStatic(ev, sc)
	if !dc.dynamic {
		return d
	}
	return dc.pickMethod(ev, d, cost)
}

// decideStatic is the Fig 5/6 routing without method re-selection. The
// returned Decision's slices are backed by sc.
func (dc *decider) decideStatic(ev workload.Event, sc *DecideScratch) Decision {
	d := Decision{Group: -1, Method: multicast.Unicast}
	hits := dc.tree.SearchPointAppend(ev.Point, sc.hits[:0])
	sc.hits = hits
	slices.Sort(hits)
	d.MatchedSubs = hits
	// Distinct interested nodes, ascending: collect every owner, then
	// sort + compact. Same output as the previous map-dedup-then-sort,
	// without the per-event map and sort closure allocations.
	nodes := sc.nodes[:0]
	for _, si := range hits {
		nodes = append(nodes, dc.subs[si].Owner)
	}
	slices.Sort(nodes)
	nodes = slices.Compact(nodes)
	sc.nodes = nodes
	d.Interested = nodes

	var g int
	var ok bool
	if dc.nlIdx != nil {
		g, ok = dc.nlIdx.GroupFor(ev.Point)
	} else {
		g, ok = dc.gridIdx.GroupFor(ev.Point)
	}
	if !ok {
		return d
	}
	// Quarantined groups (persistent delivery failures reported by the
	// broker) are bypassed: affected members fall back to unicast until
	// Refresh rebuilds the groups.
	if dc.quarantined[g] {
		return d
	}

	// Threshold rule (Fig 5): multicast only when enough of the group is
	// interested.
	if dc.threshold > 0 && len(dc.groupNodes[g]) > 0 {
		inGroup := 0
		for _, n := range d.Interested {
			if dc.memberOf(g, n) {
				inGroup++
			}
		}
		if float64(inGroup)/float64(len(dc.groupNodes[g])) < dc.threshold {
			return d
		}
	}

	d.Method = multicast.NetworkMulticast
	d.Group = g
	rem := sc.rem[:0]
	for _, n := range d.Interested {
		if !dc.memberOf(g, n) {
			rem = append(rem, n)
		}
	}
	sc.rem = rem
	if len(rem) > 0 {
		d.Remainder = rem
	}
	return d
}

func (dc *decider) memberOf(g int, n topology.NodeID) bool {
	idx, ok := dc.world.SubscriberIndex(n)
	if !ok {
		return false
	}
	if dc.nlIdx != nil {
		return dc.nlIdx.Groups()[g].Members.Test(idx)
	}
	// Group.Member consults the compressed mirror when the group is sparse.
	return dc.gridRes.Groups[g].Member(idx)
}

// Costs prices a decision under both multicast frameworks.
type Costs struct {
	Network  float64
	AppLevel float64
}

// pickMethod downgrades or upgrades a routed decision to the cheapest of
// group multicast, per-node unicast and broadcast, priced under the
// network-supported framework.
func (dc *decider) pickMethod(ev workload.Event, d Decision, cost costModel) Decision {
	unicast := 0.0
	for _, n := range d.Interested {
		unicast += cost.Dist(ev.Pub, n)
	}
	bcast := cost.BroadcastCost(ev.Pub)

	group := math.Inf(1)
	if d.Method == multicast.NetworkMulticast && d.Group >= 0 {
		group = cost.SPTCoverCost(ev.Pub, dc.groupNodes[d.Group])
		for _, n := range d.Remainder {
			group += cost.Dist(ev.Pub, n)
		}
	}

	switch {
	case bcast <= unicast && bcast <= group:
		d.Method = multicast.Broadcast
		d.Group = -1
		d.Remainder = nil
	case unicast <= group:
		d.Method = multicast.Unicast
		d.Group = -1
		d.Remainder = nil
	default:
		// keep the group multicast
	}
	return d
}

// costOf prices a decision for the given event.
func (dc *decider) costOf(ev workload.Event, d Decision, cost costModel) Costs {
	if d.Method == multicast.Broadcast {
		b := cost.BroadcastCost(ev.Pub)
		return Costs{Network: b, AppLevel: b}
	}
	if d.Method == multicast.Unicast || d.Group < 0 {
		u := 0.0
		for _, n := range d.Interested {
			u += cost.Dist(ev.Pub, n)
		}
		return Costs{Network: u, AppLevel: u}
	}
	top := 0.0
	for _, n := range d.Remainder {
		top += cost.Dist(ev.Pub, n)
	}
	return Costs{
		Network:  cost.SPTCoverCost(ev.Pub, dc.groupNodes[d.Group]) + top,
		AppLevel: cost.ALMCost(ev.Pub, dc.overlays.get(d.Group)) + top,
	}
}

// CostOf prices a decision for the given event.
func (e *Engine) CostOf(ev workload.Event, d Decision) Costs {
	dc := e.dec()
	return dc.costOf(ev, d, e.model)
}

// Publish decides and prices one event in a single call.
func (e *Engine) Publish(ev workload.Event) (Decision, Costs, error) {
	if len(ev.Point) != e.world.Dim {
		return Decision{}, Costs{}, fmt.Errorf("core: event dim %d, world dim %d", len(ev.Point), e.world.Dim)
	}
	if ev.Pub < 0 || int(ev.Pub) >= e.graph.NumNodes() {
		return Decision{}, Costs{}, fmt.Errorf("core: publisher %d out of range", ev.Pub)
	}
	d := e.Decide(ev)
	return d, e.CostOf(ev, d), nil
}
