package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/multicast"
	"repro/internal/noloss"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

func testWorld(t *testing.T, subs int, seed int64) (*workload.World, []workload.Event) {
	t.Helper()
	cfg := topology.Eval600
	cfg.Seed = seed
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: subs, PubModes: 1, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, w.Events(1000, seed+2)
}

func TestConfigValidation(t *testing.T) {
	w, train := testWorld(t, 50, 80)
	if _, err := NewFromWorld(w, train, Config{Groups: 0}); err == nil {
		t.Error("Groups=0 accepted")
	}
	if _, err := NewFromWorld(w, train, Config{Groups: 10, Threshold: 2}); err == nil {
		t.Error("Threshold=2 accepted")
	}
	if _, err := NewFromWorld(w, nil, Config{Groups: 10}); err == nil {
		t.Error("no training events accepted")
	}
	if _, err := NewFromWorld(nil, train, Config{Groups: 10}); err == nil {
		t.Error("nil world accepted")
	}
}

func TestEngineGridLifecycle(t *testing.T) {
	w, train := testWorld(t, 300, 81)
	e, err := NewFromWorld(w, train, Config{Groups: 30, CellBudget: 600})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumGroups() == 0 || e.NumGroups() > 30 {
		t.Fatalf("NumGroups = %d", e.NumGroups())
	}
	if e.Stale() {
		t.Error("fresh engine stale")
	}
	if e.NumSubscriptions() != 300 {
		t.Errorf("NumSubscriptions = %d", e.NumSubscriptions())
	}

	evs := w.Events(200, 83)
	multicasts, unicasts := 0, 0
	for _, ev := range evs {
		d, c, err := e.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		if d.Method == multicast.NetworkMulticast {
			multicasts++
			if d.Group < 0 || d.Group >= e.NumGroups() {
				t.Fatalf("bad group %d", d.Group)
			}
			// Static engine: group covers all interested; no remainder.
			if len(d.Remainder) != 0 {
				t.Fatalf("static engine produced remainder %v", d.Remainder)
			}
		} else {
			unicasts++
		}
		if c.Network < 0 || c.AppLevel < c.Network-1e-9 {
			t.Fatalf("cost ordering broken: %+v", c)
		}
		// Interested nodes must be consistent with matched subscriptions.
		if len(d.MatchedSubs) == 0 && len(d.Interested) != 0 {
			t.Fatal("interested without matches")
		}
	}
	if multicasts == 0 {
		t.Error("no event was multicast")
	}
}

func TestEnginePublishValidation(t *testing.T) {
	w, train := testWorld(t, 100, 82)
	e, err := NewFromWorld(w, train, Config{Groups: 10, CellBudget: 300})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Publish(workload.Event{Pub: 0, Point: space.Point{1}}); err == nil {
		t.Error("bad dim accepted")
	}
	if _, _, err := e.Publish(workload.Event{Pub: -1, Point: make(space.Point, 4)}); err == nil {
		t.Error("bad publisher accepted")
	}
}

func TestEngineNoLossStrategy(t *testing.T) {
	w, train := testWorld(t, 300, 84)
	e, err := NewFromWorld(w, train, Config{
		Groups: 40,
		NoLoss: &noloss.Config{PoolSize: 600, Iterations: 3, Seeds: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := w.Events(150, 85)
	multicasts := 0
	for _, ev := range evs {
		d, _, err := e.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		if d.Method != multicast.NetworkMulticast {
			continue
		}
		multicasts++
		// No-loss guarantee: every group node is interested (group ⊆
		// interested); remainder covers the rest.
		interested := map[topology.NodeID]bool{}
		for _, n := range d.Interested {
			interested[n] = true
		}
		for _, n := range e.groupNodes[d.Group] {
			if !interested[n] {
				t.Fatalf("no-loss group delivered to uninterested node %d", n)
			}
		}
		covered := map[topology.NodeID]bool{}
		for _, n := range e.groupNodes[d.Group] {
			covered[n] = true
		}
		for _, n := range d.Remainder {
			if covered[n] {
				t.Fatal("remainder overlaps group")
			}
		}
	}
	if multicasts == 0 {
		t.Error("no-loss engine never multicast")
	}
}

func TestEngineThresholdForcesUnicast(t *testing.T) {
	w, train := testWorld(t, 200, 86)
	always, err := NewFromWorld(w, train, Config{Groups: 5, CellBudget: 300})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := NewFromWorld(w, train, Config{Groups: 5, CellBudget: 300, Threshold: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	evs := w.Events(150, 87)
	alwaysMC, strictMC := 0, 0
	for _, ev := range evs {
		if d := always.Decide(ev); d.Method == multicast.NetworkMulticast {
			alwaysMC++
		}
		if d := strict.Decide(ev); d.Method == multicast.NetworkMulticast {
			strictMC++
		}
	}
	if strictMC >= alwaysMC {
		t.Errorf("threshold did not reduce multicasts: %d vs %d", strictMC, alwaysMC)
	}
}

func TestEngineDynamicsAddNeverLoses(t *testing.T) {
	w, train := testWorld(t, 200, 88)
	e, err := NewFromWorld(w, train, Config{Groups: 20, CellBudget: 400})
	if err != nil {
		t.Fatal(err)
	}
	// A brand-new subscriber (node previously without subscriptions) with a
	// wide subscription.
	var newcomer topology.NodeID = -1
	for i := 0; i < w.Graph.NumNodes(); i++ {
		n := topology.NodeID(i)
		if w.Graph.Node(n).Kind != topology.StubNode {
			continue
		}
		if _, ok := w.SubscriberIndex(n); !ok {
			newcomer = n
			break
		}
	}
	if newcomer == -1 {
		t.Skip("every stub node already subscribes")
	}
	wide := space.Rect{space.Full(), space.Full(), space.Full(), space.Full()}
	slot, err := e.AddSubscription(workload.Subscription{Owner: newcomer, Rect: wide})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Stale() {
		t.Error("engine not stale after add")
	}
	// Every event must now reach the newcomer: either via group or via
	// remainder.
	evs := w.Events(100, 89)
	for _, ev := range evs {
		d := e.Decide(ev)
		delivered := false
		for _, n := range d.Interested {
			if n == newcomer {
				delivered = true
			}
		}
		if !delivered {
			t.Fatal("wildcard subscriber not matched")
		}
		if d.Method == multicast.NetworkMulticast {
			inGroup := false
			for _, n := range e.groupNodes[d.Group] {
				if n == newcomer {
					inGroup = true
				}
			}
			inRemainder := false
			for _, n := range d.Remainder {
				if n == newcomer {
					inRemainder = true
				}
			}
			if !inGroup && !inRemainder {
				t.Fatal("newcomer lost: neither in group nor remainder")
			}
		}
	}
	// After Refresh the newcomer joins the membership vectors and the
	// remainder disappears.
	if err := e.Refresh(3); err != nil {
		t.Fatal(err)
	}
	if e.Stale() {
		t.Error("stale after refresh")
	}
	if _, ok := e.World().SubscriberIndex(newcomer); !ok {
		t.Fatal("newcomer not indexed after refresh")
	}
	for _, ev := range evs[:30] {
		d := e.Decide(ev)
		if d.Method == multicast.NetworkMulticast && len(d.Remainder) != 0 {
			t.Fatal("remainder persists after refresh")
		}
	}
	_ = slot
}

func TestEngineDynamicsRemove(t *testing.T) {
	w, train := testWorld(t, 200, 90)
	e, err := NewFromWorld(w, train, Config{Groups: 20, CellBudget: 400})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveSubscription(0); err != nil {
		t.Fatal(err)
	}
	if e.NumSubscriptions() != 199 {
		t.Errorf("NumSubscriptions = %d", e.NumSubscriptions())
	}
	if err := e.RemoveSubscription(0); err == nil {
		t.Error("double remove accepted")
	}
	if err := e.RemoveSubscription(10_000); err == nil {
		t.Error("bad slot accepted")
	}
	if err := e.Refresh(2); err != nil {
		t.Fatal(err)
	}
	if e.NumSubscriptions() != 199 {
		t.Errorf("after refresh NumSubscriptions = %d", e.NumSubscriptions())
	}
}

func TestEngineAddValidation(t *testing.T) {
	w, train := testWorld(t, 100, 91)
	e, err := NewFromWorld(w, train, Config{Groups: 10, CellBudget: 200})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddSubscription(workload.Subscription{Owner: 0, Rect: space.Rect{space.Full()}}); err == nil {
		t.Error("dim mismatch accepted")
	}
	empty := space.Rect{space.Span(1, 1), space.Full(), space.Full(), space.Full()}
	if _, err := e.AddSubscription(workload.Subscription{Owner: 0, Rect: empty}); err == nil {
		t.Error("empty rect accepted")
	}
	if _, err := e.AddSubscription(workload.Subscription{Owner: -5, Rect: space.FullRect(4)}); err == nil {
		t.Error("bad owner accepted")
	}
}

func TestWarmRefreshQualityComparable(t *testing.T) {
	// Warm refresh after a small perturbation should not be dramatically
	// worse than a cold rebuild.
	w, train := testWorld(t, 300, 92)
	mkEngine := func() *Engine {
		e, err := NewFromWorld(w, train, Config{
			Groups: 25, CellBudget: 500,
			Algorithm: &cluster.KMeans{Variant: cluster.MacQueen},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	avgCost := func(e *Engine, evs []workload.Event) float64 {
		total := 0.0
		for _, ev := range evs {
			_, c, err := e.Publish(ev)
			if err != nil {
				t.Fatal(err)
			}
			total += c.Network
		}
		return total / float64(len(evs))
	}
	evs := w.Events(200, 93)

	warm := mkEngine()
	cold := mkEngine()
	// Perturb both identically: drop 10 subscriptions.
	for slot := 0; slot < 10; slot++ {
		if err := warm.RemoveSubscription(slot); err != nil {
			t.Fatal(err)
		}
		if err := cold.RemoveSubscription(slot); err != nil {
			t.Fatal(err)
		}
	}
	if err := warm.Refresh(2); err != nil {
		t.Fatal(err)
	}
	if err := cold.Refresh(0); err != nil { // 0 ⇒ full rebuild
		t.Fatal(err)
	}
	cw, cc := avgCost(warm, evs), avgCost(cold, evs)
	if math.IsNaN(cw) || math.IsNaN(cc) {
		t.Fatal("NaN costs")
	}
	if cw > cc*1.5+1 {
		t.Errorf("warm refresh cost %v ≫ cold rebuild %v", cw, cc)
	}
}

// TestDynamicMethodNeverWorse: with DynamicMethod, the network cost of
// every decision is ≤ the cost of each alternative it considered.
func TestDynamicMethodNeverWorse(t *testing.T) {
	w, train := testWorld(t, 300, 95)
	static, err := NewFromWorld(w, train, Config{Groups: 15, CellBudget: 400})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewFromWorld(w, train, Config{Groups: 15, CellBudget: 400, DynamicMethod: true})
	if err != nil {
		t.Fatal(err)
	}
	sawBroadcast, sawDowngrade := false, false
	for _, ev := range w.Events(300, 96) {
		ds, cs, err := static.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		dd, cd, err := dyn.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		// Dynamic choice must not exceed the static engine's network cost
		// (it considered the same group plus two alternatives).
		if cd.Network > cs.Network+1e-9 {
			t.Fatalf("dynamic %v > static %v", cd.Network, cs.Network)
		}
		// Never worse than pure unicast either.
		unicast := 0.0
		for _, n := range dd.Interested {
			unicast += dyn.Model().Dist(ev.Pub, n)
		}
		if cd.Network > unicast+1e-9 {
			t.Fatalf("dynamic %v > unicast %v", cd.Network, unicast)
		}
		if dd.Method == multicast.Broadcast {
			sawBroadcast = true
		}
		if ds.Method == multicast.NetworkMulticast && dd.Method == multicast.Unicast {
			sawDowngrade = true
		}
	}
	// The sweep should exercise at least the downgrade path.
	if !sawDowngrade && !sawBroadcast {
		t.Error("dynamic method never changed a decision; test not exercising the feature")
	}
}
