package core

import (
	"sync/atomic"

	"repro/internal/multicast"
	"repro/internal/topology"
)

// overlayTable lazily materialises the application-level multicast overlays
// of a group set. Eagerly Prim-ing an overlay MST (one Dijkstra per member)
// for every group made engine construction O(K · members²) before the first
// event could be decided — prohibitive at large subscriber counts even
// though only ALM cost queries ever read an overlay. The table defers each
// build to the first costing of its group, on whichever goroutine gets
// there first.
//
// Concurrency: cells are atomic pointers filled with a compare-and-swap.
// BuildOverlayShared is deterministic over the shared SPT cache, so racing
// builders compute identical overlays and whichever CAS wins is
// indistinguishable — the same argument that makes SharedSPTs safe. The
// table is immutable after construction (nodes must not be mutated), so a
// single table is shared by the engine and every snapshot taken of the
// group generation it describes.
type overlayTable struct {
	shared *multicast.SharedSPTs
	nodes  [][]topology.NodeID
	cells  []atomic.Pointer[multicast.Overlay]
}

func newOverlayTable(shared *multicast.SharedSPTs, nodes [][]topology.NodeID) *overlayTable {
	return &overlayTable{
		shared: shared,
		nodes:  nodes,
		cells:  make([]atomic.Pointer[multicast.Overlay], len(nodes)),
	}
}

// get returns group g's overlay, building and caching it on first use.
func (t *overlayTable) get(g int) multicast.Overlay {
	if o := t.cells[g].Load(); o != nil {
		return *o
	}
	o := multicast.BuildOverlayShared(t.shared, t.nodes[g])
	if t.cells[g].CompareAndSwap(nil, &o) {
		return o
	}
	return *t.cells[g].Load()
}
