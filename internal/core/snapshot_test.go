package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/topology"
	"repro/internal/workload"
)

// TestSnapshotDecisionEquivalence: a snapshot must reproduce the engine's
// own decisions and costs bit-for-bit, including under the dynamic method
// comparison (which exercises every cost query).
func TestSnapshotDecisionEquivalence(t *testing.T) {
	w, train := testWorld(t, 300, 400)
	e, err := NewFromWorld(w, train, Config{
		Groups: 30, CellBudget: 600, DynamicMethod: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	view := e.NewSPTView()
	for _, ev := range w.Events(300, 401) {
		want := e.Decide(ev)
		got := snap.Decide(ev, view)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("decision diverged: engine %+v, snapshot %+v", want, got)
		}
		if wc, gc := e.CostOf(ev, want), snap.CostOf(ev, got, view); wc != gc {
			t.Fatalf("costs diverged: engine %+v, snapshot %+v", wc, gc)
		}
	}
}

// TestSnapshotCaching: Snapshot() must return the identical object until
// state changes, bump the version on churn and quarantine, and share the
// subscription index across quarantine-only rebuilds.
func TestSnapshotCaching(t *testing.T) {
	w, train := testWorld(t, 200, 402)
	e, err := NewFromWorld(w, train, Config{Groups: 20, CellBudget: 500})
	if err != nil {
		t.Fatal(err)
	}
	s1 := e.Snapshot()
	if s2 := e.Snapshot(); s2 != s1 {
		t.Fatal("clean engine rebuilt its snapshot")
	}

	// Quarantine-only change: new snapshot, shared structure.
	e.Quarantine(0)
	s3 := e.Snapshot()
	if s3 == s1 {
		t.Fatal("quarantine did not produce a new snapshot")
	}
	if s3.Version() <= s1.Version() {
		t.Fatalf("version did not advance: %d → %d", s1.Version(), s3.Version())
	}
	if s3.dec.tree != s1.dec.tree {
		t.Error("quarantine-only snapshot cloned the tree")
	}
	if !s3.Quarantined(0) || s1.Quarantined(0) {
		t.Error("quarantine copy leaked across snapshots")
	}

	// Subscription churn: fresh tree clone.
	sub := w.Subs[0]
	if _, err := e.AddSubscription(sub); err != nil {
		t.Fatal(err)
	}
	s4 := e.Snapshot()
	if s4.dec.tree == s3.dec.tree {
		t.Error("churn snapshot shares the live tree")
	}
	if s4.NumSubscriptions() != s3.NumSubscriptions()+1 {
		t.Errorf("subscription count %d → %d", s3.NumSubscriptions(), s4.NumSubscriptions())
	}
}

// TestSnapshotIsolation: once taken, a snapshot's decisions must not move
// when the engine mutates underneath it — that is the whole RCU contract.
func TestSnapshotIsolation(t *testing.T) {
	w, train := testWorld(t, 250, 403)
	e, err := NewFromWorld(w, train, Config{Groups: 25, CellBudget: 500})
	if err != nil {
		t.Fatal(err)
	}
	evs := w.Events(200, 404)
	snap := e.Snapshot()
	view := e.NewSPTView()
	before := make([]Decision, len(evs))
	for i, ev := range evs {
		before[i] = snap.Decide(ev, view)
	}

	// Mutate the engine aggressively: churn subscriptions (tree inserts can
	// split nodes), quarantine groups, refresh.
	for i := 0; i < 50; i++ {
		if _, err := e.AddSubscription(w.Subs[i%len(w.Subs)]); err != nil {
			t.Fatal(err)
		}
	}
	for g := 0; g < e.NumGroups(); g += 2 {
		e.Quarantine(g)
	}
	if err := e.Refresh(0); err != nil {
		t.Fatal(err)
	}

	for i, ev := range evs {
		if got := snap.Decide(ev, view); !reflect.DeepEqual(got, before[i]) {
			t.Fatalf("snapshot decision %d drifted after engine mutation:\nbefore %+v\nafter  %+v", i, before[i], got)
		}
	}
}

// TestSnapshotConcurrentReaders: 1, 2 and 8 goroutines (each with its own
// SPT view) must produce identical decisions for the same event stream —
// the decision-equivalence guarantee the sharded broker builds on.
func TestSnapshotConcurrentReaders(t *testing.T) {
	w, train := testWorld(t, 300, 405)
	e, err := NewFromWorld(w, train, Config{
		Groups: 30, CellBudget: 600, DynamicMethod: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	evs := w.Events(400, 406)

	serial := make([]Decision, len(evs))
	view := e.NewSPTView()
	for i, ev := range evs {
		serial[i] = snap.Decide(ev, view)
	}

	for _, workers := range []int{1, 2, 8} {
		got := make([]Decision, len(evs))
		var wg sync.WaitGroup
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				v := e.NewSPTView()
				for i := wkr; i < len(evs); i += workers {
					got[i] = snap.Decide(evs[i], v)
				}
			}(wkr)
		}
		wg.Wait()
		for i := range evs {
			if !reflect.DeepEqual(serial[i], got[i]) {
				t.Fatalf("%d workers: decision %d diverged:\nserial %+v\nparallel %+v", workers, i, serial[i], got[i])
			}
		}
	}
}

// TestSnapshotChurnVisibility: a subscription added after a snapshot is
// invisible to it but visible to the next one, with the new subscriber
// covered (as interested) for events in its rectangle.
func TestSnapshotChurnVisibility(t *testing.T) {
	w, train := testWorld(t, 150, 407)
	e, err := NewFromWorld(w, train, Config{Groups: 15, CellBudget: 400})
	if err != nil {
		t.Fatal(err)
	}
	old := e.Snapshot()
	view := e.NewSPTView()

	// A brand-new owner node subscribing to everything.
	owner := pickNonSubscriber(e, w)
	sub := workload.Subscription{Owner: owner, Rect: w.Subs[0].Rect}
	slot, err := e.AddSubscription(sub)
	if err != nil {
		t.Fatal(err)
	}
	fresh := e.Snapshot()
	if fresh == old {
		t.Fatal("churn did not produce a new snapshot")
	}

	covered := 0
	for _, ev := range w.Events(300, 408) {
		if !sub.Rect.Contains(ev.Point) {
			continue
		}
		if hasNode(old.Decide(ev, view).Interested, owner) {
			t.Fatal("old snapshot sees the new subscriber")
		}
		if !hasNode(fresh.Decide(ev, view).Interested, owner) {
			t.Fatal("fresh snapshot misses the new subscriber")
		}
		covered++
	}
	if covered == 0 {
		t.Fatal("no event hit the churned subscription")
	}
	if err := e.RemoveSubscription(slot); err != nil {
		t.Fatal(err)
	}
	if gone := e.Snapshot(); gone.NumSubscriptions() != old.NumSubscriptions() {
		t.Errorf("after remove: %d subscriptions, want %d", gone.NumSubscriptions(), old.NumSubscriptions())
	}
}

// pickNonSubscriber finds a node with no subscriptions at world build time.
func pickNonSubscriber(e *Engine, w *workload.World) topology.NodeID {
	for n := 0; n < e.graph.NumNodes(); n++ {
		if _, ok := w.SubscriberIndex(topology.NodeID(n)); !ok {
			return topology.NodeID(n)
		}
	}
	return 0
}

func hasNode(nodes []topology.NodeID, n topology.NodeID) bool {
	for _, x := range nodes {
		if x == n {
			return true
		}
	}
	return false
}
