// Package core is the orchestration layer of the reproduction: a running
// content-based pub-sub Engine that owns the subscription index, the
// precomputed multicast groups and the per-event delivery decision loop
// (match → route → choose unicast/multicast), plus the subscription
// dynamics the paper sketches as future work — additions and removals with
// warm-started re-clustering.
//
// The Engine unifies the paper's two clustering families behind one
// configuration: a grid-based Algorithm (K-means, Forgy, MST, Pairs) or the
// No-Loss intersection algorithm. Delivery decisions follow Figures 5
// and 6, extended so that a group that no longer covers every interested
// subscriber (possible between dynamic updates) is topped up with unicast
// rather than losing messages.
package core

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/matching"
	"repro/internal/multicast"
	"repro/internal/noloss"
	"repro/internal/rtree"
	"repro/internal/space"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Config selects and tunes the clustering strategy of an Engine.
type Config struct {
	// Groups is the number of available multicast groups K. Required.
	Groups int
	// Algorithm is the grid-based clustering algorithm; ignored when
	// NoLoss is set. Defaults to Forgy K-means (the paper's recommended
	// choice).
	Algorithm cluster.Algorithm
	// CellBudget caps the hyper-cells fed to the grid algorithm
	// (0 = unlimited).
	CellBudget int
	// NoLoss switches the Engine to the No-Loss strategy.
	NoLoss *noloss.Config
	// Threshold enables the Fig 5 optimisation: when the fraction of group
	// members interested in an event falls below it, deliver by unicast.
	Threshold float64
	// CellProb, when set, supplies closed-form cell probabilities to the
	// grid framework instead of estimating them from the training events
	// (see workload.World.AnalyticCellProb for the generated workloads).
	CellProb func(space.Rect) float64
	// DynamicMethod enables the paper's §1 distribution-method decision:
	// for every event the Engine prices group multicast (with unicast
	// top-up), pure per-node unicast, and broadcast under the
	// network-supported framework, and delivers by the cheapest. Without
	// it, a routed group is always multicast (modulo Threshold).
	DynamicMethod bool
	// Parallelism pins the clustering worker count used by rebuilds and
	// Refresh: values > 0 are applied to Algorithm when it implements
	// cluster.Parallel; 0 keeps the algorithm's own setting (whose zero
	// value already means GOMAXPROCS). Negative values are rejected.
	Parallelism int
}

func (c Config) validate() error {
	if c.Groups < 1 {
		return fmt.Errorf("core: Groups = %d, need ≥ 1", c.Groups)
	}
	if c.Threshold < 0 || c.Threshold > 1 {
		return fmt.Errorf("core: Threshold = %v, need [0,1]", c.Threshold)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: Parallelism = %d, need ≥ 0", c.Parallelism)
	}
	return nil
}

// Engine is a configured pub-sub delivery system. It is not safe for
// concurrent use.
type Engine struct {
	cfg   Config
	graph *topology.Graph
	axes  []space.Axis
	subs  []workload.Subscription
	train []workload.Event

	world *workload.World
	grid  *space.Grid
	model *multicast.Model
	tree  *rtree.Tree  // dynamic subscription index
	live  map[int]bool // subscription slots still active

	// Grid-strategy state.
	gridIdx *matching.GridIndex
	gridIn  *cluster.Input
	gridRes *cluster.Result
	// No-Loss-strategy state.
	nlIdx *matching.NoLossIndex

	groupNodes [][]topology.NodeID
	overlays   *overlayTable

	// quarantined groups are skipped by Decide (fallback to unicast) until
	// the next Refresh/rebuild; the broker's fault-tolerance layer marks
	// groups whose deliveries persistently fail.
	quarantined map[int]bool

	stale bool // groups no longer reflect the current subscriptions

	// shared is the concurrency-safe SPT cache backing DecisionSnapshot
	// cost queries; the engine's private model keeps its own cache for the
	// single-threaded path.
	shared *multicast.SharedSPTs

	// Snapshot cache: lastSnap is reused until one of the dirty flags
	// marks the corresponding state as changed (see Snapshot).
	lastSnap    *DecisionSnapshot
	snapVersion int64
	dirtySubs   bool // tree / subscription slice changed
	dirtyGroups bool // group tables, overlays or indexes changed
	dirtyQuar   bool // quarantine set changed

	tel engineTelemetry
}

// engineTelemetry caches the engine's instruments. All handles are nil
// until Instrument is called; every recording site is nil-safe, and sites
// that would pay a time.Now() guard on the histogram being present.
type engineTelemetry struct {
	decides          *telemetry.Counter
	decideNs         *telemetry.Histogram
	refreshes        *telemetry.Counter
	refreshNs        *telemetry.Histogram
	rebuilds         *telemetry.Counter
	quarantines      *telemetry.Counter
	quarantineClears *telemetry.Counter
	subsAdded        *telemetry.Counter
	subsRemoved      *telemetry.Counter
	liveGroups       *telemetry.Gauge
}

// Instrument publishes the engine's metrics into the registry under scope
// "core": decide latency, refresh duration, full rebuilds, quarantine
// churn (set + cleared), subscription dynamics and the live group count.
// Call before handing the engine to a broker (the decision goroutine owns
// it afterwards). A nil registry is a no-op.
func (e *Engine) Instrument(reg *telemetry.Registry) {
	s := reg.Scope("core")
	if s == nil {
		return
	}
	e.tel = engineTelemetry{
		decides:          s.Counter("decides"),
		decideNs:         s.Histogram("decide_ns", telemetry.LatencyBuckets()),
		refreshes:        s.Counter("refreshes"),
		refreshNs:        s.Histogram("refresh_ns", telemetry.LatencyBuckets()),
		rebuilds:         s.Counter("rebuilds"),
		quarantines:      s.Counter("quarantines"),
		quarantineClears: s.Counter("quarantine_clears"),
		subsAdded:        s.Counter("subs_added"),
		subsRemoved:      s.Counter("subs_removed"),
		liveGroups:       s.Gauge("live_groups"),
	}
	e.tel.liveGroups.Set(int64(len(e.groupNodes)))
}

// New builds an Engine over a network, a subscription set, and a training
// event sample used to estimate publication probabilities.
func New(g *topology.Graph, axes []space.Axis, subs []workload.Subscription, train []workload.Event, cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("core: no training events")
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = &cluster.KMeans{Variant: cluster.Forgy}
	}
	if cfg.Parallelism > 0 {
		if p, ok := cfg.Algorithm.(cluster.Parallel); ok {
			p.SetParallelism(cfg.Parallelism)
		}
	}
	e := &Engine{
		cfg:    cfg,
		graph:  g,
		axes:   append([]space.Axis(nil), axes...),
		subs:   append([]workload.Subscription(nil), subs...),
		train:  train,
		model:  multicast.NewModel(g),
		shared: multicast.NewSharedSPTs(g),
	}
	if err := e.rebuild(); err != nil {
		return nil, err
	}
	return e, nil
}

// NewFromWorld is a convenience constructor from a generated workload.
func NewFromWorld(w *workload.World, train []workload.Event, cfg Config) (*Engine, error) {
	if w == nil {
		return nil, fmt.Errorf("core: nil world")
	}
	return New(w.Graph, w.Axes, w.Subs, train, cfg)
}

// clearQuarantines drops all quarantines, counting the churn.
func (e *Engine) clearQuarantines() {
	e.tel.quarantineClears.Add(int64(len(e.quarantined)))
	e.quarantined = nil
	e.dirtyQuar = true
}

// markRebuilt flags every snapshot-visible structure as changed after a
// full index/group reconstruction.
func (e *Engine) markRebuilt() {
	e.dirtySubs, e.dirtyGroups, e.dirtyQuar = true, true, true
}

// rebuild reconstructs every index and the multicast groups from scratch.
func (e *Engine) rebuild() error {
	e.tel.rebuilds.Inc()
	w, err := workload.NewCustomWorld(e.graph, e.axes, e.subs)
	if err != nil {
		return fmt.Errorf("core: world: %w", err)
	}
	grid, err := space.NewGrid(e.axes)
	if err != nil {
		return fmt.Errorf("core: grid: %w", err)
	}
	tree := rtree.New(w.Dim)
	live := make(map[int]bool, len(w.Subs))
	for i, s := range w.Subs {
		if err := tree.Insert(s.Rect, i); err != nil {
			return fmt.Errorf("core: indexing subscription %d: %w", i, err)
		}
		live[i] = true
	}
	e.world, e.grid, e.tree, e.live = w, grid, tree, live

	if e.cfg.NoLoss != nil {
		res, err := noloss.Build(w, e.train, *e.cfg.NoLoss)
		if err != nil {
			return fmt.Errorf("core: no-loss: %w", err)
		}
		idx, err := matching.NewNoLossIndex(res, e.cfg.Groups)
		if err != nil {
			return fmt.Errorf("core: no-loss index: %w", err)
		}
		e.nlIdx = idx
		e.gridIdx, e.gridIn, e.gridRes = nil, nil, nil
		e.groupNodes = make([][]topology.NodeID, len(idx.Groups()))
		for i := range idx.Groups() {
			g := idx.Groups()[i]
			e.groupNodes[i] = g.NodesOf(w)
		}
		e.overlays = newOverlayTable(e.shared, e.groupNodes)
		e.clearQuarantines()
		e.markRebuilt()
		e.tel.liveGroups.Set(int64(len(e.groupNodes)))
		e.stale = false
		return nil
	}

	in, err := e.buildInput(w, grid)
	if err != nil {
		return fmt.Errorf("core: clustering input: %w", err)
	}
	assign, err := e.cfg.Algorithm.Cluster(in, e.cfg.Groups)
	if err != nil {
		return fmt.Errorf("core: clustering: %w", err)
	}
	return e.adoptGridAssignment(in, assign)
}

// buildInput selects the configured probability source.
func (e *Engine) buildInput(w *workload.World, grid *space.Grid) (*cluster.Input, error) {
	if e.cfg.CellProb != nil {
		return cluster.BuildInputAnalytic(w, grid, e.cfg.CellProb, e.cfg.CellBudget)
	}
	return cluster.BuildInput(w, grid, e.train, e.cfg.CellBudget)
}

func (e *Engine) adoptGridAssignment(in *cluster.Input, assign cluster.Assignment) error {
	res, err := cluster.BuildResult(in, assign)
	if err != nil {
		return fmt.Errorf("core: materialising groups: %w", err)
	}
	idx, err := matching.NewGridIndex(e.grid, res)
	if err != nil {
		return fmt.Errorf("core: grid index: %w", err)
	}
	// Attach compressed mirrors to the now-frozen group vectors: the decide
	// plane's membership tests and the snapshot readers go through them for
	// sparse groups.
	res.PackMembers()
	e.gridIn, e.gridRes, e.gridIdx = in, res, idx
	e.nlIdx = nil
	e.groupNodes = make([][]topology.NodeID, len(res.Groups))
	for i := range res.Groups {
		e.groupNodes[i] = res.Groups[i].NodesOf(e.world)
	}
	// Overlays are built lazily on first ALM costing (see overlayTable):
	// eager per-group Prim over the metric closure made construction
	// quadratic in group size and is pure waste for runs that never price
	// app-level multicast.
	e.overlays = newOverlayTable(e.shared, e.groupNodes)
	e.clearQuarantines()
	e.markRebuilt()
	e.tel.liveGroups.Set(int64(len(e.groupNodes)))
	e.stale = false
	return nil
}

// World exposes the engine's current world view. Treat it as read-only;
// mutate subscriptions through AddSubscription and RemoveSubscription.
func (e *Engine) World() *workload.World { return e.world }

// Model exposes the engine's cost model.
func (e *Engine) Model() *multicast.Model { return e.model }

// NumGroups returns the number of non-empty multicast groups in use.
func (e *Engine) NumGroups() int { return len(e.groupNodes) }

// Stale reports whether subscriptions changed since groups were built.
func (e *Engine) Stale() bool { return e.stale }

// NumSubscriptions returns the live subscription count.
func (e *Engine) NumSubscriptions() int { return e.tree.Len() }

// GroupInfo describes one precomputed multicast group.
type GroupInfo struct {
	Index int
	// Nodes are the member nodes (copy; safe to retain).
	Nodes []topology.NodeID
	// OverlayCost is the application-level overlay MST cost.
	OverlayCost float64
}

// Quarantine marks multicast group g unusable: Decide stops routing events
// through it (falling back to unicast for its members) until the next
// Refresh or rebuild clears the quarantine. The broker invokes this when
// deliveries to a group member persistently fail (node down, link
// partitioned) so that the decision stage degrades gracefully instead of
// feeding an unreachable group.
func (e *Engine) Quarantine(g int) {
	if g < 0 || g >= len(e.groupNodes) {
		panic(fmt.Sprintf("core: quarantine group %d out of range [0,%d)", g, len(e.groupNodes)))
	}
	if e.quarantined == nil {
		e.quarantined = make(map[int]bool)
	}
	if !e.quarantined[g] {
		e.tel.quarantines.Inc()
		e.dirtyQuar = true
	}
	e.quarantined[g] = true
}

// Quarantined reports whether group g is currently quarantined.
func (e *Engine) Quarantined(g int) bool { return e.quarantined[g] }

// NumQuarantined returns how many groups are currently quarantined.
func (e *Engine) NumQuarantined() int { return len(e.quarantined) }

// QuarantinedGroups returns the quarantined group indices, ascending.
func (e *Engine) QuarantinedGroups() []int {
	out := make([]int, 0, len(e.quarantined))
	for g := range e.quarantined {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// Group returns the composition of multicast group i in [0, NumGroups()).
func (e *Engine) Group(i int) GroupInfo {
	if i < 0 || i >= len(e.groupNodes) {
		panic(fmt.Sprintf("core: group %d out of range [0,%d)", i, len(e.groupNodes)))
	}
	return GroupInfo{
		Index:       i,
		Nodes:       append([]topology.NodeID(nil), e.groupNodes[i]...),
		OverlayCost: e.overlays.get(i).TreeCost,
	}
}
