package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/rtree"
	"repro/internal/space"
	"repro/internal/workload"
)

// AddSubscription registers a new subscription and returns its slot id.
// The subscription takes effect immediately for matching; multicast groups
// are not recomputed until Refresh, so events for the new subscriber are
// topped up by unicast in the meantime (never lost). The Engine is marked
// stale.
func (e *Engine) AddSubscription(s workload.Subscription) (int, error) {
	if s.Rect.Dim() != e.world.Dim {
		return 0, fmt.Errorf("core: subscription dim %d, world dim %d", s.Rect.Dim(), e.world.Dim)
	}
	if s.Rect.Empty() {
		return 0, fmt.Errorf("core: empty subscription rectangle")
	}
	if s.Owner < 0 || int(s.Owner) >= e.graph.NumNodes() {
		return 0, fmt.Errorf("core: owner %d out of range", s.Owner)
	}
	slot := len(e.world.Subs)
	if err := e.tree.Insert(s.Rect, slot); err != nil {
		return 0, fmt.Errorf("core: indexing subscription: %w", err)
	}
	e.world.Subs = append(e.world.Subs, s)
	e.live[slot] = true
	e.stale = true
	e.dirtySubs = true
	e.tel.subsAdded.Inc()
	return slot, nil
}

// RemoveSubscription deletes a subscription by slot id. Removal takes
// effect immediately for matching; groups keep the (now uninterested)
// subscriber until Refresh, costing waste but never losing messages.
func (e *Engine) RemoveSubscription(slot int) error {
	if slot < 0 || slot >= len(e.world.Subs) || !e.live[slot] {
		return fmt.Errorf("core: no live subscription in slot %d", slot)
	}
	if !e.tree.Delete(e.world.Subs[slot].Rect, slot) {
		return fmt.Errorf("core: subscription %d missing from index", slot)
	}
	delete(e.live, slot)
	e.stale = true
	e.dirtySubs = true
	e.tel.subsRemoved.Inc()
	return nil
}

// LiveSlots returns the slot ids of all live subscriptions in ascending
// order — the order Refresh compacts them into slots 0..n-1. A caller
// tracking per-slot identity across a Refresh can therefore capture this
// before the call and remap afterwards: old slot LiveSlots()[i] becomes
// new slot i.
func (e *Engine) LiveSlots() []int {
	out := make([]int, 0, len(e.live))
	for slot := 0; slot < len(e.world.Subs); slot++ {
		if e.live[slot] {
			out = append(out, slot)
		}
	}
	return out
}

// Refresh recomputes multicast groups for the current subscription set.
// With warmIters > 0 and an iterative grid algorithm, the previous
// partition seeds the new one and only warmIters re-balancing passes run —
// the cheap dynamic update the paper recommends iterative clustering for.
// Otherwise groups are rebuilt from scratch.
func (e *Engine) Refresh(warmIters int) error {
	if e.tel.refreshNs != nil {
		defer e.tel.refreshNs.Start()()
		e.tel.refreshes.Inc()
	}
	// Compact the live subscriptions into the canonical slice.
	subs := make([]workload.Subscription, 0, len(e.live))
	for slot := 0; slot < len(e.world.Subs); slot++ {
		if e.live[slot] {
			subs = append(subs, e.world.Subs[slot])
		}
	}
	if len(subs) == 0 {
		return fmt.Errorf("core: refresh with zero live subscriptions")
	}
	e.subs = subs

	km, iterative := e.cfg.Algorithm.(*cluster.KMeans)
	if warmIters <= 0 || !iterative || e.cfg.NoLoss != nil || e.gridRes == nil {
		return e.rebuild()
	}

	// Carry the old cell→group mapping across the rebuild.
	oldCellGroup := e.gridRes.CellGroup

	w, err := workload.NewCustomWorld(e.graph, e.axes, e.subs)
	if err != nil {
		return fmt.Errorf("core: world: %w", err)
	}
	grid, err := space.NewGrid(e.axes)
	if err != nil {
		return fmt.Errorf("core: grid: %w", err)
	}
	// Re-index: slots changed after compaction.
	if err := e.reindex(w, grid); err != nil {
		return err
	}

	in, err := e.buildInput(w, grid)
	if err != nil {
		return fmt.Errorf("core: clustering input: %w", err)
	}
	initial := make(cluster.Assignment, len(in.Cells))
	for ci := range in.Cells {
		initial[ci] = majorityGroup(in.Cells[ci].Cells, oldCellGroup, e.cfg.Groups)
	}
	assign, err := km.ClusterWarm(in, e.cfg.Groups, initial, warmIters)
	if err != nil {
		return fmt.Errorf("core: warm clustering: %w", err)
	}
	return e.adoptGridAssignment(in, assign)
}

// reindex installs a fresh world, grid and subscription index after
// compaction.
func (e *Engine) reindex(w *workload.World, grid *space.Grid) error {
	tree := rtree.New(w.Dim)
	for i, s := range w.Subs {
		if err := tree.Insert(s.Rect, i); err != nil {
			return fmt.Errorf("core: re-indexing subscription %d: %w", i, err)
		}
	}
	e.world, e.grid, e.tree = w, grid, tree
	e.live = make(map[int]bool, len(w.Subs))
	for i := range w.Subs {
		e.live[i] = true
	}
	return nil
}

// majorityGroup picks the most common old group among the hyper-cell's
// grid cells, or -1 when none were previously clustered or the winner is
// out of range.
func majorityGroup(cells []space.CellID, old map[space.CellID]int, k int) int {
	counts := map[int]int{}
	best, bestN := -1, 0
	for _, id := range cells {
		g, ok := old[id]
		if !ok {
			continue
		}
		counts[g]++
		if counts[g] > bestN {
			best, bestN = g, counts[g]
		}
	}
	if best >= k {
		return -1
	}
	return best
}
