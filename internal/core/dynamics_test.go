package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/multicast"
	"repro/internal/space"
	"repro/internal/topology"
)

// TestMajorityGroupEdgeCases exercises the warm-start seeding helper
// beyond the happy path: no previous assignment, an out-of-range old
// winner (old K > new K), and a straight majority.
func TestMajorityGroupEdgeCases(t *testing.T) {
	cells := []space.CellID{1, 2, 3}

	if got := majorityGroup(cells, map[space.CellID]int{}, 5); got != -1 {
		t.Errorf("unclustered cells: got %d, want -1", got)
	}

	// Old winner index ≥ new K: the stale seed must be rejected, not fed
	// to the clusterer as an out-of-range group.
	old := map[space.CellID]int{1: 7, 2: 7, 3: 0}
	if got := majorityGroup(cells, old, 3); got != -1 {
		t.Errorf("out-of-range winner: got %d, want -1", got)
	}
	// The same counts under a larger K keep the winner.
	if got := majorityGroup(cells, old, 8); got != 7 {
		t.Errorf("in-range winner: got %d, want 7", got)
	}

	old = map[space.CellID]int{1: 2, 2: 2, 3: 1}
	if got := majorityGroup(cells, old, 4); got != 2 {
		t.Errorf("majority: got %d, want 2", got)
	}

	if got := majorityGroup(nil, map[space.CellID]int{1: 0}, 4); got != -1 {
		t.Errorf("empty cell list: got %d, want -1", got)
	}
}

// TestRefreshAfterRemovingWholeGroup removes every subscription owned by
// the members of one multicast group, then warm-refreshes: the refresh
// must succeed even though a whole group's interest vanished, and the
// remaining decisions must stay complete.
func TestRefreshAfterRemovingWholeGroup(t *testing.T) {
	w, train := testWorld(t, 300, 97)
	e, err := NewFromWorld(w, train, Config{
		Groups: 15, CellBudget: 400,
		Algorithm: &cluster.KMeans{Variant: cluster.Forgy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumGroups() == 0 {
		t.Fatal("no groups")
	}
	victims := map[topology.NodeID]bool{}
	for _, n := range e.groupNodes[0] {
		victims[n] = true
	}
	if len(victims) == 0 {
		t.Fatal("group 0 empty")
	}
	removed := 0
	for slot := range e.world.Subs {
		if e.live[slot] && victims[e.world.Subs[slot].Owner] {
			if err := e.RemoveSubscription(slot); err != nil {
				t.Fatal(err)
			}
			removed++
		}
	}
	if removed == 0 {
		t.Fatal("no subscriptions removed")
	}
	if err := e.Refresh(2); err != nil {
		t.Fatalf("warm refresh after removing a whole group: %v", err)
	}
	if e.Stale() {
		t.Error("stale after refresh")
	}
	if got := e.NumSubscriptions(); got != 300-removed {
		t.Errorf("NumSubscriptions = %d, want %d", got, 300-removed)
	}
	// Former group members no longer subscribe: no decision may list them
	// as interested, and every interested node must still be covered.
	for _, ev := range w.Events(100, 98) {
		d := e.Decide(ev)
		for _, n := range d.Interested {
			if victims[n] {
				t.Fatalf("removed subscriber %d still matched", n)
			}
		}
		if d.Method != multicast.NetworkMulticast {
			continue
		}
		covered := map[topology.NodeID]bool{}
		for _, n := range e.groupNodes[d.Group] {
			covered[n] = true
		}
		for _, n := range d.Remainder {
			covered[n] = true
		}
		for _, n := range d.Interested {
			if !covered[n] {
				t.Fatalf("interested node %d not covered after refresh", n)
			}
		}
	}
}

// TestRefreshWithZeroLiveSubscriptions: draining the engine entirely must
// produce a clean error from Refresh, not a crash deep in clustering.
func TestRefreshWithZeroLiveSubscriptions(t *testing.T) {
	w, train := testWorld(t, 50, 99)
	e, err := NewFromWorld(w, train, Config{Groups: 5, CellBudget: 200})
	if err != nil {
		t.Fatal(err)
	}
	for slot := range e.world.Subs {
		if e.live[slot] {
			if err := e.RemoveSubscription(slot); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e.NumSubscriptions() != 0 {
		t.Fatalf("NumSubscriptions = %d", e.NumSubscriptions())
	}
	if err := e.Refresh(2); err == nil {
		t.Fatal("refresh with zero live subscriptions accepted")
	}
	if err := e.Refresh(0); err == nil {
		t.Fatal("cold refresh with zero live subscriptions accepted")
	}
}

// TestQuarantineLifecycle: quarantine redirects decisions to unicast and
// both Refresh and rebuild clear it.
func TestQuarantineLifecycle(t *testing.T) {
	w, train := testWorld(t, 200, 100)
	e, err := NewFromWorld(w, train, Config{Groups: 10, CellBudget: 300})
	if err != nil {
		t.Fatal(err)
	}
	evs := w.Events(200, 101)
	// Find an event routed through a group.
	var grp = -1
	for _, ev := range evs {
		if d := e.Decide(ev); d.Method == multicast.NetworkMulticast {
			grp = d.Group
			break
		}
	}
	if grp < 0 {
		t.Fatal("no multicast decision to quarantine")
	}
	e.Quarantine(grp)
	if !e.Quarantined(grp) {
		t.Fatal("group not quarantined")
	}
	for _, ev := range evs {
		if d := e.Decide(ev); d.Method == multicast.NetworkMulticast && d.Group == grp {
			t.Fatalf("quarantined group %d still routed", grp)
		}
	}
	if got := e.QuarantinedGroups(); len(got) != 1 || got[0] != grp {
		t.Errorf("QuarantinedGroups = %v", got)
	}
	if got := e.NumQuarantined(); got != 1 {
		t.Errorf("NumQuarantined = %d, want 1", got)
	}
	if err := e.Refresh(1); err != nil {
		t.Fatal(err)
	}
	if len(e.QuarantinedGroups()) != 0 {
		t.Error("quarantine survived warm refresh")
	}
	if got := e.NumQuarantined(); got != 0 {
		t.Errorf("NumQuarantined after refresh = %d, want 0", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("out-of-range quarantine did not panic")
		}
	}()
	e.Quarantine(10_000)
}
