package core

import (
	"fmt"

	"repro/internal/multicast"
	"repro/internal/topology"
	"repro/internal/workload"
)

// DecisionSnapshot is an immutable view of everything one delivery
// decision reads: the subscription index (a private clone of the R*-tree),
// a frozen subscription slice, the group tables, the overlay set and a
// copy of the quarantine set. Snapshots are safe for concurrent use by any
// number of readers; the broker publishes them through an atomic pointer
// and its decision workers take lock-free loads (RCU: readers drain on the
// old snapshot while the writer prepares the next).
//
// Cost queries need per-goroutine scratch state, so Decide and CostOf take
// the calling worker's *multicast.SPTView (create one per goroutine with
// Engine.NewSPTView). Decisions are byte-identical to Engine.Decide
// against the same state, for every worker count.
type DecisionSnapshot struct {
	version int64
	dec     decider
	shared  *multicast.SharedSPTs
}

// Version is the snapshot's monotone build number (1 for the first
// snapshot an engine builds).
func (s *DecisionSnapshot) Version() int64 { return s.version }

// NumGroups returns the number of multicast groups in the snapshot.
func (s *DecisionSnapshot) NumGroups() int { return len(s.dec.groupNodes) }

// NumQuarantined returns how many groups this snapshot quarantines.
func (s *DecisionSnapshot) NumQuarantined() int { return len(s.dec.quarantined) }

// Quarantined reports whether group g is quarantined in this snapshot.
func (s *DecisionSnapshot) Quarantined(g int) bool { return s.dec.quarantined[g] }

// NumSubscriptions returns the live subscription count at snapshot time.
func (s *DecisionSnapshot) NumSubscriptions() int { return s.dec.tree.Len() }

// GroupNodes returns group g's member nodes. The slice is shared and must
// be treated as read-only.
func (s *DecisionSnapshot) GroupNodes(g int) []topology.NodeID {
	if g < 0 || g >= len(s.dec.groupNodes) {
		panic(fmt.Sprintf("core: group %d out of range [0,%d)", g, len(s.dec.groupNodes)))
	}
	return s.dec.groupNodes[g]
}

// Decide plans delivery for one event against the frozen state. view must
// be owned by the calling goroutine. The returned Decision's slices are
// freshly allocated and safe to retain.
func (s *DecisionSnapshot) Decide(ev workload.Event, view *multicast.SPTView) Decision {
	return s.dec.decide(ev, view, nil)
}

// DecideInto is Decide with caller-owned scratch: the returned Decision's
// slices alias sc's buffers and are valid only until sc's next use. A
// decide worker that reuses one scratch across events makes the whole
// decide path allocation-free in steady state; decisions are bit-identical
// to Decide. sc must be owned by the calling goroutine.
func (s *DecisionSnapshot) DecideInto(ev workload.Event, view *multicast.SPTView, sc *DecideScratch) Decision {
	return s.dec.decide(ev, view, sc)
}

// CostOf prices a decision made against this snapshot. view must be owned
// by the calling goroutine.
func (s *DecisionSnapshot) CostOf(ev workload.Event, d Decision, view *multicast.SPTView) Costs {
	return s.dec.costOf(ev, d, view)
}

// NewSPTView creates a decision worker's view over the engine's shared
// shortest-path-tree cache. Views work across snapshot swaps (the network
// topology is fixed for the engine's lifetime) but are not safe for
// concurrent use: one per goroutine.
func (e *Engine) NewSPTView() *multicast.SPTView { return e.shared.NewView() }

// Snapshot returns an immutable decision snapshot of the engine's current
// state, building one only when state changed since the last call:
//
//   - nothing changed: the previous snapshot is returned as-is;
//   - only the quarantine set changed: the new snapshot shares the
//     subscription index and group tables with its predecessor and swaps
//     in a fresh quarantine copy (cheap, O(quarantined));
//   - subscriptions or groups changed: the R*-tree is cloned and the
//     subscription slice frozen at its current length, so the engine's
//     subsequent Insert/Delete/append mutations never touch the snapshot.
//
// Snapshot must be called from the goroutine that owns the engine.
func (e *Engine) Snapshot() *DecisionSnapshot {
	if e.lastSnap != nil && !e.dirtySubs && !e.dirtyGroups && !e.dirtyQuar {
		return e.lastSnap
	}
	e.snapVersion++
	var dec decider
	if e.lastSnap != nil && !e.dirtySubs && !e.dirtyGroups {
		// Quarantine-only change: share everything structural.
		dec = e.lastSnap.dec
	} else {
		dec = e.dec()
		dec.tree = e.tree.Clone()
		// Freeze the slice length: writer-side appends only ever write at
		// indices ≥ this length, which the snapshot never reads. Capping
		// the capacity too keeps any accidental append on the snapshot
		// side from aliasing the live array.
		dec.subs = e.world.Subs[:len(e.world.Subs):len(e.world.Subs)]
	}
	if len(e.quarantined) == 0 {
		dec.quarantined = nil
	} else {
		q := make(map[int]bool, len(e.quarantined))
		for g := range e.quarantined {
			q[g] = true
		}
		dec.quarantined = q
	}
	s := &DecisionSnapshot{version: e.snapVersion, dec: dec, shared: e.shared}
	e.lastSnap = s
	e.dirtySubs, e.dirtyGroups, e.dirtyQuar = false, false, false
	return s
}
