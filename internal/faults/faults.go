// Package faults provides deterministic fault injection for the broker's
// delivery fabric: per-delivery drops, delays and duplicates, per-link drop
// probabilities applied along the routing path, explicit link failures,
// flapping links, and scheduled node crashes.
//
// Everything is reproducible from a single seed, following the same RNG
// discipline as internal/stats — a (seed, config) pair fully identifies a
// fault schedule. Unlike stats, the injector is consulted concurrently by
// the broker's fan-out workers in a nondeterministic order, so it cannot
// share one *rand.Rand: instead every decision is a pure hash of
// (seed, event sequence, destination, attempt, edge), which makes the
// outcome of each individual delivery attempt independent of goroutine
// interleaving. Chaos tests replay identical fault schedules run after run.
package faults

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/topology"
)

// Crash schedules one node outage: the node is down for every event whose
// sequence number lies in [DownAt, UpAt). UpAt ≤ 0 means the node never
// recovers.
type Crash struct {
	Node   topology.NodeID
	DownAt int64
	UpAt   int64
}

// Flap schedules a periodically failing link: the link is down while
// (seq / Period) is odd, so it alternates Period events up, Period events
// down.
type Flap struct {
	U, V   topology.NodeID
	Period int64
}

// LinkOutage schedules one link failure window: the link is
// deterministically down for every event whose sequence number lies in
// [DownAt, UpAt), and excluded from alternate-path recomputes during the
// window. UpAt ≤ 0 means the link never recovers. Unlike FailLink /
// RestoreLink (runtime toggles), outages are part of the seeded schedule,
// so recovery experiments replay identically.
type LinkOutage struct {
	U, V   topology.NodeID
	DownAt int64
	UpAt   int64
}

// Config parameterises an Injector. All probabilities are per delivery
// attempt and must lie in [0, 1].
type Config struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// DropProb drops a delivery attempt end-to-end (receiver-side loss).
	DropProb float64
	// DupProb duplicates a successful delivery (the copy arrives twice;
	// receiver-side dedup must suppress the second).
	DupProb float64
	// DelayProb delays a successful delivery by up to MaxDelay.
	DelayProb float64
	// MaxDelay caps injected delays (default 1ms when DelayProb > 0).
	MaxDelay time.Duration
	// LinkDropProb is the per-edge drop probability applied independently
	// to every edge along a delivery's routing path.
	LinkDropProb float64
	// Links overrides LinkDropProb for specific edges. A probability ≥ 1
	// marks the link as failed (deterministically down, and excluded from
	// alternate-path recomputes).
	Links map[topology.EdgeKey]float64
	// Crashes is the node outage schedule.
	Crashes []Crash
	// Flaps is the flapping-link schedule.
	Flaps []Flap
	// Outages is the scheduled link-failure-window list.
	Outages []LinkOutage
}

func (c Config) validate() error {
	for name, p := range map[string]float64{
		"DropProb": c.DropProb, "DupProb": c.DupProb,
		"DelayProb": c.DelayProb, "LinkDropProb": c.LinkDropProb,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: %s = %v, need [0,1]", name, p)
		}
	}
	for k, p := range c.Links {
		if p < 0 {
			return fmt.Errorf("faults: link (%d,%d) probability %v < 0", k.U, k.V, p)
		}
	}
	for _, cr := range c.Crashes {
		if cr.DownAt < 0 {
			return fmt.Errorf("faults: crash of node %d at negative sequence %d", cr.Node, cr.DownAt)
		}
		if cr.UpAt > 0 && cr.UpAt <= cr.DownAt {
			return fmt.Errorf("faults: crash of node %d recovers at %d ≤ down at %d", cr.Node, cr.UpAt, cr.DownAt)
		}
	}
	for _, f := range c.Flaps {
		if f.Period <= 0 {
			return fmt.Errorf("faults: flap (%d,%d) period %d, need > 0", f.U, f.V, f.Period)
		}
	}
	for _, o := range c.Outages {
		if o.DownAt < 0 {
			return fmt.Errorf("faults: outage of link (%d,%d) at negative sequence %d", o.U, o.V, o.DownAt)
		}
		if o.UpAt > 0 && o.UpAt <= o.DownAt {
			return fmt.Errorf("faults: outage of link (%d,%d) recovers at %d ≤ down at %d", o.U, o.V, o.UpAt, o.DownAt)
		}
	}
	return nil
}

// Injector decides the fate of individual delivery attempts. Safe for
// concurrent use.
type Injector struct {
	cfg  Config
	seed uint64

	crashes map[topology.NodeID][]Crash
	flaps   map[topology.EdgeKey]int64 // edge → flap period
	links   map[topology.EdgeKey]float64
	outages map[topology.EdgeKey][]LinkOutage

	mu     sync.RWMutex
	failed map[topology.EdgeKey]bool // links failed at runtime via FailLink
}

// New builds an injector from a config.
func New(cfg Config) (*Injector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.DelayProb > 0 && cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Millisecond
	}
	inj := &Injector{
		cfg:     cfg,
		seed:    splitmix64(uint64(cfg.Seed) ^ 0xD1B54A32D192ED03),
		crashes: make(map[topology.NodeID][]Crash),
		flaps:   make(map[topology.EdgeKey]int64),
		links:   make(map[topology.EdgeKey]float64),
		outages: make(map[topology.EdgeKey][]LinkOutage),
		failed:  make(map[topology.EdgeKey]bool),
	}
	for _, cr := range cfg.Crashes {
		inj.crashes[cr.Node] = append(inj.crashes[cr.Node], cr)
	}
	for _, o := range cfg.Outages {
		k := topology.MakeEdgeKey(o.U, o.V)
		inj.outages[k] = append(inj.outages[k], o)
	}
	for _, f := range cfg.Flaps {
		inj.flaps[topology.MakeEdgeKey(f.U, f.V)] = f.Period
	}
	for k, p := range cfg.Links {
		inj.links[topology.MakeEdgeKey(k.U, k.V)] = p
	}
	return inj, nil
}

// Seed returns the injector's seed.
func (i *Injector) Seed() int64 { return i.cfg.Seed }

// splitmix64 is the SplitMix64 finalizer — a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll hashes the seed with the given keys into a uniform float64 in [0, 1).
func (i *Injector) roll(kind uint64, keys ...uint64) float64 {
	h := splitmix64(i.seed ^ kind)
	for _, k := range keys {
		h = splitmix64(h ^ k)
	}
	return float64(h>>11) / (1 << 53)
}

// Decision-kind salts, so distinct decisions over the same keys are
// independent.
const (
	kindDrop uint64 = iota + 1
	kindEdge
	kindDup
	kindDelayHit
	kindDelayLen
	kindJitter
)

// NodeDown reports whether node n is crashed for event sequence seq.
func (i *Injector) NodeDown(n topology.NodeID, seq int64) bool {
	for _, cr := range i.crashes[n] {
		if seq >= cr.DownAt && (cr.UpAt <= 0 || seq < cr.UpAt) {
			return true
		}
	}
	return false
}

// FailLink marks the undirected link (u, v) failed: every attempt crossing
// it is dropped and alternate-path recomputes exclude it.
func (i *Injector) FailLink(u, v topology.NodeID) {
	i.mu.Lock()
	i.failed[topology.MakeEdgeKey(u, v)] = true
	i.mu.Unlock()
}

// RestoreLink reverses FailLink.
func (i *Injector) RestoreLink(u, v topology.NodeID) {
	i.mu.Lock()
	delete(i.failed, topology.MakeEdgeKey(u, v))
	i.mu.Unlock()
}

// LinkDown reports whether the link (u, v) is deterministically down for
// event sequence seq: explicitly failed, configured with probability ≥ 1,
// or in the down half of a flap cycle.
func (i *Injector) LinkDown(u, v topology.NodeID, seq int64) bool {
	k := topology.MakeEdgeKey(u, v)
	i.mu.RLock()
	f := i.failed[k]
	i.mu.RUnlock()
	if f {
		return true
	}
	if p, ok := i.links[k]; ok && p >= 1 {
		return true
	}
	if period, ok := i.flaps[k]; ok && (seq/period)%2 == 1 {
		return true
	}
	for _, o := range i.outages[k] {
		if seq >= o.DownAt && (o.UpAt <= 0 || seq < o.UpAt) {
			return true
		}
	}
	return false
}

// Blocked returns an edge predicate suitable for routing.DijkstraAvoid:
// true for every link that is deterministically down at seq.
func (i *Injector) Blocked(seq int64) func(u, v topology.NodeID) bool {
	return func(u, v topology.NodeID) bool { return i.LinkDown(u, v, seq) }
}

// DropAttempt reports whether delivery attempt number attempt of event seq
// to dest, routed along path, is lost. Down links along the path fail the
// attempt deterministically; otherwise the end-to-end DropProb and the
// per-edge probabilities are rolled independently.
func (i *Injector) DropAttempt(seq int64, dest topology.NodeID, attempt int, path []topology.NodeID) bool {
	for idx := 1; idx < len(path); idx++ {
		if i.LinkDown(path[idx-1], path[idx], seq) {
			return true
		}
	}
	if i.cfg.DropProb > 0 &&
		i.roll(kindDrop, uint64(seq), uint64(dest), uint64(attempt)) < i.cfg.DropProb {
		return true
	}
	if i.cfg.LinkDropProb > 0 || len(i.links) > 0 {
		for idx := 1; idx < len(path); idx++ {
			k := topology.MakeEdgeKey(path[idx-1], path[idx])
			p := i.cfg.LinkDropProb
			if over, ok := i.links[k]; ok {
				p = over
			}
			if p <= 0 {
				continue
			}
			if i.roll(kindEdge, uint64(seq), uint64(dest), uint64(attempt), uint64(k.U)<<32|uint64(uint32(k.V))) < p {
				return true
			}
		}
	}
	return false
}

// Duplicate reports whether a successful delivery of event seq to dest is
// duplicated in flight.
func (i *Injector) Duplicate(seq int64, dest topology.NodeID) bool {
	return i.cfg.DupProb > 0 && i.roll(kindDup, uint64(seq), uint64(dest)) < i.cfg.DupProb
}

// Delay returns the injected latency for a successful delivery (0 for
// most deliveries; up to MaxDelay with probability DelayProb).
func (i *Injector) Delay(seq int64, dest topology.NodeID) time.Duration {
	if i.cfg.DelayProb <= 0 {
		return 0
	}
	if i.roll(kindDelayHit, uint64(seq), uint64(dest)) >= i.cfg.DelayProb {
		return 0
	}
	frac := i.roll(kindDelayLen, uint64(seq), uint64(dest))
	return time.Duration(frac * float64(i.cfg.MaxDelay))
}

// Jitter returns a deterministic uniform [0, 1) jitter factor for the
// broker's retry backoff, keyed by (seq, dest, attempt).
func (i *Injector) Jitter(seq int64, dest topology.NodeID, attempt int) float64 {
	return i.roll(kindJitter, uint64(seq), uint64(dest), uint64(attempt))
}
