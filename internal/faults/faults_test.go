package faults

import (
	"math"
	"testing"
	"time"

	"repro/internal/topology"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{DropProb: -0.1},
		{DropProb: 1.1},
		{DupProb: 2},
		{DelayProb: -1},
		{LinkDropProb: 7},
		{Links: map[topology.EdgeKey]float64{{U: 0, V: 1}: -0.5}},
		{Crashes: []Crash{{Node: 3, DownAt: -1}}},
		{Crashes: []Crash{{Node: 3, DownAt: 10, UpAt: 5}}},
		{Flaps: []Flap{{U: 0, V: 1, Period: 0}}},
		{Outages: []LinkOutage{{U: 0, V: 1, DownAt: -2}}},
		{Outages: []LinkOutage{{U: 0, V: 1, DownAt: 10, UpAt: 10}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{Seed: 1, DropProb: 0.5, LinkDropProb: 1}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestDeterminism: two injectors with the same config make identical
// decisions, and a different seed makes different ones.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, DropProb: 0.3, DupProb: 0.3, LinkDropProb: 0.2}
	a, _ := New(cfg)
	b, _ := New(cfg)
	cfg.Seed = 8
	c, _ := New(cfg)

	path := []topology.NodeID{0, 3, 9, 12}
	same, diff := 0, 0
	for seq := int64(0); seq < 500; seq++ {
		for attempt := 0; attempt < 3; attempt++ {
			da := a.DropAttempt(seq, 12, attempt, path)
			if db := b.DropAttempt(seq, 12, attempt, path); da != db {
				t.Fatalf("same seed diverged at seq %d attempt %d", seq, attempt)
			}
			if dc := c.DropAttempt(seq, 12, attempt, path); da == dc {
				same++
			} else {
				diff++
			}
		}
		if a.Duplicate(seq, 12) != b.Duplicate(seq, 12) {
			t.Fatalf("Duplicate diverged at seq %d", seq)
		}
		if a.Jitter(seq, 12, 1) != b.Jitter(seq, 12, 1) {
			t.Fatalf("Jitter diverged at seq %d", seq)
		}
	}
	if diff == 0 {
		t.Error("different seeds never disagreed")
	}
}

// TestDropRate: the hashed rolls approximate the configured probability.
func TestDropRate(t *testing.T) {
	inj, _ := New(Config{Seed: 11, DropProb: 0.25})
	drops := 0
	const n = 20000
	for seq := int64(0); seq < n; seq++ {
		if inj.DropAttempt(seq, 5, 0, nil) {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("drop rate %.3f, want ≈ 0.25", got)
	}
}

// TestAttemptIndependence: retry attempts of the same delivery are rolled
// independently, so a drop on attempt 0 does not doom attempt 1.
func TestAttemptIndependence(t *testing.T) {
	inj, _ := New(Config{Seed: 13, DropProb: 0.5})
	recovered := 0
	for seq := int64(0); seq < 2000; seq++ {
		if inj.DropAttempt(seq, 2, 0, nil) && !inj.DropAttempt(seq, 2, 1, nil) {
			recovered++
		}
	}
	if recovered == 0 {
		t.Error("no delivery ever succeeded on retry; attempts not independent")
	}
}

func TestCrashSchedule(t *testing.T) {
	inj, _ := New(Config{Seed: 1, Crashes: []Crash{
		{Node: 4, DownAt: 10, UpAt: 20},
		{Node: 7, DownAt: 5, UpAt: 0}, // never recovers
	}})
	cases := []struct {
		node topology.NodeID
		seq  int64
		down bool
	}{
		{4, 9, false}, {4, 10, true}, {4, 19, true}, {4, 20, false},
		{7, 4, false}, {7, 5, true}, {7, 1 << 40, true},
		{3, 10, false}, // unscheduled node never down
	}
	for _, c := range cases {
		if got := inj.NodeDown(c.node, c.seq); got != c.down {
			t.Errorf("NodeDown(%d, %d) = %v, want %v", c.node, c.seq, got, c.down)
		}
	}
}

func TestFlapSchedule(t *testing.T) {
	inj, _ := New(Config{Seed: 1, Flaps: []Flap{{U: 2, V: 5, Period: 10}}})
	for _, c := range []struct {
		seq  int64
		down bool
	}{{0, false}, {9, false}, {10, true}, {19, true}, {20, false}, {35, true}} {
		if got := inj.LinkDown(2, 5, c.seq); got != c.down {
			t.Errorf("LinkDown(2,5,%d) = %v, want %v", c.seq, got, c.down)
		}
		// Undirected: argument order must not matter.
		if got := inj.LinkDown(5, 2, c.seq); got != c.down {
			t.Errorf("LinkDown(5,2,%d) = %v, want %v", c.seq, got, c.down)
		}
	}
}

func TestOutageSchedule(t *testing.T) {
	inj, _ := New(Config{Seed: 1, Outages: []LinkOutage{
		{U: 2, V: 5, DownAt: 10, UpAt: 30},
		{U: 6, V: 7, DownAt: 5, UpAt: 0}, // never recovers
	}})
	for _, c := range []struct {
		u, v topology.NodeID
		seq  int64
		down bool
	}{
		{2, 5, 9, false}, {2, 5, 10, true}, {2, 5, 29, true}, {2, 5, 30, false},
		{5, 2, 15, true}, // undirected
		{6, 7, 4, false}, {6, 7, 5, true}, {6, 7, 1 << 40, true},
		{1, 2, 15, false}, // unscheduled link never down
	} {
		if got := inj.LinkDown(c.u, c.v, c.seq); got != c.down {
			t.Errorf("LinkDown(%d,%d,%d) = %v, want %v", c.u, c.v, c.seq, got, c.down)
		}
	}
	// The Blocked predicate sees outage windows, so alternate-path
	// recomputes avoid the link while it is down.
	if !inj.Blocked(15)(2, 5) {
		t.Error("Blocked predicate misses an active outage")
	}
	if inj.Blocked(30)(2, 5) {
		t.Error("Blocked predicate blocks a recovered link")
	}
	// A down outage link on the path deterministically drops the attempt.
	if !inj.DropAttempt(15, 9, 0, []topology.NodeID{0, 2, 5, 9}) {
		t.Error("attempt across outage link not dropped")
	}
	if inj.DropAttempt(30, 9, 0, []topology.NodeID{0, 2, 5, 9}) {
		t.Error("attempt dropped after outage recovered")
	}
}

func TestFailAndRestoreLink(t *testing.T) {
	inj, _ := New(Config{Seed: 1})
	if inj.LinkDown(1, 2, 0) {
		t.Fatal("fresh injector has a down link")
	}
	inj.FailLink(2, 1)
	if !inj.LinkDown(1, 2, 0) || !inj.LinkDown(2, 1, 99) {
		t.Fatal("failed link not down")
	}
	blocked := inj.Blocked(0)
	if !blocked(1, 2) || blocked(3, 4) {
		t.Fatal("Blocked predicate wrong")
	}
	// A down link on the path deterministically drops the attempt.
	if !inj.DropAttempt(0, 9, 0, []topology.NodeID{0, 1, 2, 9}) {
		t.Fatal("attempt across failed link not dropped")
	}
	inj.RestoreLink(1, 2)
	if inj.LinkDown(1, 2, 0) {
		t.Fatal("restored link still down")
	}
}

func TestLinkOverrideFailsDeterministically(t *testing.T) {
	inj, _ := New(Config{Seed: 1, Links: map[topology.EdgeKey]float64{
		topology.MakeEdgeKey(3, 1): 1.0,
	}})
	if !inj.LinkDown(1, 3, 0) {
		t.Fatal("probability-1 link not deterministically down")
	}
	if inj.LinkDown(1, 2, 0) {
		t.Fatal("unrelated link down")
	}
}

func TestDelay(t *testing.T) {
	inj, _ := New(Config{Seed: 5, DelayProb: 0.5, MaxDelay: time.Millisecond})
	delayed, zero := 0, 0
	for seq := int64(0); seq < 1000; seq++ {
		d := inj.Delay(seq, 3)
		if d < 0 || d >= time.Millisecond {
			t.Fatalf("delay %v out of [0, 1ms)", d)
		}
		if d == 0 {
			zero++
		} else {
			delayed++
		}
	}
	if delayed == 0 || zero == 0 {
		t.Errorf("delay distribution degenerate: %d delayed, %d zero", delayed, zero)
	}
	off, _ := New(Config{Seed: 5})
	if off.Delay(1, 3) != 0 {
		t.Error("delay injected with DelayProb 0")
	}
}

func TestJitterRange(t *testing.T) {
	inj, _ := New(Config{Seed: 9})
	for seq := int64(0); seq < 100; seq++ {
		j := inj.Jitter(seq, 1, 2)
		if j < 0 || j >= 1 {
			t.Fatalf("jitter %v out of [0,1)", j)
		}
	}
}
