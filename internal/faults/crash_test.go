package faults

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/topology"
)

// TestCrashInjectorFiresOnce pins the one-shot contract: the scheduled
// point fires at exactly the AtAppend-th append, and from then on the
// injector is dead — every later append reports CrashBeforeAppend (a dead
// process writes nothing) and every checkpoint install dies too.
func TestCrashInjectorFiresOnce(t *testing.T) {
	ci := NewCrashInjector(CrashPlan{AtAppend: 3, Point: CrashTornAppend})
	for i := 1; i <= 2; i++ {
		if p := ci.OnAppend(); p != 0 {
			t.Fatalf("append %d: crash point %v before schedule", i, p)
		}
	}
	if ci.Dead() {
		t.Fatal("dead before the scheduled append")
	}
	if p := ci.OnAppend(); p != CrashTornAppend {
		t.Fatalf("append 3: got %v, want %v", p, CrashTornAppend)
	}
	if !ci.Dead() {
		t.Fatal("not dead after the scheduled point fired")
	}
	for i := 4; i <= 6; i++ {
		if p := ci.OnAppend(); p != CrashBeforeAppend {
			t.Fatalf("append %d after death: got %v, want %v", i, p, CrashBeforeAppend)
		}
	}
	if !ci.OnCheckpoint() {
		t.Fatal("checkpoint survived on a dead injector")
	}
}

// TestCrashInjectorConcurrentFiresExactlyOnce drives OnAppend from many
// goroutines (the store's appenders race in production) and checks the
// scheduled point is observed by exactly one of them.
func TestCrashInjectorConcurrentFiresExactlyOnce(t *testing.T) {
	ci := NewCrashInjector(CrashPlan{AtAppend: 50, Point: CrashAfterAppend})
	var wg sync.WaitGroup
	var fired atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if ci.OnAppend() == CrashAfterAppend {
					fired.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := fired.Load(); n != 1 {
		t.Fatalf("scheduled point fired %d times in 200 appends, want exactly 1", n)
	}
	if !ci.Dead() {
		t.Fatal("injector alive after firing")
	}
}

// TestCrashInjectorNilAndZeroPlan: a nil injector and a zero plan are both
// inert — they never fire and never die.
func TestCrashInjectorNilAndZeroPlan(t *testing.T) {
	var nilCI *CrashInjector
	if p := nilCI.OnAppend(); p != 0 {
		t.Fatalf("nil injector returned %v", p)
	}
	if nilCI.OnCheckpoint() || nilCI.Dead() {
		t.Fatal("nil injector not inert")
	}
	zero := NewCrashInjector(CrashPlan{})
	for i := 0; i < 100; i++ {
		if p := zero.OnAppend(); p != 0 {
			t.Fatalf("zero plan fired %v at append %d", p, i+1)
		}
	}
	if zero.OnCheckpoint() || zero.Dead() {
		t.Fatal("zero plan not inert")
	}
}

// TestCrashInjectorMidCheckpointIgnoresAppends: a mid-checkpoint plan must
// not fire on the append path regardless of AtAppend, and must fire at the
// first checkpoint install.
func TestCrashInjectorMidCheckpointIgnoresAppends(t *testing.T) {
	ci := NewCrashInjector(CrashPlan{AtAppend: 2, Point: CrashMidCheckpoint})
	for i := 0; i < 10; i++ {
		if p := ci.OnAppend(); p != 0 {
			t.Fatalf("append %d fired %v for a mid-checkpoint plan", i+1, p)
		}
	}
	if !ci.OnCheckpoint() {
		t.Fatal("mid-checkpoint plan did not fire at checkpoint install")
	}
	if p := ci.OnAppend(); p != CrashBeforeAppend {
		t.Fatalf("append after checkpoint death: got %v, want %v", p, CrashBeforeAppend)
	}
}

// TestCrashAtSequenceZero: a node scheduled down from the very first event
// (DownAt: 0) is down at seq 0, and UpAt ≤ 0 means it never recovers.
func TestCrashAtSequenceZero(t *testing.T) {
	inj, err := New(Config{Seed: 7, Crashes: []Crash{
		{Node: 4, DownAt: 0, UpAt: 3}, // down for seqs 0,1,2
		{Node: 9, DownAt: 0},          // down forever
	}})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(0); seq < 3; seq++ {
		if !inj.NodeDown(4, seq) {
			t.Errorf("node 4 up at seq %d inside [0,3)", seq)
		}
	}
	if inj.NodeDown(4, 3) {
		t.Error("node 4 still down at seq 3 == UpAt")
	}
	for _, seq := range []int64{0, 1, 1000, 1 << 40} {
		if !inj.NodeDown(9, seq) {
			t.Errorf("permanently crashed node 9 up at seq %d", seq)
		}
	}
}

// TestOverlappingCrashAndOutage exercises staggered windows: node 7 is
// crashed for [5,15) while its link to node 2 is out for [10,20). Through
// the overlap [10,15) both faults apply; each recovers on its own schedule
// and neither window leaks into the other's predicate.
func TestOverlappingCrashAndOutage(t *testing.T) {
	inj, err := New(Config{
		Seed:    11,
		Crashes: []Crash{{Node: 7, DownAt: 5, UpAt: 15}},
		Outages: []LinkOutage{{U: 7, V: 2, DownAt: 10, UpAt: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	type phase struct {
		seq              int64
		nodeDown, linkDn bool
	}
	phases := []phase{
		{0, false, false},  // before either window
		{4, false, false},  // last seq before the crash
		{5, true, false},   // crash only
		{9, true, false},   // still crash only
		{10, true, true},   // overlap begins
		{14, true, true},   // last seq of the overlap
		{15, false, true},  // node back, link still out
		{19, false, true},  // last seq of the outage
		{20, false, false}, // fully recovered
	}
	for _, p := range phases {
		if got := inj.NodeDown(7, p.seq); got != p.nodeDown {
			t.Errorf("seq %d: NodeDown(7) = %v, want %v", p.seq, got, p.nodeDown)
		}
		if got := inj.LinkDown(7, 2, p.seq); got != p.linkDn {
			t.Errorf("seq %d: LinkDown(7,2) = %v, want %v", p.seq, got, p.linkDn)
		}
		// The reverse edge orientation must agree (links are undirected).
		if got := inj.LinkDown(2, 7, p.seq); got != p.linkDn {
			t.Errorf("seq %d: LinkDown(2,7) = %v, want %v", p.seq, got, p.linkDn)
		}
		// An unrelated node and link never see either window.
		if inj.NodeDown(3, p.seq) || inj.LinkDown(3, 4, p.seq) {
			t.Errorf("seq %d: unrelated node/link affected", p.seq)
		}
	}
	// Blocked (the routing predicate) must track LinkDown through the
	// overlap and the staggered recovery.
	for _, p := range phases {
		if got := inj.Blocked(p.seq)(topology.NodeID(7), topology.NodeID(2)); got != p.linkDn {
			t.Errorf("seq %d: Blocked = %v, want %v", p.seq, got, p.linkDn)
		}
	}
}
