package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		server = c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestConnInjectorValidation(t *testing.T) {
	for _, cfg := range []ConnConfig{
		{WriteStallProb: -0.1},
		{ReadStallProb: 1.5},
		{ChunkBytes: -1},
		{MaxStall: -time.Second},
	} {
		if _, err := NewConnInjector(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewConnInjector(ConnConfig{Seed: 1}); err != nil {
		t.Fatalf("benign config rejected: %v", err)
	}
}

func TestConnPartialWritesReassemble(t *testing.T) {
	ci, err := NewConnInjector(ConnConfig{Seed: 7, ChunkBytes: 3})
	if err != nil {
		t.Fatal(err)
	}
	client, server := tcpPair(t)
	wrapped := ci.Wrap(client)

	msg := bytes.Repeat([]byte("chunked-write!"), 100)
	go func() {
		wrapped.Write(msg)
		wrapped.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("reassembled %d bytes, want %d; content mismatch", len(got), len(msg))
	}
}

func TestConnCutAfterBytes(t *testing.T) {
	// First connection is cut after 64 bytes of traffic; the second never.
	ci, err := NewConnInjector(ConnConfig{Seed: 1, CutAfterBytes: []int64{64}})
	if err != nil {
		t.Fatal(err)
	}
	client, server := tcpPair(t)
	wrapped := ci.Wrap(client)

	buf := make([]byte, 32)
	if _, err := wrapped.Write(buf); err != nil {
		t.Fatalf("pre-cut write: %v", err)
	}
	if ConnWasCut(wrapped) {
		t.Fatal("cut before threshold")
	}
	if _, err := wrapped.Write(buf); err != nil {
		t.Fatalf("write reaching threshold: %v", err)
	}
	// Traffic is now ≥ 64: the next operation must fail.
	if _, err := wrapped.Write(buf); err == nil {
		t.Fatal("post-cut write succeeded")
	}
	if !ConnWasCut(wrapped) {
		t.Fatal("cut flag not set")
	}
	// The peer sees the connection die mid-stream.
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	drain := make([]byte, 1024)
	for {
		if _, err := server.Read(drain); err != nil {
			if errors.Is(err, io.EOF) {
				break // close raced ahead of RST; either is a mid-stream death
			}
			break
		}
	}

	// Second wrapped conn (beyond the schedule) is never cut.
	c2, s2 := tcpPair(t)
	w2 := ci.Wrap(c2)
	defer s2.Close()
	big := make([]byte, 4096)
	if _, err := w2.Write(big); err != nil {
		t.Fatalf("unscheduled conn write: %v", err)
	}
	go io.Copy(io.Discard, s2)
	if _, err := w2.Write(big); err != nil {
		t.Fatalf("unscheduled conn second write: %v", err)
	}
	if ConnWasCut(w2) {
		t.Fatal("unscheduled conn cut")
	}
	if ci.Wraps() != 2 {
		t.Fatalf("Wraps = %d", ci.Wraps())
	}
}

func TestConnStallsAreBoundedAndDeterministic(t *testing.T) {
	cfg := ConnConfig{Seed: 3, ReadStallProb: 1, WriteStallProb: 1, MaxStall: time.Millisecond}
	ci, err := NewConnInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, server := tcpPair(t)
	wrapped := ci.Wrap(client)
	go func() {
		wrapped.Write([]byte("hello"))
	}()
	buf := make([]byte, 8)
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := server.Read(buf)
	if err != nil || n == 0 {
		t.Fatalf("stalled write never arrived: n=%d err=%v", n, err)
	}

	// Determinism: the same (seed, conn index, op) rolls identical values.
	a := &faultConn{cfg: cfg, idx: 0}
	b := &faultConn{cfg: cfg, idx: 0}
	for op := int64(1); op < 100; op++ {
		if a.roll(1, op) != b.roll(1, op) {
			t.Fatalf("roll diverged at op %d", op)
		}
	}
	c := &faultConn{cfg: cfg, idx: 1}
	same := 0
	for op := int64(1); op < 100; op++ {
		if a.roll(1, op) == c.roll(1, op) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different conn indexes share %d/99 rolls", same)
	}
}
