package faults

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ConnConfig parameterises connection-level fault injection for the wire
// transport. Like the delivery-level Injector, every decision is a pure
// hash of (seed, connection index, operation index), so a fault schedule
// replays identically regardless of goroutine interleaving — a (seed,
// config) pair fully identifies which byte of which connection dies.
type ConnConfig struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// ChunkBytes caps the bytes handed to the underlying conn per Write
	// call, splitting large frames across several TCP segments so peers
	// must reassemble partial writes (0 = unchanged).
	ChunkBytes int
	// WriteStallProb stalls a write chunk for up to MaxStall.
	WriteStallProb float64
	// ReadStallProb stalls a read for up to MaxStall.
	ReadStallProb float64
	// MaxStall caps injected stalls (default 2ms when a stall probability
	// is set).
	MaxStall time.Duration
	// CutAfterBytes force-closes the k-th wrapped connection after its
	// total traffic (bytes read + written) first reaches CutAfterBytes[k]
	// — from the peer's side this is a connection reset mid-stream, and
	// from the wrapped side the next operation fails. Connections past the
	// end of the slice are never cut; a value ≤ 0 never cuts.
	CutAfterBytes []int64
}

func (c ConnConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"WriteStallProb", c.WriteStallProb}, {"ReadStallProb", c.ReadStallProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s = %v, need [0, 1]", p.name, p.v)
		}
	}
	if c.ChunkBytes < 0 {
		return fmt.Errorf("faults: ChunkBytes = %d, need ≥ 0", c.ChunkBytes)
	}
	if c.MaxStall < 0 {
		return fmt.Errorf("faults: MaxStall = %v, need ≥ 0", c.MaxStall)
	}
	return nil
}

// ConnInjector wraps net.Conns with deterministic connection-level faults:
// partial writes, stalled reads/writes, and scheduled mid-stream resets.
// Safe for concurrent use; each Wrap call consumes the next connection
// index in the cut schedule.
type ConnInjector struct {
	cfg  ConnConfig
	next atomic.Int64
}

// NewConnInjector validates the config and builds an injector.
func NewConnInjector(cfg ConnConfig) (*ConnInjector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxStall == 0 && (cfg.WriteStallProb > 0 || cfg.ReadStallProb > 0) {
		cfg.MaxStall = 2 * time.Millisecond
	}
	return &ConnInjector{cfg: cfg}, nil
}

// Wraps reports how many connections have been wrapped so far.
func (ci *ConnInjector) Wraps() int64 { return ci.next.Load() }

// Wrap returns c with the injector's fault schedule applied, consuming
// the next connection index. The returned conn is safe for one concurrent
// reader plus one concurrent writer (the transport's usage).
func (ci *ConnInjector) Wrap(c net.Conn) net.Conn {
	idx := ci.next.Add(1) - 1
	fc := &faultConn{Conn: c, cfg: ci.cfg, idx: idx, cutAt: -1}
	if int(idx) < len(ci.cfg.CutAfterBytes) && ci.cfg.CutAfterBytes[idx] > 0 {
		fc.cutAt = ci.cfg.CutAfterBytes[idx]
	}
	return fc
}

// faultConn applies one connection's fault schedule.
type faultConn struct {
	net.Conn
	cfg   ConnConfig
	idx   int64
	cutAt int64 // cut when traffic ≥ cutAt; -1 = never

	traffic atomic.Int64 // bytes read + written
	readOp  atomic.Int64 // read operation counter (hash key)
	writeOp atomic.Int64 // write operation counter (hash key)
	cut     atomic.Bool

	cutOnce sync.Once
}

// roll returns a deterministic uniform [0, 1) for an operation.
func (f *faultConn) roll(kind, op int64) float64 {
	h := splitmix64(uint64(f.cfg.Seed)<<1 ^ uint64(f.idx)*0x9e3779b97f4a7c15 ^ uint64(kind)<<32 ^ uint64(op))
	return float64(h>>11) / (1 << 53)
}

// maybeCut closes the connection once total traffic passes the scheduled
// threshold. SetLinger(0) turns the close into a genuine TCP reset when
// the underlying conn supports it, so the peer observes ECONNRESET
// mid-frame rather than a clean FIN.
func (f *faultConn) maybeCut() bool {
	if f.cutAt < 0 || f.traffic.Load() < f.cutAt {
		return false
	}
	f.cutOnce.Do(func() {
		f.cut.Store(true)
		if tc, ok := f.Conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		f.Conn.Close()
	})
	return true
}

func (f *faultConn) stall(prob float64, kind, op int64) {
	if prob <= 0 || f.roll(kind, op) >= prob {
		return
	}
	frac := f.roll(kind+2, op)
	time.Sleep(time.Duration(frac * float64(f.cfg.MaxStall)))
}

func (f *faultConn) Read(p []byte) (int, error) {
	if f.maybeCut() {
		return 0, net.ErrClosed
	}
	op := f.readOp.Add(1)
	f.stall(f.cfg.ReadStallProb, 1, op)
	n, err := f.Conn.Read(p)
	f.traffic.Add(int64(n))
	return n, err
}

func (f *faultConn) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		if f.maybeCut() {
			return written, net.ErrClosed
		}
		chunk := p
		if f.cfg.ChunkBytes > 0 && len(chunk) > f.cfg.ChunkBytes {
			chunk = chunk[:f.cfg.ChunkBytes]
		}
		op := f.writeOp.Add(1)
		f.stall(f.cfg.WriteStallProb, 3, op)
		n, err := f.Conn.Write(chunk)
		written += n
		f.traffic.Add(int64(n))
		if err != nil {
			return written, err
		}
		p = p[n:]
	}
	return written, nil
}

// WasCut reports whether this connection's scheduled reset has fired —
// exposed for tests via the Cut helper below.
func (f *faultConn) WasCut() bool { return f.cut.Load() }

// ConnWasCut reports whether a conn returned by Wrap has had its
// scheduled mid-stream reset fire. Returns false for unwrapped conns.
func ConnWasCut(c net.Conn) bool {
	if fc, ok := c.(*faultConn); ok {
		return fc.WasCut()
	}
	return false
}
