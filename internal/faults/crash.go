package faults

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrCrashed is returned by durable-store operations after a scheduled
// crash point fires: the simulated process is dead, the operation did not
// take effect (except as documented per crash point), and every subsequent
// operation fails until the store is re-opened by a new incarnation.
var ErrCrashed = errors.New("faults: simulated process crash")

// CrashPoint identifies where, relative to a durable-store operation, a
// scheduled process crash fires. The points mirror the classic
// write-ahead-log failure windows: before a record reaches the disk, after
// it is durable but before the caller can act on it, mid-write (a torn
// record that recovery must CRC-detect and truncate), and mid-checkpoint
// (the checkpoint temp file exists but was never atomically installed).
type CrashPoint int

const (
	// CrashBeforeAppend kills the process before the journal record is
	// written: nothing reaches the disk and the caller sees ErrCrashed.
	CrashBeforeAppend CrashPoint = iota + 1
	// CrashAfterAppend kills the process after the record is durably
	// written and synced, but before the append returns: the record
	// survives, the caller sees ErrCrashed, and recovery replays the
	// record's effect exactly once.
	CrashAfterAppend
	// CrashTornAppend kills the process mid-write: a partial frame reaches
	// the disk. Recovery must detect the torn tail via CRC/length checks,
	// truncate it, and count the truncation.
	CrashTornAppend
	// CrashMidCheckpoint kills the process after the checkpoint temp file
	// is written but before the atomic rename installs it: recovery must
	// ignore the temp file and fall back to the previous checkpoint plus
	// the full journal.
	CrashMidCheckpoint
)

func (p CrashPoint) String() string {
	switch p {
	case CrashBeforeAppend:
		return "before-append"
	case CrashAfterAppend:
		return "after-append"
	case CrashTornAppend:
		return "torn-append"
	case CrashMidCheckpoint:
		return "mid-checkpoint"
	default:
		return fmt.Sprintf("crash-point(%d)", int(p))
	}
}

// CrashPlan schedules one deterministic crash against a durable store.
// The zero plan never crashes.
type CrashPlan struct {
	// AtAppend fires Point at the AtAppend-th journal append (1-based,
	// counted across every record kind). Ignored when Point is
	// CrashMidCheckpoint, which instead fires at the next checkpoint.
	AtAppend int64
	// Point selects where the crash fires.
	Point CrashPoint
}

// CrashInjector arms a CrashPlan for a durable store. It is consulted once
// per journal append and once per checkpoint install; when the scheduled
// point is reached the injector flips to dead and every subsequent
// operation reports a crash, so one injector simulates exactly one process
// death. Safe for concurrent use.
type CrashInjector struct {
	plan    CrashPlan
	appends atomic.Int64
	dead    atomic.Bool
}

// NewCrashInjector arms a plan. A nil injector (or a zero plan) never
// crashes.
func NewCrashInjector(plan CrashPlan) *CrashInjector {
	return &CrashInjector{plan: plan}
}

// OnAppend is consulted by the store once per journal append, before any
// bytes are written. It returns the crash point to simulate for this
// append, or 0 to proceed normally. Once the injector is dead every append
// reports CrashBeforeAppend (the process no longer writes anything).
func (ci *CrashInjector) OnAppend() CrashPoint {
	if ci == nil {
		return 0
	}
	if ci.dead.Load() {
		return CrashBeforeAppend
	}
	if ci.plan.AtAppend <= 0 || ci.plan.Point == 0 || ci.plan.Point == CrashMidCheckpoint {
		return 0
	}
	if ci.appends.Add(1) == ci.plan.AtAppend {
		ci.dead.Store(true)
		return ci.plan.Point
	}
	return 0
}

// OnCheckpoint is consulted between writing the checkpoint temp file and
// renaming it into place; true means the process dies there, leaving the
// temp file stranded and the previous checkpoint current.
func (ci *CrashInjector) OnCheckpoint() bool {
	if ci == nil {
		return false
	}
	if ci.dead.Load() {
		return true
	}
	if ci.plan.Point == CrashMidCheckpoint {
		ci.dead.Store(true)
		return true
	}
	return false
}

// Dead reports whether the simulated process has crashed.
func (ci *CrashInjector) Dead() bool { return ci != nil && ci.dead.Load() }
