package broker

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/noloss"
	"repro/internal/topology"
	"repro/internal/workload"
)

func testEngine(t *testing.T, cfg core.Config, seed int64) (*core.Engine, *workload.World) {
	t.Helper()
	topo := topology.Eval600
	topo.Seed = seed
	g, err := topology.Generate(topo)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: 300, PubModes: 1, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewFromWorld(w, w.Events(800, seed+2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, w
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil engine accepted")
	}
	e, _ := testEngine(t, core.Config{Groups: 10, CellBudget: 300}, 200)
	if _, err := New(e, WithWorkers(0)); err == nil {
		t.Error("zero workers accepted")
	}
}

// TestCompleteness: every interested subscriber receives every event they
// match, exactly once, regardless of delivery method.
func TestCompleteness(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 25, CellBudget: 500}, 201)
	events := w.Events(200, 210)

	type key struct {
		node  topology.NodeID
		event int
	}
	var mu sync.Mutex
	received := map[key]int{}
	// Tag events by index via pointer identity of the point slice.
	index := map[*float64]int{}
	for i := range events {
		index[&events[i].Point[0]] = i
	}

	b, err := New(e, WithWorkers(3), WithObserver(func(n topology.NodeID, d Delivery) {
		if !d.Interested {
			return
		}
		mu.Lock()
		received[key{n, index[&d.Event.Point[0]]}]++
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		b.Publish(events[i])
	}
	b.Close()

	// Oracle: brute-force interest.
	for i, ev := range events {
		for _, n := range w.SubscriberNodes {
			interested := false
			for _, s := range w.Subs {
				if s.Owner == n && s.Rect.Contains(ev.Point) {
					interested = true
					break
				}
			}
			got := received[key{n, i}]
			if interested && got != 1 {
				t.Fatalf("event %d node %d: %d deliveries, want 1", i, n, got)
			}
			if !interested && got != 0 {
				t.Fatalf("event %d node %d: %d interested-deliveries, want 0", i, n, got)
			}
		}
	}

	st := b.Stats()
	if st.Published != int64(len(events)) {
		t.Errorf("Published = %d", st.Published)
	}
	if st.Multicast+st.Unicast != st.Published {
		t.Errorf("method split %d+%d != %d", st.Multicast, st.Unicast, st.Published)
	}
	if st.Multicast == 0 {
		t.Error("no multicast deliveries at all")
	}
	if st.Deliveries < st.Wasted {
		t.Error("accounting inconsistent")
	}
}

// TestNoLossZeroWaste: a No-Loss engine never delivers to an uninterested
// node.
func TestNoLossZeroWaste(t *testing.T) {
	e, w := testEngine(t, core.Config{
		Groups: 40,
		NoLoss: &noloss.Config{PoolSize: 500, Iterations: 3, Seeds: 24},
	}, 202)
	b, err := New(e, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range w.Events(300, 211) {
		b.Publish(ev)
	}
	b.Close()
	st := b.Stats()
	if st.Wasted != 0 {
		t.Fatalf("no-loss broker wasted %d deliveries", st.Wasted)
	}
	if st.Deliveries == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestGridWasteBounded: grid groups may waste, but waste must stay below
// total deliveries and zero-waste is impossible to guarantee — sanity
// bounds only.
func TestGridWasteBounded(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 10, CellBudget: 300}, 203)
	b, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range w.Events(200, 212) {
		b.Publish(ev)
	}
	b.Close()
	st := b.Stats()
	if st.Wasted >= st.Deliveries {
		t.Fatalf("waste %d >= deliveries %d", st.Wasted, st.Deliveries)
	}
	// PerNode totals add up.
	var sum int64
	for _, v := range st.PerNode {
		sum += v
	}
	if sum != st.Deliveries {
		t.Fatalf("per-node sum %d != deliveries %d", sum, st.Deliveries)
	}
}

// TestPublishAfterClose: the broker.go:140 regression — Publish after
// Close must return ErrClosed instead of panicking on a closed channel.
func TestPublishAfterClose(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 5, CellBudget: 200}, 207)
	b, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	evs := w.Events(5, 215)
	if err := b.Publish(evs[0]); err != nil {
		t.Fatalf("publish before close: %v", err)
	}
	b.Close()
	if err := b.Publish(evs[1]); err != ErrClosed {
		t.Fatalf("publish after close: err = %v, want ErrClosed", err)
	}
}

// TestConcurrentPublishClose races many publishers against Close: no
// publisher may panic, and every successfully published event must be
// accounted.
func TestConcurrentPublishClose(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 10, CellBudget: 300}, 208)
	b, err := New(e, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	events := w.Events(400, 216)
	var accepted int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			<-start
			for i := part; i < len(events); i += 8 {
				if err := b.Publish(events[i]); err == nil {
					atomic.AddInt64(&accepted, 1)
				} else if err != ErrClosed {
					t.Errorf("unexpected publish error: %v", err)
				}
			}
		}(p)
	}
	close(start)
	// Close while publishers are mid-flight.
	b.Close()
	wg.Wait()
	if got := b.Stats().Published; got != atomic.LoadInt64(&accepted) {
		t.Fatalf("Published = %d, accepted = %d", got, accepted)
	}
}

// TestStatsSnapshotWhileRunning: Stats must be callable concurrently with
// active delivery (atomic counters, sharded per-node counts).
func TestStatsSnapshotWhileRunning(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 10, CellBudget: 300}, 209)
	b, err := New(e, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	events := w.Events(300, 217)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			st := b.Stats()
			if st.Deliveries < 0 || st.Wasted > st.Deliveries {
				t.Errorf("inconsistent mid-run snapshot: %+v", st)
				return
			}
		}
	}()
	for i := range events {
		if err := b.Publish(events[i]); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	b.Close()
	if got := b.Stats().Published; got != int64(len(events)) {
		t.Fatalf("Published = %d", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	e, _ := testEngine(t, core.Config{Groups: 5, CellBudget: 200}, 204)
	b, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // must not panic or deadlock
}

func TestConcurrentPublishers(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 20, CellBudget: 400}, 205)
	b, err := New(e, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	events := w.Events(400, 213)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			for i := part; i < len(events); i += 4 {
				b.Publish(events[i])
			}
		}(p)
	}
	wg.Wait()
	b.Close()
	if got := b.Stats().Published; got != int64(len(events)) {
		t.Fatalf("Published = %d, want %d", got, len(events))
	}
}

// TestDynamicMethodBroadcast: a dynamic-method engine may flood; the
// broker must then deliver one copy to every subscriber node, and the
// method split must account broadcasts separately.
func TestDynamicMethodBroadcast(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 5, CellBudget: 100, DynamicMethod: true}, 206)
	b, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	events := w.Events(300, 214)
	for _, ev := range events {
		b.Publish(ev)
	}
	b.Close()
	st := b.Stats()
	if st.Multicast+st.Unicast+st.Broadcast != st.Published {
		t.Fatalf("method split %d+%d+%d != %d", st.Multicast, st.Unicast, st.Broadcast, st.Published)
	}
	if st.Broadcast > 0 {
		// At least one flood happened: some node must have received ≥ the
		// broadcast count (every subscriber gets every flood).
		for _, n := range w.SubscriberNodes {
			if st.PerNode[n] < st.Broadcast {
				t.Fatalf("node %d received %d < %d broadcasts", n, st.PerNode[n], st.Broadcast)
			}
			break
		}
	}
}
