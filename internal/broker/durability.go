package broker

// Durable broker state. A broker created with Open persists everything it
// cannot rebuild from its engine's base subscriptions:
//
//   - churn records (Subscribe/Unsubscribe) appended and group-committed
//     by the writer goroutine *before* the snapshot swap, so journal
//     replay order equals snapshot swap order;
//   - publish records appended (and fsync-batched) before Publish returns,
//     so an acknowledged publish survives any crash;
//   - delivery-ack records appended before a consumed copy is counted, so
//     recovery knows which copies already arrived;
//   - periodic checkpoints — journal rotation, in-flight publishes carried
//     into the fresh epoch, then engine churn state + per-consumer dedup
//     windows + preserved counters installed atomically — after which the
//     previous epochs' journals are deleted.
//
// Recovery (Open over a used directory) rebuilds the engine from base +
// checkpoint + journal tail, restores the dedup windows, and redelivers
// every journal-tail publish under its original sequence number: copies
// that already arrived are suppressed by the restored windows, copies that
// never arrived land now — exactly once overall for any publish whose
// Publish call returned nil before the crash.
//
// Durable identity: the engine's slot numbers compact on Refresh, so each
// subscription also gets a durable id — base subscriptions own ids
// 0..baseCount-1, churned ones count up from there, ids never reused. The
// writer goroutine keeps the slot↔id map and remaps it across refreshes
// via Engine.LiveSlots.

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/topology"
	"repro/internal/workload"
)

// preservedCounters are the broker counters a durable restart carries
// forward (at checkpoint granularity): the cumulative work done across
// incarnations. Everything else — reliability, overload, snapshot and
// per-node counters — describes one incarnation's pathology and restarts
// at zero; see Broker.Stats.
var preservedCounters = []string{
	"published", "multicast_events", "unicast_events", "broadcast_events",
	"deliveries", "wasted", "subscribes", "unsubscribes",
}

// lockedWindow pairs a consumer's dedup window with a mutex so checkpoints
// can capture it while the consumer keeps admitting. Only durable brokers
// pay for the lock; fault-injection-only consumers keep a private window.
type lockedWindow struct {
	mu sync.Mutex
	w  *seqWindow
}

// admitDurable performs duplicate-check → ack append → admission as one
// atomic step with respect to checkpoint capture. The ordering is
// load-bearing for exactly-once across a crash: if the seq entered the
// window before its ack record existed, a checkpoint could capture the
// window mid-gap and persist "seen" for a copy that is then dropped when
// the append fails — the next incarnation would suppress the redelivery
// and the publish would be lost. Holding the lock across the append also
// guarantees that an ack landing in the pre-rotation epoch (whose journal
// the checkpoint deletes) is always visible to the subsequent capture.
// Returns fresh=false for duplicates (nothing appended) and a non-nil err
// when the store refused the ack (caller drops the copy unobserved).
func (lw *lockedWindow) admitDurable(seq int64, ack func() error) (fresh bool, err error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if !lw.w.fresh(seq) {
		return false, nil
	}
	if ack != nil {
		if err := ack(); err != nil {
			return false, err
		}
	}
	lw.w.admit(seq)
	return true, nil
}

func (lw *lockedWindow) capture() (int64, []int64) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.snapshot()
}

// recoveredInit carries recovery products from Open into New (windows and
// counters can only be materialised once the reliability defaults and the
// telemetry registry are resolved).
type recoveredInit struct {
	windows  []durable.WindowState
	acks     []durable.AckRecord
	counters map[string]int64
	nextSeq  int64
}

// durState is the broker's durability bookkeeping. The identity maps are
// owned by the writer goroutine (churn, refresh remaps and checkpoints all
// run there); inflight and the windows' contents are shared with
// publishers and consumers.
type durState struct {
	store *durable.Store

	// Writer-owned durable-identity bookkeeping.
	nextID      int64
	baseCount   int64
	slotToID    map[int]int64
	subs        map[int64]durable.SubRecord // live churned subs (id ≥ baseCount)
	removedBase map[int64]bool

	// inflight maps seq → workload.Event for publishes not yet consumed by
	// every addressed copy; checkpoints re-append these into the fresh
	// journal epoch so truncation never drops an undelivered publish.
	inflight sync.Map

	// windows holds each consumer's locked dedup window (written at
	// consumer spawn — New or the writer's ensureRoutes — read by
	// checkpoints on the same goroutine or after quiescence in Close).
	windows map[topology.NodeID]*lockedWindow
	// recovered seeds windows for consumers not yet spawned.
	recovered map[topology.NodeID]*seqWindow

	// lost records copies dropped unobserved because a simulated crash
	// interrupted their ack append — the output-commit window where the
	// next incarnation cannot tell whether the copy was handed over. Only
	// chaos harnesses read it (a real crash takes the process with it).
	lostMu sync.Mutex
	lost   []durable.AckRecord

	init *recoveredInit
}

// noteLost records one copy dropped unobserved by a simulated crash.
func (d *durState) noteLost(n topology.NodeID, seq int64) {
	d.lostMu.Lock()
	d.lost = append(d.lost, durable.AckRecord{Node: n, Seq: seq})
	d.lostMu.Unlock()
}

// CrashDroppedCopies lists the (node, seq) copies this incarnation dropped
// unobserved because a simulated crash interrupted the ack append. For
// each listed pair the delivery count across incarnations is 0 or 1 —
// whether the suppressing ack reached the journal before the crash is
// exactly what the crash made unknowable — so chaos oracles assert "never
// 2" there and "exactly 1" everywhere else. Empty without fault injection.
func (b *Broker) CrashDroppedCopies() []durable.AckRecord {
	if b.dur == nil {
		return nil
	}
	b.dur.lostMu.Lock()
	defer b.dur.lostMu.Unlock()
	return append([]durable.AckRecord(nil), b.dur.lost...)
}

// WithDurableOptions tunes the durable store Open attaches (checkpoint
// cadence, crash injection). Ignored by New: durability only comes from
// Open.
func WithDurableOptions(o durable.Options) Option {
	return func(b *Broker) { b.durOpts = &o }
}

// withDurState installs the durability state Open assembled.
func withDurState(d *durState) Option {
	return func(b *Broker) { b.dur = d }
}

// Open creates or recovers a durable broker over dir. The engine must be
// pristine — its current subscriptions define the base population the
// journal is written against, and Open refuses a directory written against
// a different base — and is owned by the broker afterwards, exactly as
// with New. opts are the usual New options; add WithDurableOptions to tune
// checkpoint cadence or inject crash points.
//
// Over a fresh directory, Open is New plus journaling. Over a used one it
// rebuilds subscriptions from checkpoint + journal tail (slot ids are
// reassigned — durable identity lives in the journal, not in slots),
// restores dedup windows and preserved counters, and redelivers the
// journal tail's publishes before returning; Recovery reports what it did.
func Open(dir string, engine *core.Engine, opts ...Option) (*Broker, error) {
	if engine == nil {
		return nil, fmt.Errorf("broker: nil engine")
	}
	// Probe the options for the durable tuning (options only set fields).
	probe := &Broker{}
	for _, o := range opts {
		o(probe)
	}
	var dopts durable.Options
	if probe.durOpts != nil {
		dopts = *probe.durOpts
	}

	base := durable.BaseInfo{
		Hash:  durable.HashBase(engine.World().Subs),
		Count: int64(len(engine.World().Subs)),
	}
	store, st, err := durable.Open(dir, base, dopts)
	if err != nil {
		return nil, err
	}

	d := &durState{
		store:       store,
		baseCount:   base.Count,
		nextID:      base.Count,
		slotToID:    make(map[int]int64, base.Count),
		subs:        map[int64]durable.SubRecord{},
		removedBase: map[int64]bool{},
	}
	for _, slot := range engine.LiveSlots() {
		d.slotToID[slot] = int64(slot) // pristine engine: slot i holds base id i
	}

	var outstanding []durable.PublishRecord
	if st != nil {
		d.nextID = st.NextID
		// Replay churn into the engine: base removals first (their slots
		// are their ids while the engine is uncompacted), then the live
		// churned subscriptions in id order — AddSubscription assigns slots
		// deterministically by insertion order.
		for _, id := range st.RemovedBase {
			if err := engine.RemoveSubscription(int(id)); err != nil {
				store.Close()
				return nil, fmt.Errorf("broker: recovery removing base sub %d: %w", id, err)
			}
			delete(d.slotToID, int(id))
			d.removedBase[id] = true
		}
		for _, rec := range st.Subs {
			slot, err := engine.AddSubscription(workload.Subscription{Owner: rec.Owner, Rect: rec.Rect})
			if err != nil {
				store.Close()
				return nil, fmt.Errorf("broker: recovery adding sub %d: %w", rec.ID, err)
			}
			d.slotToID[slot] = rec.ID
			d.subs[rec.ID] = rec
		}
		d.init = &recoveredInit{
			windows:  st.Windows,
			acks:     st.Acks,
			counters: st.Counters,
			nextSeq:  st.NextSeq,
		}
		outstanding = st.Outstanding
	}

	b, err := New(engine, append(opts[:len(opts):len(opts)], withDurState(d))...)
	if err != nil {
		store.Close()
		return nil, err
	}

	// Redeliver the journal tail under the original sequence numbers: the
	// restored dedup windows suppress the copies that already arrived, so
	// every pre-crash-acknowledged publish lands exactly once overall.
	if len(outstanding) > 0 {
		snap := b.snap.Load()
		for _, p := range outstanding {
			b.dur.inflight.Store(p.Seq, p.Ev)
		}
		for _, p := range outstanding {
			b.publishCh <- queued{seq: p.Seq, ev: p.Ev, snap: snap, replay: true}
		}
	}
	return b, nil
}

// initDurable finishes durability setup inside New, once the reliability
// defaults and telemetry registry exist: restore recovered dedup windows
// (normalising them to the configured DedupWindow), seed the preserved
// counters, and position the sequence allocator past everything journaled.
func (b *Broker) initDurable() {
	d := b.dur
	d.windows = map[topology.NodeID]*lockedWindow{}
	d.recovered = map[topology.NodeID]*seqWindow{}
	d.store.Instrument(b.reg)
	if d.init == nil {
		return
	}
	in := d.init
	d.init = nil
	for _, ws := range in.windows {
		d.recovered[ws.Node] = restoreSeqWindow(b.rel.DedupWindow, ws.Max, ws.Seqs)
	}
	for _, a := range in.acks {
		w, ok := d.recovered[a.Node]
		if !ok {
			w = newSeqWindow(b.rel.DedupWindow)
			d.recovered[a.Node] = w
		}
		w.admit(a.Seq)
	}
	scope := b.reg.Scope("broker")
	for name, v := range in.counters {
		scope.Counter(name).Add(v)
	}
	b.seq.Store(in.nextSeq)
}

// consumerWindow builds node n's dedup window holder at consumer spawn:
// nil without durability (fault-injection consumers keep a private,
// lock-free window), otherwise a locked window seeded from recovery.
func (b *Broker) consumerWindow(n topology.NodeID) *lockedWindow {
	if b.dur == nil {
		return nil
	}
	w, ok := b.dur.recovered[n]
	if ok {
		delete(b.dur.recovered, n)
	} else {
		w = newSeqWindow(b.rel.DedupWindow)
	}
	lw := &lockedWindow{w: w}
	b.dur.windows[n] = lw
	return lw
}

// durDone retires one consumed (or skipped) copy of a publication; when
// the last copy retires, the publication leaves the in-flight set and
// future checkpoints stop carrying its journal record forward.
func (b *Broker) durDone(d Delivery) {
	if d.pending == nil {
		return
	}
	if d.pending.Add(-1) == 0 {
		b.dur.inflight.Delete(d.Seq)
	}
}

// journalChurn appends one record per applied churn request, then issues a
// single group-commit barrier — all before the caller swaps the snapshot,
// so journal replay order equals snapshot swap order. A crashed store
// fails the affected requests; the engine may then be ahead of the
// journal, which is moot — the process is dead to durability and the next
// incarnation rebuilds from disk.
func (b *Broker) journalChurn(reqs []churnReq, resps []churnResp) {
	d := b.dur
	dirty := false
	for i, r := range reqs {
		if resps[i].err != nil {
			continue
		}
		if r.sub != nil {
			rec := durable.SubRecord{ID: d.nextID, Owner: r.sub.Owner, Rect: r.sub.Rect.Clone()}
			if err := d.store.AppendSubscribe(rec); err != nil {
				resps[i] = churnResp{err: err}
				continue
			}
			d.nextID++
			d.slotToID[resps[i].slot] = rec.ID
			d.subs[rec.ID] = rec
			dirty = true
		} else {
			id, ok := d.slotToID[r.slot]
			if !ok {
				continue // engine rejected unknown slots already
			}
			if err := d.store.AppendUnsubscribe(id); err != nil {
				resps[i] = churnResp{err: err}
				continue
			}
			delete(d.slotToID, r.slot)
			if id < d.baseCount {
				d.removedBase[id] = true
			} else {
				delete(d.subs, id)
			}
			dirty = true
		}
	}
	if !dirty {
		return
	}
	if err := d.store.Sync(); err != nil {
		// The barrier failed: nothing in this batch is guaranteed durable.
		for i := range resps {
			if resps[i].err == nil {
				resps[i].err = err
			}
		}
	}
}

// remapSlots rebuilds the slot→durable-id map after a Refresh compacted
// the live slots: old slot live[i] became slot i.
func (b *Broker) remapSlots(live []int) {
	d := b.dur
	m := make(map[int]int64, len(live))
	for newSlot, oldSlot := range live {
		if id, ok := d.slotToID[oldSlot]; ok {
			m[newSlot] = id
		}
	}
	d.slotToID = m
}

// checkpointDue reports whether the automatic checkpoint should run: on a
// timed tick anything journaled since the last checkpoint is worth
// truncating away; between ticks only the record-count threshold triggers.
func (b *Broker) checkpointDue(timed bool) bool {
	if b.dur == nil || b.dur.store.Crashed() {
		return false
	}
	n := b.dur.store.AppendedSinceCheckpoint()
	if timed {
		return n > 0
	}
	recs := b.dur.store.Options().CheckpointRecords
	return recs > 0 && n >= recs
}

// doCheckpoint rotates the journal, carries the in-flight publishes into
// the fresh epoch, captures the broker's durable state and installs the
// checkpoint (after which previous epochs' journals are deleted). Runs on
// the writer goroutine — or in Close, once everything else is quiescent.
func (b *Broker) doCheckpoint() error {
	d := b.dur
	if err := d.store.BeginCheckpoint(); err != nil {
		return err
	}
	var carry []durable.PublishRecord
	d.inflight.Range(func(k, v any) bool {
		carry = append(carry, durable.PublishRecord{Seq: k.(int64), Ev: v.(workload.Event)})
		return true
	})
	sort.Slice(carry, func(i, j int) bool { return carry[i].Seq < carry[j].Seq })
	if err := d.store.AppendPublishes(carry); err != nil {
		return err
	}

	cp := &durable.Checkpoint{
		NextSeq:  b.seq.Load(),
		NextID:   d.nextID,
		Counters: make(map[string]int64, len(preservedCounters)),
	}
	for id := range d.removedBase {
		cp.RemovedBase = append(cp.RemovedBase, id)
	}
	sort.Slice(cp.RemovedBase, func(i, j int) bool { return cp.RemovedBase[i] < cp.RemovedBase[j] })
	for _, rec := range d.subs {
		cp.Subs = append(cp.Subs, rec)
	}
	sort.Slice(cp.Subs, func(i, j int) bool { return cp.Subs[i].ID < cp.Subs[j].ID })
	for n, lw := range d.windows {
		max, seqs := lw.capture()
		if max < 0 {
			continue // nothing admitted yet
		}
		cp.Windows = append(cp.Windows, durable.WindowState{Node: n, Size: b.rel.DedupWindow, Max: max, Seqs: seqs})
	}
	sort.Slice(cp.Windows, func(i, j int) bool { return cp.Windows[i].Node < cp.Windows[j].Node })
	scope := b.reg.Scope("broker")
	for _, name := range preservedCounters {
		cp.Counters[name] = scope.Counter(name).Value()
	}
	return d.store.CommitCheckpoint(cp)
}

// Checkpoint forces a checkpoint + journal truncation on the writer
// goroutine and returns its error. No-op without durability.
func (b *Broker) Checkpoint() error {
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	if b.dur == nil {
		return nil
	}
	reply := make(chan error, 1)
	b.ckptCh <- reply
	return <-reply
}

// Recovery reports what the Open that produced this broker had to replay.
// Zero for brokers from New or Open over a fresh directory.
func (b *Broker) Recovery() durable.RecoveryStats {
	if b.dur == nil {
		return durable.RecoveryStats{}
	}
	return b.dur.store.Recovery()
}

// Durable reports whether this broker persists its state (came from Open).
func (b *Broker) Durable() bool { return b.dur != nil }

// Store exposes the underlying durable store (nil for non-durable
// brokers). The replication layer uses it to capture catch-up snapshots;
// nothing else should touch it.
func (b *Broker) Store() *durable.Store {
	if b.dur == nil {
		return nil
	}
	return b.dur.store
}
