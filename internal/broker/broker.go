// Package broker turns the Engine's per-event delivery *decisions* into
// actual message deliveries over an in-process fabric: every network node
// gets an inbox goroutine, publications flow through a decision stage that
// owns the Engine, and a fan-out worker pool places one copy of each event
// in every destination inbox (group members, remainder top-ups, or unicast
// targets).
//
// The broker exists to validate delivery *semantics* end to end — the cost
// model in internal/sim prices paths, this package checks who actually
// receives what:
//
//   - completeness: every subscriber interested in an event receives it;
//   - single delivery: no node receives the same event twice;
//   - waste: deliveries to uninterested group members are counted, and a
//     No-Loss engine produces exactly zero of them.
//
// Pipeline shape (all stdlib, structured shutdown):
//
//	Publish() → publishCh → decision goroutine (owns *core.Engine)
//	          → fanoutCh  → N fan-out workers → per-node inboxes
//	          → per-node consumer goroutines → Stats
package broker

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/multicast"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Delivery is one message copy arriving at a node.
type Delivery struct {
	Event  workload.Event
	Method multicast.Method
	Group  int // -1 for unicast deliveries
	// Interested reports whether the receiving node had a matching
	// subscription (false ⇒ wasted delivery).
	Interested bool
}

// routed couples a decided event with its destinations.
type routed struct {
	ev         workload.Event
	d          core.Decision
	interested map[topology.NodeID]bool
}

// Stats aggregates delivery accounting. Snapshot via Broker.Stats.
type Stats struct {
	Published  int64
	Multicast  int64 // events delivered via a group
	Unicast    int64 // events delivered by unicast only
	Broadcast  int64 // events flooded (DynamicMethod engines only)
	Deliveries int64 // message copies placed in inboxes
	Wasted     int64 // copies delivered to uninterested nodes
	PerNode    map[topology.NodeID]int64
}

// Broker is the delivery fabric. Create with New, feed with Publish, stop
// with Close. Safe for concurrent Publish calls.
type Broker struct {
	engine  *core.Engine
	workers int

	publishCh chan workload.Event
	fanoutCh  chan routed
	inboxes   map[topology.NodeID]chan Delivery

	// observer, when set, sees every delivery after stats accounting.
	observer func(topology.NodeID, Delivery)

	mu    sync.Mutex
	stats Stats

	decisionWG sync.WaitGroup
	fanoutWG   sync.WaitGroup
	consumerWG sync.WaitGroup
	closeOnce  sync.Once
}

// Option customises a Broker.
type Option func(*Broker)

// WithWorkers sets the fan-out worker count (default 4).
func WithWorkers(n int) Option {
	return func(b *Broker) { b.workers = n }
}

// WithObserver registers a callback invoked for every delivery (after
// accounting). The callback runs on consumer goroutines and must be safe
// for concurrent use.
func WithObserver(fn func(topology.NodeID, Delivery)) Option {
	return func(b *Broker) { b.observer = fn }
}

// New starts a broker over an engine. The engine must not be used by the
// caller until Close returns (the decision goroutine owns it).
func New(engine *core.Engine, opts ...Option) (*Broker, error) {
	if engine == nil {
		return nil, fmt.Errorf("broker: nil engine")
	}
	b := &Broker{
		engine:    engine,
		workers:   4,
		publishCh: make(chan workload.Event, 64),
		fanoutCh:  make(chan routed, 64),
		inboxes:   make(map[topology.NodeID]chan Delivery),
	}
	for _, opt := range opts {
		opt(b)
	}
	if b.workers < 1 {
		return nil, fmt.Errorf("broker: %d workers", b.workers)
	}
	b.stats.PerNode = make(map[topology.NodeID]int64)

	// One inbox + consumer per subscriber node.
	for _, n := range engine.World().SubscriberNodes {
		ch := make(chan Delivery, 32)
		b.inboxes[n] = ch
		b.consumerWG.Add(1)
		go b.consume(n, ch)
	}

	b.decisionWG.Add(1)
	go b.decide()

	for i := 0; i < b.workers; i++ {
		b.fanoutWG.Add(1)
		go b.fanout()
	}
	return b, nil
}

// Publish enqueues one event for delivery. It blocks when the pipeline is
// saturated and panics if called after Close.
func (b *Broker) Publish(ev workload.Event) {
	b.publishCh <- ev
}

// Close drains the pipeline and stops all goroutines. Safe to call more
// than once; Publish must not be called afterwards.
func (b *Broker) Close() {
	b.closeOnce.Do(func() {
		close(b.publishCh)
		b.decisionWG.Wait()
		close(b.fanoutCh)
		b.fanoutWG.Wait()
		for _, ch := range b.inboxes {
			close(ch)
		}
		b.consumerWG.Wait()
	})
}

// Stats returns a snapshot of the accounting so far (call after Close for
// final numbers).
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.stats
	out.PerNode = make(map[topology.NodeID]int64, len(b.stats.PerNode))
	for k, v := range b.stats.PerNode {
		out.PerNode[k] = v
	}
	return out
}

// decide is the single goroutine owning the engine.
func (b *Broker) decide() {
	defer b.decisionWG.Done()
	for ev := range b.publishCh {
		d := b.engine.Decide(ev)
		interested := make(map[topology.NodeID]bool, len(d.Interested))
		for _, n := range d.Interested {
			interested[n] = true
		}
		b.mu.Lock()
		b.stats.Published++
		switch d.Method {
		case multicast.NetworkMulticast:
			b.stats.Multicast++
		case multicast.Broadcast:
			b.stats.Broadcast++
		default:
			b.stats.Unicast++
		}
		b.mu.Unlock()
		b.fanoutCh <- routed{ev: ev, d: d, interested: interested}
	}
}

// fanout places one copy per destination inbox.
func (b *Broker) fanout() {
	defer b.fanoutWG.Done()
	for r := range b.fanoutCh {
		if r.d.Method == multicast.Broadcast {
			// Flooding: every subscriber node receives a copy (non-subscriber
			// nodes have no inbox and are represented by waste accounting at
			// the cost level, not the delivery level).
			for n := range b.inboxes {
				b.deliver(n, Delivery{
					Event:      r.ev,
					Method:     multicast.Broadcast,
					Group:      -1,
					Interested: r.interested[n],
				})
			}
			continue
		}
		if r.d.Method == multicast.NetworkMulticast {
			info := b.engine.Group(r.d.Group)
			for _, n := range info.Nodes {
				b.deliver(n, Delivery{
					Event:      r.ev,
					Method:     multicast.NetworkMulticast,
					Group:      r.d.Group,
					Interested: r.interested[n],
				})
			}
			for _, n := range r.d.Remainder {
				b.deliver(n, Delivery{
					Event:      r.ev,
					Method:     multicast.Unicast,
					Group:      -1,
					Interested: true,
				})
			}
			continue
		}
		for _, n := range r.d.Interested {
			b.deliver(n, Delivery{
				Event:      r.ev,
				Method:     multicast.Unicast,
				Group:      -1,
				Interested: true,
			})
		}
	}
}

// deliver places a copy in a node's inbox; unknown nodes (non-subscribers)
// are counted but have no inbox.
func (b *Broker) deliver(n topology.NodeID, d Delivery) {
	ch, ok := b.inboxes[n]
	if !ok {
		// A group may reference a node that stopped subscribing between
		// refreshes; count the waste, nothing to deliver to.
		b.mu.Lock()
		b.stats.Deliveries++
		if !d.Interested {
			b.stats.Wasted++
		}
		b.mu.Unlock()
		return
	}
	ch <- d
}

// consume drains one node's inbox and accounts deliveries.
func (b *Broker) consume(n topology.NodeID, ch <-chan Delivery) {
	defer b.consumerWG.Done()
	for d := range ch {
		b.mu.Lock()
		b.stats.Deliveries++
		b.stats.PerNode[n]++
		if !d.Interested {
			b.stats.Wasted++
		}
		b.mu.Unlock()
		if b.observer != nil {
			b.observer(n, d)
		}
	}
}
