// Package broker turns the Engine's per-event delivery *decisions* into
// actual message deliveries over an in-process fabric: every network node
// gets an inbox goroutine, publications flow through a decision stage that
// owns the Engine, and a fan-out worker pool places one copy of each event
// in every destination inbox (group members, remainder top-ups, or unicast
// targets).
//
// The broker exists to validate delivery *semantics* end to end — the cost
// model in internal/sim prices paths, this package checks who actually
// receives what:
//
//   - completeness: every live subscriber interested in an event receives
//     it, exactly once;
//   - single delivery: no node receives the same event twice (receiver-side
//     dedup turns at-least-once retransmission into exactly-once
//     accounting);
//   - waste: deliveries to uninterested group members are counted, and a
//     No-Loss engine produces exactly zero of them.
//
// With a faults.Injector attached (WithFaults), the broker layers a
// reliability protocol over the lossy fabric:
//
//   - every publication carries a sequence number; receivers dedup on it;
//   - dropped attempts are retried with exponential backoff + deterministic
//     jitter, bounded per delivery (MaxRetries) and per event (RetryBudget);
//   - when the primary route exhausts its retries, the delivery degrades to
//     a unicast top-up along an alternate path computed by a Dijkstra
//     recompute with failed links removed;
//   - when even the degraded path fails — destination crashed or
//     partitioned — the delivery is abandoned and the routed group is
//     quarantined, so the Engine's decision stage falls back to unicast for
//     its members until the next Refresh.
//
// Pipeline shape (all stdlib, structured shutdown):
//
//	Publish() → publishCh → decision goroutine (owns *core.Engine)
//	          → fanoutCh  → N fan-out workers → per-node inboxes
//	          → per-node consumer goroutines → Stats
//
// Fan-out workers report persistent failures back to the decision goroutine
// over a non-blocking quarantine channel; the decision goroutine is the only
// one that touches the Engine.
//
// With a health.Health attached (WithHealth), the broker closes the
// remaining feedback loops:
//
//   - Publish passes through admission control — a token-bucket rate
//     limiter plus a MaxInflight semaphore over the whole pipeline — and
//     under the RejectNewest/ShedLowFanout policies returns
//     health.ErrOverloaded instead of queueing unbounded work;
//   - each destination gets a circuit breaker fed by delivery outcomes and
//     ack latencies; deliveries to an open breaker are skipped outright
//     (and the routed group quarantined) instead of burning retries on a
//     known-dead path, with jittered probes re-closing the breaker once
//     the destination recovers;
//   - a control-loop goroutine watches quarantine fraction, breaker state
//     and shed/loss counts, and — with hysteresis — asks the decision
//     goroutine to run an automatic Engine.Refresh, un-quarantining
//     recovered groups without operator intervention.
package broker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/multicast"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ErrClosed is returned by Publish after Close.
var ErrClosed = errors.New("broker: publish after close")

// Delivery is one message copy arriving at a node.
type Delivery struct {
	Event workload.Event
	// Seq is the publication sequence number assigned by the decision
	// stage; receivers dedup on it.
	Seq    int64
	Method multicast.Method
	Group  int // -1 for unicast deliveries
	// Interested reports whether the receiving node had a matching
	// subscription (false ⇒ wasted delivery).
	Interested bool
	// Attempt is the delivery attempt that succeeded (0 = first try,
	// > 0 ⇒ the copy is a successful retransmission).
	Attempt int
	// Degraded marks a copy that arrived via the alternate-path unicast
	// top-up after the primary route exhausted its retries.
	Degraded bool

	// born is the decision-stage timestamp; the consumer turns it into the
	// end-to-end delivery-latency histogram.
	born time.Time
	// trace is the event's sampled lifecycle trace, nil when untraced.
	trace *telemetry.EventTrace
}

// routed couples a decided event with its destinations.
type routed struct {
	seq        int64
	ev         workload.Event
	d          core.Decision
	interested map[topology.NodeID]bool
	// t0 stamps the decision; delivery latency is measured from here.
	t0 time.Time
	// trace is the event's sampled lifecycle trace, nil when untraced.
	trace *telemetry.EventTrace
	// nodes snapshots the routed group's member nodes at decision time, so
	// fan-out workers never read the engine — the decision goroutine may
	// rebuild it (auto-refresh) while earlier events are still in flight.
	nodes []topology.NodeID
	// paths maps each destination to its primary routing path (publisher's
	// SPT); only populated under fault injection.
	paths map[topology.NodeID][]topology.NodeID
	// budget is the event's remaining retry allowance, shared across
	// destinations.
	budget *atomic.Int64
}

// Stats aggregates delivery accounting. Snapshot via Broker.Stats; the
// snapshot is safe to take while the broker is running.
type Stats struct {
	Published  int64
	Multicast  int64 // events delivered via a group
	Unicast    int64 // events delivered by unicast only
	Broadcast  int64 // events flooded (DynamicMethod engines only)
	Deliveries int64 // message copies accepted at inboxes (post-dedup)
	Wasted     int64 // copies delivered to uninterested nodes

	// Reliability counters — all zero without fault injection.
	Retries     int64 // retransmission attempts after a dropped attempt
	Redelivered int64 // deliveries that succeeded only after ≥ 1 retry
	Deduped     int64 // duplicate copies suppressed at receivers
	Degraded    int64 // deliveries re-routed via alternate-path unicast
	Quarantined int64 // groups quarantined after persistent failures
	Offline     int64 // deliveries skipped because the node was crashed
	Lost        int64 // deliveries abandoned for live nodes (violations)

	// Overload / self-healing counters — all zero without WithHealth.
	Shed           int64 // decided events dropped by ShedLowFanout
	Rejected       int64 // publishes refused with health.ErrOverloaded
	RateLimited    int64 // rejections specifically from the token bucket
	BreakerOpens   int64 // breaker open transitions
	BreakerSkipped int64 // deliveries skipped on an open breaker
	Probes         int64 // half-open probe deliveries admitted
	AutoRefreshes  int64 // automatic engine refreshes triggered

	PerNode map[topology.NodeID]int64
}

// metrics caches the broker's telemetry handles so the delivery hot path
// never touches a registry map: every counter bump is one lock-free atomic
// add on a pre-resolved instrument. Stats() is a thin view over these, so
// the registry is the single source of truth for broker accounting.
type metrics struct {
	published  *telemetry.Counter
	multicast  *telemetry.Counter
	unicast    *telemetry.Counter
	broadcast  *telemetry.Counter
	deliveries *telemetry.Counter
	wasted     *telemetry.Counter

	retries     *telemetry.Counter
	redelivered *telemetry.Counter
	deduped     *telemetry.Counter
	degraded    *telemetry.Counter
	quarantined *telemetry.Counter
	offline     *telemetry.Counter
	lost        *telemetry.Counter

	// deliverLatency is decision→inbox-accept wall time per copy, ns.
	deliverLatency *telemetry.Histogram
	// backoffWait is time slept in retry backoff, ns.
	backoffWait *telemetry.Histogram
	// queueDepth samples the destination inbox depth at each enqueue.
	queueDepth *telemetry.Histogram
}

func newMetrics(s *telemetry.Scope) metrics {
	return metrics{
		published:      s.Counter("published"),
		multicast:      s.Counter("multicast_events"),
		unicast:        s.Counter("unicast_events"),
		broadcast:      s.Counter("broadcast_events"),
		deliveries:     s.Counter("deliveries"),
		wasted:         s.Counter("wasted"),
		retries:        s.Counter("retries"),
		redelivered:    s.Counter("redelivered"),
		deduped:        s.Counter("deduped"),
		degraded:       s.Counter("degraded"),
		quarantined:    s.Counter("quarantined"),
		offline:        s.Counter("offline"),
		lost:           s.Counter("lost"),
		deliverLatency: s.Histogram("deliver_latency_ns", telemetry.LatencyBuckets()),
		backoffWait:    s.Histogram("backoff_wait_ns", telemetry.LatencyBuckets()),
		queueDepth:     s.Histogram("queue_depth", telemetry.LinearBuckets(0, 2, 16)),
	}
}

// ReliabilityConfig tunes the retry protocol used under fault injection.
type ReliabilityConfig struct {
	// MaxRetries is the retransmission cap per delivery on the primary
	// path (default 4).
	MaxRetries int
	// LastResort is the retransmission cap on the degraded alternate path
	// (default 16) — the bounded stand-in for "retry until the peer is
	// declared dead".
	LastResort int
	// RetryBudget caps total primary-path retries per event across all
	// destinations (default 512; ≤ 0 means the default). Exhausting it
	// sends remaining failing deliveries straight to the degraded path.
	RetryBudget int64
	// BaseBackoff is the first retry's backoff (default 50µs); backoff
	// doubles per attempt up to MaxBackoff (default 2ms), with ±50%
	// deterministic jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// Validate rejects nonsensical reliability tunings. Zero fields are legal
// (they take defaults); explicitly negative values are not, and a MaxBackoff
// below BaseBackoff would make the backoff schedule non-monotone.
func (rc ReliabilityConfig) Validate() error {
	if rc.MaxRetries < 0 {
		return fmt.Errorf("broker: MaxRetries = %d, need ≥ 0", rc.MaxRetries)
	}
	if rc.LastResort < 0 {
		return fmt.Errorf("broker: LastResort = %d, need ≥ 0", rc.LastResort)
	}
	if rc.RetryBudget < 0 {
		return fmt.Errorf("broker: RetryBudget = %d, need ≥ 0", rc.RetryBudget)
	}
	if rc.BaseBackoff < 0 {
		return fmt.Errorf("broker: BaseBackoff = %v, need ≥ 0", rc.BaseBackoff)
	}
	if rc.MaxBackoff < 0 {
		return fmt.Errorf("broker: MaxBackoff = %v, need ≥ 0", rc.MaxBackoff)
	}
	if rc.BaseBackoff > 0 && rc.MaxBackoff > 0 && rc.MaxBackoff < rc.BaseBackoff {
		return fmt.Errorf("broker: MaxBackoff %v < BaseBackoff %v", rc.MaxBackoff, rc.BaseBackoff)
	}
	return nil
}

func (rc *ReliabilityConfig) setDefaults() {
	if rc.MaxRetries <= 0 {
		rc.MaxRetries = 4
	}
	if rc.LastResort <= 0 {
		rc.LastResort = 32
	}
	if rc.RetryBudget <= 0 {
		rc.RetryBudget = 512
	}
	if rc.BaseBackoff <= 0 {
		rc.BaseBackoff = 50 * time.Microsecond
	}
	if rc.MaxBackoff <= 0 {
		rc.MaxBackoff = 2 * time.Millisecond
	}
}

// Broker is the delivery fabric. Create with New, feed with Publish, stop
// with Close. Safe for concurrent Publish calls.
type Broker struct {
	engine  *core.Engine
	graph   *topology.Graph
	workers int

	inj    *faults.Injector
	rel    ReliabilityConfig
	health *health.Health

	publishCh    chan workload.Event
	fanoutCh     chan routed
	quarantineCh chan int
	// refreshCh carries auto-refresh requests (the warm-iteration count)
	// from the control loop to the decision goroutine, which is the only
	// one allowed to touch the engine.
	refreshCh chan int
	inboxes   map[topology.NodeID]chan Delivery

	// quarCount and groupCount mirror the engine's quarantined/total group
	// counts so the control loop can read them without touching the engine;
	// only the decision goroutine writes them.
	quarCount  atomic.Int64
	groupCount atomic.Int64

	// observer, when set, sees every accepted delivery after stats
	// accounting.
	observer func(topology.NodeID, Delivery)
	// decisionObs, when set, sees every decided event (with its priced
	// costs) on the decision goroutine, before fan-out. Shed events are not
	// reported — they never reach fan-out.
	decisionObs func(seq int64, ev workload.Event, d core.Decision, c core.Costs)

	// reg owns the broker's metrics; private unless WithTelemetry supplies
	// a shared registry. tracer is nil unless WithTracer enables tracing.
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	ctr    metrics
	// perNode shards delivery counts one atomic per consumer, so the hot
	// path never contends on a shared map.
	perNode map[topology.NodeID]*atomic.Int64
	// quarantineSent dedups quarantine requests per group.
	quarantineSent sync.Map

	closeMu sync.RWMutex
	closed  bool

	decisionWG sync.WaitGroup
	fanoutWG   sync.WaitGroup
	consumerWG sync.WaitGroup
	closeOnce  sync.Once

	// controlStop ends the control-loop goroutine; nil without WithHealth
	// or when AutoRefresh is off.
	controlStop chan struct{}
	controlWG   sync.WaitGroup
}

// Option customises a Broker.
type Option func(*Broker)

// WithWorkers sets the fan-out worker count (default 4).
func WithWorkers(n int) Option {
	return func(b *Broker) { b.workers = n }
}

// WithObserver registers a callback invoked for every accepted delivery
// (after accounting and dedup). The callback runs on consumer goroutines
// and must be safe for concurrent use.
func WithObserver(fn func(topology.NodeID, Delivery)) Option {
	return func(b *Broker) { b.observer = fn }
}

// WithFaults attaches a fault injector and enables the reliability
// protocol (sequence numbers, dedup, retries, degradation, quarantine).
func WithFaults(inj *faults.Injector) Option {
	return func(b *Broker) { b.inj = inj }
}

// WithReliability overrides the retry protocol's tuning. Only meaningful
// together with WithFaults.
func WithReliability(rc ReliabilityConfig) Option {
	return func(b *Broker) { b.rel = rc }
}

// WithTelemetry publishes the broker's metrics into a shared registry
// (scope "broker") instead of a private one, so exporters and the HTTP
// server see them. Stats() reads the same instruments either way.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(b *Broker) { b.reg = reg }
}

// WithTracer enables per-event lifecycle tracing: each sampled publication
// accumulates decide/enqueue/attempt/deliver spans into the tracer's ring.
func WithTracer(tr *telemetry.Tracer) Option {
	return func(b *Broker) { b.tracer = tr }
}

// WithHealth attaches the overload-protection and self-healing subsystem:
// admission control on Publish, per-destination circuit breakers in the
// delivery path, and (when h's config enables AutoRefresh) the control
// loop that triggers automatic engine refreshes. The broker instruments h
// into its telemetry registry.
func WithHealth(h *health.Health) Option {
	return func(b *Broker) { b.health = h }
}

// WithDecisionObserver registers a callback invoked on the decision
// goroutine for every decided event with its priced delivery costs —
// the hook recovery experiments use to build cost-over-time series.
// Pricing each decision costs extra model lookups, so attach it only when
// the series is wanted.
func WithDecisionObserver(fn func(seq int64, ev workload.Event, d core.Decision, c core.Costs)) Option {
	return func(b *Broker) { b.decisionObs = fn }
}

// New starts a broker over an engine. The engine must not be used by the
// caller until Close returns (the decision goroutine owns it).
func New(engine *core.Engine, opts ...Option) (*Broker, error) {
	if engine == nil {
		return nil, fmt.Errorf("broker: nil engine")
	}
	b := &Broker{
		engine:  engine,
		graph:   engine.Model().Graph(),
		workers: 4,
		inboxes: make(map[topology.NodeID]chan Delivery),
	}
	for _, opt := range opts {
		opt(b)
	}
	if b.workers < 1 {
		return nil, fmt.Errorf("broker: %d workers", b.workers)
	}
	if err := b.rel.Validate(); err != nil {
		return nil, err
	}
	b.rel.setDefaults()
	if b.reg == nil {
		b.reg = telemetry.NewRegistry()
	}
	b.ctr = newMetrics(b.reg.Scope("broker"))
	b.quarantineCh = make(chan int, 128)
	// Size the publish queue at least MaxInflight so that under the
	// rejecting policies an admitted event never blocks on the channel
	// send: admission is the bound, not the channel.
	queue := 64
	if b.health != nil && b.health.Admission.Capacity() > queue {
		queue = b.health.Admission.Capacity()
	}
	b.publishCh = make(chan workload.Event, queue)
	b.fanoutCh = make(chan routed, 64)
	b.refreshCh = make(chan int, 1)
	b.groupCount.Store(int64(engine.NumGroups()))
	if b.health != nil {
		b.health.Instrument(b.reg)
	}

	// One inbox + consumer per subscriber node. Both maps are fully
	// populated before any consumer starts: consumers read them
	// concurrently and must only ever see the final, read-only state.
	b.perNode = make(map[topology.NodeID]*atomic.Int64, len(engine.World().SubscriberNodes))
	for _, n := range engine.World().SubscriberNodes {
		b.inboxes[n] = make(chan Delivery, 32)
		b.perNode[n] = new(atomic.Int64)
	}
	for n, ch := range b.inboxes {
		b.consumerWG.Add(1)
		go b.consume(n, ch)
	}

	b.decisionWG.Add(1)
	go b.decide()

	for i := 0; i < b.workers; i++ {
		b.fanoutWG.Add(1)
		go b.fanout()
	}

	if b.health != nil && b.health.Controller.Enabled() {
		b.controlStop = make(chan struct{})
		b.controlWG.Add(1)
		go b.controlLoop()
	}
	return b, nil
}

// Publish enqueues one event for delivery. It blocks when the pipeline is
// saturated and returns ErrClosed (instead of panicking) if the broker has
// been closed. With health attached, the event first passes admission
// control: under the RejectNewest and ShedLowFanout policies a saturated
// pipeline or an empty rate-limit bucket returns health.ErrOverloaded
// instead of blocking. Safe to race with Close.
func (b *Broker) Publish(ev workload.Event) error {
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	if b.health != nil {
		// Admit while holding the close lock: Close cannot complete until
		// this Publish returns, so an admitted event always reaches the
		// pipeline and its inflight slot is always released by fan-out.
		if err := b.health.Admission.Admit(); err != nil {
			return err
		}
	}
	b.publishCh <- ev
	return nil
}

// Close drains the pipeline and stops all goroutines. Safe to call more
// than once and concurrently with Publish; Publish calls that lose the
// race return ErrClosed.
func (b *Broker) Close() {
	b.closeOnce.Do(func() {
		if b.controlStop != nil {
			close(b.controlStop)
			b.controlWG.Wait()
		}
		b.closeMu.Lock()
		b.closed = true
		b.closeMu.Unlock()
		close(b.publishCh)
		b.decisionWG.Wait()
		close(b.fanoutCh)
		b.fanoutWG.Wait()
		for _, ch := range b.inboxes {
			close(ch)
		}
		b.consumerWG.Wait()
	})
}

// Stats returns a snapshot of the accounting so far (call after Close for
// final numbers). It is a thin view over the telemetry registry: each field
// is an atomic load of the corresponding "broker"-scope counter, so
// successive snapshots are monotone per counter even mid-run.
func (b *Broker) Stats() Stats {
	out := Stats{
		Published:   b.ctr.published.Value(),
		Multicast:   b.ctr.multicast.Value(),
		Unicast:     b.ctr.unicast.Value(),
		Broadcast:   b.ctr.broadcast.Value(),
		Deliveries:  b.ctr.deliveries.Value(),
		Wasted:      b.ctr.wasted.Value(),
		Retries:     b.ctr.retries.Value(),
		Redelivered: b.ctr.redelivered.Value(),
		Deduped:     b.ctr.deduped.Value(),
		Degraded:    b.ctr.degraded.Value(),
		Quarantined: b.ctr.quarantined.Value(),
		Offline:     b.ctr.offline.Value(),
		Lost:        b.ctr.lost.Value(),
		PerNode:     make(map[topology.NodeID]int64, len(b.perNode)),
	}
	if b.health != nil {
		hc := b.health.CounterSnapshot()
		out.Shed = hc.Shed
		out.Rejected = hc.Rejected
		out.RateLimited = hc.RateLimited
		out.BreakerOpens = hc.BreakerOpen
		out.BreakerSkipped = hc.Skipped
		out.Probes = hc.Probes
		out.AutoRefreshes = hc.Refreshes
	}
	for n, c := range b.perNode {
		out.PerNode[n] = c.Load()
	}
	return out
}

// Health exposes the attached health subsystem (nil without WithHealth).
func (b *Broker) Health() *health.Health { return b.health }

// QuarantineCount reports how many groups are currently quarantined. It
// reads the decision goroutine's atomic mirror, so it is safe to call
// while the broker runs (the engine itself is not).
func (b *Broker) QuarantineCount() int { return int(b.quarCount.Load()) }

// Telemetry exposes the broker's metrics registry — the shared one passed
// via WithTelemetry, or the private default.
func (b *Broker) Telemetry() *telemetry.Registry { return b.reg }

// decide is the single goroutine owning the engine. Besides publications
// it services auto-refresh requests from the control loop, so the engine
// heals even while traffic flows.
func (b *Broker) decide() {
	defer b.decisionWG.Done()
	var seq int64
	for {
		select {
		case ev, ok := <-b.publishCh:
			if !ok {
				b.applyQuarantines()
				return
			}
			b.decideOne(ev, &seq)
		case wi := <-b.refreshCh:
			b.autoRefresh(wi)
		}
	}
}

// decideOne routes one publication through the decision stage.
func (b *Broker) decideOne(ev workload.Event, seq *int64) {
	b.applyQuarantines()
	trace := b.tracer.Begin(*seq)
	t0 := time.Now()
	d := b.engine.Decide(ev)
	trace.Add("decide", t0, time.Since(t0), -1, d.Group, 0, methodNote(d.Method))
	interested := make(map[topology.NodeID]bool, len(d.Interested))
	for _, n := range d.Interested {
		interested[n] = true
	}
	b.ctr.published.Add(1)
	switch d.Method {
	case multicast.NetworkMulticast:
		b.ctr.multicast.Add(1)
	case multicast.Broadcast:
		b.ctr.broadcast.Add(1)
	default:
		b.ctr.unicast.Add(1)
	}
	r := routed{seq: *seq, ev: ev, d: d, interested: interested, t0: t0, trace: trace}
	if d.Method == multicast.NetworkMulticast {
		// Snapshot the group's members now: fan-out workers must not read
		// the engine, which this goroutine may refresh at any time.
		r.nodes = b.engine.Group(d.Group).Nodes
	}
	if b.inj != nil {
		r.paths = b.routePaths(ev, d)
		r.budget = new(atomic.Int64)
		r.budget.Store(b.rel.RetryBudget)
	}
	*seq++
	if b.health != nil {
		b.health.Admission.NoteFanout(len(d.Interested))
	}
	enq := time.Now()
	if b.health != nil {
		// Try a non-blocking hand-off first: if the fan-out stage is
		// congested and the policy sheds, drop the event here when its
		// fanout is below the running mean — the cheapest loss available.
		select {
		case b.fanoutCh <- r:
		default:
			if b.health.Admission.ShouldShed(len(d.Interested)) {
				b.health.Admission.NoteShed()
				b.health.Admission.Release()
				trace.Add("shed", enq, time.Since(enq), -1, d.Group, 0, "low-fanout")
				return
			}
			b.fanoutCh <- r
		}
	} else {
		b.fanoutCh <- r
	}
	trace.Add("enqueue", enq, time.Since(enq), -1, d.Group, 0, "")
	if b.decisionObs != nil {
		b.decisionObs(r.seq, ev, d, b.engine.CostOf(ev, d))
	}
}

// autoRefresh runs one controller-triggered engine refresh on the decision
// goroutine.
func (b *Broker) autoRefresh(warmIters int) {
	b.applyQuarantines()
	if b.engine.NumQuarantined() == 0 {
		return // healed some other way; nothing to rebuild
	}
	if err := b.engine.Refresh(warmIters); err != nil {
		// Refresh can fail legitimately (e.g. zero live subscriptions);
		// leave the quarantines in place and let the loop retry later.
		return
	}
	// The rebuilt groups start with a clean slate: allow future failures to
	// quarantine them again.
	b.quarantineSent.Range(func(k, _ any) bool {
		b.quarantineSent.Delete(k)
		return true
	})
	b.quarCount.Store(int64(b.engine.NumQuarantined()))
	b.groupCount.Store(int64(b.engine.NumGroups()))
	b.health.NoteAutoRefresh()
}

// controlLoop is the self-healing loop: every CheckInterval it snapshots
// the health signals and, when the controller decides the system is both
// degraded and stable enough to rebuild, asks the decision goroutine to
// refresh the engine.
func (b *Broker) controlLoop() {
	defer b.controlWG.Done()
	tick := time.NewTicker(b.health.Controller.Interval())
	defer tick.Stop()
	for {
		select {
		case <-b.controlStop:
			return
		case <-tick.C:
			b.controlTick()
		}
	}
}

// controlTick gathers one Signals snapshot and forwards a refresh request
// when warranted. The send never blocks: refreshCh holds one pending
// request and a second would be redundant.
func (b *Broker) controlTick() {
	hc := b.health.CounterSnapshot()
	ts := b.health.Tracker.Snapshot()
	s := health.Signals{
		QuarantinedGroups: int(b.quarCount.Load()),
		TotalGroups:       int(b.groupCount.Load()),
		OpenBreakers:      ts.Open,
		HalfOpenBreakers:  ts.HalfOpen,
		Shed:              hc.Shed,
		Rejected:          hc.Rejected,
		Lost:              b.ctr.lost.Value(),
		Skipped:           hc.Skipped,
	}
	if b.health.Controller.Decide(s) {
		select {
		case b.refreshCh <- b.health.Controller.WarmIters():
		default:
		}
	}
}

// methodNote renders a decision method for trace spans.
func methodNote(m multicast.Method) string {
	switch m {
	case multicast.NetworkMulticast:
		return "multicast"
	case multicast.Broadcast:
		return "broadcast"
	default:
		return "unicast"
	}
}

// applyQuarantines drains pending quarantine requests from the fan-out
// workers and applies them to the engine (which only this goroutine may
// touch). Requests referencing groups that no longer exist — an
// auto-refresh may have shrunk the group count while the request was in
// flight — are dropped.
func (b *Broker) applyQuarantines() {
	for {
		select {
		case g := <-b.quarantineCh:
			if g < b.engine.NumGroups() && !b.engine.Quarantined(g) {
				b.engine.Quarantine(g)
			}
			b.quarCount.Store(int64(b.engine.NumQuarantined()))
		default:
			return
		}
	}
}

// requestQuarantine asks the decision stage to quarantine a group. The
// send never blocks (the decision goroutine may itself be blocked feeding
// fanoutCh); at-most-once per group is guaranteed by quarantineSent, and a
// full channel simply drops the request — a later failure will retry.
func (b *Broker) requestQuarantine(group int) {
	if group < 0 {
		return
	}
	if _, dup := b.quarantineSent.LoadOrStore(group, true); dup {
		return
	}
	b.ctr.quarantined.Add(1)
	select {
	case b.quarantineCh <- group:
	default:
		b.quarantineSent.Delete(group)
	}
}

// routePaths resolves each destination's primary routing path along the
// publisher's shortest-path tree. Runs on the decision goroutine (the SPT
// cache inside the model is not concurrency-safe).
func (b *Broker) routePaths(ev workload.Event, d core.Decision) map[topology.NodeID][]topology.NodeID {
	spt := b.engine.Model().SPT(ev.Pub)
	paths := make(map[topology.NodeID][]topology.NodeID)
	add := func(n topology.NodeID) {
		if _, ok := paths[n]; !ok {
			paths[n] = spt.PathTo(n)
		}
	}
	switch d.Method {
	case multicast.Broadcast:
		for n := range b.inboxes {
			add(n)
		}
	case multicast.NetworkMulticast:
		for _, n := range b.engine.Group(d.Group).Nodes {
			add(n)
		}
		for _, n := range d.Remainder {
			add(n)
		}
	default:
		for _, n := range d.Interested {
			add(n)
		}
	}
	return paths
}

// fanout places one copy per destination inbox. Each fully fanned-out
// event releases its admission slot — the point where the inflight bound
// stops counting it.
func (b *Broker) fanout() {
	defer b.fanoutWG.Done()
	for r := range b.fanoutCh {
		b.fanoutOne(r)
		if b.health != nil {
			b.health.Admission.Release()
		}
	}
}

// fanoutOne delivers one routed event to all its destinations.
func (b *Broker) fanoutOne(r routed) {
	if r.d.Method == multicast.Broadcast {
		// Flooding: every subscriber node receives a copy (non-subscriber
		// nodes have no inbox and are represented by waste accounting at
		// the cost level, not the delivery level).
		for n := range b.inboxes {
			b.deliver(r, n, Delivery{
				Event:      r.ev,
				Seq:        r.seq,
				Method:     multicast.Broadcast,
				Group:      -1,
				Interested: r.interested[n],
			})
		}
		return
	}
	if r.d.Method == multicast.NetworkMulticast {
		for _, n := range r.nodes {
			b.deliver(r, n, Delivery{
				Event:      r.ev,
				Seq:        r.seq,
				Method:     multicast.NetworkMulticast,
				Group:      r.d.Group,
				Interested: r.interested[n],
			})
		}
		for _, n := range r.d.Remainder {
			b.deliver(r, n, Delivery{
				Event:      r.ev,
				Seq:        r.seq,
				Method:     multicast.Unicast,
				Group:      -1,
				Interested: true,
			})
		}
		return
	}
	for _, n := range r.d.Interested {
		b.deliver(r, n, Delivery{
			Event:      r.ev,
			Seq:        r.seq,
			Method:     multicast.Unicast,
			Group:      -1,
			Interested: true,
		})
	}
}

// deliver places a copy in a node's inbox; unknown nodes (non-subscribers)
// are counted but have no inbox. Under fault injection it runs the
// reliability protocol.
func (b *Broker) deliver(r routed, n topology.NodeID, d Delivery) {
	d.born = r.t0
	d.trace = r.trace
	ch, ok := b.inboxes[n]
	if !ok {
		// A group may reference a node that stopped subscribing between
		// refreshes; count the waste, nothing to deliver to.
		b.ctr.deliveries.Add(1)
		if !d.Interested {
			b.ctr.wasted.Add(1)
		}
		return
	}
	if b.inj == nil {
		b.ctr.queueDepth.Observe(float64(len(ch)))
		ch <- d
		return
	}
	b.deliverReliable(r, n, ch, d)
}

// deliverReliable runs the retry → degrade → quarantine ladder for one
// delivery over the lossy fabric.
func (b *Broker) deliverReliable(r routed, n topology.NodeID, ch chan<- Delivery, d Delivery) {
	if b.health != nil && !b.health.Tracker.AllowDest(n) {
		// Open breaker: skip the destination outright instead of burning
		// the event's retry budget on a known-dead path. The routed group
		// stays quarantined until the destination recovers and the control
		// loop rebuilds.
		b.health.NoteSkip()
		r.trace.Add("breaker-skip", time.Now(), 0, int64(n), d.Group, 0, "open")
		if d.Group >= 0 {
			b.requestQuarantine(d.Group)
		}
		return
	}
	if b.inj.NodeDown(n, r.seq) {
		// Destination crashed: nothing to retry against. The loss is
		// expected (the completeness invariant covers live nodes only), but
		// a routed group with a dead member is degraded state — quarantine
		// it so future events unicast around the corpse.
		b.ctr.offline.Add(1)
		r.trace.Add("offline", time.Now(), 0, int64(n), d.Group, 0, "node down")
		if b.health != nil {
			b.health.Tracker.ReportFailure(n)
		}
		if d.Group >= 0 {
			b.requestQuarantine(d.Group)
		}
		return
	}

	// Primary path: bounded retries with exponential backoff + jitter,
	// capped by the event's shared retry budget.
	path := r.paths[n]
	attempt := 0
	for ; attempt <= b.rel.MaxRetries; attempt++ {
		if attempt > 0 {
			if r.budget.Add(-1) < 0 {
				r.trace.Add("degrade", time.Now(), 0, int64(n), d.Group, attempt, "budget-exhausted")
				break // event budget exhausted: degrade immediately
			}
			b.ctr.retries.Add(1)
			b.backoff(r.seq, n, attempt)
		}
		if !b.inj.DropAttempt(r.seq, n, attempt, path) {
			if b.health != nil {
				b.health.Tracker.ReportPath(path, true)
			}
			b.complete(r, n, ch, d, attempt)
			return
		}
		r.trace.Add("retry", time.Now(), 0, int64(n), d.Group, attempt, "dropped")
	}
	if b.health != nil {
		// The primary path exhausted its retries: every hop shares the
		// suspicion (the broker cannot tell which one dropped the copies).
		b.health.Tracker.ReportPath(path, false)
	}

	// Degraded: recompute a route with failed links removed and unicast
	// along it. LastResort attempts stand in for "retry until the peer is
	// declared dead", so live reachable nodes essentially never lose.
	alt := routing.DijkstraAvoid(b.graph, r.ev.Pub, b.inj.Blocked(r.seq))
	apath := alt.PathTo(n)
	if apath == nil {
		// Partitioned even after removing failed links from the route
		// computation: abandon and quarantine.
		r.trace.Add("abandon", time.Now(), 0, int64(n), d.Group, attempt, "partitioned")
		b.abandon(n, d)
		return
	}
	d.Degraded = true
	d.Method = multicast.Unicast
	r.trace.Add("degrade", time.Now(), 0, int64(n), d.Group, attempt, "alternate-path")
	for la := 0; la < b.rel.LastResort; la++ {
		if la > 0 {
			b.ctr.retries.Add(1)
			b.backoff(r.seq, n, attempt+la)
		}
		if !b.inj.DropAttempt(r.seq, n, attempt+la, apath) {
			b.ctr.degraded.Add(1)
			b.complete(r, n, ch, d, attempt+la)
			return
		}
	}
	r.trace.Add("abandon", time.Now(), 0, int64(n), d.Group, attempt+b.rel.LastResort, "last-resort exhausted")
	b.abandon(n, d)
}

// complete hands a successful (possibly retransmitted, possibly
// duplicated, possibly delayed) copy to the destination inbox.
func (b *Broker) complete(r routed, n topology.NodeID, ch chan<- Delivery, d Delivery, attempt int) {
	d.Attempt = attempt
	if attempt > 0 {
		b.ctr.redelivered.Add(1)
	}
	if delay := b.inj.Delay(r.seq, n); delay > 0 {
		time.Sleep(delay)
	}
	b.ctr.queueDepth.Observe(float64(len(ch)))
	ch <- d
	if b.inj.Duplicate(r.seq, n) {
		ch <- d // receiver-side dedup suppresses the copy
	}
}

// abandon records a delivery given up on for a live node and quarantines
// the routed group.
func (b *Broker) abandon(n topology.NodeID, d Delivery) {
	b.ctr.lost.Add(1)
	if b.health != nil {
		b.health.Tracker.ReportFailure(n)
	}
	if d.Group >= 0 {
		b.requestQuarantine(d.Group)
	}
}

// backoff sleeps the exponential backoff for the given retry attempt:
// BaseBackoff·2^(attempt-1) capped at MaxBackoff, scaled by a
// deterministic jitter in [0.5, 1.5).
func (b *Broker) backoff(seq int64, n topology.NodeID, attempt int) {
	d := b.rel.BaseBackoff
	for i := 1; i < attempt && d < b.rel.MaxBackoff; i++ {
		d *= 2
	}
	if d > b.rel.MaxBackoff {
		d = b.rel.MaxBackoff
	}
	jitter := 0.5 + b.inj.Jitter(seq, n, attempt)
	wait := time.Duration(float64(d) * jitter)
	time.Sleep(wait)
	b.ctr.backoffWait.ObserveDuration(wait)
}

// consume drains one node's inbox, dedups on sequence number, and accounts
// deliveries.
func (b *Broker) consume(n topology.NodeID, ch <-chan Delivery) {
	defer b.consumerWG.Done()
	pn := b.perNode[n]
	var seen map[int64]bool
	if b.inj != nil {
		seen = make(map[int64]bool)
	}
	for d := range ch {
		if seen != nil {
			if seen[d.Seq] {
				b.ctr.deduped.Add(1)
				d.trace.Add("dedup", time.Now(), 0, int64(n), d.Group, d.Attempt, "")
				continue
			}
			seen[d.Seq] = true
		}
		b.ctr.deliveries.Add(1)
		pn.Add(1)
		if !d.born.IsZero() {
			lat := time.Since(d.born)
			b.ctr.deliverLatency.ObserveDuration(lat)
			if b.health != nil {
				b.health.Tracker.ReportSuccess(n, lat)
			}
		}
		d.trace.Add("ack", time.Now(), 0, int64(n), d.Group, d.Attempt, "")
		if !d.Interested {
			b.ctr.wasted.Add(1)
		}
		if b.observer != nil {
			b.observer(n, d)
		}
	}
}
