// Package broker turns the Engine's per-event delivery *decisions* into
// actual message deliveries over an in-process fabric: every network node
// gets an inbox goroutine, publications flow through a decision stage that
// owns the Engine, and a fan-out worker pool places one copy of each event
// in every destination inbox (group members, remainder top-ups, or unicast
// targets).
//
// The broker exists to validate delivery *semantics* end to end — the cost
// model in internal/sim prices paths, this package checks who actually
// receives what:
//
//   - completeness: every live subscriber interested in an event receives
//     it, exactly once;
//   - single delivery: no node receives the same event twice (receiver-side
//     dedup turns at-least-once retransmission into exactly-once
//     accounting);
//   - waste: deliveries to uninterested group members are counted, and a
//     No-Loss engine produces exactly zero of them.
//
// With a faults.Injector attached (WithFaults), the broker layers a
// reliability protocol over the lossy fabric:
//
//   - every publication carries a sequence number; receivers dedup on it;
//   - dropped attempts are retried with exponential backoff + deterministic
//     jitter, bounded per delivery (MaxRetries) and per event (RetryBudget);
//   - when the primary route exhausts its retries, the delivery degrades to
//     a unicast top-up along an alternate path computed by a Dijkstra
//     recompute with failed links removed;
//   - when even the degraded path fails — destination crashed or
//     partitioned — the delivery is abandoned and the routed group is
//     quarantined, so the Engine's decision stage falls back to unicast for
//     its members until the next Refresh.
//
// Pipeline shape (all stdlib, structured shutdown):
//
//	Publish() → publishCh → decision goroutine (owns *core.Engine)
//	          → fanoutCh  → N fan-out workers → per-node inboxes
//	          → per-node consumer goroutines → Stats
//
// Fan-out workers report persistent failures back to the decision goroutine
// over a non-blocking quarantine channel; the decision goroutine is the only
// one that touches the Engine.
package broker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/multicast"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ErrClosed is returned by Publish after Close.
var ErrClosed = errors.New("broker: publish after close")

// Delivery is one message copy arriving at a node.
type Delivery struct {
	Event workload.Event
	// Seq is the publication sequence number assigned by the decision
	// stage; receivers dedup on it.
	Seq    int64
	Method multicast.Method
	Group  int // -1 for unicast deliveries
	// Interested reports whether the receiving node had a matching
	// subscription (false ⇒ wasted delivery).
	Interested bool
	// Attempt is the delivery attempt that succeeded (0 = first try,
	// > 0 ⇒ the copy is a successful retransmission).
	Attempt int
	// Degraded marks a copy that arrived via the alternate-path unicast
	// top-up after the primary route exhausted its retries.
	Degraded bool

	// born is the decision-stage timestamp; the consumer turns it into the
	// end-to-end delivery-latency histogram.
	born time.Time
	// trace is the event's sampled lifecycle trace, nil when untraced.
	trace *telemetry.EventTrace
}

// routed couples a decided event with its destinations.
type routed struct {
	seq        int64
	ev         workload.Event
	d          core.Decision
	interested map[topology.NodeID]bool
	// t0 stamps the decision; delivery latency is measured from here.
	t0 time.Time
	// trace is the event's sampled lifecycle trace, nil when untraced.
	trace *telemetry.EventTrace
	// paths maps each destination to its primary routing path (publisher's
	// SPT); only populated under fault injection.
	paths map[topology.NodeID][]topology.NodeID
	// budget is the event's remaining retry allowance, shared across
	// destinations.
	budget *atomic.Int64
}

// Stats aggregates delivery accounting. Snapshot via Broker.Stats; the
// snapshot is safe to take while the broker is running.
type Stats struct {
	Published  int64
	Multicast  int64 // events delivered via a group
	Unicast    int64 // events delivered by unicast only
	Broadcast  int64 // events flooded (DynamicMethod engines only)
	Deliveries int64 // message copies accepted at inboxes (post-dedup)
	Wasted     int64 // copies delivered to uninterested nodes

	// Reliability counters — all zero without fault injection.
	Retries     int64 // retransmission attempts after a dropped attempt
	Redelivered int64 // deliveries that succeeded only after ≥ 1 retry
	Deduped     int64 // duplicate copies suppressed at receivers
	Degraded    int64 // deliveries re-routed via alternate-path unicast
	Quarantined int64 // groups quarantined after persistent failures
	Offline     int64 // deliveries skipped because the node was crashed
	Lost        int64 // deliveries abandoned for live nodes (violations)

	PerNode map[topology.NodeID]int64
}

// metrics caches the broker's telemetry handles so the delivery hot path
// never touches a registry map: every counter bump is one lock-free atomic
// add on a pre-resolved instrument. Stats() is a thin view over these, so
// the registry is the single source of truth for broker accounting.
type metrics struct {
	published  *telemetry.Counter
	multicast  *telemetry.Counter
	unicast    *telemetry.Counter
	broadcast  *telemetry.Counter
	deliveries *telemetry.Counter
	wasted     *telemetry.Counter

	retries     *telemetry.Counter
	redelivered *telemetry.Counter
	deduped     *telemetry.Counter
	degraded    *telemetry.Counter
	quarantined *telemetry.Counter
	offline     *telemetry.Counter
	lost        *telemetry.Counter

	// deliverLatency is decision→inbox-accept wall time per copy, ns.
	deliverLatency *telemetry.Histogram
	// backoffWait is time slept in retry backoff, ns.
	backoffWait *telemetry.Histogram
	// queueDepth samples the destination inbox depth at each enqueue.
	queueDepth *telemetry.Histogram
}

func newMetrics(s *telemetry.Scope) metrics {
	return metrics{
		published:      s.Counter("published"),
		multicast:      s.Counter("multicast_events"),
		unicast:        s.Counter("unicast_events"),
		broadcast:      s.Counter("broadcast_events"),
		deliveries:     s.Counter("deliveries"),
		wasted:         s.Counter("wasted"),
		retries:        s.Counter("retries"),
		redelivered:    s.Counter("redelivered"),
		deduped:        s.Counter("deduped"),
		degraded:       s.Counter("degraded"),
		quarantined:    s.Counter("quarantined"),
		offline:        s.Counter("offline"),
		lost:           s.Counter("lost"),
		deliverLatency: s.Histogram("deliver_latency_ns", telemetry.LatencyBuckets()),
		backoffWait:    s.Histogram("backoff_wait_ns", telemetry.LatencyBuckets()),
		queueDepth:     s.Histogram("queue_depth", telemetry.LinearBuckets(0, 2, 16)),
	}
}

// ReliabilityConfig tunes the retry protocol used under fault injection.
type ReliabilityConfig struct {
	// MaxRetries is the retransmission cap per delivery on the primary
	// path (default 4).
	MaxRetries int
	// LastResort is the retransmission cap on the degraded alternate path
	// (default 16) — the bounded stand-in for "retry until the peer is
	// declared dead".
	LastResort int
	// RetryBudget caps total primary-path retries per event across all
	// destinations (default 512; ≤ 0 means the default). Exhausting it
	// sends remaining failing deliveries straight to the degraded path.
	RetryBudget int64
	// BaseBackoff is the first retry's backoff (default 50µs); backoff
	// doubles per attempt up to MaxBackoff (default 2ms), with ±50%
	// deterministic jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

func (rc *ReliabilityConfig) setDefaults() {
	if rc.MaxRetries <= 0 {
		rc.MaxRetries = 4
	}
	if rc.LastResort <= 0 {
		rc.LastResort = 32
	}
	if rc.RetryBudget <= 0 {
		rc.RetryBudget = 512
	}
	if rc.BaseBackoff <= 0 {
		rc.BaseBackoff = 50 * time.Microsecond
	}
	if rc.MaxBackoff <= 0 {
		rc.MaxBackoff = 2 * time.Millisecond
	}
}

// Broker is the delivery fabric. Create with New, feed with Publish, stop
// with Close. Safe for concurrent Publish calls.
type Broker struct {
	engine  *core.Engine
	graph   *topology.Graph
	workers int

	inj *faults.Injector
	rel ReliabilityConfig

	publishCh    chan workload.Event
	fanoutCh     chan routed
	quarantineCh chan int
	inboxes      map[topology.NodeID]chan Delivery

	// observer, when set, sees every accepted delivery after stats
	// accounting.
	observer func(topology.NodeID, Delivery)

	// reg owns the broker's metrics; private unless WithTelemetry supplies
	// a shared registry. tracer is nil unless WithTracer enables tracing.
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	ctr    metrics
	// perNode shards delivery counts one atomic per consumer, so the hot
	// path never contends on a shared map.
	perNode map[topology.NodeID]*atomic.Int64
	// quarantineSent dedups quarantine requests per group.
	quarantineSent sync.Map

	closeMu sync.RWMutex
	closed  bool

	decisionWG sync.WaitGroup
	fanoutWG   sync.WaitGroup
	consumerWG sync.WaitGroup
	closeOnce  sync.Once
}

// Option customises a Broker.
type Option func(*Broker)

// WithWorkers sets the fan-out worker count (default 4).
func WithWorkers(n int) Option {
	return func(b *Broker) { b.workers = n }
}

// WithObserver registers a callback invoked for every accepted delivery
// (after accounting and dedup). The callback runs on consumer goroutines
// and must be safe for concurrent use.
func WithObserver(fn func(topology.NodeID, Delivery)) Option {
	return func(b *Broker) { b.observer = fn }
}

// WithFaults attaches a fault injector and enables the reliability
// protocol (sequence numbers, dedup, retries, degradation, quarantine).
func WithFaults(inj *faults.Injector) Option {
	return func(b *Broker) { b.inj = inj }
}

// WithReliability overrides the retry protocol's tuning. Only meaningful
// together with WithFaults.
func WithReliability(rc ReliabilityConfig) Option {
	return func(b *Broker) { b.rel = rc }
}

// WithTelemetry publishes the broker's metrics into a shared registry
// (scope "broker") instead of a private one, so exporters and the HTTP
// server see them. Stats() reads the same instruments either way.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(b *Broker) { b.reg = reg }
}

// WithTracer enables per-event lifecycle tracing: each sampled publication
// accumulates decide/enqueue/attempt/deliver spans into the tracer's ring.
func WithTracer(tr *telemetry.Tracer) Option {
	return func(b *Broker) { b.tracer = tr }
}

// New starts a broker over an engine. The engine must not be used by the
// caller until Close returns (the decision goroutine owns it).
func New(engine *core.Engine, opts ...Option) (*Broker, error) {
	if engine == nil {
		return nil, fmt.Errorf("broker: nil engine")
	}
	b := &Broker{
		engine:    engine,
		graph:     engine.Model().Graph(),
		workers:   4,
		publishCh: make(chan workload.Event, 64),
		fanoutCh:  make(chan routed, 64),
		inboxes:   make(map[topology.NodeID]chan Delivery),
	}
	for _, opt := range opts {
		opt(b)
	}
	if b.workers < 1 {
		return nil, fmt.Errorf("broker: %d workers", b.workers)
	}
	b.rel.setDefaults()
	if b.reg == nil {
		b.reg = telemetry.NewRegistry()
	}
	b.ctr = newMetrics(b.reg.Scope("broker"))
	b.quarantineCh = make(chan int, 128)

	// One inbox + consumer per subscriber node. Both maps are fully
	// populated before any consumer starts: consumers read them
	// concurrently and must only ever see the final, read-only state.
	b.perNode = make(map[topology.NodeID]*atomic.Int64, len(engine.World().SubscriberNodes))
	for _, n := range engine.World().SubscriberNodes {
		b.inboxes[n] = make(chan Delivery, 32)
		b.perNode[n] = new(atomic.Int64)
	}
	for n, ch := range b.inboxes {
		b.consumerWG.Add(1)
		go b.consume(n, ch)
	}

	b.decisionWG.Add(1)
	go b.decide()

	for i := 0; i < b.workers; i++ {
		b.fanoutWG.Add(1)
		go b.fanout()
	}
	return b, nil
}

// Publish enqueues one event for delivery. It blocks when the pipeline is
// saturated and returns ErrClosed (instead of panicking) if the broker has
// been closed. Safe to race with Close.
func (b *Broker) Publish(ev workload.Event) error {
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	b.publishCh <- ev
	return nil
}

// Close drains the pipeline and stops all goroutines. Safe to call more
// than once and concurrently with Publish; Publish calls that lose the
// race return ErrClosed.
func (b *Broker) Close() {
	b.closeOnce.Do(func() {
		b.closeMu.Lock()
		b.closed = true
		b.closeMu.Unlock()
		close(b.publishCh)
		b.decisionWG.Wait()
		close(b.fanoutCh)
		b.fanoutWG.Wait()
		for _, ch := range b.inboxes {
			close(ch)
		}
		b.consumerWG.Wait()
	})
}

// Stats returns a snapshot of the accounting so far (call after Close for
// final numbers). It is a thin view over the telemetry registry: each field
// is an atomic load of the corresponding "broker"-scope counter, so
// successive snapshots are monotone per counter even mid-run.
func (b *Broker) Stats() Stats {
	out := Stats{
		Published:   b.ctr.published.Value(),
		Multicast:   b.ctr.multicast.Value(),
		Unicast:     b.ctr.unicast.Value(),
		Broadcast:   b.ctr.broadcast.Value(),
		Deliveries:  b.ctr.deliveries.Value(),
		Wasted:      b.ctr.wasted.Value(),
		Retries:     b.ctr.retries.Value(),
		Redelivered: b.ctr.redelivered.Value(),
		Deduped:     b.ctr.deduped.Value(),
		Degraded:    b.ctr.degraded.Value(),
		Quarantined: b.ctr.quarantined.Value(),
		Offline:     b.ctr.offline.Value(),
		Lost:        b.ctr.lost.Value(),
		PerNode:     make(map[topology.NodeID]int64, len(b.perNode)),
	}
	for n, c := range b.perNode {
		out.PerNode[n] = c.Load()
	}
	return out
}

// Telemetry exposes the broker's metrics registry — the shared one passed
// via WithTelemetry, or the private default.
func (b *Broker) Telemetry() *telemetry.Registry { return b.reg }

// decide is the single goroutine owning the engine.
func (b *Broker) decide() {
	defer b.decisionWG.Done()
	var seq int64
	for ev := range b.publishCh {
		b.applyQuarantines()
		trace := b.tracer.Begin(seq)
		t0 := time.Now()
		d := b.engine.Decide(ev)
		trace.Add("decide", t0, time.Since(t0), -1, d.Group, 0, methodNote(d.Method))
		interested := make(map[topology.NodeID]bool, len(d.Interested))
		for _, n := range d.Interested {
			interested[n] = true
		}
		b.ctr.published.Add(1)
		switch d.Method {
		case multicast.NetworkMulticast:
			b.ctr.multicast.Add(1)
		case multicast.Broadcast:
			b.ctr.broadcast.Add(1)
		default:
			b.ctr.unicast.Add(1)
		}
		r := routed{seq: seq, ev: ev, d: d, interested: interested, t0: t0, trace: trace}
		if b.inj != nil {
			r.paths = b.routePaths(ev, d)
			r.budget = new(atomic.Int64)
			r.budget.Store(b.rel.RetryBudget)
		}
		seq++
		enq := time.Now()
		b.fanoutCh <- r
		trace.Add("enqueue", enq, time.Since(enq), -1, d.Group, 0, "")
	}
	b.applyQuarantines()
}

// methodNote renders a decision method for trace spans.
func methodNote(m multicast.Method) string {
	switch m {
	case multicast.NetworkMulticast:
		return "multicast"
	case multicast.Broadcast:
		return "broadcast"
	default:
		return "unicast"
	}
}

// applyQuarantines drains pending quarantine requests from the fan-out
// workers and applies them to the engine (which only this goroutine may
// touch).
func (b *Broker) applyQuarantines() {
	for {
		select {
		case g := <-b.quarantineCh:
			if !b.engine.Quarantined(g) {
				b.engine.Quarantine(g)
			}
		default:
			return
		}
	}
}

// requestQuarantine asks the decision stage to quarantine a group. The
// send never blocks (the decision goroutine may itself be blocked feeding
// fanoutCh); at-most-once per group is guaranteed by quarantineSent, and a
// full channel simply drops the request — a later failure will retry.
func (b *Broker) requestQuarantine(group int) {
	if group < 0 {
		return
	}
	if _, dup := b.quarantineSent.LoadOrStore(group, true); dup {
		return
	}
	b.ctr.quarantined.Add(1)
	select {
	case b.quarantineCh <- group:
	default:
		b.quarantineSent.Delete(group)
	}
}

// routePaths resolves each destination's primary routing path along the
// publisher's shortest-path tree. Runs on the decision goroutine (the SPT
// cache inside the model is not concurrency-safe).
func (b *Broker) routePaths(ev workload.Event, d core.Decision) map[topology.NodeID][]topology.NodeID {
	spt := b.engine.Model().SPT(ev.Pub)
	paths := make(map[topology.NodeID][]topology.NodeID)
	add := func(n topology.NodeID) {
		if _, ok := paths[n]; !ok {
			paths[n] = spt.PathTo(n)
		}
	}
	switch d.Method {
	case multicast.Broadcast:
		for n := range b.inboxes {
			add(n)
		}
	case multicast.NetworkMulticast:
		for _, n := range b.engine.Group(d.Group).Nodes {
			add(n)
		}
		for _, n := range d.Remainder {
			add(n)
		}
	default:
		for _, n := range d.Interested {
			add(n)
		}
	}
	return paths
}

// fanout places one copy per destination inbox.
func (b *Broker) fanout() {
	defer b.fanoutWG.Done()
	for r := range b.fanoutCh {
		if r.d.Method == multicast.Broadcast {
			// Flooding: every subscriber node receives a copy (non-subscriber
			// nodes have no inbox and are represented by waste accounting at
			// the cost level, not the delivery level).
			for n := range b.inboxes {
				b.deliver(r, n, Delivery{
					Event:      r.ev,
					Seq:        r.seq,
					Method:     multicast.Broadcast,
					Group:      -1,
					Interested: r.interested[n],
				})
			}
			continue
		}
		if r.d.Method == multicast.NetworkMulticast {
			info := b.engine.Group(r.d.Group)
			for _, n := range info.Nodes {
				b.deliver(r, n, Delivery{
					Event:      r.ev,
					Seq:        r.seq,
					Method:     multicast.NetworkMulticast,
					Group:      r.d.Group,
					Interested: r.interested[n],
				})
			}
			for _, n := range r.d.Remainder {
				b.deliver(r, n, Delivery{
					Event:      r.ev,
					Seq:        r.seq,
					Method:     multicast.Unicast,
					Group:      -1,
					Interested: true,
				})
			}
			continue
		}
		for _, n := range r.d.Interested {
			b.deliver(r, n, Delivery{
				Event:      r.ev,
				Seq:        r.seq,
				Method:     multicast.Unicast,
				Group:      -1,
				Interested: true,
			})
		}
	}
}

// deliver places a copy in a node's inbox; unknown nodes (non-subscribers)
// are counted but have no inbox. Under fault injection it runs the
// reliability protocol.
func (b *Broker) deliver(r routed, n topology.NodeID, d Delivery) {
	d.born = r.t0
	d.trace = r.trace
	ch, ok := b.inboxes[n]
	if !ok {
		// A group may reference a node that stopped subscribing between
		// refreshes; count the waste, nothing to deliver to.
		b.ctr.deliveries.Add(1)
		if !d.Interested {
			b.ctr.wasted.Add(1)
		}
		return
	}
	if b.inj == nil {
		b.ctr.queueDepth.Observe(float64(len(ch)))
		ch <- d
		return
	}
	b.deliverReliable(r, n, ch, d)
}

// deliverReliable runs the retry → degrade → quarantine ladder for one
// delivery over the lossy fabric.
func (b *Broker) deliverReliable(r routed, n topology.NodeID, ch chan<- Delivery, d Delivery) {
	if b.inj.NodeDown(n, r.seq) {
		// Destination crashed: nothing to retry against. The loss is
		// expected (the completeness invariant covers live nodes only), but
		// a routed group with a dead member is degraded state — quarantine
		// it so future events unicast around the corpse.
		b.ctr.offline.Add(1)
		r.trace.Add("offline", time.Now(), 0, int64(n), d.Group, 0, "node down")
		if d.Group >= 0 {
			b.requestQuarantine(d.Group)
		}
		return
	}

	// Primary path: bounded retries with exponential backoff + jitter,
	// capped by the event's shared retry budget.
	path := r.paths[n]
	attempt := 0
	for ; attempt <= b.rel.MaxRetries; attempt++ {
		if attempt > 0 {
			if r.budget.Add(-1) < 0 {
				r.trace.Add("degrade", time.Now(), 0, int64(n), d.Group, attempt, "budget-exhausted")
				break // event budget exhausted: degrade immediately
			}
			b.ctr.retries.Add(1)
			b.backoff(r.seq, n, attempt)
		}
		if !b.inj.DropAttempt(r.seq, n, attempt, path) {
			b.complete(r, n, ch, d, attempt)
			return
		}
		r.trace.Add("retry", time.Now(), 0, int64(n), d.Group, attempt, "dropped")
	}

	// Degraded: recompute a route with failed links removed and unicast
	// along it. LastResort attempts stand in for "retry until the peer is
	// declared dead", so live reachable nodes essentially never lose.
	alt := routing.DijkstraAvoid(b.graph, r.ev.Pub, b.inj.Blocked(r.seq))
	apath := alt.PathTo(n)
	if apath == nil {
		// Partitioned even after removing failed links from the route
		// computation: abandon and quarantine.
		r.trace.Add("abandon", time.Now(), 0, int64(n), d.Group, attempt, "partitioned")
		b.abandon(n, d)
		return
	}
	d.Degraded = true
	d.Method = multicast.Unicast
	r.trace.Add("degrade", time.Now(), 0, int64(n), d.Group, attempt, "alternate-path")
	for la := 0; la < b.rel.LastResort; la++ {
		if la > 0 {
			b.ctr.retries.Add(1)
			b.backoff(r.seq, n, attempt+la)
		}
		if !b.inj.DropAttempt(r.seq, n, attempt+la, apath) {
			b.ctr.degraded.Add(1)
			b.complete(r, n, ch, d, attempt+la)
			return
		}
	}
	r.trace.Add("abandon", time.Now(), 0, int64(n), d.Group, attempt+b.rel.LastResort, "last-resort exhausted")
	b.abandon(n, d)
}

// complete hands a successful (possibly retransmitted, possibly
// duplicated, possibly delayed) copy to the destination inbox.
func (b *Broker) complete(r routed, n topology.NodeID, ch chan<- Delivery, d Delivery, attempt int) {
	d.Attempt = attempt
	if attempt > 0 {
		b.ctr.redelivered.Add(1)
	}
	if delay := b.inj.Delay(r.seq, n); delay > 0 {
		time.Sleep(delay)
	}
	b.ctr.queueDepth.Observe(float64(len(ch)))
	ch <- d
	if b.inj.Duplicate(r.seq, n) {
		ch <- d // receiver-side dedup suppresses the copy
	}
}

// abandon records a delivery given up on for a live node and quarantines
// the routed group.
func (b *Broker) abandon(n topology.NodeID, d Delivery) {
	b.ctr.lost.Add(1)
	if d.Group >= 0 {
		b.requestQuarantine(d.Group)
	}
}

// backoff sleeps the exponential backoff for the given retry attempt:
// BaseBackoff·2^(attempt-1) capped at MaxBackoff, scaled by a
// deterministic jitter in [0.5, 1.5).
func (b *Broker) backoff(seq int64, n topology.NodeID, attempt int) {
	d := b.rel.BaseBackoff
	for i := 1; i < attempt && d < b.rel.MaxBackoff; i++ {
		d *= 2
	}
	if d > b.rel.MaxBackoff {
		d = b.rel.MaxBackoff
	}
	jitter := 0.5 + b.inj.Jitter(seq, n, attempt)
	wait := time.Duration(float64(d) * jitter)
	time.Sleep(wait)
	b.ctr.backoffWait.ObserveDuration(wait)
}

// consume drains one node's inbox, dedups on sequence number, and accounts
// deliveries.
func (b *Broker) consume(n topology.NodeID, ch <-chan Delivery) {
	defer b.consumerWG.Done()
	pn := b.perNode[n]
	var seen map[int64]bool
	if b.inj != nil {
		seen = make(map[int64]bool)
	}
	for d := range ch {
		if seen != nil {
			if seen[d.Seq] {
				b.ctr.deduped.Add(1)
				d.trace.Add("dedup", time.Now(), 0, int64(n), d.Group, d.Attempt, "")
				continue
			}
			seen[d.Seq] = true
		}
		b.ctr.deliveries.Add(1)
		pn.Add(1)
		if !d.born.IsZero() {
			b.ctr.deliverLatency.ObserveDuration(time.Since(d.born))
		}
		d.trace.Add("ack", time.Now(), 0, int64(n), d.Group, d.Attempt, "")
		if !d.Interested {
			b.ctr.wasted.Add(1)
		}
		if b.observer != nil {
			b.observer(n, d)
		}
	}
}
