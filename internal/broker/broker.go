// Package broker turns the Engine's per-event delivery *decisions* into
// actual message deliveries over an in-process fabric: every network node
// gets an inbox goroutine, publications flow through a sharded decision
// plane, and a fan-out worker pool places one copy of each event in every
// destination inbox (group members, remainder top-ups, or unicast
// targets).
//
// The broker exists to validate delivery *semantics* end to end — the cost
// model in internal/sim prices paths, this package checks who actually
// receives what:
//
//   - completeness: every live subscriber interested in an event receives
//     it, exactly once;
//   - single delivery: no node receives the same event twice (receiver-side
//     dedup turns at-least-once retransmission into exactly-once
//     accounting);
//   - waste: deliveries to uninterested group members are counted, and a
//     No-Loss engine produces exactly zero of them.
//
// # Snapshot decision plane
//
// Decisions are served RCU-style. The engine builds an immutable
// core.DecisionSnapshot (cloned subscription index, group tables,
// quarantine set); the broker publishes it through an atomic pointer and N
// decision workers (default GOMAXPROCS) take lock-free loads, so Decide
// throughput scales with cores while decisions stay byte-identical per
// snapshot. All engine *mutations* — subscription churn via
// Broker.Subscribe/Unsubscribe, quarantines reported by fan-out workers,
// and controller-triggered auto-refreshes — run on a single writer
// goroutine that mutates the private engine and swaps the snapshot
// atomically. Each publication captures the snapshot current at Publish
// and drains against it; a new subscriber is covered from the moment Subscribe
// returns (the swap happens before the reply), topped up by unicast until
// the next group rebuild folds it in — the paper's never-lose invariant.
//
// Pipeline shape (all stdlib, structured shutdown):
//
//	Publish() → seq assignment → publishCh → N decision workers (snapshot reads)
//	          → fanoutCh → M fan-out workers → per-node inboxes
//	          → per-node consumer goroutines → Stats
//	Subscribe()/Unsubscribe()/quarantines/auto-refresh → writer goroutine
//	          → engine mutation → snapshot swap
//
// With a faults.Injector attached (WithFaults), the broker layers a
// reliability protocol over the lossy fabric:
//
//   - every publication carries a sequence number (assigned at Publish, so
//     it orders events even across concurrent decision workers); receivers
//     dedup on it within a sliding window;
//   - dropped attempts are retried with exponential backoff + deterministic
//     jitter, bounded per delivery (MaxRetries) and per event (RetryBudget);
//   - when the primary route exhausts its retries, the delivery degrades to
//     a unicast top-up along an alternate path computed by a Dijkstra
//     recompute with failed links removed;
//   - when even the degraded path fails — destination crashed or
//     partitioned — the delivery is abandoned and the routed group is
//     quarantined, so the decision plane falls back to unicast for its
//     members until the next Refresh.
//
// With a health.Health attached (WithHealth), the broker closes the
// remaining feedback loops:
//
//   - Publish passes through admission control — a token-bucket rate
//     limiter plus a MaxInflight semaphore over the whole pipeline — and
//     under the RejectNewest/ShedLowFanout policies returns
//     health.ErrOverloaded instead of queueing unbounded work; each
//     admitted event carries a strict one-shot release token;
//   - each destination gets a circuit breaker fed by delivery outcomes and
//     ack latencies; deliveries to an open breaker are skipped outright
//     (and the routed group quarantined) instead of burning retries on a
//     known-dead path, with jittered probes re-closing the breaker once
//     the destination recovers;
//   - a control-loop goroutine watches quarantine fraction, breaker state
//     and shed/loss counts, and — with hysteresis — asks the writer
//     goroutine to run an automatic Engine.Refresh, un-quarantining
//     recovered groups without operator intervention.
package broker

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/multicast"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ErrClosed is returned by Publish, Subscribe and Unsubscribe after Close.
var ErrClosed = errors.New("broker: publish after close")

// Delivery is one message copy arriving at a node.
type Delivery struct {
	Event workload.Event
	// Seq is the publication sequence number assigned at Publish;
	// receivers dedup on it.
	Seq    int64
	Method multicast.Method
	Group  int // -1 for unicast deliveries
	// Interested reports whether the receiving node had a matching
	// subscription (false ⇒ wasted delivery).
	Interested bool
	// Attempt is the delivery attempt that succeeded (0 = first try,
	// > 0 ⇒ the copy is a successful retransmission).
	Attempt int
	// Degraded marks a copy that arrived via the alternate-path unicast
	// top-up after the primary route exhausted its retries.
	Degraded bool

	// born is the decision-stage timestamp; the consumer turns it into the
	// end-to-end delivery-latency histogram.
	born time.Time
	// trace is the event's sampled lifecycle trace, nil when untraced.
	trace *telemetry.EventTrace
	// pending counts this publication's copies still in flight (durable
	// brokers only); the consumer that retires the last copy removes the
	// publication from the checkpoint carry-forward set.
	pending *atomic.Int64
}

// queued is one admitted publication in flight to the decision plane.
type queued struct {
	seq int64
	ev  workload.Event
	// snap is the decision snapshot current at Publish time. Deciding
	// against it (rather than re-loading at decide time) pins the
	// never-lose contract to the Publish call: an event accepted while a
	// subscription was live is matched against a snapshot containing it,
	// even if the subscriber leaves before the queue drains.
	snap *core.DecisionSnapshot
	// tok is the event's admission token (nil without WithHealth);
	// released exactly once when the event leaves the pipeline.
	tok *health.Token
	// replay marks a recovery redelivery: the publication was already
	// journaled and counted by a previous incarnation, so the decision
	// stage skips the published/method counters for it.
	replay bool
}

// decideScratch is a decision worker's reusable per-event buffer set: the
// core decide scratch (R*-tree hits, interested nodes, remainder) plus the
// broadcast-target slice. Pooled so the decide plane allocates nothing per
// event in steady state: decideOne acquires one, the Decision it carries
// aliases its buffers, and the fan-out worker that finishes the event
// returns it to the pool. Never pooled when a decision observer is
// attached — the observer reads the Decision after the fan-out hand-off,
// which would race the next event's reuse.
type decideScratch struct {
	dec   core.DecideScratch
	nodes []topology.NodeID
}

var decideScratchPool = sync.Pool{New: func() any { return new(decideScratch) }}

// interestedIn reports whether n had a matching subscription, by binary
// search over the decision's sorted interested list — replacing a per-event
// map build on the decide hot path.
func interestedIn(d *core.Decision, n topology.NodeID) bool {
	lo, hi := 0, len(d.Interested)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.Interested[mid] < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(d.Interested) && d.Interested[lo] == n
}

// routed couples a decided event with its destinations.
type routed struct {
	seq int64
	ev  workload.Event
	d   core.Decision
	// scratch is the pooled buffer set backing d's slices (and nodes, for
	// broadcasts); the fan-out worker that retires the event returns it.
	// Nil when the decision was allocated fresh (observer attached).
	scratch *decideScratch
	// t0 stamps the decision; delivery latency is measured from here.
	t0 time.Time
	// trace is the event's sampled lifecycle trace, nil when untraced.
	trace *telemetry.EventTrace
	// tok is the admission token carried from Publish.
	tok *health.Token
	// nodes are the delivery targets beyond Remainder/Interested: the
	// routed group's members (NetworkMulticast) or every inbox node
	// (Broadcast), captured at decision time from the snapshot so fan-out
	// never reads mutable state. Read-only.
	nodes []topology.NodeID
	// paths maps each destination to its primary routing path (publisher's
	// SPT); only populated under fault injection.
	paths map[topology.NodeID][]topology.NodeID
	// budget is the event's remaining retry allowance, shared across
	// destinations.
	budget *atomic.Int64
	// pending refcounts the in-flight copies for durable brokers: it
	// starts at 1 (the fan-out stage itself), gains 1 per inbox send, and
	// the publication leaves the in-flight set when it hits zero.
	pending *atomic.Int64
}

// Stats aggregates delivery accounting. Snapshot via Broker.Stats; the
// snapshot is safe to take while the broker is running.
type Stats struct {
	Published  int64
	Multicast  int64 // events delivered via a group
	Unicast    int64 // events delivered by unicast only
	Broadcast  int64 // events flooded (DynamicMethod engines only)
	Deliveries int64 // message copies accepted at inboxes (post-dedup)
	Wasted     int64 // copies delivered to uninterested nodes

	// Churn / snapshot counters.
	Subscribes    int64 // live subscriptions added via Broker.Subscribe
	Unsubscribes  int64 // live subscriptions removed via Broker.Unsubscribe
	SnapshotSwaps int64 // decision-snapshot publications since start

	// Reliability counters — all zero without fault injection.
	Retries     int64 // retransmission attempts after a dropped attempt
	Redelivered int64 // deliveries that succeeded only after ≥ 1 retry
	Deduped     int64 // duplicate copies suppressed at receivers
	Degraded    int64 // deliveries re-routed via alternate-path unicast
	Quarantined int64 // groups quarantined after persistent failures
	Offline     int64 // deliveries skipped because the node was crashed
	Lost        int64 // deliveries abandoned for live nodes (violations)

	// Overload / self-healing counters — all zero without WithHealth.
	Shed            int64 // decided events dropped by ShedLowFanout
	Rejected        int64 // publishes refused with health.ErrOverloaded
	RateLimited     int64 // rejections specifically from the token bucket
	ReleaseSpurious int64 // double-releases caught by strict admission tokens
	BreakerOpens    int64 // breaker open transitions
	BreakerSkipped  int64 // deliveries skipped on an open breaker
	Probes          int64 // half-open probe deliveries admitted
	AutoRefreshes   int64 // automatic engine refreshes triggered

	PerNode map[topology.NodeID]int64
}

// metrics caches the broker's telemetry handles so the delivery hot path
// never touches a registry map: every counter bump is one lock-free atomic
// add on a pre-resolved instrument. Stats() is a thin view over these, so
// the registry is the single source of truth for broker accounting.
type metrics struct {
	published  *telemetry.Counter
	multicast  *telemetry.Counter
	unicast    *telemetry.Counter
	broadcast  *telemetry.Counter
	deliveries *telemetry.Counter
	wasted     *telemetry.Counter

	subscribes   *telemetry.Counter
	unsubscribes *telemetry.Counter
	swaps        *telemetry.Counter
	snapVersion  *telemetry.Gauge
	// snapAge is the replaced snapshot's service lifetime at each swap, ns.
	snapAge *telemetry.Histogram

	retries     *telemetry.Counter
	redelivered *telemetry.Counter
	deduped     *telemetry.Counter
	degraded    *telemetry.Counter
	quarantined *telemetry.Counter
	offline     *telemetry.Counter
	lost        *telemetry.Counter

	// deliverLatency is decision→inbox-accept wall time per copy, ns.
	deliverLatency *telemetry.Histogram
	// backoffWait is time slept in retry backoff, ns.
	backoffWait *telemetry.Histogram
	// queueDepth samples the destination inbox depth at each enqueue.
	queueDepth *telemetry.Histogram
}

func newMetrics(s *telemetry.Scope) metrics {
	return metrics{
		published:      s.Counter("published"),
		multicast:      s.Counter("multicast_events"),
		unicast:        s.Counter("unicast_events"),
		broadcast:      s.Counter("broadcast_events"),
		deliveries:     s.Counter("deliveries"),
		wasted:         s.Counter("wasted"),
		subscribes:     s.Counter("subscribes"),
		unsubscribes:   s.Counter("unsubscribes"),
		swaps:          s.Counter("snapshot_swaps"),
		snapVersion:    s.Gauge("snapshot_version"),
		snapAge:        s.Histogram("snapshot_age_ns", telemetry.LatencyBuckets()),
		retries:        s.Counter("retries"),
		redelivered:    s.Counter("redelivered"),
		deduped:        s.Counter("deduped"),
		degraded:       s.Counter("degraded"),
		quarantined:    s.Counter("quarantined"),
		offline:        s.Counter("offline"),
		lost:           s.Counter("lost"),
		deliverLatency: s.Histogram("deliver_latency_ns", telemetry.LatencyBuckets()),
		backoffWait:    s.Histogram("backoff_wait_ns", telemetry.LatencyBuckets()),
		queueDepth:     s.Histogram("queue_depth", telemetry.LinearBuckets(0, 2, 16)),
	}
}

// ReliabilityConfig tunes the retry protocol used under fault injection.
type ReliabilityConfig struct {
	// MaxRetries is the retransmission cap per delivery on the primary
	// path (default 4).
	MaxRetries int
	// LastResort is the retransmission cap on the degraded alternate path
	// (default 16) — the bounded stand-in for "retry until the peer is
	// declared dead".
	LastResort int
	// RetryBudget caps total primary-path retries per event across all
	// destinations (default 512; ≤ 0 means the default). Exhausting it
	// sends remaining failing deliveries straight to the degraded path.
	RetryBudget int64
	// BaseBackoff is the first retry's backoff (default 50µs); backoff
	// doubles per attempt up to MaxBackoff (default 2ms), with ±50%
	// deterministic jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// DedupWindow is the per-consumer dedup memory, in sequence numbers
	// (default 4096): a receiver remembers the last DedupWindow seqs and
	// treats anything older as already seen. Duplicates only arise from
	// immediate retransmission, so the window bounds dedup memory at
	// 8·DedupWindow bytes per consumer instead of growing for the life of
	// the broker.
	DedupWindow int
}

// Validate rejects nonsensical reliability tunings. Zero fields are legal
// (they take defaults); explicitly negative values are not, and a MaxBackoff
// below BaseBackoff would make the backoff schedule non-monotone.
func (rc ReliabilityConfig) Validate() error {
	if rc.MaxRetries < 0 {
		return fmt.Errorf("broker: MaxRetries = %d, need ≥ 0", rc.MaxRetries)
	}
	if rc.LastResort < 0 {
		return fmt.Errorf("broker: LastResort = %d, need ≥ 0", rc.LastResort)
	}
	if rc.RetryBudget < 0 {
		return fmt.Errorf("broker: RetryBudget = %d, need ≥ 0", rc.RetryBudget)
	}
	if rc.BaseBackoff < 0 {
		return fmt.Errorf("broker: BaseBackoff = %v, need ≥ 0", rc.BaseBackoff)
	}
	if rc.MaxBackoff < 0 {
		return fmt.Errorf("broker: MaxBackoff = %v, need ≥ 0", rc.MaxBackoff)
	}
	if rc.BaseBackoff > 0 && rc.MaxBackoff > 0 && rc.MaxBackoff < rc.BaseBackoff {
		return fmt.Errorf("broker: MaxBackoff %v < BaseBackoff %v", rc.MaxBackoff, rc.BaseBackoff)
	}
	if rc.DedupWindow < 0 {
		return fmt.Errorf("broker: DedupWindow = %d, need ≥ 0", rc.DedupWindow)
	}
	return nil
}

func (rc *ReliabilityConfig) setDefaults() {
	if rc.MaxRetries <= 0 {
		rc.MaxRetries = 4
	}
	if rc.LastResort <= 0 {
		rc.LastResort = 32
	}
	if rc.RetryBudget <= 0 {
		rc.RetryBudget = 512
	}
	if rc.BaseBackoff <= 0 {
		rc.BaseBackoff = 50 * time.Microsecond
	}
	if rc.MaxBackoff <= 0 {
		rc.MaxBackoff = 2 * time.Millisecond
	}
	if rc.DedupWindow <= 0 {
		rc.DedupWindow = 4096
	}
}

// routeTable is the immutable inbox/counter directory published through an
// atomic pointer. The writer goroutine replaces it wholesale when a
// Subscribe introduces a node that had no inbox at start — the counters
// grow dynamically instead of being frozen at New (which would nil-deref
// for post-start subscribers).
type routeTable struct {
	inboxes map[topology.NodeID]chan Delivery
	perNode map[topology.NodeID]*atomic.Int64
}

// churnReq is one Subscribe/Unsubscribe request bound for the writer.
type churnReq struct {
	sub   *workload.Subscription // non-nil ⇒ subscribe, else unsubscribe
	slot  int                    // unsubscribe target
	reply chan churnResp
}

type churnResp struct {
	slot int
	err  error
}

// Broker is the delivery fabric. Create with New, feed with Publish, stop
// with Close. Safe for concurrent Publish, Subscribe and Unsubscribe.
type Broker struct {
	engine        *core.Engine
	graph         *topology.Graph
	workers       int // fan-out workers
	decideWorkers int // decision workers; 0 = GOMAXPROCS

	inj    *faults.Injector
	rel    ReliabilityConfig
	health *health.Health

	// snap is the published decision snapshot: decision workers take
	// lock-free loads, only the writer goroutine stores.
	snap atomic.Pointer[core.DecisionSnapshot]
	// seq numbers publications at ingress, so sequence order matches
	// publish order even across concurrent decision workers.
	seq atomic.Int64
	// routes is the current inbox/counter directory (see routeTable).
	routes atomic.Pointer[routeTable]

	publishCh    chan queued
	fanoutCh     chan routed
	quarantineCh chan int
	// refreshCh carries auto-refresh requests (the warm-iteration count)
	// from the control loop to the writer goroutine. One request may be
	// pending; requestRefresh replaces it so the newest value wins.
	refreshCh chan int
	// writerCh carries churn requests to the writer goroutine.
	writerCh   chan churnReq
	writerStop chan struct{}
	// ckptCh carries explicit Checkpoint requests to the writer goroutine.
	ckptCh chan chan error

	// dur is the durability bookkeeping (nil unless created by Open);
	// durOpts is the store tuning captured from WithDurableOptions.
	dur     *durState
	durOpts *durable.Options

	// observer, when set, sees every accepted delivery after stats
	// accounting.
	observer func(topology.NodeID, Delivery)
	// decisionObs, when set, sees every decided event (with its priced
	// costs) on a decision worker, before fan-out. Shed events are not
	// reported — they never reach fan-out. With more than one decision
	// worker callbacks run concurrently and may arrive out of sequence
	// order; pin WithDecideWorkers(1) for a serial, ordered stream.
	decisionObs func(seq int64, ev workload.Event, d core.Decision, c core.Costs)

	// reg owns the broker's metrics; private unless WithTelemetry supplies
	// a shared registry. tracer is nil unless WithTracer enables tracing.
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	ctr    metrics
	// decideNs holds one decide-latency histogram per decision worker
	// ("decide_w<i>_ns"), so per-worker skew is visible.
	decideNs []*telemetry.Histogram
	// quarantineSent dedups quarantine requests per group.
	quarantineSent sync.Map
	// lastSwap is the previous snapshot publication time (writer-only).
	lastSwap time.Time

	closeMu sync.RWMutex
	closed  bool

	decisionWG sync.WaitGroup
	fanoutWG   sync.WaitGroup
	writerWG   sync.WaitGroup
	consumerWG sync.WaitGroup
	closeOnce  sync.Once

	// controlStop ends the control-loop goroutine; nil without WithHealth
	// or when AutoRefresh is off.
	controlStop chan struct{}
	controlWG   sync.WaitGroup
}

// Option customises a Broker.
type Option func(*Broker)

// WithWorkers sets the fan-out worker count (default 4).
func WithWorkers(n int) Option {
	return func(b *Broker) { b.workers = n }
}

// WithDecideWorkers sets the decision worker count: 0 (the default) means
// GOMAXPROCS, 1 forces a serial decision stage. Decisions are
// byte-identical per snapshot for every worker count; only throughput and
// the interleaving of fan-out change.
func WithDecideWorkers(n int) Option {
	return func(b *Broker) { b.decideWorkers = n }
}

// WithObserver registers a callback invoked for every accepted delivery
// (after accounting and dedup). The callback runs on consumer goroutines
// and must be safe for concurrent use.
func WithObserver(fn func(topology.NodeID, Delivery)) Option {
	return func(b *Broker) { b.observer = fn }
}

// WithFaults attaches a fault injector and enables the reliability
// protocol (sequence numbers, dedup, retries, degradation, quarantine).
func WithFaults(inj *faults.Injector) Option {
	return func(b *Broker) { b.inj = inj }
}

// WithReliability overrides the retry protocol's tuning. Only meaningful
// together with WithFaults.
func WithReliability(rc ReliabilityConfig) Option {
	return func(b *Broker) { b.rel = rc }
}

// WithTelemetry publishes the broker's metrics into a shared registry
// (scope "broker") instead of a private one, so exporters and the HTTP
// server see them. Stats() reads the same instruments either way.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(b *Broker) { b.reg = reg }
}

// WithTracer enables per-event lifecycle tracing: each sampled publication
// accumulates decide/enqueue/attempt/deliver spans into the tracer's ring.
func WithTracer(tr *telemetry.Tracer) Option {
	return func(b *Broker) { b.tracer = tr }
}

// WithHealth attaches the overload-protection and self-healing subsystem:
// admission control on Publish, per-destination circuit breakers in the
// delivery path, and (when h's config enables AutoRefresh) the control
// loop that triggers automatic engine refreshes. The broker instruments h
// into its telemetry registry.
func WithHealth(h *health.Health) Option {
	return func(b *Broker) { b.health = h }
}

// WithDecisionObserver registers a callback invoked on the decision
// workers for every decided event with its priced delivery costs —
// the hook recovery experiments use to build cost-over-time series.
// Pricing each decision costs extra model lookups, so attach it only when
// the series is wanted. Combine with WithDecideWorkers(1) when the
// consumer needs the callbacks serial and in sequence order.
func WithDecisionObserver(fn func(seq int64, ev workload.Event, d core.Decision, c core.Costs)) Option {
	return func(b *Broker) { b.decisionObs = fn }
}

// New starts a broker over an engine. The engine must not be used by the
// caller until Close returns (the writer goroutine owns it).
func New(engine *core.Engine, opts ...Option) (*Broker, error) {
	if engine == nil {
		return nil, fmt.Errorf("broker: nil engine")
	}
	b := &Broker{
		engine:  engine,
		graph:   engine.Model().Graph(),
		workers: 4,
	}
	for _, opt := range opts {
		opt(b)
	}
	if b.workers < 1 {
		return nil, fmt.Errorf("broker: %d workers", b.workers)
	}
	if b.decideWorkers < 0 {
		return nil, fmt.Errorf("broker: %d decide workers", b.decideWorkers)
	}
	if b.decideWorkers == 0 {
		b.decideWorkers = runtime.GOMAXPROCS(0)
	}
	if err := b.rel.Validate(); err != nil {
		return nil, err
	}
	b.rel.setDefaults()
	if b.reg == nil {
		b.reg = telemetry.NewRegistry()
	}
	scope := b.reg.Scope("broker")
	b.ctr = newMetrics(scope)
	b.decideNs = make([]*telemetry.Histogram, b.decideWorkers)
	for i := range b.decideNs {
		b.decideNs[i] = scope.Histogram(fmt.Sprintf("decide_w%d_ns", i), telemetry.LatencyBuckets())
	}
	b.quarantineCh = make(chan int, 128)
	// Size the publish queue at least MaxInflight so that under the
	// rejecting policies an admitted event never blocks on the channel
	// send: admission is the bound, not the channel.
	queue := 64
	if b.health != nil && b.health.Admission.Capacity() > queue {
		queue = b.health.Admission.Capacity()
	}
	b.publishCh = make(chan queued, queue)
	b.fanoutCh = make(chan routed, 64)
	b.refreshCh = make(chan int, 1)
	b.writerCh = make(chan churnReq, 16)
	b.writerStop = make(chan struct{})
	b.ckptCh = make(chan chan error)
	if b.health != nil {
		b.health.Instrument(b.reg)
	}
	if b.dur != nil {
		b.initDurable()
	}

	// Initial snapshot and route table. Consumers only ever see fully
	// populated, immutable tables.
	snap := engine.Snapshot()
	b.snap.Store(snap)
	b.ctr.snapVersion.Set(snap.Version())
	b.lastSwap = time.Now()
	rt := &routeTable{
		inboxes: make(map[topology.NodeID]chan Delivery, len(engine.World().SubscriberNodes)),
		perNode: make(map[topology.NodeID]*atomic.Int64, len(engine.World().SubscriberNodes)),
	}
	for _, n := range engine.World().SubscriberNodes {
		rt.inboxes[n] = make(chan Delivery, 32)
		rt.perNode[n] = new(atomic.Int64)
	}
	if b.dur != nil {
		// Recovered churned subscriptions were applied to the engine before
		// New, bypassing ensureRoutes — give their owners inboxes now.
		for _, rec := range b.dur.subs {
			if _, ok := rt.inboxes[rec.Owner]; !ok {
				rt.inboxes[rec.Owner] = make(chan Delivery, 32)
				rt.perNode[rec.Owner] = new(atomic.Int64)
			}
		}
	}
	b.routes.Store(rt)
	for n, ch := range rt.inboxes {
		b.consumerWG.Add(1)
		go b.consume(n, ch, rt.perNode[n], b.consumerWindow(n))
	}

	for i := 0; i < b.decideWorkers; i++ {
		b.decisionWG.Add(1)
		go b.decideLoop(i, engine.NewSPTView())
	}

	for i := 0; i < b.workers; i++ {
		b.fanoutWG.Add(1)
		go b.fanout()
	}

	b.writerWG.Add(1)
	go b.writer()

	if b.health != nil && b.health.Controller.Enabled() {
		b.controlStop = make(chan struct{})
		b.controlWG.Add(1)
		go b.controlLoop()
	}
	return b, nil
}

// Publish enqueues one event for delivery. It blocks when the pipeline is
// saturated and returns ErrClosed (instead of panicking) if the broker has
// been closed. With health attached, the event first passes admission
// control: under the RejectNewest and ShedLowFanout policies a saturated
// pipeline or an empty rate-limit bucket returns health.ErrOverloaded
// instead of blocking; a Block-policy wait interrupted by Close returns
// ErrClosed. Safe to race with Close.
func (b *Broker) Publish(ev workload.Event) error {
	_, err := b.PublishSeq(ev)
	return err
}

// PublishSeq is Publish reporting the publication sequence number the
// event consumed: deliveries of this event carry it as Delivery.Seq. The
// returned seq is -1 exactly when the event never entered the broker's
// history (closed broker, admission rejection). A non-negative seq with a
// non-nil error means the seq was consumed — and, for durable brokers,
// possibly journaled — before the failure, so a recovery replay may still
// deliver under it; federation routers record the seq even on error so
// cross-shard dedup recognises those replays.
func (b *Broker) PublishSeq(ev workload.Event) (int64, error) {
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closed {
		return -1, ErrClosed
	}
	var tok *health.Token
	if b.health != nil {
		// Admit while holding the close lock: Close cannot complete until
		// this Publish returns, so an admitted event always reaches the
		// pipeline and its inflight slot is always released by fan-out.
		// Close unblocks a waiting Admit (it closes admission first, before
		// taking the write lock), so this cannot deadlock shutdown.
		var err error
		tok, err = b.health.Admission.Admit()
		if err != nil {
			if errors.Is(err, health.ErrClosed) {
				return -1, ErrClosed
			}
			return -1, err
		}
	}
	seq := b.seq.Add(1) - 1
	if b.dur != nil {
		// Journal before acknowledging: a Publish that returns nil has its
		// record group-committed, so any crash after this point redelivers
		// it. The inflight entry goes in first so a concurrent checkpoint
		// rotation cannot miss the record.
		b.dur.inflight.Store(seq, ev)
		if err := b.dur.store.AppendPublish(seq, ev); err != nil {
			b.dur.inflight.Delete(seq)
			tok.Release()
			return seq, err
		}
	}
	b.publishCh <- queued{seq: seq, ev: ev, snap: b.snap.Load(), tok: tok}
	return seq, nil
}

// Subscribe registers a new subscription with the running broker and
// returns its slot id. When Subscribe returns, the subscription is part of
// the published decision snapshot: every event published afterwards that
// matches it will be delivered (by unicast top-up until the next group
// rebuild folds the subscriber into a group — never lost). A subscriber
// node that had no inbox gets one, with its delivery counter grown
// dynamically.
func (b *Broker) Subscribe(s workload.Subscription) (int, error) {
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closed {
		return 0, ErrClosed
	}
	reply := make(chan churnResp, 1)
	b.writerCh <- churnReq{sub: &s, reply: reply}
	resp := <-reply
	return resp.slot, resp.err
}

// Unsubscribe removes a live subscription by slot id. When Unsubscribe
// returns, the published snapshot no longer matches the subscription:
// events published afterwards are not delivered to it. Events decided
// published earlier may still arrive (each drains against the snapshot
// captured at its Publish).
func (b *Broker) Unsubscribe(slot int) error {
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	reply := make(chan churnResp, 1)
	b.writerCh <- churnReq{slot: slot, reply: reply}
	resp := <-reply
	return resp.err
}

// Close drains the pipeline and stops all goroutines. Safe to call more
// than once and concurrently with Publish; Publish calls that lose the
// race return ErrClosed. The returned error reports a failed final
// checkpoint or journal close — a durable broker that cannot persist its
// shutdown state must not exit 0 (only the first Close observes it;
// repeat calls return nil).
func (b *Broker) Close() error {
	var closeErr error
	b.closeOnce.Do(func() {
		if b.controlStop != nil {
			close(b.controlStop)
			b.controlWG.Wait()
		}
		if b.health != nil {
			// Unblock Publish calls waiting inside Admit before taking the
			// write lock they hold read-side.
			b.health.Admission.Close()
		}
		b.closeMu.Lock()
		b.closed = true
		b.closeMu.Unlock()
		close(b.publishCh)
		b.decisionWG.Wait()
		close(b.fanoutCh)
		b.fanoutWG.Wait()
		// Stop the writer after fan-out: it must stay alive to serve the
		// quarantine requests fan-out workers file. It drains pending
		// quarantines before exiting, then hands the engine back.
		close(b.writerStop)
		b.writerWG.Wait()
		rt := b.routes.Load()
		for _, ch := range rt.inboxes {
			close(ch)
		}
		b.consumerWG.Wait()
		if b.dur != nil {
			// Everything is quiescent: a clean-shutdown checkpoint leaves
			// nothing in the journal tail, so the next Open replays zero
			// records. Skipped when a crash point fired — the test harness
			// wants the disk exactly as the dying process left it.
			if !b.dur.store.Crashed() {
				if err := b.doCheckpoint(); err != nil && !errors.Is(err, faults.ErrCrashed) {
					closeErr = fmt.Errorf("final checkpoint: %w", err)
				}
			}
			if err := b.dur.store.Close(); err != nil && closeErr == nil {
				closeErr = fmt.Errorf("journal close: %w", err)
			}
		}
	})
	return closeErr
}

// Stats returns a snapshot of the accounting so far (call after Close for
// final numbers). It is a thin view over the telemetry registry: each field
// is an atomic load of the corresponding "broker"-scope counter, so
// successive snapshots are monotone per counter even mid-run.
//
// Across a durable restart (Open over a used directory) the cumulative
// work counters are preserved at checkpoint granularity — Published,
// Multicast, Unicast, Broadcast, Deliveries, Wasted, Subscribes,
// Unsubscribes — seeded from the last checkpoint before any new traffic
// is accepted. Recovery redeliveries do not re-increment them. Everything
// else is explicitly per-incarnation and restarts at zero: SnapshotSwaps,
// the reliability counters (Retries … Lost), the overload/self-healing
// counters, and PerNode.
func (b *Broker) Stats() Stats {
	rt := b.routes.Load()
	out := Stats{
		Published:     b.ctr.published.Value(),
		Multicast:     b.ctr.multicast.Value(),
		Unicast:       b.ctr.unicast.Value(),
		Broadcast:     b.ctr.broadcast.Value(),
		Deliveries:    b.ctr.deliveries.Value(),
		Wasted:        b.ctr.wasted.Value(),
		Subscribes:    b.ctr.subscribes.Value(),
		Unsubscribes:  b.ctr.unsubscribes.Value(),
		SnapshotSwaps: b.ctr.swaps.Value(),
		Retries:       b.ctr.retries.Value(),
		Redelivered:   b.ctr.redelivered.Value(),
		Deduped:       b.ctr.deduped.Value(),
		Degraded:      b.ctr.degraded.Value(),
		Quarantined:   b.ctr.quarantined.Value(),
		Offline:       b.ctr.offline.Value(),
		Lost:          b.ctr.lost.Value(),
		PerNode:       make(map[topology.NodeID]int64, len(rt.perNode)),
	}
	if b.health != nil {
		hc := b.health.CounterSnapshot()
		out.Shed = hc.Shed
		out.Rejected = hc.Rejected
		out.RateLimited = hc.RateLimited
		out.ReleaseSpurious = hc.ReleaseSpurious
		out.BreakerOpens = hc.BreakerOpen
		out.BreakerSkipped = hc.Skipped
		out.Probes = hc.Probes
		out.AutoRefreshes = hc.Refreshes
	}
	for n, c := range rt.perNode {
		out.PerNode[n] = c.Load()
	}
	return out
}

// Health exposes the attached health subsystem (nil without WithHealth).
func (b *Broker) Health() *health.Health { return b.health }

// QuarantineCount reports how many groups the published decision snapshot
// quarantines. Safe to call while the broker runs.
func (b *Broker) QuarantineCount() int { return b.snap.Load().NumQuarantined() }

// SnapshotVersion returns the published decision snapshot's build number.
func (b *Broker) SnapshotVersion() int64 { return b.snap.Load().Version() }

// DecideWorkers returns the resolved decision-worker count (never 0: the
// WithDecideWorkers(0) default resolves to GOMAXPROCS at New).
func (b *Broker) DecideWorkers() int { return b.decideWorkers }

// Telemetry exposes the broker's metrics registry — the shared one passed
// via WithTelemetry, or the private default.
func (b *Broker) Telemetry() *telemetry.Registry { return b.reg }

// decideLoop is one decision worker: it drains admitted publications and
// decides each against a lock-free load of the published snapshot, using
// its private SPT view for cost queries.
func (b *Broker) decideLoop(w int, view *multicast.SPTView) {
	defer b.decisionWG.Done()
	for q := range b.publishCh {
		b.decideOne(q, w, view)
	}
}

// decideOne routes one publication through the decision stage, against the
// snapshot captured when the event was published.
func (b *Broker) decideOne(q queued, w int, view *multicast.SPTView) {
	snap := q.snap
	trace := b.tracer.Begin(q.seq)
	t0 := time.Now()
	var sc *decideScratch
	var d core.Decision
	if b.decisionObs == nil {
		sc = decideScratchPool.Get().(*decideScratch)
		d = snap.DecideInto(q.ev, view, &sc.dec)
	} else {
		// The observer reads the Decision after the fan-out hand-off;
		// pooled buffers would be reused under it, so keep fresh slices.
		d = snap.Decide(q.ev, view)
	}
	dt := time.Since(t0)
	b.decideNs[w].ObserveDuration(dt)
	trace.Add("decide", t0, dt, -1, d.Group, 0, methodNote(d.Method))
	if !q.replay {
		// Recovery redeliveries were counted by the incarnation that
		// journaled them (preserved via checkpoint); counting them again
		// would double-book the restart.
		b.ctr.published.Add(1)
		switch d.Method {
		case multicast.NetworkMulticast:
			b.ctr.multicast.Add(1)
		case multicast.Broadcast:
			b.ctr.broadcast.Add(1)
		default:
			b.ctr.unicast.Add(1)
		}
	}
	r := routed{seq: q.seq, ev: q.ev, d: d, scratch: sc, t0: t0, trace: trace, tok: q.tok}
	switch d.Method {
	case multicast.NetworkMulticast:
		// The snapshot's group tables are immutable; share the member
		// slice instead of copying — fan-out only reads it.
		r.nodes = snap.GroupNodes(d.Group)
	case multicast.Broadcast:
		// Freeze the flood targets now so fan-out and routing paths agree
		// even if a Subscribe grows the route table in between.
		rt := b.routes.Load()
		var nodes []topology.NodeID
		if sc != nil {
			nodes = sc.nodes[:0]
		} else {
			nodes = make([]topology.NodeID, 0, len(rt.inboxes))
		}
		for n := range rt.inboxes {
			nodes = append(nodes, n)
		}
		if sc != nil {
			sc.nodes = nodes
		}
		r.nodes = nodes
	}
	if b.inj != nil {
		r.paths = routePaths(view, &r)
		r.budget = new(atomic.Int64)
		r.budget.Store(b.rel.RetryBudget)
	}
	if b.health != nil {
		b.health.Admission.NoteFanout(len(d.Interested))
	}
	enq := time.Now()
	if b.health != nil {
		// Try a non-blocking hand-off first: if the fan-out stage is
		// congested and the policy sheds, drop the event here when its
		// fanout is below the running mean — the cheapest loss available.
		select {
		case b.fanoutCh <- r:
		default:
			if b.health.Admission.ShouldShed(len(d.Interested)) {
				b.health.Admission.NoteShed()
				q.tok.Release()
				if b.dur != nil {
					// A shed event never reaches fan-out; retire its
					// checkpoint carry-forward entry here.
					b.dur.inflight.Delete(q.seq)
				}
				trace.Add("shed", enq, time.Since(enq), -1, d.Group, 0, "low-fanout")
				if sc != nil {
					decideScratchPool.Put(sc)
				}
				return
			}
			b.fanoutCh <- r
		}
	} else {
		b.fanoutCh <- r
	}
	trace.Add("enqueue", enq, time.Since(enq), -1, d.Group, 0, "")
	if b.decisionObs != nil {
		b.decisionObs(r.seq, q.ev, d, snap.CostOf(q.ev, d, view))
	}
}

// writer is the single goroutine that owns the engine after New: all
// mutations — subscription churn, quarantines, auto-refreshes — land here,
// and every visible change is published as a fresh immutable snapshot that
// the decision workers pick up on their next load.
func (b *Broker) writer() {
	defer b.writerWG.Done()
	// Durable brokers checkpoint from here too: the timed cadence
	// truncates the journal whenever it holds anything, and heavy churn
	// triggers the record-count threshold between ticks.
	var ckptTick <-chan time.Time
	if b.dur != nil {
		if iv := b.dur.store.Options().CheckpointInterval; iv > 0 {
			t := time.NewTicker(iv)
			defer t.Stop()
			ckptTick = t.C
		}
	}
	for {
		select {
		case req := <-b.writerCh:
			b.handleChurn(req)
			if b.checkpointDue(false) {
				b.doCheckpoint()
			}
		case <-ckptTick:
			if b.checkpointDue(true) {
				b.doCheckpoint()
			}
		case reply := <-b.ckptCh:
			reply <- b.doCheckpoint()
		case g := <-b.quarantineCh:
			b.applyQuarantines(g)
		case wi := <-b.refreshCh:
			b.autoRefresh(wi)
		case <-b.writerStop:
			// Apply any quarantines still queued so post-Close state
			// reflects every reported failure, then hand the engine back.
			for {
				select {
				case g := <-b.quarantineCh:
					b.applyQuarantines(g)
				default:
					return
				}
			}
		}
	}
}

// handleChurn applies one churn request — plus any others already queued,
// coalesced into a single snapshot swap — and replies after the swap, so
// the caller's Subscribe/Unsubscribe return happens-after the snapshot
// covering its change is live.
func (b *Broker) handleChurn(first churnReq) {
	reqs := []churnReq{first}
	for len(reqs) < 32 {
		select {
		case r := <-b.writerCh:
			reqs = append(reqs, r)
		default:
			goto apply
		}
	}
apply:
	resps := make([]churnResp, len(reqs))
	var newOwners []topology.NodeID
	for i, r := range reqs {
		if r.sub != nil {
			slot, err := b.engine.AddSubscription(*r.sub)
			resps[i] = churnResp{slot: slot, err: err}
			if err == nil {
				b.ctr.subscribes.Inc()
				newOwners = append(newOwners, r.sub.Owner)
			}
		} else {
			err := b.engine.RemoveSubscription(r.slot)
			resps[i] = churnResp{err: err}
			if err == nil {
				b.ctr.unsubscribes.Inc()
			}
		}
	}
	if b.dur != nil {
		// Journal + group-commit the batch before the swap: replay order
		// equals swap order, and no snapshot ever covers a subscription the
		// journal could lose.
		b.journalChurn(reqs, resps)
	}
	// Routes first, snapshot second: once a decision can match the new
	// subscriber, its inbox must already exist.
	b.ensureRoutes(newOwners)
	b.publishSnapshot()
	for i, r := range reqs {
		r.reply <- resps[i]
	}
}

// ensureRoutes grows the route table (copy-on-write) with inboxes,
// counters and consumer goroutines for owners not yet present.
func (b *Broker) ensureRoutes(owners []topology.NodeID) {
	rt := b.routes.Load()
	var missing []topology.NodeID
	for _, n := range owners {
		if _, ok := rt.inboxes[n]; !ok {
			missing = append(missing, n)
		}
	}
	if len(missing) == 0 {
		return
	}
	nrt := &routeTable{
		inboxes: make(map[topology.NodeID]chan Delivery, len(rt.inboxes)+len(missing)),
		perNode: make(map[topology.NodeID]*atomic.Int64, len(rt.perNode)+len(missing)),
	}
	for n, ch := range rt.inboxes {
		nrt.inboxes[n] = ch
		nrt.perNode[n] = rt.perNode[n]
	}
	for _, n := range missing {
		if _, ok := nrt.inboxes[n]; ok {
			continue // duplicate owner within one batch
		}
		ch := make(chan Delivery, 32)
		nrt.inboxes[n] = ch
		nrt.perNode[n] = new(atomic.Int64)
		b.consumerWG.Add(1)
		go b.consume(n, ch, nrt.perNode[n], b.consumerWindow(n))
	}
	b.routes.Store(nrt)
}

// publishSnapshot swaps in a fresh decision snapshot if the engine's state
// changed, recording the swap and the retired snapshot's service lifetime.
func (b *Broker) publishSnapshot() {
	s := b.engine.Snapshot()
	if s == b.snap.Load() {
		return
	}
	b.snap.Store(s)
	now := time.Now()
	b.ctr.snapAge.ObserveDuration(now.Sub(b.lastSwap))
	b.lastSwap = now
	b.ctr.swaps.Inc()
	b.ctr.snapVersion.Set(s.Version())
}

// applyQuarantines applies one quarantine request plus any others already
// queued, then publishes the (cheap, structure-sharing) snapshot swap.
// Requests referencing groups that no longer exist — an auto-refresh may
// have shrunk the group count while the request was in flight — are
// dropped.
func (b *Broker) applyQuarantines(first int) {
	g := first
	for {
		if g < b.engine.NumGroups() && !b.engine.Quarantined(g) {
			b.engine.Quarantine(g)
		}
		select {
		case g = <-b.quarantineCh:
		default:
			b.publishSnapshot()
			return
		}
	}
}

// autoRefresh runs one controller-triggered engine refresh on the writer
// goroutine.
func (b *Broker) autoRefresh(warmIters int) {
	// Fold in quarantines that raced the refresh request.
	for {
		select {
		case g := <-b.quarantineCh:
			if g < b.engine.NumGroups() && !b.engine.Quarantined(g) {
				b.engine.Quarantine(g)
			}
			continue
		default:
		}
		break
	}
	if b.engine.NumQuarantined() == 0 && !b.engine.Stale() {
		b.publishSnapshot() // nothing to rebuild; still surface drained state
		return
	}
	// Refresh compacts live slots; capture the compaction order first so
	// the durable slot→id map can follow it.
	var live []int
	if b.dur != nil {
		live = b.engine.LiveSlots()
	}
	if err := b.engine.Refresh(warmIters); err != nil {
		// Refresh can fail legitimately (e.g. zero live subscriptions);
		// leave the quarantines in place and let the loop retry later.
		b.publishSnapshot()
		return
	}
	if b.dur != nil {
		b.remapSlots(live)
	}
	// The rebuilt groups start with a clean slate: allow future failures to
	// quarantine them again.
	b.quarantineSent.Range(func(k, _ any) bool {
		b.quarantineSent.Delete(k)
		return true
	})
	b.publishSnapshot()
	b.health.NoteAutoRefresh()
}

// controlLoop is the self-healing loop: every CheckInterval it snapshots
// the health signals and, when the controller decides the system is both
// degraded and stable enough to rebuild, asks the writer goroutine to
// refresh the engine.
func (b *Broker) controlLoop() {
	defer b.controlWG.Done()
	tick := time.NewTicker(b.health.Controller.Interval())
	defer tick.Stop()
	for {
		select {
		case <-b.controlStop:
			return
		case <-tick.C:
			b.controlTick()
		}
	}
}

// controlTick gathers one Signals snapshot and forwards a refresh request
// when warranted.
func (b *Broker) controlTick() {
	hc := b.health.CounterSnapshot()
	ts := b.health.Tracker.Snapshot()
	snap := b.snap.Load()
	s := health.Signals{
		QuarantinedGroups: snap.NumQuarantined(),
		TotalGroups:       snap.NumGroups(),
		OpenBreakers:      ts.Open,
		HalfOpenBreakers:  ts.HalfOpen,
		Shed:              hc.Shed,
		Rejected:          hc.Rejected,
		Lost:              b.ctr.lost.Value(),
		Skipped:           hc.Skipped,
	}
	if b.health.Controller.Decide(s) {
		b.requestRefresh(b.health.Controller.WarmIters())
	}
}

// requestRefresh queues a refresh for the writer. refreshCh holds a single
// pending request; when one is already queued the stale value is drained
// and replaced so the latest warm-iteration count wins (a plain
// non-blocking send would silently keep the stale one).
func (b *Broker) requestRefresh(warmIters int) {
	for {
		select {
		case b.refreshCh <- warmIters:
			return
		default:
		}
		select {
		case <-b.refreshCh:
		default:
		}
	}
}

// methodNote renders a decision method for trace spans.
func methodNote(m multicast.Method) string {
	switch m {
	case multicast.NetworkMulticast:
		return "multicast"
	case multicast.Broadcast:
		return "broadcast"
	default:
		return "unicast"
	}
}

// requestQuarantine asks the writer goroutine to quarantine a group. The
// send never blocks; at-most-once per group is guaranteed by
// quarantineSent, and a full channel simply drops the request — a later
// failure will retry.
func (b *Broker) requestQuarantine(group int) {
	if group < 0 {
		return
	}
	if _, dup := b.quarantineSent.LoadOrStore(group, true); dup {
		return
	}
	b.ctr.quarantined.Add(1)
	select {
	case b.quarantineCh <- group:
	default:
		b.quarantineSent.Delete(group)
	}
}

// routePaths resolves each destination's primary routing path along the
// publisher's shortest-path tree, using the decision worker's private SPT
// view. Destinations come from the routed event itself (its frozen node
// sets), never from mutable broker state.
func routePaths(view *multicast.SPTView, r *routed) map[topology.NodeID][]topology.NodeID {
	spt := view.SPT(r.ev.Pub)
	paths := make(map[topology.NodeID][]topology.NodeID)
	add := func(n topology.NodeID) {
		if _, ok := paths[n]; !ok {
			paths[n] = spt.PathTo(n)
		}
	}
	switch r.d.Method {
	case multicast.Broadcast, multicast.NetworkMulticast:
		for _, n := range r.nodes {
			add(n)
		}
		for _, n := range r.d.Remainder {
			add(n)
		}
	default:
		for _, n := range r.d.Interested {
			add(n)
		}
	}
	return paths
}

// fanout places one copy per destination inbox. Each fully fanned-out
// event releases its admission token — the point where the inflight bound
// stops counting it.
func (b *Broker) fanout() {
	defer b.fanoutWG.Done()
	for r := range b.fanoutCh {
		if b.dur != nil {
			// Refcount the copies: start at 1 for the fan-out stage itself
			// so the count cannot hit zero until every send has happened.
			r.pending = new(atomic.Int64)
			r.pending.Store(1)
		}
		b.fanoutOne(r)
		if r.pending != nil && r.pending.Add(-1) == 0 {
			b.dur.inflight.Delete(r.seq)
		}
		r.tok.Release()
		if r.scratch != nil {
			// Every copy is in its inbox (Delivery holds values, not the
			// decision's slices), so the event no longer references the
			// scratch-backed buffers.
			decideScratchPool.Put(r.scratch)
		}
	}
}

// fanoutOne delivers one routed event to all its destinations.
func (b *Broker) fanoutOne(r routed) {
	rt := b.routes.Load()
	if r.d.Method == multicast.Broadcast {
		// Flooding: every subscriber node captured at decision time
		// receives a copy (non-subscriber nodes have no inbox and are
		// represented by waste accounting at the cost level, not the
		// delivery level).
		for _, n := range r.nodes {
			b.deliver(rt, r, n, Delivery{
				Event:      r.ev,
				Seq:        r.seq,
				Method:     multicast.Broadcast,
				Group:      -1,
				Interested: interestedIn(&r.d, n),
			})
		}
		return
	}
	if r.d.Method == multicast.NetworkMulticast {
		for _, n := range r.nodes {
			b.deliver(rt, r, n, Delivery{
				Event:      r.ev,
				Seq:        r.seq,
				Method:     multicast.NetworkMulticast,
				Group:      r.d.Group,
				Interested: interestedIn(&r.d, n),
			})
		}
		for _, n := range r.d.Remainder {
			b.deliver(rt, r, n, Delivery{
				Event:      r.ev,
				Seq:        r.seq,
				Method:     multicast.Unicast,
				Group:      -1,
				Interested: true,
			})
		}
		return
	}
	for _, n := range r.d.Interested {
		b.deliver(rt, r, n, Delivery{
			Event:      r.ev,
			Seq:        r.seq,
			Method:     multicast.Unicast,
			Group:      -1,
			Interested: true,
		})
	}
}

// deliver places a copy in a node's inbox; unknown nodes (non-subscribers)
// are counted but have no inbox. Under fault injection it runs the
// reliability protocol.
func (b *Broker) deliver(rt *routeTable, r routed, n topology.NodeID, d Delivery) {
	d.born = r.t0
	d.trace = r.trace
	ch, ok := rt.inboxes[n]
	if !ok {
		// A group may reference a node that stopped subscribing between
		// refreshes; count the waste, nothing to deliver to.
		b.ctr.deliveries.Add(1)
		if !d.Interested {
			b.ctr.wasted.Add(1)
		}
		return
	}
	if b.inj == nil {
		b.ctr.queueDepth.Observe(float64(len(ch)))
		if r.pending != nil {
			r.pending.Add(1)
			d.pending = r.pending
		}
		ch <- d
		return
	}
	b.deliverReliable(r, n, ch, d)
}

// deliverReliable runs the retry → degrade → quarantine ladder for one
// delivery over the lossy fabric.
func (b *Broker) deliverReliable(r routed, n topology.NodeID, ch chan<- Delivery, d Delivery) {
	if b.health != nil && !b.health.Tracker.AllowDest(n) {
		// Open breaker: skip the destination outright instead of burning
		// the event's retry budget on a known-dead path. The routed group
		// stays quarantined until the destination recovers and the control
		// loop rebuilds.
		b.health.NoteSkip()
		r.trace.Add("breaker-skip", time.Now(), 0, int64(n), d.Group, 0, "open")
		if d.Group >= 0 {
			b.requestQuarantine(d.Group)
		}
		return
	}
	if b.inj.NodeDown(n, r.seq) {
		// Destination crashed: nothing to retry against. The loss is
		// expected (the completeness invariant covers live nodes only), but
		// a routed group with a dead member is degraded state — quarantine
		// it so future events unicast around the corpse.
		b.ctr.offline.Add(1)
		r.trace.Add("offline", time.Now(), 0, int64(n), d.Group, 0, "node down")
		if b.health != nil {
			b.health.Tracker.ReportFailure(n)
		}
		if d.Group >= 0 {
			b.requestQuarantine(d.Group)
		}
		return
	}

	// Primary path: bounded retries with exponential backoff + jitter,
	// capped by the event's shared retry budget.
	path := r.paths[n]
	attempt := 0
	for ; attempt <= b.rel.MaxRetries; attempt++ {
		if attempt > 0 {
			if r.budget.Add(-1) < 0 {
				r.trace.Add("degrade", time.Now(), 0, int64(n), d.Group, attempt, "budget-exhausted")
				break // event budget exhausted: degrade immediately
			}
			b.ctr.retries.Add(1)
			b.backoff(r.seq, n, attempt)
		}
		if !b.inj.DropAttempt(r.seq, n, attempt, path) {
			if b.health != nil {
				b.health.Tracker.ReportPath(path, true)
			}
			b.complete(r, n, ch, d, attempt)
			return
		}
		r.trace.Add("retry", time.Now(), 0, int64(n), d.Group, attempt, "dropped")
	}
	if b.health != nil {
		// The primary path exhausted its retries: every hop shares the
		// suspicion (the broker cannot tell which one dropped the copies).
		b.health.Tracker.ReportPath(path, false)
	}

	// Degraded: recompute a route with failed links removed and unicast
	// along it. LastResort attempts stand in for "retry until the peer is
	// declared dead", so live reachable nodes essentially never lose.
	alt := routing.DijkstraAvoid(b.graph, r.ev.Pub, b.inj.Blocked(r.seq))
	apath := alt.PathTo(n)
	if apath == nil {
		// Partitioned even after removing failed links from the route
		// computation: abandon and quarantine.
		r.trace.Add("abandon", time.Now(), 0, int64(n), d.Group, attempt, "partitioned")
		b.abandon(n, d)
		return
	}
	d.Degraded = true
	d.Method = multicast.Unicast
	r.trace.Add("degrade", time.Now(), 0, int64(n), d.Group, attempt, "alternate-path")
	for la := 0; la < b.rel.LastResort; la++ {
		if la > 0 {
			b.ctr.retries.Add(1)
			b.backoff(r.seq, n, attempt+la)
		}
		if !b.inj.DropAttempt(r.seq, n, attempt+la, apath) {
			b.ctr.degraded.Add(1)
			b.complete(r, n, ch, d, attempt+la)
			return
		}
	}
	r.trace.Add("abandon", time.Now(), 0, int64(n), d.Group, attempt+b.rel.LastResort, "last-resort exhausted")
	b.abandon(n, d)
}

// complete hands a successful (possibly retransmitted, possibly
// duplicated, possibly delayed) copy to the destination inbox.
func (b *Broker) complete(r routed, n topology.NodeID, ch chan<- Delivery, d Delivery, attempt int) {
	d.Attempt = attempt
	if attempt > 0 {
		b.ctr.redelivered.Add(1)
	}
	if delay := b.inj.Delay(r.seq, n); delay > 0 {
		time.Sleep(delay)
	}
	b.ctr.queueDepth.Observe(float64(len(ch)))
	if r.pending != nil {
		r.pending.Add(1)
		d.pending = r.pending
	}
	ch <- d
	if b.inj.Duplicate(r.seq, n) {
		if r.pending != nil {
			r.pending.Add(1)
		}
		ch <- d // receiver-side dedup suppresses the copy
	}
}

// abandon records a delivery given up on for a live node and quarantines
// the routed group.
func (b *Broker) abandon(n topology.NodeID, d Delivery) {
	b.ctr.lost.Add(1)
	if b.health != nil {
		b.health.Tracker.ReportFailure(n)
	}
	if d.Group >= 0 {
		b.requestQuarantine(d.Group)
	}
}

// backoff sleeps the exponential backoff for the given retry attempt:
// BaseBackoff·2^(attempt-1) capped at MaxBackoff, scaled by a
// deterministic jitter in [0.5, 1.5).
func (b *Broker) backoff(seq int64, n topology.NodeID, attempt int) {
	d := b.rel.BaseBackoff
	for i := 1; i < attempt && d < b.rel.MaxBackoff; i++ {
		d *= 2
	}
	if d > b.rel.MaxBackoff {
		d = b.rel.MaxBackoff
	}
	jitter := 0.5 + b.inj.Jitter(seq, n, attempt)
	wait := time.Duration(float64(d) * jitter)
	time.Sleep(wait)
	b.ctr.backoffWait.ObserveDuration(wait)
}

// consume drains one node's inbox, dedups on sequence number within a
// bounded sliding window, and accounts deliveries. Durable brokers pass a
// locked window (lw) that checkpoints can capture and journal each
// admission as an ack record; otherwise a private window is used when
// fault injection makes duplicates possible.
func (b *Broker) consume(n topology.NodeID, ch <-chan Delivery, pn *atomic.Int64, lw *lockedWindow) {
	defer b.consumerWG.Done()
	var seen *seqWindow
	if lw == nil && b.inj != nil {
		seen = newSeqWindow(b.rel.DedupWindow)
	}
	for d := range ch {
		fresh := true
		if lw != nil {
			// Journal the ack before the seq enters the window, and do both
			// under the window lock: a checkpoint capture must never see an
			// admitted seq whose ack record failed to append (the copy is
			// dropped unobserved and the persisted window would suppress its
			// redelivery), and an ack that landed in a journal the checkpoint
			// deletes must already be in the captured window.
			var ack func() error
			if b.dur != nil {
				ack = func() error { return b.dur.store.AppendAck(n, d.Seq) }
			}
			var err error
			fresh, err = lw.admitDurable(d.Seq, ack)
			if err != nil {
				// Store crashed mid-ack: drop the copy unobserved — the
				// next incarnation redelivers it unless the ack reached
				// the journal first (the output-commit window; recorded
				// for chaos oracles).
				if errors.Is(err, faults.ErrCrashed) && b.dur != nil {
					b.dur.noteLost(n, d.Seq)
				}
				b.durDone(d)
				continue
			}
		} else if seen != nil {
			fresh = seen.admit(d.Seq)
		}
		if !fresh {
			b.ctr.deduped.Add(1)
			d.trace.Add("dedup", time.Now(), 0, int64(n), d.Group, d.Attempt, "")
			b.durDone(d)
			continue
		}
		b.ctr.deliveries.Add(1)
		pn.Add(1)
		if !d.born.IsZero() {
			lat := time.Since(d.born)
			b.ctr.deliverLatency.ObserveDuration(lat)
			if b.health != nil {
				b.health.Tracker.ReportSuccess(n, lat)
			}
		}
		d.trace.Add("ack", time.Now(), 0, int64(n), d.Group, d.Attempt, "")
		if !d.Interested {
			b.ctr.wasted.Add(1)
		}
		if b.observer != nil {
			b.observer(n, d)
		}
		b.durDone(d)
	}
}
