package broker

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/workload"
)

// fastRel keeps chaos runs quick: real exponential backoff shape, tiny
// absolute sleeps.
func fastRel() ReliabilityConfig {
	return ReliabilityConfig{
		MaxRetries:  4,
		LastResort:  24,
		RetryBudget: 2048,
		BaseBackoff: 10 * time.Microsecond,
		MaxBackoff:  200 * time.Microsecond,
	}
}

// busiestSubscriber returns the subscriber node owning the most
// subscriptions — the destination most likely to be exercised by every
// scenario.
func busiestSubscriber(w *workload.World) topology.NodeID {
	counts := map[topology.NodeID]int{}
	for _, s := range w.Subs {
		counts[s.Owner]++
	}
	best, bestN := w.SubscriberNodes[0], -1
	for _, n := range w.SubscriberNodes {
		if counts[n] > bestN {
			best, bestN = n, counts[n]
		}
	}
	return best
}

// redundantEdge returns an edge whose removal keeps the graph connected
// (safe to flap without partitioning anyone).
func redundantEdge(t *testing.T, g *topology.Graph) topology.Edge {
	t.Helper()
	for _, e := range g.Edges() {
		blocked := func(u, v topology.NodeID) bool {
			k := topology.MakeEdgeKey(u, v)
			return k == topology.MakeEdgeKey(e.U, e.V)
		}
		spt := routing.DijkstraAvoid(g, 0, blocked)
		ok := true
		for _, d := range spt.Dist {
			if math.IsInf(d, 1) {
				ok = false
				break
			}
		}
		if ok {
			return e
		}
	}
	t.Fatal("no redundant edge in topology")
	return topology.Edge{}
}

// runChaos publishes events through a faulty broker and verifies the two
// core invariants under fault:
//
//  1. every live interested subscriber receives each event exactly once;
//  2. no node receives any event twice (dedup), live or recovered.
//
// It returns the final stats for scenario-specific assertions.
func runChaos(t *testing.T, cfg core.Config, fcfg faults.Config, rel ReliabilityConfig, seed int64, events int) Stats {
	t.Helper()
	e, w := testEngine(t, cfg, seed)
	evs := w.Events(events, seed+10)

	inj, err := faults.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		node topology.NodeID
		seq  int64
	}
	var mu sync.Mutex
	received := map[key]int{}
	b, err := New(e, WithWorkers(4), WithFaults(inj), WithReliability(rel),
		WithObserver(func(n topology.NodeID, d Delivery) {
			mu.Lock()
			received[key{n, d.Seq}]++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range evs {
		if err := b.Publish(evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	st := b.Stats()

	if st.Lost != 0 {
		t.Fatalf("lost %d deliveries to live nodes", st.Lost)
	}
	if st.Published != int64(len(evs)) {
		t.Fatalf("Published = %d, want %d", st.Published, len(evs))
	}

	// Exactly-once, against a brute-force interest oracle.
	for seq, ev := range evs {
		for _, n := range w.SubscriberNodes {
			interested := false
			for _, s := range w.Subs {
				if s.Owner == n && s.Rect.Contains(ev.Point) {
					interested = true
					break
				}
			}
			got := received[key{n, int64(seq)}]
			if got > 1 {
				t.Fatalf("event %d delivered %d times to node %d", seq, got, n)
			}
			live := !inj.NodeDown(n, int64(seq))
			switch {
			case interested && live && got != 1:
				t.Fatalf("event %d: live interested node %d received %d copies, want 1", seq, n, got)
			case !live && got != 0:
				t.Fatalf("event %d: crashed node %d received %d copies", seq, n, got)
			}
		}
	}
	return st
}

// TestChaosScenarios is the table-driven chaos harness: seeded fault
// profiles against the reliability protocol.
func TestChaosScenarios(t *testing.T) {
	cfg := core.Config{Groups: 20, CellBudget: 400}

	t.Run("link-loss-10pct-with-crash", func(t *testing.T) {
		// The acceptance scenario: 10% per-edge drop plus one node
		// crashing mid-stream (events 50–150 of 200).
		e, w := testEngine(t, cfg, 300)
		crash := busiestSubscriber(w)
		_ = e
		st := runChaos(t, cfg, faults.Config{
			Seed:         300,
			LinkDropProb: 0.10,
			Crashes:      []faults.Crash{{Node: crash, DownAt: 50, UpAt: 150}},
		}, fastRel(), 300, 200)
		if st.Retries == 0 {
			t.Error("no retries under 10% link loss")
		}
		if st.Redelivered == 0 {
			t.Error("no successful retransmissions")
		}
		if st.Degraded == 0 {
			t.Error("no degraded deliveries (primary-path exhaustion never happened)")
		}
		if st.Offline == 0 {
			t.Error("crashed node never targeted")
		}
		if st.Quarantined == 0 {
			t.Error("dead group member did not quarantine its group")
		}
	})

	t.Run("end-to-end-drop-30pct", func(t *testing.T) {
		st := runChaos(t, cfg, faults.Config{
			Seed:     301,
			DropProb: 0.30,
		}, fastRel(), 301, 150)
		if st.Retries == 0 || st.Redelivered == 0 {
			t.Errorf("drop profile produced no retries (%d) or redeliveries (%d)", st.Retries, st.Redelivered)
		}
	})

	t.Run("flapping-link", func(t *testing.T) {
		e, w := testEngine(t, cfg, 302)
		edge := redundantEdge(t, w.Graph)
		_ = e
		st := runChaos(t, cfg, faults.Config{
			Seed:  302,
			Flaps: []faults.Flap{{U: edge.U, V: edge.V, Period: 10}},
		}, fastRel(), 302, 120)
		// Deliveries whose primary path crosses the flapped link during a
		// down period must fail deterministically and re-route.
		if st.Degraded == 0 {
			t.Log("flapped link never on a routing path for this seed; retries:", st.Retries)
		}
	})

	t.Run("duplicates-and-delays", func(t *testing.T) {
		st := runChaos(t, cfg, faults.Config{
			Seed:      303,
			DupProb:   0.25,
			DelayProb: 0.20,
			MaxDelay:  100 * time.Microsecond,
		}, fastRel(), 303, 120)
		if st.Deduped == 0 {
			t.Error("injected duplicates were never deduped")
		}
	})

	t.Run("failed-link-reroute", func(t *testing.T) {
		// An explicitly failed redundant link: every path across it fails
		// deterministically; the alternate route must carry the traffic.
		e, w := testEngine(t, cfg, 304)
		edge := redundantEdge(t, w.Graph)
		_ = e
		st := runChaos(t, cfg, faults.Config{
			Seed:  304,
			Links: map[topology.EdgeKey]float64{topology.MakeEdgeKey(edge.U, edge.V): 1.0},
		}, fastRel(), 304, 120)
		if st.Lost != 0 {
			t.Errorf("lost %d with a redundant failed link", st.Lost)
		}
	})
}

// TestChaosHeavy is the long-haul variant (more events, more load); it is
// skipped under -short so the race-enabled tier-1 suite stays fast.
func TestChaosHeavy(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy chaos scenario skipped in -short mode")
	}
	cfg := core.Config{Groups: 30, CellBudget: 500}
	e, w := testEngine(t, cfg, 310)
	crash := busiestSubscriber(w)
	_ = e
	st := runChaos(t, cfg, faults.Config{
		Seed:         310,
		LinkDropProb: 0.10,
		DropProb:     0.05,
		DupProb:      0.05,
		Crashes:      []faults.Crash{{Node: crash, DownAt: 100, UpAt: 350}},
	}, fastRel(), 310, 500)
	if st.Retries == 0 || st.Degraded == 0 || st.Deduped == 0 {
		t.Errorf("heavy chaos under-exercised: %+v", st)
	}
}

// TestQuarantineFallback drives a group with a permanently dead member and
// checks the degradation ladder end state: the engine quarantines the
// group and the decision stage falls back to unicast until Refresh.
func TestQuarantineFallback(t *testing.T) {
	cfg := core.Config{Groups: 10, CellBudget: 300}
	e, w := testEngine(t, cfg, 320)
	dead := busiestSubscriber(w)

	inj, err := faults.New(faults.Config{
		Seed:    320,
		Crashes: []faults.Crash{{Node: dead, DownAt: 0, UpAt: 0}}, // never recovers
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(e, WithFaults(inj), WithReliability(fastRel()))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range w.Events(200, 321) {
		if err := b.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	st := b.Stats()
	if st.Offline == 0 {
		t.Fatal("dead node never targeted; scenario vacuous")
	}
	if st.Quarantined == 0 {
		t.Fatal("no group quarantined despite a permanently dead member")
	}
	qs := e.QuarantinedGroups()
	if len(qs) == 0 {
		t.Fatal("engine reports no quarantined groups")
	}
	for _, g := range qs {
		if !e.Quarantined(g) {
			t.Errorf("group %d not reported quarantined", g)
		}
	}
	// Refresh clears the quarantine.
	if err := e.Refresh(0); err != nil {
		t.Fatal(err)
	}
	if len(e.QuarantinedGroups()) != 0 {
		t.Error("quarantine survived Refresh")
	}
}
