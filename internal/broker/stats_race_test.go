package broker

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// statsVector flattens the cumulative Stats counters for ordering checks.
func statsVector(st Stats) []int64 {
	return []int64{
		st.Published, st.Multicast, st.Unicast, st.Broadcast,
		st.Deliveries, st.Wasted, st.Retries, st.Redelivered,
		st.Deduped, st.Degraded, st.Quarantined, st.Offline, st.Lost,
	}
}

var statsVectorNames = []string{
	"Published", "Multicast", "Unicast", "Broadcast",
	"Deliveries", "Wasted", "Retries", "Redelivered",
	"Deduped", "Degraded", "Quarantined", "Offline", "Lost",
}

// TestStatsConcurrentMonotone hammers Stats() from several goroutines
// while a chaos scenario (drops + duplicates + retries) is in full flight,
// and asserts that every snapshot a reader takes is component-wise
// monotone: cumulative counters never run backwards. Under -race this also
// proves snapshotting is safe against the delivery hot path.
func TestStatsConcurrentMonotone(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 20, CellBudget: 400}, 230)
	evs := w.Events(250, 231)

	inj, err := faults.New(faults.Config{Seed: 232, DropProb: 0.25, DupProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(e, WithWorkers(4), WithFaults(inj), WithReliability(fastRel()))
	if err != nil {
		t.Fatal(err)
	}

	const readers = 4
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			prev := statsVector(b.Stats())
			for {
				select {
				case <-done:
					return
				default:
				}
				cur := statsVector(b.Stats())
				for i := range cur {
					if cur[i] < prev[i] {
						t.Errorf("stats counter %s ran backwards: %d -> %d",
							statsVectorNames[i], prev[i], cur[i])
						return
					}
				}
				prev = cur
			}
		}()
	}

	for i := range evs {
		if err := b.Publish(evs[i]); err != nil {
			t.Fatal(err)
		}
		if i%16 == 0 {
			time.Sleep(50 * time.Microsecond) // let retries interleave with reads
		}
	}
	b.Close()
	close(done)
	wg.Wait()

	st := b.Stats()
	if st.Published != int64(len(evs)) {
		t.Fatalf("Published = %d, want %d", st.Published, len(evs))
	}
	if st.Retries == 0 {
		t.Error("chaos profile produced no retries; the test exercised nothing")
	}
}
