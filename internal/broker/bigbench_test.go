package broker

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/multicast"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

// big1M caches the million-subscriber engine across the benchmark's worker
// sub-runs: the setup (topology generation, R*-tree bulk insert, grid
// rasterisation, clustering) dominates a single build by minutes and is
// identical for every worker count.
var big1M struct {
	once sync.Once
	eng  *core.Engine
	evs  []workload.Event
	err  error
	subs int
}

// sink1M keeps the compiler from eliding decision work.
var sink1M int64

// setupBig1M builds a world with one subscription per stub node:
// 1,048,576 subscribers at full scale, 65,536 under -short (the CI smoke
// scale). Every subscription covers exactly one cell of a 64×64 grid, so
// an event matches ≈ subs/4096 · (0.8)² subscriptions — a dense enough hit
// list to exercise the sort/compact path, sparse enough that group
// membership vectors stay in compressed form.
//
// DynamicMethod is off: the static decide path never prices routes, so the
// benchmark needs no shortest-path trees over the million-node graph.
func setupBig1M(b *testing.B) (*core.Engine, []workload.Event, int) {
	big1M.once.Do(func() {
		topo := topology.Config{
			TransitBlocks: 8, TransitPerBlock: 32,
			StubsPerTransit: 64, NodesPerStub: 64,
			// The generator's redundant-edge pass is quadratic per stub;
			// thin it out so a 16k-stub network builds in seconds.
			ExtraEdgeProb: 0.02,
			Seed:          400,
		}
		if testing.Short() {
			topo.TransitBlocks, topo.TransitPerBlock = 4, 16
			topo.StubsPerTransit, topo.NodesPerStub = 16, 64
		}
		g, err := topology.Generate(topo)
		if err != nil {
			big1M.err = err
			return
		}

		const cells = 64 // per axis; 64×64 = 4096 grid cells
		axes := []space.Axis{
			{Lo: 0, Hi: 1, Cells: cells},
			{Lo: 0, Hi: 1, Cells: cells},
		}
		rng := rand.New(rand.NewSource(401))
		var subs []workload.Subscription
		for n := 0; n < g.NumNodes(); n++ {
			id := topology.NodeID(n)
			if g.Node(id).Kind != topology.StubNode {
				continue
			}
			// One cell per subscription, inset 10% so rectangle edges never
			// rasterise into a neighbouring cell.
			ci := float64(rng.Intn(cells))
			cj := float64(rng.Intn(cells))
			subs = append(subs, workload.Subscription{
				Owner: id,
				Rect: space.Rect{
					{Lo: (ci + 0.1) / cells, Hi: (ci + 0.9) / cells},
					{Lo: (cj + 0.1) / cells, Hi: (cj + 0.9) / cells},
				},
			})
		}
		w, err := workload.NewCustomWorld(g, axes, subs)
		if err != nil {
			big1M.err = err
			return
		}
		e, err := core.NewFromWorld(w, w.Events(4096, 402), core.Config{
			Groups: 32, CellBudget: 512, DynamicMethod: false,
		})
		if err != nil {
			big1M.err = err
			return
		}
		big1M.eng = e
		big1M.evs = w.Events(8192, 403)
		big1M.subs = len(subs)
	})
	if big1M.err != nil {
		b.Fatal(big1M.err)
	}
	return big1M.eng, big1M.evs, big1M.subs
}

// BenchmarkPublishDecide1M measures the decide plane at a million
// subscribers: concurrent workers, each with its own SPT view and reused
// DecideScratch, draining a shared event feed through
// DecisionSnapshot.DecideInto — exactly what the broker's decision workers
// run, minus the delivery fabric (a full Broker at this scale would need
// one inbox goroutine per subscriber node). Run it via `make bench-1m`;
// -short drops to 65,536 subscribers for the CI smoke.
func BenchmarkPublishDecide1M(b *testing.B) {
	eng, evs, subs := setupBig1M(b)
	snap := eng.Snapshot()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("decideWorkers=%d", workers), func(b *testing.B) {
			views := make([]*multicast.SPTView, workers)
			scratches := make([]*core.DecideScratch, workers)
			for i := range views {
				views[i] = eng.NewSPTView()
				scratches[i] = &core.DecideScratch{}
				// Warm each worker's scratch to steady-state capacity so the
				// timed region stays allocation-free.
				for _, ev := range evs[:64] {
					snap.DecideInto(ev, views[i], scratches[i])
				}
			}
			b.ReportMetric(float64(subs), "subs")
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			const chunk = 256
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func(wk int) {
					defer wg.Done()
					view, sc := views[wk], scratches[wk]
					var local int64
					for {
						start := next.Add(chunk) - chunk
						if start >= int64(b.N) {
							break
						}
						end := start + chunk
						if end > int64(b.N) {
							end = int64(b.N)
						}
						for i := start; i < end; i++ {
							d := snap.DecideInto(evs[i%int64(len(evs))], view, sc)
							local += int64(len(d.MatchedSubs)) + int64(d.Group)
						}
					}
					atomic.AddInt64(&sink1M, local)
				}(wk)
			}
			wg.Wait()
		})
	}
}
