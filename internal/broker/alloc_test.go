package broker

import (
	"testing"

	"repro/internal/core"
)

// TestDecidePathZeroAllocs pins the steady-state decide path at zero
// allocations per event: after warm-up (lazy shortest-path trees filled,
// scratch buffers grown to capacity), DecisionSnapshot.DecideInto with a
// reused DecideScratch must not touch the heap — the property
// BenchmarkPublishDecide's 0 allocs/op depends on. Any new allocation on
// the path (a map rebuild, a sort closure, an escaping slice) fails this
// test before it shows up as a throughput regression.
//
// Skipped under -race: the detector's shadow memory inflates
// testing.AllocsPerRun. `make tier1` runs the race suite and this test via
// a separate uninstrumented invocation (see the tier1 target).
func TestDecidePathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-detector shadow allocations")
	}
	e, w := testEngine(t, core.Config{
		Groups: 20, CellBudget: 400, DynamicMethod: true,
	}, 350)
	snap := e.Snapshot()
	view := e.NewSPTView()
	sc := &core.DecideScratch{}
	evs := w.Events(512, 351)
	// Warm-up: every distinct publisher root fills its shared SPT lazily on
	// first use, and the scratch grows to the workload's high-water mark.
	for _, ev := range evs {
		snap.DecideInto(ev, view, sc)
	}
	i := 0
	allocs := testing.AllocsPerRun(400, func() {
		snap.DecideInto(evs[i%len(evs)], view, sc)
		i++
	})
	if allocs != 0 {
		t.Fatalf("decide path allocates %.1f times per event, want 0", allocs)
	}
}
