//go:build race

package broker

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
