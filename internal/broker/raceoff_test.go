//go:build !race

package broker

// raceEnabled reports whether the race detector instruments this build.
// testing.AllocsPerRun counts the detector's shadow allocations, so the
// zero-allocation regression test only runs in uninstrumented builds.
const raceEnabled = false
