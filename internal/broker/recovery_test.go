package broker

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/topology"
	"repro/internal/workload"
)

// fastHealth is a health config tuned so the whole detect → open →
// half-open → close → auto-refresh cycle completes in tens of
// milliseconds of wall time.
func fastHealth(seed int64) health.Config {
	return health.Config{
		MaxInflight:        512,
		Policy:             health.Block,
		FailureThreshold:   2,
		OpenTimeout:        5 * time.Millisecond,
		ProbeInterval:      2 * time.Millisecond,
		ProbeSuccesses:     1,
		AutoRefresh:        true,
		CheckInterval:      2 * time.Millisecond,
		MinRefreshInterval: 10 * time.Millisecond,
		StableTicks:        2,
		WarmIters:          2,
		Seed:               seed,
	}
}

// incidentEdges returns every edge touching node n.
func incidentEdges(g *topology.Graph, n topology.NodeID) []topology.EdgeKey {
	var out []topology.EdgeKey
	for _, he := range g.Neighbors(n) {
		out = append(out, topology.MakeEdgeKey(n, he.To))
	}
	return out
}

// TestChaosRecovery is the self-healing acceptance scenario: partition a
// busy subscriber (every incident link failed), watch quarantines pile up
// and its breaker open, then restore the links and verify the system heals
// itself — breaker re-closes via probes, the control loop auto-refreshes
// the engine, no quarantines remain, and the post-recovery decided
// delivery cost of the exact baseline event slice is within 10% of its
// pre-fault value — all without a manual Refresh.
func TestChaosRecovery(t *testing.T) {
	const seed = 900
	cfg := core.Config{Groups: 20, CellBudget: 400}
	e, w := testEngine(t, cfg, seed)
	victim := busiestSubscriber(w)

	inj, err := faults.New(faults.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	h, err := health.New(fastHealth(seed))
	if err != nil {
		t.Fatal(err)
	}

	// The decision observer records each decided event's network cost, in
	// sequence order (WithDecideWorkers(1) pins a serial decision stage).
	var mu sync.Mutex
	var costs []float64
	b, err := New(e, WithWorkers(4), WithDecideWorkers(1), WithFaults(inj), WithReliability(fastRel()),
		WithHealth(h),
		WithDecisionObserver(func(seq int64, ev workload.Event, d core.Decision, c core.Costs) {
			mu.Lock()
			costs = append(costs, c.Network)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}

	baseline := w.Events(150, seed+10)
	outage := w.Events(150, seed+11)
	probes := w.Events(400, seed+12)

	publish := func(evs []workload.Event) {
		t.Helper()
		for _, ev := range evs {
			if err := b.Publish(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	meanRange := func(lo, n int) float64 {
		mu.Lock()
		defer mu.Unlock()
		sum := 0.0
		for _, c := range costs[lo : lo+n] {
			sum += c
		}
		return sum / float64(n)
	}
	published := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(costs)
	}

	// Phase A — healthy baseline.
	publish(baseline)
	for published() < len(baseline) {
		time.Sleep(time.Millisecond)
	}
	baseStart := 0

	// Phase B — partition the victim: every incident link fails, so
	// deliveries to it abandon (no alternate path exists) and its breaker
	// opens.
	edges := incidentEdges(w.Graph, victim)
	if len(edges) == 0 {
		t.Fatal("victim has no incident edges")
	}
	for _, k := range edges {
		inj.FailLink(k.U, k.V)
	}
	publish(outage)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := b.Stats()
		ts := h.Tracker.Snapshot()
		if st.Quarantined > 0 && ts.Open+ts.HalfOpen > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fault never detected: stats %+v tracker %+v", st, ts)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := b.Stats(); st.Lost == 0 && st.BreakerSkipped == 0 {
		t.Fatal("partition produced neither losses nor breaker skips; scenario vacuous")
	}

	// Phase C — restore the links and keep trickling traffic so half-open
	// probes reach the victim; the breaker must re-close and the control
	// loop must auto-refresh away the quarantines.
	for _, k := range edges {
		inj.RestoreLink(k.U, k.V)
	}
	// Healed means fully quiet: every breaker closed, at least one
	// auto-refresh fired, no quarantines remain, and the pipeline is fully
	// drained — Inflight()==0 proves no still-retrying outage delivery can
	// fail later and re-quarantine a group mid-replay (late failures after
	// the first refresh are expected; the loop keeps refreshing until the
	// system is clean).
	healed, quiet := false, 0
	for i := 0; !healed; i = (i + 10) % len(probes) {
		publish(probes[i : i+10])
		time.Sleep(4 * time.Millisecond)
		ts := h.Tracker.Snapshot()
		if ts.Open == 0 && ts.HalfOpen == 0 &&
			b.Stats().AutoRefreshes >= 1 && b.QuarantineCount() == 0 &&
			h.Admission.Inflight() == 0 {
			quiet++
		} else {
			quiet = 0
		}
		healed = quiet >= 2 // two consecutive quiet samples, not a blip
		if time.Now().After(deadline) {
			break
		}
	}
	if !healed {
		t.Fatalf("system did not heal: tracker %+v stats %+v", h.Tracker.Snapshot(), b.Stats())
	}

	// Phase D — replay the exact baseline slice and compare decided cost.
	preD := published()
	// Wait for everything published so far to be decided, so the baseline
	// replay occupies a contiguous range of the cost series.
	publish(baseline)
	b.Close()

	st := b.Stats()
	if st.BreakerOpens == 0 {
		t.Error("breaker never opened")
	}
	if st.Quarantined == 0 {
		t.Error("no group was quarantined")
	}
	if st.AutoRefreshes == 0 {
		t.Error("control loop never auto-refreshed")
	}
	if st.Probes == 0 {
		t.Error("no half-open probes were admitted")
	}
	ts := h.Tracker.Snapshot()
	if ts.Open != 0 || ts.HalfOpen != 0 {
		t.Errorf("breakers still open after recovery: %+v", ts)
	}
	// The broker is closed: the engine is safe to inspect directly.
	if n := e.NumQuarantined(); n != 0 {
		t.Errorf("%d groups still quarantined after self-healing (groups %v)", n, e.QuarantinedGroups())
	}

	pre := meanRange(baseStart, len(baseline))
	post := meanRange(preD, len(baseline))
	if pre <= 0 {
		t.Fatalf("degenerate baseline cost %v", pre)
	}
	if diff := (post - pre) / pre; diff > 0.10 || diff < -0.10 {
		t.Errorf("post-recovery mean decided cost %.3f vs baseline %.3f (%.1f%% off, want within 10%%)",
			post, pre, diff*100)
	}
}

// TestAutoRefreshDisabled: without AutoRefresh the same partition leaves
// quarantines in place — the control loop, not time, is what heals.
func TestAutoRefreshDisabled(t *testing.T) {
	const seed = 910
	cfg := core.Config{Groups: 12, CellBudget: 300}
	e, w := testEngine(t, cfg, seed)
	victim := busiestSubscriber(w)

	inj, err := faults.New(faults.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	hc := fastHealth(seed)
	hc.AutoRefresh = false
	h, err := health.New(hc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(e, WithFaults(inj), WithReliability(fastRel()), WithHealth(h))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range incidentEdges(w.Graph, victim) {
		inj.FailLink(k.U, k.V)
	}
	for _, ev := range w.Events(200, seed+1) {
		if err := b.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // would be ample for the loop to fire
	b.Close()
	st := b.Stats()
	if st.Quarantined == 0 {
		t.Skip("partition never hit a routed group for this seed")
	}
	if st.AutoRefreshes != 0 {
		t.Errorf("auto-refresh fired %d times with the loop disabled", st.AutoRefreshes)
	}
	if e.NumQuarantined() == 0 {
		t.Error("quarantines vanished without a refresh")
	}
}
