package broker

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ckey identifies one message copy: a (node, publication) pair.
type ckey struct {
	node topology.NodeID
	seq  int64
}

// obs is a thread-safe observer tally of interested and total copies.
type obs struct {
	mu    sync.Mutex
	inter map[ckey]int // interested copies
	all   map[ckey]int // every observed copy, wasted included
}

func newObs() *obs {
	return &obs{inter: map[ckey]int{}, all: map[ckey]int{}}
}

func (o *obs) observer() Option {
	return WithObserver(func(n topology.NodeID, d Delivery) {
		k := ckey{n, d.Seq}
		o.mu.Lock()
		o.all[k]++
		if d.Interested {
			o.inter[k]++
		}
		o.mu.Unlock()
	})
}

// interestedNodes brute-forces the oracle's interest set for one event.
func interestedNodes(w *workload.World, ev workload.Event) map[topology.NodeID]bool {
	out := map[topology.NodeID]bool{}
	for _, s := range w.Subs {
		if s.Rect.Contains(ev.Point) {
			out[s.Owner] = true
		}
	}
	return out
}

// coveringRect returns a rectangle containing the world's event-space box
// and every one of the given events (stock random walks can stray past the
// nominal axis bounds) — a subscription on it matches everything published
// in the test.
func coveringRect(w *workload.World, evs []workload.Event) space.Rect {
	r := make(space.Rect, len(w.Axes))
	for i, a := range w.Axes {
		r[i] = space.Interval{Lo: a.Lo, Hi: a.Hi}
	}
	for _, ev := range evs {
		for i, x := range ev.Point {
			if x < r[i].Lo {
				r[i].Lo = x
			}
			if x > r[i].Hi {
				r[i].Hi = x
			}
		}
	}
	for i := range r {
		r[i].Lo-- // intervals are (Lo, Hi]: keep the envelope's min inside
	}
	return r
}

// noAutoCkpt disables the automatic checkpoint triggers so each scenario
// controls rotation explicitly.
func noAutoCkpt(crash *faults.CrashInjector) durable.Options {
	return durable.Options{CheckpointRecords: -1, CheckpointInterval: -1, Crash: crash}
}

// runCrashRestart is the crash–restart chaos harness. Incarnation 1 opens
// a durable broker over a fresh directory with a deterministic crash plan
// armed, publishes events until the plan fires (recording which Publish
// calls were acknowledged), optionally forces a mid-run checkpoint, and
// closes. Incarnation 2 rebuilds an identical engine from the same seeds,
// recovers from the directory, drains the redelivery, and closes.
//
// The oracle then checks, against brute-force interest:
//
//   - every acknowledged publish reached every interested node exactly
//     once across the two incarnations;
//   - every unacknowledged publish reached each node at most once;
//   - no (node, seq) pair anywhere — wasted copies included — saw a
//     duplicate.
//
// It returns the recovered broker's recovery stats plus whether the
// mid-run checkpoint (if requested) completed before the crash, for
// scenario-specific assertions.
func runCrashRestart(t *testing.T, plan faults.CrashPlan, midCkpt bool) (durable.RecoveryStats, bool) {
	t.Helper()
	const nEvents = 150
	cfg := core.Config{Groups: 25, CellBudget: 500}
	seed := int64(401)
	dir := t.TempDir()

	e1, w := testEngine(t, cfg, seed)
	evs := w.Events(nEvents, seed+10)
	o := newObs()
	inj := faults.NewCrashInjector(plan)
	b1, err := Open(dir, e1, WithWorkers(2), o.observer(),
		WithDurableOptions(noAutoCkpt(inj)))
	if err != nil {
		t.Fatal(err)
	}
	if !b1.Durable() {
		t.Fatal("Open returned a non-durable broker")
	}

	acked := make([]bool, nEvents)
	crashed, ckptOK := false, false
	for i := range evs {
		// Early enough that the append-counter crash plans usually fire
		// after it — but acks append concurrently, so whether the
		// checkpoint beat the crash is only known from its return.
		if midCkpt && i == 10 {
			err := b1.Checkpoint()
			ckptOK = err == nil
			if err != nil && !errors.Is(err, faults.ErrCrashed) {
				t.Fatalf("mid-run checkpoint: %v", err)
			}
		}
		err := b1.Publish(evs[i])
		switch {
		case err == nil:
			acked[i] = true
		case errors.Is(err, faults.ErrCrashed):
			crashed = true
		default:
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if plan.Point != faults.CrashMidCheckpoint && !crashed {
		t.Fatalf("crash plan %v never fired during publishing", plan)
	}
	// Copies whose ack append raced the crash sit in the output-commit
	// window: the ack may or may not have reached the journal, so their
	// delivery count is legitimately 0 or 1 — never 2.
	uncertain := map[ckey]bool{}
	for _, a := range b1.CrashDroppedCopies() {
		uncertain[ckey{a.Node, a.Seq}] = true
	}
	b1.Close()

	// Incarnation 2: identical engine from the same seeds, recover, drain.
	e2, _ := testEngine(t, cfg, seed)
	b2, err := Open(dir, e2, WithWorkers(2), o.observer())
	if err != nil {
		t.Fatal(err)
	}
	rec := b2.Recovery()
	b2.Close()

	// Oracle. Sequence numbers are assigned in Publish-call order by the
	// single publishing goroutine, so event i carries seq i.
	o.mu.Lock()
	defer o.mu.Unlock()
	for i, ev := range evs {
		want := interestedNodes(w, ev)
		for n := range want {
			got := o.inter[ckey{n, int64(i)}]
			if acked[i] && got != 1 && !uncertain[ckey{n, int64(i)}] {
				t.Errorf("acked event %d delivered %d times to interested node %d, want exactly 1", i, got, n)
			}
			if !acked[i] && got > 1 {
				t.Errorf("unacked event %d delivered %d times to node %d", i, got, n)
			}
		}
	}
	for k, c := range o.all {
		if c > 1 {
			t.Errorf("node %d received seq %d %d times (dedup across restart failed)", k.node, k.seq, c)
		}
	}
	return rec, ckptOK
}

func TestCrashRestartExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("crash–restart chaos suite is slow; run without -short")
	}
	points := []faults.CrashPoint{
		faults.CrashBeforeAppend, faults.CrashAfterAppend, faults.CrashTornAppend,
	}
	for _, p := range points {
		for _, midCkpt := range []bool{false, true} {
			name := p.String()
			if midCkpt {
				name += "-after-checkpoint"
			}
			t.Run(name, func(t *testing.T) {
				// The append counter covers publish, ack and churn records,
				// so 400 appends land mid-stream of 150 events.
				rec, ckptOK := runCrashRestart(t, faults.CrashPlan{AtAppend: 400, Point: p}, midCkpt)
				if rec.RecordsReplayed == 0 {
					t.Error("recovery replayed nothing; crash plan misfired")
				}
				if ckptOK && !rec.CheckpointLoaded {
					t.Error("completed checkpoint not loaded at recovery")
				}
				if !midCkpt && rec.CheckpointLoaded {
					t.Error("CheckpointLoaded without any checkpoint")
				}
				if p == faults.CrashTornAppend && rec.TornTruncations != 1 {
					t.Errorf("TornTruncations = %d, want 1", rec.TornTruncations)
				}
				if p != faults.CrashTornAppend && rec.TornTruncations != 0 {
					t.Errorf("TornTruncations = %d, want 0", rec.TornTruncations)
				}
			})
		}
	}
}

func TestCrashRestartMidCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("crash–restart chaos suite is slow; run without -short")
	}
	// The mid-checkpoint crash strands the temp file between write and
	// rename: the checkpoint must not take effect, and both the original
	// and the freshly rotated journal must replay.
	rec, _ := runCrashRestart(t, faults.CrashPlan{Point: faults.CrashMidCheckpoint}, true)
	if rec.CheckpointLoaded {
		t.Error("half-installed checkpoint was loaded")
	}
	if rec.JournalsReplayed != 2 {
		t.Errorf("JournalsReplayed = %d, want 2 (original + rotated)", rec.JournalsReplayed)
	}
}

// TestCrashRestartTornTailTelemetry pins the torn-tail contract end to
// end: the recovered broker's telemetry carries the CRC-detected
// truncation under durable/torn_truncations.
func TestCrashRestartTornTailTelemetry(t *testing.T) {
	dir := t.TempDir()
	cfg := core.Config{Groups: 10, CellBudget: 300}
	e1, w := testEngine(t, cfg, 431)
	evs := w.Events(60, 440)
	inj := faults.NewCrashInjector(faults.CrashPlan{AtAppend: 30, Point: faults.CrashTornAppend})
	b1, err := Open(dir, e1, WithWorkers(2), WithDurableOptions(noAutoCkpt(inj)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range evs {
		if err := b1.Publish(evs[i]); errors.Is(err, faults.ErrCrashed) {
			break
		}
	}
	if !inj.Dead() {
		t.Fatal("torn crash never fired")
	}
	b1.Close()

	e2, _ := testEngine(t, cfg, 431)
	b2, err := Open(dir, e2, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if got := b2.Recovery().TornTruncations; got != 1 {
		t.Errorf("Recovery().TornTruncations = %d, want 1", got)
	}
	snap := b2.Telemetry().Snapshot()
	if got := snap["durable"].Counters["torn_truncations"]; got != 1 {
		t.Errorf("durable/torn_truncations = %d, want 1", got)
	}
	if snap["durable"].Counters["replayed_records"] == 0 {
		t.Error("durable/replayed_records = 0 after a journal replay")
	}
}

// TestDurableCleanShutdownRestart pins the Stats preservation contract: a
// clean Close checkpoints everything, the next incarnation replays zero
// records, carries the cumulative work counters forward, and resets the
// per-incarnation ones.
func TestDurableCleanShutdownRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := core.Config{Groups: 10, CellBudget: 300}
	seed := int64(451)
	e1, w := testEngine(t, cfg, seed)
	evs := w.Events(120, seed+10)
	o := newObs()

	b1, err := Open(dir, e1, WithWorkers(2), o.observer())
	if err != nil {
		t.Fatal(err)
	}
	// One churn request before the traffic: makes SnapshotSwaps nonzero in
	// this incarnation (so its reset is observable) and exercises the
	// preserved Subscribes counter. A full-space subscription keeps the
	// oracle simple — its owner must see every event exactly once.
	extra := coveringRect(w, evs)
	extraOwner := w.SubscriberNodes[0]
	if _, err := b1.Subscribe(workload.Subscription{Owner: extraOwner, Rect: extra}); err != nil {
		t.Fatal(err)
	}
	for i := range evs[:80] {
		if err := b1.Publish(evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	b1.Close()
	st1 := b1.Stats()
	if st1.Published != 80 {
		t.Fatalf("incarnation 1 Published = %d, want 80", st1.Published)
	}
	if st1.SnapshotSwaps == 0 {
		t.Fatal("incarnation 1 made no snapshot swaps")
	}
	if st1.Subscribes != 1 {
		t.Fatalf("incarnation 1 Subscribes = %d, want 1", st1.Subscribes)
	}

	e2, _ := testEngine(t, cfg, seed)
	b2, err := Open(dir, e2, WithWorkers(2), o.observer())
	if err != nil {
		t.Fatal(err)
	}
	rec := b2.Recovery()
	if !rec.CheckpointLoaded {
		t.Error("clean shutdown did not leave a checkpoint")
	}
	if rec.Outstanding != 0 || rec.RecordsReplayed != 0 {
		t.Errorf("clean restart replayed %d records, %d outstanding; want 0/0",
			rec.RecordsReplayed, rec.Outstanding)
	}

	// Preserved counters carry forward before any new traffic...
	st2 := b2.Stats()
	if st2.Published != st1.Published || st2.Deliveries != st1.Deliveries ||
		st2.Multicast != st1.Multicast || st2.Unicast != st1.Unicast ||
		st2.Wasted != st1.Wasted || st2.Subscribes != st1.Subscribes {
		t.Errorf("preserved counters drifted across restart:\n  before %+v\n  after  %+v", st1, st2)
	}
	// ...while per-incarnation counters restart at zero.
	if st2.SnapshotSwaps >= st1.SnapshotSwaps {
		t.Errorf("SnapshotSwaps = %d not reset (incarnation 1 ended at %d)",
			st2.SnapshotSwaps, st1.SnapshotSwaps)
	}

	// New traffic continues the preserved counters and the seq space.
	for i := range evs[80:] {
		if err := b2.Publish(evs[80+i]); err != nil {
			t.Fatal(err)
		}
	}
	b2.Close()
	if got := b2.Stats().Published; got != 120 {
		t.Errorf("cumulative Published = %d, want 120", got)
	}

	// Exactly-once for every event across both incarnations — including to
	// the churned full-space subscriber, which must see all 120.
	o.mu.Lock()
	defer o.mu.Unlock()
	for i, ev := range evs {
		want := interestedNodes(w, ev)
		want[extraOwner] = true
		for n := range want {
			if got := o.inter[ckey{n, int64(i)}]; got != 1 {
				t.Errorf("event %d delivered %d times to node %d, want 1", i, got, n)
			}
		}
	}
	for k, c := range o.all {
		if c > 1 {
			t.Errorf("node %d received seq %d %d times", k.node, k.seq, c)
		}
	}
}

// TestDurableChurnCrashRestart drives subscription churn through a
// durable broker, crashes it, and verifies the churned state — a new
// subscriber on a previously subscription-free node, and a removed base
// subscription — survives into the next incarnation.
func TestDurableChurnCrashRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := core.Config{Groups: 10, CellBudget: 300}
	seed := int64(461)
	e1, w := testEngine(t, cfg, seed)

	// A node with no base subscriptions, to make the positive assertion
	// unambiguous.
	isSub := map[topology.NodeID]bool{}
	for _, n := range w.SubscriberNodes {
		isSub[n] = true
	}
	var fresh topology.NodeID = -1
	for n := 0; n < w.Graph.NumNodes(); n++ {
		if !isSub[topology.NodeID(n)] {
			fresh = topology.NodeID(n)
			break
		}
	}
	if fresh < 0 {
		t.Skip("every node subscribes in this world")
	}
	all := coveringRect(w, w.Events(100, seed+10))

	o := newObs()
	// Crash on the append counter after the two churn appends but before
	// the 100 publish appends run out (acks only bring it forward).
	inj := faults.NewCrashInjector(faults.CrashPlan{AtAppend: 60, Point: faults.CrashAfterAppend})
	b1, err := Open(dir, e1, WithWorkers(2), o.observer(), WithDurableOptions(noAutoCkpt(inj)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Subscribe(workload.Subscription{Owner: fresh, Rect: all}); err != nil {
		t.Fatal(err)
	}
	if err := b1.Unsubscribe(0); err != nil { // base slot 0
		t.Fatal(err)
	}
	evs := w.Events(100, seed+10)
	acked := 0
	for i := range evs {
		if err := b1.Publish(evs[i]); err == nil {
			acked++
		}
	}
	if !inj.Dead() {
		t.Fatal("crash plan never fired")
	}
	b1.Close()

	// Recover into an identical pristine engine: churn must be replayed.
	e2, _ := testEngine(t, cfg, seed)
	o2 := newObs()
	b2, err := Open(dir, e2, WithWorkers(2), o2.observer())
	if err != nil {
		t.Fatal(err)
	}
	// No checkpoint ever committed, so the preserved counters restart at
	// zero — durable identity lives in the journal, not in the counters.
	if got := b2.Stats().Subscribes; got != 0 {
		t.Errorf("Subscribes = %d after checkpoint-free recovery, want 0", got)
	}
	if got, want := b2.Recovery().Outstanding, acked; got == 0 || got > want+1 {
		t.Errorf("Outstanding = %d, want ≈ %d acked publishes", got, want)
	}
	// The recovered full-space subscription receives any post-restart
	// publish exactly once.
	post := workload.Event{Pub: evs[0].Pub, Point: evs[0].Point}
	if err := b2.Publish(post); err != nil {
		t.Fatal(err)
	}
	b2.Close()

	postSeq := int64(-1)
	o2.mu.Lock()
	for k := range o2.inter {
		if k.node == fresh && k.seq > postSeq {
			postSeq = k.seq
		}
	}
	recvd := 0
	for k, c := range o2.inter {
		if k.node == fresh && k.seq == postSeq {
			recvd = c
		}
	}
	o2.mu.Unlock()
	if recvd != 1 {
		t.Errorf("recovered subscription received the post-restart publish %d times, want 1", recvd)
	}
}

// TestDurableFreshDirIsJustNew sanity-checks the no-recovery path: a
// durable broker over an empty directory behaves like New and reports
// zero recovery work.
func TestDurableFreshDirIsJustNew(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 10, CellBudget: 300}, 471)
	b, err := Open(t.TempDir(), e, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if rec := b.Recovery(); rec.CheckpointLoaded || rec.RecordsReplayed != 0 {
		t.Errorf("fresh directory recovery stats = %+v", rec)
	}
	evs := w.Events(20, 480)
	for i := range evs {
		if err := b.Publish(evs[i]); err != nil {
			t.Fatal(err)
		}
	}
}
