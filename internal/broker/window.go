package broker

// seqWindow is a fixed-footprint sliding-window duplicate detector over
// publication sequence numbers. It replaces the old unbounded
// map[int64]bool per consumer: memory is exactly one int64 slot per window
// position for the life of the broker, regardless of how many events flow.
//
// The window covers the last size sequence numbers ending at the highest
// value admitted so far. Within any size consecutive sequence numbers the
// residues seq % size are unique, so one slot per residue suffices: a slot
// holding seq means "seq was seen", and overwriting it when a newer number
// with the same residue arrives is exactly the window sliding forward.
// Sequence numbers at or below max-size have fallen out of the window and
// are conservatively treated as duplicates — duplicates only arise from
// immediate retransmission, so a correctly sized window never misclassifies
// a first delivery.
//
// Not safe for concurrent use; each consumer goroutine owns one.
type seqWindow struct {
	slots []int64
	max   int64 // highest sequence number admitted; -1 before the first
}

func newSeqWindow(size int) *seqWindow {
	if size < 1 {
		size = 1
	}
	w := &seqWindow{slots: make([]int64, size), max: -1}
	for i := range w.slots {
		w.slots[i] = -1
	}
	return w
}

// admit reports whether seq is new (true) or a duplicate / fallen out of
// the window (false), and records it. Allocation-free.
func (w *seqWindow) admit(seq int64) bool {
	if seq < 0 {
		return false
	}
	if w.max >= int64(len(w.slots)) && seq <= w.max-int64(len(w.slots)) {
		return false // below the window: assume seen
	}
	i := seq % int64(len(w.slots))
	if w.slots[i] == seq {
		return false
	}
	w.slots[i] = seq
	if seq > w.max {
		w.max = seq
	}
	return true
}
