package broker

import "sort"

// seqWindow is a fixed-footprint sliding-window duplicate detector over
// publication sequence numbers. It replaces the old unbounded
// map[int64]bool per consumer: memory is exactly one int64 slot per window
// position for the life of the broker, regardless of how many events flow.
//
// The window covers the last size sequence numbers ending at the highest
// value admitted so far. Within any size consecutive sequence numbers the
// residues seq % size are unique, so one slot per residue suffices: a slot
// holding seq means "seq was seen", and overwriting it when a newer number
// with the same residue arrives is exactly the window sliding forward.
// Sequence numbers at or below max-size have fallen out of the window and
// are conservatively treated as duplicates — duplicates only arise from
// immediate retransmission, so a correctly sized window never misclassifies
// a first delivery.
//
// Not safe for concurrent use; each consumer goroutine owns one.
type seqWindow struct {
	slots []int64
	max   int64 // highest sequence number admitted; -1 before the first
}

func newSeqWindow(size int) *seqWindow {
	if size < 1 {
		size = 1
	}
	w := &seqWindow{slots: make([]int64, size), max: -1}
	for i := range w.slots {
		w.slots[i] = -1
	}
	return w
}

// fresh reports whether admit(seq) would return true, without recording
// anything. It lets callers interpose a side effect (journalling an ack)
// between the duplicate check and the admission.
func (w *seqWindow) fresh(seq int64) bool {
	if seq < 0 {
		return false
	}
	if w.max >= int64(len(w.slots)) && seq <= w.max-int64(len(w.slots)) {
		return false // below the window: assume seen
	}
	return w.slots[seq%int64(len(w.slots))] != seq
}

// admit reports whether seq is new (true) or a duplicate / fallen out of
// the window (false), and records it. Allocation-free.
func (w *seqWindow) admit(seq int64) bool {
	if seq < 0 {
		return false
	}
	if w.max >= int64(len(w.slots)) && seq <= w.max-int64(len(w.slots)) {
		return false // below the window: assume seen
	}
	i := seq % int64(len(w.slots))
	if w.slots[i] == seq {
		return false
	}
	w.slots[i] = seq
	if seq > w.max {
		w.max = seq
	}
	return true
}

// snapshot returns the window's durable form: the high-water mark and the
// seqs still inside the window, ascending. Everything at or below
// max-size is already implied by the high-water mark.
func (w *seqWindow) snapshot() (max int64, seqs []int64) {
	size := int64(len(w.slots))
	for _, s := range w.slots {
		if s >= 0 && (w.max < size || s > w.max-size) {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return w.max, seqs
}

// restoreSeqWindow rebuilds a window of the given size from a snapshot.
// When size differs from the captured window's, the oldest seqs may fall
// below the restored window — the safe direction for recovery, since
// fallen-out seqs read as already seen (suppressing redelivery rather
// than duplicating it).
func restoreSeqWindow(size int, max int64, seqs []int64) *seqWindow {
	w := newSeqWindow(size)
	sorted := append([]int64(nil), seqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, s := range sorted {
		w.admit(s)
	}
	if max > w.max {
		w.max = max
	}
	return w
}
