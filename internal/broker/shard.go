package broker

import (
	"repro/internal/workload"
)

// Mutation is one subscription-churn operation submitted to a Shard: a
// non-nil Subscribe adds the subscription; otherwise Slot names a live
// subscription to remove.
type Mutation struct {
	Subscribe *workload.Subscription
	Slot      int
}

// ShardInfo describes the decision state a shard currently serves — the
// cheap, lock-free view a federation control plane polls.
type ShardInfo struct {
	SnapshotVersion int64
	Groups          int
	Quarantined     int
	Published       int64
	Deliveries      int64
	Durable         bool
}

// Shard is the contract one broker shard fulfils in a replicated or
// federated deployment: admit publications into its decision plane
// (Decide), mutate its subscription population (Apply), force its durable
// state to a checkpoint (Checkpoint), and report the decision state it
// serves (Snapshot). The in-process Broker is the canonical
// implementation; the replicate package adds two more — a replicating
// leader that fulfils the contract while shipping its journal, and a warm
// standby that rejects writes until promoted. Future federation shards
// (rectangle- or hash-partitioned) implement the same surface, so the
// routing tier above never cares which kind it is talking to.
type Shard interface {
	// Decide admits one publication into the shard's decision plane. A nil
	// return means the publication is accepted (and, for durable shards,
	// journaled): it will be delivered to every matching subscriber.
	Decide(ev workload.Event) error
	// DecideSeq is Decide reporting the shard-local publication sequence
	// the event consumed (deliveries carry it as Delivery.Seq), or -1 when
	// the event never entered the shard's history. A non-negative seq
	// alongside a non-nil error means the seq was consumed — possibly
	// journaled — before the failure; a federation router records it so
	// recovery replays of the half-accepted publish dedup against the
	// router's retry.
	DecideSeq(ev workload.Event) (int64, error)
	// Apply performs one subscription mutation and returns the slot the
	// shard assigned (meaningful for additions).
	Apply(m Mutation) (slot int, err error)
	// Checkpoint forces durable state to a checkpoint; a no-op for
	// non-durable shards.
	Checkpoint() error
	// Snapshot reports the decision state the shard currently serves.
	Snapshot() ShardInfo
	// Close releases the shard, reporting any failure to persist final
	// state.
	Close() error
}

// Compile-time check: the broker is a Shard.
var _ Shard = (*Broker)(nil)

// Decide implements Shard: it is Publish under the federation contract's
// name.
func (b *Broker) Decide(ev workload.Event) error { return b.Publish(ev) }

// DecideSeq implements Shard: PublishSeq under the federation contract's
// name.
func (b *Broker) DecideSeq(ev workload.Event) (int64, error) { return b.PublishSeq(ev) }

// Apply implements Shard, dispatching to Subscribe or Unsubscribe.
func (b *Broker) Apply(m Mutation) (int, error) {
	if m.Subscribe != nil {
		return b.Subscribe(*m.Subscribe)
	}
	return m.Slot, b.Unsubscribe(m.Slot)
}

// Snapshot implements Shard with lock-free reads of the published
// decision snapshot and the stats counters.
func (b *Broker) Snapshot() ShardInfo {
	snap := b.snap.Load()
	return ShardInfo{
		SnapshotVersion: snap.Version(),
		Groups:          snap.NumGroups(),
		Quarantined:     snap.NumQuarantined(),
		Published:       b.ctr.published.Value(),
		Deliveries:      b.ctr.deliveries.Value(),
		Durable:         b.dur != nil,
	}
}
