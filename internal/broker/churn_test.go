package broker

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/space"
	"repro/internal/topology"
	"repro/internal/workload"
)

// fullRect spans the whole event space in every dimension.
func fullRect(dim int) space.Rect {
	r := make(space.Rect, dim)
	for d := range r {
		r[d] = space.Full()
	}
	return r
}

// nonSubscriber returns a node with no subscription at world build time —
// the broker has no inbox or counter for it, so subscribing it exercises
// the dynamic route-table growth (the old broker froze both at New and
// would nil-deref).
func nonSubscriber(t *testing.T, e *core.Engine, w *workload.World) topology.NodeID {
	t.Helper()
	for n := 0; n < e.Model().Graph().NumNodes(); n++ {
		if _, ok := w.SubscriberIndex(topology.NodeID(n)); !ok {
			return topology.NodeID(n)
		}
	}
	t.Fatal("every node subscribes; cannot test churn onto a fresh node")
	return 0
}

// TestChurnNeverLose is the churn chaos test: a subscriber joins and
// leaves the live broker dozens of times while events flow, with
// concurrent background churn and publishing for race coverage. The
// invariant is the paper's never-lose rule made bidirectional:
//
//   - every event published while the subscription was live (Subscribe
//     returned, Unsubscribe not yet called) is delivered to the subscriber
//     exactly once;
//   - no event published after Unsubscribe returned is delivered to it.
//
// The run must also cross ≥ 100 snapshot swaps so the invariant is proven
// across swaps, not within one snapshot's lifetime.
func TestChurnNeverLose(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 20, CellBudget: 400}, 300)
	churnNode := nonSubscriber(t, e, w)
	sub := workload.Subscription{Owner: churnNode, Rect: fullRect(w.Dim)}

	const cycles = 60
	const perPhase = 3
	events := w.Events(cycles*2*perPhase, 301)
	// Tag events by pointer identity of their point slice.
	index := map[*float64]int{}
	for i := range events {
		index[&events[i].Point[0]] = i
	}

	var mu sync.Mutex
	got := make([]int, len(events)) // deliveries of event i to churnNode
	b, err := New(e, WithWorkers(4), WithObserver(func(n topology.NodeID, d Delivery) {
		if n != churnNode {
			return
		}
		// Only phase-tagged events count; background stress events also
		// reach the churn node while it is subscribed.
		i, ok := index[&d.Event.Point[0]]
		if !ok {
			return
		}
		mu.Lock()
		got[i]++
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}

	// Background stress: concurrent churn of other subscriptions plus a
	// concurrent publisher of unrelated events, racing the main loop.
	stressEvents := w.Events(600, 302)
	stop := make(chan struct{})
	var stressWG sync.WaitGroup
	stressWG.Add(2)
	go func() {
		defer stressWG.Done()
		rng := rand.New(rand.NewSource(303))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := w.Subs[rng.Intn(len(w.Subs))]
			slot, err := b.Subscribe(s)
			if err != nil {
				t.Errorf("stress subscribe: %v", err)
				return
			}
			if err := b.Unsubscribe(slot); err != nil {
				t.Errorf("stress unsubscribe: %v", err)
				return
			}
		}
	}()
	go func() {
		defer stressWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := b.Publish(stressEvents[i%len(stressEvents)]); err != nil {
				t.Errorf("stress publish: %v", err)
				return
			}
		}
	}()

	expect := make([]int, len(events))
	next := 0
	for cycle := 0; cycle < cycles; cycle++ {
		slot, err := b.Subscribe(sub)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perPhase; i++ {
			expect[next] = 1
			if err := b.Publish(events[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := b.Unsubscribe(slot); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perPhase; i++ {
			expect[next] = 0
			if err := b.Publish(events[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	close(stop)
	stressWG.Wait()
	b.Close()

	for i := range events {
		if got[i] != expect[i] {
			t.Fatalf("event %d: delivered %d times to churn node, want %d", i, got[i], expect[i])
		}
	}
	st := b.Stats()
	if st.SnapshotSwaps < 100 {
		t.Fatalf("only %d snapshot swaps; the invariant was not exercised across ≥ 100 swaps", st.SnapshotSwaps)
	}
	if st.Subscribes < cycles || st.Unsubscribes < cycles {
		t.Fatalf("churn counters %d/%d, want ≥ %d each", st.Subscribes, st.Unsubscribes, cycles)
	}
	// The dynamically grown per-node counter covers at least the tagged
	// phase-A deliveries (background stress events add more while the
	// churn subscription is live).
	if st.PerNode[churnNode] < int64(cycles*perPhase) {
		t.Fatalf("churn node counter = %d, want ≥ %d", st.PerNode[churnNode], cycles*perPhase)
	}
}

// TestChurnValidation: churn API error paths, including after Close.
func TestChurnValidation(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 5, CellBudget: 200}, 310)
	b, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(workload.Subscription{Owner: 0, Rect: fullRect(w.Dim + 2)}); err == nil {
		t.Error("bad-dimension subscription accepted")
	}
	if err := b.Unsubscribe(99999); err == nil {
		t.Error("bogus slot unsubscribed")
	}
	slot, err := b.Subscribe(w.Subs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe(slot); err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe(slot); err == nil {
		t.Error("double unsubscribe accepted")
	}
	b.Close()
	if _, err := b.Subscribe(w.Subs[0]); err != ErrClosed {
		t.Errorf("subscribe after close: %v, want ErrClosed", err)
	}
	if err := b.Unsubscribe(0); err != ErrClosed {
		t.Errorf("unsubscribe after close: %v, want ErrClosed", err)
	}
}

// TestDecideWorkerEquivalence: the same workload through 1, 2 and 4
// decision workers must produce identical decisions per sequence number —
// sharding the decision plane may reorder work but never change it.
func TestDecideWorkerEquivalence(t *testing.T) {
	events := (*[]workload.Event)(nil)
	runs := map[int]map[int64]core.Decision{}
	for _, workers := range []int{1, 2, 4} {
		e, w := testEngine(t, core.Config{
			Groups: 20, CellBudget: 400, DynamicMethod: true,
		}, 320) // same seed every run ⇒ identical engines
		if events == nil {
			evs := w.Events(300, 321)
			events = &evs
		}
		var mu sync.Mutex
		decisions := map[int64]core.Decision{}
		b, err := New(e, WithDecideWorkers(workers),
			WithDecisionObserver(func(seq int64, ev workload.Event, d core.Decision, c core.Costs) {
				mu.Lock()
				decisions[seq] = d
				mu.Unlock()
			}))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range *events {
			if err := b.Publish(ev); err != nil {
				t.Fatal(err)
			}
		}
		b.Close()
		if len(decisions) != len(*events) {
			t.Fatalf("workers=%d: observed %d decisions, want %d", workers, len(decisions), len(*events))
		}
		runs[workers] = decisions
	}
	for _, workers := range []int{2, 4} {
		for seq, want := range runs[1] {
			if got := runs[workers][seq]; !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d seq %d:\nserial  %+v\nsharded %+v", workers, seq, want, got)
			}
		}
	}
}

// TestRequestRefreshLatestWins: a refresh request queued behind another
// must replace it — the old non-blocking send silently kept the stale
// WarmIters value.
func TestRequestRefreshLatestWins(t *testing.T) {
	b := &Broker{refreshCh: make(chan int, 1)}
	b.requestRefresh(3)
	b.requestRefresh(7) // channel full: must drain the 3 and queue the 7
	select {
	case got := <-b.refreshCh:
		if got != 7 {
			t.Fatalf("writer would see WarmIters = %d, want 7 (latest)", got)
		}
	default:
		t.Fatal("no refresh request queued")
	}
	if len(b.refreshCh) != 0 {
		t.Fatal("stale request left behind")
	}
}

// TestSnapshotVersionVisible: snapshot bookkeeping surfaces through the
// public accessors and advances under churn.
func TestSnapshotVersionVisible(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 5, CellBudget: 200}, 330)
	b, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	v0 := b.SnapshotVersion()
	slot, err := b.Subscribe(w.Subs[0])
	if err != nil {
		t.Fatal(err)
	}
	if v1 := b.SnapshotVersion(); v1 <= v0 {
		t.Fatalf("version %d → %d after subscribe", v0, v1)
	}
	if err := b.Unsubscribe(slot); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if got := b.Stats().SnapshotSwaps; got < 2 {
		t.Fatalf("SnapshotSwaps = %d, want ≥ 2", got)
	}
}

func BenchmarkPublishDecide(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("decideWorkers=%d", workers), func(b *testing.B) {
			topo := topology.Eval600
			topo.Seed = 340
			g, err := topology.Generate(topo)
			if err != nil {
				b.Fatal(err)
			}
			w, err := workload.NewStockWorld(g, workload.StockConfig{
				NumSubscriptions: 300, PubModes: 1, Seed: 341,
			})
			if err != nil {
				b.Fatal(err)
			}
			e, err := core.NewFromWorld(w, w.Events(800, 342), core.Config{
				Groups: 20, CellBudget: 400, DynamicMethod: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			br, err := New(e, WithDecideWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			evs := w.Events(2048, 343)
			// Warm-up pass: every distinct publisher root fills its shared
			// SPT (and the workers their coverers) lazily on first use;
			// publish each event once and drain so the timed region measures
			// steady state, which the decide plane keeps allocation-free.
			for _, ev := range evs {
				if err := br.Publish(ev); err != nil {
					b.Fatal(err)
				}
			}
			for br.Stats().Published < int64(len(evs)) {
				time.Sleep(time.Millisecond)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := br.Publish(evs[i%len(evs)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			br.Close()
		})
	}
}
