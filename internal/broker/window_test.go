package broker

import (
	"math/rand"
	"testing"
)

func TestSeqWindowBasic(t *testing.T) {
	w := newSeqWindow(4)
	for seq := int64(0); seq < 4; seq++ {
		if !w.admit(seq) {
			t.Fatalf("fresh seq %d rejected", seq)
		}
		if w.admit(seq) {
			t.Fatalf("duplicate seq %d admitted", seq)
		}
	}
	// Sliding forward reuses residues without confusing distinct seqs.
	if !w.admit(4) {
		t.Fatal("seq 4 rejected")
	}
	if w.admit(4) {
		t.Fatal("duplicate seq 4 admitted")
	}
	// 0 has fallen out of the window (max-W = 0): treated as seen.
	if w.admit(0) {
		t.Fatal("below-window seq 0 admitted")
	}
	// 1..3 are still inside and already seen.
	for seq := int64(1); seq < 4; seq++ {
		if w.admit(seq) {
			t.Fatalf("in-window duplicate %d admitted", seq)
		}
	}
	if w.admit(-1) {
		t.Fatal("negative seq admitted")
	}
}

func TestSeqWindowOutOfOrder(t *testing.T) {
	w := newSeqWindow(8)
	// Arrivals out of order within the window are each admitted once.
	for _, seq := range []int64{5, 2, 7, 0, 3} {
		if !w.admit(seq) {
			t.Fatalf("seq %d rejected", seq)
		}
	}
	for _, seq := range []int64{5, 2, 7, 0, 3} {
		if w.admit(seq) {
			t.Fatalf("duplicate %d admitted", seq)
		}
	}
	// Unseen in-window seqs still pass.
	for _, seq := range []int64{1, 4, 6} {
		if !w.admit(seq) {
			t.Fatalf("unseen in-window %d rejected", seq)
		}
	}
}

// TestSeqWindowExactlyOnceStream: a long shuffled-with-duplicates stream
// must be admitted exactly once per distinct sequence number, as long as
// reordering stays inside the window — the dedup property the reliability
// protocol needs.
func TestSeqWindowExactlyOnceStream(t *testing.T) {
	const window = 64
	w := newSeqWindow(window)
	rng := rand.New(rand.NewSource(700))
	admitted := map[int64]int{}
	// Deliver seqs 0..9999 shuffled within blocks of 32 (so reordering
	// distance stays well inside the window) with 20% immediate duplicates.
	base := make([]int64, 10000)
	for i := range base {
		base[i] = int64(i)
	}
	for s := 0; s < len(base); s += 32 {
		blk := base[s:min(s+32, len(base))]
		rng.Shuffle(len(blk), func(i, j int) { blk[i], blk[j] = blk[j], blk[i] })
	}
	for _, seq := range base {
		if w.admit(seq) {
			admitted[seq]++
		}
		if rng.Float64() < 0.2 && w.admit(seq) {
			admitted[seq]++ // immediate duplicate must never land
			t.Fatalf("immediate duplicate of %d admitted", seq)
		}
	}
	for seq := int64(0); seq < 10000; seq++ {
		if admitted[seq] != 1 {
			t.Fatalf("seq %d admitted %d times", seq, admitted[seq])
		}
	}
}

// TestSeqWindowFixedFootprint: the detector's memory is fixed at
// construction — admitting millions of sequence numbers allocates nothing.
// The old map[int64]bool grew one entry per event for the broker's
// lifetime.
func TestSeqWindowFixedFootprint(t *testing.T) {
	w := newSeqWindow(4096)
	seq := int64(0)
	allocs := testing.AllocsPerRun(200000, func() {
		w.admit(seq)
		seq++
	})
	if allocs != 0 {
		t.Fatalf("admit allocates %.1f per call; dedup memory is not flat", allocs)
	}
	if len(w.slots) != 4096 {
		t.Fatalf("window resized to %d", len(w.slots))
	}
}

func TestSeqWindowTinySize(t *testing.T) {
	w := newSeqWindow(0) // clamps to 1: "remember only the latest"
	if !w.admit(10) || w.admit(10) {
		t.Fatal("size-1 window broken")
	}
	if !w.admit(11) {
		t.Fatal("size-1 window rejected the next seq")
	}
	if w.admit(10) {
		t.Fatal("size-1 window re-admitted an old seq")
	}
}
