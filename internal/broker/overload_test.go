package broker

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/topology"
	"repro/internal/workload"
)

// matches reports whether any subscription matches the event — events with
// no interested subscriber produce zero deliveries, so delivery accounting
// must exclude them.
func matches(w *workload.World, ev workload.Event) bool {
	for _, s := range w.Subs {
		if s.Rect.Contains(ev.Point) {
			return true
		}
	}
	return false
}

// slowBroker builds a broker whose consumers sleep per delivery, so the
// pipeline congests under a fast publisher. Returns the broker and a
// function reporting the distinct sequence numbers delivered.
func slowBroker(t *testing.T, e *core.Engine, delay time.Duration, hc health.Config) (*Broker, func() map[int64]bool) {
	t.Helper()
	h, err := health.New(hc)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seqs := map[int64]bool{}
	b, err := New(e, WithWorkers(2), WithHealth(h),
		WithObserver(func(n topology.NodeID, d Delivery) {
			mu.Lock()
			seqs[d.Seq] = true
			mu.Unlock()
			time.Sleep(delay)
		}))
	if err != nil {
		t.Fatal(err)
	}
	return b, func() map[int64]bool {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[int64]bool, len(seqs))
		for k := range seqs {
			out[k] = true
		}
		return out
	}
}

// TestOverloadRejectNewest: with a saturated pipeline the RejectNewest
// policy fails fast with health.ErrOverloaded, the inflight count never
// exceeds the cap, and every admitted event is still delivered.
func TestOverloadRejectNewest(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 10, CellBudget: 300}, 930)
	const cap = 8
	b, delivered := slowBroker(t, e, 500*time.Microsecond, health.Config{
		MaxInflight: cap,
		Policy:      health.RejectNewest,
		Seed:        930,
	})

	rejected, expected := 0, 0
	evs := w.Events(300, 931)
	for _, ev := range evs {
		err := b.Publish(ev)
		switch {
		case err == nil:
			if matches(w, ev) {
				expected++
			}
		case errors.Is(err, health.ErrOverloaded):
			rejected++
		default:
			t.Fatalf("unexpected publish error: %v", err)
		}
		if inf := b.Health().Admission.Inflight(); inf > cap {
			t.Fatalf("inflight %d exceeds cap %d", inf, cap)
		}
	}
	b.Close()
	st := b.Stats()
	if rejected == 0 {
		t.Fatal("a saturated pipeline never rejected; overload scenario vacuous")
	}
	if st.Rejected != int64(rejected) {
		t.Errorf("Stats.Rejected = %d, caller saw %d errors", st.Rejected, rejected)
	}
	if st.Published != int64(len(evs)-rejected) {
		t.Errorf("Published = %d, want %d admitted", st.Published, len(evs)-rejected)
	}
	// Every admitted event with an interested subscriber was fanned out.
	if got := len(delivered()); got != expected {
		t.Errorf("delivered %d distinct events, want %d", got, expected)
	}
	if st.Shed != 0 {
		t.Errorf("RejectNewest shed %d events; shedding is ShedLowFanout-only", st.Shed)
	}
}

// TestOverloadBlock: the Block policy is lossless backpressure — no
// rejections, no shedding, every single event delivered.
func TestOverloadBlock(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 10, CellBudget: 300}, 940)
	b, delivered := slowBroker(t, e, 200*time.Microsecond, health.Config{
		MaxInflight: 8,
		Policy:      health.Block,
		Seed:        940,
	})
	evs := w.Events(200, 941)
	expected := 0
	for _, ev := range evs {
		if err := b.Publish(ev); err != nil {
			t.Fatalf("Block policy returned %v", err)
		}
		if matches(w, ev) {
			expected++
		}
	}
	b.Close()
	st := b.Stats()
	if st.Rejected != 0 || st.Shed != 0 {
		t.Errorf("Block policy lost events: rejected %d shed %d", st.Rejected, st.Shed)
	}
	if st.Published != int64(len(evs)) {
		t.Errorf("Published = %d, want %d", st.Published, len(evs))
	}
	if got := len(delivered()); got != expected {
		t.Errorf("delivered %d distinct events, want %d", got, expected)
	}
}

// TestOverloadShedLowFanout: under sustained congestion the shedding
// policy drops decided events below the running mean fanout; everything
// else is still delivered, and the books balance exactly:
// delivered + shed = published.
func TestOverloadShedLowFanout(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 10, CellBudget: 300}, 950)
	b, delivered := slowBroker(t, e, time.Millisecond, health.Config{
		MaxInflight: 512, // larger than fanoutCh, so congestion reaches the shed point
		Policy:      health.ShedLowFanout,
		Seed:        950,
	})
	evs := w.Events(400, 951)
	admitted, matched := 0, 0
	for _, ev := range evs {
		err := b.Publish(ev)
		if err == nil {
			admitted++
			if matches(w, ev) {
				matched++
			}
		} else if !errors.Is(err, health.ErrOverloaded) {
			t.Fatalf("unexpected publish error: %v", err)
		}
	}
	b.Close()
	st := b.Stats()
	if st.Shed == 0 {
		t.Fatal("congested pipeline never shed; scenario vacuous")
	}
	if st.Published != int64(admitted) {
		t.Errorf("Published = %d, want %d admitted", st.Published, admitted)
	}
	// Shed events may or may not have had interested subscribers, so the
	// delivered count is bracketed: at least every matched event that was
	// not shed, at most every matched event.
	got := int64(len(delivered()))
	if got < int64(matched)-st.Shed || got > int64(matched) {
		t.Errorf("delivered %d distinct events, want within [%d−%d, %d]",
			got, matched, st.Shed, matched)
	}
}

// TestPublishRateLimit: the token bucket caps sustained admission
// throughput under RejectNewest.
func TestPublishRateLimit(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 10, CellBudget: 300}, 960)
	h, err := health.New(health.Config{
		Policy:     health.RejectNewest,
		RatePerSec: 100,
		Burst:      5,
		Seed:       960,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(e, WithHealth(h))
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for _, ev := range w.Events(50, 961) {
		if err := b.Publish(ev); errors.Is(err, health.ErrOverloaded) {
			rejected++
		}
	}
	b.Close()
	st := b.Stats()
	if rejected == 0 || st.RateLimited == 0 {
		t.Errorf("burst of 50 events above a 100/s limit never rate-limited (rejected %d, rate_limited %d)",
			rejected, st.RateLimited)
	}
	if st.RateLimited > st.Rejected {
		t.Errorf("RateLimited %d > Rejected %d", st.RateLimited, st.Rejected)
	}
}

// TestPublishAfterCloseWithHealth: the ErrClosed contract holds on the
// admission path too — a closed broker reports ErrClosed, not
// ErrOverloaded, and Close stays idempotent with the control loop running.
func TestPublishAfterCloseWithHealth(t *testing.T) {
	e, w := testEngine(t, core.Config{Groups: 10, CellBudget: 300}, 970)
	hc := fastHealth(970)
	hc.Policy = health.RejectNewest
	hc.MaxInflight = 1
	h, err := health.New(hc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(e, WithHealth(h))
	if err != nil {
		t.Fatal(err)
	}
	evs := w.Events(3, 971)
	if err := b.Publish(evs[0]); err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // idempotent, control loop included
	if err := b.Publish(evs[1]); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close = %v, want ErrClosed", err)
	}
	// No admission slot may leak from the rejected-after-close publish.
	if inf := h.Admission.Inflight(); inf != 0 {
		t.Errorf("inflight %d after close, want 0", inf)
	}
}

// TestReliabilityValidation: nonsense retry tunings are rejected at New.
func TestReliabilityValidation(t *testing.T) {
	e, _ := testEngine(t, core.Config{Groups: 10, CellBudget: 300}, 980)
	bad := []ReliabilityConfig{
		{MaxRetries: -1},
		{LastResort: -3},
		{RetryBudget: -1},
		{BaseBackoff: -time.Millisecond},
		{MaxBackoff: -time.Second},
		{BaseBackoff: 2 * time.Millisecond, MaxBackoff: time.Millisecond},
	}
	for i, rc := range bad {
		if _, err := New(e, WithReliability(rc)); err == nil {
			t.Errorf("config %d accepted: %+v", i, rc)
		}
	}
	// Zero values remain legal (defaults).
	b, err := New(e, WithReliability(ReliabilityConfig{}))
	if err != nil {
		t.Fatalf("zero reliability config rejected: %v", err)
	}
	b.Close()
}
