package replicate

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/wire"
	"repro/internal/workload"
)

// LeaderConfig tunes the leader half of a replicated pair.
type LeaderConfig struct {
	// AckTimeout bounds how long a replication barrier waits for the
	// follower before declaring it dead and continuing solo. Default 1s.
	AckTimeout time.Duration
	// Heartbeat is the ping cadence on an idle replication session —
	// the follower's failure detector feeds on it. Default 100ms.
	Heartbeat time.Duration
	// EpochDir, when set, holds the fencing-epoch file separately from
	// the data directory — e.g. on storage that survives a data-dir
	// rebuild. Defaults to the data directory.
	EpochDir string
	// MaxFrame bounds replication frames (default wire.DefaultMaxFrame).
	MaxFrame int
	// Health tunes the failure detector watching the follower.
	Health health.Config
	// Durable tunes the underlying store (checkpoint cadence, crash
	// injection). The replication tap is installed on top of it.
	Durable durable.Options
}

func (c *LeaderConfig) setDefaults() {
	if c.AckTimeout == 0 {
		c.AckTimeout = defaultAckTimeout
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = defaultHeartbeat
	}
	c.MaxFrame = defaultMaxFrame(c.MaxFrame)
}

// LeaderStats counts replication-side events on a leader.
type LeaderStats struct {
	Resyncs        int64 // follower sessions accepted (each is a full resync)
	RecordsShipped int64 // live records shipped (excludes catch-up)
	CatchupRecords int64 // records streamed from disk during catch-ups
	Acked          int64 // highest follower-acknowledged ship index
	SoloDrops      int64 // times an unresponsive follower was dropped
	Fences         int64 // times this leader observed a higher epoch
}

// entry is one buffered stream element: a record (rec set) or a
// rotation/checkpoint marker (rec nil). idx is the record's barrier
// ticket; markers carry the ticket of the last preceding record so the
// prune watermark can pass them.
type entry struct {
	idx   int64
	rec   []byte
	epoch int64
	ckpt  []byte
}

// feed is one follower session.
type feed struct {
	conn net.Conn
	w    *wire.Writer
	wmu  sync.Mutex // shipper vs heartbeat writes

	// progress is the last sign of follower liveness (unix nanos): a
	// catch-up batch flushed out, or any frame received back. Leader-
	// initiated heartbeats deliberately do not count — a pulse the leader
	// generates itself proves nothing about the other side.
	progress atomic.Int64

	// cursor (next buf element to ship), catching, snapIdx and dead are
	// guarded by Leader.mu.
	cursor   int
	catching bool  // resync in flight: barriers extend instead of dropping
	snapIdx  int64 // catch-up snapshot ticket; the ack that ends catching
	dead     bool
}

func (s *feed) touch() { s.progress.Store(time.Now().UnixNano()) }

// alive reports whether the session showed liveness within window.
func (s *feed) alive(window time.Duration) bool {
	return time.Since(time.Unix(0, s.progress.Load())) < window
}

func (s *feed) write(payloads ...[]byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	for _, p := range payloads {
		if err := s.w.WriteFrame(p); err != nil {
			return err
		}
	}
	return s.w.Flush()
}

// Leader is a durable broker whose journal record stream is shipped to a
// warm-standby follower. It implements durable.Tap (the store feeds it)
// and broker.Shard (callers publish through it like any broker); a
// Publish only acknowledges once its record is fsynced on both sides or
// the follower has been declared dead.
type Leader struct {
	cfg      LeaderConfig
	dir      string
	epochDir string
	b        *broker.Broker
	store    *durable.Store
	tracker  *health.Tracker

	mu      sync.Mutex
	cond    *sync.Cond
	term    int64
	fenced  bool
	killed  bool // simulated process death: refuse sessions silently
	closed  bool
	lastIdx int64 // ticket of the most recent tapped record
	acked   int64 // follower-acknowledged ship index
	buf     []entry
	sess    *feed
	ln      net.Listener
	stats   LeaderStats
}

// leaderTap adapts Leader to durable.Tap (Shard and Tap both want a
// Checkpoint method, with different shapes).
type leaderTap struct{ l *Leader }

var _ durable.Tap = leaderTap{}
var _ broker.Shard = (*Leader)(nil)

func (t leaderTap) AppendRecord(idx int64, payload []byte) { t.l.tapAppend(idx, payload) }
func (t leaderTap) Rotate(journalEpoch int64)              { t.l.tapRotate(journalEpoch) }
func (t leaderTap) Checkpoint(journalEpoch int64, raw []byte) {
	t.l.tapCheckpoint(journalEpoch, raw)
}
func (t leaderTap) Barrier(idx int64) error { return t.l.Barrier(idx) }

// OpenLeader opens (or recovers) a durable broker over dir with the
// replication tap installed, loading the persisted fencing epoch (a
// fresh directory starts at term 1). The leader starts solo; followers
// attach via Accept or Serve.
func OpenLeader(dir string, engine *core.Engine, cfg LeaderConfig, opts ...broker.Option) (*Leader, error) {
	cfg.setDefaults()
	epochDir := cfg.EpochDir
	if epochDir == "" {
		epochDir = dir
	}
	term, err := durable.LoadEpoch(epochDir)
	if err != nil {
		return nil, err
	}
	if term == 0 {
		term = 1
		if err := durable.StoreEpoch(epochDir, term); err != nil {
			return nil, err
		}
	}
	l := &Leader{cfg: cfg, dir: dir, epochDir: epochDir, term: term, tracker: newTracker(cfg.Health)}
	l.cond = sync.NewCond(&l.mu)
	dopts := cfg.Durable
	dopts.Tap = leaderTap{l}
	opts = append(append([]broker.Option(nil), opts...), broker.WithDurableOptions(dopts))
	b, err := broker.Open(dir, engine, opts...)
	if err != nil {
		return nil, err
	}
	l.b = b
	l.store = b.Store()
	return l, nil
}

// ---- durable.Tap --------------------------------------------------------

// tapAppend buffers one appended record for the live stream. Called
// under the store's locks: enqueue only. With no session attached the
// record is dropped — the next catch-up reads it from disk.
func (l *Leader) tapAppend(idx int64, payload []byte) {
	l.mu.Lock()
	l.lastIdx = idx
	if l.sess != nil {
		l.buf = append(l.buf, entry{idx: idx, rec: payload})
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// tapRotate buffers a journal-rotation marker, ordered against appends.
func (l *Leader) tapRotate(journalEpoch int64) {
	l.mu.Lock()
	if l.sess != nil {
		l.buf = append(l.buf, entry{idx: l.lastIdx, epoch: journalEpoch})
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// tapCheckpoint buffers a checkpoint-install marker carrying the encoded
// checkpoint file.
func (l *Leader) tapCheckpoint(journalEpoch int64, raw []byte) {
	l.mu.Lock()
	if l.sess != nil {
		l.buf = append(l.buf, entry{idx: l.lastIdx, epoch: journalEpoch, ckpt: raw})
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// Barrier blocks until the follower has acknowledged every record with
// ticket ≤ idx, there is no follower to wait for, or the wait times out —
// in which case the follower is declared dead and the leader continues
// solo. Returns ErrFenced once a higher epoch has been observed.
func (l *Leader) Barrier(idx int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var armed *time.Timer
	defer func() {
		if armed != nil {
			armed.Stop()
		}
	}()
	var deadline time.Time
	for {
		if l.acked >= idx {
			// The follower has the record — safe to proceed even on a
			// dying leader (both sides will suppress the replay).
			return nil
		}
		if l.fenced {
			return ErrFenced
		}
		dying := l.killed || (l.store != nil && l.store.Crashed())
		if l.sess == nil || l.sess.dead {
			if dying {
				// No follower and this leader is dying: the op must not be
				// acknowledged or observed here — the promoted side never
				// saw its record, so proceeding would lose an ack or mint
				// a duplicate.
				return faults.ErrCrashed
			}
			// Solo: availability over redundancy for a healthy leader.
			return nil
		}
		if armed == nil {
			// sync.Cond has no timed wait: arm a one-shot broadcast at
			// the deadline so the loop re-checks it.
			deadline = time.Now().Add(l.cfg.AckTimeout)
			armed = time.AfterFunc(l.cfg.AckTimeout, func() {
				l.mu.Lock()
				l.cond.Broadcast()
				l.mu.Unlock()
			})
		} else if !time.Now().Before(deadline) {
			// Mid-resync liveness is coarse: the follower acks once per
			// applied catch-up frame (up to shipBatch records), so allow a
			// few AckTimeouts of silence before giving up on the resync.
			if l.sess.catching && l.sess.alive(3*l.cfg.AckTimeout) {
				// Mid-resync the follower legitimately cannot ack new
				// tickets yet. While catch-up traffic is still flowing
				// (batches flushing out, per-batch acks coming back),
				// extend the wait instead of severing a session that would
				// only restart the resync from scratch — under steady
				// publish load that severing livelocks the pair into
				// perpetual catch-up and silently unreplicated operation.
				deadline = time.Now().Add(l.cfg.AckTimeout)
				armed.Reset(l.cfg.AckTimeout)
				continue
			}
			// The follower stopped acknowledging: drop it; a reconnect
			// resyncs from disk. A dying leader loops once more and takes
			// the ErrCrashed exit above instead of going solo.
			l.stats.SoloDrops++
			l.dropSessionLocked()
			continue
		}
		l.cond.Wait()
	}
}

// ---- session lifecycle --------------------------------------------------

// dropSessionLocked severs the current follower session. Caller holds l.mu.
func (l *Leader) dropSessionLocked() {
	if l.sess == nil {
		return
	}
	l.sess.dead = true
	l.sess.conn.Close()
	l.sess = nil
	l.buf = nil
	l.tracker.ReportFailure(peerNode)
	l.cond.Broadcast()
}

// killSession severs s if it is still the active session.
func (l *Leader) killSession(s *feed) {
	l.mu.Lock()
	if l.sess == s {
		l.dropSessionLocked()
	} else {
		s.dead = true
		s.conn.Close()
	}
	l.mu.Unlock()
}

// fence records that a higher epoch exists: all further writes fail with
// ErrFenced, and the adopted term is persisted so a restart cannot forget.
func (l *Leader) fence(term int64) {
	l.mu.Lock()
	if l.fenced && term <= l.term {
		l.mu.Unlock()
		return
	}
	if term > l.term {
		l.term = term
	}
	l.stats.Fences++
	// Persist before the fence becomes observable: Barrier reports
	// ErrFenced only after this mutex is released, so any publisher that
	// has seen the error may rely on the higher epoch being on disk.
	if err := durable.StoreEpoch(l.epochDir, l.term); err != nil {
		// The fence cannot be made durable — a restart would forget it
		// and serve writes at the stale term, reopening the split-brain
		// window. Fail closed instead: treat this leader as crashed so
		// pending and future barriers return ErrCrashed, never an
		// ErrFenced that advertises an epoch that is not on disk. (A
		// later fence call retries the persist; fenced is still unset.)
		l.killed = true
		l.dropSessionLocked()
		l.cond.Broadcast()
		l.mu.Unlock()
		return
	}
	l.fenced = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Accept runs one follower session to completion: full catch-up from
// disk, then live shipping until the connection dies. It blocks for the
// session's lifetime — the transport server and Serve both invoke it on a
// dedicated goroutine. The reader and writer must wrap conn.
func (l *Leader) Accept(conn net.Conn, r *wire.Reader, w *wire.Writer, hello wire.ReplHello) {
	l.mu.Lock()
	if l.killed || l.closed {
		l.mu.Unlock()
		conn.Close()
		return
	}
	if hello.Term > l.term {
		// The "follower" outranks us: it was promoted while we were
		// partitioned. Stand down.
		l.mu.Unlock()
		l.fence(hello.Term)
		w.WriteFrame(wire.AppendEpoch(nil, hello.Term))
		w.Flush()
		conn.Close()
		return
	}
	if l.fenced {
		term := l.term
		l.mu.Unlock()
		w.WriteFrame(wire.AppendEpoch(nil, term))
		w.Flush()
		conn.Close()
		return
	}
	// A new session replaces any existing one (follower reconnect).
	l.dropSessionLocked()
	s := &feed{conn: conn, w: w, catching: true}
	s.touch()
	l.sess = s
	l.buf = nil
	l.stats.Resyncs++
	term := l.term
	l.mu.Unlock()

	// The read loop starts before catch-up: the follower acks every
	// catch-up batch it fsyncs (at its pre-sync watermark), and those acks
	// are the liveness signal that keeps barriers patient during a long
	// resync. The final ack at snapIdx ends the catching state.
	go l.readLoop(s, r)
	if !l.catchup(s, term) {
		l.killSession(s)
		return
	}
	go l.heartbeatLoop(s)
	l.shipLoop(s)
}

// catchup captures a consistent disk snapshot and streams it: checkpoint
// preamble, then every flushed journal record with rotation markers
// between epochs, then an empty end-marker batch assigning the snapshot
// ticket. Live records tapped meanwhile accumulate in buf; the overlap
// with what the disk stream already covered is trimmed (records) or left
// to replica idempotence (markers).
func (l *Leader) catchup(s *feed, term int64) bool {
	ckptRaw, snapIdx, err := l.store.CatchupSnapshot()
	if err != nil {
		return false
	}
	l.mu.Lock()
	// snapIdx is published before the first frame ships: the read loop
	// clears catching on the first ack at or past it.
	s.snapIdx = snapIdx
	l.mu.Unlock()
	// send is write plus a progress touch: each batch the network accepts
	// is evidence the resync is still flowing.
	send := func(payloads ...[]byte) error {
		if err := s.write(payloads...); err != nil {
			return err
		}
		s.touch()
		return nil
	}
	fromEpoch := int64(1)
	if len(ckptRaw) > 0 {
		e, _, err := durable.DecodeCheckpointMeta(ckptRaw)
		if err != nil {
			return false
		}
		fromEpoch = e
	}
	pre := wire.AppendCatchup(nil, wire.Catchup{
		Term: term, JournalEpoch: fromEpoch, LastIdx: snapIdx, Ckpt: ckptRaw,
	})
	if err := send(pre); err != nil {
		return false
	}
	// Catch-up batches carry FirstIdx 0: "apply, indices unknown". Only
	// the end marker below moves the follower's ack watermark.
	var recs [][]byte
	var nbytes int
	var streamed int64
	curEpoch := fromEpoch
	flush := func() error {
		if len(recs) == 0 {
			return nil
		}
		f := wire.AppendReplicate(nil, wire.Replicate{Term: term, Recs: recs})
		recs, nbytes = recs[:0], 0
		return send(f)
	}
	err = durable.IterateRecords(l.store.Dir(), fromEpoch, l.store.Base(), func(epoch int64, payload []byte) error {
		if epoch != curEpoch {
			if err := flush(); err != nil {
				return err
			}
			if err := send(wire.AppendReplRotate(nil, wire.ReplRotate{Term: term, JournalEpoch: epoch})); err != nil {
				return err
			}
			curEpoch = epoch
		}
		recs = append(recs, append([]byte(nil), payload...))
		nbytes += len(payload)
		streamed++
		if len(recs) >= shipBatch || nbytes >= shipBytes {
			return flush()
		}
		return nil
	})
	if err != nil {
		return false
	}
	if err := flush(); err != nil {
		return false
	}
	// End marker: an empty batch at snapIdx+1 tells the follower it is
	// current through snapIdx, which it acks after fsync.
	if err := send(wire.AppendReplicate(nil, wire.Replicate{Term: term, FirstIdx: snapIdx + 1})); err != nil {
		return false
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sess != s || s.dead {
		return false
	}
	// Records the disk stream covered are dropped from the live buffer;
	// markers stay (the replica ignores duplicates by epoch).
	kept := l.buf[:0]
	for _, e := range l.buf {
		if e.rec != nil && e.idx <= snapIdx {
			continue
		}
		kept = append(kept, e)
	}
	l.buf = kept
	s.cursor = 0
	l.stats.CatchupRecords += streamed
	l.cond.Broadcast()
	return true
}

// shipLoop streams buffered entries to the follower until the session
// dies: consecutive records batch into Replicate frames, markers become
// ReplRotate frames.
func (l *Leader) shipLoop(s *feed) {
	for {
		l.mu.Lock()
		for l.sess == s && !s.dead && s.cursor >= len(l.buf) {
			l.cond.Wait()
		}
		if l.sess != s || s.dead {
			l.mu.Unlock()
			return
		}
		term := l.term
		var frames [][]byte
		var batch wire.Replicate
		var nbytes, nrecs int
		flush := func() {
			if len(batch.Recs) > 0 {
				frames = append(frames, wire.AppendReplicate(nil, batch))
				batch = wire.Replicate{}
				nbytes = 0
			}
		}
		i := s.cursor
		for ; i < len(l.buf) && nrecs < shipBatch && nbytes < shipBytes; i++ {
			e := l.buf[i]
			if e.rec == nil {
				flush()
				frames = append(frames, wire.AppendReplRotate(nil, wire.ReplRotate{
					Term: term, JournalEpoch: e.epoch, Ckpt: e.ckpt,
				}))
				continue
			}
			if len(batch.Recs) == 0 {
				batch.Term, batch.FirstIdx = term, e.idx
			}
			batch.Recs = append(batch.Recs, e.rec)
			nbytes += len(e.rec)
			nrecs++
		}
		flush()
		s.cursor = i
		l.stats.RecordsShipped += int64(nrecs)
		l.mu.Unlock()
		if err := s.write(frames...); err != nil {
			l.killSession(s)
			return
		}
	}
}

// readLoop consumes follower frames: acks release barriers, a higher
// term fences the leader, pongs feed the failure detector.
func (l *Leader) readLoop(s *feed, r *wire.Reader) {
	for {
		payload, err := r.ReadFrame()
		if err != nil {
			l.killSession(s)
			return
		}
		s.touch()
		switch wire.MsgType(payload) {
		case wire.TypeReplAck:
			m, err := wire.DecodeReplAck(payload)
			if err != nil {
				l.killSession(s)
				return
			}
			if m.Term > l.Term() {
				l.fence(m.Term)
				l.killSession(s)
				return
			}
			l.mu.Lock()
			if s.catching && m.Idx >= s.snapIdx {
				// The follower fsynced through the catch-up snapshot: the
				// resync is over, barriers revert to the plain AckTimeout.
				s.catching = false
			}
			if m.Idx > l.acked {
				l.acked = m.Idx
				l.stats.Acked = m.Idx
				l.pruneLocked()
				l.cond.Broadcast()
			}
			l.mu.Unlock()
			l.tracker.ReportSuccess(peerNode, 0)
		case wire.TypeEpoch:
			if t, err := wire.DecodeEpoch(payload); err == nil && t > l.Term() {
				l.fence(t)
			}
			l.killSession(s)
			return
		case wire.TypePong:
			l.tracker.ReportSuccess(peerNode, 0)
		default:
			l.killSession(s)
			return
		}
	}
}

// pruneLocked drops the shipped-and-acknowledged buffer prefix. Caller
// holds l.mu.
func (l *Leader) pruneLocked() {
	s := l.sess
	if s == nil {
		return
	}
	n := 0
	for n < s.cursor && l.buf[n].idx <= l.acked {
		n++
	}
	if n > 0 {
		l.buf = append(l.buf[:0:0], l.buf[n:]...)
		s.cursor -= n
	}
}

// heartbeatLoop pings the follower so its failure detector has a pulse,
// and severs the link when an injected crash kills the store — a dead
// process cannot keep a TCP session warm.
func (l *Leader) heartbeatLoop(s *feed) {
	tick := time.NewTicker(l.cfg.Heartbeat)
	defer tick.Stop()
	for range tick.C {
		l.mu.Lock()
		gone := l.sess != s || s.dead || l.closed
		l.mu.Unlock()
		if gone {
			return
		}
		if l.store.Crashed() {
			// The store refused an op mid-flight: this leader is dying.
			// Everything appended before the dying op is already flushed
			// locally (the simulated-crash contract) and buffered in the
			// tap, so let it finish shipping before severing — pending
			// barriers then resolve definitively (follower acked → the op
			// proceeds; never shipped → ErrCrashed and the promoted side
			// redelivers) instead of racing the session teardown.
			l.drainThenKill()
			return
		}
		if err := s.write(wire.AppendPing(nil, 0)); err != nil {
			l.killSession(s)
			return
		}
	}
}

// drainThenKill waits (bounded by AckTimeout) for the follower to
// acknowledge every record the tap buffered before the store crashed,
// then severs the session. Records past the crash point never reached
// the tap, so the buffer is a fixed pre-crash suffix — the drain is the
// dying leader's last act of determinism.
func (l *Leader) drainThenKill() {
	deadline := time.Now().Add(l.cfg.AckTimeout)
	for time.Now().Before(deadline) {
		l.mu.Lock()
		done := l.sess == nil || l.sess.dead || l.acked >= l.lastIdx
		l.mu.Unlock()
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	l.Kill()
}

// Serve accepts follower connections on ln until it closes, performing
// the replication handshake and running each session on its own
// goroutine. Intended for dedicated replication listeners; when client
// traffic shares the port, wire the transport server's ReplHandler to
// Accept instead.
func (l *Leader) Serve(ln net.Listener) {
	l.mu.Lock()
	l.ln = ln
	l.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go l.serveConn(conn)
	}
}

func (l *Leader) serveConn(conn net.Conn) {
	r := wire.NewReader(conn, l.cfg.MaxFrame)
	w := wire.NewWriter(conn, l.cfg.MaxFrame)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := r.ReadFrame()
	if err != nil {
		conn.Close()
		return
	}
	hello, err := wire.DecodeReplHello(payload)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	l.Accept(conn, r, w, hello)
}

// Kill simulates abrupt process death for the chaos suite: sever the
// replication session and listener without any goodbye, so the follower
// sees only silence. The broker and store are left untouched (a crashed
// store has already frozen them).
func (l *Leader) Kill() {
	l.mu.Lock()
	l.killed = true
	ln := l.ln
	l.ln = nil
	l.dropSessionLocked()
	l.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Close shuts the broker down first — its final checkpoint ships through
// the tap while the session is still up — then severs replication.
func (l *Leader) Close() error {
	err := l.b.Close()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	ln := l.ln
	l.ln = nil
	l.dropSessionLocked()
	l.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	return err
}

// ---- broker.Shard -------------------------------------------------------

// Decide publishes through the underlying broker; the replication
// barrier inside the durable store enforces dual-fsync (or solo fallback)
// before the ack, and ErrFenced surfaces here once superseded.
func (l *Leader) Decide(ev workload.Event) error { return l.b.Publish(ev) }

// DecideSeq is Decide reporting the consumed publication seq (see
// broker.Shard); a seq consumed before an ErrFenced or crash failure is
// reported so a federation router can dedup the mirrored replay.
func (l *Leader) DecideSeq(ev workload.Event) (int64, error) { return l.b.PublishSeq(ev) }

// Apply performs one subscription mutation on the underlying broker.
func (l *Leader) Apply(m broker.Mutation) (int, error) { return l.b.Apply(m) }

// Checkpoint forces a checkpoint on the underlying broker (the install
// marker ships to the follower).
func (l *Leader) Checkpoint() error { return l.b.Checkpoint() }

// Snapshot reports the underlying broker's decision state.
func (l *Leader) Snapshot() broker.ShardInfo { return l.b.Snapshot() }

// ---- accessors ----------------------------------------------------------

// Broker returns the underlying broker (subscribe/consume through it).
func (l *Leader) Broker() *broker.Broker { return l.b }

// Term returns the current fencing epoch.
func (l *Leader) Term() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.term
}

// Fenced reports whether a higher epoch has been observed.
func (l *Leader) Fenced() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fenced
}

// Solo reports whether the leader is running without a follower session.
func (l *Leader) Solo() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sess == nil
}

// Stats returns a snapshot of the replication counters.
func (l *Leader) Stats() LeaderStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}
