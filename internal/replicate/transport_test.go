package replicate

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/transport"
)

// selfSigned mints an in-memory certificate for loopback TLS tests.
func selfSigned(t *testing.T) (server *tls.Config, client *tls.Config) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "replicate-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}
	return &tls.Config{Certificates: []tls.Certificate{cert}},
		&tls.Config{RootCAs: pool, ServerName: "127.0.0.1"}
}

// runReplicateOverTransport proves a follower and ordinary wire clients
// can share one transport listener: the first frame routes the connection
// either to the replication handler or the client handshake.
func runReplicateOverTransport(t *testing.T, srvTLS *tls.Config, cliTLS *tls.Config) {
	t.Helper()
	seed := int64(701)
	cfg := core.Config{Groups: 25, CellBudget: 500}
	dirL, dirF := t.TempDir(), t.TempDir()
	o := newObs()
	e, w := testEngine(t, cfg, seed)
	ldr, err := OpenLeader(dirL, e, LeaderConfig{
		AckTimeout: 5 * time.Second, Heartbeat: 10 * time.Millisecond,
		Health: fastHealth(), Durable: noAutoCkpt(nil),
	}, broker.WithWorkers(2), o.observer())
	if err != nil {
		t.Fatal(err)
	}

	srv := transport.NewServer(transport.Config{TLS: srvTLS, ReplHandler: ldr.Accept})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); srv.Serve(ln, ldr.Broker()) }()

	flw, err := StartFollower(FollowerConfig{
		Dir: dirF, Base: baseOf(w), Addr: ln.Addr().String(), TLS: cliTLS,
		Health: fastHealth(), ReadTimeout: 200 * time.Millisecond,
		Reconnect: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "catch-up through the shared listener", flw.Synced)

	// An ordinary client coexists on the same port.
	cli, err := transport.Dial(transport.ClientConfig{Addr: ln.Addr().String(), TLS: cliTLS})
	if err != nil {
		t.Fatalf("client dial alongside replication: %v", err)
	}
	if err := cli.Ping(2 * time.Second); err != nil {
		t.Fatalf("client ping: %v", err)
	}
	if err := cli.Publish(w.Events(1, seed+20)[0]); err != nil {
		t.Fatalf("client publish: %v", err)
	}
	before := flw.Watermark()
	for i, ev := range w.Events(20, seed+10) {
		if err := ldr.Decide(ev); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if flw.Watermark() <= before {
		t.Error("replication made no progress through the shared listener")
	}
	cli.Close()
	flw.Close()
	ldr.Close()
	ln.Close()
	<-serveDone
}

func TestReplicateOverTransport(t *testing.T) {
	runReplicateOverTransport(t, nil, nil)
}

func TestReplicateOverTransportTLS(t *testing.T) {
	srvTLS, cliTLS := selfSigned(t)
	runReplicateOverTransport(t, srvTLS, cliTLS)
}
