// Package replicate turns a durable broker into a replicated pair:
// a leader that ships its journal record stream over the wire protocol
// and a warm-standby follower that mirrors the stream into an identical
// on-disk layout, ready to be promoted by ordinary crash-restart
// recovery.
//
// The protocol is deliberately simple. Every (re)connect is a full
// resync: the leader captures a consistent snapshot of its on-disk state
// (checkpoint file + flushed journal tail), ships it, then streams live
// records. There is no incremental resume — journal replay is idempotent
// at both ends, so the duplicated suffix where catch-up overlaps the live
// stream is harmless, and the protocol needs no per-session cursors that
// could drift.
//
// Correctness across failover rests on two barriers wired through
// durable.Tap:
//
//   - a Publish is only acknowledged once its record is fsynced on BOTH
//     sides (Store.syncTo → Tap.Barrier), and
//   - a delivery is only observable once its suppressing ack record
//     exists on both sides (Store.AppendAck → Tap.Barrier),
//
// so a promoted follower neither loses acknowledged publishes nor
// redelivers observed copies. If the follower stops acknowledging within
// AckTimeout the leader declares it dead and continues solo (availability
// over redundancy for a two-node pair; a later reconnect resyncs from
// disk).
//
// Split-brain is handled by fencing, not prevented by quorum (a pair has
// none): promotion durably persists term+1 before the new leader serves,
// and every frame carries the sender's term. A partitioned ex-leader
// learns the higher term from the first frame it exchanges with anyone
// newer, persists it, and refuses further writes with ErrFenced.
package replicate

import (
	"errors"
	"time"

	"repro/internal/health"
	"repro/internal/topology"
	"repro/internal/wire"
)

// ErrFenced is returned by a leader that has observed a higher fencing
// epoch: another node has been promoted, and every local write must be
// refused to keep the promoted history authoritative.
var ErrFenced = errors.New("replicate: fenced by a higher epoch (another leader was promoted)")

// ErrNotLeader is returned by a Follower's Shard methods: a warm standby
// rejects writes until promoted.
var ErrNotLeader = errors.New("replicate: not the leader")

// peerNode is the sentinel topology.NodeID both sides use to track the
// remote peer in their health.Tracker (real node ids are ≥ 0).
const peerNode = topology.NodeID(-1)

const (
	defaultAckTimeout = time.Second
	defaultHeartbeat  = 100 * time.Millisecond
	defaultReconnect  = 25 * time.Millisecond
	// shipBatch bounds records per Replicate frame; shipBytes bounds the
	// frame payload so it stays under wire.DefaultMaxFrame with headroom.
	shipBatch = 256
	shipBytes = 256 << 10
)

func defaultMaxFrame(n int) int {
	if n <= 0 {
		return wire.DefaultMaxFrame
	}
	return n
}

func newTracker(cfg health.Config) *health.Tracker {
	h, err := health.New(cfg)
	if err != nil {
		// Zero config is valid; only hand-tuned configs can fail, and those
		// are programmer error.
		panic("replicate: bad health config: " + err.Error())
	}
	return h.Tracker
}
