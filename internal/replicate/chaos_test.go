package replicate

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faults"
)

// This file is the failover chaos suite: every scenario kills a replica
// pair at an injected crash point and proves the exactly-once contract
// against the brute-force interest oracle across however many
// incarnations it takes to finish the traffic.
//
// The determinism argument, point by point:
//
//   - CrashBeforeAppend / CrashTornAppend on the leader: the dying record
//     never (validly) reaches either disk, the publish is unacked, ≤1
//     delivery is the contract.
//   - CrashAfterAppend on the leader: the record is on the leader's disk
//     but never reached the tap, so the promoted follower — now the
//     authority — redelivers; the single-node output-commit window does
//     not exist for a promoted pair.
//   - Copies dropped unobserved at the dying leader (ack barrier returned
//     ErrCrashed): the drain-then-kill teardown guarantees their acks
//     never reached the follower, so promotion redelivers them exactly
//     once.

// runFailover crashes the leader at the given plan, promotes the
// follower, finishes the traffic on the promoted broker, and runs the
// oracle across both incarnations.
func runFailover(t *testing.T, seed int64, plan faults.CrashPlan, midCkpt bool) {
	t.Helper()
	crash := faults.NewCrashInjector(plan)
	p := startPair(t, seed, pairOpts{leaderDur: noAutoCkpt(crash)})
	evs := p.w.Events(120, p.seed+10)
	acked := make([]bool, len(evs))

	n := 0
	if midCkpt {
		// Publish a prefix, then die inside the checkpoint commit: the
		// follower holds the rotation marker but no install.
		for ; n < 30; n++ {
			if err := p.ldr.Decide(evs[n]); err != nil {
				t.Fatalf("publish %d: %v", n, err)
			}
			acked[n] = true
		}
		if err := p.ldr.Checkpoint(); !errors.Is(err, faults.ErrCrashed) {
			t.Fatalf("mid-checkpoint crash: err = %v, want ErrCrashed", err)
		}
	} else {
		n = publishUntilCrash(t, p.ldr, evs, acked)
		if !crash.Dead() {
			t.Fatal("crash plan never fired")
		}
	}

	<-p.flw.LeaderDead()
	e2, _ := testEngine(t, p.cfg, p.seed)
	b2, err := p.flw.Promote(e2, broker.WithWorkers(2), p.o.observer())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	for i := n; i < len(evs); i++ {
		if err := b2.Publish(evs[i]); err != nil {
			t.Fatalf("post-failover publish %d: %v", i, err)
		}
		acked[i] = true
	}
	b2.Close() // drain redelivery + fresh traffic before the oracle reads
	checkOracle(t, p.w, evs, acked, p.o)
}

func TestFailoverExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("failover chaos suite is slow; run without -short")
	}
	points := []faults.CrashPoint{
		faults.CrashBeforeAppend, faults.CrashAfterAppend, faults.CrashTornAppend,
	}
	for i, pt := range points {
		t.Run(pt.String(), func(t *testing.T) {
			// ~13 appends per publish (1 record + its delivery acks), so
			// append 150 lands mid-traffic with deliveries in flight.
			runFailover(t, 601+int64(i)*10, faults.CrashPlan{AtAppend: 150, Point: pt}, false)
		})
	}
	t.Run(faults.CrashMidCheckpoint.String(), func(t *testing.T) {
		runFailover(t, 641, faults.CrashPlan{Point: faults.CrashMidCheckpoint}, true)
	})
}

// TestFailoverDuringCatchup cuts the follower's very first connection
// mid-catch-up (a scheduled mid-stream reset), lets the retry resync from
// scratch, and then proves the mirrored directory is a complete recovery
// source.
func TestFailoverDuringCatchup(t *testing.T) {
	if testing.Short() {
		t.Skip("failover chaos suite is slow; run without -short")
	}
	seed := int64(651)
	cfg := core.Config{Groups: 25, CellBudget: 500}
	dirL, dirF := t.TempDir(), t.TempDir()
	o := newObs()
	e, w := testEngine(t, cfg, seed)
	ldr, err := OpenLeader(dirL, e, LeaderConfig{
		AckTimeout: 5 * time.Second, Heartbeat: 10 * time.Millisecond,
		Health: fastHealth(), Durable: noAutoCkpt(nil),
	}, broker.WithWorkers(2), o.observer())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ldr.Serve(ln)

	// Build up a journal worth catching up on before any follower exists.
	evs := w.Events(120, seed+10)
	acked := make([]bool, len(evs))
	for i := range evs[:80] {
		if err := ldr.Decide(evs[i]); err != nil {
			t.Fatalf("solo publish %d: %v", i, err)
		}
		acked[i] = true
	}

	// First connection dies after 8 KiB — mid-catch-up, long before the
	// ~80-publish backlog fits through. Later connections are never cut.
	ci, err := faults.NewConnInjector(faults.ConnConfig{Seed: seed, CutAfterBytes: []int64{8 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	flw, err := StartFollower(FollowerConfig{
		Dir: dirF, Base: baseOf(w), Addr: ln.Addr().String(),
		Health: fastHealth(), ReadTimeout: 200 * time.Millisecond,
		Reconnect: 10 * time.Millisecond,
		Dialer: func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return ci.Wrap(c), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "resync after mid-catch-up cut", flw.Synced)
	if got := ldr.Stats().Resyncs; got < 2 {
		t.Errorf("Resyncs = %d, want ≥ 2 (cut catch-up plus the retry)", got)
	}

	// Live traffic replicates after the wound heals.
	for i := 80; i < len(evs); i++ {
		if err := ldr.Decide(evs[i]); err != nil {
			t.Fatalf("post-resync publish %d: %v", i, err)
		}
		acked[i] = true
	}
	ldr.Close() // leader first: drains delivery acks through the live session
	flw.Close()

	// The mirror must now be a complete recovery source on its own.
	e2, _ := testEngine(t, cfg, seed)
	b2, err := broker.Open(dirF, e2, broker.WithWorkers(2), o.observer())
	if err != nil {
		t.Fatalf("promoting mirrored directory: %v", err)
	}
	b2.Close()
	checkOracle(t, w, evs, acked, o)
}

// TestFollowerCrashResyncFromScratch crashes the follower's replica store
// mid-catch-up, then starts a fresh follower over the same directory: the
// full-resync protocol must wipe the half-applied state and converge.
func TestFollowerCrashResyncFromScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("failover chaos suite is slow; run without -short")
	}
	p := startPair(t, 661, pairOpts{leaderDur: noAutoCkpt(nil)})
	evs := p.w.Events(60, p.seed+10)
	for i := range evs[:30] {
		if err := p.ldr.Decide(evs[i]); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	p.flw.Close()

	// A second follower over a fresh dir dies 20 records into catch-up.
	dir2 := t.TempDir()
	flw2, err := StartFollower(FollowerConfig{
		Dir: dir2, Base: baseOf(p.w), Addr: p.ln.Addr().String(),
		Health: fastHealth(), ReadTimeout: 200 * time.Millisecond,
		Reconnect: 10 * time.Millisecond,
		Durable: durable.Options{Crash: faults.NewCrashInjector(
			faults.CrashPlan{AtAppend: 20, Point: faults.CrashTornAppend})},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "follower crash to fire", flw2.Crashed)
	flw2.Close()

	// Same directory, clean injector: Reset wipes the torn state.
	flw3, err := StartFollower(FollowerConfig{
		Dir: dir2, Base: baseOf(p.w), Addr: p.ln.Addr().String(),
		Health: fastHealth(), ReadTimeout: 200 * time.Millisecond,
		Reconnect: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flw3.Close()
	waitFor(t, 10*time.Second, "resync over crashed directory", flw3.Synced)
	before := flw3.Watermark()
	if err := p.ldr.Decide(evs[30]); err != nil {
		t.Fatalf("publish after resync: %v", err)
	}
	if flw3.Watermark() <= before {
		t.Error("watermark did not advance after resync")
	}
}

// TestCrashDuringFailover kills the leader, then kills the promoted
// follower mid-redelivery, and recovers a THIRD incarnation over the
// follower's directory: exactly-once must hold across all three.
func TestCrashDuringFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("failover chaos suite is slow; run without -short")
	}
	crash1 := faults.NewCrashInjector(faults.CrashPlan{AtAppend: 150, Point: faults.CrashAfterAppend})
	p := startPair(t, 671, pairOpts{leaderDur: noAutoCkpt(crash1)})
	evs := p.w.Events(120, p.seed+10)
	acked := make([]bool, len(evs))
	n := publishUntilCrash(t, p.ldr, evs, acked)
	if !crash1.Dead() {
		t.Fatal("first crash plan never fired")
	}
	<-p.flw.LeaderDead()

	// Incarnation 2: promoted, armed to die a few dozen appends in —
	// while recovery redelivery acks are still landing. Torn point: the
	// dying ack is invalid on disk, so incarnation 3 redelivers it.
	crash2 := faults.NewCrashInjector(faults.CrashPlan{AtAppend: 40, Point: faults.CrashTornAppend})
	e2, _ := testEngine(t, p.cfg, p.seed)
	ldr2, err := p.flw.PromoteLeader(e2, LeaderConfig{
		AckTimeout: 5 * time.Second, Heartbeat: 10 * time.Millisecond,
		Health: fastHealth(), Durable: noAutoCkpt(crash2),
	}, broker.WithWorkers(2), p.o.observer())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	m := n
	for ; m < len(evs); m++ {
		err := ldr2.Decide(evs[m])
		if err == nil {
			acked[m] = true
			continue
		}
		if errors.Is(err, faults.ErrCrashed) {
			m++
			break
		}
		t.Fatalf("post-failover publish %d: %v", m, err)
	}
	if !crash2.Dead() {
		// Redelivery acks may have burned the budget before any publish.
		waitFor(t, 5*time.Second, "second crash to fire", crash2.Dead)
	}
	ldr2.Close() // dead store: error is expected, release the directory

	// Incarnation 3: plain crash-restart recovery over the mirror.
	e3, _ := testEngine(t, p.cfg, p.seed)
	b3, err := broker.Open(p.dirF, e3, broker.WithWorkers(2), p.o.observer())
	if err != nil {
		t.Fatalf("third incarnation: %v", err)
	}
	for i := m; i < len(evs); i++ {
		if err := b3.Publish(evs[i]); err != nil {
			t.Fatalf("third-incarnation publish %d: %v", i, err)
		}
		acked[i] = true
	}
	b3.Close()
	checkOracle(t, p.w, evs, acked, p.o)
}
