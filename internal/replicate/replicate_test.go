package replicate

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/topology"
	"repro/internal/wire"
	"repro/internal/workload"
)

// testEngine builds the same deterministic world the broker suite uses:
// identical seeds give identical engines, which is what lets a promoted
// follower recover into "the same process image" the leader ran.
func testEngine(t testing.TB, cfg core.Config, seed int64) (*core.Engine, *workload.World) {
	t.Helper()
	topo := topology.Eval600
	topo.Seed = seed
	g, err := topology.Generate(topo)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewStockWorld(g, workload.StockConfig{
		NumSubscriptions: 300, PubModes: 1, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewFromWorld(w, w.Events(800, seed+2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, w
}

func baseOf(w *workload.World) durable.BaseInfo {
	return durable.BaseInfo{Hash: durable.HashBase(w.Subs), Count: int64(len(w.Subs))}
}

// ekey fingerprints one event. Failover reuses sequence numbers (a lost
// unacked record frees its seq for the next incarnation), so the oracle
// keys copies by event identity instead.
func ekey(ev workload.Event) string { return fmt.Sprintf("%d|%v", ev.Pub, ev.Point) }

// nk identifies one message copy: (node, event).
type nk struct {
	node topology.NodeID
	ev   string
}

// obs tallies observed copies across every incarnation it is attached to.
type obs struct {
	mu    sync.Mutex
	inter map[nk]int
	all   map[nk]int
}

func newObs() *obs { return &obs{inter: map[nk]int{}, all: map[nk]int{}} }

func (o *obs) observer() broker.Option {
	return broker.WithObserver(func(n topology.NodeID, d broker.Delivery) {
		k := nk{n, ekey(d.Event)}
		o.mu.Lock()
		o.all[k]++
		if d.Interested {
			o.inter[k]++
		}
		o.mu.Unlock()
	})
}

func interestedNodes(w *workload.World, ev workload.Event) map[topology.NodeID]bool {
	out := map[topology.NodeID]bool{}
	for _, s := range w.Subs {
		if s.Rect.Contains(ev.Point) {
			out[s.Owner] = true
		}
	}
	return out
}

// checkOracle asserts the exactly-once contract across however many
// incarnations fed o: acked events delivered exactly once per interested
// node, unacked at most once, zero duplicates anywhere.
func checkOracle(t *testing.T, w *workload.World, evs []workload.Event, acked []bool, o *obs) {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	for i, ev := range evs {
		want := interestedNodes(w, ev)
		for n := range want {
			got := o.inter[nk{n, ekey(ev)}]
			if acked[i] && got != 1 {
				t.Errorf("acked event %d delivered %d times to interested node %d, want exactly 1", i, got, n)
			}
			if !acked[i] && got > 1 {
				t.Errorf("unacked event %d delivered %d times to node %d", i, got, n)
			}
		}
	}
	for k, c := range o.all {
		if c > 1 {
			t.Errorf("node %d received %q %d times (dedup across failover failed)", k.node, k.ev, c)
		}
	}
}

// fastHealth opens the breaker quickly: three strikes inside tight
// windows, so leader death is declared in tens of milliseconds.
func fastHealth() health.Config {
	return health.Config{OpenTimeout: 10 * time.Second, CheckInterval: 5 * time.Millisecond}
}

func noAutoCkpt(crash *faults.CrashInjector) durable.Options {
	return durable.Options{CheckpointRecords: -1, CheckpointInterval: -1, Crash: crash}
}

// pair is one replicated deployment under test.
type pair struct {
	t          *testing.T
	w          *workload.World
	cfg        core.Config
	seed       int64
	dirL, dirF string
	ln         net.Listener
	ldr        *Leader
	flw        *Follower
	o          *obs
}

type pairOpts struct {
	leaderDur   durable.Options
	followerDur durable.Options
	dialer      func(addr string) (net.Conn, error)
	ackTimeout  time.Duration
}

// startPair brings up leader + follower on loopback and waits for the
// follower to finish its initial catch-up.
func startPair(t *testing.T, seed int64, po pairOpts) *pair {
	t.Helper()
	p := &pair{
		t: t, seed: seed, cfg: core.Config{Groups: 25, CellBudget: 500},
		dirL: t.TempDir(), dirF: t.TempDir(), o: newObs(),
	}
	e, w := testEngine(t, p.cfg, seed)
	p.w = w
	if po.ackTimeout == 0 {
		po.ackTimeout = 5 * time.Second
	}
	ldr, err := OpenLeader(p.dirL, e, LeaderConfig{
		AckTimeout: po.ackTimeout, Heartbeat: 10 * time.Millisecond,
		Health: fastHealth(), Durable: po.leaderDur,
	}, broker.WithWorkers(2), p.o.observer())
	if err != nil {
		t.Fatal(err)
	}
	p.ldr = ldr
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.ln = ln
	go ldr.Serve(ln)
	flw, err := StartFollower(FollowerConfig{
		Dir: p.dirF, Base: baseOf(w), Addr: ln.Addr().String(),
		Health: fastHealth(), ReadTimeout: 200 * time.Millisecond,
		Reconnect: 10 * time.Millisecond, Dialer: po.dialer,
		Durable: po.followerDur,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.flw = flw
	t.Cleanup(func() {
		flw.Close()
		ldr.Close()
		ln.Close()
	})
	waitFor(t, 5*time.Second, "initial catch-up", flw.Synced)
	return p
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// publishUntilCrash publishes evs through the leader, recording acks,
// until a crash fires; returns the count attempted.
func publishUntilCrash(t *testing.T, ldr *Leader, evs []workload.Event, acked []bool) int {
	t.Helper()
	for i := range evs {
		err := ldr.Decide(evs[i])
		switch {
		case err == nil:
			acked[i] = true
		case errors.Is(err, faults.ErrCrashed):
			return i + 1
		default:
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	return len(evs)
}

// ---- basic replication --------------------------------------------------

func TestPairReplicatesInSync(t *testing.T) {
	p := startPair(t, 501, pairOpts{leaderDur: noAutoCkpt(nil)})
	evs := p.w.Events(120, p.seed+10)
	acked := make([]bool, len(evs))
	for i := range evs {
		if err := p.ldr.Decide(evs[i]); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		acked[i] = true
	}
	if p.ldr.Solo() {
		t.Error("leader went solo with a healthy follower")
	}
	st := p.ldr.Stats()
	if st.Acked == 0 || st.RecordsShipped == 0 {
		t.Errorf("no replication progress: %+v", st)
	}
	if p.flw.Applied() == 0 {
		t.Error("follower applied no records")
	}
	// Synchronous barrier: once every publish acked, the follower holds
	// every record (publishes AND delivery acks flow through Barrier).
	if !p.flw.Synced() {
		t.Error("follower not in sync after synchronous publishes")
	}
	p.ldr.Close() // drains in-flight deliveries (and their acks) through the live session
	p.flw.Close()
	checkOracle(t, p.w, evs, acked, p.o)
}

// TestCheckpointShipsToFollower drives enough traffic through automatic
// checkpointing that rotation and install markers cross the wire, then
// proves the follower's directory recovers cleanly.
func TestCheckpointShipsToFollower(t *testing.T) {
	p := startPair(t, 511, pairOpts{leaderDur: noAutoCkpt(nil)})
	evs := p.w.Events(150, p.seed+10)
	acked := make([]bool, len(evs))
	for i := range evs {
		if i == 75 {
			if err := p.ldr.Checkpoint(); err != nil {
				t.Fatalf("mid-run checkpoint: %v", err)
			}
		}
		if err := p.ldr.Decide(evs[i]); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		acked[i] = true
	}
	waitFor(t, 5*time.Second, "checkpoint install to reach follower", func() bool {
		return p.flw.rep.Epoch() > 1
	})
	// Promote and verify the mirrored state is a valid recovery source.
	// Leader first: its drain ships every pending delivery ack through
	// the still-open session before the standby stops applying.
	p.ldr.Close()
	p.flw.Close()
	e2, _ := testEngine(t, p.cfg, p.seed)
	b2, err := broker.Open(p.dirF, e2, broker.WithWorkers(2), p.o.observer())
	if err != nil {
		t.Fatalf("promoting mirrored directory: %v", err)
	}
	rec := b2.Recovery()
	b2.Close()
	if !rec.CheckpointLoaded {
		t.Error("follower mirror recovered without the shipped checkpoint")
	}
	checkOracle(t, p.w, evs, acked, p.o)
}

// TestLeaderSoloWhenFollowerSilent pins the availability choice: a
// follower that stops acking is dropped at AckTimeout and the leader
// keeps serving alone.
func TestLeaderSoloWhenFollowerSilent(t *testing.T) {
	p := startPair(t, 521, pairOpts{
		leaderDur:  noAutoCkpt(nil),
		ackTimeout: 150 * time.Millisecond,
		followerDur: durable.Options{
			Crash: faults.NewCrashInjector(faults.CrashPlan{AtAppend: 40, Point: faults.CrashBeforeAppend}),
		},
	})
	evs := p.w.Events(100, p.seed+10)
	for i := range evs {
		if err := p.ldr.Decide(evs[i]); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, "leader to drop the dead follower", p.ldr.Solo)
	if !p.flw.Crashed() {
		t.Error("follower injector never fired")
	}
}

// TestBarrierTimeoutDropsHungFollower connects a fake follower that
// completes the handshake but never acknowledges anything: the publish
// barrier must release at AckTimeout by declaring it dead (SoloDrops).
func TestBarrierTimeoutDropsHungFollower(t *testing.T) {
	p := startPair(t, 561, pairOpts{leaderDur: noAutoCkpt(nil), ackTimeout: 150 * time.Millisecond})
	// Replace the real follower with a mute one: close the real follower,
	// then dial in, handshake, and swallow frames without acking.
	p.flw.Close()
	// Wait until the leader has noticed the loss (gone solo) before the
	// mute follower dials in — otherwise the attach check below can see
	// the not-yet-reaped real session.
	waitFor(t, 5*time.Second, "real follower to detach", func() bool { return p.ldr.Solo() })
	conn, err := net.Dial("tcp", p.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := wire.NewWriter(conn, wire.DefaultMaxFrame)
	if err := writeFrame(w, wire.AppendReplHello(nil, wire.ReplHello{Version: wire.Version, Term: 1})); err != nil {
		t.Fatal(err)
	}
	go func() { // drain so TCP backpressure never stalls the leader
		buf := make([]byte, 32<<10)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	waitFor(t, 5*time.Second, "mute session to attach", func() bool { return !p.ldr.Solo() })
	start := time.Now()
	if err := p.ldr.Decide(p.w.Events(1, p.seed+10)[0]); err != nil {
		t.Fatalf("publish against mute follower: %v", err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Errorf("barrier released after %v, want ≈ AckTimeout (150ms)", d)
	}
	if !p.ldr.Solo() {
		t.Error("mute follower not dropped")
	}
	if got := p.ldr.Stats().SoloDrops; got == 0 {
		t.Error("SoloDrops = 0 after barrier timeout")
	}
}

// TestFencingRejectsStaleLeader promotes the follower while the leader is
// still alive and talking (a split-brain window): the ex-leader must
// learn the higher epoch from its own stream and refuse further writes.
func TestFencingRejectsStaleLeader(t *testing.T) {
	p := startPair(t, 531, pairOpts{leaderDur: noAutoCkpt(nil)})
	evs := p.w.Events(60, p.seed+10)
	for i := range evs[:30] {
		if err := p.ldr.Decide(evs[i]); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if p.ldr.Term() != 1 || p.flw.Term() != 1 {
		t.Fatalf("terms = %d/%d, want 1/1", p.ldr.Term(), p.flw.Term())
	}
	// Promote with the connection still up: no oracle here — with two
	// live "leaders" a pair cannot prevent divergence, only fence it.
	e2, _ := testEngine(t, p.cfg, p.seed)
	b2, err := p.flw.Promote(e2, broker.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if got := p.flw.Term(); got != 2 {
		t.Errorf("promoted term = %d, want 2", got)
	}
	if got, err := durable.LoadEpoch(p.dirF); err != nil || got != 2 {
		t.Errorf("persisted epoch = %d (%v), want 2", got, err)
	}

	// The ex-leader's next frames (heartbeats, or the publishes below)
	// draw Epoch replies; soon every write fails with ErrFenced.
	deadline := time.Now().Add(5 * time.Second)
	fenced := false
	for time.Now().Before(deadline) {
		err := p.ldr.Decide(evs[30])
		if errors.Is(err, ErrFenced) {
			fenced = true
			break
		}
		if err != nil && !errors.Is(err, ErrFenced) {
			t.Fatalf("unexpected publish error while awaiting fence: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !fenced {
		t.Fatal("stale leader never fenced")
	}
	if !p.ldr.Fenced() || p.ldr.Term() != 2 {
		t.Errorf("Fenced=%v Term=%d, want fenced at term 2", p.ldr.Fenced(), p.ldr.Term())
	}
	if got, err := durable.LoadEpoch(p.dirL); err != nil || got != 2 {
		t.Errorf("ex-leader persisted epoch = %d (%v), want 2", got, err)
	}
	// The promoted broker serves writes.
	if err := b2.Publish(evs[31]); err != nil {
		t.Errorf("promoted broker rejected a publish: %v", err)
	}
}

// TestStaleLeaderRejoinsAsFollower wires the full rejoin arc: leader dies,
// follower promotes to a leader (term 2), the ex-leader restarts as a
// follower with its stale directory and must adopt the higher epoch and
// resync from scratch.
func TestStaleLeaderRejoinsAsFollower(t *testing.T) {
	crash := faults.NewCrashInjector(faults.CrashPlan{AtAppend: 200, Point: faults.CrashAfterAppend})
	p := startPair(t, 541, pairOpts{leaderDur: noAutoCkpt(crash)})
	evs := p.w.Events(120, p.seed+10)
	acked := make([]bool, len(evs))
	n := publishUntilCrash(t, p.ldr, evs, acked)
	if n == len(evs) && !crash.Dead() {
		t.Fatal("crash plan never fired")
	}
	<-p.flw.LeaderDead()

	// Promote to a full leader so the ex-leader can rejoin under it.
	e2, _ := testEngine(t, p.cfg, p.seed)
	ldr2, err := p.flw.PromoteLeader(e2, LeaderConfig{
		AckTimeout: 5 * time.Second, Heartbeat: 10 * time.Millisecond,
		Health: fastHealth(), Durable: noAutoCkpt(nil),
	}, broker.WithWorkers(2), p.o.observer())
	if err != nil {
		t.Fatal(err)
	}
	defer ldr2.Close()
	if ldr2.Term() != 2 {
		t.Fatalf("promoted leader term = %d, want 2", ldr2.Term())
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go ldr2.Serve(ln2)

	// Finish the traffic on the new leader (crashed publish not retried —
	// its ack never came, so ≤1 is the contract).
	for i := n; i < len(evs); i++ {
		if err := ldr2.Decide(evs[i]); err != nil {
			t.Fatalf("post-failover publish %d: %v", i, err)
		}
		acked[i] = true
	}

	// Ex-leader rejoins as follower over its stale directory (term 1 on
	// disk, orphaned records in its journal): full resync must wipe both.
	flw2, err := StartFollower(FollowerConfig{
		Dir: p.dirL, Base: baseOf(p.w), Addr: ln2.Addr().String(),
		Health: fastHealth(), ReadTimeout: 200 * time.Millisecond,
		Reconnect: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flw2.Close()
	waitFor(t, 5*time.Second, "ex-leader resync", flw2.Synced)
	if got := flw2.Term(); got != 2 {
		t.Errorf("rejoined follower term = %d, want 2", got)
	}
	if got, err := durable.LoadEpoch(p.dirL); err != nil || got != 2 {
		t.Errorf("rejoined follower persisted epoch = %d (%v), want 2", got, err)
	}
	// And the pair keeps working: a fresh publish through the new leader
	// replicates to the rejoined standby.
	fresh := p.w.Events(1, p.seed+99)[0]
	before := flw2.Watermark()
	if err := ldr2.Decide(fresh); err != nil {
		t.Fatalf("publish after rejoin: %v", err)
	}
	if flw2.Watermark() <= before {
		t.Error("rejoined standby watermark did not advance on a synchronous publish")
	}
	flw2.Close()
	ldr2.Close() // drain before the oracle reads
	checkOracle(t, p.w, evs, acked, p.o)
}

// TestNoPromotionOverPartialResync pins the promotion gate across
// reconnects: once a reconnect's catch-up has wiped the mirror, a leader
// lost mid-resync must NOT be declared dead — the directory is partially
// re-seeded, and promoting over it would lose acknowledged publishes.
// The gate re-arms once a later resync completes.
func TestNoPromotionOverPartialResync(t *testing.T) {
	seed := int64(571)
	cfg := core.Config{Groups: 25, CellBudget: 500}
	e, w := testEngine(t, cfg, seed)
	ldr, err := OpenLeader(t.TempDir(), e, LeaderConfig{
		AckTimeout: 5 * time.Second, Heartbeat: 10 * time.Millisecond,
		Health: fastHealth(), Durable: noAutoCkpt(nil),
	}, broker.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ldr.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ldr.Serve(ln)

	// A backlog so the second catch-up below has far more than 4 KiB to
	// stream when it is cut.
	evs := w.Events(100, seed+10)
	for i := range evs[:80] {
		if err := ldr.Decide(evs[i]); err != nil {
			t.Fatalf("solo publish %d: %v", i, err)
		}
	}

	// Connection plan: #1 syncs cleanly, #2 is cut 4 KiB in (after the
	// catch-up preamble has wiped the mirror, long before the backlog fits
	// through), and every later dial fails until the test heals the net.
	ci, err := faults.NewConnInjector(faults.ConnConfig{Seed: seed, CutAfterBytes: []int64{0, 4 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	dials, healed := 0, false
	flw, err := StartFollower(FollowerConfig{
		Dir: t.TempDir(), Base: baseOf(w), Addr: ln.Addr().String(),
		Health: fastHealth(), ReadTimeout: 200 * time.Millisecond,
		Reconnect: 10 * time.Millisecond,
		Dialer: func(addr string) (net.Conn, error) {
			mu.Lock()
			n := dials
			dials++
			ok := healed || n < 2
			mu.Unlock()
			if !ok {
				return nil, errors.New("injected dial failure")
			}
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			wc := ci.Wrap(c)
			mu.Lock()
			conns = append(conns, wc)
			mu.Unlock()
			return wc, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flw.Close()
	waitFor(t, 10*time.Second, "initial catch-up", flw.Synced)

	// Sever session 1: the reconnect starts catch-up 2, which resets the
	// replica and dies mid-stream; the dial failures then open the breaker
	// with the mirror partially re-seeded.
	mu.Lock()
	c1 := conns[0]
	mu.Unlock()
	c1.Close()
	select {
	case <-flw.LeaderDead():
		t.Fatal("leader declared dead over a partially re-seeded mirror")
	case <-time.After(400 * time.Millisecond):
	}

	// Heal the network: the follower resyncs from scratch, re-arming the
	// gate; a real leader death must then be declared.
	mu.Lock()
	healed = true
	mu.Unlock()
	waitFor(t, 10*time.Second, "resync after heal", flw.Synced)
	ldr.Kill()
	ln.Close()
	select {
	case <-flw.LeaderDead():
	case <-time.After(5 * time.Second):
		t.Fatal("leader death not declared after the resync completed")
	}
}

// slowConn throttles reads to chunk bytes per delay tick, stretching a
// catch-up stream long past the leader's AckTimeout.
type slowConn struct {
	net.Conn
	chunk int
	delay time.Duration
}

func (c *slowConn) Read(p []byte) (int, error) {
	time.Sleep(c.delay)
	if len(p) > c.chunk {
		p = p[:c.chunk]
	}
	return c.Conn.Read(p)
}

// TestBarrierExtendsDuringSlowCatchup pins the resync-livelock fix: a
// publish barrier must not sever a follower session that is still
// mid-catch-up (the follower cannot ack new tickets until the resync
// completes) while catch-up traffic keeps flowing. Severing it restarts
// the resync from scratch, so under steady publish load a pair whose
// resync outlasts AckTimeout would livelock in perpetual catch-up.
func TestBarrierExtendsDuringSlowCatchup(t *testing.T) {
	if testing.Short() {
		t.Skip("slow-catch-up regression is timing heavy; run without -short")
	}
	seed := int64(581)
	cfg := core.Config{Groups: 25, CellBudget: 500}
	e, w := testEngine(t, cfg, seed)
	ldr, err := OpenLeader(t.TempDir(), e, LeaderConfig{
		AckTimeout: 200 * time.Millisecond, Heartbeat: 10 * time.Millisecond,
		Health: fastHealth(), Durable: noAutoCkpt(nil),
	}, broker.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ldr.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ldr.Serve(ln)

	// A backlog that takes several AckTimeouts to fit through the
	// throttled link below (~250 KB/s).
	evs := w.Events(220, seed+10)
	for i := range evs[:200] {
		if err := ldr.Decide(evs[i]); err != nil {
			t.Fatalf("solo publish %d: %v", i, err)
		}
	}

	flw, err := StartFollower(FollowerConfig{
		Dir: t.TempDir(), Base: baseOf(w), Addr: ln.Addr().String(),
		Health: fastHealth(), ReadTimeout: 500 * time.Millisecond,
		Reconnect: 10 * time.Millisecond,
		Dialer: func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return &slowConn{Conn: c, chunk: 512, delay: 2 * time.Millisecond}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flw.Close()

	// Publish the moment the session attaches — mid-catch-up, with the
	// resync still far from done. The barrier must wait it out.
	waitFor(t, 5*time.Second, "session attach", func() bool { return !ldr.Solo() })
	if err := ldr.Decide(evs[200]); err != nil {
		t.Fatalf("publish during catch-up: %v", err)
	}
	waitFor(t, 30*time.Second, "slow resync", flw.Synced)
	st := ldr.Stats()
	if st.SoloDrops != 0 {
		t.Errorf("SoloDrops = %d: barrier severed a live mid-catch-up session", st.SoloDrops)
	}
	if st.Resyncs != 1 {
		t.Errorf("Resyncs = %d, want 1 (a severed catch-up restarts the resync)", st.Resyncs)
	}
}

// TestFenceFailsClosedWhenEpochPersistFails pins the fence durability
// contract: when the higher epoch cannot be persisted, the leader must
// fail closed (ErrCrashed) rather than advertise ErrFenced — a publisher
// seeing ErrFenced may rely on the epoch being on disk, and a restarted
// leader that forgot the fence would reopen the split-brain window.
func TestFenceFailsClosedWhenEpochPersistFails(t *testing.T) {
	seed := int64(591)
	cfg := core.Config{Groups: 25, CellBudget: 500}
	e, w := testEngine(t, cfg, seed)
	epochDir := filepath.Join(t.TempDir(), "epochs")
	ldr, err := OpenLeader(t.TempDir(), e, LeaderConfig{
		AckTimeout: time.Second, Heartbeat: 10 * time.Millisecond,
		EpochDir: epochDir, Health: fastHealth(), Durable: noAutoCkpt(nil),
	}, broker.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ldr.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ldr.Serve(ln)
	evs := w.Events(2, seed+10)
	if err := ldr.Decide(evs[0]); err != nil {
		t.Fatalf("healthy solo publish: %v", err)
	}

	// Sabotage the epoch directory: a plain file in its place makes
	// StoreEpoch's MkdirAll fail on the next fence.
	if err := os.RemoveAll(epochDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(epochDir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A promoted node dials in with a higher term, triggering the fence.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := wire.NewWriter(conn, wire.DefaultMaxFrame)
	if err := writeFrame(fw, wire.AppendReplHello(nil, wire.ReplHello{Version: wire.Version, Term: 7})); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		err := ldr.Decide(evs[1])
		if errors.Is(err, faults.ErrCrashed) {
			break
		}
		if errors.Is(err, ErrFenced) {
			t.Fatal("leader advertised ErrFenced without a durable epoch")
		}
		if err != nil {
			t.Fatalf("unexpected publish error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never reacted to the higher epoch")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ldr.Fenced() {
		t.Error("Fenced() = true though the epoch persist failed")
	}
}

// TestShardContract pins both halves of the Shard interface: the standby
// rejects writes with ErrNotLeader, the leader serves them.
func TestShardContract(t *testing.T) {
	p := startPair(t, 551, pairOpts{leaderDur: noAutoCkpt(nil)})
	var _ broker.Shard = p.ldr
	var _ broker.Shard = p.flw
	if err := p.flw.Decide(p.w.Events(1, 1)[0]); !errors.Is(err, ErrNotLeader) {
		t.Errorf("standby Decide = %v, want ErrNotLeader", err)
	}
	if _, err := p.flw.Apply(broker.Mutation{Slot: 0}); !errors.Is(err, ErrNotLeader) {
		t.Errorf("standby Apply = %v, want ErrNotLeader", err)
	}
	if !p.flw.Snapshot().Durable {
		t.Error("standby Snapshot not durable")
	}
	if err := p.ldr.Decide(p.w.Events(1, 1)[0]); err != nil {
		t.Errorf("leader Decide = %v", err)
	}
	waitFor(t, 5*time.Second, "published counter", func() bool { return p.ldr.Snapshot().Published > 0 })
	if info := p.ldr.Snapshot(); !info.Durable || info.Groups == 0 {
		t.Errorf("leader Snapshot = %+v", info)
	}
}
