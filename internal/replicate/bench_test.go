package replicate

import (
	"net"
	"sort"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/topology"
)

func benchWait(b *testing.B, what string, cond func() bool) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			b.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// BenchmarkReplicationLag measures the publish barrier with a live
// follower attached: each op is fsync-local + ship + fsync-remote + ack,
// so ns/op is the replicated publish latency and the reported p50/p99
// metrics are its distribution tails.
func BenchmarkReplicationLag(b *testing.B) {
	e, w := testEngine(b, core.Config{Groups: 25, CellBudget: 500}, 901)
	dirL, dirF := b.TempDir(), b.TempDir()
	ldr, err := OpenLeader(dirL, e, LeaderConfig{
		AckTimeout: 5 * time.Second, Heartbeat: 10 * time.Millisecond,
		Health: fastHealth(), Durable: noAutoCkpt(nil),
	}, broker.WithWorkers(2))
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go ldr.Serve(ln)
	flw, err := StartFollower(FollowerConfig{
		Dir: dirF, Base: baseOf(w), Addr: ln.Addr().String(),
		Health: fastHealth(), ReadTimeout: 500 * time.Millisecond,
		Reconnect: 10 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		flw.Close()
		ldr.Close()
		ln.Close()
	}()
	benchWait(b, "initial catch-up", flw.Synced)

	evs := w.Events(b.N, 903)
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := ldr.Decide(evs[i]); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	if ldr.Solo() {
		b.Fatal("follower dropped mid-benchmark: latencies are solo, not replicated")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return float64(lat[i].Nanoseconds())
	}
	b.ReportMetric(pct(0.50), "p50-lag-ns")
	b.ReportMetric(pct(0.99), "p99-lag-ns")
}

// BenchmarkFailover measures the whole handover: leader killed without
// goodbye → follower's failure detector opens → promotion (epoch persist
// + crash-restart recovery) → first delivery served by the promoted
// broker. The mean is reported as failover-ns.
func BenchmarkFailover(b *testing.B) {
	cfg := core.Config{Groups: 25, CellBudget: 500}
	var total time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, w := testEngine(b, cfg, 911)
		dirL, dirF := b.TempDir(), b.TempDir()
		ldr, err := OpenLeader(dirL, e, LeaderConfig{
			AckTimeout: 5 * time.Second, Heartbeat: 10 * time.Millisecond,
			Health: fastHealth(), Durable: noAutoCkpt(nil),
		}, broker.WithWorkers(2))
		if err != nil {
			b.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go ldr.Serve(ln)
		flw, err := StartFollower(FollowerConfig{
			Dir: dirF, Base: baseOf(w), Addr: ln.Addr().String(),
			Health: fastHealth(), ReadTimeout: 50 * time.Millisecond,
			Reconnect: 10 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchWait(b, "initial catch-up", flw.Synced)
		for _, ev := range w.Events(50, 913) {
			if err := ldr.Decide(ev); err != nil {
				b.Fatal(err)
			}
		}
		delivered := make(chan struct{}, 1)
		obsOpt := broker.WithObserver(func(topology.NodeID, broker.Delivery) {
			select {
			case delivered <- struct{}{}:
			default:
			}
		})
		e2, _ := testEngine(b, cfg, 911)

		b.StartTimer()
		t0 := time.Now()
		ldr.Kill()
		<-flw.LeaderDead()
		b2, err := flw.Promote(e2, broker.WithWorkers(2), obsOpt)
		if err != nil {
			b.Fatal(err)
		}
		// Recovery may redeliver outstanding publishes on its own; a fresh
		// publish guarantees at least one delivery arrives either way.
		for _, ev := range w.Events(10, 917) {
			if err := b2.Publish(ev); err != nil {
				b.Fatal(err)
			}
		}
		<-delivered
		total += time.Since(t0)
		b.StopTimer()

		b2.Close()
		flw.Close()
		ldr.Close()
		ln.Close()
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "failover-ns")
}
