package replicate

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/wire"
	"repro/internal/workload"
)

// FollowerConfig tunes the warm-standby half of a replicated pair.
type FollowerConfig struct {
	// Dir is the replica's data directory (wiped and re-seeded on every
	// resync; becomes the broker directory on promotion).
	Dir string
	// EpochDir, when set, holds the fencing-epoch file separately from
	// Dir — e.g. on storage that survives a data-dir rebuild. Defaults
	// to Dir.
	EpochDir string
	// Base fingerprints the subscription base the pair was built over —
	// it must match the leader's.
	Base durable.BaseInfo
	// Addr is the leader's replication endpoint.
	Addr string
	// TLS, when set, wraps the connection (client side).
	TLS *tls.Config
	// Dialer overrides plain net.Dial — the chaos suite injects
	// fault-wrapped connections here.
	Dialer func(addr string) (net.Conn, error)
	// MaxFrame bounds replication frames (default wire.DefaultMaxFrame).
	MaxFrame int
	// Health tunes the failure detector watching the leader: its breaker
	// opening (FailureThreshold consecutive silent windows or failed
	// dials) is the promotion trigger.
	Health health.Config
	// ReadTimeout is the frame-silence window charged as one failure
	// against the leader. Default 500ms (5× the default heartbeat).
	ReadTimeout time.Duration
	// Reconnect is the pause between dial attempts. Default 25ms.
	Reconnect time.Duration
	// Durable passes the replica's store options (only the crash
	// injector is used).
	Durable durable.Options
	// OnLeaderDead, when set, runs (once, on its own goroutine) when the
	// leader is declared dead; LeaderDead() exposes the same event as a
	// channel.
	OnLeaderDead func()
}

func (c *FollowerConfig) setDefaults() {
	if c.EpochDir == "" {
		c.EpochDir = c.Dir
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 5 * defaultHeartbeat
	}
	if c.Reconnect == 0 {
		c.Reconnect = defaultReconnect
	}
	c.MaxFrame = defaultMaxFrame(c.MaxFrame)
	if c.Dialer == nil {
		c.Dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
}

// Follower mirrors a leader's journal stream into a local durable.Replica
// — a warm standby. It detects leader death through its failure detector
// and exposes the event; promotion (Promote / PromoteLeader) persists a
// higher fencing epoch and runs ordinary crash-restart recovery over the
// mirrored directory. As a broker.Shard it rejects all writes with
// ErrNotLeader until promoted.
type Follower struct {
	cfg     FollowerConfig
	rep     *durable.Replica
	tracker *health.Tracker

	// applyMu is held across every replica mutation; Promote takes it to
	// quiesce the apply path before closing the replica.
	applyMu sync.Mutex

	mu          sync.Mutex
	term        int64
	watermark   int64 // highest live ship index applied + fsynced
	catchupLast int64 // snapshot ticket of the current connection's catch-up
	everSynced  bool  // completed at least one full catch-up (promotion gate)
	connected   bool
	promoting   bool
	crashed     bool
	closed      bool
	conn        net.Conn

	leaderDead chan struct{}
	deadOnce   sync.Once
	closeCh    chan struct{}
	done       chan struct{}
}

var _ broker.Shard = (*Follower)(nil)

// StartFollower opens the replica directory, loads the persisted fencing
// epoch, and starts the replication loop: connect, full resync, apply
// until the link dies, repeat. A node whose directory already holds a
// higher epoch than the leader's will fence that leader on contact.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	cfg.setDefaults()
	term, err := durable.LoadEpoch(cfg.EpochDir)
	if err != nil {
		return nil, err
	}
	rep, err := durable.OpenReplica(cfg.Dir, cfg.Base, cfg.Durable)
	if err != nil {
		return nil, err
	}
	f := &Follower{
		cfg: cfg, rep: rep, term: term,
		tracker:    newTracker(cfg.Health),
		leaderDead: make(chan struct{}),
		closeCh:    make(chan struct{}),
		done:       make(chan struct{}),
	}
	go f.run()
	return f, nil
}

func (f *Follower) run() {
	defer close(f.done)
	for {
		if f.stopped() {
			return
		}
		conn, err := f.dial()
		if err != nil {
			if f.chargeFailure() {
				return
			}
			f.pause()
			continue
		}
		f.setConn(conn)
		err = f.serve(conn)
		f.clearConn(conn)
		if f.stopped() {
			return
		}
		if errors.Is(err, faults.ErrCrashed) {
			// Simulated process death: freeze. The chaos suite restarts a
			// fresh Follower over the same directory.
			f.mu.Lock()
			f.crashed = true
			f.mu.Unlock()
			return
		}
		if errors.Is(err, errOutranked) {
			// Someone newer than the leader we know exists — never promote
			// over them; keep retrying in case leadership settles.
		} else if f.chargeFailure() {
			return
		}
		f.pause()
	}
}

// chargeFailure reports one leader failure and returns true when the
// breaker has opened — leader declared dead, run loop should exit. A
// follower whose mirror is incomplete — it never finished a catch-up,
// or a reconnect's reset wiped the directory and the resync has not
// completed yet — refuses to promote and keeps retrying instead.
func (f *Follower) chargeFailure() bool {
	f.tracker.ReportFailure(peerNode)
	if f.tracker.AllowDest(peerNode) {
		return false
	}
	f.mu.Lock()
	synced := f.everSynced
	f.mu.Unlock()
	if !synced {
		return false
	}
	f.declareLeaderDead()
	return true
}

func (f *Follower) declareLeaderDead() {
	f.deadOnce.Do(func() {
		close(f.leaderDead)
		if f.cfg.OnLeaderDead != nil {
			go f.cfg.OnLeaderDead()
		}
	})
}

func (f *Follower) dial() (net.Conn, error) {
	conn, err := f.cfg.Dialer(f.cfg.Addr)
	if err != nil {
		return nil, err
	}
	if f.cfg.TLS != nil {
		conn = tls.Client(conn, f.cfg.TLS)
	}
	return conn, nil
}

var (
	errOutranked = errors.New("replicate: a higher epoch than the leader's exists")
	errStaleLead = errors.New("replicate: leader epoch is stale")
)

// serve runs one connection: handshake, catch-up, apply until error.
func (f *Follower) serve(conn net.Conn) error {
	r := wire.NewReader(conn, f.cfg.MaxFrame)
	w := wire.NewWriter(conn, f.cfg.MaxFrame)
	if err := writeFrame(w, wire.AppendReplHello(nil, wire.ReplHello{Version: wire.Version, Term: f.Term()})); err != nil {
		return err
	}
	f.mu.Lock()
	f.catchupLast, f.watermark = 0, 0
	f.mu.Unlock()
	last := time.Now()
	for {
		conn.SetReadDeadline(time.Now().Add(f.cfg.ReadTimeout))
		payload, err := r.ReadFrame()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// Frame silence: charge a failure; keep listening unless
				// the breaker opened. (A timeout can tear a partial frame;
				// the next read then errors and we reconnect — fine, the
				// leader was silent for a full window either way.)
				if f.chargeFailure() {
					return errLeaderDead
				}
				continue
			}
			return err
		}
		f.tracker.ReportSuccess(peerNode, time.Since(last))
		last = time.Now()
		if f.isPromoting() {
			// Fencing mode: this node has been promoted while the old
			// leader still talks. Answer everything with our epoch.
			writeFrame(w, wire.AppendEpoch(nil, f.Term()))
			continue
		}
		if err := f.handle(w, payload); err != nil {
			return err
		}
	}
}

var errLeaderDead = errors.New("replicate: leader declared dead")

func (f *Follower) handle(w *wire.Writer, payload []byte) error {
	switch wire.MsgType(payload) {
	case wire.TypeCatchup:
		m, err := wire.DecodeCatchup(payload)
		if err != nil {
			return err
		}
		if err := f.checkTerm(w, m.Term); err != nil {
			return err
		}
		// The reset is about to wipe the mirror: drop the promotion gate
		// with it (before the wipe, so no window exists where the directory
		// is partial but the gate is open). A leader lost mid-resync then
		// leaves a follower that refuses to promote until this session's
		// catch-up completes (watermark >= catchupLast re-arms the gate).
		f.mu.Lock()
		f.everSynced = false
		f.catchupLast = m.LastIdx
		f.watermark = 0
		f.mu.Unlock()
		f.applyMu.Lock()
		err = f.rep.Reset(m.JournalEpoch, m.Ckpt)
		f.applyMu.Unlock()
		return err
	case wire.TypeReplicate:
		m, err := wire.DecodeReplicate(payload)
		if err != nil {
			return err
		}
		if err := f.checkTerm(w, m.Term); err != nil {
			return err
		}
		f.applyMu.Lock()
		for _, rec := range m.Recs {
			if err := f.rep.AppendRaw(rec); err != nil {
				f.applyMu.Unlock()
				return err
			}
		}
		err = f.rep.Sync()
		f.applyMu.Unlock()
		if err != nil {
			return err
		}
		f.mu.Lock()
		if m.FirstIdx > 0 {
			if nw := m.FirstIdx + int64(len(m.Recs)) - 1; nw > f.watermark {
				f.watermark = nw
			}
			if f.watermark >= f.catchupLast {
				f.everSynced = true
			}
		}
		ack := wire.ReplAck{Term: f.term, Idx: f.watermark}
		f.mu.Unlock()
		return writeFrame(w, wire.AppendReplAck(nil, ack))
	case wire.TypeReplRotate:
		m, err := wire.DecodeReplRotate(payload)
		if err != nil {
			return err
		}
		if err := f.checkTerm(w, m.Term); err != nil {
			return err
		}
		f.applyMu.Lock()
		defer f.applyMu.Unlock()
		if len(m.Ckpt) == 0 {
			return f.rep.Rotate(m.JournalEpoch)
		}
		return f.rep.InstallCheckpoint(m.JournalEpoch, m.Ckpt)
	case wire.TypePing:
		return writeFrame(w, wire.AppendPong(nil, 0))
	case wire.TypeEpoch:
		t, err := wire.DecodeEpoch(payload)
		if err != nil {
			return err
		}
		if t > f.Term() {
			// A third party outranks the leader we dialed: adopt the
			// epoch so we never promote over it.
			if err := f.adoptTerm(t); err != nil {
				return err
			}
			return errOutranked
		}
		return errStaleLead
	case wire.TypeGoodbye:
		return errStaleLead
	default:
		return fmt.Errorf("replicate: unexpected frame type %d", wire.MsgType(payload))
	}
}

// checkTerm reconciles a frame's term against ours: higher is adopted
// (and persisted before anything is applied under it), lower is fenced.
func (f *Follower) checkTerm(w *wire.Writer, term int64) error {
	cur := f.Term()
	if term > cur {
		return f.adoptTerm(term)
	}
	if term < cur {
		writeFrame(w, wire.AppendEpoch(nil, cur))
		return errStaleLead
	}
	return nil
}

func (f *Follower) adoptTerm(term int64) error {
	if err := durable.StoreEpoch(f.cfg.EpochDir, term); err != nil {
		return err
	}
	f.mu.Lock()
	if term > f.term {
		f.term = term
	}
	f.mu.Unlock()
	return nil
}

// ---- promotion ----------------------------------------------------------

// quiesce durably claims term+1 and stops the apply path; the replica
// directory is then frozen, ready for recovery. The connection (if any)
// stays up in fencing mode so a still-talking ex-leader learns the new
// epoch from its own frames.
func (f *Follower) quiesce() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return durable.ErrClosed
	}
	if f.promoting {
		f.mu.Unlock()
		return errors.New("replicate: already promoted")
	}
	if f.crashed || f.rep.Crashed() {
		f.mu.Unlock()
		return faults.ErrCrashed
	}
	newTerm := f.term + 1
	f.mu.Unlock()
	// Persist the claim BEFORE serving anything under it: fencing only
	// works if a restart cannot forget a promotion.
	if err := durable.StoreEpoch(f.cfg.EpochDir, newTerm); err != nil {
		return err
	}
	f.mu.Lock()
	f.term = newTerm
	f.promoting = true
	f.mu.Unlock()
	f.applyMu.Lock() // wait out any in-flight apply batch
	f.applyMu.Unlock()
	return f.rep.Close()
}

// Promote turns the standby into a serving broker: persist term+1, close
// the replica, run crash-restart recovery over the mirrored directory.
// The engine must be seeded identically to the leader's, exactly as with
// broker.Open after a crash.
func (f *Follower) Promote(engine *core.Engine, opts ...broker.Option) (*broker.Broker, error) {
	if err := f.quiesce(); err != nil {
		return nil, err
	}
	return broker.Open(f.cfg.Dir, engine, opts...)
}

// PromoteLeader is Promote for a node that should itself accept
// followers afterwards — e.g. when the fenced ex-leader will rejoin as
// the new standby. The new leader's term is the one quiesce persisted.
func (f *Follower) PromoteLeader(engine *core.Engine, cfg LeaderConfig, opts ...broker.Option) (*Leader, error) {
	if cfg.EpochDir == "" {
		cfg.EpochDir = f.cfg.EpochDir
	}
	if err := f.quiesce(); err != nil {
		return nil, err
	}
	return OpenLeader(f.cfg.Dir, engine, cfg, opts...)
}

// ---- plumbing -----------------------------------------------------------

func writeFrame(w *wire.Writer, payload []byte) error {
	if err := w.WriteFrame(payload); err != nil {
		return err
	}
	return w.Flush()
}

func (f *Follower) stopped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed || f.promoting
}

func (f *Follower) isPromoting() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoting
}

func (f *Follower) setConn(conn net.Conn) {
	f.mu.Lock()
	f.conn = conn
	f.connected = true
	f.mu.Unlock()
}

func (f *Follower) clearConn(conn net.Conn) {
	conn.Close()
	f.mu.Lock()
	if f.conn == conn {
		f.conn = nil
	}
	f.connected = false
	f.mu.Unlock()
}

func (f *Follower) pause() {
	select {
	case <-f.closeCh:
	case <-time.After(f.cfg.Reconnect):
	}
}

// Close stops the replication loop and closes the replica. Promoted
// followers only stop the loop — the promoted broker owns the directory.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	promoted := f.promoting
	conn := f.conn
	f.mu.Unlock()
	close(f.closeCh)
	if conn != nil {
		conn.Close()
	}
	<-f.done
	if promoted {
		return nil
	}
	return f.rep.Close()
}

// ---- broker.Shard (standby: reject writes) ------------------------------

// Decide rejects publishes: standbys do not serve writes.
func (f *Follower) Decide(workload.Event) error { return ErrNotLeader }

// DecideSeq rejects publishes: standbys do not serve writes.
func (f *Follower) DecideSeq(workload.Event) (int64, error) { return -1, ErrNotLeader }

// Apply rejects subscription churn: standbys do not serve writes.
func (f *Follower) Apply(broker.Mutation) (int, error) { return 0, ErrNotLeader }

// Checkpoint is a no-op: the standby mirrors the leader's checkpoints.
func (f *Follower) Checkpoint() error { return nil }

// Snapshot reports the mirror state (no decision plane until promoted).
func (f *Follower) Snapshot() broker.ShardInfo {
	return broker.ShardInfo{Durable: true}
}

// ---- accessors ----------------------------------------------------------

// Term returns the highest fencing epoch this node has persisted.
func (f *Follower) Term() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.term
}

// Watermark returns the highest live ship index applied and fsynced on
// the current connection.
func (f *Follower) Watermark() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.watermark
}

// Synced reports whether the current connection has completed catch-up.
func (f *Follower) Synced() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.connected && f.everSynced && f.watermark >= f.catchupLast
}

// Connected reports whether a replication session is currently up.
func (f *Follower) Connected() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.connected
}

// Crashed reports whether an injected crash point froze the replica.
func (f *Follower) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed || f.rep.Crashed()
}

// Applied returns the records applied since the last resync.
func (f *Follower) Applied() int64 { return f.rep.Applied() }

// LeaderDead is closed when the failure detector declares the leader
// dead — the promotion trigger.
func (f *Follower) LeaderDead() <-chan struct{} { return f.leaderDead }
