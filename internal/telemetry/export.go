package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteJSON writes the registry snapshot as indented JSON — the
// expvar-style machine-readable export. Map keys serialise in sorted order
// (encoding/json sorts them), so output is deterministic for a given
// snapshot.
func WriteJSON(w io.Writer, r *Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promName flattens "scope" + "metric" into a Prometheus-legal metric name:
// repro_<scope>_<metric> with every non-[a-zA-Z0-9_] byte mapped to '_'.
func promName(scope, metric string) string {
	var b strings.Builder
	b.WriteString("repro_")
	for _, s := range []string{scope, "_", metric} {
		for _, c := range s {
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
				b.WriteRune(c)
			default:
				b.WriteByte('_')
			}
		}
	}
	return b.String()
}

// promFloat formats a float in Prometheus exposition syntax.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes the registry snapshot in Prometheus text
// exposition format (version 0.0.4): counters as counter, gauges as gauge,
// histograms as cumulative _bucket/_sum/_count series.
func WritePrometheus(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	for _, scope := range sortedKeys(snap) {
		ss := snap[scope]
		for _, name := range sortedKeys(ss.Counters) {
			mn := promName(scope, name)
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", mn, mn, ss.Counters[name]); err != nil {
				return err
			}
		}
		for _, name := range sortedKeys(ss.Gauges) {
			mn := promName(scope, name)
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", mn, mn, ss.Gauges[name]); err != nil {
				return err
			}
		}
		for _, name := range sortedKeys(ss.Histograms) {
			hs := ss.Histograms[name]
			mn := promName(scope, name)
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", mn); err != nil {
				return err
			}
			cum := int64(0)
			for i, c := range hs.Counts {
				cum += c
				le := "+Inf"
				if i < len(hs.Bounds) {
					le = promFloat(hs.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", mn, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", mn, promFloat(hs.Sum), mn, hs.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
