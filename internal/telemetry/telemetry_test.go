package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestScopeInternsInstruments(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("broker")
	if s != r.Scope("broker") {
		t.Fatal("same scope name returned different scopes")
	}
	if s.Counter("published") != s.Counter("published") {
		t.Fatal("same counter name returned different counters")
	}
	if s.Gauge("depth") != s.Gauge("depth") {
		t.Fatal("same gauge name returned different gauges")
	}
	if s.Histogram("lat", LatencyBuckets()) != s.Histogram("lat", LinearBuckets(0, 1, 4)) {
		t.Fatal("histogram was not interned on name (first layout must win)")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	s := r.Scope("anything")
	if s != nil {
		t.Fatal("nil registry must hand out nil scopes")
	}
	c := s.Counter("c")
	g := s.Gauge("g")
	h := s.Histogram("h", LatencyBuckets())
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(1.5)
	h.ObserveDuration(100)
	h.Start()()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if hs := h.Snapshot(); hs.Count != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var tr *Tracer
	if tr.Sampled(1) || tr.Begin(1) != nil || tr.Traces() != nil {
		t.Fatal("nil tracer must be inert")
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Scope("s").Counter("c")
	c.Add(10)
	c.Add(-4)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d after negative add, want 10", got)
	}
}

// TestSnapshotMonotone hammers a registry from writer goroutines while a
// reader takes successive snapshots, asserting no counter or histogram
// count ever goes backwards.
func TestSnapshotMonotone(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("hot")
	c := s.Counter("ops")
	h := s.Histogram("vals", LinearBuckets(0, 10, 8))

	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(float64(i % 100))
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()

	prevC := int64(0)
	prevH := int64(0)
	prevBuckets := make([]int64, 9)
	check := func() {
		snap := r.Snapshot()
		hot := snap["hot"]
		if hot.Counters["ops"] < prevC {
			t.Errorf("counter went backwards: %d -> %d", prevC, hot.Counters["ops"])
		}
		prevC = hot.Counters["ops"]
		hs := hot.Histograms["vals"]
		if hs.Count < prevH {
			t.Errorf("histogram count went backwards: %d -> %d", prevH, hs.Count)
		}
		prevH = hs.Count
		for i, b := range hs.Counts {
			if b < prevBuckets[i] {
				t.Errorf("bucket %d went backwards: %d -> %d", i, prevBuckets[i], b)
			}
			prevBuckets[i] = b
		}
	}
	for {
		select {
		case <-stop:
			check()
			if want := int64(writers * perWriter); prevC != want {
				t.Fatalf("final counter = %d, want %d", prevC, want)
			}
			if prevH != int64(writers*perWriter) {
				t.Fatalf("final histogram count = %d, want %d", prevH, writers*perWriter)
			}
			return
		default:
			check()
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("sim")
	s.Counter("events").Add(7)
	s.Gauge("depth").Set(3)
	s.Histogram("cost", LinearBuckets(0, 100, 4)).Observe(150)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var got map[string]ScopeSnapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	sim := got["sim"]
	if sim.Counters["events"] != 7 || sim.Gauges["depth"] != 3 {
		t.Fatalf("unexpected snapshot: %+v", sim)
	}
	if hs := sim.Histograms["cost"]; hs.Count != 1 || hs.Sum != 150 {
		t.Fatalf("unexpected histogram: %+v", hs)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("broker")
	s.Counter("deliveries").Add(42)
	s.Gauge("queue-depth").Set(5)
	h := s.Histogram("latency_ns", PowerOfTwoBuckets(1, 3)) // bounds 1, 2, 4
	h.Observe(1)
	h.Observe(3)
	h.Observe(100) // overflow

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE repro_broker_deliveries counter",
		"repro_broker_deliveries 42",
		"# TYPE repro_broker_queue_depth gauge", // '-' sanitised to '_'
		"repro_broker_queue_depth 5",
		"# TYPE repro_broker_latency_ns histogram",
		`repro_broker_latency_ns_bucket{le="1"} 1`,
		`repro_broker_latency_ns_bucket{le="2"} 1`,
		`repro_broker_latency_ns_bucket{le="4"} 2`,
		`repro_broker_latency_ns_bucket{le="+Inf"} 3`,
		"repro_broker_latency_ns_sum 104",
		"repro_broker_latency_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus export missing %q\n%s", want, out)
		}
	}
}
